// Benchmarks regenerating every table and figure of the paper's evaluation
// (run `go test -bench=. -benchmem`), plus the ablation benches DESIGN.md
// calls out.  The experiment harness prints full paper-style rows via
// `go run ./cmd/experiments -exp all`; these benches wrap the same code so
// `go test -bench` exercises each experiment and reports its cost.
package utcq_test

import (
	"fmt"
	"io"
	"testing"

	"utcq"
	"utcq/internal/core"
	"utcq/internal/exp"
	"utcq/internal/gen"
	"utcq/internal/query"
	"utcq/internal/stiu"
	"utcq/internal/ted"
)

// benchCfg keeps the bench datasets small enough for -bench=. sweeps.
// Parallelism 1 pins the paper benches to the serial measurement model;
// the parallel-scaling benches below override it per sub-benchmark.
var benchCfg = exp.Config{Scale: 0.25, Seed: 42, Parallelism: 1}

func benchBundles(b *testing.B) []*exp.Bundle {
	b.Helper()
	bundles, err := exp.Datasets(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	return bundles
}

func bundleByName(b *testing.B, name string) *exp.Bundle {
	for _, bu := range benchBundles(b) {
		if bu.Profile.Name == name {
			return bu
		}
	}
	b.Fatalf("no bundle %s", name)
	return nil
}

// --- Table 8: compression --------------------------------------------------

func benchCompressUTCQ(b *testing.B, name string) {
	bu := bundleByName(b, name)
	c, err := core.NewCompressor(bu.DS.Graph, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := c.Compress(bu.DS.Trajectories)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Stats.TotalRatio(), "ratio")
	}
}

func benchCompressTED(b *testing.B, name string) {
	bu := bundleByName(b, name)
	c, err := ted.NewCompressor(bu.DS.Graph, exp.TEDOptionsFor(bu.Profile, bu.Opts))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := c.Compress(bu.DS.Trajectories)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Stats.TotalRatio(), "ratio")
	}
}

func BenchmarkCompressUTCQ_DK(b *testing.B) { benchCompressUTCQ(b, "DK") }
func BenchmarkCompressUTCQ_CD(b *testing.B) { benchCompressUTCQ(b, "CD") }
func BenchmarkCompressUTCQ_HZ(b *testing.B) { benchCompressUTCQ(b, "HZ") }
func BenchmarkCompressTED_DK(b *testing.B)  { benchCompressTED(b, "DK") }
func BenchmarkCompressTED_CD(b *testing.B)  { benchCompressTED(b, "CD") }
func BenchmarkCompressTED_HZ(b *testing.B)  { benchCompressTED(b, "HZ") }

// BenchmarkDecompress measures full decompression (the inverse path).
func BenchmarkDecompress(b *testing.B) {
	bu := bundleByName(b, "CD")
	arch, err := utcq.Compress(bu.DS.Graph, bu.DS.Trajectories, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arch.DecodeAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 6-8, 12: parameter sweeps --------------------------------------

func BenchmarkFig6Instances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Length(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Pivots(b *testing.B) {
	bundles := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig8(io.Discard, bundles)
	}
}

func BenchmarkFig12Scalability(b *testing.B) {
	bundles := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig12Compression(io.Discard, bundles)
	}
}

// --- Figures 9-10: queries ---------------------------------------------------

func queryEngine(b *testing.B, name string) (*exp.Bundle, *query.Engine, *query.TEDEngine) {
	bu := bundleByName(b, name)
	arch, err := utcq.Compress(bu.DS.Graph, bu.DS.Trajectories, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := stiu.Build(arch, stiu.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(arch, ix)
	eng.DisableCache = true

	tc, err := ted.NewCompressor(bu.DS.Graph, exp.TEDOptionsFor(bu.Profile, bu.Opts))
	if err != nil {
		b.Fatal(err)
	}
	ta, err := tc.Compress(bu.DS.Trajectories)
	if err != nil {
		b.Fatal(err)
	}
	tix, err := query.BuildTEDIndex(ta, stiu.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	teng := query.NewTEDEngine(ta, tix)
	teng.DisableCache = true
	return bu, eng, teng
}

func BenchmarkWhereQueryUTCQ(b *testing.B) {
	bu, eng, _ := queryEngine(b, "HZ")
	u := bu.DS.Trajectories[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tq := u.T[0] + int64(i)%(u.T[len(u.T)-1]-u.T[0])
		if _, err := eng.Where(0, tq, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhereQueryTED(b *testing.B) {
	bu, _, teng := queryEngine(b, "HZ")
	u := bu.DS.Trajectories[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tq := u.T[0] + int64(i)%(u.T[len(u.T)-1]-u.T[0])
		if _, err := teng.Where(0, tq, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhenQueryUTCQ(b *testing.B) {
	bu, eng, _ := queryEngine(b, "HZ")
	path, err := bu.DS.Trajectories[0].Instances[0].PathEdges(bu.DS.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := bu.DS.Graph.PositionAtRD(path[i%len(path)], 0.5)
		if _, err := eng.When(0, loc, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhenQueryTED(b *testing.B) {
	bu, _, teng := queryEngine(b, "HZ")
	path, err := bu.DS.Trajectories[0].Instances[0].PathEdges(bu.DS.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := bu.DS.Graph.PositionAtRD(path[i%len(path)], 0.5)
		if _, err := teng.When(0, loc, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// rangeRect derives query rectangle i from precomputed network bounds.
// Bounds() scans every vertex, so callers hoist it out of the timed loop —
// the benchmark measures the query, not the bounds scan.
func rangeRect(bounds utcq.Rect, i int) utcq.Rect {
	w := (bounds.MaxX - bounds.MinX) * 0.08
	x := bounds.MinX + float64(i%13)/13*(bounds.MaxX-bounds.MinX-w)
	y := bounds.MinY + float64(i%7)/7*(bounds.MaxY-bounds.MinY-w)
	return utcq.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
}

func BenchmarkRangeQueryUTCQ(b *testing.B) {
	bu, eng, _ := queryEngine(b, "CD")
	u := bu.DS.Trajectories[0]
	bounds := bu.DS.Graph.Bounds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tq := u.T[0] + int64(i)%(u.T[len(u.T)-1]-u.T[0])
		if _, err := eng.Range(rangeRect(bounds, i), tq, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQueryTED(b *testing.B) {
	bu, _, teng := queryEngine(b, "CD")
	u := bu.DS.Trajectories[0]
	bounds := bu.DS.Graph.Bounds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tq := u.T[0] + int64(i)%(u.T[len(u.T)-1]-u.T[0])
		if _, err := teng.Range(rangeRect(bounds, i), tq, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblationNoReferential isolates the gain of the referential
// representation: every instance stored as a standalone reference.
func BenchmarkAblationNoReferential(b *testing.B) {
	bu := bundleByName(b, "HZ")
	opts := bu.Opts
	opts.DisableReferential = true
	c, err := core.NewCompressor(bu.DS.Graph, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := c.Compress(bu.DS.Trajectories)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Stats.TotalRatio(), "ratio")
	}
}

// BenchmarkAblationJaccard replaces FJD with the plain Jaccard similarity.
func BenchmarkAblationJaccard(b *testing.B) {
	bu := bundleByName(b, "HZ")
	opts := bu.Opts
	opts.PlainJaccard = true
	c, err := core.NewCompressor(bu.DS.Graph, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := c.Compress(bu.DS.Trajectories)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Stats.TotalRatio(), "ratio")
	}
}

// BenchmarkAblationNoPruning runs range queries with Lemmas 1-4 disabled.
func BenchmarkAblationNoPruning(b *testing.B) {
	bu, eng, _ := queryEngine(b, "CD")
	eng.DisablePruning = true
	u := bu.DS.Trajectories[0]
	bounds := bu.DS.Graph.Bounds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tq := u.T[0] + int64(i)%(u.T[len(u.T)-1]-u.T[0])
		if _, err := eng.Range(rangeRect(bounds, i), tq, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeEncoding compares SIAR + improved Exp-Golomb against TED's
// pair scheme on the time component alone (the Section 4.1 motivation).
func BenchmarkTimeEncoding(b *testing.B) {
	bu := bundleByName(b, "HZ")
	b.Run("SIAR", func(b *testing.B) {
		c, err := core.NewCompressor(bu.DS.Graph, bu.Opts)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			a, err := c.Compress(bu.DS.Trajectories)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(a.Stats.RatioT(), "T-ratio")
		}
	})
	b.Run("TEDPairs", func(b *testing.B) {
		c, err := ted.NewCompressor(bu.DS.Graph, exp.TEDOptionsFor(bu.Profile, bu.Opts))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			a, err := c.Compress(bu.DS.Trajectories)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(a.Stats.RatioT(), "T-ratio")
		}
	})
}

// --- Parallel scaling ---------------------------------------------------------

// BenchmarkCompressParallel sweeps the Parallelism knob on the CD profile:
// p1 is the serial baseline, pN uses N workers (output is byte-identical).
func BenchmarkCompressParallel(b *testing.B) {
	bu := bundleByName(b, "CD")
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			opts := bu.Opts
			opts.Parallelism = p
			c, err := core.NewCompressor(bu.DS.Graph, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(bu.DS.Trajectories); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompressParallel sweeps Parallelism on full decompression.
func BenchmarkDecompressParallel(b *testing.B) {
	bu := bundleByName(b, "CD")
	arch, err := utcq.Compress(bu.DS.Graph, bu.DS.Trajectories, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			arch.Opts.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := arch.DecodeAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStIUBuildParallel sweeps Parallelism on index construction.
func BenchmarkStIUBuildParallel(b *testing.B) {
	bu := bundleByName(b, "CD")
	arch, err := utcq.Compress(bu.DS.Graph, bu.DS.Trajectories, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			opts := stiu.DefaultOptions()
			opts.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stiu.Build(arch, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineConcurrent drives one shared engine from GOMAXPROCS
// goroutines mixing where, when and range queries — the serving-path
// throughput benchmark (run with -cpu 1,2,4,8 to see scaling).
func BenchmarkEngineConcurrent(b *testing.B) {
	bu := bundleByName(b, "CD")
	arch, err := utcq.Compress(bu.DS.Graph, bu.DS.Trajectories, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := stiu.Build(arch, stiu.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(arch, ix)
	bounds := bu.DS.Graph.Bounds()
	paths := make([][]utcq.EdgeID, len(bu.DS.Trajectories))
	for j, u := range bu.DS.Trajectories {
		p, err := u.Instances[0].PathEdges(bu.DS.Graph)
		if err != nil {
			b.Fatal(err)
		}
		if len(p) == 0 {
			b.Fatalf("trajectory %d has an empty edge path", j)
		}
		paths[j] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			j := i % len(bu.DS.Trajectories)
			u := bu.DS.Trajectories[j]
			tq := u.T[0] + int64(i)%(u.T[len(u.T)-1]-u.T[0])
			switch i % 3 {
			case 0:
				if _, err := eng.Where(j, tq, 0.25); err != nil {
					b.Fatal(err)
				}
			case 1:
				loc := bu.DS.Graph.PositionAtRD(paths[j][i%len(paths[j])], 0.5)
				if _, err := eng.When(j, loc, 0.25); err != nil {
					b.Fatal(err)
				}
			default:
				if _, err := eng.Range(rangeRect(bounds, i), tq, 0.5); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
}

// --- Dataset generation -------------------------------------------------------

func BenchmarkDatasetGeneration(b *testing.B) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 32, 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Build(p, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStIUBuild measures index construction.
func BenchmarkStIUBuild(b *testing.B) {
	bu := bundleByName(b, "CD")
	arch, err := utcq.Compress(bu.DS.Graph, bu.DS.Trajectories, bu.Opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stiu.Build(arch, stiu.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
