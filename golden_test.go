// Golden byte-identity tests: the hot-path rewrites (word-level bitio,
// indexed factorization, direct serialization) must not change a single
// output bit.  Fixtures under testdata/ were generated with the pre-rewrite
// implementation; regenerate with `go test -run TestGolden -update` only
// when the on-disk/bit-stream format changes deliberately.
package utcq_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"utcq/internal/core"
	"utcq/internal/exp"
	"utcq/internal/paperfix"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/traj"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// archiveBytes compresses and serializes one dataset deterministically.
func archiveBytes(t *testing.T, a *core.Archive) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// indexDigest walks the StIU index in a deterministic order and hashes
// every stored field, so any change to the built index is detected.
func indexDigest(ix *stiu.Index) string {
	h := sha256.New()
	for j, entries := range ix.Temporal {
		fmt.Fprintf(h, "T%d:", j)
		for _, e := range entries {
			fmt.Fprintf(h, "(%d,%d,%d)", e.Start, e.No, e.Pos)
		}
	}
	ivs := make([]int, 0, len(ix.Intervals))
	for iv := range ix.Intervals {
		ivs = append(ivs, iv)
	}
	sort.Ints(ivs)
	for _, iv := range ivs {
		in := ix.Intervals[iv]
		fmt.Fprintf(h, "I%d:%v", iv, in.Trajs)
		res := make([]int, 0, len(in.Regions))
		for re := range in.Regions {
			res = append(res, int(re))
		}
		sort.Ints(res)
		for _, re := range res {
			b := in.Regions[roadnet.RegionID(re)]
			fmt.Fprintf(h, "R%d:", re)
			for _, rt := range b.Refs {
				fmt.Fprintf(h, "(%d,%d,%d,%d,%d,%g,%g)", rt.Traj, rt.Orig, rt.FV, rt.FVNo, rt.DPos, rt.PTotal, rt.PMax)
			}
			for _, nt := range b.NonRefs {
				fmt.Fprintf(h, "(%d,%d,%d,%d,%d,%d)", nt.Traj, nt.Orig, nt.RefOrig, nt.RV, nt.RVNo, nt.MaPos)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenPaperExample pins the exact serialized bytes of the paper's
// worked-example trajectory.
func TestGoldenPaperExample(t *testing.T) {
	fx := paperfix.MustNew()
	c, err := core.NewCompressor(fx.Graph, core.DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	got := archiveBytes(t, a)
	path := filepath.Join("testdata", "golden_paperfix.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("archive bytes changed: got %d bytes (sha %s), want %d bytes (sha %s)",
			len(got), shortSHA(got), len(want), shortSHA(want))
	}
}

// TestGoldenDatasets pins archive and StIU digests on the three synthetic
// paper profiles.
func TestGoldenDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("golden datasets are slow")
	}
	bundles, err := exp.Datasets(exp.Config{Scale: 0.1, Seed: 42, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, bu := range bundles {
		c, err := core.NewCompressor(bu.DS.Graph, bu.Opts)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Compress(bu.DS.Trajectories)
		if err != nil {
			t.Fatal(err)
		}
		ab := archiveBytes(t, a)
		ix, err := stiu.Build(a, stiu.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines,
			fmt.Sprintf("%s archive %s", bu.Profile.Name, shortSHA(ab)),
			fmt.Sprintf("%s stiu %s", bu.Profile.Name, indexDigest(ix)))
	}
	got := ""
	for _, l := range lines {
		got += l + "\n"
	}
	path := filepath.Join("testdata", "golden_datasets.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("digests changed:\ngot:\n%swant:\n%s", got, want)
	}
}

func shortSHA(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}
