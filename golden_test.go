// Golden byte-identity tests: the hot-path rewrites (word-level bitio,
// indexed factorization, direct serialization) must not change a single
// output bit.  Fixtures under testdata/ were generated with the pre-rewrite
// implementation; regenerate with `go test -run TestGolden -update` only
// when the on-disk/bit-stream format changes deliberately.
package utcq_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"utcq/internal/core"
	"utcq/internal/exp"
	"utcq/internal/gen"
	"utcq/internal/paperfix"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/store"
	"utcq/internal/traj"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// archiveBytes compresses and serializes one dataset deterministically.
func archiveBytes(t *testing.T, a *core.Archive) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// indexDigest walks the StIU index in a deterministic order and hashes
// every stored field, so any change to the built index is detected.
func indexDigest(ix *stiu.Index) string {
	h := sha256.New()
	for j, entries := range ix.Temporal {
		fmt.Fprintf(h, "T%d:", j)
		for _, e := range entries {
			fmt.Fprintf(h, "(%d,%d,%d)", e.Start, e.No, e.Pos)
		}
	}
	ivs := make([]int, 0, len(ix.Intervals))
	for iv := range ix.Intervals {
		ivs = append(ivs, iv)
	}
	sort.Ints(ivs)
	for _, iv := range ivs {
		in := ix.Intervals[iv]
		fmt.Fprintf(h, "I%d:%v", iv, in.Trajs)
		res := make([]int, 0, len(in.Regions))
		for re := range in.Regions {
			res = append(res, int(re))
		}
		sort.Ints(res)
		for _, re := range res {
			b := in.Regions[roadnet.RegionID(re)]
			fmt.Fprintf(h, "R%d:", re)
			for _, rt := range b.Refs {
				fmt.Fprintf(h, "(%d,%d,%d,%d,%d,%g,%g)", rt.Traj, rt.Orig, rt.FV, rt.FVNo, rt.DPos, rt.PTotal, rt.PMax)
			}
			for _, nt := range b.NonRefs {
				fmt.Fprintf(h, "(%d,%d,%d,%d,%d,%d)", nt.Traj, nt.Orig, nt.RefOrig, nt.RV, nt.RVNo, nt.MaPos)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenPaperExample pins the exact serialized bytes of the paper's
// worked-example trajectory.
func TestGoldenPaperExample(t *testing.T) {
	fx := paperfix.MustNew()
	c, err := core.NewCompressor(fx.Graph, core.DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	got := archiveBytes(t, a)
	path := filepath.Join("testdata", "golden_paperfix.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("archive bytes changed: got %d bytes (sha %s), want %d bytes (sha %s)",
			len(got), shortSHA(got), len(want), shortSHA(want))
	}
}

// TestGoldenDatasets pins archive and StIU digests on the three synthetic
// paper profiles.
func TestGoldenDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("golden datasets are slow")
	}
	bundles, err := exp.Datasets(exp.Config{Scale: 0.1, Seed: 42, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, bu := range bundles {
		c, err := core.NewCompressor(bu.DS.Graph, bu.Opts)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Compress(bu.DS.Trajectories)
		if err != nil {
			t.Fatal(err)
		}
		ab := archiveBytes(t, a)
		ix, err := stiu.Build(a, stiu.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines,
			fmt.Sprintf("%s archive %s", bu.Profile.Name, shortSHA(ab)),
			fmt.Sprintf("%s stiu %s", bu.Profile.Name, indexDigest(ix)))
	}
	got := ""
	for _, l := range lines {
		got += l + "\n"
	}
	path := filepath.Join("testdata", "golden_datasets.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("digests changed:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestGoldenStore pins the bytes of a complete mutable-store directory —
// manifest v3 with live base shards, a tombstoned delta shard and a
// compacted base shard, plus every shard archive and StIU sidecar —
// against checked-in digests.  The CI format-compat job runs this (and the other goldens) on
// a Go-version matrix, making docs/FORMAT.md's normative claim
// machine-enforced: any digest drift fails the build.
func TestGoldenStore(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	s, err := store.Build(ds.Graph, ds.Trajectories[:8], opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Exercise the mutable-manifest features the golden must pin: an
	// ingested delta shard, a compaction, and the resulting tombstone.
	if _, err := s.ApplyDelta(ds.Trajectories[8:], 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf("%s %s", e.Name(), shortSHA(b)))
	}
	sort.Strings(lines)
	got := ""
	for _, l := range lines {
		got += l + "\n"
	}

	path := filepath.Join("testdata", "golden_store.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("store directory digests changed:\ngot:\n%swant:\n%s", got, want)
	}

	// The pinned directory must also still open and serve: decode-compat,
	// not just byte-compat.
	o, err := store.Open(dir, ds.Graph, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Generation() != 3 || o.NumTrajectories() != 12 {
		t.Fatalf("golden store reopened at generation %d with %d trajectories", o.Generation(), o.NumTrajectories())
	}
	T := ds.Trajectories[11].T
	if _, err := o.Where(11, (T[0]+T[len(T)-1])/2, 0.1); err != nil {
		t.Fatal(err)
	}
}

func shortSHA(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}
