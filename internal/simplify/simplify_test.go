package simplify

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/traj"
)

// epsSweep covers sub-noise budgets through budgets far past the GPS
// noise scale (profiles use SigmaGPS ~= 15 map units).
var epsSweep = []float64{0.5, 2, 5, 10, 25, 60, 150}

// testTraces gathers the property-test population: synthetic fleet traces
// from all three paper profiles plus crafted adversarial shapes.
func testTraces(t testing.TB) []traj.RawTrajectory {
	var traces []traj.RawTrajectory
	for _, p := range gen.Profiles() {
		p.Network.Cols, p.Network.Rows = 24, 24
		_, _, raws, err := gen.Raws(p, 16, 43)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, raws...)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		traces = append(traces, fuzzedTrace(rng))
	}
	// Crafted shapes: collinear run (everything drops), a single spike
	// (the spike must survive small budgets), a stationary burst
	// (duplicate coordinates at distinct times), and a minimal pair.
	line := traj.RawTrajectory{}
	for i := 0; i < 20; i++ {
		line.Points = append(line.Points, traj.RawPoint{X: float64(i) * 10, Y: float64(i) * 5, T: int64(i * 10)})
	}
	spike := traj.RawTrajectory{Points: append([]traj.RawPoint(nil), line.Points...)}
	spike.Points[10].Y += 500
	still := traj.RawTrajectory{}
	for i := 0; i < 8; i++ {
		still.Points = append(still.Points, traj.RawPoint{X: 100, Y: 200, T: int64(i + 1)})
	}
	pair := traj.RawTrajectory{Points: []traj.RawPoint{{X: 1, Y: 2, T: 3}, {X: 4, Y: 5, T: 6}}}
	return append(traces, line, spike, still, pair)
}

// fuzzedTrace builds a random walk with bursts, reversals and speed
// changes — shapes the road-network generator never produces.
func fuzzedTrace(rng *rand.Rand) traj.RawTrajectory {
	n := 2 + rng.Intn(120)
	raw := traj.RawTrajectory{Points: make([]traj.RawPoint, n)}
	x, y := rng.Float64()*1000, rng.Float64()*1000
	ts := int64(rng.Intn(1000))
	for i := range raw.Points {
		raw.Points[i] = traj.RawPoint{X: x, Y: y, T: ts}
		step := math.Pow(10, rng.Float64()*3-1) // 0.1 .. 100 map units
		x += rng.NormFloat64() * step
		y += rng.NormFloat64() * step
		ts += 1 + int64(rng.Intn(120))
	}
	return raw
}

// validSubsequence asserts the structural contract: endpoints kept, kept
// points a subsequence of the input (so timestamps stay strictly
// increasing), at least two points out.
func validSubsequence(t *testing.T, in, out traj.RawTrajectory) {
	t.Helper()
	if len(out.Points) < 2 && len(in.Points) >= 2 {
		t.Fatalf("simplification left %d points", len(out.Points))
	}
	if out.Points[0] != in.Points[0] || out.Points[len(out.Points)-1] != in.Points[len(in.Points)-1] {
		t.Fatal("simplification moved an endpoint")
	}
	k := 0
	for _, p := range in.Points {
		if k < len(out.Points) && p == out.Points[k] {
			k++
		}
	}
	if k != len(out.Points) {
		t.Fatal("output is not a subsequence of the input")
	}
}

// TestSimplifySEDBound is the central property: for every trace and every
// swept ε, the max SED of the dropped points — measured against the kept
// points that bracket them in the OUTPUT, i.e. the final segments — is
// within ε.  No compounding, no exceptions.
func TestSimplifySEDBound(t *testing.T) {
	for _, raw := range testTraces(t) {
		for _, eps := range epsSweep {
			out := Trajectory(raw, eps)
			validSubsequence(t, raw, out)
			dev, ok := MaxSEDOfDropped(raw.Points, out.Points)
			if !ok {
				t.Fatalf("eps=%v: output is not a bracketing subsequence", eps)
			}
			if !(dev <= eps) {
				t.Fatalf("eps=%v: dropped point deviates %v (n=%d -> %d)", eps, dev, len(raw.Points), len(out.Points))
			}
		}
	}
}

// TestSimplifyZeroEpsPassthrough pins ε=0 as a true no-op: the output
// aliases the input's backing array (byte-identical, not a copy).
func TestSimplifyZeroEpsPassthrough(t *testing.T) {
	for _, raw := range testTraces(t) {
		out := Trajectory(raw, 0)
		if !reflect.DeepEqual(out, raw) {
			t.Fatal("eps=0 altered the trajectory")
		}
		if len(raw.Points) > 0 && &out.Points[0] != &raw.Points[0] {
			t.Fatal("eps=0 copied the points instead of passing them through")
		}
		if neg := Trajectory(raw, -5); !reflect.DeepEqual(neg, raw) {
			t.Fatal("negative eps altered the trajectory")
		}
		if nan := Trajectory(raw, math.NaN()); !reflect.DeepEqual(nan, raw) {
			t.Fatal("NaN eps altered the trajectory")
		}
	}
}

// TestSimplifyIdempotent is the metamorphic pin: simplifying an already
// simplified trace under the same budget changes nothing.  This is a
// theorem for first-argmax Douglas-Peucker (the split points of a run
// are reproduced exactly on the kept subset) and the reason the package
// uses it rather than an opening-window scan, whose decisions depend on
// points that are no longer present the second time.
func TestSimplifyIdempotent(t *testing.T) {
	for _, raw := range testTraces(t) {
		for _, eps := range epsSweep {
			once := Trajectory(raw, eps)
			twice := Trajectory(once, eps)
			if !reflect.DeepEqual(once, twice) {
				t.Fatalf("eps=%v: second pass dropped %d more points (%d -> %d)",
					eps, len(once.Points)-len(twice.Points), len(once.Points), len(twice.Points))
			}
		}
	}
}

// TestSimplifyMonotoneBudget sanity-checks the budget's direction: a
// larger ε never keeps more points on the same trace.
func TestSimplifyMonotoneBudget(t *testing.T) {
	for _, raw := range testTraces(t) {
		prev := len(raw.Points) + 1
		for _, eps := range epsSweep {
			n := len(Trajectory(raw, eps).Points)
			if n > prev {
				t.Fatalf("eps=%v kept %d points, smaller budget kept %d", eps, n, prev)
			}
			prev = n
		}
	}
}

// TestSEDDefinition pins the metric itself on hand-computed cases.
func TestSEDDefinition(t *testing.T) {
	a := traj.RawPoint{X: 0, Y: 0, T: 0}
	b := traj.RawPoint{X: 10, Y: 0, T: 10}
	// Halfway in time = halfway along the segment.
	if d := SED(traj.RawPoint{X: 5, Y: 3, T: 5}, a, b); math.Abs(d-3) > 1e-12 {
		t.Fatalf("SED = %v, want 3", d)
	}
	// Same spatial position but early in time: the synchronized position
	// is x=2, so the distance is 3 even though the point is ON the segment.
	if d := SED(traj.RawPoint{X: 5, Y: 0, T: 2}, a, b); math.Abs(d-3) > 1e-12 {
		t.Fatalf("time-shifted SED = %v, want 3", d)
	}
	// Degenerate zero-duration segment falls back to distance from a.
	if d := SED(traj.RawPoint{X: 3, Y: 4, T: 0}, a, traj.RawPoint{X: 9, Y: 9, T: 0}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("degenerate SED = %v, want 5", d)
	}
}

// TestMaxSEDOfDroppedRejectsNonSubsequence guards the test oracle itself.
func TestMaxSEDOfDroppedRejectsNonSubsequence(t *testing.T) {
	orig := []traj.RawPoint{{X: 0, Y: 0, T: 0}, {X: 1, Y: 0, T: 1}, {X: 2, Y: 0, T: 2}}
	if _, ok := MaxSEDOfDropped(orig, []traj.RawPoint{{X: 9, Y: 9, T: 9}, orig[2]}); ok {
		t.Fatal("accepted a sequence not sharing the first point")
	}
	if _, ok := MaxSEDOfDropped(orig, []traj.RawPoint{orig[0], orig[1]}); ok {
		t.Fatal("accepted a sequence missing the last point")
	}
	if dev, ok := MaxSEDOfDropped(orig, orig); !ok || dev != 0 {
		t.Fatalf("identity walk: dev=%v ok=%v", dev, ok)
	}
}
