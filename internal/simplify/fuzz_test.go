package simplify

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/mapmatch"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// fuzzWorld is built once: a small CD-profile road network, its fleet of
// raw traces, and a matcher — the downstream consumer a simplified trace
// must still satisfy.
var fuzzWorld struct {
	once    sync.Once
	err     error
	graph   *roadnet.Graph
	matcher *mapmatch.Matcher
	raws    []traj.RawTrajectory
	sigma   float64
}

func fuzzSetup() error {
	fuzzWorld.once.Do(func() {
		p := gen.CD()
		p.Network.Cols, p.Network.Rows = 16, 16
		g, eix, raws, err := gen.Raws(p, 10, 77)
		if err != nil {
			fuzzWorld.err = err
			return
		}
		fuzzWorld.graph = g
		fuzzWorld.matcher = mapmatch.New(g, eix, p.Match)
		fuzzWorld.raws = raws
		fuzzWorld.sigma = p.Match.SigmaGPS
	})
	return fuzzWorld.err
}

// FuzzSimplifyRoundTrip drives the admission pipeline end to end on
// fuzzer-chosen inputs: perturb a fleet trace, simplify it under a
// fuzzer-chosen budget, and require (1) the SED bound holds against the
// final kept segments, (2) a second pass is a no-op (idempotence), and
// (3) the simplified trace still map-matches whenever the unsimplified
// one does — simplification must not push an admissible submission out
// of the matcher's reach.
func FuzzSimplifyRoundTrip(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), 5.0, int64(1))
	f.Add(uint8(3), 0.0, int64(99))
	f.Add(uint8(7), 14.9, int64(-4))
	f.Add(uint8(255), 0.01, int64(1<<40))
	f.Fuzz(func(t *testing.T, pick uint8, eps float64, jitterSeed int64) {
		raw := fuzzWorld.raws[int(pick)%len(fuzzWorld.raws)]
		// Re-noise the trace within a quarter of the GPS sigma so the
		// fuzzer explores off-road geometry without leaving the matcher's
		// candidate radius.
		rng := rand.New(rand.NewSource(jitterSeed))
		jit := traj.RawTrajectory{Points: make([]traj.RawPoint, len(raw.Points))}
		for i, p := range raw.Points {
			jit.Points[i] = traj.RawPoint{
				X: p.X + rng.NormFloat64()*fuzzWorld.sigma/4,
				Y: p.Y + rng.NormFloat64()*fuzzWorld.sigma/4,
				T: p.T,
			}
		}
		// Keep the budget at admission scale: within the GPS noise the
		// matcher is built to absorb.  Non-finite inputs collapse to 0.
		if math.IsNaN(eps) || math.IsInf(eps, 0) {
			eps = 0
		}
		eps = math.Mod(math.Abs(eps), fuzzWorld.sigma)

		out := Trajectory(jit, eps)
		dev, ok := MaxSEDOfDropped(jit.Points, out.Points)
		if !ok {
			t.Fatalf("eps=%v: output is not a bracketing subsequence of the input", eps)
		}
		if !(dev <= eps) && len(out.Points) != len(jit.Points) {
			t.Fatalf("eps=%v: dropped point deviates %v", eps, dev)
		}
		if again := Trajectory(out, eps); !reflect.DeepEqual(again, out) {
			t.Fatalf("eps=%v: simplification is not idempotent (%d -> %d points)",
				eps, len(out.Points), len(again.Points))
		}
		if _, err := fuzzWorld.matcher.Match(jit); err == nil {
			if _, err := fuzzWorld.matcher.Match(out); err != nil {
				t.Fatalf("eps=%v: original matches but simplified does not: %v (%d -> %d points)",
					eps, err, len(jit.Points), len(out.Points))
			}
		}
	})
}
