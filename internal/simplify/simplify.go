// Package simplify implements error-bounded lossy simplification of raw
// GPS trajectories, the ingest-side pre-pass of the streaming layer: the
// ingester runs it at SubmitBatch admission — after validation, before the
// WAL append — so the log, the map matcher and every downstream shard see
// the reduced point set.  The ε each batch was admitted under is recorded
// in its WAL records (docs/FORMAT.md section 4, payload version 2), so an
// operator can always tell how much precision a log has already given up.
//
// The criterion is the synchronized Euclidean distance (SED) of the
// TD-TR/SED simplification family: a dropped point is measured against
// where the object would have been — at the dropped point's timestamp —
// when moving linearly between the two kept points that bracket it.
// Unlike plain Douglas-Peucker's perpendicular distance, SED respects
// time, which is what the temporal queries downstream care about.
//
// The algorithm is the SED variant of Douglas-Peucker rather than an
// opening-window scan, for two reasons that are contractual here:
//
//   - Exactness: every dropped point is checked against the segment of
//     its final bracketing kept points, so the ε bound holds with no
//     error compounding (TestSimplifySEDBound asserts it point by point).
//   - Idempotence: the split point of a span is its first maximum-SED
//     point, and a subset that keeps all split points reproduces the same
//     splits — so simplify(simplify(t, ε), ε) == simplify(t, ε) exactly
//     (TestSimplifyIdempotent).  Opening-window decisions depend on
//     points that were dropped and are NOT stable on their own output.
//
// Simplification is "online" at trajectory granularity: each trajectory
// is reduced independently the moment it is submitted, with memory
// bounded by that one trajectory — nothing batches across submissions.
package simplify

import (
	"math"

	"utcq/internal/traj"
)

// SED returns the synchronized Euclidean distance of p from the segment
// a→b: the distance between p and the point an object moving linearly
// from a (at a.T) to b (at b.T) occupies at time p.T.  With a.T == b.T
// (degenerate for valid trajectories, whose timestamps strictly increase)
// it falls back to the distance from a.
func SED(p, a, b traj.RawPoint) float64 {
	if b.T == a.T {
		return math.Hypot(p.X-a.X, p.Y-a.Y)
	}
	r := float64(p.T-a.T) / float64(b.T-a.T)
	return math.Hypot(p.X-(a.X+r*(b.X-a.X)), p.Y-(a.Y+r*(b.Y-a.Y)))
}

// Trajectory returns raw reduced under the SED budget eps.  eps <= 0
// disables simplification and returns raw unchanged (same backing array:
// the ε=0 path is a true passthrough, pinned byte-identical by test).
// The first and last points are always kept, and the kept points are a
// subsequence of the input, so a valid submission (>= 2 points, strictly
// increasing timestamps) stays valid.
func Trajectory(raw traj.RawTrajectory, eps float64) traj.RawTrajectory {
	return traj.RawTrajectory{Points: Points(raw.Points, eps)}
}

// Points reduces one point sequence under the SED budget eps; see
// Trajectory.  Every dropped point has SED <= eps against the segment of
// the two kept points bracketing it in the output.
func Points(pts []traj.RawPoint, eps float64) []traj.RawPoint {
	// NaN disables like 0 does: a budget that cannot certify any drop
	// must not drop anything (every `d > eps` below would be false,
	// which without this guard would discard ALL interior points).
	if eps <= 0 || math.IsNaN(eps) || len(pts) <= 2 {
		return pts
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true

	// Iterative Douglas-Peucker over SED: split each span at its first
	// maximum-SED interior point while that maximum exceeds eps.  An
	// explicit stack keeps adversarial (fuzzed) inputs from exhausting the
	// goroutine stack on deep recursions.
	type span struct{ lo, hi int }
	stack := make([]span, 1, 32)
	stack[0] = span{0, len(pts) - 1}
	for len(stack) > 0 {
		sp := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if sp.hi-sp.lo < 2 {
			continue
		}
		split, maxDev := -1, eps
		for i := sp.lo + 1; i < sp.hi; i++ {
			d := SED(pts[i], pts[sp.lo], pts[sp.hi])
			if math.IsNaN(d) {
				// Non-finite geometry cannot be certified within budget;
				// treat it as infinitely far so the point is kept.
				d = math.Inf(1)
			}
			// Strict > keeps the FIRST maximum: the deterministic
			// tie-break the idempotence guarantee rests on.
			if d > maxDev {
				split, maxDev = i, d
			}
		}
		if split < 0 {
			continue // every interior point fits the budget: drop them all
		}
		keep[split] = true
		stack = append(stack, span{sp.lo, split}, span{split, sp.hi})
	}

	out := make([]traj.RawPoint, 0, len(pts))
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

// MaxSEDOfDropped returns the largest SED of any original point against
// the segment of the two simplified points bracketing it — the realized
// error of a simplification (0 when nothing was dropped).  simplified
// must be a subsequence of original sharing its first and last points,
// as produced by Points; the second return value is false otherwise.
func MaxSEDOfDropped(original, simplified []traj.RawPoint) (float64, bool) {
	if len(original) == 0 || len(simplified) == 0 {
		return 0, len(original) == len(simplified)
	}
	maxDev := 0.0
	k := 0 // index into simplified
	if original[0] != simplified[0] {
		return 0, false
	}
	for i := 1; i < len(original); i++ {
		if k+1 < len(simplified) && original[i] == simplified[k+1] {
			k++
			continue
		}
		if k+1 >= len(simplified) {
			return 0, false // original points after the last kept point
		}
		if d := SED(original[i], simplified[k], simplified[k+1]); d > maxDev || math.IsNaN(d) {
			maxDev = d
		}
	}
	if k != len(simplified)-1 {
		return 0, false // simplified holds points the walk never consumed
	}
	return maxDev, true
}
