// Package faultfs abstracts the filesystem operations the persistence
// layer performs — open, read, write, sync, rename, truncate, remove,
// directory sync — behind an interface with three implementations:
//
//   - OS: the real filesystem (the production default; callers that pass a
//     nil FS get it).
//   - MemFS: an in-memory filesystem that models crash semantics
//     explicitly — every file tracks its durable (fsynced) prefix
//     separately from its volatile content, and directory entries
//     (creates, renames, removes) become durable only when the directory
//     is synced.  PowerCut discards everything not explicitly made
//     durable, yielding exactly the state a machine would reboot into.
//   - Injector: a wrapper over any FS with a deterministic failpoint
//     controller — fail the Nth mutating operation with ENOSPC/EIO, or
//     "crash" after the Nth operation so every later call fails, which
//     combined with MemFS.PowerCut simulates a process death at an
//     arbitrary I/O boundary.
//
// The crash-matrix harness (internal/faultfs/crashmatrix) enumerates every
// mutating operation of a workload and replays it with a crash injected
// after each one, asserting the store's acked-durability contract at every
// point.  The same substrate backs the multi-node chaos tests the ROADMAP
// plans: killing a node mid-ingest is CrashAfter at a random op.
package faultfs

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the handle surface the persistence layer needs.  *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is a filesystem.  Implementations must be safe for concurrent use by
// multiple goroutines (the store's lazy shard opens race its mutation
// path's writes).
type FS interface {
	// Create truncates-or-creates name for writing (os.Create semantics).
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open (os.OpenFile semantics; the flag
	// subset used by this codebase is O_RDWR|O_CREATE and O_RDWR).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the whole content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks name.
	Remove(name string) error
	// MkdirAll creates a directory path (and parents).
	MkdirAll(path string, perm os.FileMode) error
	// Stat describes name.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory so completed renames/creates/removes
	// in it survive power loss.  Implementations return nil on platforms
	// whose directories cannot be synced (the operation is then a no-op,
	// not a failure); a real I/O error from a sync that should have
	// worked IS reported — callers must propagate it, because a lost
	// directory sync can orphan a renamed file after power loss.
	SyncDir(dir string) error
}

// OS is the real filesystem.  Callers treat a nil FS as OS, so existing
// call sites need no explicit wiring.
var OS FS = osFS{}

// Resolve returns fs, or OS when fs is nil — the idiom every consumer
// uses to default.
func Resolve(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}

// IsOS reports whether fs is the real filesystem (after Resolve); callers
// use it to pick OS-only fast paths such as mmap.
func IsOS(fs FS) bool { return fs == nil || fs == OS }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// SyncDir opens and fsyncs the directory.  Errors meaning "this platform
// or filesystem cannot sync directories" (EINVAL, ENOTSUP, EBADF on some
// BSDs) degrade to nil — an unsupported sync is not a lost sync; a real
// I/O failure is returned.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) || errors.Is(serr, syscall.EBADF) {
			return nil
		}
		return serr
	}
	return cerr
}
