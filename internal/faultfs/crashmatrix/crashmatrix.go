// Package crashmatrix enumerates every crash point of a deterministic
// persistence workload and verifies recovery at each one.
//
// A workload runs against a faultfs.MemFS through a faultfs.Injector.  The
// harness first runs it cleanly to count its mutating filesystem
// operations, then replays it once per crash point k: operations 0..k
// execute, everything after fails with ErrCrashed, the power is cut
// (MemFS.PowerCut discards all content not fsynced and all directory
// entries not dir-synced), and the workload's Verify callback reopens the
// state and asserts its durability contract — for the UTCQ store: every
// acknowledged trajectory is recoverable, no partial generation is
// visible, and recovery never panics.  A torn-bytes sweep additionally
// lets a prefix of unsynced appends survive each cut, modeling disks that
// persist partial sectors.  The same machinery drives a one-shot
// ENOSPC/EIO sweep with the process left alive (no power cut), asserting
// the store degrades instead of corrupting.
//
// On the first failing point the harness reports the exact (kind, op
// index, torn bytes) triple — the seed to replay the failure under a
// debugger — and, when the UTCQ_CRASHMATRIX_ARTIFACT environment variable
// names a directory, writes it there as JSON for CI to upload.
package crashmatrix

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"utcq/internal/faultfs"
)

// Point identifies one cell of the matrix.
type Point struct {
	// Kind is "crash" (power cut after op Index), "enospc" or "eio"
	// (one-shot fault at op Index, process alive).
	Kind string `json:"kind"`
	// Index is the zero-based mutating-op index the fault targets; -1
	// means a crash before the first mutating op.
	Index int64 `json:"index"`
	// Torn is the number of unsynced bytes per file that survived the
	// power cut (crash kind only).
	Torn int `json:"torn"`
}

func (p Point) String() string {
	return fmt.Sprintf("%s at op %d (torn %d)", p.Kind, p.Index, p.Torn)
}

// Workload is one deterministic persistence scenario.  Setup and Run must
// perform an identical operation sequence on every invocation — the op
// count of the clean run indexes the faulted replays.
type Workload struct {
	Name string
	// Setup prepares the initial durable state (build + save a store,
	// …).  It runs on the bare MemFS: its operations are not fault
	// candidates and must succeed.
	Setup func(fs faultfs.FS) error
	// Run performs the mutations under test through fs.  Injected faults
	// must propagate out as errors; the harness ignores the error value
	// (a faulted run is expected to fail) but a panic fails the matrix.
	Run func(fs faultfs.FS) error
	// Verify reopens the durable state after a simulated crash and
	// asserts the workload's recovery contract.
	Verify func(fs *faultfs.MemFS, p Point) error
	// VerifyFault asserts the process-alive contract after a one-shot
	// injected fault (nil: Verify is reused — a clean restart with no
	// power loss must satisfy the same contract).
	VerifyFault func(fs *faultfs.MemFS, p Point) error
}

// Options shape the sweep.
type Options struct {
	// TornBytes lists the torn-write sizes to sweep (nil: just 0).
	TornBytes []int
	// MaxPoints caps the crash points enumerated per torn setting by
	// striding through them (0: every point).  The first and last points
	// are always included.
	MaxPoints int
	// Faults additionally sweeps one-shot ENOSPC and EIO failpoints over
	// the same (strided) op indices.
	Faults bool
}

// ArtifactEnv names the environment variable that, when set to a
// directory, receives a JSON artifact describing the first failing point.
const ArtifactEnv = "UTCQ_CRASHMATRIX_ARTIFACT"

// Result summarizes a completed sweep.
type Result struct {
	// Ops is the workload's mutating-op count (the matrix width).
	Ops int64
	// Points is the number of matrix cells executed.
	Points int
}

// Run executes the full matrix and returns on the first failing point.
func Run(w Workload, opts Options) (Result, error) {
	var res Result

	// Clean pass: establish the op count and require the workload itself
	// to be sound.
	mem := faultfs.NewMemFS()
	if err := w.Setup(mem); err != nil {
		return res, fmt.Errorf("crashmatrix %s: setup: %w", w.Name, err)
	}
	inj := faultfs.NewInjector(mem)
	if err := guard(func() error { return w.Run(inj) }); err != nil {
		return res, fmt.Errorf("crashmatrix %s: clean run: %w", w.Name, err)
	}
	res.Ops = inj.OpCount()

	torns := opts.TornBytes
	if len(torns) == 0 {
		torns = []int{0}
	}
	points := samplePoints(res.Ops, opts.MaxPoints)

	for _, torn := range torns {
		for _, k := range points {
			p := Point{Kind: "crash", Index: k, Torn: torn}
			res.Points++
			if err := w.runCrashPoint(p); err != nil {
				return res, w.fail(p, err)
			}
		}
	}
	if opts.Faults {
		for _, kind := range []string{"enospc", "eio"} {
			errno := faultfs.ENOSPC
			if kind == "eio" {
				errno = faultfs.EIO
			}
			for _, k := range points {
				if k < 0 {
					continue // FailAt has no pre-first-op cell
				}
				p := Point{Kind: kind, Index: k}
				res.Points++
				if err := w.runFaultPoint(p, errno); err != nil {
					return res, w.fail(p, err)
				}
			}
		}
	}
	return res, nil
}

// runCrashPoint replays the workload with a crash boundary after op
// p.Index, cuts the power, and verifies recovery.
func (w Workload) runCrashPoint(p Point) error {
	mem := faultfs.NewMemFS()
	if err := w.Setup(mem); err != nil {
		return fmt.Errorf("setup: %w", err)
	}
	inj := faultfs.NewInjector(mem)
	inj.CrashAfter(p.Index)
	if err := guard(func() error { _ = w.Run(inj); return nil }); err != nil {
		return err // the workload panicked under injection
	}
	mem.SetTornBytes(p.Torn)
	mem.PowerCut()
	return guard(func() error { return w.Verify(mem, p) })
}

// runFaultPoint replays the workload with a one-shot errno at op p.Index
// and verifies the process-alive contract (no power cut).
func (w Workload) runFaultPoint(p Point, errno error) error {
	mem := faultfs.NewMemFS()
	if err := w.Setup(mem); err != nil {
		return fmt.Errorf("setup: %w", err)
	}
	inj := faultfs.NewInjector(mem)
	inj.FailAt(p.Index, errno)
	if err := guard(func() error { _ = w.Run(inj); return nil }); err != nil {
		return err
	}
	inj.Disarm()
	verify := w.VerifyFault
	if verify == nil {
		verify = w.Verify
	}
	return guard(func() error { return verify(mem, p) })
}

// fail wraps a point failure with its replay seed and writes the CI
// artifact when configured.
func (w Workload) fail(p Point, err error) error {
	if dir := os.Getenv(ArtifactEnv); dir != "" {
		artifact := struct {
			Workload string `json:"workload"`
			Point    Point  `json:"point"`
			Error    string `json:"error"`
		}{w.Name, p, err.Error()}
		if data, jerr := json.MarshalIndent(artifact, "", "  "); jerr == nil {
			name := fmt.Sprintf("crashmatrix-%s-%s-%d.json", w.Name, p.Kind, p.Index)
			_ = os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
		}
	}
	return fmt.Errorf("crashmatrix %s: %s: %w", w.Name, p, err)
}

// samplePoints returns the crash indices to enumerate: every index in
// [-1, ops) when maxPoints permits, otherwise a stride through them that
// keeps the first and last.
func samplePoints(ops int64, maxPoints int) []int64 {
	total := ops + 1 // -1 .. ops-1
	var out []int64
	if maxPoints <= 0 || total <= int64(maxPoints) {
		for k := int64(-1); k < ops; k++ {
			out = append(out, k)
		}
		return out
	}
	stride := (total + int64(maxPoints) - 1) / int64(maxPoints)
	for k := int64(-1); k < ops; k += stride {
		out = append(out, k)
	}
	if out[len(out)-1] != ops-1 {
		out = append(out, ops-1)
	}
	return out
}

// guard runs f and converts a panic into an error: "recovery never
// panics" is itself one of the matrix's assertions.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f()
}
