package crashmatrix

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"utcq/internal/faultfs"
)

// atomicWorkload updates "f" from v1 to v2 with the full write-temp +
// fsync + rename + dir-sync protocol; after any crash the file must read
// exactly v1 or exactly v2.
func atomicWorkload(protocol func(fs faultfs.FS) error) Workload {
	return Workload{
		Name: "atomic-update",
		Setup: func(fs faultfs.FS) error {
			f, err := fs.Create("f")
			if err != nil {
				return err
			}
			if _, err := f.Write([]byte("v1")); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			return fs.SyncDir(".")
		},
		Run: protocol,
		Verify: func(fs *faultfs.MemFS, p Point) error {
			data, err := fs.ReadFile("f")
			if err != nil {
				return fmt.Errorf("f unreadable: %w", err)
			}
			if s := string(data); s != "v1" && s != "v2" {
				return fmt.Errorf("f = %q, want v1 or v2", s)
			}
			return nil
		},
	}
}

// TestMatrixPassesCorrectProtocol: the full atomic protocol survives a
// crash after every op, including with torn writes.
func TestMatrixPassesCorrectProtocol(t *testing.T) {
	w := atomicWorkload(func(fs faultfs.FS) error {
		f, err := fs.Create("f.tmp")
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("v2")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := fs.Rename("f.tmp", "f"); err != nil {
			return err
		}
		return fs.SyncDir(".")
	})
	res, err := Run(w, Options{TornBytes: []int{0, 1}, Faults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 5 { // create, write, sync, rename, syncdir
		t.Fatalf("op count = %d, want 5", res.Ops)
	}
	if res.Points == 0 {
		t.Fatal("no points enumerated")
	}
}

// TestMatrixCatchesBrokenProtocol: persisting a commit marker before the
// data it vouches for violates the recovery contract at the crash point
// between the two — the harness must find it and dump the replay
// artifact.
func TestMatrixCatchesBrokenProtocol(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(ArtifactEnv, dir)
	writeSynced := func(fs faultfs.FS, name, content string) error {
		f, err := fs.Create(name)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(content)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return fs.SyncDir(".")
	}
	w := Workload{
		Name:  "atomic-update",
		Setup: func(fs faultfs.FS) error { return nil },
		Run: func(fs faultfs.FS) error {
			// Broken ordering: the marker lands durably before the data.
			if err := writeSynced(fs, "commit", "yes"); err != nil {
				return err
			}
			return writeSynced(fs, "data", "v2")
		},
		Verify: func(fs *faultfs.MemFS, p Point) error {
			if _, err := fs.ReadFile("commit"); err != nil {
				return nil // no marker: nothing was promised
			}
			data, err := fs.ReadFile("data")
			if err != nil || string(data) != "v2" {
				return fmt.Errorf("commit marker present but data = %q, %v", data, err)
			}
			return nil
		},
	}
	_, err := Run(w, Options{})
	if err == nil {
		t.Fatal("matrix should catch the marker-before-data ordering")
	}
	if !strings.Contains(err.Error(), "crash at op") {
		t.Fatalf("failure should carry the replay point: %v", err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "crashmatrix-*.json"))
	if len(matches) != 1 {
		t.Fatalf("expected one artifact, found %v", matches)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || !strings.Contains(string(data), "atomic-update") {
		t.Fatalf("artifact content: %q, %v", data, err)
	}
}

// TestMatrixCatchesPanics: a workload that panics during recovery fails
// the matrix rather than crashing the test binary.
func TestMatrixCatchesPanics(t *testing.T) {
	w := Workload{
		Name:   "panicky",
		Setup:  func(fs faultfs.FS) error { return nil },
		Run:    func(fs faultfs.FS) error { _ = mustSyncDir(fs); return nil },
		Verify: func(fs *faultfs.MemFS, p Point) error { panic("recovery exploded") },
	}
	_, err := Run(w, Options{})
	if err == nil || !strings.Contains(err.Error(), "panic: recovery exploded") {
		t.Fatalf("panic should surface as a matrix failure, got %v", err)
	}
}

func mustSyncDir(fs faultfs.FS) error { return fs.SyncDir(".") }

func TestSamplePoints(t *testing.T) {
	full := samplePoints(5, 0)
	if len(full) != 6 || full[0] != -1 || full[5] != 4 {
		t.Fatalf("full sweep: %v", full)
	}
	capped := samplePoints(100, 10)
	if len(capped) > 12 {
		t.Fatalf("capped sweep too large: %v", capped)
	}
	if capped[0] != -1 || capped[len(capped)-1] != 99 {
		t.Fatalf("capped sweep must keep endpoints: %v", capped)
	}
}
