package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, fs FS, name, content string, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMemFSPowerCutDurability pins the two-barrier model: file content
// survives only up to its fsynced prefix, and the name itself survives
// only after its directory is synced.
func TestMemFSPowerCutDurability(t *testing.T) {
	m := NewMemFS()

	writeAll(t, m, "a", "synced", true)
	writeAll(t, m, "c", "never-synced", false)
	if err := m.SyncDir("."); err != nil { // links a and c's names; c's bytes stay volatile
		t.Fatal(err)
	}
	writeAll(t, m, "b", "never-linked", true) // content synced, name never dir-synced

	m.PowerCut()

	if data, err := m.ReadFile("a"); err != nil || string(data) != "synced" {
		t.Fatalf("a after cut: %q, %v", data, err)
	}
	if _, err := m.ReadFile("b"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("b should have lost its directory entry, got %v", err)
	}
	if data, err := m.ReadFile("c"); err != nil || len(data) != 0 {
		t.Fatalf("c should survive empty (name durable, bytes not): %q, %v", data, err)
	}
}

// TestMemFSTornWrites: with a torn budget, a prefix of the unsynced tail
// survives — never a suffix, never more than the budget.
func TestMemFSTornWrites(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}

	m.SetTornBytes(3)
	m.PowerCut()
	if data, _ := m.ReadFile("log"); string(data) != "durable|vol" {
		t.Fatalf("torn cut kept %q, want %q", data, "durable|vol")
	}

	// Idempotent: a second cut with zero budget keeps everything already
	// durable (the survivors were re-marked synced).
	m.SetTornBytes(0)
	m.PowerCut()
	if data, _ := m.ReadFile("log"); string(data) != "durable|vol" {
		t.Fatalf("second cut kept %q", data)
	}
}

// TestMemFSRenameRequiresDirSync: an unsynced rename un-happens at power
// loss — the durable namespace still holds the old binding.
func TestMemFSRenameRequiresDirSync(t *testing.T) {
	m := NewMemFS()
	writeAll(t, m, "f.tmp", "v2", true)
	writeAll(t, m, "f", "v1", true)
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}
	m.PowerCut()
	if data, _ := m.ReadFile("f"); string(data) != "v1" {
		t.Fatalf("unsynced rename survived the cut: f = %q", data)
	}

	// Same sequence with the directory sync: the rename is durable.
	m = NewMemFS()
	writeAll(t, m, "f.tmp", "v2", true)
	writeAll(t, m, "f", "v1", true)
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	m.PowerCut()
	if data, _ := m.ReadFile("f"); string(data) != "v2" {
		t.Fatalf("synced rename lost: f = %q", data)
	}
	if _, err := m.ReadFile("f.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("renamed-away name survived: %v", err)
	}
}

// TestMemFSTruncateClipsSyncedPrefix: shrinking below the synced length
// reduces what a cut preserves.
func TestMemFSTruncateClipsSyncedPrefix(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	m.PowerCut()
	if data, _ := m.ReadFile("t"); string(data) != "0123" {
		t.Fatalf("after truncate+cut: %q", data)
	}
}

// TestInjectorFailAt: exactly the armed op fails, with the armed errno
// reachable through errors.Is, and the run recovers after it.
func TestInjectorFailAt(t *testing.T) {
	mem := NewMemFS()
	inj := NewInjector(mem)

	// Mutating op sequence of one writeAll(sync): create(0), write(1),
	// sync(2).
	inj.FailAt(1, ENOSPC)
	f, err := inj.Create("x")
	if err != nil {
		t.Fatalf("create should pass: %v", err)
	}
	_, err = f.Write([]byte("p"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ENOSPC) {
		t.Fatalf("write should fail with injected ENOSPC, got %v", err)
	}
	if got := inj.FailedOp(); got != OpWrite {
		t.Fatalf("failed op = %v, want write", got)
	}
	// One-shot: the retry succeeds.
	if _, err := f.Write([]byte("p")); err != nil {
		t.Fatalf("retry after one-shot fault: %v", err)
	}
	f.Close()
}

// TestInjectorCrashAfter: ops at or below the boundary execute, every op
// after it — including reads — fails with ErrCrashed.
func TestInjectorCrashAfter(t *testing.T) {
	mem := NewMemFS()
	inj := NewInjector(mem)
	inj.CrashAfter(2) // allow create, write, sync

	f, err := inj.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := inj.SyncDir("."); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op past the boundary should crash, got %v", err)
	}
	if _, err := inj.ReadFile("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("reads after the crash should fail, got %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() should latch")
	}

	// The underlying fs still reflects the pre-crash writes until PowerCut
	// discards what was never made durable by a directory sync.
	mem.PowerCut()
	if _, err := mem.ReadFile("x"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("x's name was never dir-synced, got %v", err)
	}
}

// TestInjectorCrashBeforeFirstOp: index -1 crashes the very first
// mutating op.
func TestInjectorCrashBeforeFirstOp(t *testing.T) {
	inj := NewInjector(NewMemFS())
	inj.CrashAfter(-1)
	if _, err := inj.Create("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("first op should crash, got %v", err)
	}
}

// TestInjectorOpCountDeterministic: the same serial workload always maps
// to the same op indices — the property the crash matrix rests on.
func TestInjectorOpCountDeterministic(t *testing.T) {
	run := func() int64 {
		mem := NewMemFS()
		inj := NewInjector(mem)
		writeAll(t, inj, "a", "one", true)
		if err := inj.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		if err := inj.Rename("a", "b"); err != nil {
			t.Fatal(err)
		}
		if err := inj.Remove("b"); err != nil {
			t.Fatal(err)
		}
		return inj.OpCount()
	}
	n1, n2 := run(), run()
	if n1 != n2 || n1 == 0 {
		t.Fatalf("op counts differ or zero: %d vs %d", n1, n2)
	}
}

// TestOSFSRoundTrip smoke-tests the production implementation against a
// real temp directory, including SyncDir.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := Resolve(nil)
	if !IsOS(fs) {
		t.Fatal("Resolve(nil) should be the OS filesystem")
	}
	name := filepath.Join(dir, "f")
	writeAll(t, fs, name+".tmp", "hello", true)
	if err := fs.Rename(name+".tmp", name); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil || string(data) != "hello" {
		t.Fatalf("round trip: %q, %v", data, err)
	}
	if got, err := fs.ReadFile(name); err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}
	if err := fs.Remove(name); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(name); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}
