package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// MemFS is an in-memory filesystem that models what survives a power
// failure, for deterministic crash testing.
//
// Two layers of state exist side by side:
//
//   - The volatile layer is what the running process observes: every
//     write, rename, create and remove is visible immediately, exactly
//     like an OS page cache.
//   - The durable layer is what a reboot would find.  File CONTENT
//     becomes durable up to the current length when the file is fsynced
//     (File.Sync).  NAMESPACE changes — which names exist and which inode
//     each points to — become durable only when the containing directory
//     is synced (SyncDir), matching POSIX: fsyncing a freshly created or
//     renamed file does not persist its directory entry.
//
// PowerCut discards the volatile layer: the filesystem becomes exactly
// its durable layer, except that each inode may additionally keep a
// configurable prefix of its unsynced tail (SetTornBytes) — the "torn
// write" a disk that persisted some cache pages but not others leaves
// behind.  Unsynced data never survives out of order or beyond that
// prefix: this is the strictest (most adversarial) model consistent with
// fsync's contract.
//
// Directories themselves are durable upon creation (directory metadata
// journaling is not what these tests target); entries inside them follow
// the rules above.
type MemFS struct {
	mu   sync.Mutex
	vol  map[string]*memInode // volatile namespace: name -> inode
	dur  map[string]*memInode // durable namespace: name -> inode
	dirs map[string]bool      // existing directories (always durable)

	torn int // unsynced prefix bytes each inode keeps at PowerCut
}

// memInode is one file's content.  data is the volatile content; synced
// is the number of leading bytes guaranteed durable (advanced by Sync,
// clipped by Truncate).  Because this codebase never overwrites synced
// bytes in place (appends, fresh temp files, and shrinking truncates
// only), "durable content" is always a prefix of the volatile content.
type memInode struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem with a root directory.
func NewMemFS() *MemFS {
	return &MemFS{
		vol:  make(map[string]*memInode),
		dur:  make(map[string]*memInode),
		dirs: map[string]bool{".": true, "/": true},
	}
}

// SetTornBytes configures how many unsynced bytes each file keeps at the
// next PowerCut (default 0: unsynced data is lost entirely).  Modeling a
// partially persisted write-back cache, the retained bytes are always a
// prefix of the unsynced tail.
func (m *MemFS) SetTornBytes(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.torn = n
}

// PowerCut simulates losing power: the volatile layer is discarded and
// the filesystem re-initializes from the durable layer.  Open handles
// become invalid (their writes land on orphaned inodes, as a crashed
// process's would).  The durable layer itself is rebuilt from the
// surviving content so repeated PowerCuts are idempotent.
func (m *MemFS) PowerCut() {
	m.mu.Lock()
	defer m.mu.Unlock()
	vol := make(map[string]*memInode, len(m.dur))
	dur := make(map[string]*memInode, len(m.dur))
	for name, ino := range m.dur {
		keep := ino.synced
		if extra := len(ino.data) - ino.synced; extra > 0 && m.torn > 0 {
			keep += min(m.torn, extra)
		}
		surv := &memInode{data: append([]byte(nil), ino.data[:keep]...), synced: keep}
		vol[name] = surv
		dur[name] = surv
	}
	m.vol = vol
	m.dur = dur
}

// DurableNames returns the sorted names a power cut would preserve
// (diagnostics for harness failure reports).
func (m *MemFS) DurableNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.dur))
	for name := range m.dur {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (m *MemFS) clean(name string) string { return filepath.Clean(name) }

// Create truncates-or-creates name.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = m.clean(name)
	ino := &memInode{}
	m.vol[name] = ino
	return &memFile{fs: m, name: name, ino: ino, writable: true}, nil
}

// Open opens name read-only.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = m.clean(name)
	if m.dirs[name] {
		// Directory opens only exist so osFS.SyncDir has a handle; MemFS
		// syncs directories through SyncDir, so a directory File is not
		// needed and signals a misuse.
		return nil, &os.PathError{Op: "open", Path: name, Err: fmt.Errorf("faultfs: MemFS directories have no file handles")}
	}
	ino, ok := m.vol[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memFile{fs: m, name: name, ino: ino}, nil
}

// OpenFile implements the O_RDWR / O_CREATE / O_TRUNC subset.
func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = m.clean(name)
	ino, ok := m.vol[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		ino = &memInode{}
		m.vol[name] = ino
	} else if flag&os.O_TRUNC != 0 {
		ino.data = ino.data[:0]
		ino.synced = 0
	}
	return &memFile{fs: m, name: name, ino: ino, writable: flag&(os.O_RDWR|os.O_WRONLY) != 0}, nil
}

// ReadFile returns a copy of name's volatile content.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.vol[m.clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// Rename atomically repoints newpath at oldpath's inode (volatile until
// the directory is synced).
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = m.clean(oldpath), m.clean(newpath)
	ino, ok := m.vol[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	m.vol[newpath] = ino
	delete(m.vol, oldpath)
	return nil
}

// Remove unlinks name (volatile until the directory is synced).
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = m.clean(name)
	if _, ok := m.vol[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.vol, name)
	return nil
}

// MkdirAll records the directory chain.  Directory existence is treated
// as immediately durable (see the type comment).
func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = m.clean(path)
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// Stat describes name.
func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = m.clean(name)
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	if ino, ok := m.vol[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(ino.data))}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

// SyncDir commits the volatile namespace of dir to the durable layer:
// every entry directly inside dir is durably linked to its current inode,
// and durable entries removed or renamed away since the last sync are
// durably forgotten.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = m.clean(dir)
	inDir := func(name string) bool { return filepath.Dir(name) == dir }
	for name := range m.dur {
		if inDir(name) {
			if _, live := m.vol[name]; !live {
				delete(m.dur, name)
			}
		}
	}
	for name, ino := range m.vol {
		if inDir(name) {
			m.dur[name] = ino
		}
	}
	m.dirs[dir] = true
	return nil
}

// memFile is a handle onto a MemFS inode.
type memFile struct {
	fs       *MemFS
	name     string
	ino      *memInode
	off      int64
	writable bool
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if off < 0 || off > int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: os.ErrPermission}
	}
	end := f.off + int64(len(p))
	for int64(len(f.ino.data)) < end {
		f.ino.data = append(f.ino.data, 0)
	}
	copy(f.ino.data[f.off:end], p)
	f.off = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.ino.data)) + offset
	}
	if f.off < 0 {
		return 0, &os.PathError{Op: "seek", Path: f.name, Err: fmt.Errorf("negative offset")}
	}
	return f.off, nil
}

// Sync makes the inode's current content durable (content only — the
// directory entry needs SyncDir; see the MemFS comment).
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.ino.synced = len(f.ino.data)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if size < 0 || size > int64(len(f.ino.data)) {
		return &os.PathError{Op: "truncate", Path: f.name, Err: fmt.Errorf("size %d out of range", size)}
	}
	f.ino.data = f.ino.data[:size]
	if f.ino.synced > int(size) {
		f.ino.synced = int(size)
	}
	return nil
}

func (f *memFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return memInfo{name: filepath.Base(f.name), size: int64(len(f.ino.data))}, nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

// memInfo is the minimal os.FileInfo for MemFS entries.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
