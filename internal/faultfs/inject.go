package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Op labels one filesystem operation class for fault targeting and
// failure reports.
type Op uint8

const (
	OpCreate Op = iota
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpMkdir:
		return "mkdir"
	case OpSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// mutating reports whether the op changes persistent state.  Only
// mutating ops are failpoint candidates: a crash boundary between two
// reads is indistinguishable from one before the first, so enumerating
// them would inflate the matrix without adding coverage.
func (o Op) mutating() bool {
	switch o {
	case OpCreate, OpWrite, OpSync, OpRename, OpRemove, OpTruncate, OpSyncDir:
		return true
	}
	return false
}

// ErrCrashed is returned by every operation after the injected crash
// point: the simulated process is dead and can perform no further I/O.
var ErrCrashed = errors.New("faultfs: crashed (injected)")

// ErrInjected wraps a deterministically injected fault; unwrap to reach
// the modeled errno (syscall.ENOSPC, syscall.EIO).
var ErrInjected = errors.New("faultfs: injected fault")

// Injector wraps an FS with a deterministic failpoint controller.  Every
// mutating operation gets a monotonically increasing index; the
// controller can make exactly one of them fail (FailAt) or declare a
// crash boundary (CrashAfter) past which every operation — mutating or
// not — returns ErrCrashed.  Safe for concurrent use; concurrent
// workloads get a deterministic op COUNT but an interleaving-dependent
// op→index mapping, so crash-matrix workloads should serialize their I/O
// (the store's mutation path already does).
type Injector struct {
	fs FS

	mu      sync.Mutex
	count   int64 // mutating ops observed so far
	failAt  int64 // mutating op index to fail once (-1: disarmed)
	failErr error // error injected at failAt
	failOp  Op    // op class that hit failAt (for reports)
	crashAt int64 // crash boundary: ops with index > crashAt fail (-2: disarmed)
	crashed bool  // a crash boundary has been passed
}

// NewInjector wraps fs with a disarmed controller.
func NewInjector(fs FS) *Injector {
	return &Injector{fs: Resolve(fs), failAt: -1, crashAt: -2}
}

// ENOSPC and EIO are the injectable errno values, exported so tests can
// assert on them without importing syscall.
var (
	ENOSPC error = syscall.ENOSPC
	EIO    error = syscall.EIO
)

// FailAt arms a one-shot fault: the mutating operation with the given
// zero-based index returns an ErrInjected wrapping errno; every other
// operation proceeds normally.  Also resets the op counter.
func (in *Injector) FailAt(index int64, errno error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.count = 0
	in.failAt = index
	in.failErr = errno
	in.crashAt = -2
	in.crashed = false
}

// CrashAfter arms a crash boundary: mutating operations with index <=
// index execute normally; every operation after the boundary (any class)
// returns ErrCrashed.  index -1 crashes before the first mutating op.
// Also resets the op counter.
func (in *Injector) CrashAfter(index int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.count = 0
	in.failAt = -1
	in.crashAt = index
	in.crashed = false
}

// Disarm clears all failpoints (recovery runs against the same FS without
// interference) while keeping the op counter running.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failAt = -1
	in.crashAt = -2
	in.crashed = false
}

// OpCount returns the mutating operations observed since the last arm.
func (in *Injector) OpCount() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.count
}

// Crashed reports whether a crash boundary has been passed.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// FailedOp returns the op class that consumed the FailAt failpoint
// (meaningful after a run that hit it).
func (in *Injector) FailedOp() Op {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.failOp
}

// gate implements the controller decision for one operation.  It returns
// a non-nil error when the op must fail instead of executing.
func (in *Injector) gate(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	if !op.mutating() {
		return nil
	}
	idx := in.count
	in.count++
	if in.crashAt != -2 && idx > in.crashAt {
		in.crashed = true
		return ErrCrashed
	}
	if idx == in.failAt {
		in.failAt = -1 // one-shot
		in.failOp = op
		return fmt.Errorf("%w: %s op %d: %w", ErrInjected, op, idx, in.failErr)
	}
	return nil
}

func (in *Injector) Create(name string) (File, error) {
	if err := in.gate(OpCreate); err != nil {
		return nil, err
	}
	f, err := in.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.gate(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	// An open that can create is a mutating op; a plain open is not.
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if err := in.gate(op); err != nil {
		return nil, err
	}
	f, err := in.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err := in.gate(OpRead); err != nil {
		return nil, err
	}
	return in.fs.ReadFile(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.gate(OpRename); err != nil {
		return err
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.gate(OpRemove); err != nil {
		return err
	}
	return in.fs.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.gate(OpMkdir); err != nil {
		return err
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if err := in.gate(OpRead); err != nil {
		return nil, err
	}
	return in.fs.Stat(name)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.gate(OpSyncDir); err != nil {
		return err
	}
	return in.fs.SyncDir(dir)
}

// injFile routes a handle's operations through the controller.
type injFile struct {
	f  File
	in *Injector
}

func (f *injFile) Read(p []byte) (int, error) {
	if err := f.in.gate(OpRead); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.in.gate(OpRead); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f *injFile) Write(p []byte) (int, error) {
	if err := f.in.gate(OpWrite); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.in.gate(OpRead); err != nil {
		return 0, err
	}
	return f.f.Seek(offset, whence)
}

func (f *injFile) Sync() error {
	if err := f.in.gate(OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if err := f.in.gate(OpTruncate); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *injFile) Stat() (os.FileInfo, error) {
	if err := f.in.gate(OpRead); err != nil {
		return nil, err
	}
	return f.f.Stat()
}

// Close is never failed: a crashed process's descriptors close anyway,
// and failing Close would only mask the controller's primary fault.
func (f *injFile) Close() error { return f.f.Close() }
