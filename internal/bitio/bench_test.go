package bitio

import (
	"math/rand"
	"testing"
)

// benchValues is a fixed mix of widths/values resembling the real streams:
// narrow edge numbers, medium vertex ids, wide timestamps.
func benchValues() ([]uint64, []int) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 4096)
	widths := make([]int, 4096)
	for i := range vals {
		var w int
		switch i % 4 {
		case 0:
			w = 3
		case 1:
			w = 11
		case 2:
			w = 17
		default:
			w = 40
		}
		widths[i] = w
		vals[i] = rng.Uint64() & (1<<uint(w) - 1)
	}
	return vals, widths
}

func BenchmarkBitioWrite(b *testing.B) {
	vals, widths := benchValues()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriter(len(vals) * 18)
		for k := range vals {
			w.WriteBits(vals[k], widths[k])
		}
		if w.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitioRead(b *testing.B) {
	vals, widths := benchValues()
	w := NewWriter(len(vals) * 18)
	for k := range vals {
		w.WriteBits(vals[k], widths[k])
	}
	buf := w.Bytes()
	nbits := w.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReaderBits(buf, nbits)
		for k := range vals {
			v, err := r.ReadBits(widths[k])
			if err != nil {
				b.Fatal(err)
			}
			if v != vals[k] {
				b.Fatalf("value %d: got %d want %d", k, v, vals[k])
			}
		}
	}
}

func BenchmarkBitioUnary(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ns := make([]int, 4096)
	for i := range ns {
		ns[i] = rng.Intn(24)
	}
	w := NewWriter(len(ns) * 12)
	for _, n := range ns {
		w.WriteUnary(n)
	}
	buf := w.Bytes()
	nbits := w.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReaderBits(buf, nbits)
		for k := range ns {
			n, err := r.ReadUnary()
			if err != nil {
				b.Fatal(err)
			}
			if n != ns[k] {
				b.Fatalf("unary %d: got %d want %d", k, n, ns[k])
			}
		}
	}
}

func BenchmarkBitioEliasGamma(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1<<16)) + 1
	}
	w := NewWriter(len(vals) * 33)
	for _, v := range vals {
		w.WriteEliasGamma(v)
	}
	buf := w.Bytes()
	nbits := w.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReaderBits(buf, nbits)
		for k := range vals {
			v, err := r.ReadEliasGamma()
			if err != nil {
				b.Fatal(err)
			}
			if v != vals[k] {
				b.Fatalf("gamma %d: got %d want %d", k, v, vals[k])
			}
		}
	}
}
