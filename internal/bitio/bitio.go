// Package bitio provides bit-level writers and readers used by every
// compression scheme in this repository: the substrate for the encodings
// of Section 4 of the UTCQ paper and the partial-decompression machinery
// of Section 5.1.
//
// All multi-bit fields are written most-significant-bit first, which makes
// the streams match the worked examples in the UTCQ paper (e.g. the
// improved Exp-Golomb codeword "1000" for Δ=+1, Section 4.4).  The exact
// bit layout of every primitive is specified normatively in
// docs/FORMAT.md.
//
// Both Writer and Reader track their absolute bit position.  The StIU index
// stores such positions (t.pos, d.pos, ma.pos) so that query processing can
// resume decoding mid-stream (partial decompression, Section 5.1).
//
// The hot paths are word-level: the Writer packs MSB-first into a 64-bit
// accumulator flushed eight bytes at a time, and the Reader extracts fields
// from a single big-endian 64-bit load; unary and Elias-gamma runs are
// scanned with math/bits.LeadingZeros64 instead of per-bit loops.  The bit
// streams produced are identical to the historical bit-by-bit
// implementation (see FuzzBitioRoundTrip, which cross-checks against a
// reference bit-by-bit model).
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// errMalformedGamma is returned for implausibly long Elias-gamma prefixes.
var errMalformedGamma = errors.New("bitio: malformed Elias gamma code")

// Writer accumulates bits into a byte slice.  The zero value is ready to use.
//
// Internally, buf holds completed bytes and acc stages up to 63 pending bits
// in its most-significant positions; acc is flushed to buf eight bytes at a
// time.  Bytes settles the pending bits into buf, and a write after Bytes
// un-settles them, so interleaving writes and Bytes stays correct.
type Writer struct {
	buf     []byte
	acc     uint64 // pending bits, MSB-first, top accN bits valid
	accN    int    // number of pending bits, in [0, 64)
	nbit    int    // total number of bits written
	settled bool   // buf currently carries (accN+7)/8 provisional bytes
}

// NewWriter returns a Writer with capacity for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.  It is also the bit
// position at which the next write will land.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the written bits packed into bytes.  The final byte is
// zero-padded.  The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte {
	if !w.settled {
		acc := w.acc
		for n := w.accN; n > 0; n -= 8 {
			w.buf = append(w.buf, byte(acc>>56))
			acc <<= 8
		}
		w.settled = true
	}
	return w.buf
}

// push appends the width least-significant bits of v (already masked to
// width) through the accumulator.  width must be in [0, 64].
func (w *Writer) push(v uint64, width int) {
	if w.settled {
		w.buf = w.buf[:len(w.buf)-(w.accN+7)/8]
		w.settled = false
	}
	n := w.accN + width
	switch {
	case n < 64:
		w.acc |= v << uint(64-n)
		w.accN = n
	case n == 64:
		w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc|v)
		w.acc, w.accN = 0, 0
	default: // n in (64, 128): flush 64 bits, keep the low n-64 bits of v
		w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc|v>>uint(n-64))
		w.acc = v << uint(128-n)
		w.accN = n - 64
	}
	w.nbit += width
}

// WriteBit appends a single bit (any non-zero b writes a 1).
func (w *Writer) WriteBit(b uint) {
	if b != 0 {
		b = 1
	}
	w.push(uint64(b), 1)
}

// WriteBool appends a single bit from a bool.
func (w *Writer) WriteBool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	w.push(v, 1)
}

// WriteBits appends the width least-significant bits of v, MSB first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	w.push(v, width)
}

// WriteUnary appends n 1-bits followed by a terminating 0-bit.
func (w *Writer) WriteUnary(n int) {
	for n >= 63 {
		w.push(1<<63-1, 63)
		n -= 63
	}
	// n ones and the terminating zero fit in one push of n+1 bits.
	w.push(1<<uint(n+1)-2, n+1)
}

// WriteEliasGamma appends the Elias-gamma code of v (v >= 1): the bit length
// of v in unary-minus-one zeros, then v itself in binary.
func (w *Writer) WriteEliasGamma(v uint64) {
	if v == 0 {
		panic("bitio: Elias gamma undefined for 0")
	}
	n := bits.Len64(v)
	if 2*n-1 <= 64 {
		// v < 2^n, so writing v in 2n-1 bits yields exactly n-1 leading
		// zeros followed by the n bits of v.
		w.push(v, 2*n-1)
		return
	}
	w.push(0, n-1)
	w.push(v, n)
}

// WriteCount appends a non-negative counter using Elias gamma of v+1.
func (w *Writer) WriteCount(v int) {
	if v < 0 {
		panic("bitio: negative count")
	}
	w.WriteEliasGamma(uint64(v) + 1)
}

// AlignByte pads with 0-bits to the next byte boundary and reports how many
// padding bits were added.
func (w *Writer) AlignByte() int {
	pad := (8 - w.nbit&7) & 7
	if pad > 0 {
		w.push(0, pad)
	}
	return pad
}

// Reader consumes bits from a byte slice.  The zero value is an empty
// stream; Reset re-points an existing Reader at a new buffer without
// allocating.
type Reader struct {
	buf  []byte
	pos  int // next bit to read
	nbit int // total available bits
}

// NewReader returns a Reader over buf exposing len(buf)*8 bits.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf, nbit: len(buf) * 8}
}

// NewReaderBits returns a Reader over buf exposing exactly nbits bits.
func NewReaderBits(buf []byte, nbits int) *Reader {
	if nbits > len(buf)*8 {
		panic("bitio: nbits exceeds buffer")
	}
	return &Reader{buf: buf, nbit: nbits}
}

// Reset re-points the reader at buf exposing exactly nbits bits, positioned
// at bit 0.  It allows stack-allocated or pooled readers on hot paths.
func (r *Reader) Reset(buf []byte, nbits int) {
	if nbits > len(buf)*8 {
		panic("bitio: nbits exceeds buffer")
	}
	r.buf, r.pos, r.nbit = buf, 0, nbits
}

// Pos returns the absolute bit position of the next read.
func (r *Reader) Pos() int { return r.pos }

// Seek positions the reader at absolute bit position pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside stream of %d bits", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// word returns up to 64 bits starting at byte index i, big-endian,
// zero-padded past the end of the buffer.
func (r *Reader) word(i int) uint64 {
	if i+8 <= len(r.buf) {
		return binary.BigEndian.Uint64(r.buf[i:])
	}
	var v uint64
	for k := i; k < len(r.buf); k++ {
		v |= uint64(r.buf[k]) << uint(56-8*(k-i))
	}
	return v
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrUnexpectedEOF
	}
	b := (r.buf[r.pos>>3] >> uint(7-r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBool reads a single bit as a bool.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b == 1, err
}

// ReadBits reads width bits, MSB first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	if r.pos+width > r.nbit {
		return 0, ErrUnexpectedEOF
	}
	if width == 0 {
		return 0, nil
	}
	i := r.pos >> 3
	off := uint(r.pos & 7)
	word := r.word(i)
	r.pos += width
	if int(off)+width <= 64 {
		return (word << off) >> uint(64-width), nil
	}
	// The field straddles the 64-bit load: off >= 1 here, so the first
	// 64-off bits come from word and the remaining rem from the next byte.
	rem := uint(int(off) + width - 64) // in [1, 7]
	v1 := word & (1<<(64-off) - 1)
	v2 := uint64(r.buf[i+8]) >> (8 - rem)
	return v1<<rem | v2, nil
}

// readRun counts consecutive `one` bits starting at the current position
// and consumes them plus the terminating complementary bit.  maxRun < 0
// means unbounded; otherwise exceeding maxRun returns errMalformedGamma.
func (r *Reader) readRun(one bool, maxRun int) (int, error) {
	// Fast path: run and terminator inside one full aligned load.
	if i := r.pos >> 3; i+8 <= len(r.buf) {
		off := uint(r.pos & 7)
		word := binary.BigEndian.Uint64(r.buf[i:])
		if one {
			word = ^word
		}
		k := bits.LeadingZeros64(word << off)
		if k < 64-int(off) && r.pos+k < r.nbit && (maxRun < 0 || k <= maxRun) {
			r.pos += k + 1
			return k, nil
		}
	}
	n := 0
	for {
		if r.pos >= r.nbit {
			return 0, ErrUnexpectedEOF
		}
		i := r.pos >> 3
		off := uint(r.pos & 7)
		word := r.word(i)
		if one {
			word = ^word
		}
		// After the shift the run bits lead; count its leading zeros.
		k := bits.LeadingZeros64(word << off)
		avail := r.nbit - r.pos
		if avail > 64-int(off) {
			avail = 64 - int(off)
		}
		if k >= avail {
			n += avail
			r.pos += avail
			if maxRun >= 0 && n > maxRun {
				return 0, errMalformedGamma
			}
			continue
		}
		n += k
		if maxRun >= 0 && n > maxRun {
			return 0, errMalformedGamma
		}
		r.pos += k + 1 // consume the run and its terminator
		return n, nil
	}
}

// ReadUnary reads 1-bits until a 0-bit and returns the count of 1-bits.
//
// The common case is duplicated from readRun deliberately: this small body
// inlines into the egolomb decode loop while readRun does not, and the two
// must stay in sync (FuzzBitioRoundTrip covers both paths).
func (r *Reader) ReadUnary() (int, error) {
	if i := r.pos >> 3; i+8 <= len(r.buf) {
		off := uint(r.pos & 7)
		k := bits.LeadingZeros64(^binary.BigEndian.Uint64(r.buf[i:]) << off)
		if k < 64-int(off) && r.pos+k < r.nbit {
			r.pos += k + 1
			return k, nil
		}
	}
	return r.readRun(true, -1)
}

// ReadEliasGamma reads an Elias-gamma coded value (>= 1).
func (r *Reader) ReadEliasGamma() (uint64, error) {
	zeros, err := r.readRun(false, 64)
	if err != nil {
		return 0, err
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// ReadCount reads a counter written by WriteCount.
func (r *Reader) ReadCount() (int, error) {
	v, err := r.ReadEliasGamma()
	if err != nil {
		return 0, err
	}
	return int(v - 1), nil
}

// WidthFor returns the number of bits needed to store values in [0, maxVal].
// WidthFor(0) == 0: a field whose only possible value is zero needs no bits.
func WidthFor(maxVal int) int {
	if maxVal <= 0 {
		return 0
	}
	return bits.Len64(uint64(maxVal))
}
