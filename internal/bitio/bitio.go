// Package bitio provides bit-level writers and readers used by every
// compression scheme in this repository.
//
// All multi-bit fields are written most-significant-bit first, which makes
// the streams match the worked examples in the UTCQ paper (e.g. the
// improved Exp-Golomb codeword "1000" for Δ=+1).
//
// Both Writer and Reader track their absolute bit position.  The StIU index
// stores such positions (t.pos, d.pos, ma.pos) so that query processing can
// resume decoding mid-stream (partial decompression).
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// Writer accumulates bits into a byte slice.  The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total number of bits written
}

// NewWriter returns a Writer with capacity for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.  It is also the bit
// position at which the next write will land.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the written bits packed into bytes.  The final byte is
// zero-padded.  The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// WriteBit appends a single bit (any non-zero b writes a 1).
func (w *Writer) WriteBit(b uint) {
	idx := w.nbit >> 3
	if idx == len(w.buf) {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[idx] |= 0x80 >> uint(w.nbit&7)
	}
	w.nbit++
}

// WriteBool appends a single bit from a bool.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteBits appends the width least-significant bits of v, MSB first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUnary appends n 1-bits followed by a terminating 0-bit.
func (w *Writer) WriteUnary(n int) {
	for i := 0; i < n; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// WriteEliasGamma appends the Elias-gamma code of v (v >= 1): the bit length
// of v in unary-minus-one zeros, then v itself in binary.
func (w *Writer) WriteEliasGamma(v uint64) {
	if v == 0 {
		panic("bitio: Elias gamma undefined for 0")
	}
	n := bitLen(v)
	for i := 0; i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(v, n)
}

// WriteCount appends a non-negative counter using Elias gamma of v+1.
func (w *Writer) WriteCount(v int) {
	if v < 0 {
		panic("bitio: negative count")
	}
	w.WriteEliasGamma(uint64(v) + 1)
}

// AlignByte pads with 0-bits to the next byte boundary and reports how many
// padding bits were added.
func (w *Writer) AlignByte() int {
	pad := 0
	for w.nbit&7 != 0 {
		w.WriteBit(0)
		pad++
	}
	return pad
}

// Reader consumes bits from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // next bit to read
	nbit int // total available bits
}

// NewReader returns a Reader over buf exposing len(buf)*8 bits.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf, nbit: len(buf) * 8}
}

// NewReaderBits returns a Reader over buf exposing exactly nbits bits.
func NewReaderBits(buf []byte, nbits int) *Reader {
	if nbits > len(buf)*8 {
		panic("bitio: nbits exceeds buffer")
	}
	return &Reader{buf: buf, nbit: nbits}
}

// Pos returns the absolute bit position of the next read.
func (r *Reader) Pos() int { return r.pos }

// Seek positions the reader at absolute bit position pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside stream of %d bits", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrUnexpectedEOF
	}
	b := (r.buf[r.pos>>3] >> uint(7-r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBool reads a single bit as a bool.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b == 1, err
}

// ReadBits reads width bits, MSB first.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	if r.pos+width > r.nbit {
		return 0, ErrUnexpectedEOF
	}
	var v uint64
	for i := 0; i < width; i++ {
		b := (r.buf[r.pos>>3] >> uint(7-r.pos&7)) & 1
		v = v<<1 | uint64(b)
		r.pos++
	}
	return v, nil
}

// ReadUnary reads 1-bits until a 0-bit and returns the count of 1-bits.
func (r *Reader) ReadUnary() (int, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return n, nil
		}
		n++
	}
}

// ReadEliasGamma reads an Elias-gamma coded value (>= 1).
func (r *Reader) ReadEliasGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, errors.New("bitio: malformed Elias gamma code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// ReadCount reads a counter written by WriteCount.
func (r *Reader) ReadCount() (int, error) {
	v, err := r.ReadEliasGamma()
	if err != nil {
		return 0, err
	}
	return int(v - 1), nil
}

// bitLen returns the number of bits needed to represent v (bitLen(1)==1).
func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// WidthFor returns the number of bits needed to store values in [0, maxVal].
// WidthFor(0) == 0: a field whose only possible value is zero needs no bits.
func WidthFor(maxVal int) int {
	if maxVal <= 0 {
		return 0
	}
	return bitLen(uint64(maxVal))
}
