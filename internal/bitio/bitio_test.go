package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(64)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBit(1)
	if w.Len() != 17 {
		t.Fatalf("Len = %d, want 17", w.Len())
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("first field = %b, want 101", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Errorf("second field = %x, want ff", v)
	}
	if v, _ := r.ReadBits(5); v != 0 {
		t.Errorf("third field = %d, want 0", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Errorf("final bit = %d, want 1", v)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Errorf("read past end: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestMSBFirstLayout(t *testing.T) {
	// "1000" must land as the top nibble of the first byte.
	w := NewWriter(8)
	w.WriteBits(0b1000, 4)
	if got := w.Bytes()[0]; got != 0x80 {
		t.Fatalf("byte layout = %08b, want 10000000", got)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	for n := 0; n < 20; n++ {
		w.WriteUnary(n)
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for n := 0; n < 20; n++ {
		got, err := r.ReadUnary()
		if err != nil || got != n {
			t.Fatalf("ReadUnary = %d, %v; want %d", got, err, n)
		}
	}
}

func TestEliasGammaKnownCodes(t *testing.T) {
	// Classic gamma codes: 1->1, 2->010, 3->011, 4->00100.
	cases := []struct {
		v    uint64
		bits string
	}{
		{1, "1"},
		{2, "010"},
		{3, "011"},
		{4, "00100"},
		{9, "0001001"},
	}
	for _, c := range cases {
		w := NewWriter(0)
		w.WriteEliasGamma(c.v)
		if got := bitString(w); got != c.bits {
			t.Errorf("gamma(%d) = %s, want %s", c.v, got, c.bits)
		}
	}
}

func TestCountRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []int{0, 1, 2, 3, 100, 12345}
	for _, v := range vals {
		w.WriteCount(v)
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for _, v := range vals {
		got, err := r.ReadCount()
		if err != nil || got != v {
			t.Fatalf("ReadCount = %d, %v; want %d", got, err, v)
		}
	}
}

func TestSeekAndPos(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xAB, 8)
	mark := w.Len()
	w.WriteBits(0xCD, 8)
	r := NewReaderBits(w.Bytes(), w.Len())
	if err := r.Seek(mark); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Errorf("after seek: %x, want cd", v)
	}
	if err := r.Seek(w.Len() + 1); err == nil {
		t.Error("seek past end did not fail")
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	pad := w.AlignByte()
	if pad != 5 || w.Len() != 8 {
		t.Fatalf("pad=%d len=%d, want 5, 8", pad, w.Len())
	}
	if w.AlignByte() != 0 {
		t.Error("aligning an aligned writer added bits")
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct{ max, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9},
	}
	for _, c := range cases {
		if got := WidthFor(c.max); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	// Property: any sequence of (value, width) writes reads back identically.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type field struct {
			v     uint64
			width int
		}
		fields := make([]field, int(n)+1)
		w := NewWriter(0)
		for i := range fields {
			width := rng.Intn(64) + 1
			v := rng.Uint64() & (^uint64(0) >> uint(64-width))
			fields[i] = field{v, width}
			w.WriteBits(v, width)
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for _, f := range fields {
			got, err := r.ReadBits(f.width)
			if err != nil || got != f.v {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickGammaRoundTrip(t *testing.T) {
	f := func(vs []uint32) bool {
		w := NewWriter(0)
		for _, v := range vs {
			w.WriteEliasGamma(uint64(v) + 1)
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for _, v := range vs {
			got, err := r.ReadEliasGamma()
			if err != nil || got != uint64(v)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func bitString(w *Writer) string {
	r := NewReaderBits(w.Bytes(), w.Len())
	s := make([]byte, 0, w.Len())
	for r.Remaining() > 0 {
		b, _ := r.ReadBit()
		s = append(s, byte('0'+b))
	}
	return string(s)
}
