package bitio

import (
	"bytes"
	"testing"
)

// refWriter is the historical bit-by-bit writer, kept as the fuzz oracle:
// the word-level Writer must produce byte-identical streams.
type refWriter struct {
	buf  []byte
	nbit int
}

func (w *refWriter) writeBit(b uint) {
	idx := w.nbit >> 3
	if idx == len(w.buf) {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[idx] |= 0x80 >> uint(w.nbit&7)
	}
	w.nbit++
}

func (w *refWriter) writeBits(v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		w.writeBit(uint(v>>uint(i)) & 1)
	}
}

func (w *refWriter) writeUnary(n int) {
	for i := 0; i < n; i++ {
		w.writeBit(1)
	}
	w.writeBit(0)
}

func (w *refWriter) writeEliasGamma(v uint64) {
	n := 0
	for x := v; x > 0; x >>= 1 {
		n++
	}
	for i := 0; i < n-1; i++ {
		w.writeBit(0)
	}
	w.writeBits(v, n)
}

// FuzzBitioRoundTrip drives Writer/Reader with an arbitrary op sequence
// decoded from the fuzz input, checks the stream against the bit-by-bit
// reference writer, and checks that reading decodes exactly what was
// written — for arbitrary widths, values, runs, and alignment.
func FuzzBitioRoundTrip(f *testing.F) {
	f.Add([]byte{0x01, 0x3f, 0xff, 0xff, 0x02, 0x10, 0x03, 0x00, 0x04})
	f.Add([]byte{0x00, 0x01, 0x02, 0xff, 0x03, 0x40, 0x04, 0x01, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		type op struct {
			kind  byte
			val   uint64
			width int
		}
		var ops []op
		w := NewWriter(64)
		ref := &refWriter{}
		for len(data) >= 2 && len(ops) < 512 {
			kind := data[0] % 5
			switch kind {
			case 0: // single bit
				b := uint64(data[1] & 1)
				w.WriteBit(uint(b))
				ref.writeBit(uint(b))
				ops = append(ops, op{kind: 0, val: b})
				data = data[2:]
			case 1: // WriteBits with arbitrary width 0..64
				width := int(data[1]) % 65
				var v uint64
				n := (width + 7) / 8
				if len(data) < 2+n {
					return
				}
				for i := 0; i < n; i++ {
					v = v<<8 | uint64(data[2+i])
				}
				if width < 64 {
					v &= 1<<uint(width) - 1
				}
				w.WriteBits(v, width)
				ref.writeBits(v, width)
				ops = append(ops, op{kind: 1, val: v, width: width})
				data = data[2+n:]
			case 2: // unary run 0..300 (crosses word boundaries)
				n := int(data[1]) + int(data[1]%2)*44
				w.WriteUnary(n)
				ref.writeUnary(n)
				ops = append(ops, op{kind: 2, val: uint64(n)})
				data = data[2:]
			case 3: // Elias gamma of 1..2^32
				if len(data) < 5 {
					return
				}
				v := uint64(data[1])<<24 | uint64(data[2])<<16 | uint64(data[3])<<8 | uint64(data[4])
				v++
				w.WriteEliasGamma(v)
				ref.writeEliasGamma(v)
				ops = append(ops, op{kind: 3, val: v})
				data = data[5:]
			default: // align
				pad := w.AlignByte()
				for ref.nbit&7 != 0 {
					ref.writeBit(0)
				}
				ops = append(ops, op{kind: 4, val: uint64(pad)})
				data = data[1:]
			}
		}
		if w.Len() != ref.nbit {
			t.Fatalf("length mismatch: writer %d bits, reference %d bits", w.Len(), ref.nbit)
		}
		if !bytes.Equal(w.Bytes(), ref.buf) {
			t.Fatalf("stream mismatch after %d ops:\n got %x\nwant %x", len(ops), w.Bytes(), ref.buf)
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for i, o := range ops {
			switch o.kind {
			case 0:
				b, err := r.ReadBit()
				if err != nil || uint64(b) != o.val {
					t.Fatalf("op %d: ReadBit = %d, %v; want %d", i, b, err, o.val)
				}
			case 1:
				v, err := r.ReadBits(o.width)
				if err != nil || v != o.val {
					t.Fatalf("op %d: ReadBits(%d) = %d, %v; want %d", i, o.width, v, err, o.val)
				}
			case 2:
				n, err := r.ReadUnary()
				if err != nil || uint64(n) != o.val {
					t.Fatalf("op %d: ReadUnary = %d, %v; want %d", i, n, err, o.val)
				}
			case 3:
				v, err := r.ReadEliasGamma()
				if err != nil || v != o.val {
					t.Fatalf("op %d: ReadEliasGamma = %d, %v; want %d", i, v, err, o.val)
				}
			case 4:
				v, err := r.ReadBits(int(o.val))
				if err != nil || v != 0 {
					t.Fatalf("op %d: alignment pad = %d, %v; want 0", i, v, err)
				}
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bits left unread", r.Remaining())
		}
		// Interleaved Bytes calls must not corrupt subsequent writes.
		mid := w.Bytes()
		_ = mid
		w.WriteBits(0x5a, 7)
		ref.writeBits(0x5a, 7)
		if !bytes.Equal(w.Bytes(), ref.buf) {
			t.Fatal("write after Bytes() corrupted the stream")
		}
	})
}
