package core

import (
	"errors"
	"fmt"

	"utcq/internal/pddp"
)

// EFactor is one factor of the referential representation of an edge
// sequence (Section 4.2).  Three forms exist:
//
//	(S, L, M) — copy ref[S:S+L], then append M (HasM true)
//	(S, L)    — copy ref[S:S+L]; final factor only (HasM false)
//	(S=|ref|, M) — the symbol M does not occur in the reference
//	               (NotInRef true; L is implicitly 1: just M)
type EFactor struct {
	S, L     int
	M        uint16
	HasM     bool
	NotInRef bool
}

// RefIndex is a per-symbol position index over one reference sequence,
// built once and reused to factor every non-reference against it.  It
// replaces the O(|ref|·|input|) scan of the naive longest-match with
// candidate lists keyed by the first two symbols (CSR layout for the small
// out-degree alphabets real edge sequences have, map fallback otherwise).
// Matching semantics are exactly leftmost-longest, so the factor lists —
// and therefore the archive bytes — are identical to the naive scan's
// (FuzzFactorsRoundTrip cross-checks against it).
type RefIndex struct {
	ref []uint16

	// Flat CSR layout, used when the alphabet fits flatAlphabetMax.
	alpha     int
	first     []int32 // [alpha] leftmost occurrence of each symbol, -1 if absent
	pairStart []int32 // [alpha*alpha+1] bucket offsets into pairPos
	pairPos   []int32 // start positions grouped by symbol pair, ascending

	// Map fallback for pathological alphabets.
	firstM map[uint16]int32
	pairsM map[uint32][]int32
}

// flatAlphabetMax bounds the flat layout: alphabets up to this size use
// O(alpha^2) bucket offsets (at most 16 KiB of offsets), larger ones
// (unusual for out-degree-numbered edges) fall back to maps.
const flatAlphabetMax = 64

// NewRefIndex builds the position index of ref.
func NewRefIndex(ref []uint16) *RefIndex {
	ix := &RefIndex{ref: ref}
	maxSym := 0
	for _, s := range ref {
		if int(s) > maxSym {
			maxSym = int(s)
		}
	}
	if len(ref) > 0 && maxSym < flatAlphabetMax {
		ix.buildFlat(maxSym + 1)
	} else if len(ref) > 0 {
		ix.buildMap()
	}
	return ix
}

func (ix *RefIndex) buildFlat(alpha int) {
	ref := ix.ref
	ix.alpha = alpha
	ix.first = make([]int32, alpha)
	for i := range ix.first {
		ix.first[i] = -1
	}
	ix.pairStart = make([]int32, alpha*alpha+1)
	for i := len(ref) - 1; i >= 0; i-- {
		ix.first[ref[i]] = int32(i)
	}
	if len(ref) < 2 {
		return
	}
	// Counting sort of pair start positions: count, prefix, fill.
	for i := 0; i+1 < len(ref); i++ {
		ix.pairStart[int(ref[i])*alpha+int(ref[i+1])+1]++
	}
	for i := 1; i < len(ix.pairStart); i++ {
		ix.pairStart[i] += ix.pairStart[i-1]
	}
	ix.pairPos = make([]int32, len(ref)-1)
	fill := make([]int32, alpha*alpha)
	copy(fill, ix.pairStart[:alpha*alpha])
	for i := 0; i+1 < len(ref); i++ {
		p := int(ref[i])*alpha + int(ref[i+1])
		ix.pairPos[fill[p]] = int32(i)
		fill[p]++
	}
}

func (ix *RefIndex) buildMap() {
	ref := ix.ref
	ix.firstM = make(map[uint16]int32)
	ix.pairsM = make(map[uint32][]int32)
	for i, s := range ref {
		if _, ok := ix.firstM[s]; !ok {
			ix.firstM[s] = int32(i)
		}
		if i+1 < len(ref) {
			k := uint32(s)<<16 | uint32(ref[i+1])
			ix.pairsM[k] = append(ix.pairsM[k], int32(i))
		}
	}
}

// firstOf returns the leftmost occurrence of sym, or -1.
func (ix *RefIndex) firstOf(sym uint16) int32 {
	if ix.first != nil {
		if int(sym) >= ix.alpha {
			return -1
		}
		return ix.first[sym]
	}
	if p, ok := ix.firstM[sym]; ok {
		return p
	}
	return -1
}

// pairCandidates returns the ascending start positions of the symbol pair.
func (ix *RefIndex) pairCandidates(a, b uint16) []int32 {
	if ix.first != nil {
		if int(a) >= ix.alpha || int(b) >= ix.alpha {
			return nil
		}
		p := int(a)*ix.alpha + int(b)
		return ix.pairPos[ix.pairStart[p]:ix.pairStart[p+1]]
	}
	return ix.pairsM[uint32(a)<<16|uint32(b)]
}

// longestMatch returns the leftmost longest match of a prefix of needle
// inside the indexed reference: start S and length L (L == 0 when
// needle[0] is absent).
func (ix *RefIndex) longestMatch(needle []uint16) (int, int) {
	if len(needle) == 0 {
		return 0, 0
	}
	f := ix.firstOf(needle[0])
	if f < 0 {
		return 0, 0
	}
	bestS, bestL := int(f), 1
	if len(needle) == 1 {
		return bestS, bestL
	}
	ref := ix.ref
	for _, s32 := range ix.pairCandidates(needle[0], needle[1]) {
		s := int(s32)
		if s+bestL >= len(ref) {
			// Candidates ascend, so no later start can exceed bestL.
			break
		}
		// To beat bestL the candidate must match needle at offset bestL.
		if ref[s+bestL] != needle[bestL] {
			continue
		}
		l := 2 // the pair bucket guarantees offsets 0 and 1 match
		for l < len(needle) && s+l < len(ref) && ref[s+l] == needle[l] {
			l++
		}
		if l > bestL {
			bestS, bestL = s, l
			if bestL == len(needle) {
				break
			}
		}
	}
	return bestS, bestL
}

// FactorsSLM computes the (S, L, M) referential representation of input
// against the indexed reference with greedy leftmost-longest matching.
// It reproduces the paper's Table 4 examples.
func (ix *RefIndex) FactorsSLM(input []uint16) []EFactor {
	var out []EFactor
	refLen := len(ix.ref)
	i := 0
	for i < len(input) {
		s, l := ix.longestMatch(input[i:])
		if l == 0 {
			// Case B: symbol absent from the reference.
			out = append(out, EFactor{S: refLen, M: input[i], HasM: true, NotInRef: true})
			i++
			continue
		}
		i += l
		if i < len(input) {
			out = append(out, EFactor{S: s, L: l, M: input[i], HasM: true})
			i++
		} else {
			out = append(out, EFactor{S: s, L: l})
		}
	}
	return out
}

// FactorsSL computes the pivot representation of input against the indexed
// reference (Section 4.3).
func (ix *RefIndex) FactorsSL(input []uint16) []PivotFactor {
	var out []PivotFactor
	i := 0
	for i < len(input) {
		s, l := ix.longestMatch(input[i:])
		if l == 0 {
			out = append(out, PivotFactor{Omitted: true})
			i++
			continue
		}
		out = append(out, PivotFactor{S: s, L: l})
		i += l
	}
	return out
}

// FactorsSLM computes the (S, L, M) referential representation of input
// against ref.  Callers factoring several inputs against one reference
// should build a RefIndex once and use its method instead.
func FactorsSLM(input, ref []uint16) []EFactor {
	return NewRefIndex(ref).FactorsSLM(input)
}

// ExpandE inverts FactorsSLM.
func ExpandE(factors []EFactor, ref []uint16) ([]uint16, error) {
	var out []uint16
	for i, f := range factors {
		if f.NotInRef {
			out = append(out, f.M)
			continue
		}
		if f.S < 0 || f.L < 0 || f.S+f.L > len(ref) {
			return nil, fmt.Errorf("core: factor %d (%d,%d) outside reference of length %d", i, f.S, f.L, len(ref))
		}
		out = append(out, ref[f.S:f.S+f.L]...)
		if f.HasM {
			out = append(out, f.M)
		} else if i != len(factors)-1 {
			return nil, errors.New("core: (S,L) factor before the end")
		}
	}
	return out, nil
}

// PivotFactor is one factor of the lighter (S, L) representation used for
// pivot-based similarity estimation (Section 4.3).  Omitted marks symbols
// absent from the pivot: the factor is not stored, but the count increases.
type PivotFactor struct {
	S, L    int
	Omitted bool
}

// FactorsSL computes the pivot representation of input against ref.
// Callers factoring several inputs against one reference should build a
// RefIndex once and use its method instead.
func FactorsSL(input, ref []uint16) []PivotFactor {
	return NewRefIndex(ref).FactorsSL(input)
}

// TFFactor is one factor of the time-flag bit-string representation: copy
// ref[S:S+L], then append M when HasM (the final factor may lack M).  The
// binary encoding spends 1 bit on M per the paper's cost model.
type TFFactor struct {
	S, L int
	M    bool
	HasM bool
}

// TFIndex is the two-symbol-alphabet analogue of RefIndex, built once per
// reference time-flag bit-string and reused across its non-references.
type TFIndex struct {
	ref       []bool
	first     [2]int32
	pairStart [5]int32
	pairPos   []int32
}

// NewTFIndex builds the position index of a stored time-flag bit-string.
func NewTFIndex(ref []bool) *TFIndex {
	ix := &TFIndex{ref: ref, first: [2]int32{-1, -1}}
	for i := len(ref) - 1; i >= 0; i-- {
		ix.first[b2i(ref[i])] = int32(i)
	}
	if len(ref) < 2 {
		return ix
	}
	for i := 0; i+1 < len(ref); i++ {
		ix.pairStart[b2i(ref[i])*2+b2i(ref[i+1])+1]++
	}
	for i := 1; i < len(ix.pairStart); i++ {
		ix.pairStart[i] += ix.pairStart[i-1]
	}
	ix.pairPos = make([]int32, len(ref)-1)
	var fill [4]int32
	copy(fill[:], ix.pairStart[:4])
	for i := 0; i+1 < len(ref); i++ {
		p := b2i(ref[i])*2 + b2i(ref[i+1])
		ix.pairPos[fill[p]] = int32(i)
		fill[p]++
	}
	return ix
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// longestMatch returns the leftmost longest match of a prefix of needle in
// the indexed bit-string, with the same semantics as RefIndex.longestMatch.
func (ix *TFIndex) longestMatch(needle []bool) (int, int) {
	if len(needle) == 0 {
		return 0, 0
	}
	f := ix.first[b2i(needle[0])]
	if f < 0 {
		return 0, 0
	}
	bestS, bestL := int(f), 1
	if len(needle) == 1 {
		return bestS, bestL
	}
	ref := ix.ref
	p := b2i(needle[0])*2 + b2i(needle[1])
	for _, s32 := range ix.pairPos[ix.pairStart[p]:ix.pairStart[p+1]] {
		s := int(s32)
		if s+bestL >= len(ref) {
			break
		}
		if ref[s+bestL] != needle[bestL] {
			continue
		}
		l := 2
		for l < len(needle) && s+l < len(ref) && ref[s+l] == needle[l] {
			l++
		}
		if l > bestL {
			bestS, bestL = s, l
			if bestL == len(needle) {
				break
			}
		}
	}
	return bestS, bestL
}

// FactorsTF computes the referential representation of a stored time-flag
// bit-string against the indexed reference bit-string.
func (ix *TFIndex) FactorsTF(input []bool) []TFFactor {
	var out []TFFactor
	i := 0
	for i < len(input) {
		s, l := ix.longestMatch(input[i:])
		i += l
		if i < len(input) {
			out = append(out, TFFactor{S: s, L: l, M: input[i], HasM: true})
			i++
		} else {
			out = append(out, TFFactor{S: s, L: l})
		}
	}
	return out
}

// FactorsTF computes the referential representation of a stored time-flag
// bit-string against the reference's stored bit-string.  Callers factoring
// several inputs against one reference should build a TFIndex once.
func FactorsTF(input, ref []bool) []TFFactor {
	return NewTFIndex(ref).FactorsTF(input)
}

// ExpandTF inverts FactorsTF.
func ExpandTF(factors []TFFactor, ref []bool) ([]bool, error) {
	var out []bool
	for i, f := range factors {
		if f.S < 0 || f.L < 0 || f.S+f.L > len(ref) {
			return nil, fmt.Errorf("core: TF factor %d (%d,%d) outside reference of length %d", i, f.S, f.L, len(ref))
		}
		out = append(out, ref[f.S:f.S+f.L]...)
		if f.HasM {
			out = append(out, f.M)
		} else if i != len(factors)-1 {
			return nil, errors.New("core: TF factor without M before the end")
		}
	}
	return out, nil
}

// DFactor is one (pos, rd) factor of the relative-distance representation:
// positions where the non-reference differs from its reference.
type DFactor struct {
	Pos int
	RD  float64
}

// DiffD computes the D factors of input against ref.  Values are compared
// after PDDP quantization so that positions whose codes coincide are
// shared, preserving the error bound.
func DiffD(input, ref []float64, codec *pddp.Codec) []DFactor {
	var out []DFactor
	for i := range input {
		if codec.Quantize(input[i]) != codec.Quantize(ref[i]) {
			out = append(out, DFactor{Pos: i, RD: input[i]})
		}
	}
	return out
}

// diffDQuant is DiffD against an already-quantized reference, so a
// reference shared by many non-references is quantized once.
func diffDQuant(input, refQuant []float64, codec *pddp.Codec) []DFactor {
	var out []DFactor
	for i := range input {
		if codec.Quantize(input[i]) != refQuant[i] {
			out = append(out, DFactor{Pos: i, RD: input[i]})
		}
	}
	return out
}

// ExpandD inverts DiffD given the reference's decoded distances.  Factor
// values are used verbatim: on the decode path they are already quantized
// (re-quantizing is not idempotent — a decoded value may admit an even
// shorter code within eta of itself, drifting past the error bound).
func ExpandD(factors []DFactor, refDecoded []float64) ([]float64, error) {
	out := make([]float64, len(refDecoded))
	copy(out, refDecoded)
	for _, f := range factors {
		if f.Pos < 0 || f.Pos >= len(out) {
			return nil, fmt.Errorf("core: D factor position %d outside %d points", f.Pos, len(out))
		}
		out[f.Pos] = f.RD
	}
	return out, nil
}

// StoredTF strips the first and last bits of a full time-flag bit-string
// (both always 1; Section 4.1 omits them).
func StoredTF(full []bool) []bool {
	if len(full) <= 2 {
		return nil
	}
	return full[1 : len(full)-1]
}

// FullTF restores a full bit-string from its stored form and the original
// length.
func FullTF(stored []bool, fullLen int) []bool {
	out := make([]bool, fullLen)
	out[0] = true
	out[fullLen-1] = true
	copy(out[1:], stored)
	return out
}
