package core

import (
	"errors"
	"fmt"

	"utcq/internal/pddp"
)

// EFactor is one factor of the referential representation of an edge
// sequence (Section 4.2).  Three forms exist:
//
//	(S, L, M) — copy ref[S:S+L], then append M (HasM true)
//	(S, L)    — copy ref[S:S+L]; final factor only (HasM false)
//	(S=|ref|, M) — the symbol M does not occur in the reference
//	               (NotInRef true; L is implicitly 1: just M)
type EFactor struct {
	S, L     int
	M        uint16
	HasM     bool
	NotInRef bool
}

// longestMatch returns the leftmost longest match of a prefix of needle
// inside ref: start S and length L (L == 0 when needle[0] is absent).
func longestMatch(needle, ref []uint16) (int, int) {
	bestS, bestL := 0, 0
	for s := 0; s < len(ref); s++ {
		l := 0
		for l < len(needle) && s+l < len(ref) && ref[s+l] == needle[l] {
			l++
		}
		if l > bestL {
			bestS, bestL = s, l
		}
	}
	return bestS, bestL
}

// FactorsSLM computes the (S, L, M) referential representation of input
// against ref with greedy leftmost-longest matching.  It reproduces the
// paper's Table 4 examples.
func FactorsSLM(input, ref []uint16) []EFactor {
	var out []EFactor
	i := 0
	for i < len(input) {
		s, l := longestMatch(input[i:], ref)
		if l == 0 {
			// Case B: symbol absent from the reference.
			out = append(out, EFactor{S: len(ref), M: input[i], HasM: true, NotInRef: true})
			i++
			continue
		}
		i += l
		if i < len(input) {
			out = append(out, EFactor{S: s, L: l, M: input[i], HasM: true})
			i++
		} else {
			out = append(out, EFactor{S: s, L: l})
		}
	}
	return out
}

// ExpandE inverts FactorsSLM.
func ExpandE(factors []EFactor, ref []uint16) ([]uint16, error) {
	var out []uint16
	for i, f := range factors {
		if f.NotInRef {
			out = append(out, f.M)
			continue
		}
		if f.S < 0 || f.L < 0 || f.S+f.L > len(ref) {
			return nil, fmt.Errorf("core: factor %d (%d,%d) outside reference of length %d", i, f.S, f.L, len(ref))
		}
		out = append(out, ref[f.S:f.S+f.L]...)
		if f.HasM {
			out = append(out, f.M)
		} else if i != len(factors)-1 {
			return nil, errors.New("core: (S,L) factor before the end")
		}
	}
	return out, nil
}

// PivotFactor is one factor of the lighter (S, L) representation used for
// pivot-based similarity estimation (Section 4.3).  Omitted marks symbols
// absent from the pivot: the factor is not stored, but the count increases.
type PivotFactor struct {
	S, L    int
	Omitted bool
}

// FactorsSL computes the pivot representation of input against ref.
func FactorsSL(input, ref []uint16) []PivotFactor {
	var out []PivotFactor
	i := 0
	for i < len(input) {
		s, l := longestMatch(input[i:], ref)
		if l == 0 {
			out = append(out, PivotFactor{Omitted: true})
			i++
			continue
		}
		out = append(out, PivotFactor{S: s, L: l})
		i += l
	}
	return out
}

// TFFactor is one factor of the time-flag bit-string representation: copy
// ref[S:S+L], then append M when HasM (the final factor may lack M).  The
// binary encoding spends 1 bit on M per the paper's cost model.
type TFFactor struct {
	S, L int
	M    bool
	HasM bool
}

// FactorsTF computes the referential representation of a stored time-flag
// bit-string against the reference's stored bit-string.
func FactorsTF(input, ref []bool) []TFFactor {
	var out []TFFactor
	i := 0
	for i < len(input) {
		s, l := longestMatchTF(input[i:], ref)
		i += l
		if i < len(input) {
			out = append(out, TFFactor{S: s, L: l, M: input[i], HasM: true})
			i++
		} else {
			out = append(out, TFFactor{S: s, L: l})
		}
	}
	return out
}

func longestMatchTF(needle, ref []bool) (int, int) {
	bestS, bestL := 0, 0
	for s := 0; s < len(ref); s++ {
		l := 0
		for l < len(needle) && s+l < len(ref) && ref[s+l] == needle[l] {
			l++
		}
		if l > bestL {
			bestS, bestL = s, l
		}
	}
	return bestS, bestL
}

// ExpandTF inverts FactorsTF.
func ExpandTF(factors []TFFactor, ref []bool) ([]bool, error) {
	var out []bool
	for i, f := range factors {
		if f.S < 0 || f.L < 0 || f.S+f.L > len(ref) {
			return nil, fmt.Errorf("core: TF factor %d (%d,%d) outside reference of length %d", i, f.S, f.L, len(ref))
		}
		out = append(out, ref[f.S:f.S+f.L]...)
		if f.HasM {
			out = append(out, f.M)
		} else if i != len(factors)-1 {
			return nil, errors.New("core: TF factor without M before the end")
		}
	}
	return out, nil
}

// DFactor is one (pos, rd) factor of the relative-distance representation:
// positions where the non-reference differs from its reference.
type DFactor struct {
	Pos int
	RD  float64
}

// DiffD computes the D factors of input against ref.  Values are compared
// after PDDP quantization so that positions whose codes coincide are
// shared, preserving the error bound.
func DiffD(input, ref []float64, codec *pddp.Codec) []DFactor {
	var out []DFactor
	for i := range input {
		if codec.Quantize(input[i]) != codec.Quantize(ref[i]) {
			out = append(out, DFactor{Pos: i, RD: input[i]})
		}
	}
	return out
}

// ExpandD inverts DiffD given the reference's decoded distances.  Factor
// values are used verbatim: on the decode path they are already quantized
// (re-quantizing is not idempotent — a decoded value may admit an even
// shorter code within eta of itself, drifting past the error bound).
func ExpandD(factors []DFactor, refDecoded []float64) ([]float64, error) {
	out := make([]float64, len(refDecoded))
	copy(out, refDecoded)
	for _, f := range factors {
		if f.Pos < 0 || f.Pos >= len(out) {
			return nil, fmt.Errorf("core: D factor position %d outside %d points", f.Pos, len(out))
		}
		out[f.Pos] = f.RD
	}
	return out, nil
}

// StoredTF strips the first and last bits of a full time-flag bit-string
// (both always 1; Section 4.1 omits them).
func StoredTF(full []bool) []bool {
	if len(full) <= 2 {
		return nil
	}
	return full[1 : len(full)-1]
}

// FullTF restores a full bit-string from its stored form and the original
// length.
func FullTF(stored []bool, fullLen int) []bool {
	out := make([]bool, fullLen)
	out[0] = true
	out[fullLen-1] = true
	copy(out[1:], stored)
	return out
}
