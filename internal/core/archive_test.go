package core

import (
	"math"
	"reflect"
	"testing"

	"utcq/internal/bitio"
	"utcq/internal/gen"
	"utcq/internal/paperfix"
	"utcq/internal/traj"
)

// TestSIARPaperExample reproduces Section 4.1: the running example's time
// sequence becomes ⟨5:03:25, 0, 1, 0, -1, 0, 0⟩ with Ts = 240.
func TestSIARPaperExample(t *testing.T) {
	fx := paperfix.MustNew()
	deltas := SIARDeltas(fx.Tu1.T, paperfix.Ts)
	want := []int64{0, 1, 0, -1, 0, 0}
	if !reflect.DeepEqual(deltas, want) {
		t.Fatalf("SIAR deltas = %v, want %v", deltas, want)
	}
	if got := SIARRestore(fx.Tu1.T[0], deltas, paperfix.Ts); !reflect.DeepEqual(got, fx.Tu1.T) {
		t.Errorf("restore = %v", got)
	}
	// The encoded time section: 1 flag + 17 bits t0, count, then 12 bits of
	// Exp-Golomb codes (the paper's "(12+17)" size statement).
	w := bitio.NewWriter(64)
	pos := encodeT(w, fx.Tu1.T, paperfix.Ts)
	if len(pos) != 6 {
		t.Fatalf("%d delta positions", len(pos))
	}
	deltaBits := w.Len() - pos[0]
	if deltaBits != 12 {
		t.Errorf("delta codes = %d bits, want 12", deltaBits)
	}
	r := bitio.NewReaderBits(w.Bytes(), w.Len())
	got, err := decodeT(r, paperfix.Ts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fx.Tu1.T) {
		t.Errorf("decodeT = %v", got)
	}
}

func compressFixture(t *testing.T, numPivots int) (*paperfix.Fixture, *Archive) {
	t.Helper()
	fx := paperfix.MustNew()
	opts := DefaultOptions(paperfix.Ts)
	opts.NumPivots = numPivots
	c, err := NewCompressor(fx.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	return fx, a
}

func TestCompressDecodePaperExample(t *testing.T) {
	fx, a := compressFixture(t, 1)
	if a.Stats.NumInstances != 3 || a.Stats.NumReferences != 1 {
		t.Fatalf("stats: %d instances, %d references", a.Stats.NumInstances, a.Stats.NumReferences)
	}
	got, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	u := got[0]
	if !reflect.DeepEqual(u.T, fx.Tu1.T) {
		t.Errorf("T = %v", u.T)
	}
	for i := range fx.Tu1.Instances {
		want := &fx.Tu1.Instances[i]
		ins := &u.Instances[i]
		if ins.SV != want.SV {
			t.Errorf("instance %d: SV = %d", i, ins.SV)
		}
		if !reflect.DeepEqual(ins.E, want.E) {
			t.Errorf("instance %d: E = %v, want %v", i, ins.E, want.E)
		}
		if !reflect.DeepEqual(ins.TF, want.TF) {
			t.Errorf("instance %d: TF = %v, want %v", i, ins.TF, want.TF)
		}
		for k := range want.D {
			if d := want.D[k] - ins.D[k]; d < 0 || d > a.Opts.EtaD {
				t.Errorf("instance %d point %d: D %g vs %g", i, k, ins.D[k], want.D[k])
			}
		}
		if d := math.Abs(want.P - ins.P); d > a.Opts.EtaP {
			t.Errorf("instance %d: P %g vs %g", i, ins.P, want.P)
		}
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	_, a := compressFixture(t, 1)
	if a.Stats.CompTotal() >= a.Stats.Raw.Total() {
		t.Errorf("no compression: %d >= %d bits", a.Stats.CompTotal(), a.Stats.Raw.Total())
	}
	for _, r := range []float64{a.Stats.RatioT(), a.Stats.RatioE(), a.Stats.RatioD(), a.Stats.RatioTF(), a.Stats.RatioP()} {
		if r <= 1 {
			t.Errorf("component ratio %g <= 1 (stats %+v)", r, a.Stats)
		}
	}
}

func TestRefViewPartialAccess(t *testing.T) {
	fx, a := compressFixture(t, 1)
	rec := a.Trajs[0]
	refOrig := rec.RefOrigByWrite[0]
	if refOrig != 0 {
		t.Fatalf("reference is instance %d, want Tu11", refOrig)
	}
	rv, err := a.RefView(0, refOrig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rv.E, fx.Tu1.Instances[0].E) {
		t.Errorf("ref E = %v", rv.E)
	}
	// Omega over stored TF ⟨0,1,0,1,1,1,1⟩: prefix counts 0,0,1,1,2,3,4,5.
	wantOmega := []int{0, 0, 1, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(rv.Omega(), wantOmega) {
		t.Errorf("omega = %v, want %v", rv.Omega(), wantOmega)
	}
	// γ over the original ⟨1,0,1,0,1,1,1,1,1⟩.
	wantGamma := []int{1, 1, 2, 2, 3, 4, 5, 6, 7}
	for g, want := range wantGamma {
		if got := rv.OnesUpToOriginal(g); got != want {
			t.Errorf("gamma[%d] = %d, want %d", g, got, want)
		}
	}
	// Point positions: points 0..6 live at E positions 0,2,4,5,6,7,8.
	wantPos := []int{0, 2, 4, 5, 6, 7, 8}
	for k, want := range wantPos {
		got, err := rv.PositionOfPoint(k)
		if err != nil || got != want {
			t.Errorf("PositionOfPoint(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
	// Partial D decode matches the full decode.
	for k, want := range fx.Tu1.Instances[0].D {
		got, err := rv.DecodeD(k)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want - got; diff < 0 || diff > a.Opts.EtaD {
			t.Errorf("DecodeD(%d) = %g, want ~%g", k, got, want)
		}
	}
}

func TestNonRefViewPartialOnes(t *testing.T) {
	fx, a := compressFixture(t, 1)
	rv, err := a.RefView(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, orig := range []int{1, 2} {
		nv, err := a.NonRefView(0, orig, rv)
		if err != nil {
			t.Fatal(err)
		}
		ins := &fx.Tu1.Instances[orig]
		if nv.ECount() != len(ins.E) {
			t.Errorf("instance %d: ECount = %d, want %d", orig, nv.ECount(), len(ins.E))
		}
		stored := StoredTF(ins.TF)
		if nv.TFStoredLen(rv) != len(stored) {
			t.Errorf("instance %d: TF stored len = %d", orig, nv.TFStoredLen(rv))
		}
		// StoredOnesUpTo must agree with a direct count at every prefix.
		for g := 0; g <= len(stored); g++ {
			want := 0
			for _, b := range stored[:g] {
				if b {
					want++
				}
			}
			if got := nv.StoredOnesUpTo(rv, g); got != want {
				t.Errorf("instance %d: StoredOnesUpTo(%d) = %d, want %d", orig, g, got, want)
			}
		}
		// γ and point positions against the original bit-string.
		for g := 0; g < len(ins.TF); g++ {
			want := 0
			for _, b := range ins.TF[:g+1] {
				if b {
					want++
				}
			}
			if got := nv.OnesUpToOriginal(rv, g); got != want {
				t.Errorf("instance %d: gamma[%d] = %d, want %d", orig, g, got, want)
			}
		}
		for k := range ins.D {
			want := -1
			seen := 0
			for g, b := range ins.TF {
				if b {
					if seen == k {
						want = g
						break
					}
					seen++
				}
			}
			got, err := nv.PositionOfPoint(rv, k)
			if err != nil || got != want {
				t.Errorf("instance %d: PositionOfPoint(%d) = %d, %v; want %d", orig, k, got, err, want)
			}
		}
	}
}

// TestCompressGenerated round-trips a generated dataset across profiles
// and pivot counts.
func TestCompressGenerated(t *testing.T) {
	for _, base := range gen.Profiles() {
		p := base
		p.Network.Cols, p.Network.Rows = 20, 20
		ds, err := gen.Build(p, 25, 99)
		if err != nil {
			t.Fatal(err)
		}
		for np := 1; np <= 3; np++ {
			opts := DefaultOptions(p.Ts)
			opts.NumPivots = np
			c, err := NewCompressor(ds.Graph, opts)
			if err != nil {
				t.Fatal(err)
			}
			a, err := c.Compress(ds.Trajectories)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			for j, u := range got {
				wantU := ds.Trajectories[j]
				if !reflect.DeepEqual(u.T, wantU.T) {
					t.Fatalf("%s np=%d traj %d: T mismatch", p.Name, np, j)
				}
				for i := range wantU.Instances {
					w, g := &wantU.Instances[i], &u.Instances[i]
					if w.SV != g.SV || !reflect.DeepEqual(w.E, g.E) || !reflect.DeepEqual(w.TF, g.TF) {
						t.Fatalf("%s np=%d traj %d inst %d: lossless parts differ", p.Name, np, j, i)
					}
					for k := range w.D {
						if d := w.D[k] - g.D[k]; d < 0 || d > opts.EtaD+1e-12 {
							t.Fatalf("%s traj %d inst %d point %d: D error %g", p.Name, j, i, k, d)
						}
					}
					if d := math.Abs(w.P - g.P); d > opts.EtaP+1e-12 {
						t.Fatalf("%s traj %d inst %d: P error %g", p.Name, j, i, d)
					}
				}
			}
			if a.Stats.TotalRatio() <= 1 {
				t.Errorf("%s np=%d: total ratio %g <= 1", p.Name, np, a.Stats.TotalRatio())
			}
		}
	}
}

// TestMorePivotsNeverFewerRefsOnPaperExample is a smoke check that pivot
// count only affects selection quality, not correctness.
func TestPivotCountsStillDecode(t *testing.T) {
	for np := 1; np <= 5; np++ {
		fx, a := compressFixture(t, np)
		got, err := a.DecodeAll()
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if !reflect.DeepEqual(got[0].Instances[0].E, fx.Tu1.Instances[0].E) {
			t.Errorf("np=%d: decode mismatch", np)
		}
	}
}
