package core

import (
	"reflect"
	"testing"
)

// naiveLongestMatch is the historical O(|ref|·|needle|) scan, kept as the
// fuzz oracle: RefIndex must reproduce its leftmost-longest choice exactly,
// because factor lists feed the archive bit streams.
func naiveLongestMatch(needle, ref []uint16) (int, int) {
	bestS, bestL := 0, 0
	for s := 0; s < len(ref); s++ {
		l := 0
		for l < len(needle) && s+l < len(ref) && ref[s+l] == needle[l] {
			l++
		}
		if l > bestL {
			bestS, bestL = s, l
		}
	}
	return bestS, bestL
}

func naiveFactorsSLM(input, ref []uint16) []EFactor {
	var out []EFactor
	i := 0
	for i < len(input) {
		s, l := naiveLongestMatch(input[i:], ref)
		if l == 0 {
			out = append(out, EFactor{S: len(ref), M: input[i], HasM: true, NotInRef: true})
			i++
			continue
		}
		i += l
		if i < len(input) {
			out = append(out, EFactor{S: s, L: l, M: input[i], HasM: true})
			i++
		} else {
			out = append(out, EFactor{S: s, L: l})
		}
	}
	return out
}

func naiveFactorsTF(input, ref []bool) []TFFactor {
	var out []TFFactor
	i := 0
	for i < len(input) {
		s, l := 0, 0
		for c := 0; c < len(ref); c++ {
			m := 0
			for i+m < len(input) && c+m < len(ref) && ref[c+m] == input[i+m] {
				m++
			}
			if m > l {
				s, l = c, m
			}
		}
		i += l
		if i < len(input) {
			out = append(out, TFFactor{S: s, L: l, M: input[i], HasM: true})
			i++
		} else {
			out = append(out, TFFactor{S: s, L: l})
		}
	}
	return out
}

// FuzzFactorsRoundTrip checks, for arbitrary symbol sequences, that the
// indexed factorization (a) matches the naive leftmost-longest scan
// factor-for-factor and (b) expands back to exactly the input.
func FuzzFactorsRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 1, 2, 2, 0, 4, 1, 0}, []byte{1, 1, 1, 2, 2, 0, 4, 1, 0}, uint8(4))
	f.Add([]byte{0, 0, 0}, []byte{1, 1, 1}, uint8(1))
	f.Add([]byte{}, []byte{5}, uint8(200))
	f.Fuzz(func(t *testing.T, refB, inB []byte, alpha uint8) {
		if len(refB) > 512 || len(inB) > 512 {
			return // keep the quadratic oracle fast
		}
		mod := int(alpha)%300 + 1 // exercise both flat and map layouts
		ref := make([]uint16, len(refB))
		for i, b := range refB {
			ref[i] = uint16(int(b) * 257 % mod)
		}
		input := make([]uint16, len(inB))
		for i, b := range inB {
			input[i] = uint16(int(b) * 257 % mod)
		}

		got := FactorsSLM(input, ref)
		want := naiveFactorsSLM(input, ref)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FactorsSLM diverged from naive scan:\n got %+v\nwant %+v", got, want)
		}
		back, err := ExpandE(got, ref)
		if err != nil {
			t.Fatalf("ExpandE: %v", err)
		}
		if len(back) != len(input) {
			t.Fatalf("round trip length %d, want %d", len(back), len(input))
		}
		for i := range back {
			if back[i] != input[i] {
				t.Fatalf("round trip mismatch at %d: %d vs %d", i, back[i], input[i])
			}
		}

		// Pivot factorization: same matches, Omitted for absent symbols.
		sl := FactorsSL(input, ref)
		pos := 0
		for _, fac := range sl {
			if fac.Omitted {
				pos++
				continue
			}
			for k := 0; k < fac.L; k++ {
				if ref[fac.S+k] != input[pos+k] {
					t.Fatalf("SL factor (%d,%d) does not match input at %d", fac.S, fac.L, pos)
				}
			}
			pos += fac.L
		}
		if pos != len(input) {
			t.Fatalf("SL factors cover %d of %d symbols", pos, len(input))
		}

		// Time-flag factorization against the bool oracle, only when every
		// input bit occurs in ref (FactorsTF requires it, as stored strings
		// always share the alphabet in practice).
		refTF := make([]bool, len(refB))
		for i, b := range refB {
			refTF[i] = b&1 == 1
		}
		inTF := make([]bool, len(inB))
		for i, b := range inB {
			inTF[i] = b&1 == 1
		}
		hasBit := [2]bool{}
		for _, b := range refTF {
			hasBit[b2i(b)] = true
		}
		ok := true
		for _, b := range inTF {
			if !hasBit[b2i(b)] {
				ok = false
				break
			}
		}
		if len(inTF) > 0 && len(inTF) <= len(refTF)+4 && ok {
			gotTF := FactorsTF(inTF, refTF)
			wantTF := naiveFactorsTF(inTF, refTF)
			if !reflect.DeepEqual(gotTF, wantTF) {
				t.Fatalf("FactorsTF diverged from naive scan:\n got %+v\nwant %+v", gotTF, wantTF)
			}
			backTF, err := ExpandTF(gotTF, refTF)
			if err != nil {
				t.Fatalf("ExpandTF: %v", err)
			}
			if !reflect.DeepEqual(backTF, inTF) {
				t.Fatalf("TF round trip mismatch: %v vs %v", backTF, inTF)
			}
		}
	})
}
