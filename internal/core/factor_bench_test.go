package core

import (
	"math/rand"
	"testing"
)

// benchSeqs builds a reference and a set of similar non-reference edge
// sequences over a small out-degree alphabet, the shape real map-matched
// instances have.
func benchSeqs(refLen, numInputs, alphabet int) ([]uint16, [][]uint16) {
	rng := rand.New(rand.NewSource(11))
	ref := make([]uint16, refLen)
	for i := range ref {
		ref[i] = uint16(rng.Intn(alphabet))
	}
	inputs := make([][]uint16, numInputs)
	for k := range inputs {
		in := make([]uint16, refLen)
		copy(in, ref)
		// Perturb ~5% of positions so factorization stays non-trivial.
		for m := 0; m < refLen/20+1; m++ {
			in[rng.Intn(refLen)] = uint16(rng.Intn(alphabet))
		}
		inputs[k] = in
	}
	return ref, inputs
}

func BenchmarkFactorsSLM(b *testing.B) {
	ref, inputs := benchSeqs(512, 16, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if f := FactorsSLM(in, ref); len(f) == 0 {
				b.Fatal("no factors")
			}
		}
	}
}

func BenchmarkFactorsSL(b *testing.B) {
	ref, inputs := benchSeqs(512, 16, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if f := FactorsSL(in, ref); len(f) == 0 {
				b.Fatal("no factors")
			}
		}
	}
}
