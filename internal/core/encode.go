package core

import (
	"fmt"

	"utcq/internal/bitio"
	"utcq/internal/par"
	"utcq/internal/traj"
)

// Compress encodes a dataset trajectory by trajectory over a bounded
// worker pool (Options.Parallelism workers).  Per-trajectory work is
// independent, so each worker preserves UTCQ's one-uncompressed-trajectory
// memory shape (Fig 6) while throughput scales with cores.  Records land
// in input order and stats aggregate in input order, so the archive is
// byte-identical to a serial run; on failure the error of the earliest
// failing trajectory is returned, as in the serial loop.
func (c *Compressor) Compress(tus []*traj.Uncertain) (*Archive, error) {
	a := &Archive{
		Opts:       c.opts,
		Graph:      c.g,
		VertexBits: c.vertexBits,
		EdgeBits:   c.edgeBits,
		DCodec:     c.dCodec,
		PCodec:     c.pCodec,
	}
	recs := make([]*TrajRecord, len(tus))
	stats := make([]CompStats, len(tus))
	err := par.Do(par.Workers(c.opts.Parallelism), len(tus), func(j int) error {
		rec, st, err := c.CompressOne(tus[j])
		if err != nil {
			return fmt.Errorf("core: trajectory %d: %w", j, err)
		}
		recs[j], stats[j] = rec, st
		return nil
	})
	if err != nil {
		return nil, err
	}
	a.Trajs = recs
	for j := range stats {
		a.Stats.Add(stats[j])
	}
	return a, nil
}

// CompressOne encodes a single uncertain trajectory.
func (c *Compressor) CompressOne(u *traj.Uncertain) (*TrajRecord, CompStats, error) {
	var stats CompStats
	stats.Raw = u.RawBits()
	stats.NumTrajectories = 1
	stats.NumInstances = len(u.Instances)

	w := bitio.NewWriter(256)
	rec := &TrajRecord{
		NumPoints: len(u.T),
		T0:        u.T[0],
		Insts:     make([]InstMeta, len(u.Instances)),
	}

	// Time section (shared by all instances).
	mark := w.Len()
	rec.TDeltaPos = encodeT(w, u.T, c.opts.Ts)
	stats.Comp.T += int64(w.Len() - mark)

	// Reference selection.
	var sel Selection
	switch {
	case c.opts.DisableReferential:
		sel = Selection{IsRef: make([]bool, len(u.Instances)), RefOf: make([]int, len(u.Instances))}
		for i := range sel.IsRef {
			sel.IsRef[i] = true
			sel.RefOf[i] = -1
		}
	case c.opts.PlainJaccard:
		sel = selectReferencesWith(u, c.opts.NumPivots, plainJaccard)
	default:
		sel = SelectReferences(u, c.opts.NumPivots)
	}
	stats.NumReferences = sel.NumRefs()

	// References first, then non-references.
	refWritePos := make(map[int]int) // orig index -> write order
	for orig := range u.Instances {
		if !sel.IsRef[orig] {
			continue
		}
		refWritePos[orig] = len(rec.RefOrigByWrite)
		rec.RefOrigByWrite = append(rec.RefOrigByWrite, orig)
		rec.Insts[orig] = InstMeta{
			IsRef:   true,
			RefOrig: -1,
			Start:   w.Len(),
			P:       c.pCodec.Quantize(u.Instances[orig].P),
			SV:      u.Instances[orig].SV,
		}
		c.encodeRef(w, &u.Instances[orig], len(u.T), orig, &stats)
	}
	// Factorization indexes, built once per reference and shared by all of
	// its non-references.
	refIx := make(map[int]*refIndexes)
	for orig := range u.Instances {
		if sel.IsRef[orig] {
			continue
		}
		refOrig := sel.RefOf[orig]
		ix := refIx[refOrig]
		if ix == nil {
			ref := &u.Instances[refOrig]
			stored := StoredTF(ref.TF)
			dq := make([]float64, len(ref.D))
			for i, rd := range ref.D {
				dq[i] = c.dCodec.Quantize(rd)
			}
			ix = &refIndexes{
				e:        NewRefIndex(ref.E),
				tf:       NewTFIndex(stored),
				tfStored: stored,
				dQuant:   dq,
			}
			refIx[refOrig] = ix
		}
		rec.Insts[orig] = InstMeta{
			IsRef:   false,
			RefOrig: refOrig,
			Start:   w.Len(),
			P:       c.pCodec.Quantize(u.Instances[orig].P),
			SV:      u.Instances[orig].SV,
		}
		if err := c.encodeNonRef(w, u, orig, refOrig, refWritePos[refOrig], ix, &stats); err != nil {
			return nil, stats, err
		}
	}

	rec.Bits = w.Bytes()
	rec.BitLen = w.Len()
	return rec, stats, nil
}

// encodeRef writes a reference record:
//
//	[origIdx γ][isRef=1][p PDDP][SV][|E| γ][E entries][stored T' bits][D codes]
func (c *Compressor) encodeRef(w *bitio.Writer, ins *traj.Instance, numPoints, orig int, stats *CompStats) {
	mark := w.Len()
	w.WriteCount(orig)
	w.WriteBit(1)
	stats.Hdr += int64(w.Len() - mark)

	mark = w.Len()
	c.pCodec.Encode(w, ins.P)
	stats.Comp.P += int64(w.Len() - mark)

	mark = w.Len()
	w.WriteBits(uint64(ins.SV), c.vertexBits)
	w.WriteCount(len(ins.E))
	for _, no := range ins.E {
		w.WriteBits(uint64(no), c.edgeBits)
	}
	stats.Comp.E += int64(w.Len() - mark)

	mark = w.Len()
	for _, b := range StoredTF(ins.TF) {
		w.WriteBool(b)
	}
	stats.Comp.TF += int64(w.Len() - mark)

	mark = w.Len()
	for _, rd := range ins.D {
		c.dCodec.Encode(w, rd)
	}
	stats.Comp.D += int64(w.Len() - mark)
	_ = numPoints
}

// refIndexes groups the per-reference factorization state shared by all
// non-references of one reference.
type refIndexes struct {
	e        *RefIndex
	tf       *TFIndex
	tfStored []bool
	dQuant   []float64 // quantized reference distances, computed once
}

// encodeNonRef writes a non-reference record:
//
//	[origIdx γ][isRef=0][p PDDP][refPos γ]
//	[H γ][lastHasM][E factors]
//	[tfSame][H' γ][lastHasM][T' factors]
//	[numD γ][D factors]
func (c *Compressor) encodeNonRef(w *bitio.Writer, u *traj.Uncertain, orig, refOrig, refPos int, ix *refIndexes, stats *CompStats) error {
	ins := &u.Instances[orig]
	ref := &u.Instances[refOrig]

	mark := w.Len()
	w.WriteCount(orig)
	w.WriteBit(0)
	stats.Hdr += int64(w.Len() - mark)

	mark = w.Len()
	c.pCodec.Encode(w, ins.P)
	stats.Comp.P += int64(w.Len() - mark)

	mark = w.Len()
	w.WriteCount(refPos)
	stats.Hdr += int64(w.Len() - mark)

	// E factors.
	mark = w.Len()
	eFactors := ix.e.FactorsSLM(ins.E)
	if err := writeEFactors(w, eFactors, len(ref.E), c.edgeBits); err != nil {
		return err
	}
	stats.Comp.E += int64(w.Len() - mark)

	// T' factors over the stored (first/last-stripped) bit-strings.
	// Mode 1: identical to the reference (Com = ∅, the paper's special
	// case).  Mode 00: factor list.  Mode 01: verbatim bits — for very
	// short strings a single factor can exceed the raw form, so the
	// encoder keeps whichever is smaller.
	mark = w.Len()
	refStored := ix.tfStored
	insStored := StoredTF(ins.TF)
	switch {
	case boolsEqual(insStored, refStored):
		w.WriteBit(1)
	default:
		w.WriteBit(0)
		factors := ix.tf.FactorsTF(insStored)
		probe := bitio.NewWriter(64)
		writeTFFactors(probe, factors, len(refStored))
		if probe.Len() < len(insStored) {
			w.WriteBit(0)
			writeTFFactors(w, factors, len(refStored))
		} else {
			w.WriteBit(1)
			for _, b := range insStored {
				w.WriteBool(b)
			}
		}
	}
	stats.Comp.TF += int64(w.Len() - mark)

	// D factors.
	mark = w.Len()
	dFactors := diffDQuant(ins.D, ix.dQuant, c.dCodec)
	w.WriteCount(len(dFactors))
	posBits := bitio.WidthFor(len(u.T) - 1)
	for _, f := range dFactors {
		w.WriteBits(uint64(f.Pos), posBits)
		c.dCodec.Encode(w, f.RD)
	}
	stats.Comp.D += int64(w.Len() - mark)
	return nil
}

// writeEFactors encodes an E factor list.  S takes ⌈log2(|E(Ref)|+1)⌉ bits
// (the value |E(Ref)| is the case-B sentinel), L-1 takes ⌈log2 |E(Ref)|⌉
// bits and M takes ⌈log2(o+1)⌉ bits (Section 4.4).
func writeEFactors(w *bitio.Writer, factors []EFactor, refLen, edgeBits int) error {
	sBits := bitio.WidthFor(refLen)
	lBits := bitio.WidthFor(refLen - 1)
	w.WriteCount(len(factors))
	lastHasM := len(factors) > 0 && factors[len(factors)-1].HasM
	w.WriteBool(lastHasM)
	for _, f := range factors {
		if f.NotInRef {
			w.WriteBits(uint64(refLen), sBits)
			w.WriteBits(uint64(f.M), edgeBits)
			continue
		}
		if f.L < 1 || f.L > refLen {
			return fmt.Errorf("core: E factor length %d outside [1, %d]", f.L, refLen)
		}
		w.WriteBits(uint64(f.S), sBits)
		w.WriteBits(uint64(f.L-1), lBits)
		if f.HasM {
			w.WriteBits(uint64(f.M), edgeBits)
		}
	}
	return nil
}

// readEFactors decodes an E factor list and returns the factors along with
// the bit position of each factor (ma.pos for the StIU index).
func readEFactors(r *bitio.Reader, refLen, edgeBits int) ([]EFactor, []int, error) {
	sBits := bitio.WidthFor(refLen)
	lBits := bitio.WidthFor(refLen - 1)
	h, err := r.ReadCount()
	if err != nil {
		return nil, nil, err
	}
	lastHasM, err := r.ReadBool()
	if err != nil {
		return nil, nil, err
	}
	factors := make([]EFactor, h)
	pos := make([]int, h)
	for i := 0; i < h; i++ {
		pos[i] = r.Pos()
		s, err := r.ReadBits(sBits)
		if err != nil {
			return nil, nil, err
		}
		if int(s) == refLen {
			m, err := r.ReadBits(edgeBits)
			if err != nil {
				return nil, nil, err
			}
			factors[i] = EFactor{S: refLen, M: uint16(m), HasM: true, NotInRef: true}
			continue
		}
		lm1, err := r.ReadBits(lBits)
		if err != nil {
			return nil, nil, err
		}
		f := EFactor{S: int(s), L: int(lm1) + 1}
		if i != h-1 || lastHasM {
			m, err := r.ReadBits(edgeBits)
			if err != nil {
				return nil, nil, err
			}
			f.M = uint16(m)
			f.HasM = true
		}
		factors[i] = f
	}
	return factors, pos, nil
}

// writeTFFactors encodes a T' factor list: S and L in ⌈log2 |T'(Ref)|⌉-ish
// bits, M in 1 bit (per the paper's cost model).
func writeTFFactors(w *bitio.Writer, factors []TFFactor, refLen int) {
	sBits := bitio.WidthFor(maxInt(refLen-1, 0))
	lBits := bitio.WidthFor(refLen)
	w.WriteCount(len(factors))
	lastHasM := len(factors) > 0 && factors[len(factors)-1].HasM
	w.WriteBool(lastHasM)
	for _, f := range factors {
		w.WriteBits(uint64(f.S), sBits)
		w.WriteBits(uint64(f.L), lBits)
		if f.HasM {
			w.WriteBool(f.M)
		}
	}
}

// readTFFactors decodes a T' factor list.
func readTFFactors(r *bitio.Reader, refLen int) ([]TFFactor, error) {
	sBits := bitio.WidthFor(maxInt(refLen-1, 0))
	lBits := bitio.WidthFor(refLen)
	h, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	lastHasM, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	factors := make([]TFFactor, h)
	for i := 0; i < h; i++ {
		s, err := r.ReadBits(sBits)
		if err != nil {
			return nil, err
		}
		l, err := r.ReadBits(lBits)
		if err != nil {
			return nil, err
		}
		f := TFFactor{S: int(s), L: int(l)}
		if i != h-1 || lastHasM {
			m, err := r.ReadBool()
			if err != nil {
				return nil, err
			}
			f.M = m
			f.HasM = true
		}
		factors[i] = f
	}
	return factors, nil
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
