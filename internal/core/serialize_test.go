package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/paperfix"
	"utcq/internal/traj"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fx := paperfix.MustNew()
	c, err := NewCompressor(fx.Graph, DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, fx.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if back.Opts != a.Opts {
		t.Errorf("options: %+v vs %+v", back.Opts, a.Opts)
	}
	if back.VertexBits != a.VertexBits || back.EdgeBits != a.EdgeBits {
		t.Error("bit widths differ")
	}
	want, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("loaded archive decodes differently")
	}
	// Partial decompression must also work on the loaded archive.
	rv, err := back.RefView(0, back.Trajs[0].RefOrigByWrite[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rv.E, fx.Tu1.Instances[0].E) {
		t.Errorf("loaded RefView E = %v", rv.E)
	}
}

func TestSaveLoadGeneratedDataset(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 16, 16
	ds, err := gen.Build(p, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompressor(ds.Graph, DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("loaded archive decodes differently")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	fx := paperfix.MustNew()
	if _, err := Load(bytes.NewReader([]byte("not an archive at all")), fx.Graph); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil), fx.Graph); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated archive: valid prefix, cut payload.
	c, err := NewCompressor(fx.Graph, DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(cut), fx.Graph); err == nil {
		t.Error("truncated archive accepted")
	}
}

// TestDecodeCorruptedStream flips payload bits and expects errors, not
// panics, from full decompression.
func TestDecodeCorruptedStream(t *testing.T) {
	fx := paperfix.MustNew()
	c, err := NewCompressor(fx.Graph, DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 64; bit += 3 {
		a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
		if err != nil {
			t.Fatal(err)
		}
		tr := a.Trajs[0]
		if bit >= tr.BitLen {
			break
		}
		tr.Bits[bit/8] ^= 0x80 >> uint(bit%8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit %d: decode panicked: %v", bit, r)
				}
			}()
			// Either an error or a (differently) decoded result is fine;
			// crashes are not.
			_, _ = a.DecodeAll()
		}()
	}
}

// TestSerializeGolden pins the on-disk format: the digest below was
// produced by the historical reflection-based binary.Write encoder, so the
// direct little-endian encoder must reproduce it bit for bit, and loading
// the stream back must reproduce the archive.
func TestSerializeGolden(t *testing.T) {
	const wantSHA = "3a156c5ad657d1ccef83cd965523ceccfa1452131992196ce85cba89c447cde1"
	fx := paperfix.MustNew()
	c, err := NewCompressor(fx.Graph, DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())); got != wantSHA {
		t.Fatalf("archive digest changed:\n got %s\nwant %s", got, wantSHA)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), fx.Graph)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save/load/save round trip is not byte-identical")
	}
}
