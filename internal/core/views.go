package core

import (
	"fmt"
	"sort"
	"sync"

	"utcq/internal/bitio"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// RefView is a parsed reference record supporting partial decompression:
// individual D codes are addressable by bit position (d.pos) and the flag
// array ω enables O(1) rank queries on the time-flag bit-string.
//
// A RefView is safe for concurrent use: the lazily built navigation
// structures (DPos, Omega) are race-free, so one view can be shared by
// many query goroutines.  Views must not be copied after first use.
type RefView struct {
	Orig     int
	SV       roadnet.VertexID
	P        float64
	E        []uint16
	TFStored []bool

	arch      *Archive
	traj      int
	dStart    int // bit offset of the relative-distance codes
	dPosOnce  sync.Once
	dPos      []int // lazily built code positions (the d.pos values)
	omegaOnce sync.Once
	omega     []int // lazily built flag array
}

// RefView parses the reference record of instance orig in trajectory j.
func (a *Archive) RefView(j, orig int) (*RefView, error) {
	rec := a.Trajs[j]
	meta := rec.Insts[orig]
	if !meta.IsRef {
		return nil, fmt.Errorf("core: instance %d of trajectory %d is not a reference", orig, j)
	}
	r, err := rec.Reader(meta.Start)
	if err != nil {
		return nil, err
	}
	gotOrig, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if gotOrig != orig {
		return nil, fmt.Errorf("core: record at %d has orig %d, want %d", meta.Start, gotOrig, orig)
	}
	isRef, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	if !isRef {
		return nil, fmt.Errorf("core: record %d is not a reference record", orig)
	}
	p, err := a.PCodec.Decode(r)
	if err != nil {
		return nil, err
	}
	sv, err := r.ReadBits(a.VertexBits)
	if err != nil {
		return nil, err
	}
	eCount, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	v := &RefView{Orig: orig, SV: roadnet.VertexID(sv), P: p, arch: a, traj: j}
	v.E = make([]uint16, eCount)
	for i := range v.E {
		no, err := r.ReadBits(a.EdgeBits)
		if err != nil {
			return nil, err
		}
		v.E[i] = uint16(no)
	}
	storedLen := eCount - 2
	if storedLen < 0 {
		storedLen = 0
	}
	v.TFStored = make([]bool, storedLen)
	for i := range v.TFStored {
		b, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		v.TFStored[i] = b
	}
	// The D section is parsed lazily: partial decompression means a query
	// touching two points decodes two codes, not all of them.
	v.dStart = r.Pos()
	return v, nil
}

// DPos returns the bit position of every relative-distance code (the d.pos
// values the StIU index stores), building them on first use.  Errors on a
// (corrupted) stream surface through DecodeD/D instead.
func (v *RefView) DPos() []int {
	v.dPosOnce.Do(func() {
		rec := v.arch.Trajs[v.traj]
		r, err := rec.Reader(v.dStart)
		if err != nil {
			v.dPos = make([]int, rec.NumPoints)
			return
		}
		v.dPos = make([]int, rec.NumPoints)
		for i := range v.dPos {
			v.dPos[i] = r.Pos()
			if _, err := v.arch.DCodec.Decode(r); err != nil {
				break // later positions stay at the failure point
			}
		}
	})
	return v.dPos
}

// ECount returns the length of the edge-number sequence.
func (v *RefView) ECount() int { return len(v.E) }

// FullTF reconstructs the complete time-flag bit-string.
func (v *RefView) FullTF() []bool { return FullTF(v.TFStored, len(v.E)) }

// Omega returns the flag array ω (Section 5.1): Omega()[g] is the number of
// 1s among the first g stored bits (0 <= g <= len(TFStored)).
func (v *RefView) Omega() []int {
	v.omegaOnce.Do(func() {
		omega := make([]int, len(v.TFStored)+1)
		for i, b := range v.TFStored {
			omega[i+1] = omega[i]
			if b {
				omega[i+1]++
			}
		}
		v.omega = omega
	})
	return v.omega
}

// OnesUpToOriginal is the original array γ: the number of 1s among the
// original time-flag bits 0..g inclusive.
func (v *RefView) OnesUpToOriginal(g int) int {
	return onesUpToOriginal(g, len(v.E), func(x int) int { return v.Omega()[x] })
}

// onesUpToOriginal maps a rank query on the original bit-string (implied
// leading and trailing 1s) to a rank query on the stored bit-string.
func onesUpToOriginal(g, fullLen int, storedOnes func(int) int) int {
	if g < 0 {
		return 0
	}
	if g >= fullLen {
		g = fullLen - 1
	}
	ones := 1 // implied first bit
	storedLen := fullLen - 2
	if storedLen < 0 {
		storedLen = 0
	}
	if g >= 1 {
		x := g
		if x > storedLen {
			x = storedLen
		}
		ones += storedOnes(x)
	}
	if g == fullLen-1 && fullLen >= 2 {
		ones++ // implied last bit
	}
	return ones
}

// PositionOfPoint returns the index g in the original E/T' sequences that
// carries point k (the position of the (k+1)-th set bit).
func (v *RefView) PositionOfPoint(k int) (int, error) {
	return positionOfPoint(k, len(v.E), v.OnesUpToOriginal)
}

func positionOfPoint(k, fullLen int, onesUpTo func(int) int) (int, error) {
	if k < 0 {
		return 0, fmt.Errorf("core: negative point index %d", k)
	}
	if k == 0 {
		return 0, nil
	}
	// onesUpTo is non-decreasing: binary search the smallest g with
	// onesUpTo(g) == k+1 and bit g set.
	g := sort.Search(fullLen, func(g int) bool { return onesUpTo(g) >= k+1 })
	if g >= fullLen {
		return 0, fmt.Errorf("core: point %d beyond bit-string", k)
	}
	return g, nil
}

// DecodeD partially decompresses the k-th relative distance using its
// stored bit position.  The bit reader lives on the stack (bitio.Reader
// Reset), so per-point decodes do not allocate.
func (v *RefView) DecodeD(k int) (float64, error) {
	dpos := v.DPos()
	if k < 0 || k >= len(dpos) {
		return 0, fmt.Errorf("core: point index %d outside %d", k, len(dpos))
	}
	rec := v.arch.Trajs[v.traj]
	var r bitio.Reader
	r.Reset(rec.Bits, rec.BitLen)
	if err := r.Seek(dpos[k]); err != nil {
		return 0, err
	}
	return v.arch.DCodec.Decode(&r)
}

// D decodes all relative distances.
func (v *RefView) D() ([]float64, error) {
	rec := v.arch.Trajs[v.traj]
	r, err := rec.Reader(v.dStart)
	if err != nil {
		return nil, err
	}
	out := make([]float64, rec.NumPoints)
	for k := range out {
		d, err := v.arch.DCodec.Decode(r)
		if err != nil {
			return nil, err
		}
		out[k] = d
	}
	return out, nil
}

// Instance materializes the reference as a trajectory instance.
func (v *RefView) Instance(numPoints int) (*traj.Instance, error) {
	d, err := v.D()
	if err != nil {
		return nil, err
	}
	_ = numPoints
	return &traj.Instance{SV: v.SV, E: v.E, D: d, TF: v.FullTF(), P: v.P}, nil
}

// NonRefView is a parsed non-reference record: the factor lists of its
// referential representation plus the bit position of each E factor
// (ma.pos for the StIU index).
type NonRefView struct {
	Orig       int
	RefOrig    int
	P          float64
	EFactors   []EFactor
	EFactorPos []int
	TFSame     bool
	TFRaw      []bool // verbatim stored bits when the encoder chose raw mode
	TFFactors  []TFFactor
	DFactors   []DFactor

	eCount int // derived: length of the expanded E sequence
}

// NonRefView parses the non-reference record of instance orig in
// trajectory j against its (already parsed) reference view.
func (a *Archive) NonRefView(j, orig int, ref *RefView) (*NonRefView, error) {
	rec := a.Trajs[j]
	meta := rec.Insts[orig]
	if meta.IsRef {
		return nil, fmt.Errorf("core: instance %d of trajectory %d is a reference", orig, j)
	}
	if meta.RefOrig != ref.Orig {
		return nil, fmt.Errorf("core: reference mismatch: meta %d, view %d", meta.RefOrig, ref.Orig)
	}
	r, err := rec.Reader(meta.Start)
	if err != nil {
		return nil, err
	}
	gotOrig, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if gotOrig != orig {
		return nil, fmt.Errorf("core: record at %d has orig %d, want %d", meta.Start, gotOrig, orig)
	}
	isRef, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	if isRef {
		return nil, fmt.Errorf("core: record %d is a reference record", orig)
	}
	p, err := a.PCodec.Decode(r)
	if err != nil {
		return nil, err
	}
	if _, err := r.ReadCount(); err != nil { // refPos; directory already knows it
		return nil, err
	}
	v := &NonRefView{Orig: orig, RefOrig: ref.Orig, P: p}
	v.EFactors, v.EFactorPos, err = readEFactors(r, len(ref.E), a.EdgeBits)
	if err != nil {
		return nil, err
	}
	// Derive the expanded E length without expanding (needed for the raw
	// T' mode, whose bit count is ECount-2).
	for _, f := range v.EFactors {
		if f.NotInRef {
			v.eCount++
			continue
		}
		v.eCount += f.L
		if f.HasM {
			v.eCount++
		}
	}
	same, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	v.TFSame = same
	if !same {
		raw, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		if raw {
			storedLen := v.eCount - 2
			if storedLen < 0 {
				storedLen = 0
			}
			v.TFRaw = make([]bool, storedLen)
			for i := range v.TFRaw {
				b, err := r.ReadBool()
				if err != nil {
					return nil, err
				}
				v.TFRaw[i] = b
			}
		} else {
			v.TFFactors, err = readTFFactors(r, len(ref.TFStored))
			if err != nil {
				return nil, err
			}
		}
	}
	nd, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	posBits := bitio.WidthFor(rec.NumPoints - 1)
	v.DFactors = make([]DFactor, nd)
	for i := range v.DFactors {
		pos, err := r.ReadBits(posBits)
		if err != nil {
			return nil, err
		}
		rd, err := a.DCodec.Decode(r)
		if err != nil {
			return nil, err
		}
		v.DFactors[i] = DFactor{Pos: int(pos), RD: rd}
	}
	return v, nil
}

// ECount returns the length of the (not necessarily expanded) E sequence.
func (v *NonRefView) ECount() int { return v.eCount }

// ExpandE reconstructs the edge-number sequence from the factors.
func (v *NonRefView) ExpandE(ref *RefView) ([]uint16, error) {
	return ExpandE(v.EFactors, ref.E)
}

// StoredOnesUpTo counts 1s among the first g stored time-flag bits of the
// non-reference, decompressing at most one factor partially (the Z / γ
// computation of Formulas 4-6): full factors are ranked through the
// reference's flag array ω.
func (v *NonRefView) StoredOnesUpTo(ref *RefView, g int) int {
	if v.TFSame {
		x := g
		if x > len(ref.TFStored) {
			x = len(ref.TFStored)
		}
		if x < 0 {
			x = 0
		}
		return ref.Omega()[x]
	}
	if v.TFRaw != nil {
		ones := 0
		for i := 0; i < g && i < len(v.TFRaw); i++ {
			if v.TFRaw[i] {
				ones++
			}
		}
		return ones
	}
	omega := ref.Omega()
	pos, ones := 0, 0
	for _, f := range v.TFFactors {
		flen := f.L
		if f.HasM {
			flen++
		}
		if pos+flen <= g {
			// Whole factor before g: ω difference plus the mismatch bit.
			ones += omega[f.S+f.L] - omega[f.S]
			if f.HasM && f.M {
				ones++
			}
			pos += flen
			continue
		}
		take := g - pos
		if take > 0 {
			if take > f.L {
				take = f.L
			}
			ones += omega[f.S+take] - omega[f.S]
		}
		return ones
	}
	return ones
}

// TFStoredLen returns the length of the stored time-flag bit-string.
func (v *NonRefView) TFStoredLen(ref *RefView) int {
	if v.TFSame {
		return len(ref.TFStored)
	}
	if v.TFRaw != nil {
		return len(v.TFRaw)
	}
	n := 0
	for _, f := range v.TFFactors {
		n += f.L
		if f.HasM {
			n++
		}
	}
	return n
}

// OnesUpToOriginal is the original array γ of Section 5.1 for the
// non-reference: 1s among original time-flag bits 0..g inclusive.
func (v *NonRefView) OnesUpToOriginal(ref *RefView, g int) int {
	return onesUpToOriginal(g, v.eCount, func(x int) int { return v.StoredOnesUpTo(ref, x) })
}

// PositionOfPoint returns the original-sequence position carrying point k.
func (v *NonRefView) PositionOfPoint(ref *RefView, k int) (int, error) {
	return positionOfPoint(k, v.eCount, func(g int) int { return v.OnesUpToOriginal(ref, g) })
}

// FullTF reconstructs the complete time-flag bit-string.
func (v *NonRefView) FullTF(ref *RefView) ([]bool, error) {
	if v.TFSame {
		return FullTF(ref.TFStored, v.eCount), nil
	}
	if v.TFRaw != nil {
		return FullTF(v.TFRaw, v.eCount), nil
	}
	stored, err := ExpandTF(v.TFFactors, ref.TFStored)
	if err != nil {
		return nil, err
	}
	return FullTF(stored, v.eCount), nil
}

// D reconstructs the relative distances from the reference's plus the
// difference factors.
func (v *NonRefView) D(ref *RefView) ([]float64, error) {
	refD, err := ref.D()
	if err != nil {
		return nil, err
	}
	return ExpandD(v.DFactors, refD)
}

// Instance materializes the non-reference as a trajectory instance.
func (v *NonRefView) Instance(ref *RefView, numPoints int) (*traj.Instance, error) {
	e, err := v.ExpandE(ref)
	if err != nil {
		return nil, err
	}
	tf, err := v.FullTF(ref)
	if err != nil {
		return nil, err
	}
	refD, err := ref.D()
	if err != nil {
		return nil, err
	}
	d, err := ExpandD(v.DFactors, refD)
	if err != nil {
		return nil, err
	}
	return &traj.Instance{SV: ref.SV, E: e, D: d, TF: tf, P: v.P}, nil
}
