package core

import (
	"slices"

	"utcq/internal/traj"
)

// Selection is the output of reference selection for one uncertain
// trajectory: which instances are references, and each non-reference's
// reference.  The two constraints of Section 4.3 hold by construction:
// every non-reference has exactly one reference, and references are never
// themselves represented (single-order compression).
type Selection struct {
	IsRef []bool
	RefOf []int // RefOf[v] = reference instance index; -1 for references
}

// NumRefs counts the references.
func (s Selection) NumRefs() int {
	n := 0
	for _, r := range s.IsRef {
		if r {
			n++
		}
	}
	return n
}

// Rrs returns the referential representation set of reference w: the
// non-references it represents.
func (s Selection) Rrs(w int) []int {
	var out []int
	for v, r := range s.RefOf {
		if r == w {
			out = append(out, v)
		}
	}
	return out
}

// Validate checks the selection's structural constraints.
func (s Selection) Validate() bool {
	for v := range s.IsRef {
		if s.IsRef[v] != (s.RefOf[v] == -1) {
			return false
		}
		if !s.IsRef[v] {
			w := s.RefOf[v]
			if w < 0 || w >= len(s.IsRef) || !s.IsRef[w] || w == v {
				return false
			}
		}
	}
	return true
}

// SelectReferences runs pivot selection and the greedy Algorithm 1 on one
// uncertain trajectory.  It uses the pre-sorted variant the paper suggests:
// all positive scores are sorted once and consumed with validity checks,
// which is equivalent to repeatedly extracting the maximum of SM.
func SelectReferences(tu *traj.Uncertain, numPivots int) Selection {
	return selectReferencesWith(tu, numPivots, FJD)
}

// selectReferencesWith runs Algorithm 1 with a custom similarity between
// pivot representations (used by the plain-Jaccard ablation).
func selectReferencesWith(tu *traj.Uncertain, numPivots int, sim func(a, b []PivotFactor) float64) Selection {
	n := len(tu.Instances)
	sel := Selection{IsRef: make([]bool, n), RefOf: make([]int, n)}
	for i := range sel.RefOf {
		sel.RefOf[i] = -1
	}
	if n <= 1 {
		for i := range sel.IsRef {
			sel.IsRef[i] = true
		}
		return sel
	}

	ps := SelectPivots(tu, numPivots)

	type entry struct {
		score float64
		w, v  int
	}
	var entries []entry
	for w := 0; w < n; w++ {
		for v := 0; v < n; v++ {
			if s := ps.score(tu, w, v, sim); s > 0 {
				entries = append(entries, entry{s, w, v})
			}
		}
	}
	// The comparator is a total order, so the sorted slice is identical to
	// the historical sort.Slice result; SortFunc just skips the reflection.
	slices.SortFunc(entries, func(a, b entry) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		case a.w != b.w:
			return a.w - b.w
		default:
			return a.v - b.v
		}
	})

	isNonRef := make([]bool, n)
	for _, e := range entries {
		// SM[w][v] is still live iff: w has not become a non-reference
		// (row w not removed), v has not been represented or promoted
		// (column/row v not removed).
		if isNonRef[e.w] || isNonRef[e.v] || sel.IsRef[e.v] {
			continue
		}
		sel.IsRef[e.w] = true
		isNonRef[e.v] = true
		sel.RefOf[e.v] = e.w
	}
	// Lines 11-13: untouched instances become standalone references.
	for i := 0; i < n; i++ {
		if !sel.IsRef[i] && !isNonRef[i] {
			sel.IsRef[i] = true
		}
	}
	return sel
}
