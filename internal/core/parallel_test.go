package core

import (
	"bytes"
	"reflect"
	"testing"

	"utcq/internal/gen"
)

func parallelFixture(t *testing.T) (*gen.Dataset, Options) {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ds, DefaultOptions(p.Ts)
}

// TestCompressParallelDeterministic: compressing with any worker count
// must produce an archive byte-identical to the serial (Parallelism: 1)
// run, including the aggregated stats.
func TestCompressParallelDeterministic(t *testing.T) {
	ds, opts := parallelFixture(t)

	serialize := func(parallelism int) ([]byte, CompStats) {
		o := opts
		o.Parallelism = parallelism
		c, err := NewCompressor(ds.Graph, o)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Compress(ds.Trajectories)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), a.Stats
	}

	wantBytes, wantStats := serialize(1)
	for _, p := range []int{0, 2, 4, 7} {
		gotBytes, gotStats := serialize(p)
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("Parallelism=%d: archive differs from serial (%d vs %d bytes)",
				p, len(gotBytes), len(wantBytes))
		}
		if gotStats != wantStats {
			t.Errorf("Parallelism=%d: stats differ: %+v vs %+v", p, gotStats, wantStats)
		}
	}
}

// TestDecodeAllParallelDeterministic: parallel decompression returns the
// same trajectories as serial decompression.
func TestDecodeAllParallelDeterministic(t *testing.T) {
	ds, opts := parallelFixture(t)
	c, err := NewCompressor(ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}

	a.Opts.Parallelism = 1
	want, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 4} {
		a.Opts.Parallelism = p
		got, err := a.DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Parallelism=%d: decoded trajectories differ from serial", p)
		}
	}
}

// TestCompressParallelRoundTrip: a parallel-compressed archive decodes
// back to edge sequences identical to the originals.
func TestCompressParallelRoundTrip(t *testing.T) {
	ds, opts := parallelFixture(t)
	opts.Parallelism = 4
	c, err := NewCompressor(ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Trajectories) {
		t.Fatalf("decoded %d trajectories, want %d", len(got), len(ds.Trajectories))
	}
	for j, u := range got {
		orig := ds.Trajectories[j]
		if len(u.Instances) != len(orig.Instances) {
			t.Fatalf("trajectory %d: %d instances, want %d", j, len(u.Instances), len(orig.Instances))
		}
		for i := range u.Instances {
			if !reflect.DeepEqual(u.Instances[i].E, orig.Instances[i].E) {
				t.Fatalf("trajectory %d instance %d: edge sequence differs", j, i)
			}
		}
	}
}
