package core

import (
	"fmt"

	"utcq/internal/bitio"
	"utcq/internal/pddp"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// Options are the compression parameters of Table 7.
type Options struct {
	// NumPivots is the number of pivots used by reference selection
	// (paper default: 2 for DK, 1 for CD and HZ).
	NumPivots int
	// EtaD is the error bound for relative distances (default 1/128).
	EtaD float64
	// EtaP is the error bound for probabilities (default 1/512; 1/2048 for HZ).
	EtaP float64
	// Ts is the dataset's default sample interval in seconds.
	Ts int64

	// Parallelism bounds the worker pool used by Compress and DecodeAll:
	// 1 runs strictly serially (the paper's one-trajectory-at-a-time
	// memory shape, Fig 6), N uses N workers, and values below 1 use one
	// worker per CPU.  Output is byte-identical across all settings.  The
	// knob is runtime-only and is not persisted by Save/Load.
	Parallelism int

	// DisableReferential stores every instance as a reference (ablation:
	// isolates the gain of referential representation).
	DisableReferential bool

	// PlainJaccard replaces the Fine-grained Jaccard Distance with the
	// plain Jaccard similarity over factor sets (ablation: the measure the
	// paper improves upon, Section 4.3).
	PlainJaccard bool
}

// DefaultOptions returns the paper's default parameters for a dataset with
// the given sample interval.
func DefaultOptions(ts int64) Options {
	return Options{NumPivots: 1, EtaD: 1.0 / 128, EtaP: 1.0 / 512, Ts: ts}
}

// CompStats aggregates raw and compressed sizes per component, in bits.
// Hdr holds structural bits (record markers, counts) not attributable to a
// single component; it is part of the total but not of per-component ratios.
type CompStats struct {
	Raw  traj.ComponentBits
	Comp traj.ComponentBits
	Hdr  int64

	NumTrajectories int
	NumInstances    int
	NumReferences   int
}

// Add accumulates another stats value.
func (s *CompStats) Add(o CompStats) {
	s.Raw.Add(o.Raw)
	s.Comp.Add(o.Comp)
	s.Hdr += o.Hdr
	s.NumTrajectories += o.NumTrajectories
	s.NumInstances += o.NumInstances
	s.NumReferences += o.NumReferences
}

// CompTotal returns the total compressed size in bits.
func (s CompStats) CompTotal() int64 { return s.Comp.Total() + s.Hdr }

// TotalRatio returns the overall compression ratio.
func (s CompStats) TotalRatio() float64 { return ratio(s.Raw.Total(), s.CompTotal()) }

// RatioT returns the compression ratio of the time component; similarly for
// the other components.
func (s CompStats) RatioT() float64  { return ratio(s.Raw.T, s.Comp.T) }
func (s CompStats) RatioE() float64  { return ratio(s.Raw.E, s.Comp.E) }
func (s CompStats) RatioD() float64  { return ratio(s.Raw.D, s.Comp.D) }
func (s CompStats) RatioTF() float64 { return ratio(s.Raw.TF, s.Comp.TF) }
func (s CompStats) RatioP() float64  { return ratio(s.Raw.P, s.Comp.P) }

func ratio(raw, comp int64) float64 {
	if comp == 0 {
		return 0
	}
	return float64(raw) / float64(comp)
}

// InstMeta is the per-instance directory entry: the record's bit offset and
// cached navigation fields (all reproducible from the stream).
type InstMeta struct {
	IsRef   bool
	RefOrig int // original index of this non-reference's reference; -1 for refs
	Start   int // absolute bit offset of the record
	P       float64
	SV      roadnet.VertexID
}

// TrajRecord is one compressed uncertain trajectory: a single bit stream
// (time section followed by instance records, references first) plus the
// directory needed for partial decompression.
type TrajRecord struct {
	Bits      []byte
	BitLen    int
	NumPoints int
	T0        int64

	// TDeltaPos[i] is the bit position of the code of deviation i (i.e. of
	// timestamp i+1) — the temporal index stores these as t.pos.
	TDeltaPos []int

	// Insts is indexed by original instance position.
	Insts []InstMeta

	// RefOrigByWrite maps reference write order to original indices.
	RefOrigByWrite []int
}

// NumInstances returns the instance count.
func (tr *TrajRecord) NumInstances() int { return len(tr.Insts) }

// Reader returns a bit reader over the record positioned at pos.
func (tr *TrajRecord) Reader(pos int) (*bitio.Reader, error) {
	r := bitio.NewReaderBits(tr.Bits, tr.BitLen)
	if err := r.Seek(pos); err != nil {
		return nil, err
	}
	return r, nil
}

// TimeCursorAt resumes timestamp decoding at a temporal-index entry:
// startT is the timestamp with index startIdx, and pos is the bit position
// of the next deviation code (t.pos).
func (tr *TrajRecord) TimeCursorAt(ts int64, pos int, startT int64, startIdx int) (*TimeCursor, error) {
	c := &TimeCursor{}
	if err := tr.ResetTimeCursor(c, ts, pos, startT, startIdx); err != nil {
		return nil, err
	}
	return c, nil
}

// ResetTimeCursor initializes a caller-owned cursor in place (allocation-free
// resumption for the query hot paths); see TimeCursorAt.
func (tr *TrajRecord) ResetTimeCursor(c *TimeCursor, ts int64, pos int, startT int64, startIdx int) error {
	c.r.Reset(tr.Bits, tr.BitLen)
	if err := c.r.Seek(pos); err != nil {
		return err
	}
	c.t, c.idx, c.n, c.ts = startT, startIdx, tr.NumPoints, ts
	return nil
}

// TimeCursorStart iterates timestamps from the beginning.
func (tr *TrajRecord) TimeCursorStart(ts int64) (*TimeCursor, error) {
	if len(tr.TDeltaPos) == 0 {
		// Single-point stream: cursor that cannot advance.
		return &TimeCursor{t: tr.T0, idx: 0, n: 1, ts: ts}, nil
	}
	return tr.TimeCursorAt(ts, tr.TDeltaPos[0], tr.T0, 0)
}

// Archive is a compressed collection of uncertain trajectories over one
// road network.
type Archive struct {
	Opts       Options
	Graph      *roadnet.Graph
	VertexBits int
	EdgeBits   int
	DCodec     *pddp.Codec
	PCodec     *pddp.Codec
	Trajs      []*TrajRecord
	Stats      CompStats
}

// Compressor holds per-network encoding state.
type Compressor struct {
	g          *roadnet.Graph
	opts       Options
	vertexBits int
	edgeBits   int
	dCodec     *pddp.Codec
	pCodec     *pddp.Codec
}

// NewCompressor validates options against the network.
func NewCompressor(g *roadnet.Graph, opts Options) (*Compressor, error) {
	if opts.NumPivots < 1 {
		return nil, fmt.Errorf("core: NumPivots %d < 1", opts.NumPivots)
	}
	if opts.Ts < 1 {
		return nil, fmt.Errorf("core: default sample interval %d < 1", opts.Ts)
	}
	dc, err := pddp.NewCodec(opts.EtaD)
	if err != nil {
		return nil, fmt.Errorf("core: EtaD: %w", err)
	}
	pc, err := pddp.NewCodec(opts.EtaP)
	if err != nil {
		return nil, fmt.Errorf("core: EtaP: %w", err)
	}
	return &Compressor{
		g:          g,
		opts:       opts,
		vertexBits: bitio.WidthFor(g.NumVertices() - 1),
		edgeBits:   bitio.WidthFor(g.MaxOutDegree()),
		dCodec:     dc,
		pCodec:     pc,
	}, nil
}
