package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"utcq/internal/paperfix"
	"utcq/internal/pddp"
)

var (
	eTu11 = []uint16{1, 2, 1, 2, 2, 0, 4, 1, 0}
	eTu12 = []uint16{1, 1, 1, 2, 2, 0, 4, 1, 0}
	eTu13 = []uint16{1, 2, 1, 2, 2, 0, 4, 1, 2}
)

// TestTable4EFactors reproduces the (S,L,M) representations of Table 4:
// ComE(Nref111, Ref11) = ⟨(0,1,1),(2,7)⟩ and ComE(Nref112, Ref11) = ⟨(0,8,2)⟩.
func TestTable4EFactors(t *testing.T) {
	f12 := FactorsSLM(eTu12, eTu11)
	want12 := []EFactor{{S: 0, L: 1, M: 1, HasM: true}, {S: 2, L: 7}}
	if !reflect.DeepEqual(f12, want12) {
		t.Errorf("ComE(Tu12, Tu11) = %+v, want %+v", f12, want12)
	}
	f13 := FactorsSLM(eTu13, eTu11)
	want13 := []EFactor{{S: 0, L: 8, M: 2, HasM: true}}
	if !reflect.DeepEqual(f13, want13) {
		t.Errorf("ComE(Tu13, Tu11) = %+v, want %+v", f13, want13)
	}
}

// TestCaseBNotInRef reproduces Section 4.2's case B example: for
// E(Tu14) = ⟨3,2,1,2,2⟩ against Ref11, the first factor is (9, 3).
func TestCaseBNotInRef(t *testing.T) {
	f := FactorsSLM([]uint16{3, 2, 1, 2, 2}, eTu11)
	if len(f) == 0 || !f[0].NotInRef || f[0].S != 9 || f[0].M != 3 {
		t.Fatalf("first factor = %+v, want (S=9, M=3)", f)
	}
	out, err := ExpandE(f, eTu11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []uint16{3, 2, 1, 2, 2}) {
		t.Errorf("expand = %v", out)
	}
}

func TestExpandEInverts(t *testing.T) {
	for _, in := range [][]uint16{eTu12, eTu13, {1}, {9, 9, 9}, eTu11} {
		f := FactorsSLM(in, eTu11)
		out, err := ExpandE(f, eTu11)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Errorf("round trip of %v gave %v (factors %+v)", in, out, f)
		}
	}
}

func TestQuickEFactorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]uint16, rng.Intn(40)+1)
		for i := range ref {
			ref[i] = uint16(rng.Intn(5))
		}
		in := make([]uint16, rng.Intn(40)+1)
		for i := range in {
			in[i] = uint16(rng.Intn(6)) // may contain symbols absent from ref
		}
		out, err := ExpandE(FactorsSLM(in, ref), ref)
		return err == nil && reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPivotFactorsPaper reproduces the pivot representations of Section 4.3
// with piv1 = Tu13: ComE(Tu11, piv1) = ⟨(0,8),(5,1)⟩ and
// ComE(Tu12, piv1) = ⟨(0,1),(0,1),(2,6),(5,1)⟩.
func TestPivotFactorsPaper(t *testing.T) {
	c11 := FactorsSL(eTu11, eTu13)
	want11 := []PivotFactor{{S: 0, L: 8}, {S: 5, L: 1}}
	if !reflect.DeepEqual(c11, want11) {
		t.Errorf("ComE(Tu11, piv1) = %+v, want %+v", c11, want11)
	}
	c12 := FactorsSL(eTu12, eTu13)
	want12 := []PivotFactor{{S: 0, L: 1}, {S: 0, L: 1}, {S: 2, L: 6}, {S: 5, L: 1}}
	if !reflect.DeepEqual(c12, want12) {
		t.Errorf("ComE(Tu12, piv1) = %+v, want %+v", c12, want12)
	}
}

// TestPivotFactorsOmitted: a symbol absent from the pivot is omitted but
// still counted (Section 4.3).
func TestPivotFactorsOmitted(t *testing.T) {
	c := FactorsSL([]uint16{7, 1, 2}, eTu13)
	if len(c) != 2 || !c[0].Omitted || c[1].Omitted {
		t.Fatalf("factors = %+v", c)
	}
}

// TestTable4TFFactors reproduces ComT'(Nref111, Ref11) = ⟨(1,2),(3,4)⟩
// (stored bit-strings: Tu12 ⟨1,0,0,1,1,1,1⟩ vs Tu11 ⟨0,1,0,1,1,1,1⟩) and
// the identical case ComT'(Nref112, Ref11) = ∅.
func TestTable4TFFactors(t *testing.T) {
	fx := paperfix.MustNew()
	ref := StoredTF(fx.Tu1.Instances[0].TF)
	in12 := StoredTF(fx.Tu1.Instances[1].TF)
	f := FactorsTF(in12, ref)
	if len(f) != 2 {
		t.Fatalf("ComT' = %+v, want 2 factors", f)
	}
	if f[0].S != 1 || f[0].L != 2 || !f[0].HasM || f[0].M != false {
		t.Errorf("factor 1 = %+v, want (1,2) with M=0", f[0])
	}
	if f[1].S != 3 || f[1].L != 4 || f[1].HasM {
		t.Errorf("factor 2 = %+v, want (3,4) without M", f[1])
	}
	// The inferred-M convention of the paper must agree: the bit after
	// ref[1..3) is ref[3] = 1, so M = 0.
	if ref[f[0].S+f[0].L] != true {
		t.Error("inference precondition violated")
	}

	in13 := StoredTF(fx.Tu1.Instances[2].TF)
	if !reflect.DeepEqual(in13, ref) {
		t.Fatal("Tu13 stored TF should equal the reference's")
	}
}

func TestQuickTFFactorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]bool, rng.Intn(30)+1)
		for i := range ref {
			ref[i] = rng.Intn(2) == 1
		}
		in := make([]bool, rng.Intn(30))
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		out, err := ExpandTF(FactorsTF(in, ref), ref)
		if err != nil {
			return false
		}
		if len(out) == 0 && len(in) == 0 {
			return true
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTFFactorAllConstantRef exercises the degenerate case the paper leaves
// implicit: a reference bit-string with a single symbol still round-trips
// via explicit-M factors of length zero.
func TestTFFactorAllConstantRef(t *testing.T) {
	ref := []bool{true, true, true}
	in := []bool{false, false, true, false}
	out, err := ExpandTF(FactorsTF(in, ref), ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip gave %v", out)
	}
}

// TestTable4DFactors reproduces ComD(Nref112, Ref11) = ⟨(6, 0.5)⟩ and
// ComD(Nref111, Ref11) = ∅.
func TestTable4DFactors(t *testing.T) {
	fx := paperfix.MustNew()
	codec := pddp.MustCodec(1.0 / 128)
	d11 := fx.Tu1.Instances[0].D
	d12 := fx.Tu1.Instances[1].D
	d13 := fx.Tu1.Instances[2].D
	if got := DiffD(d12, d11, codec); len(got) != 0 {
		t.Errorf("ComD(Tu12, Tu11) = %+v, want empty", got)
	}
	got := DiffD(d13, d11, codec)
	if len(got) != 1 || got[0].Pos != 6 || got[0].RD != 0.5 {
		t.Errorf("ComD(Tu13, Tu11) = %+v, want [(6, 0.5)]", got)
	}
	// Expansion patches only the differing position.
	refDecoded := make([]float64, len(d11))
	for i, v := range d11 {
		refDecoded[i] = codec.Quantize(v)
	}
	quantized := make([]DFactor, len(got))
	for i, f := range got {
		quantized[i] = DFactor{Pos: f.Pos, RD: codec.Quantize(f.RD)}
	}
	out, err := ExpandD(quantized, refDecoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if diff := d13[i] - out[i]; diff < 0 || diff > codec.Eta() {
			t.Errorf("pos %d: %g want within eta of %g", i, out[i], d13[i])
		}
	}
}

func TestStoredFullTF(t *testing.T) {
	full := []bool{true, false, true, true}
	stored := StoredTF(full)
	if !reflect.DeepEqual(stored, []bool{false, true}) {
		t.Errorf("stored = %v", stored)
	}
	if got := FullTF(stored, 4); !reflect.DeepEqual(got, full) {
		t.Errorf("full = %v", got)
	}
	if got := FullTF(nil, 2); !reflect.DeepEqual(got, []bool{true, true}) {
		t.Errorf("two-entry full = %v", got)
	}
}
