package core

import (
	"fmt"

	"utcq/internal/par"
	"utcq/internal/traj"
)

// DecodeAll fully decompresses the archive over a bounded worker pool
// (Options.Parallelism workers).  D values and probabilities are quantized
// within their error bounds; everything else is lossless.  Output order is
// deterministic and the earliest failing trajectory's error is returned.
func (a *Archive) DecodeAll() ([]*traj.Uncertain, error) {
	out := make([]*traj.Uncertain, len(a.Trajs))
	err := par.Do(par.Workers(a.Opts.Parallelism), len(a.Trajs), func(j int) error {
		u, err := a.DecodeTrajectory(j)
		if err != nil {
			return fmt.Errorf("core: trajectory %d: %w", j, err)
		}
		out[j] = u
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeTrajectory fully decompresses one trajectory.
func (a *Archive) DecodeTrajectory(j int) (*traj.Uncertain, error) {
	rec := a.Trajs[j]
	r, err := rec.Reader(0)
	if err != nil {
		return nil, err
	}
	T, err := decodeT(r, a.Opts.Ts)
	if err != nil {
		return nil, err
	}
	u := &traj.Uncertain{T: T, Instances: make([]traj.Instance, len(rec.Insts))}

	// Pass 1: references (written first, so this is a sequential scan).
	refs := make([]*traj.Instance, 0, len(rec.RefOrigByWrite))
	for _, orig := range rec.RefOrigByWrite {
		rv, err := a.RefView(j, orig)
		if err != nil {
			return nil, err
		}
		ins, err := rv.Instance(len(T))
		if err != nil {
			return nil, err
		}
		u.Instances[orig] = *ins
		refs = append(refs, &u.Instances[orig])
	}
	// Pass 2: non-references.
	for orig := range rec.Insts {
		meta := rec.Insts[orig]
		if meta.IsRef {
			continue
		}
		rv, err := a.RefView(j, meta.RefOrig)
		if err != nil {
			return nil, err
		}
		nv, err := a.NonRefView(j, orig, rv)
		if err != nil {
			return nil, err
		}
		ins, err := nv.Instance(rv, len(T))
		if err != nil {
			return nil, err
		}
		u.Instances[orig] = *ins
	}
	_ = refs
	return u, nil
}
