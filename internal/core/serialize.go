package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"utcq/internal/pddp"
	"utcq/internal/roadnet"
)

// Archive serialization: a compact binary container so archives can be
// written to disk and reopened later.  The payload is the per-trajectory
// bit streams; the directory (record offsets, instance metadata, delta
// positions) is persisted too so partial decompression works immediately
// after loading without a rebuild scan.
//
// Fields are encoded by hand through a little-endian scratch buffer rather
// than binary.Write/binary.Read: the reflection those take per field is a
// known Go slow path, and the directory has many small fields.  The wire
// format is unchanged (TestSerializeGolden pins it) and documented
// normatively in docs/FORMAT.md; keep the two in sync.
//
// Layout (little endian):
//
//	magic "UTCQ" | version u16
//	options: pivots u16, etaD f64, etaP f64, ts i64, flags u8
//	vertexBits u16 | edgeBits u16 | numTrajs u32
//	per trajectory:
//	  bitLen u32, numPoints u32, t0 i64
//	  numDeltaPos u32, deltaPos u32...
//	  numInsts u32, per instance: flags u8, refOrig i32, start u32, p f64, sv i32
//	  numRefsByWrite u32, refOrigByWrite u32...
//	  payload bytes
const (
	archiveMagic   = "UTCQ"
	archiveVersion = 1
)

// flag bits of the options byte.
const (
	flagDisableReferential = 1 << 0
	flagPlainJaccard       = 1 << 1
)

// LEWriter encodes fixed-width little-endian fields through a scratch
// buffer, avoiding the per-field reflection of binary.Write.  It frames
// both the archive container and the store's shard manifest
// (internal/store), so every on-disk artifact shares one field codec.
type LEWriter struct {
	w       *bufio.Writer
	scratch [8]byte
}

// NewLEWriter returns a field writer over w.
func NewLEWriter(w *bufio.Writer) *LEWriter { return &LEWriter{w: w} }

// U8 writes one byte.
func (lw *LEWriter) U8(v byte) error { return lw.w.WriteByte(v) }

// U16 writes a little-endian uint16.
func (lw *LEWriter) U16(v uint16) error {
	binary.LittleEndian.PutUint16(lw.scratch[:2], v)
	_, err := lw.w.Write(lw.scratch[:2])
	return err
}

// U32 writes a little-endian uint32.
func (lw *LEWriter) U32(v uint32) error {
	binary.LittleEndian.PutUint32(lw.scratch[:4], v)
	_, err := lw.w.Write(lw.scratch[:4])
	return err
}

// U64 writes a little-endian uint64.
func (lw *LEWriter) U64(v uint64) error {
	binary.LittleEndian.PutUint64(lw.scratch[:8], v)
	_, err := lw.w.Write(lw.scratch[:8])
	return err
}

// I32 writes an int32 as its two's-complement uint32.
func (lw *LEWriter) I32(v int32) error { return lw.U32(uint32(v)) }

// I64 writes an int64 as its two's-complement uint64.
func (lw *LEWriter) I64(v int64) error { return lw.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern.
func (lw *LEWriter) F64(v float64) error {
	return lw.U64(math.Float64bits(v))
}

// LEReader decodes fixed-width little-endian fields through a scratch
// buffer, avoiding the per-field reflection of binary.Read.
type LEReader struct {
	r       *bufio.Reader
	scratch [8]byte
}

// NewLEReader returns a field reader over r.
func NewLEReader(r *bufio.Reader) *LEReader { return &LEReader{r: r} }

// U8 reads one byte.
func (lr *LEReader) U8() (byte, error) { return lr.r.ReadByte() }

// U16 reads a little-endian uint16.
func (lr *LEReader) U16() (uint16, error) {
	if _, err := io.ReadFull(lr.r, lr.scratch[:2]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(lr.scratch[:2]), nil
}

// U32 reads a little-endian uint32.
func (lr *LEReader) U32() (uint32, error) {
	if _, err := io.ReadFull(lr.r, lr.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(lr.scratch[:4]), nil
}

// U64 reads a little-endian uint64.
func (lr *LEReader) U64() (uint64, error) {
	if _, err := io.ReadFull(lr.r, lr.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(lr.scratch[:8]), nil
}

// I32 reads an int32.
func (lr *LEReader) I32() (int32, error) {
	v, err := lr.U32()
	return int32(v), err
}

// I64 reads an int64.
func (lr *LEReader) I64() (int64, error) {
	v, err := lr.U64()
	return int64(v), err
}

// F64 reads a float64.
func (lr *LEReader) F64() (float64, error) {
	v, err := lr.U64()
	return math.Float64frombits(v), err
}

// Save writes the archive to w.  The road network is not serialized: an
// archive is only meaningful against the network it was compressed with,
// and the caller re-attaches it on Load.
func (a *Archive) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(archiveMagic); err != nil {
		return err
	}
	lw := NewLEWriter(bw)

	if err := lw.U16(archiveVersion); err != nil {
		return err
	}
	if err := lw.U16(uint16(a.Opts.NumPivots)); err != nil {
		return err
	}
	if err := lw.F64(a.Opts.EtaD); err != nil {
		return err
	}
	if err := lw.F64(a.Opts.EtaP); err != nil {
		return err
	}
	if err := lw.I64(a.Opts.Ts); err != nil {
		return err
	}
	flags := byte(0)
	if a.Opts.DisableReferential {
		flags |= flagDisableReferential
	}
	if a.Opts.PlainJaccard {
		flags |= flagPlainJaccard
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if err := lw.U16(uint16(a.VertexBits)); err != nil {
		return err
	}
	if err := lw.U16(uint16(a.EdgeBits)); err != nil {
		return err
	}
	if err := lw.U32(uint32(len(a.Trajs))); err != nil {
		return err
	}
	for _, tr := range a.Trajs {
		if err := lw.U32(uint32(tr.BitLen)); err != nil {
			return err
		}
		if err := lw.U32(uint32(tr.NumPoints)); err != nil {
			return err
		}
		if err := lw.I64(tr.T0); err != nil {
			return err
		}
		if err := lw.U32(uint32(len(tr.TDeltaPos))); err != nil {
			return err
		}
		for _, p := range tr.TDeltaPos {
			if err := lw.U32(uint32(p)); err != nil {
				return err
			}
		}
		if err := lw.U32(uint32(len(tr.Insts))); err != nil {
			return err
		}
		for _, m := range tr.Insts {
			fl := byte(0)
			if m.IsRef {
				fl = 1
			}
			if err := bw.WriteByte(fl); err != nil {
				return err
			}
			if err := lw.I32(int32(m.RefOrig)); err != nil {
				return err
			}
			if err := lw.U32(uint32(m.Start)); err != nil {
				return err
			}
			if err := lw.F64(m.P); err != nil {
				return err
			}
			if err := lw.I32(int32(m.SV)); err != nil {
				return err
			}
		}
		if err := lw.U32(uint32(len(tr.RefOrigByWrite))); err != nil {
			return err
		}
		for _, o := range tr.RefOrigByWrite {
			if err := lw.U32(uint32(o)); err != nil {
				return err
			}
		}
		nbytes := (tr.BitLen + 7) / 8
		if nbytes > len(tr.Bits) {
			return fmt.Errorf("core: trajectory payload shorter than its bit length")
		}
		if _, err := bw.Write(tr.Bits[:nbytes]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads an archive written by Save and attaches the road network.
// The stream is buffered to memory and decoded by LoadBytes; callers that
// already hold the bytes (or a file mapping) should call LoadBytes
// directly and skip the copy.
func Load(r io.Reader, g *roadnet.Graph) (*Archive, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return LoadBytes(data, g)
}

// byteReader decodes the little-endian container fields from an in-memory
// buffer with explicit bounds checks.  Unlike LEReader it never copies:
// take returns subslices of the underlying data, which is what makes the
// mmap decode path zero-copy.
type byteReader struct {
	data []byte
	off  int
}

// errTruncated reports a field extending past the end of the buffer.
var errTruncated = errors.New("core: archive truncated")

func (r *byteReader) remaining() int { return len(r.data) - r.off }

// take returns the next n bytes without copying.
func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, errTruncated
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, errTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *byteReader) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

func (r *byteReader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *byteReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// LoadBytes decodes an archive from an in-memory buffer — typically a
// file mapping — and attaches the road network.  Each record's Bits field
// aliases the buffer directly (the bit streams are read-only at query
// time), so decoding materializes only the directory: for a mapped file
// the payload pages are faulted in on first query touch, not at open.
// The caller owns the buffer's lifetime and must keep it valid while the
// archive or any of its records is reachable.
func LoadBytes(data []byte, g *roadnet.Graph) (*Archive, error) {
	r := &byteReader{data: data}
	magic, err := r.take(len(archiveMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != archiveMagic {
		return nil, errors.New("core: not a UTCQ archive")
	}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != archiveVersion {
		return nil, fmt.Errorf("core: unsupported archive version %d", version)
	}
	var opts Options
	pv, err := r.u16()
	if err != nil {
		return nil, err
	}
	opts.NumPivots = int(pv)
	if opts.EtaD, err = r.f64(); err != nil {
		return nil, err
	}
	if opts.EtaP, err = r.f64(); err != nil {
		return nil, err
	}
	if opts.Ts, err = r.i64(); err != nil {
		return nil, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	opts.DisableReferential = flags&flagDisableReferential != 0
	opts.PlainJaccard = flags&flagPlainJaccard != 0

	a := &Archive{Opts: opts, Graph: g}
	vb, err := r.u16()
	if err != nil {
		return nil, err
	}
	eb, err := r.u16()
	if err != nil {
		return nil, err
	}
	a.VertexBits, a.EdgeBits = int(vb), int(eb)
	if a.DCodec, err = pddp.NewCodec(opts.EtaD); err != nil {
		return nil, err
	}
	if a.PCodec, err = pddp.NewCodec(opts.EtaP); err != nil {
		return nil, err
	}

	nt, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Every trajectory needs at least its fixed-width header; bounding the
	// count by the remaining bytes turns a corrupt count into a parse
	// error instead of a giant allocation.
	if int64(nt)*20 > int64(r.remaining()) {
		return nil, errTruncated
	}
	a.Trajs = make([]*TrajRecord, nt)
	for j := range a.Trajs {
		tr := &TrajRecord{}
		bl, err := r.u32()
		if err != nil {
			return nil, err
		}
		tr.BitLen = int(bl)
		np, err := r.u32()
		if err != nil {
			return nil, err
		}
		tr.NumPoints = int(np)
		if tr.T0, err = r.i64(); err != nil {
			return nil, err
		}
		nd, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int64(nd)*4 > int64(r.remaining()) {
			return nil, errTruncated
		}
		tr.TDeltaPos = make([]int, nd)
		for i := range tr.TDeltaPos {
			p, err := r.u32()
			if err != nil {
				return nil, err
			}
			tr.TDeltaPos[i] = int(p)
		}
		ni, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int64(ni)*21 > int64(r.remaining()) {
			return nil, errTruncated
		}
		tr.Insts = make([]InstMeta, ni)
		for i := range tr.Insts {
			fl, err := r.u8()
			if err != nil {
				return nil, err
			}
			refOrig, err := r.i32()
			if err != nil {
				return nil, err
			}
			start, err := r.u32()
			if err != nil {
				return nil, err
			}
			p, err := r.f64()
			if err != nil {
				return nil, err
			}
			sv, err := r.i32()
			if err != nil {
				return nil, err
			}
			tr.Insts[i] = InstMeta{
				IsRef:   fl&1 == 1,
				RefOrig: int(refOrig),
				Start:   int(start),
				P:       p,
				SV:      roadnet.VertexID(sv),
			}
		}
		nr, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int64(nr)*4 > int64(r.remaining()) {
			return nil, errTruncated
		}
		tr.RefOrigByWrite = make([]int, nr)
		for i := range tr.RefOrigByWrite {
			o, err := r.u32()
			if err != nil {
				return nil, err
			}
			tr.RefOrigByWrite[i] = int(o)
		}
		nbytes := (tr.BitLen + 7) / 8
		if tr.Bits, err = r.take(nbytes); err != nil {
			return nil, err
		}
		a.Trajs[j] = tr
	}
	return a, nil
}
