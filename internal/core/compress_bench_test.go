package core

import (
	"testing"

	"utcq/internal/gen"
)

// BenchmarkCompressOne is the per-trajectory hot path of the write
// pipeline (reference selection + referential factorization + SIAR/PDDP
// encoding of one uncertain trajectory).  It is one of the pinned
// bench-gate benchmarks: CI fails a PR that regresses it by more than the
// gate threshold (see .github/workflows/ci.yml).
func BenchmarkCompressOne(b *testing.B) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 24, 7)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCompressor(ds.Graph, DefaultOptions(p.Ts))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.CompressOne(ds.Trajectories[i%len(ds.Trajectories)]); err != nil {
			b.Fatal(err)
		}
	}
}
