package core

import (
	"math"
	"testing"

	"utcq/internal/paperfix"
	"utcq/internal/traj"
)

// TestExample1FJD reproduces Example 1: with piv1 = Tu13,
// FJD(Tu11 → Tu12, piv1) = (1/8 + 1/8 + 3/4 + 1)/4 = 1/2.
func TestExample1FJD(t *testing.T) {
	comW := FactorsSL(eTu11, eTu13) // ⟨(0,8),(5,1)⟩
	comV := FactorsSL(eTu12, eTu13) // ⟨(0,1),(0,1),(2,6),(5,1)⟩
	got := FJD(comW, comV)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FJD = %g, want 0.5", got)
	}
	// The individual sim terms of Example 1.
	wants := []float64{1.0 / 8, 1.0 / 8, 3.0 / 4, 1}
	for i, fv := range comV {
		if got := simFactor(fv, comW); math.Abs(got-wants[i]) > 1e-12 {
			t.Errorf("sim factor %d = %g, want %g", i, got, wants[i])
		}
	}
}

// TestExample2Scores checks SF(Tu11, Tu12) = p(Tu11) * FJD = 0.75 * 0.5 = 3/8,
// the value shown in the Example 2 score matrix.
func TestExample2Scores(t *testing.T) {
	fx := paperfix.MustNew()
	// Force piv1 = Tu13 as in the example.
	ps := PivotSet{
		Pivots: []int{2},
		Coms: [][][]PivotFactor{{
			FactorsSL(eTu11, eTu13),
			FactorsSL(eTu12, eTu13),
			FactorsSL(eTu13, eTu13),
		}},
	}
	if got := ps.Score(fx.Tu1, 0, 1); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("SF(Tu11, Tu12) = %g, want 3/8", got)
	}
	if got := ps.Score(fx.Tu1, 0, 0); got != 0 {
		t.Errorf("SF(w, w) = %g, want 0", got)
	}
}

// TestExample2Selection: the greedy algorithm must select Tu11 as the only
// reference with Rrs = {Tu12, Tu13}.
func TestExample2Selection(t *testing.T) {
	fx := paperfix.MustNew()
	sel := SelectReferences(fx.Tu1, 1)
	if !sel.Validate() {
		t.Fatal("invalid selection")
	}
	if !sel.IsRef[0] || sel.IsRef[1] || sel.IsRef[2] {
		t.Fatalf("IsRef = %v, want only Tu11", sel.IsRef)
	}
	if sel.RefOf[1] != 0 || sel.RefOf[2] != 0 {
		t.Errorf("RefOf = %v, want both represented by Tu11", sel.RefOf)
	}
	if got := sel.Rrs(0); len(got) != 2 {
		t.Errorf("Rrs(Tu11) = %v", got)
	}
	if sel.NumRefs() != 1 {
		t.Errorf("NumRefs = %d", sel.NumRefs())
	}
}

// TestFJDMotivation reproduces the motivating discussion of Section 4.3:
// the plain Jaccard distance between ComE(Tu11, piv1) = ⟨(0,8),(5,1)⟩ and
// ComE(Tu15, piv1) = ⟨(0,7)⟩ is 1 (no common factors), but FJD still
// recognizes the similarity.
func TestFJDMotivation(t *testing.T) {
	eTu15 := []uint16{1, 2, 1, 2, 2, 0, 4}
	comW := FactorsSL(eTu11, eTu13)
	comV := FactorsSL(eTu15, eTu13)
	if len(comV) != 1 || comV[0].S != 0 || comV[0].L != 7 {
		t.Fatalf("ComE(Tu15, piv1) = %+v, want [(0,7)]", comV)
	}
	if got := FJD(comW, comV); got < 0.4 {
		t.Errorf("FJD = %g, want high similarity despite disjoint factor sets", got)
	}
}

func TestFJDProperties(t *testing.T) {
	// Identical representations (single full-length factor) score 1.
	com := []PivotFactor{{S: 0, L: 9}}
	if got := FJD(com, com); got != 1 {
		t.Errorf("FJD(self) = %g", got)
	}
	// All-omitted representations score 0.
	om := []PivotFactor{{Omitted: true}, {Omitted: true}}
	if got := FJD(om, com); got != 0 {
		t.Errorf("FJD with omitted w = %g", got)
	}
	if got := FJD(com, om); got != 0 {
		t.Errorf("FJD with omitted v = %g", got)
	}
	// FJD is bounded by 1.
	a := []PivotFactor{{S: 0, L: 3}, {S: 4, L: 2}}
	b := []PivotFactor{{S: 0, L: 3}, {S: 4, L: 2}}
	if got := FJD(a, b); got > 1+1e-12 {
		t.Errorf("FJD = %g > 1", got)
	}
}

func TestSelectPivotsDistinct(t *testing.T) {
	fx := paperfix.MustNew()
	for np := 1; np <= 5; np++ {
		ps := SelectPivots(fx.Tu1, np)
		want := np
		if want > len(fx.Tu1.Instances) {
			want = len(fx.Tu1.Instances)
		}
		if len(ps.Pivots) != want {
			t.Errorf("np=%d: got %d pivots", np, len(ps.Pivots))
		}
		seen := map[int]bool{}
		for _, p := range ps.Pivots {
			if seen[p] {
				t.Errorf("np=%d: duplicate pivot %d", np, p)
			}
			seen[p] = true
		}
		if len(ps.Coms) != len(ps.Pivots) {
			t.Errorf("np=%d: coms/pivots mismatch", np)
		}
	}
}

// TestSelectionConstraints: on arbitrary inputs the two constraints hold:
// single reference per non-reference and single-order compression.
func TestSelectionConstraints(t *testing.T) {
	fx := paperfix.MustNew()
	sel := SelectReferences(fx.Tu1, 2)
	if !sel.Validate() {
		t.Fatal("selection violates constraints")
	}
	// Single instance trajectory: it is its own reference.
	one := &traj.Uncertain{T: fx.Tu1.T, Instances: fx.Tu1.Instances[:1]}
	sel1 := SelectReferences(one, 1)
	if !sel1.IsRef[0] || !sel1.Validate() {
		t.Error("single instance must be a reference")
	}
}

// TestSelectionDifferentSV: instances with different start vertices are
// never paired.
func TestSelectionDifferentSV(t *testing.T) {
	fx := paperfix.MustNew()
	u := &traj.Uncertain{T: fx.Tu1.T}
	u.Instances = append(u.Instances, fx.Tu1.Instances...)
	// Forge an instance starting elsewhere (v2) with an otherwise similar
	// shape: drop the first edge of Tu11 and its first point.
	alt := fx.Tu1.Instances[0]
	alt.SV = fx.IDs["v2"]
	alt.E = alt.E[1:]
	alt.TF = append([]bool{true}, alt.TF[2:]...)
	alt.D = alt.D[1:]
	alt.P = 0.0
	for i := range u.Instances {
		u.Instances[i].P *= 0.9
	}
	alt.P = 0.1
	u.Instances = append(u.Instances, alt)
	sel := SelectReferences(u, 2)
	if !sel.Validate() {
		t.Fatal("invalid selection")
	}
	if !sel.IsRef[3] {
		t.Error("different-SV instance must become a standalone reference")
	}
	for v, r := range sel.RefOf {
		if r == 3 {
			t.Errorf("instance %d assigned to different-SV reference", v)
		}
	}
}
