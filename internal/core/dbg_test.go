package core

import (
	"fmt"
	"testing"

	"utcq/internal/gen"
)

func TestDebugDError(t *testing.T) {
	p := gen.DK()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, _ := gen.Build(p, 25, 99)
	opts := DefaultOptions(p.Ts)
	c, _ := NewCompressor(ds.Graph, opts)
	a, _ := c.Compress(ds.Trajectories)
	got, _ := a.DecodeAll()
	u := ds.Trajectories[0]
	g := got[0]
	w := &u.Instances[0]
	gi := &g.Instances[0]
	fmt.Println("isRef:", a.Trajs[0].Insts[0].IsRef, "refOrig:", a.Trajs[0].Insts[0].RefOrig)
	fmt.Println("want D[27]:", w.D[27], "got:", gi.D[27], "quant:", a.DCodec.Quantize(w.D[27]))
	if !a.Trajs[0].Insts[0].IsRef {
		ref := &u.Instances[a.Trajs[0].Insts[0].RefOrig]
		fmt.Println("ref D[27]:", ref.D[27], "quant:", a.DCodec.Quantize(ref.D[27]))
	}
}
