package core

import "utcq/internal/traj"

// FJD computes the Fine-grained Jaccard Distance of Formula (1): the
// similarity of representing instance v by instance w, both factored
// against the same pivot.  Despite the name it grows with similarity
// (identical representations yield 1).
func FJD(comW, comV []PivotFactor) float64 {
	h, h2 := len(comW), len(comV)
	if h == 0 || h2 == 0 {
		return 0
	}
	sum := 0.0
	for _, fv := range comV {
		sum += simFactor(fv, comW)
	}
	den := h
	if h2 > den {
		den = h2
	}
	return sum / float64(den)
}

// simFactor implements Formula (2): the best interval overlap between one
// factor of v and all factors of w, normalized by the larger of the two
// factor lengths.  Ties on the overlap choose the smallest w-factor length.
func simFactor(fv PivotFactor, comW []PivotFactor) float64 {
	if fv.Omitted {
		return 0
	}
	bestOv, bestL := 0, 0
	for _, fw := range comW {
		if fw.Omitted {
			continue
		}
		ov := intervalOverlap(fw.S, fw.L, fv.S, fv.L)
		if ov > bestOv || (ov == bestOv && ov > 0 && fw.L < bestL) {
			bestOv, bestL = ov, fw.L
		}
	}
	if bestOv == 0 {
		return 0
	}
	den := bestL
	if fv.L > den {
		den = fv.L
	}
	return float64(bestOv) / float64(den)
}

// intervalOverlap is Ejiw(Mah) ∩ Ejiv(Mah′):
// max{min{S1+L1, S2+L2} − max{S1, S2}, 0}.
func intervalOverlap(s1, l1, s2, l2 int) int {
	lo := s1
	if s2 > lo {
		lo = s2
	}
	hi := s1 + l1
	if s2+l2 < hi {
		hi = s2 + l2
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// PivotSet carries the selected pivots and every instance's representation
// against each of them.
type PivotSet struct {
	Pivots []int             // instance indices chosen as pivots
	Coms   [][][]PivotFactor // Coms[p][w]: representation of instance w against pivot p
}

// SelectPivots implements the pivot-selection procedure of Section 4.3:
// start from an arbitrary instance, repeatedly represent all instances
// against the latest pivot and promote the instance with the most factors
// (the farthest one).  Only E(·) is represented.
func SelectPivots(tu *traj.Uncertain, numPivots int) PivotSet {
	n := len(tu.Instances)
	if numPivots < 1 {
		numPivots = 1
	}
	if numPivots > n {
		numPivots = n
	}
	ps := PivotSet{}
	isPivot := make([]bool, n)

	represent := func(base int) [][]PivotFactor {
		ix := NewRefIndex(tu.Instances[base].E)
		coms := make([][]PivotFactor, n)
		for w := 0; w < n; w++ {
			coms[w] = ix.FactorsSL(tu.Instances[w].E)
		}
		return coms
	}
	// Step i: the seed instance is instance 0; its representation is only
	// used to pick the first pivot.
	coms := represent(0)
	for len(ps.Pivots) < numPivots {
		best, bestFactors := -1, -1
		for w := 0; w < n; w++ {
			if isPivot[w] {
				continue
			}
			if len(coms[w]) > bestFactors {
				best, bestFactors = w, len(coms[w])
			}
		}
		if best < 0 {
			break
		}
		isPivot[best] = true
		ps.Pivots = append(ps.Pivots, best)
		// Step iii: represent all instances against the new pivot.
		coms = represent(best)
		ps.Coms = append(ps.Coms, coms)
	}
	return ps
}

// Score computes SF(w, v) of Section 4.3: the score of representing v by w,
// i.e. w's probability times the maximum FJD over all pivots.  It is 0 when
// w == v or the start vertices differ.
func (ps *PivotSet) Score(tu *traj.Uncertain, w, v int) float64 {
	return ps.score(tu, w, v, FJD)
}

func (ps *PivotSet) score(tu *traj.Uncertain, w, v int, sim func(a, b []PivotFactor) float64) float64 {
	if w == v {
		return 0
	}
	if tu.Instances[w].SV != tu.Instances[v].SV {
		return 0
	}
	best := 0.0
	for p := range ps.Pivots {
		if f := sim(ps.Coms[p][w], ps.Coms[p][v]); f > best {
			best = f
		}
	}
	return tu.Instances[w].P * best
}

// plainJaccard is the similarity the paper improves upon: the Jaccard
// similarity of the two factor multisets (Section 4.3 shows it misjudges
// near-identical representations such as ⟨(0,8),(5,1)⟩ vs ⟨(0,7)⟩).
func plainJaccard(comW, comV []PivotFactor) float64 {
	if len(comW) == 0 || len(comV) == 0 {
		return 0
	}
	type key struct{ s, l int }
	wSet := make(map[key]int)
	for _, f := range comW {
		if !f.Omitted {
			wSet[key{f.S, f.L}]++
		}
	}
	inter := 0
	for _, f := range comV {
		if f.Omitted {
			continue
		}
		k := key{f.S, f.L}
		if wSet[k] > 0 {
			wSet[k]--
			inter++
		}
	}
	union := len(comW) + len(comV) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
