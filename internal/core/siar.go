// Package core implements the UTCQ framework's representor and compressor
// (Section 4 of the paper): the improved TED representation with SIAR
// temporal encoding, referential representation of non-reference instances,
// pivot-based reference selection with the Fine-grained Jaccard Distance,
// and the binary encoder/decoder with partial-decompression support (flag
// and original arrays, Section 5.1).
package core

import (
	"fmt"

	"utcq/internal/bitio"
	"utcq/internal/egolomb"
)

// SIARDeltas converts a time sequence into its Sample Interval Adaptive
// Representation (Section 4.1): deviations (t[i+1]-t[i]) - Ts.
func SIARDeltas(T []int64, Ts int64) []int64 {
	if len(T) == 0 {
		return nil
	}
	out := make([]int64, len(T)-1)
	for i := 1; i < len(T); i++ {
		out[i-1] = T[i] - T[i-1] - Ts
	}
	return out
}

// SIARRestore inverts SIARDeltas.
func SIARRestore(t0 int64, deltas []int64, Ts int64) []int64 {
	out := make([]int64, len(deltas)+1)
	out[0] = t0
	for i, d := range deltas {
		out[i+1] = out[i] + Ts + d
	}
	return out
}

// secondsOfDayBits is the paper's t0 width: 17 bits cover one day of
// seconds (the worked example encodes 5:03:25 in 17 bits).
const secondsOfDayBits = 17

// encodeT writes the complete time section of one trajectory: t0, the
// point count, and the Exp-Golomb coded SIAR deviations.  It returns the
// absolute bit position of each deviation code — the temporal index stores
// these as t.pos so queries can resume decoding mid-stream.
func encodeT(w *bitio.Writer, T []int64, Ts int64) (deltaPos []int) {
	t0 := T[0]
	if t0 >= 0 && t0 < 1<<secondsOfDayBits {
		w.WriteBit(0)
		w.WriteBits(uint64(t0), secondsOfDayBits)
	} else {
		// Escape hatch for timestamps outside one day (not produced by the
		// generator, but the codec must stay total).
		w.WriteBit(1)
		w.WriteBits(uint64(t0)&(1<<62-1), 62)
	}
	w.WriteCount(len(T))
	deltaPos = make([]int, 0, len(T)-1)
	for _, d := range SIARDeltas(T, Ts) {
		deltaPos = append(deltaPos, w.Len())
		egolomb.Encode(w, d)
	}
	return deltaPos
}

// decodeT reads a complete time section.
func decodeT(r *bitio.Reader, Ts int64) ([]int64, error) {
	esc, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	width := secondsOfDayBits
	if esc == 1 {
		width = 62
	}
	t0u, err := r.ReadBits(width)
	if err != nil {
		return nil, err
	}
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: invalid point count %d", n)
	}
	deltas, err := egolomb.DecodeAll(r, n-1)
	if err != nil {
		return nil, err
	}
	return SIARRestore(int64(t0u), deltas, Ts), nil
}

// TimeCursor iterates timestamps from a mid-stream position, implementing
// the partial decompression the temporal index enables.  The embedded
// reader is a value so a cursor can live on the caller's stack
// (TrajRecord.ResetTimeCursor) without per-query allocation.
type TimeCursor struct {
	r   bitio.Reader
	t   int64 // timestamp at Index
	idx int   // index of t within T
	n   int   // total number of timestamps
	ts  int64
}

// Index returns the index of the current timestamp.
func (c *TimeCursor) Index() int { return c.idx }

// T returns the current timestamp.
func (c *TimeCursor) T() int64 { return c.t }

// Next advances to the following timestamp; it reports false past the end.
func (c *TimeCursor) Next() bool {
	if c.idx+1 >= c.n {
		return false
	}
	d, err := egolomb.Decode(&c.r)
	if err != nil {
		return false
	}
	c.t += c.ts + d
	c.idx++
	return true
}
