// Package benchfmt parses `go test -bench` output lines into structured
// measurements.  It is the shared reader behind cmd/benchjson (the perf
// record the CI bench job archives) and cmd/benchgate (the regression gate
// comparing a PR against its merge-base).
package benchfmt

import (
	"bufio"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement line.  The JSON tags define the
// BENCH_<tag>.json record format cmd/benchjson emits (Name is the map key
// there, not a field).
type Result struct {
	// Name is the benchmark name with the trailing GOMAXPROCS decoration
	// ("-8") stripped, so names are stable across machines.
	Name        string  `json:"-"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom units (b.ReportMetric), keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// Parse reads bench output, returning every measurement line in order
// (repeated -count runs of one benchmark yield repeated entries).
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:       strings.TrimSuffix(m[1], "-"+cpuSuffix(m[1])),
			Iterations: iters,
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// cpuSuffix returns the trailing GOMAXPROCS decoration ("8" in
// "BenchmarkFoo-8"), or "" when the name carries none.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	suf := name[i+1:]
	if _, err := strconv.Atoi(suf); err != nil {
		return ""
	}
	return suf
}

// MedianNsPerOp groups results by name and reduces repeated runs to the
// median ns/op — the robust center benchstat also uses, so one noisy run
// cannot fake (or mask) a regression.
func MedianNsPerOp(results []Result) map[string]float64 {
	byName := make(map[string][]float64)
	for _, r := range results {
		byName[r.Name] = append(byName[r.Name], r.NsPerOp)
	}
	out := make(map[string]float64, len(byName))
	for name, vs := range byName {
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			out[name] = vs[n/2]
		} else {
			out[name] = (vs[n/2-1] + vs[n/2]) / 2
		}
	}
	return out
}
