package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: utcq
BenchmarkWhereQueryUTCQ-8   	 3807918	       309.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkWhereQueryUTCQ-8   	 3700000	       311.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkWhereQueryUTCQ-8   	 3900000	       301.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkIngestBatch-8      	     100	   6214472 ns/op	        16.00 trajs/op	 1746064 B/op	   23337 allocs/op
PASS
ok  	utcq	1.001s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d lines, want 4", len(rs))
	}
	if rs[0].Name != "BenchmarkWhereQueryUTCQ" {
		t.Fatalf("name %q not stripped of the CPU suffix", rs[0].Name)
	}
	if rs[0].NsPerOp != 309.5 || rs[0].Iterations != 3807918 || rs[0].BytesPerOp != 0 {
		t.Fatalf("fields = %+v", rs[0])
	}
	ing := rs[3]
	if ing.Metrics["trajs/op"] != 16 || ing.AllocsPerOp != 23337 {
		t.Fatalf("custom metric lost: %+v", ing)
	}
}

func TestMedianNsPerOp(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	med := MedianNsPerOp(rs)
	if med["BenchmarkWhereQueryUTCQ"] != 309.5 {
		t.Fatalf("median of {309.5, 311.5, 301.5} = %g, want 309.5", med["BenchmarkWhereQueryUTCQ"])
	}
	if med["BenchmarkIngestBatch"] != 6214472 {
		t.Fatalf("single-run median = %g", med["BenchmarkIngestBatch"])
	}
	even := MedianNsPerOp([]Result{{Name: "B", NsPerOp: 10}, {Name: "B", NsPerOp: 20}})
	if even["B"] != 15 {
		t.Fatalf("even-count median = %g, want 15", even["B"])
	}
}
