package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/mapmatch"
	"utcq/internal/roadnet"
	"utcq/internal/server"
	"utcq/internal/store"
	"utcq/internal/traj"
	"utcq/pkg/client"
)

// equivFixture runs the same data twice: once in a single-node store and
// once split across three placement-filtered members behind a Router —
// the equivalence oracle for every cluster query.
type equivFixture struct {
	ds     *gen.Dataset
	place  *Placement
	rt     *Router
	single *client.Client // the single-node oracle
	routed *client.Client // the cluster under test
}

func newEquivFixture(t *testing.T, p gen.Profile, n int) *equivFixture {
	t.Helper()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	eix := roadnet.NewEdgeIndex(ds.Graph, 4*p.Network.Spacing)
	ingOpts := ingest.Options{Match: p.Match, BatchSize: 64}

	newNode := func(tus []*traj.Uncertain, wal string) *httptest.Server {
		sopts := store.DefaultOptions(p.Ts)
		sopts.NumShards = 3
		st, err := store.Build(ds.Graph, tus, sopts)
		if err != nil {
			t.Fatal(err)
		}
		ing, err := ingest.New(st, eix, wal, ingOpts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ing.Close() })
		ts := httptest.NewServer(server.New(st, server.Options{Ingester: ing}).Handler())
		t.Cleanup(ts.Close)
		return ts
	}

	dir := t.TempDir()
	singleTS := newNode(ds.Trajectories, filepath.Join(dir, "single.wal"))

	place := NewPlacement(NodeNames(3), DefaultPartitions, DefaultVNodes)
	var members []Member
	for i := 0; i < 3; i++ {
		var sub []*traj.Uncertain
		for gid, tu := range ds.Trajectories {
			if place.Owner(gid) == i {
				sub = append(sub, tu)
			}
		}
		mts := newNode(sub, filepath.Join(dir, NodeNames(3)[i]+".wal"))
		members = append(members, Member{Name: NodeNames(3)[i], URL: mts.URL})
	}

	rt := NewRouter(members, RouterOptions{})
	if err := rt.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return &equivFixture{
		ds:     ds,
		place:  place,
		rt:     rt,
		single: client.New(singleTS.URL, client.Options{}),
		routed: client.New(rts.URL, client.Options{}),
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertEquivalent pins the acceptance criterion: every Where, When and
// Range answer from the router is identical to the single-node store over
// the same data.
func (f *equivFixture) assertEquivalent(t *testing.T, phase string) {
	t.Helper()
	ctx := context.Background()
	st, err := f.single.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rst, err := f.routed.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Trajectories != st.Trajectories {
		t.Fatalf("%s: cluster serves %d trajectories, single node %d", phase, rst.Trajectories, st.Trajectories)
	}
	span := max(st.TimeMax-st.TimeMin, 1)

	// Where over every global id, When wherever Where found something.
	for gid := 0; gid < st.Trajectories; gid++ {
		tq := st.TimeMin + span/2
		if gid < len(f.ds.Trajectories) {
			T := f.ds.Trajectories[gid].T
			tq = (T[0] + T[len(T)-1]) / 2
		}
		want, err := f.single.Where(ctx, client.WhereRequest{Traj: gid, T: tq, Alpha: 0.1})
		if err != nil {
			t.Fatalf("%s: single where(%d): %v", phase, gid, err)
		}
		got, err := f.routed.Where(ctx, client.WhereRequest{Traj: gid, T: tq, Alpha: 0.1})
		if err != nil {
			t.Fatalf("%s: routed where(%d): %v", phase, gid, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: where(%d, %d) diverged:\n cluster %+v\n single  %+v", phase, gid, tq, got, want)
		}
		if gid%3 == 0 && len(want) > 0 {
			loc := client.Position{Edge: want[0].Edge, NDist: want[0].NDist}
			ww, err := f.single.When(ctx, client.WhenRequest{Traj: gid, Loc: loc, Alpha: 0.1})
			if err != nil {
				t.Fatalf("%s: single when(%d): %v", phase, gid, err)
			}
			gw, err := f.routed.When(ctx, client.WhenRequest{Traj: gid, Loc: loc, Alpha: 0.1})
			if err != nil {
				t.Fatalf("%s: routed when(%d): %v", phase, gid, err)
			}
			if !reflect.DeepEqual(gw, ww) {
				t.Fatalf("%s: when(%d) diverged:\n cluster %+v\n single  %+v", phase, gid, gw, ww)
			}
		}
	}

	// Ranges: the full data bounds and a sweep of sub-rectangles, at
	// alpha 0 (no pruning allowed) and above.
	b := st.Bounds
	w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
	rects := []client.Rect{
		b,
		{MinX: b.MinX, MinY: b.MinY, MaxX: b.MinX + w/2, MaxY: b.MinY + h/2},
		{MinX: b.MinX + w/4, MinY: b.MinY + h/4, MaxX: b.MaxX - w/4, MaxY: b.MaxY - h/4},
		{MinX: b.MaxX - w/8, MinY: b.MaxY - h/8, MaxX: b.MaxX, MaxY: b.MaxY},
	}
	for _, alpha := range []float64{0, 0.2} {
		for ri, rect := range rects {
			for k := int64(0); k < 4; k++ {
				tq := st.TimeMin + k*span/4
				want, err := f.single.Range(ctx, client.RangeRequest{Rect: rect, T: tq, Alpha: alpha})
				if err != nil {
					t.Fatalf("%s: single range: %v", phase, err)
				}
				got, err := f.routed.Range(ctx, client.RangeRequest{Rect: rect, T: tq, Alpha: alpha})
				if err != nil {
					t.Fatalf("%s: routed range: %v", phase, err)
				}
				if got.Degraded || want.Degraded {
					t.Fatalf("%s: healthy cluster answered degraded (rect %d)", phase, ri)
				}
				if !eqInts(got.Trajs, want.Trajs) {
					t.Fatalf("%s: range(rect %d, t %d, alpha %g) diverged:\n cluster %v\n single  %v",
						phase, ri, tq, alpha, got.Trajs, want.Trajs)
				}
			}
		}
	}
}

func TestRouterEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile gen.Profile
	}{
		{"DK", gen.DK()},
		{"CD", gen.CD()},
		{"HZ", gen.HZ()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newEquivFixture(t, tc.profile, 18)
			f.assertEquivalent(t, "static")

			// Live phase: identical raw batches ingested through both the
			// router (placement-split) and the single node (whole), compared
			// after every flush — i.e. at every generation the stores pass
			// through — and again after compaction.
			// Only matchable raws: a record the matcher drops consumes a
			// WAL sequence but no store id, so the single node and the
			// cluster would number later trajectories differently and the
			// id-by-id comparison below would be vacuous.  Drop handling
			// has its own test (TestRoutedIngestDropBurnsHole).
			p := tc.profile
			p.Network.Cols, p.Network.Rows = 20, 20
			_, _, allRaws, err := gen.Raws(p, 16, 11)
			if err != nil {
				t.Fatal(err)
			}
			m := mapmatch.New(f.ds.Graph, roadnet.NewEdgeIndex(f.ds.Graph, 4*p.Network.Spacing), p.Match)
			var raws []traj.RawTrajectory
			for _, raw := range allRaws {
				if _, err := m.Match(raw); err == nil {
					raws = append(raws, raw)
				}
				if len(raws) == 8 {
					break
				}
			}
			if len(raws) < 8 {
				t.Fatalf("only %d of %d generated raws are matchable", len(raws), len(allRaws))
			}
			ctx := context.Background()
			for off := 0; off < len(raws); off += 4 {
				end := min(off+4, len(raws))
				var batch []client.RawTrajectory
				for _, raw := range raws[off:end] {
					ct := client.RawTrajectory{}
					for _, pt := range raw.Points {
						ct.Points = append(ct.Points, client.RawPoint{X: pt.X, Y: pt.Y, T: pt.T})
					}
					batch = append(batch, ct)
				}
				sr, err := f.single.Ingest(ctx, batch, true)
				if err != nil {
					t.Fatal(err)
				}
				rr, err := f.routed.Ingest(ctx, batch, true)
				if err != nil {
					t.Fatal(err)
				}
				// FirstSeq semantics differ by design: a node reports its
				// local WAL sequence, the router the first *global* id it
				// assigned the batch.
				if rr.Accepted != sr.Accepted {
					t.Fatalf("ingest diverged: cluster %+v, single %+v", rr, sr)
				}
				if rr.FirstSeq != uint64(18+off) {
					t.Fatalf("router assigned first gid %d, want %d", rr.FirstSeq, 18+off)
				}
				// The router's bounds cache is stale until the next refresh;
				// force one so Range pruning sees post-ingest geometry
				// immediately (the background refresher does this in
				// production).
				f.rt.RefreshStats(ctx)
				f.assertEquivalent(t, "after-ingest")
			}

			if _, err := f.single.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := f.routed.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			f.rt.RefreshStats(ctx)
			f.assertEquivalent(t, "after-compact")
		})
	}
}

// TestRouterStatsAggregation pins the cluster section of /v1/stats.
func TestRouterStatsAggregation(t *testing.T) {
	f := newEquivFixture(t, gen.CD(), 18)
	st, err := f.routed.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("router stats has no cluster section")
	}
	if len(st.Cluster.Nodes) != 3 {
		t.Fatalf("cluster section lists %d nodes, want 3", len(st.Cluster.Nodes))
	}
	total := 0
	for _, n := range st.Cluster.Nodes {
		if n.Error != "" {
			t.Fatalf("node %s reports error %q", n.Name, n.Error)
		}
		total += n.Trajectories
	}
	if total != st.Trajectories || total != 18 {
		t.Fatalf("per-node trajectories sum to %d, stats says %d, want 18", total, st.Trajectories)
	}
	if st.Cluster.Holes != 0 {
		t.Fatalf("fresh cluster has %d holes", st.Cluster.Holes)
	}
}

// TestRoutedIngestDropBurnsHole: a record the member's matcher rejects at
// fold consumed a WAL sequence but produced no trajectory; the router
// must burn that global id as a hole instead of shifting every later id
// on that member.
func TestRoutedIngestDropBurnsHole(t *testing.T) {
	f := newEquivFixture(t, gen.CD(), 18)
	ctx := context.Background()
	st, err := f.single.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := st.Bounds
	far := b.MaxX + 100*(b.MaxX-b.MinX) // way off the network: unmatchable

	// One matchable raw, one unmatchable, one matchable — all pass
	// validation, the middle one dies in the matcher.
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	_, _, allRaws, err := gen.Raws(p, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := mapmatch.New(f.ds.Graph, roadnet.NewEdgeIndex(f.ds.Graph, 4*p.Network.Spacing), p.Match)
	var good []client.RawTrajectory
	for _, raw := range allRaws {
		if _, err := m.Match(raw); err != nil {
			continue
		}
		ct := client.RawTrajectory{}
		for _, pt := range raw.Points {
			ct.Points = append(ct.Points, client.RawPoint{X: pt.X, Y: pt.Y, T: pt.T})
		}
		good = append(good, ct)
		if len(good) == 2 {
			break
		}
	}
	if len(good) < 2 {
		t.Fatal("need two matchable raws")
	}
	bad := client.RawTrajectory{Points: []client.RawPoint{
		{X: far, Y: b.MinY, T: 0}, {X: far, Y: b.MinY + 10, T: 30}, {X: far, Y: b.MinY + 20, T: 60},
	}}
	batch := []client.RawTrajectory{good[0], bad, good[1]}

	resp, err := f.routed.Ingest(ctx, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Dropped) != 1 || resp.Dropped[0] != 1 {
		t.Fatalf("dropped indices = %v, want [1]", resp.Dropped)
	}
	base := int(resp.FirstSeq)

	// The neighbors are queryable, the hole answers unknown_trajectory.
	midT := func(rt client.RawTrajectory) int64 { return rt.Points[len(rt.Points)/2].T }
	for i, gid := range []int{base, base + 2} {
		if _, err := f.routed.Where(ctx, client.WhereRequest{Traj: gid, T: midT(good[i]), Alpha: 0.1}); err != nil {
			t.Fatalf("where(%d) after drop: %v", gid, err)
		}
	}
	_, err = f.routed.Where(ctx, client.WhereRequest{Traj: base + 1, T: midT(good[0]), Alpha: 0.1})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != client.CodeUnknownTrajectory {
		t.Fatalf("where(hole): got %v, want %s", err, client.CodeUnknownTrajectory)
	}
	cst, err := f.routed.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cst.Cluster.Holes != 1 {
		t.Fatalf("cluster reports %d holes, want 1", cst.Cluster.Holes)
	}
	// A follow-up batch keeps numbering past the hole and stays exact.
	resp2, err := f.routed.Ingest(ctx, []client.RawTrajectory{good[0]}, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.FirstSeq != uint64(base+3) || len(resp2.Dropped) != 0 {
		t.Fatalf("follow-up batch: %+v, want firstSeq %d and no drops", resp2, base+3)
	}
	if _, err := f.routed.Where(ctx, client.WhereRequest{Traj: base + 3, T: midT(good[0]), Alpha: 0.1}); err != nil {
		t.Fatalf("where(%d) after hole: %v", base+3, err)
	}
}

// TestRouterRejectsGenPins: generation pins are per-node state, so the
// router refuses them loudly instead of forwarding one node's pin to
// another.
func TestRouterRejectsGenPins(t *testing.T) {
	f := newEquivFixture(t, gen.CD(), 18)
	_, err := f.routed.Where(context.Background(), client.WhereRequest{Traj: 0, T: 1, Gen: 1})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != client.CodeBadRequest {
		t.Fatalf("gen-pinned routed query: got %v, want %s", err, client.CodeBadRequest)
	}
}

// TestPlacementDeterminism: the placement is a pure function of its
// configuration — two independently built instances agree on every owner.
func TestPlacementDeterminism(t *testing.T) {
	a := NewPlacement(NodeNames(5), 128, 64)
	b := NewPlacement(NodeNames(5), 128, 64)
	counts := make([]int, 5)
	for gid := 0; gid < 10_000; gid++ {
		oa, ob := a.Owner(gid), b.Owner(gid)
		if oa != ob {
			t.Fatalf("placement diverged at gid %d: %d vs %d", gid, oa, ob)
		}
		counts[oa]++
	}
	// Consistent hashing with vnodes keeps the load roughly even; a node
	// with under half the fair share means the ring is broken.
	for i, c := range counts {
		if c < 10_000/5/2 {
			t.Fatalf("node %d owns only %d of 10000 trajectories: %v", i, c, counts)
		}
	}
}
