// Package cluster turns N single-node utcqd processes into one logical
// store: a consistent-hash placement of trajectories over member nodes,
// a query router (cmd/utcqr) that owns the global id space and fans
// queries out by ownership, and a WAL-shipping replication follower
// that replays a leader's log against its own store.
//
// The division of labor with the rest of the system is deliberate:
// members stay plain utcqd servers with no cluster awareness, the
// router holds only soft state (rebuilt by Sync from member stats), and
// durability stays exactly where PR 4 put it — the leader's fsync-ack
// is the commit point, and a follower can never replay a record the
// leader could still lose (internal/ingest.ShipFrom reads the durable
// file image only).
package cluster

import (
	"fmt"
	"sort"

	"utcq/internal/store"
)

// Placement defaults: partitions bound how much placement metadata
// exists independently of data size, vnodes smooth the consistent-hash
// ring so node loads stay within a few percent of even.
const (
	DefaultPartitions = 64
	DefaultVNodes     = 64
)

// NodeNames returns the canonical names of an n-node cluster:
// "node-0" … "node-{n-1}".
func NodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// ringPoint is one vnode on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// Placement maps global trajectory ids to member nodes: gid → partition
// (splitmix64, the same mix the store's hash shard assignment uses) →
// owning node (consistent hashing over vnodes).  Both steps are pure
// functions of the configuration, so every component — router, loadgen,
// a member filtering its share of a dataset — computes identical
// ownership without coordination.
type Placement struct {
	nodes      []string
	partitions int
	ring       []ringPoint
}

// NewPlacement builds the placement for the named nodes.  partitions
// and vnodes <= 0 select the defaults.  Node order matters: the ring
// hashes node indices, so the same names in the same order always
// reproduce the same placement.
func NewPlacement(nodes []string, partitions, vnodes int) *Placement {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	p := &Placement{nodes: nodes, partitions: partitions}
	p.ring = make([]ringPoint, 0, len(nodes)*vnodes)
	for node := range nodes {
		base := store.Mix64(uint64(node + 1))
		for v := 0; v < vnodes; v++ {
			p.ring = append(p.ring, ringPoint{hash: store.Mix64(base + uint64(v)), node: node})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].hash != p.ring[j].hash {
			return p.ring[i].hash < p.ring[j].hash
		}
		// Hash ties (vanishingly rare) break by node index so the ring
		// order — and therefore ownership — stays deterministic.
		return p.ring[i].node < p.ring[j].node
	})
	return p
}

// Nodes returns the node names in ring order of definition.
func (p *Placement) Nodes() []string { return p.nodes }

// Partitions returns the partition count.
func (p *Placement) Partitions() int { return p.partitions }

// Partition returns the partition a global trajectory id hashes to.
func (p *Placement) Partition(gid int) int {
	return int(store.Mix64(uint64(gid)) % uint64(p.partitions))
}

// OwnerOfPartition returns the node index owning a partition: the first
// ring point at or clockwise of the partition's hash.
func (p *Placement) OwnerOfPartition(part int) int {
	h := store.Mix64(uint64(part))
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0 // wrap: the ring is a circle
	}
	return p.ring[i].node
}

// Owner returns the node index owning a global trajectory id.
func (p *Placement) Owner(gid int) int {
	return p.OwnerOfPartition(p.Partition(gid))
}
