package cluster

import (
	"strings"
	"testing"
)

// TestReadBodyLimit: a replication body at the limit passes, one past
// it fails loudly — never a silent truncation written durably.
func TestReadBodyLimit(t *testing.T) {
	body, err := readBodyLimit(strings.NewReader("12345678"), 8)
	if err != nil || string(body) != "12345678" {
		t.Fatalf("at-limit body: %q, %v", body, err)
	}
	if _, err := readBodyLimit(strings.NewReader("123456789"), 8); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("over-limit body: got %v, want an explicit over-limit error", err)
	}
}
