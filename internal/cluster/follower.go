package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"utcq/internal/faultfs"
	"utcq/internal/ingest"
	"utcq/internal/roadnet"
	"utcq/internal/store"
	"utcq/pkg/client"
)

// currentName is the pointer file in a follower's directory naming the
// active snapshot subdirectory.  It is replaced atomically
// (tmp+rename+dirsync), so a crash mid-bootstrap reboots into either
// the old snapshot or the new one — never a half-fetched mix.
const currentName = "CURRENT"

// FollowerOptions configure a replication follower.
type FollowerOptions struct {
	// Dir is the follower's root directory; snapshots live in
	// subdirectories under it, named by the leader generation they were
	// taken at, with CURRENT pointing at the active one.
	Dir string
	// Graph is the road network (must match the leader's: the manifest
	// carries its fingerprint and store.Open verifies it).
	Graph *roadnet.Graph
	// EdgeIndex is the matcher index over Graph.
	EdgeIndex *roadnet.EdgeIndex
	// Ingest configures the follower's ingester (its FS should equal
	// Open.FS so crash simulations cover both).
	Ingest ingest.Options
	// Open configures the follower's store.
	Open store.OpenOptions
	// HTTPClient overrides the transport to the leader (tests).
	HTTPClient *http.Client
	// PollWait is the long-poll hold requested from the leader, in whole
	// seconds (default 20s); PollMax bounds one pull (default 512).
	PollWait time.Duration
	PollMax  int
	// RetryBase is the pause after a failed pull (default 500ms).
	RetryBase time.Duration
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollWait <= 0 {
		o.PollWait = 20 * time.Second
	}
	if o.PollMax < 1 {
		o.PollMax = 512
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Millisecond
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// Follower replicates a leader's store: it bootstraps from the leader's
// manifest snapshot (or re-attaches to a snapshot a previous run left in
// Dir), then pulls the leader's durable WAL suffix forever, feeding each
// batch through its own ingester.  Because the store's content is a pure
// function of the WAL, a caught-up follower answers every query
// identically to the leader; because ShipFrom serves only fsync-covered
// records, the leader's acknowledgement stays the one commit point.
type Follower struct {
	leader string
	opts   FollowerOptions
	fs     faultfs.FS
	hc     *http.Client

	mu  sync.Mutex
	st  *store.Store
	ing *ingest.Ingester

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// lastErr is the most recent pull failure (nil while healthy) —
	// surfaced through Err for health reporting and tests.
	errMu   sync.Mutex
	lastErr error
}

// StartFollower attaches to (or bootstraps) the follower state under
// opts.Dir and starts the pull loop against the leader's base URL.
func StartFollower(leader string, opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	f := &Follower{
		leader: leader,
		opts:   opts,
		fs:     faultfs.Resolve(opts.Open.FS),
		hc:     opts.HTTPClient,
		done:   make(chan struct{}),
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	if err := f.attach(); err != nil {
		f.cancel()
		return nil, err
	}
	go f.pullLoop()
	return f, nil
}

// Store returns the follower's store (for serving reads).
func (f *Follower) Store() *store.Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Ingester returns the follower's ingester (for stats/pending; writes
// arrive only through replication).
func (f *Follower) Ingester() *ingest.Ingester {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ing
}

// Err returns the most recent pull failure, or nil while replication is
// healthy.
func (f *Follower) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.lastErr
}

func (f *Follower) setErr(err error) {
	f.errMu.Lock()
	f.lastErr = err
	f.errMu.Unlock()
}

// Close stops the pull loop and the ingester.
func (f *Follower) Close() error {
	f.cancel()
	<-f.done
	f.mu.Lock()
	ing := f.ing
	f.mu.Unlock()
	if ing != nil {
		return ing.Close()
	}
	return nil
}

// attach resumes the snapshot CURRENT points at, or bootstraps a fresh
// one from the leader when there is nothing (or nothing usable) local.
func (f *Follower) attach() error {
	if sub, err := f.fs.ReadFile(filepath.Join(f.opts.Dir, currentName)); err == nil && len(sub) > 0 {
		if err := f.open(string(sub)); err == nil {
			return nil
		}
		// A snapshot that no longer opens (half-written, graph mismatch,
		// corrupted) is abandoned; re-bootstrap replaces CURRENT.
	}
	sub, err := f.bootstrap()
	if err != nil {
		return err
	}
	return f.open(sub)
}

// open mounts the snapshot subdirectory: store + ingester + background
// drain.
func (f *Follower) open(sub string) error {
	dir := filepath.Join(f.opts.Dir, sub)
	st, err := store.Open(dir, f.opts.Graph, f.opts.Open)
	if err != nil {
		return err
	}
	ingOpts := f.opts.Ingest
	if ingOpts.FS == nil {
		ingOpts.FS = f.opts.Open.FS
	}
	ing, err := ingest.New(st, f.opts.EdgeIndex, filepath.Join(dir, "ingest.wal"), ingOpts)
	if err != nil {
		return err
	}
	ing.Start()
	f.mu.Lock()
	f.st, f.ing = st, ing
	f.mu.Unlock()
	return nil
}

// bootstrap fetches a consistent snapshot from the leader: manifest
// first (for the artifact list and the WAL position the artifacts
// embody), then every artifact, then the manifest bytes LAST — a
// snapshot directory is complete exactly when its manifest exists.  A
// 404 on an artifact means the leader compacted it away between our
// manifest fetch and now; the whole snapshot restarts from a fresh
// manifest (bounded retries).  Returns the snapshot subdirectory name
// after atomically pointing CURRENT at it.
func (f *Follower) bootstrap() (string, error) {
	const maxAttempts = 5
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		manBytes, err := f.fetch("/v1/repl/manifest")
		if err != nil {
			return "", fmt.Errorf("cluster: fetch leader manifest: %w", err)
		}
		info, err := store.ParseManifestInfo(manBytes)
		if err != nil {
			return "", fmt.Errorf("cluster: parse leader manifest: %w", err)
		}
		sub := fmt.Sprintf("snap-g%d-w%d", info.Generation, info.WALApplied)
		dir := filepath.Join(f.opts.Dir, sub)
		if err := f.fs.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
		stale := false
		for _, name := range info.Files {
			data, err := f.fetch("/v1/repl/file/" + name)
			if err != nil {
				var ae *client.APIError
				if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
					// Compacted away under us; restart from a fresh manifest.
					stale, lastErr = true, err
					break
				}
				return "", fmt.Errorf("cluster: fetch artifact %s: %w", name, err)
			}
			if err := f.writeDurable(filepath.Join(dir, name), data); err != nil {
				return "", err
			}
		}
		if stale {
			continue
		}
		// Manifest last: its presence marks the snapshot complete.
		if err := f.writeDurable(filepath.Join(dir, store.ManifestName), manBytes); err != nil {
			return "", err
		}
		if err := f.fs.SyncDir(dir); err != nil {
			return "", err
		}
		// The follower's log starts where the snapshot's artifacts end, so
		// the pull cursor lines up with the leader's absolute numbering.
		if err := ingest.CreateWAL(f.fs, filepath.Join(dir, "ingest.wal"), info.WALApplied); err != nil {
			return "", err
		}
		if err := f.setCurrent(sub); err != nil {
			return "", err
		}
		return sub, nil
	}
	return "", fmt.Errorf("cluster: snapshot kept going stale after %d attempts: %w", maxAttempts, lastErr)
}

// writeDurable writes data to path and fsyncs it.
func (f *Follower) writeDurable(path string, data []byte) error {
	w, err := f.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// setCurrent atomically repoints CURRENT at sub.
func (f *Follower) setCurrent(sub string) error {
	tmp := filepath.Join(f.opts.Dir, currentName+".tmp")
	if err := f.writeDurable(tmp, []byte(sub)); err != nil {
		return err
	}
	if err := f.fs.Rename(tmp, filepath.Join(f.opts.Dir, currentName)); err != nil {
		return err
	}
	return f.fs.SyncDir(f.opts.Dir)
}

// maxFetchBytes bounds one replication response body (snapshot artifact
// or WAL batch).
const maxFetchBytes = 256 << 20

// readBody drains a replication response body under maxFetchBytes,
// failing loudly on an over-limit body: silently truncating a snapshot
// artifact would write a corrupt file durably and surface only as an
// unexplained store.Open failure at bootstrap.
func readBody(resp *http.Response) ([]byte, error) {
	return readBodyLimit(resp.Body, maxFetchBytes)
}

func readBodyLimit(r io.Reader, limit int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("cluster: response body exceeds the %d byte replication fetch limit", limit)
	}
	return body, nil
}

// fetch GETs a leader replication endpoint and returns the body; non-2xx
// answers decode into *client.APIError when the envelope parses.
func (f *Follower) fetch(path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(f.ctx, "GET", f.leader+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp.StatusCode, body)
	}
	return body, nil
}

// apiError turns an error response into *client.APIError, decoding the
// v1 envelope when present.
func apiError(status int, body []byte) error {
	ae := &client.APIError{Status: status, Code: client.CodeInternal, Message: string(body)}
	var env client.ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		ae.Code, ae.Message = env.Code, env.Error
		ae.RetryAfter = time.Duration(env.RetryAfter) * time.Second
	}
	return ae
}

// pullLoop pulls the leader's durable WAL suffix forever: long-poll,
// decode, replay, repeat.  wal_truncated (the leader checkpointed past
// our cursor) triggers a full re-snapshot; any other failure backs off
// and retries, so a leader restart is just a pause.
func (f *Follower) pullLoop() {
	defer close(f.done)
	for f.ctx.Err() == nil {
		if err := f.pullOnce(); err != nil {
			if f.ctx.Err() != nil {
				return
			}
			f.setErr(err)
			var ae *client.APIError
			if errors.As(err, &ae) && ae.Code == client.CodeWALTruncated {
				if rerr := f.resnapshot(); rerr != nil {
					f.setErr(fmt.Errorf("cluster: re-snapshot after truncation: %w", rerr))
				} else {
					f.setErr(nil)
					continue
				}
			}
			select {
			case <-f.ctx.Done():
				return
			case <-time.After(f.opts.RetryBase):
			}
			continue
		}
		f.setErr(nil)
	}
}

// pullOnce is one pull exchange: request the suffix at our cursor,
// replay whatever arrives (an empty batch is a heartbeat).
func (f *Follower) pullOnce() error {
	f.mu.Lock()
	ing := f.ing
	f.mu.Unlock()
	from := ing.NextSeq()
	path := fmt.Sprintf("/v1/repl/wal?from=%d&max=%d&wait=%d",
		from, f.opts.PollMax, int(f.opts.PollWait/time.Second))
	req, err := http.NewRequestWithContext(f.ctx, "GET", f.leader+path, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := readBody(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp.StatusCode, body)
	}
	ver, err := strconv.ParseUint(resp.Header.Get("X-UTCQ-WAL-Version"), 10, 16)
	if err != nil {
		return fmt.Errorf("cluster: leader sent no WAL version: %w", err)
	}
	recs, err := ingest.DecodeFrames(body, uint16(ver))
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	_, err = ing.ReplicateBatch(from, recs)
	return err
}

// resnapshot abandons the current snapshot and bootstraps a fresh one —
// the recovery path when the leader's log no longer reaches back to our
// cursor.  The old ingester is closed first so its WAL handle is
// released; the old store is simply dropped (reads racing the swap see
// the old, still-valid snapshot).
func (f *Follower) resnapshot() error {
	f.mu.Lock()
	old := f.ing
	f.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	sub, err := f.bootstrap()
	if err != nil {
		return err
	}
	return f.open(sub)
}
