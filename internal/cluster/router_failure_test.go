package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"utcq/pkg/client"
)

// stubNode is a scriptable fake member: just enough of the /v1 surface
// (stats, ingest, range) for the router to Sync against and route to,
// with the failure modes a real-server fixture cannot produce on
// demand — a connection killed after the slice durably applied, a
// flush failure after acknowledgement, a backlog rejection.
type stubNode struct {
	ts *httptest.Server

	mu      sync.Mutex
	trajs   int    // post-fold trajectory count, reported everywhere
	pending int    // acked-but-unfolded records
	mode    string // "", "abort", "reject", "flusherr", "backlog"
	ranges  []int  // local ids /v1/range answers
}

func newStubNode(t *testing.T, trajs int) *stubNode {
	t.Helper()
	s := &stubNode{trajs: trajs}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		resp := client.StatsResponse{
			Trajectories: s.trajs,
			Bounds:       client.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0},
			DataBounds:   client.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0},
			Ingest:       &client.IngestStats{Pending: uint64(s.pending)},
		}
		s.mu.Unlock()
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req client.IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		switch s.mode {
		case "backlog":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(client.ErrorResponse{Code: client.CodeBacklog, Error: "backlog", RetryAfter: 1})
		case "reject":
			// Connection dies without the slice applying anywhere.
			panic(http.ErrAbortHandler)
		case "abort":
			// The slice IS durably applied, then the response is lost —
			// the ambiguous failure the router must not guess about.
			s.trajs += len(req.Trajectories)
			panic(http.ErrAbortHandler)
		case "flusherr":
			// Durably acked, fold deferred: the single-node 202 contract.
			s.pending += len(req.Trajectories)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(client.IngestResponse{
				Accepted: len(req.Trajectories), Pending: uint64(s.pending), FlushError: "fold: disk full"})
		default:
			s.trajs += len(req.Trajectories)
			json.NewEncoder(w).Encode(client.IngestResponse{
				Accepted: len(req.Trajectories), Trajectories: s.trajs})
		}
	})
	mux.HandleFunc("POST /v1/range", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ids := append([]int(nil), s.ranges...)
		s.mu.Unlock()
		if ids == nil {
			ids = []int{}
		}
		json.NewEncoder(w).Encode(client.RangeResult{Trajs: ids})
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubNode) setMode(mode string) {
	s.mu.Lock()
	s.mode = mode
	s.mu.Unlock()
}

func (s *stubNode) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trajs
}

// stubCluster wires n stub members behind a synced router.  Each stub
// starts with exactly the trajectory count the placement assigns it for
// gid 0..seed-1, so Sync's count verification passes.
func stubCluster(t *testing.T, n, seed int) (*Router, *client.Client, []*stubNode, *Placement) {
	t.Helper()
	place := NewPlacement(NodeNames(n), DefaultPartitions, DefaultVNodes)
	counts := make([]int, n)
	for gid := 0; gid < seed; gid++ {
		counts[place.Owner(gid)]++
	}
	var members []Member
	stubs := make([]*stubNode, n)
	for i := 0; i < n; i++ {
		stubs[i] = newStubNode(t, counts[i])
		members = append(members, Member{Name: NodeNames(n)[i], URL: stubs[i].ts.URL})
	}
	rt := NewRouter(members, RouterOptions{})
	if err := rt.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	// RetryAttempts 1: the tests drive retries explicitly.
	return rt, client.New(rts.URL, client.Options{RetryAttempts: 1}), stubs, place
}

// splitBatch builds a batch of k records starting at gid base and
// returns the per-member record counts the placement implies.
func splitBatch(place *Placement, n, base, k int) ([]client.RawTrajectory, []int) {
	batch := make([]client.RawTrajectory, k)
	per := make([]int, n)
	for i := range batch {
		batch[i] = client.RawTrajectory{Points: []client.RawPoint{
			{X: 0, Y: 0, T: 0}, {X: 1, Y: 1, T: 30}}}
		per[place.Owner(base+i)]++
	}
	return batch, per
}

// batchSizeCovering returns a batch size k <= 64 such that every member
// owns at least one of gids base..base+k-1.
func batchSizeCovering(t *testing.T, place *Placement, n, base int) int {
	t.Helper()
	seen := make([]bool, n)
	covered := 0
	for k := 1; k <= 64; k++ {
		if o := place.Owner(base + k - 1); !seen[o] {
			seen[o] = true
			covered++
		}
		if covered == n {
			return k
		}
	}
	t.Fatal("placement does not cover every member within 64 gids")
	return 0
}

func nodeResult(t *testing.T, resp client.IngestResponse, name string) client.NodeIngestResult {
	t.Helper()
	for _, nr := range resp.Nodes {
		if nr.Name == name {
			return nr
		}
	}
	t.Fatalf("no node entry for %s in %+v", name, resp.Nodes)
	return client.NodeIngestResult{}
}

// TestRoutedIngestAmbiguousFailureDesyncs pins the lost-ack case: the
// member durably applies its slice but the response never arrives.  The
// router must not assume "not applied" — it latches the member desynced
// so no later ingest maps past the unknown offset, and the reconcile
// must NOT clear the latch (the member's count stays ahead of the maps).
func TestRoutedIngestAmbiguousFailureDesyncs(t *testing.T) {
	ctx := context.Background()
	rt, rc, stubs, place := stubCluster(t, 2, 0)
	k := batchSizeCovering(t, place, 2, 0)
	batch, per := splitBatch(place, 2, 0, k)

	stubs[1].setMode("abort")
	resp, err := rc.Ingest(ctx, batch, true)
	if err != nil {
		t.Fatalf("ingest with one ambiguous member: %v (want partial success)", err)
	}
	if resp.Accepted != per[0] {
		t.Fatalf("accepted %d, want only node-0's %d", resp.Accepted, per[0])
	}
	nr := nodeResult(t, resp, NodeNames(2)[1])
	if nr.Code != client.CodeNodeQuarantined {
		t.Fatalf("ambiguous slice reported code %q, want %q", nr.Code, client.CodeNodeQuarantined)
	}

	// The member applied its slice even though the router never saw the
	// ack; it must now be latched desynced, and healing the transport
	// must not unlatch it.
	stubs[1].setMode("")
	rt.members[1].heal() // transport quarantine is not the latch under test
	rt.RefreshStats(ctx) // reconcile runs — and must see the count ahead
	if rt.members[1].desynced() == "" {
		t.Fatal("member applied unmapped records but reconcile cleared the desync latch")
	}

	// A follow-up batch must not be mapped onto the member: its numbering
	// is ahead of the maps, so a commit would translate every later gid
	// to a different trajectory's data.  (The first batch committed k
	// gids — node-0's mapped, node-1's burned — so the new batch starts
	// at base k and needs its own placement-covering size.)
	k2 := batchSizeCovering(t, place, 2, k)
	batch2, _ := splitBatch(place, 2, k, k2)
	resp2, err := rc.Ingest(ctx, batch2, true)
	if err != nil {
		t.Fatalf("ingest after desync: %v", err)
	}
	nr2 := nodeResult(t, resp2, NodeNames(2)[1])
	if nr2.Code != client.CodeNodeDesynced {
		t.Fatalf("slice to desynced member reported code %q, want %q", nr2.Code, client.CodeNodeDesynced)
	}
	if !strings.Contains(nr2.Error, "resubmit") {
		t.Fatalf("desync error should warn about resubmission, got %q", nr2.Error)
	}

	st, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var row client.NodeStats
	for _, ns := range st.Cluster.Nodes {
		if ns.Name == NodeNames(2)[1] {
			row = ns
		}
	}
	if !row.Desynced {
		t.Fatalf("stats row for the desynced member: %+v", row)
	}
	h, err := rc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("healthz status %q with a desynced member, want degraded", h.Status)
	}
}

// TestRoutedIngestAmbiguousFailureReconciles pins the benign half of
// the same ambiguity: the connection died and the member truly did not
// apply the slice.  The background reconcile proves it (count equals
// the mapped ids exactly) and clears the latch, so ingest resumes with
// no operator involved.
func TestRoutedIngestAmbiguousFailureReconciles(t *testing.T) {
	ctx := context.Background()
	rt, rc, stubs, place := stubCluster(t, 2, 0)
	k := batchSizeCovering(t, place, 2, 0)
	batch, _ := splitBatch(place, 2, 0, k)

	stubs[1].setMode("reject")
	if _, err := rc.Ingest(ctx, batch, true); err != nil {
		t.Fatalf("ingest with one rejecting member: %v", err)
	}
	if rt.members[1].desynced() == "" {
		t.Fatal("transport failure mid-ingest did not latch the member desynced")
	}

	stubs[1].setMode("")
	rt.members[1].heal()
	rt.RefreshStats(ctx)
	if reason := rt.members[1].desynced(); reason != "" {
		t.Fatalf("count matches the maps but the latch did not clear: %s", reason)
	}

	// The first batch committed k gids (node-0's mapped, node-1's
	// burned), so the follow-up starts at base k with its own placement
	// split.
	k2 := batchSizeCovering(t, place, 2, k)
	batch2, per2 := splitBatch(place, 2, k, k2)
	resp, err := rc.Ingest(ctx, batch2, true)
	if err != nil {
		t.Fatal(err)
	}
	if nr := nodeResult(t, resp, NodeNames(2)[1]); nr.Error != "" || nr.Accepted != per2[1] {
		t.Fatalf("post-reconcile slice: %+v, want %d accepted", nr, per2[1])
	}
	if got, want := stubs[1].count(), per2[1]; got != want {
		t.Fatalf("member holds %d records, want %d", got, want)
	}
}

// TestRoutedIngestFlushErrorNotCommitted pins the deferred-fold case: a
// member acks the slice (202 + flushError) but which records the
// matcher will drop is unknown, so the router must not commit the
// mapping — the slice's gids burn as holes and the member latches
// desynced until the fold outcome is reconciled.
func TestRoutedIngestFlushErrorNotCommitted(t *testing.T) {
	ctx := context.Background()
	rt, rc, stubs, place := stubCluster(t, 2, 0)
	k := batchSizeCovering(t, place, 2, 0)
	batch, per := splitBatch(place, 2, 0, k)

	stubs[1].setMode("flusherr")
	resp, err := rc.Ingest(ctx, batch, true)
	if err != nil {
		t.Fatalf("ingest with one flush-failing member: %v", err)
	}
	if resp.Accepted != per[0] {
		t.Fatalf("accepted %d, want only node-0's %d (flush-failed slice must not count)", resp.Accepted, per[0])
	}
	if resp.FlushError != "" {
		t.Fatalf("router forwarded FlushError %q as success; the slice must fail instead", resp.FlushError)
	}
	nr := nodeResult(t, resp, NodeNames(2)[1])
	if nr.Code != client.CodeNodeDesynced {
		t.Fatalf("flush-failed slice reported code %q, want %q", nr.Code, client.CodeNodeDesynced)
	}
	if rt.members[1].desynced() == "" {
		t.Fatal("flush failure after ack did not latch the member desynced")
	}

	// The un-foldable slice burned its gids as holes: a point query for
	// one answers unknown_trajectory instead of another trajectory.
	st, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.Holes != per[1] {
		t.Fatalf("cluster reports %d holes, want %d", st.Cluster.Holes, per[1])
	}
	for gid := 0; gid < k; gid++ {
		if place.Owner(gid) != 1 {
			continue
		}
		_, err := rc.Where(ctx, client.WhereRequest{Traj: gid, T: 0, Alpha: 0.1})
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != client.CodeUnknownTrajectory {
			t.Fatalf("where(burned gid %d): got %v, want %s", gid, err, client.CodeUnknownTrajectory)
		}
	}
}

// TestRoutedIngestAllFailedBurnsNoHoles pins retry-safety under
// shedding: when no member accepted anything the id space must stay
// untouched, so a client retrying a shed batch does not permanently
// consume a fresh gid range as holes on every attempt.
func TestRoutedIngestAllFailedBurnsNoHoles(t *testing.T) {
	ctx := context.Background()
	rt, rc, stubs, place := stubCluster(t, 2, 0)
	k := batchSizeCovering(t, place, 2, 0)
	batch, _ := splitBatch(place, 2, 0, k)

	for _, s := range stubs {
		s.setMode("backlog")
	}
	for attempt := 0; attempt < 3; attempt++ {
		_, err := rc.Ingest(ctx, batch, true)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != client.CodeBacklog {
			t.Fatalf("attempt %d: got %v, want %s", attempt, err, client.CodeBacklog)
		}
	}
	if n := rt.NumTrajectories(); n != 0 {
		t.Fatalf("fully-failed batches extended the id space to %d", n)
	}
	st, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.Holes != 0 {
		t.Fatalf("fully-failed batches burned %d holes", st.Cluster.Holes)
	}

	// And once the backlog clears, the retried batch lands with gid 0.
	for _, s := range stubs {
		s.setMode("")
	}
	resp, err := rc.Ingest(ctx, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.FirstSeq != 0 || resp.Accepted != k {
		t.Fatalf("retry after shedding: %+v, want firstSeq 0 and %d accepted", resp, k)
	}
}

// TestRangeNewerThanMapDegrades pins the query/ingest race: a member
// answering with local ids past the router's map snapshot (an applied
// but not yet committed routed ingest) degrades the result to a lower
// bound instead of failing the whole range with a 500.
func TestRangeNewerThanMapDegrades(t *testing.T) {
	ctx := context.Background()
	rt, rc, stubs, place := stubCluster(t, 2, 8)
	counts := make([]int, 2)
	firstOwned := [2]int{-1, -1}
	for gid := 0; gid < 8; gid++ {
		o := place.Owner(gid)
		if firstOwned[o] < 0 {
			firstOwned[o] = gid
		}
		counts[o]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Skip("placement assigns all 8 seed gids to one node")
	}

	// Node 0 answers one mapped id and one past the map snapshot.
	stubs[0].mu.Lock()
	stubs[0].ranges = []int{0, counts[0]}
	stubs[0].mu.Unlock()

	res, err := rc.Range(ctx, client.RangeRequest{Rect: client.Rect{MaxX: 1, MaxY: 1}, T: 0, Alpha: 0.1})
	if err != nil {
		t.Fatalf("range racing an uncommitted ingest: %v (must degrade, not fail)", err)
	}
	if !res.Degraded {
		t.Fatal("result with an untranslatable local id is not marked degraded")
	}
	if len(res.Trajs) != 1 || res.Trajs[0] != firstOwned[0] {
		t.Fatalf("trajs %v, want exactly [%d]", res.Trajs, firstOwned[0])
	}

	// A negative id is never valid and still fails loudly.
	stubs[0].mu.Lock()
	stubs[0].ranges = []int{-1}
	stubs[0].mu.Unlock()
	_, err = rc.Range(ctx, client.RangeRequest{Rect: client.Rect{MaxX: 1, MaxY: 1}, T: 0, Alpha: 0.1})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != client.CodeInternal {
		t.Fatalf("negative local id: got %v, want %s", err, client.CodeInternal)
	}
	_ = rt
}
