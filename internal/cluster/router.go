package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"utcq/internal/par"
	"utcq/pkg/client"
)

// Member names one cluster node and where to reach it.
type Member struct {
	Name string
	URL  string
}

// RouterOptions configure a Router.  The zero value selects defaults.
type RouterOptions struct {
	// Partitions and VNodes parameterize the placement; they must match
	// whatever the members' datasets were filtered with
	// (utcqd -cluster-partitions).
	Partitions int
	VNodes     int
	// Parallelism bounds the scatter-gather workers (<1: one per CPU).
	Parallelism int
	// MaxBatch bounds /v1/batch like the single-node server (default 256).
	MaxBatch int
	// QuarantineBackoff is the base fail-fast window after a member
	// stops answering; it doubles per consecutive failure up to 60x
	// (default 1s), mirroring the store's shard quarantine.
	QuarantineBackoff time.Duration
	// RefreshEvery is the background member-stats refresh cadence
	// (default 2s); refreshed bounds drive Range fan-out pruning and
	// quarantine healing.
	RefreshEvery time.Duration
	// HTTPClient overrides the transport to members (tests).
	HTTPClient *http.Client
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Partitions <= 0 {
		o.Partitions = DefaultPartitions
	}
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 256
	}
	if o.QuarantineBackoff <= 0 {
		o.QuarantineBackoff = time.Second
	}
	if o.RefreshEvery <= 0 {
		o.RefreshEvery = 2 * time.Second
	}
	return o
}

// member is one node's runtime state inside the router.
type member struct {
	name string
	url  string
	ord  int // ordinal in Router.members / perNode
	c    *client.Client

	// Quarantine latch, mirroring the store's per-shard quarantine:
	// consecutive transport failures back off exponentially (base
	// RouterOptions.QuarantineBackoff, cap 60x); any success heals.
	fails   atomic.Uint32
	retryAt atomic.Int64 // unix nanos; quarantined while in the future

	// Cached stats, refreshed by Sync/RefreshStats/the background
	// refresher.  dirty marks the cache stale after a routed ingest so
	// bounds pruning never trusts pre-ingest geometry.
	mu      sync.Mutex
	gen     uint64
	trajs   int
	pending uint64
	bounds  client.Rect
	dirty   bool
	statErr string

	// desync is the ingest-desync latch (reason; "" = in sync).  It arms
	// when the router can no longer prove the member's trajectory
	// numbering matches its id maps: an ingest call failed at the
	// transport after the slice may have been durably applied, a flush
	// failed after acknowledgement (fold outcome unknown), or a count
	// verification caught records the router never mapped.  A desynced
	// member keeps serving already-mapped ids (numbering is append-only,
	// so existing translations stay correct) but receives no further
	// routed ingest — mapping past an unknown offset would silently
	// answer point queries with a different trajectory's data.  The latch
	// clears when a reconcile proves the member's count equals exactly
	// the ids the router has mapped (the ambiguous slice never applied),
	// or when a full Sync rebuilds the maps.
	desync string
}

func (m *member) quarantined() bool {
	return time.Now().UnixNano() < m.retryAt.Load()
}

func (m *member) quarantine(base time.Duration) {
	n := m.fails.Add(1)
	d := base
	for i := uint32(1); i < n && d < 60*base; i++ {
		d *= 2
	}
	d = min(d, 60*base)
	m.retryAt.Store(time.Now().Add(d).UnixNano())
}

func (m *member) heal() {
	m.fails.Store(0)
	m.retryAt.Store(0)
}

// markDesynced arms the ingest-desync latch (first reason wins: it
// names the original ambiguity, later failures are its consequences).
func (m *member) markDesynced(reason string) {
	m.mu.Lock()
	if m.desync == "" {
		m.desync = reason
	}
	m.mu.Unlock()
}

// desynced returns the desync reason, or "" while the member's
// numbering is proven consistent with the router's maps.
func (m *member) desynced() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.desync
}

// Router owns the cluster's global trajectory id space and serves the
// single-node HTTP API over N members.  Where/When route point queries
// to the owner; Range scatter-gathers with per-member bounds pruning
// and a deterministic (sorted) merge; Ingest splits a batch by
// placement and forwards each slice to its owner.  All routing state is
// soft: Sync rebuilds it from member stats.
type Router struct {
	place   *Placement
	members []*member
	opts    RouterOptions
	mux     *http.ServeMux
	hs      *http.Server
	started time.Time

	// mu guards the id maps.  node[gid] is the owning member ordinal
	// (-1: a hole burned by a partially failed routed ingest),
	// local[gid] the member-local id, perNode[m][local] the gid — the
	// inverse, used to translate Range results back to global ids.
	mu      sync.RWMutex
	node    []int32
	local   []int32
	perNode [][]int32

	// ingestMu serializes routed ingest end to end: gid assignment must
	// match the order sub-batches land on members, and members number
	// records in arrival order.
	ingestMu sync.Mutex

	requests atomic.Int64
	failures atomic.Int64
	degraded atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter builds a router over the members.  Call Sync before
// serving; Start launches the background stats refresher.
func NewRouter(members []Member, opts RouterOptions) *Router {
	opts = opts.withDefaults()
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	rt := &Router{
		place:   NewPlacement(names, opts.Partitions, opts.VNodes),
		opts:    opts,
		mux:     http.NewServeMux(),
		started: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i, m := range members {
		rt.members = append(rt.members, &member{
			name: m.Name,
			url:  m.URL,
			ord:  i,
			// Fail fast per call: the router's quarantine — not deep
			// per-request retry — is the degradation mechanism.
			c: client.New(m.URL, client.Options{HTTPClient: opts.HTTPClient, RetryAttempts: 2}),
		})
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/v1/stats", http.StatusMovedPermanently)
	})
	rt.mux.HandleFunc("POST /v1/where", rt.handleWhere)
	rt.mux.HandleFunc("POST /v1/when", rt.handleWhen)
	rt.mux.HandleFunc("POST /v1/range", rt.handleRange)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("POST /v1/ingest", rt.handleIngest)
	rt.mux.HandleFunc("POST /v1/compact", rt.handleCompact)
	rt.mux.HandleFunc("GET /v1/watch/range", rt.handleWatch)
	rt.hs = &http.Server{Handler: rt.mux, ReadTimeout: 10 * time.Second, WriteTimeout: 30 * time.Second}
	return rt
}

// Handler returns the route table (tests, embedding).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Serve accepts connections on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	err := rt.hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (rt *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Shutdown stops the listener, drains in-flight requests and stops the
// background refresher.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.Close()
	return rt.hs.Shutdown(ctx)
}

// Start launches the background stats refresher (quarantine healing and
// bounds pruning freshness).  Close stops it.
func (rt *Router) Start() {
	go func() {
		defer close(rt.done)
		t := time.NewTicker(rt.opts.RefreshEvery)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), rt.opts.RefreshEvery)
				rt.RefreshStats(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the background refresher (idempotent; safe without Start
// — Shutdown calls it unconditionally).
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
}

// refreshMember re-fetches one member's stats, healing its quarantine
// on success and arming it on transport failure.
func (rt *Router) refreshMember(ctx context.Context, m *member) error {
	st, err := m.c.Stats(ctx)
	if err != nil {
		m.mu.Lock()
		m.statErr = err.Error()
		m.mu.Unlock()
		var ae *client.APIError
		if !errors.As(err, &ae) {
			m.quarantine(rt.opts.QuarantineBackoff)
		}
		return err
	}
	m.mu.Lock()
	m.gen = st.Generation
	m.trajs = st.Trajectories
	m.bounds = st.DataBounds
	if st.Ingest != nil {
		m.pending = st.Ingest.Pending
	} else {
		m.pending = 0
	}
	m.dirty = false
	m.statErr = ""
	m.mu.Unlock()
	m.heal()
	rt.reconcile(m, st)
	return nil
}

// reconcile clears a member's ingest-desync latch when fresh stats
// prove its numbering still matches the router's maps: nothing pending
// (every acknowledged record has folded, so the count is final) and a
// trajectory count equal to exactly the ids the router has mapped —
// i.e. the ambiguous slice never applied.  A count that stays ahead
// means the member holds records the router cannot map; the latch
// stays armed until an operator rebuilds the maps (restart + Sync).
// Serialized against routed ingest via ingestMu so a slice applied but
// not yet committed is never mistaken for proof either way.
func (rt *Router) reconcile(m *member, st client.StatsResponse) {
	if m.desynced() == "" {
		return
	}
	if st.Ingest != nil && st.Ingest.Pending > 0 {
		return
	}
	if !rt.ingestMu.TryLock() {
		return // an ingest is in flight; reconcile on the next refresh
	}
	defer rt.ingestMu.Unlock()
	rt.mu.RLock()
	mapped := 0
	if m.ord < len(rt.perNode) {
		mapped = len(rt.perNode[m.ord])
	}
	rt.mu.RUnlock()
	if st.Trajectories == mapped {
		m.mu.Lock()
		m.desync = ""
		m.mu.Unlock()
	}
}

// RefreshStats refreshes every member's cached stats in parallel
// (members already quarantined are probed too — a success heals them).
func (rt *Router) RefreshStats(ctx context.Context) {
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(rt.members), func(i int) error {
		_ = rt.refreshMember(ctx, rt.members[i])
		return nil
	})
}

// Sync builds the global id maps from the members' current contents.
// Every member must be reachable and idle (no pending ingest): the maps
// assume gids were placed by this router's Placement, so the per-member
// trajectory counts derived from walking gid 0..total-1 must equal what
// the members report — a mismatch means the members were loaded with a
// different placement (or not filtered at all) and routing would return
// wrong-trajectory answers.
func (rt *Router) Sync(ctx context.Context) error {
	var firstErr error
	var errMu sync.Mutex
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(rt.members), func(i int) error {
		if err := rt.refreshMember(ctx, rt.members[i]); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("member %s (%s): %w", rt.members[i].name, rt.members[i].url, err)
			}
			errMu.Unlock()
		}
		return nil
	})
	if firstErr != nil {
		return firstErr
	}
	total := 0
	for _, m := range rt.members {
		m.mu.Lock()
		trajs, pending := m.trajs, m.pending
		m.mu.Unlock()
		if pending > 0 {
			return fmt.Errorf("member %s has %d pending ingest records; flush before sync", m.name, pending)
		}
		total += trajs
	}
	node := make([]int32, total)
	local := make([]int32, total)
	perNode := make([][]int32, len(rt.members))
	for gid := 0; gid < total; gid++ {
		owner := rt.place.Owner(gid)
		node[gid] = int32(owner)
		local[gid] = int32(len(perNode[owner]))
		perNode[owner] = append(perNode[owner], int32(gid))
	}
	for i, m := range rt.members {
		m.mu.Lock()
		trajs := m.trajs
		m.mu.Unlock()
		if got, want := trajs, len(perNode[i]); got != want {
			return fmt.Errorf("member %s holds %d trajectories but the placement assigns it %d of %d: members must be loaded with the same placement (utcqd -cluster-node/-cluster-nodes/-cluster-partitions)",
				m.name, got, want, total)
		}
	}
	rt.mu.Lock()
	rt.node, rt.local, rt.perNode = node, local, perNode
	rt.mu.Unlock()
	// The maps were just proven against every member's actual count, so
	// any ingest-desync latch is stale by construction.
	for _, m := range rt.members {
		m.mu.Lock()
		m.desync = ""
		m.mu.Unlock()
	}
	return nil
}

// NumTrajectories returns the global id space size (holes included).
func (rt *Router) NumTrajectories() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.node)
}

// locate resolves a gid to (member, member-local id).
func (rt *Router) locate(gid int) (*member, int, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if gid < 0 || gid >= len(rt.node) {
		return nil, 0, fmt.Errorf("unknown trajectory %d (have %d)", gid, len(rt.node))
	}
	if rt.node[gid] < 0 {
		return nil, 0, fmt.Errorf("trajectory %d was lost to a failed ingest (hole)", gid)
	}
	return rt.members[rt.node[gid]], int(rt.local[gid]), nil
}

// routeErr is an error the router answers with verbatim: either a
// member's own classified failure forwarded through, or the router's
// own condition (node quarantined, unknown trajectory, bad request).
type routeErr struct {
	status     int
	code       string
	msg        string
	retryAfter int
}

func (e *routeErr) Error() string { return e.msg }

func errUnknownGID(gid int, detail string) *routeErr {
	return &routeErr{status: http.StatusBadRequest, code: client.CodeUnknownTrajectory,
		msg: fmt.Sprintf("unknown trajectory: %s", detail)}
}

func errNodeDown(m *member, err error) *routeErr {
	return &routeErr{status: http.StatusServiceUnavailable, code: client.CodeNodeQuarantined,
		msg: fmt.Sprintf("node %s is quarantined: %v", m.name, err), retryAfter: 2}
}

func errNodeDesynced(m *member, reason string) *routeErr {
	return &routeErr{status: http.StatusServiceUnavailable, code: client.CodeNodeDesynced,
		msg:        fmt.Sprintf("node %s is desynced (%s); ingest refused until a reconcile — do not blindly resubmit, records may already be durable there", m.name, reason),
		retryAfter: 5}
}

// memberErr classifies a failed member call: a classified APIError is
// forwarded verbatim (the member's 400/404/410/500 is the truth about
// that data); a transport-level failure quarantines the member and
// answers node_quarantined so clients back off while the router fails
// fast.
func (rt *Router) memberErr(m *member, err error) *routeErr {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return &routeErr{status: ae.Status, code: ae.Code, msg: ae.Message,
			retryAfter: int(ae.RetryAfter / time.Second)}
	}
	m.quarantine(rt.opts.QuarantineBackoff)
	return errNodeDown(m, err)
}

// decode mirrors the single-node server: bounded body, unknown fields
// rejected.
func (rt *Router) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	rt.requests.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		rt.fail(w, &routeErr{status: http.StatusBadRequest, code: client.CodeBadRequest,
			msg: fmt.Sprintf("decode request: %v", err)})
		return false
	}
	return true
}

// noGenPin rejects ?gen= on routed queries: generations are per-member
// state, so a pin is only meaningful against one node.
func (rt *Router) noGenPin(w http.ResponseWriter, r *http.Request) bool {
	if r.URL.Query().Get("gen") == "" {
		return true
	}
	rt.fail(w, &routeErr{status: http.StatusBadRequest, code: client.CodeBadRequest,
		msg: "generation pins are per-node state; pin against a member node directly"})
	return false
}

func (rt *Router) reply(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		rt.failures.Add(1)
	}
}

func (rt *Router) fail(w http.ResponseWriter, re *routeErr) {
	rt.failures.Add(1)
	w.Header().Set("Content-Type", "application/json")
	if re.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(re.retryAfter))
	}
	w.WriteHeader(re.status)
	env := client.ErrorResponse{Code: re.code, Error: re.msg, RetryAfter: re.retryAfter}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		rt.failures.Add(1)
	}
}

// whereGlobal evaluates one where-query by ownership.
func (rt *Router) whereGlobal(ctx context.Context, req client.WhereRequest) ([]client.WhereResult, *routeErr) {
	m, local, err := rt.locate(req.Traj)
	if err != nil {
		return nil, errUnknownGID(req.Traj, err.Error())
	}
	if m.quarantined() {
		return nil, errNodeDown(m, errors.New("recent failures, backing off"))
	}
	sub := req
	sub.Traj, sub.Gen = local, 0
	rs, cerr := m.c.Where(ctx, sub)
	if cerr != nil {
		return nil, rt.memberErr(m, cerr)
	}
	return rs, nil
}

// whenGlobal evaluates one when-query by ownership.
func (rt *Router) whenGlobal(ctx context.Context, req client.WhenRequest) ([]client.WhenResult, *routeErr) {
	m, local, err := rt.locate(req.Traj)
	if err != nil {
		return nil, errUnknownGID(req.Traj, err.Error())
	}
	if m.quarantined() {
		return nil, errNodeDown(m, errors.New("recent failures, backing off"))
	}
	sub := req
	sub.Traj, sub.Gen = local, 0
	rs, cerr := m.c.When(ctx, sub)
	if cerr != nil {
		return nil, rt.memberErr(m, cerr)
	}
	return rs, nil
}

// rangeGlobal scatter-gathers a range query: members that cannot hold a
// matching trajectory (empty, or fresh bounds disjoint from the query
// rectangle — the same geometry pruning the store applies per shard)
// are never contacted; quarantined or failing members are skipped and
// counted, degrading the result to a lower bound instead of failing it.
// The merge translates member-local ids to gids and sorts, so the
// answer is deterministic and ≡ a single-node store over the same data.
func (rt *Router) rangeGlobal(ctx context.Context, req client.RangeRequest) (client.RangeResult, *routeErr) {
	req.Gen = 0
	rt.mu.RLock()
	perNode := rt.perNode
	rt.mu.RUnlock()

	type nodeOut struct {
		res     client.RangeResult
		skipped bool
		err     error
	}
	outs := make([]nodeOut, len(rt.members))
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(rt.members), func(i int) error {
		m := rt.members[i]
		if len(perNode) > i && len(perNode[i]) == 0 {
			return nil // owns nothing; nothing to ask
		}
		m.mu.Lock()
		bounds, dirty := m.bounds, m.dirty
		m.mu.Unlock()
		// Geometry pruning mirrors store.rangeView: only with alpha > 0
		// (a zero threshold admits zero-probability presence), only
		// against fresh bounds (dirty means un-refreshed post-ingest
		// geometry), and never against the empty inverted marker.
		if req.Alpha > 0 && !dirty && bounds.MinX <= bounds.MaxX && !req.Rect.Intersects(bounds) {
			return nil
		}
		if m.quarantined() {
			outs[i] = nodeOut{skipped: true, err: errors.New("quarantined")}
			return nil
		}
		res, err := m.c.Range(ctx, req)
		if err != nil {
			var ae *client.APIError
			if !errors.As(err, &ae) {
				m.quarantine(rt.opts.QuarantineBackoff)
			}
			outs[i] = nodeOut{skipped: true, err: err}
			return nil
		}
		outs[i] = nodeOut{res: res}
		return nil
	})

	out := client.RangeResult{Trajs: []int{}}
	for i, o := range outs {
		if o.skipped {
			out.NodesSkipped++
			continue
		}
		out.ShardsSkipped += o.res.ShardsSkipped
		if o.res.Degraded {
			out.Degraded = true
		}
		for _, localID := range o.res.Trajs {
			if localID < 0 {
				// Negative ids cannot come from a store; surface loudly
				// rather than mistranslate.
				return client.RangeResult{}, &routeErr{status: http.StatusInternalServerError,
					code: client.CodeInternal,
					msg:  fmt.Sprintf("member %s returned invalid local id %d", rt.members[i].name, localID)}
			}
			if len(perNode) <= i || localID >= len(perNode[i]) {
				// The member holds records newer than this query's map
				// snapshot: a routed ingest it has applied but the router
				// has not committed yet (queries deliberately do not take
				// ingestMu), or an orphan slice on a desynced member.
				// Either way the id has no global translation here —
				// skip it and degrade the answer to a lower bound, the
				// same contract as a skipped node.
				out.Degraded = true
				continue
			}
			out.Trajs = append(out.Trajs, int(perNode[i][localID]))
		}
	}
	if out.NodesSkipped > 0 || out.ShardsSkipped > 0 {
		out.Degraded = true
	}
	if out.Degraded {
		rt.degraded.Add(1)
	}
	sort.Ints(out.Trajs)
	return out, nil
}

func (rt *Router) handleWhere(w http.ResponseWriter, r *http.Request) {
	var req client.WhereRequest
	if !rt.decode(w, r, &req) || !rt.noGenPin(w, r) {
		return
	}
	rs, rerr := rt.whereGlobal(r.Context(), req)
	if rerr != nil {
		rt.fail(w, rerr)
		return
	}
	rt.reply(w, map[string]any{"results": rs})
}

func (rt *Router) handleWhen(w http.ResponseWriter, r *http.Request) {
	var req client.WhenRequest
	if !rt.decode(w, r, &req) || !rt.noGenPin(w, r) {
		return
	}
	rs, rerr := rt.whenGlobal(r.Context(), req)
	if rerr != nil {
		rt.fail(w, rerr)
		return
	}
	rt.reply(w, map[string]any{"results": rs})
}

func (rt *Router) handleRange(w http.ResponseWriter, r *http.Request) {
	var req client.RangeRequest
	if !rt.decode(w, r, &req) || !rt.noGenPin(w, r) {
		return
	}
	res, rerr := rt.rangeGlobal(r.Context(), req)
	if rerr != nil {
		rt.fail(w, rerr)
		return
	}
	rt.reply(w, res)
}

// handleBatch decomposes a batch onto the scatter workers; per-query
// failures stay in-band with their codes, exactly like the single-node
// server.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req client.BatchRequest
	if !rt.decode(w, r, &req) || !rt.noGenPin(w, r) {
		return
	}
	if len(req.Queries) > rt.opts.MaxBatch {
		rt.fail(w, &routeErr{status: http.StatusRequestEntityTooLarge, code: client.CodeTooLarge,
			msg: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), rt.opts.MaxBatch)})
		return
	}
	results := make([]client.BatchResult, len(req.Queries))
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(req.Queries), func(i int) error {
		q := req.Queries[i]
		switch {
		case q.Kind == "where" && q.Where != nil:
			rs, rerr := rt.whereGlobal(r.Context(), *q.Where)
			if rerr != nil {
				results[i].Error, results[i].Code = rerr.msg, rerr.code
				return nil
			}
			results[i].Where = rs
		case q.Kind == "when" && q.When != nil:
			rs, rerr := rt.whenGlobal(r.Context(), *q.When)
			if rerr != nil {
				results[i].Error, results[i].Code = rerr.msg, rerr.code
				return nil
			}
			results[i].When = rs
		case q.Kind == "range" && q.Range != nil:
			res, rerr := rt.rangeGlobal(r.Context(), *q.Range)
			if rerr != nil {
				results[i].Error, results[i].Code = rerr.msg, rerr.code
				return nil
			}
			results[i].Trajs = res.Trajs
			results[i].Degraded = res.Degraded
		default:
			results[i].Error = fmt.Sprintf("query %d: kind %q without a matching body", i, q.Kind)
			results[i].Code = client.CodeBadRequest
		}
		return nil
	})
	rt.reply(w, map[string]any{"results": results})
}

// handleIngest splits the batch by placement over freshly assigned gids
// and forwards each slice to its owner.  The global assignment is
// provisional until the owner acknowledges: a slice whose owner fails
// burns its gids as holes (they answer unknown_trajectory until
// re-ingested) rather than shifting every later assignment — routed
// ingest is at-most-once per node, and the response's nodes section
// tells the client exactly which slices need resubmitting.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req client.IngestRequest
	if !rt.decode(w, r, &req) {
		return
	}
	if len(req.Trajectories) == 0 {
		rt.fail(w, &routeErr{status: http.StatusBadRequest, code: client.CodeBadRequest,
			msg: "invalid request: no trajectories"})
		return
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()

	rt.mu.RLock()
	base := len(rt.node)
	rt.mu.RUnlock()

	// Slice the batch by owner, preserving submission order per member
	// (members number records in arrival order, and ingestMu keeps
	// concurrent routed batches from interleaving).
	type slice struct {
		gids  []int
		trajs []client.RawTrajectory
	}
	slices := make([]slice, len(rt.members))
	owners := make([]int, len(req.Trajectories))
	for i, tr := range req.Trajectories {
		gid := base + i
		owner := rt.place.Owner(gid)
		owners[i] = owner
		slices[owner].gids = append(slices[owner].gids, gid)
		slices[owner].trajs = append(slices[owner].trajs, tr)
	}

	type nodeAck struct {
		resp client.IngestResponse
		err  error
	}
	acks := make([]nodeAck, len(rt.members))
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(rt.members), func(i int) error {
		if len(slices[i].trajs) == 0 {
			return nil
		}
		m := rt.members[i]
		if reason := m.desynced(); reason != "" {
			acks[i].err = errNodeDesynced(m, reason)
			return nil
		}
		if m.quarantined() {
			acks[i].err = errNodeDown(m, errors.New("recent failures, backing off"))
			return nil
		}
		// Routed ingest always flushes, whatever the client asked: the
		// fold outcome (which records the matcher dropped) is the only
		// way to keep the router's id maps exact, and it is only
		// reported on synchronous flushes.
		resp, err := m.c.Ingest(r.Context(), slices[i].trajs, true)
		if err != nil {
			var ae *client.APIError
			if !errors.As(err, &ae) {
				// A transport-level failure after the slice went out is
				// ambiguous: the member may have durably acknowledged and
				// applied every record even though we never saw the
				// response.  Assuming "not applied" and burning holes
				// would leave the member's numbering ahead of the maps
				// and silently mistranslate every later ingest to it, so
				// latch the member desynced until a count reconcile (the
				// background refresher) proves which way it went.
				m.quarantine(rt.opts.QuarantineBackoff)
				m.markDesynced(fmt.Sprintf(
					"ingest of %d records failed in transit (%v); the member may have applied the slice", len(slices[i].trajs), err))
			}
			acks[i].err = err
			return nil
		}
		acks[i].resp = resp
		return nil
	})

	// Classify each ack before touching the maps: a slice is committed
	// only when the member's flush succeeded AND its post-flush count
	// proves the numbering still lines up with the router's maps.
	rt.mu.RLock()
	mappedBefore := make([]int, len(rt.members))
	for i := range rt.members {
		if i < len(rt.perNode) {
			mappedBefore[i] = len(rt.perNode[i])
		}
	}
	rt.mu.RUnlock()

	okNode := make([]bool, len(rt.members))
	nodeErr := make([]*routeErr, len(rt.members))
	dropSet := make([]map[int]bool, len(rt.members))
	for i, m := range rt.members {
		if len(slices[i].trajs) == 0 {
			continue
		}
		if acks[i].err != nil {
			if re, ok := acks[i].err.(*routeErr); ok {
				nodeErr[i] = re
			} else {
				nodeErr[i] = rt.memberErr(m, acks[i].err)
			}
			continue
		}
		resp := acks[i].resp
		if resp.FlushError != "" {
			// Acked but not folded (202): the records are durable on the
			// member and WILL fold later, but which of them the matcher
			// drops is unknown — committing the mapping now would guess
			// the member's numbering.  Latch desynced; the reconcile can
			// only clear it if every record ends up dropped, otherwise an
			// operator re-sync rebuilds the maps.
			reason := fmt.Sprintf("flush failed after %d records were acknowledged (%s); fold outcome unknown", resp.Accepted, resp.FlushError)
			m.markDesynced(reason)
			nodeErr[i] = errNodeDesynced(m, reason)
			continue
		}
		if want := mappedBefore[i] + resp.Accepted - len(resp.Dropped); resp.Trajectories != want {
			// The member folded records the router never mapped (a lost
			// ack that nonetheless applied, or out-of-band ingest): every
			// local id past the map is unattributable, so refuse the
			// commit loudly instead of mistranslating.
			reason := fmt.Sprintf("post-flush count %d, expected %d: the member holds records the router never mapped", resp.Trajectories, want)
			m.markDesynced(reason)
			nodeErr[i] = errNodeDesynced(m, reason)
			continue
		}
		okNode[i] = true
		if len(resp.Dropped) > 0 {
			dropSet[i] = make(map[int]bool, len(resp.Dropped))
			for _, j := range resp.Dropped {
				dropSet[i][j] = true
			}
		}
	}

	anyOK := false
	var firstErr *routeErr
	for i := range rt.members {
		if len(slices[i].trajs) == 0 {
			continue
		}
		if okNode[i] {
			anyOK = true
		} else if firstErr == nil {
			firstErr = nodeErr[i]
		}
	}
	if !anyOK {
		// Nothing was accepted anywhere: leave the id space untouched so
		// a retried batch (e.g. after backlog shedding) does not burn a
		// fresh gid range as holes on every attempt.
		if firstErr == nil {
			firstErr = &routeErr{status: http.StatusInternalServerError, code: client.CodeInternal, msg: "no member accepted the batch"}
		}
		rt.fail(w, firstErr)
		return
	}

	// Commit the assignment: verified slices extend the maps; failed
	// slices — and individual records the member's matcher dropped at
	// fold — burn their gids as holes, so every later record keeps the
	// exact member-local id its store actually assigned.
	rt.mu.Lock()
	posIn := make([]int, len(rt.members))
	var droppedGlobal []int
	for i := range req.Trajectories {
		owner := owners[i]
		j := posIn[owner]
		posIn[owner]++
		switch {
		case okNode[owner] && !dropSet[owner][j]:
			rt.node = append(rt.node, int32(owner))
			rt.local = append(rt.local, int32(len(rt.perNode[owner])))
			rt.perNode[owner] = append(rt.perNode[owner], int32(base+i))
		case okNode[owner]: // matcher dropped it: sequence burned, no id
			droppedGlobal = append(droppedGlobal, i)
			rt.node = append(rt.node, -1)
			rt.local = append(rt.local, -1)
		default:
			rt.node = append(rt.node, -1)
			rt.local = append(rt.local, -1)
		}
	}
	total := len(rt.node)
	rt.mu.Unlock()

	out := client.IngestResponse{FirstSeq: uint64(base), Trajectories: total, Dropped: droppedGlobal}
	for i, m := range rt.members {
		if len(slices[i].trajs) == 0 {
			continue
		}
		n := client.NodeIngestResult{Name: m.name}
		if !okNode[i] {
			n.Error, n.Code = nodeErr[i].msg, nodeErr[i].code
		} else {
			n.Accepted = acks[i].resp.Accepted
			n.FirstSeq = acks[i].resp.FirstSeq
			out.Accepted += acks[i].resp.Accepted
			out.Pending += acks[i].resp.Pending
			out.Generation = max(out.Generation, acks[i].resp.Generation)
		}
		// Any member that might hold new records — committed, flush
		// pending, or ambiguous — has stale cached geometry; dirty
		// disables bounds pruning against it until the next refresh.
		if okNode[i] || m.desynced() != "" {
			m.mu.Lock()
			m.dirty = true
			m.mu.Unlock()
		}
		out.Nodes = append(out.Nodes, n)
	}
	rt.reply(w, out)
}

// handleCompact fans compaction out to every member.
func (rt *Router) handleCompact(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	resps := make([]client.CompactResponse, len(rt.members))
	errs := make([]error, len(rt.members))
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(rt.members), func(i int) error {
		resps[i], errs[i] = rt.members[i].c.Compact(r.Context())
		return nil
	})
	out := client.CompactResponse{}
	for i, m := range rt.members {
		if errs[i] != nil {
			rt.fail(w, rt.memberErr(m, errs[i]))
			return
		}
		out.Folded += resps[i].Folded
		out.Generation = max(out.Generation, resps[i].Generation)
	}
	rt.reply(w, out)
}

// handleWatch: subscriptions need per-member cursor state the router
// does not hold; clients subscribe to members directly.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	rt.fail(w, &routeErr{status: http.StatusNotImplemented, code: client.CodeUnsupported,
		msg: "watch subscriptions are not routed; subscribe to a member node directly"})
}

// handleHealthz reports the cluster's aggregate liveness: always 200
// (the router itself is alive), "degraded" when any member is
// quarantined or unreachable, with a per-node breakdown.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	resp := client.Health{Status: "ok"}
	for _, m := range rt.members {
		nh := client.NodeHealth{Name: m.name, Status: "ok"}
		m.mu.Lock()
		statErr, desync := m.statErr, m.desync
		m.mu.Unlock()
		if m.quarantined() {
			nh.Status, nh.Error = "quarantined", statErr
			resp.Status = "degraded"
		} else if statErr != "" {
			nh.Status, nh.Error = "unreachable", statErr
			resp.Status = "degraded"
		} else if desync != "" {
			nh.Status, nh.Error = "desynced", desync
			resp.Status = "degraded"
		}
		resp.Nodes = append(resp.Nodes, nh)
	}
	rt.reply(w, resp)
}

// handleStats aggregates member stats (fetched live, in parallel) into
// the single-node shape plus a cluster section, so loadgen and
// dashboards work unchanged against a router.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	stats := make([]client.StatsResponse, len(rt.members))
	errs := make([]error, len(rt.members))
	_ = par.Do(par.Workers(rt.opts.Parallelism), len(rt.members), func(i int) error {
		stats[i], errs[i] = rt.members[i].c.Stats(r.Context())
		if errs[i] == nil {
			m := rt.members[i]
			m.mu.Lock()
			m.gen = stats[i].Generation
			m.trajs = stats[i].Trajectories
			m.bounds = stats[i].DataBounds
			m.dirty = false
			m.statErr = ""
			m.mu.Unlock()
			m.heal()
		}
		return nil
	})

	rt.mu.RLock()
	total := len(rt.node)
	holes := 0
	for _, n := range rt.node {
		if n < 0 {
			holes++
		}
	}
	rt.mu.RUnlock()

	out := client.StatsResponse{
		Assignment:      fmt.Sprintf("cluster(%d nodes x %d partitions)", len(rt.members), rt.place.Partitions()),
		Trajectories:    total,
		Bounds:          client.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0},
		DataBounds:      client.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0},
		Cluster:         &client.ClusterStats{Partitions: rt.place.Partitions(), Holes: holes},
		Requests:        rt.requests.Load(),
		Failures:        rt.failures.Load(),
		DegradedQueries: rt.degraded.Load(),
		UptimeSeconds:   time.Since(rt.started).Seconds(),
	}
	firstSpan := true
	var ingestAgg client.IngestStats
	anyIngest := false
	for i, m := range rt.members {
		ns := client.NodeStats{Name: m.name, URL: m.url, Desynced: m.desynced() != ""}
		if errs[i] != nil {
			ns.Error = errs[i].Error()
			ns.Quarantined = m.quarantined()
			out.Cluster.Nodes = append(out.Cluster.Nodes, ns)
			continue
		}
		st := stats[i]
		ns.Trajectories = st.Trajectories
		ns.Generation = st.Generation
		if st.Ingest != nil {
			ns.Pending = st.Ingest.Pending
		}
		out.Cluster.Nodes = append(out.Cluster.Nodes, ns)

		out.Shards += st.Shards
		out.BaseShards += st.BaseShards
		out.DeltaShards += st.DeltaShards
		out.Tombstones += st.Tombstones
		out.OpenShards += st.OpenShards
		out.Generation = max(out.Generation, st.Generation)
		out.Compactions += st.Compactions
		if firstSpan || st.TimeMin < out.TimeMin {
			out.TimeMin = st.TimeMin
		}
		if firstSpan || st.TimeMax > out.TimeMax {
			out.TimeMax = st.TimeMax
		}
		firstSpan = false
		out.Bounds = unionRect(out.Bounds, st.Bounds)
		out.DataBounds = unionRect(out.DataBounds, st.DataBounds)

		out.Engine.PathsDecoded += st.Engine.PathsDecoded
		out.Engine.InstancesSkipped += st.Engine.InstancesSkipped
		out.Engine.TrajsPruned += st.Engine.TrajsPruned
		out.Engine.TrajsAccepted += st.Engine.TrajsAccepted
		out.Engine.CacheHits += st.Engine.CacheHits
		out.Engine.CacheMisses += st.Engine.CacheMisses
		out.Engine.CachedViews += st.Engine.CachedViews
		out.Engine.CachedPaths += st.Engine.CachedPaths
		out.Engine.CacheBudget += st.Engine.CacheBudget

		out.SidecarLoads += st.SidecarLoads
		out.SidecarRebuilds += st.SidecarRebuilds
		out.Succinct.RegionBlocksDecoded += st.Succinct.RegionBlocksDecoded
		out.Succinct.RegionPrunedNoTouch += st.Succinct.RegionPrunedNoTouch
		out.Succinct.TemporalSectionsForced += st.Succinct.TemporalSectionsForced
		out.Succinct.SuccinctBytes += st.Succinct.SuccinctBytes
		out.MappedBytes += st.MappedBytes
		out.RSSBytes += st.RSSBytes
		out.QuarantinedShards += st.QuarantinedShards
		out.ShardOpenFailures += st.ShardOpenFailures
		out.Rejected += st.Rejected
		out.Timeouts += st.Timeouts
		out.Watchers += st.Watchers
		out.WatchNotifies += st.WatchNotifies

		if st.Ingest != nil {
			anyIngest = true
			ingestAgg.Acked += st.Ingest.Acked
			ingestAgg.Applied += st.Ingest.Applied
			ingestAgg.Pending += st.Ingest.Pending
			ingestAgg.PendingLimit += st.Ingest.PendingLimit
			ingestAgg.Matched += st.Ingest.Matched
			ingestAgg.Dropped += st.Ingest.Dropped
			ingestAgg.Batches += st.Ingest.Batches
			ingestAgg.Compactions += st.Ingest.Compactions
			ingestAgg.WALBytes += st.Ingest.WALBytes
			ingestAgg.ReadOnly = ingestAgg.ReadOnly || st.Ingest.ReadOnly
			ingestAgg.SimplifyEps = st.Ingest.SimplifyEps
			ingestAgg.PointsIn += st.Ingest.PointsIn
			ingestAgg.PointsKept += st.Ingest.PointsKept
		}
	}
	if anyIngest {
		out.Ingest = &ingestAgg
	}
	rt.reply(w, out)
}

// unionRect merges two rectangles, treating the inverted marker as
// empty.
func unionRect(a, b client.Rect) client.Rect {
	if a.MinX > a.MaxX {
		return b
	}
	if b.MinX > b.MaxX {
		return a
	}
	return client.Rect{
		MinX: min(a.MinX, b.MinX), MinY: min(a.MinY, b.MinY),
		MaxX: max(a.MaxX, b.MaxX), MaxY: max(a.MaxY, b.MaxY),
	}
}
