package cluster

// Cluster chaos: kill the follower and the leader mid-ingest (power-cut
// filesystems, abandoned processes) and assert the replication contract —
// no fsync-acked trajectory is ever lost, and a caught-up follower
// answers every query identically to the leader.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"utcq/internal/faultfs"
	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/mapmatch"
	"utcq/internal/roadnet"
	"utcq/internal/server"
	"utcq/internal/store"
	"utcq/internal/traj"
	"utcq/pkg/client"
)

// swapHandler gives a stable URL whose behavior the test can change:
// the follower keeps one leader address across leader "restarts".
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}
func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }

var downHandler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, `{"code":"internal","error":"leader is down"}`, http.StatusServiceUnavailable)
})

// replFixture is one leader (MemFS A) + one follower (MemFS B) sharing a
// deterministic road network, with every raw pre-verified matchable so
// acked == queryable.
type replFixture struct {
	t    *testing.T
	p    gen.Profile
	g    *roadnet.Graph
	eix  *roadnet.EdgeIndex
	base []*traj.Uncertain
	live []traj.RawTrajectory

	fsA, fsB *faultfs.MemFS
	leader   *swapHandler
	leaderTS *httptest.Server
	st       *store.Store
	ing      *ingest.Ingester
	fol      *Follower
	acked    int // live records fsync-acked by the leader WAL
}

func newReplFixture(t *testing.T) *replFixture {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 16, 16
	g, eix, raws, err := gen.Raws(p, 30, 29)
	if err != nil {
		t.Fatal(err)
	}
	matcher := mapmatch.New(g, eix, p.Match)
	f := &replFixture{t: t, p: p, g: g, eix: eix, fsA: faultfs.NewMemFS(), fsB: faultfs.NewMemFS()}
	for _, raw := range raws {
		u, err := matcher.Match(raw)
		if err != nil {
			continue
		}
		if len(f.base) < 6 {
			f.base = append(f.base, u)
		} else {
			f.live = append(f.live, raw)
		}
	}
	if len(f.base) < 6 || len(f.live) < 12 {
		t.Fatalf("need 6 base + 12 live matchable raws, have %d + %d", len(f.base), len(f.live))
	}

	sopts := store.DefaultOptions(p.Ts)
	sopts.NumShards = 2
	sopts.FS = f.fsA
	sopts.Parallelism = 1
	st, err := store.Build(g, f.base, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("leader"); err != nil {
		t.Fatal(err)
	}
	f.st = st
	f.openLeaderIngester()

	f.leader = &swapHandler{}
	f.leader.set(server.New(f.st, server.Options{Ingester: f.ing}).Handler())
	f.leaderTS = httptest.NewServer(f.leader)
	t.Cleanup(f.leaderTS.Close)

	f.startFollower()
	return f
}

// openLeaderIngester (re)opens the leader WAL.  The background drain is
// never started: flushes are explicit, so a "kill" (PowerCut + abandon)
// leaves no zombie writer behind.
func (f *replFixture) openLeaderIngester() {
	f.t.Helper()
	ing, err := ingest.New(f.st, f.eix, "leader/ingest.wal", ingest.Options{
		FS: f.fsA, Match: f.p.Match, BatchSize: 4, Parallelism: 1, CompactEvery: -1,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.ing = ing
}

func (f *replFixture) startFollower() {
	f.t.Helper()
	fol, err := StartFollower(f.leaderTS.URL, FollowerOptions{
		Dir:       "follower",
		Graph:     f.g,
		EdgeIndex: f.eix,
		Ingest:    ingest.Options{Match: f.p.Match, BatchSize: 4, Parallelism: 1, CompactEvery: -1},
		Open:      store.OpenOptions{FS: f.fsB, Eager: true, Parallelism: 1},
		PollWait:  time.Second,
		PollMax:   64,
		RetryBase: 20 * time.Millisecond,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.fol = fol
	f.t.Cleanup(func() { _ = fol.Close() })
}

// submit acks live[from:to) on the leader (fsync per group commit) and
// optionally folds them.
func (f *replFixture) submit(from, to int, flush bool) {
	f.t.Helper()
	if _, err := f.ing.SubmitBatch(f.live[from:to]); err != nil {
		f.t.Fatalf("submit live[%d:%d): %v", from, to, err)
	}
	f.acked = to
	if flush {
		if _, err := f.ing.Flush(); err != nil {
			f.t.Fatal(err)
		}
	}
}

// waitCaughtUp blocks until the follower has replayed every acked record
// into its store.
func (f *replFixture) waitCaughtUp() {
	f.t.Helper()
	want := uint64(f.acked)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ing := f.fol.Ingester()
		if ing != nil {
			s := ing.Stats()
			if s.Applied >= want && s.Pending == 0 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.t.Fatalf("follower never caught up to %d acked records (last error: %v)", f.acked, f.fol.Err())
}

// assertReplicaIdentical is the replication acceptance criterion: the
// follower's store answers every Where and Range exactly like the
// leader's.  Served through real servers so the read path is the one
// clients use (the follower's in Follower mode).
func (f *replFixture) assertReplicaIdentical(phase string) {
	f.t.Helper()
	lts := httptest.NewServer(server.New(f.st, server.Options{Ingester: f.ing}).Handler())
	defer lts.Close()
	fts := httptest.NewServer(server.New(f.fol.Store(), server.Options{Follower: true}).Handler())
	defer fts.Close()
	lc, fc := client.New(lts.URL, client.Options{}), client.New(fts.URL, client.Options{})

	ctx := context.Background()
	ls, err := lc.Stats(ctx)
	if err != nil {
		f.t.Fatal(err)
	}
	fs, err := fc.Stats(ctx)
	if err != nil {
		f.t.Fatal(err)
	}
	if fs.Trajectories != ls.Trajectories {
		f.t.Fatalf("%s: follower holds %d trajectories, leader %d", phase, fs.Trajectories, ls.Trajectories)
	}
	if want := len(f.base) + f.acked; ls.Trajectories != want {
		f.t.Fatalf("%s: leader holds %d trajectories, want %d (%d base + %d acked): an acked record was lost",
			phase, ls.Trajectories, want, len(f.base), f.acked)
	}
	span := max(ls.TimeMax-ls.TimeMin, 1)
	for gid := 0; gid < ls.Trajectories; gid++ {
		tq := ls.TimeMin + span/2
		lw, err := lc.Where(ctx, client.WhereRequest{Traj: gid, T: tq, Alpha: 0.1})
		if err != nil {
			f.t.Fatalf("%s: leader where(%d): %v", phase, gid, err)
		}
		fw, err := fc.Where(ctx, client.WhereRequest{Traj: gid, T: tq, Alpha: 0.1})
		if err != nil {
			f.t.Fatalf("%s: follower where(%d): %v", phase, gid, err)
		}
		if !reflect.DeepEqual(fw, lw) {
			f.t.Fatalf("%s: where(%d) diverged:\n follower %+v\n leader   %+v", phase, gid, fw, lw)
		}
	}
	for k := int64(0); k < 4; k++ {
		tq := ls.TimeMin + k*span/4
		lr, err := lc.Range(ctx, client.RangeRequest{Rect: ls.Bounds, T: tq, Alpha: 0.1})
		if err != nil {
			f.t.Fatal(err)
		}
		fr, err := fc.Range(ctx, client.RangeRequest{Rect: ls.Bounds, T: tq, Alpha: 0.1})
		if err != nil {
			f.t.Fatal(err)
		}
		if !eqInts(fr.Trajs, lr.Trajs) {
			f.t.Fatalf("%s: range(t=%d) diverged:\n follower %v\n leader   %v", phase, tq, fr.Trajs, lr.Trajs)
		}
	}
}

// TestReplicationChaos drives the full kill matrix on one cluster:
// steady-state replication, a follower power-cut, a leader power-cut
// with acked-but-unapplied records in its WAL, and a WAL checkpoint
// that forces the restarted follower through the 410 re-snapshot path.
func TestReplicationChaos(t *testing.T) {
	f := newReplFixture(t)

	// Steady state: the bootstrap snapshot alone must already be
	// identical.
	f.waitCaughtUp()
	f.assertReplicaIdentical("bootstrap")

	f.submit(0, 4, true)
	f.waitCaughtUp()
	f.assertReplicaIdentical("steady-state")

	// Follower killed mid-ingest: power-cut its filesystem, restart,
	// keep ingesting on the leader.  The restart re-attaches to whatever
	// snapshot survived and re-pulls the rest of the log.
	if err := f.fol.Close(); err != nil {
		t.Fatal(err)
	}
	f.fsB.PowerCut()
	f.startFollower()
	f.submit(4, 7, true)
	f.waitCaughtUp()
	f.assertReplicaIdentical("follower-restart")

	// Leader killed mid-ingest: three records are acked (fsynced into
	// the WAL) but NOT yet folded when the power goes.  The restarted
	// leader must recover all of them from the log — the fsync ack is
	// the commit point — and the follower must converge to the same
	// store without ever having seen the dead process again.
	f.submit(7, 10, false) // acked, unapplied
	f.leader.set(downHandler)
	f.fsA.PowerCut()
	st, err := store.Open("leader", f.g, store.OpenOptions{FS: f.fsA, Eager: true, Parallelism: 1})
	if err != nil {
		t.Fatalf("reopen leader store after power cut: %v", err)
	}
	f.st = st
	f.openLeaderIngester()
	if got := f.ing.Stats().Acked; got < uint64(f.acked) {
		t.Fatalf("leader WAL recovered %d acked records, want >= %d", got, f.acked)
	}
	if _, err := f.ing.Flush(); err != nil {
		t.Fatal(err)
	}
	f.leader.set(server.New(f.st, server.Options{Ingester: f.ing}).Handler())
	f.waitCaughtUp()
	f.assertReplicaIdentical("leader-restart")

	// Checkpoint the leader WAL (compaction folds everything, the
	// applied prefix is dropped), then kill the follower once more: its
	// next pull starts below the log's new start, the leader answers 410
	// wal_truncated, and the follower re-snapshots from the manifest.
	if _, err := f.ing.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ing.ShipFrom(0, 1); !errors.Is(err, ingest.ErrWALTruncated) {
		t.Fatalf("compaction did not checkpoint the leader WAL (ShipFrom(0): %v); the re-snapshot path is untested", err)
	}
	if err := f.fol.Close(); err != nil {
		t.Fatal(err)
	}
	f.fsB.PowerCut()
	f.startFollower()
	f.submit(10, 12, true)
	f.waitCaughtUp()
	f.assertReplicaIdentical("resnapshot")
}

// TestRouterDegradedMemberKill pins the degradation contract at the
// router: a member dying mid-flight is quarantined after its first
// transport failure; ranges keep answering (degraded, lower-bound) with
// the dead member's shard skipped, point queries to its trajectories
// answer 503 node_quarantined with Retry-After, /healthz turns
// "degraded", and the member heals automatically once it is back.
func TestRouterDegradedMemberKill(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 18, 3)
	if err != nil {
		t.Fatal(err)
	}
	place := NewPlacement(NodeNames(3), DefaultPartitions, DefaultVNodes)

	var killed atomic.Bool
	var members []Member
	var deadGid = -1
	for i := 0; i < 3; i++ {
		var sub []*traj.Uncertain
		for gid, tu := range ds.Trajectories {
			if place.Owner(gid) == i {
				sub = append(sub, tu)
				if i == 0 && deadGid < 0 {
					deadGid = gid
				}
			}
		}
		sopts := store.DefaultOptions(p.Ts)
		sopts.NumShards = 2
		st, err := store.Build(ds.Graph, sub, sopts)
		if err != nil {
			t.Fatal(err)
		}
		h := server.New(st, server.Options{}).Handler()
		if i == 0 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if killed.Load() {
					conn, _, err := w.(http.Hijacker).Hijack()
					if err == nil {
						_ = conn.Close()
					}
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		members = append(members, Member{Name: NodeNames(3)[i], URL: ts.URL})
	}
	if deadGid < 0 {
		t.Fatal("placement gave node-0 no trajectories")
	}

	rt := NewRouter(members, RouterOptions{QuarantineBackoff: 30 * time.Millisecond})
	ctx := context.Background()
	if err := rt.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	c := client.New(rts.URL, client.Options{RetryAttempts: 1})

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Probe at the dead-node trajectory's own mid-time so the healthy
	// result is guaranteed to include node-0 traffic.
	dT := ds.Trajectories[deadGid].T
	probeT := (dT[0] + dT[len(dT)-1]) / 2
	full, err := c.Range(ctx, client.RangeRequest{Rect: st.Bounds, T: probeT, Alpha: 0})
	if err != nil || full.Degraded {
		t.Fatalf("healthy range: %v degraded=%v", err, full.Degraded)
	}
	hasNode0 := false
	for _, gid := range full.Trajs {
		if place.Owner(gid) == 0 {
			hasNode0 = true
		}
	}
	if !hasNode0 {
		t.Fatalf("healthy range at t=%d misses node-0 traffic: %v", probeT, full.Trajs)
	}

	// Kill node-0.  The first range both discovers the death (transport
	// error mid scatter-gather) and already degrades around it.
	killed.Store(true)
	deg, err := c.Range(ctx, client.RangeRequest{Rect: st.Bounds, T: probeT, Alpha: 0})
	if err != nil {
		t.Fatalf("range with dead member: %v", err)
	}
	if !deg.Degraded || deg.NodesSkipped != 1 {
		t.Fatalf("range with dead member: degraded=%v nodesSkipped=%d, want degraded with 1 node skipped", deg.Degraded, deg.NodesSkipped)
	}
	if len(deg.Trajs) >= len(full.Trajs) {
		t.Fatalf("degraded range returned %d trajs, healthy %d: node-0's share did not drop out", len(deg.Trajs), len(full.Trajs))
	}

	// Point query to the dead member: 503 node_quarantined, Retry-After.
	_, err = c.Where(ctx, client.WhereRequest{Traj: deadGid, T: st.TimeMin, Alpha: 0.1})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != client.CodeNodeQuarantined || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("where on dead member: %v, want 503 %s", err, client.CodeNodeQuarantined)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("node_quarantined without Retry-After: %+v", ae)
	}

	// Health reflects it.
	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb [256]byte
	n, _ := resp.Body.Read(hb[:])
	resp.Body.Close()
	if body := string(hb[:n]); !strings.Contains(body, "degraded") {
		t.Fatalf("healthz with dead member: %s", body)
	}

	// Revive the member; after the backoff one probing query heals it.
	killed.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := c.Range(ctx, client.RangeRequest{Rect: st.Bounds, T: probeT, Alpha: 0})
		if err == nil && !r.Degraded && eqInts(r.Trajs, full.Trajs) {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("member never healed: err=%v result=%+v", err, r)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := c.Where(ctx, client.WhereRequest{Traj: deadGid, T: st.TimeMin, Alpha: 0.1}); err != nil {
		t.Fatalf("where after heal: %v", err)
	}
}
