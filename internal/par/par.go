// Package par provides the bounded worker pools used by the parallel
// compression pipeline.  Work items are dispatched in index order to a
// fixed number of goroutines; results land in caller-owned slots indexed
// by item, so parallel runs produce byte-identical output to serial runs.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a Parallelism knob to a worker count: values below 1
// mean "one worker per available CPU".
func Workers(parallelism int) int {
	if parallelism < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines.
//
// Items are handed out in increasing index order.  On failure no new items
// are dispatched (in-flight items finish), and Do returns the error of the
// lowest failing index — the same error a serial loop would have returned,
// because dispatch order guarantees every lower-index item was already
// started and therefore had its error recorded.
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		failed   bool
		errIdx   int
		firstErr error
		wg       sync.WaitGroup
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if !failed || i < errIdx {
			failed, errIdx, firstErr = true, i, err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
