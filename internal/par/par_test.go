package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestDoCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 100
		hit := make([]int32, n)
		if err := Do(workers, n, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatal(err)
	}
}

// TestDoFirstError: the reported error must be the lowest failing index,
// matching what a serial loop returns — regardless of worker count.
func TestDoFirstError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := Do(workers, 50, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Errorf("workers=%d: err = %v, want item 7", workers, err)
		}
	}
}

// TestDoFailFast: after an error no new items are dispatched.
func TestDoFailFast(t *testing.T) {
	var dispatched atomic.Int32
	_ = Do(2, 1000, func(i int) error {
		dispatched.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if n := dispatched.Load(); n > 20 {
		t.Errorf("dispatched %d items after early failure", n)
	}
}
