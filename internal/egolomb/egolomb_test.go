package egolomb

import (
	"testing"
	"testing/quick"

	"utcq/internal/bitio"
)

func codeword(delta int64) string {
	w := bitio.NewWriter(0)
	Encode(w, delta)
	r := bitio.NewReaderBits(w.Bytes(), w.Len())
	s := make([]byte, 0, w.Len())
	for r.Remaining() > 0 {
		b, _ := r.ReadBit()
		s = append(s, byte('0'+b))
	}
	return string(s)
}

// TestPaperExample reproduces Section 4.4: ⟨0, 1, 0, −1, 0, 0⟩ encodes as
// ⟨0, 1000, 0, 1010, 0, 0⟩, 12 bits in total.
func TestPaperExample(t *testing.T) {
	cases := []struct {
		delta int64
		want  string
	}{
		{0, "0"},
		{1, "1000"},
		{-1, "1010"},
	}
	for _, c := range cases {
		if got := codeword(c.delta); got != c.want {
			t.Errorf("codeword(%d) = %s, want %s", c.delta, got, c.want)
		}
	}
	w := bitio.NewWriter(0)
	EncodeAll(w, []int64{0, 1, 0, -1, 0, 0})
	if w.Len() != 12 {
		t.Errorf("paper sequence = %d bits, want 12", w.Len())
	}
}

func TestGroups(t *testing.T) {
	cases := []struct {
		delta int64
		group int
	}{
		{0, 0}, {1, 1}, {2, 1}, {-2, 1}, {3, 2}, {6, 2}, {-6, 2},
		{7, 3}, {14, 3}, {15, 4}, {30, 4}, {31, 5}, {-100, 6},
	}
	for _, c := range cases {
		if got := Group(c.delta); got != c.group {
			t.Errorf("Group(%d) = %d, want %d", c.delta, got, c.group)
		}
	}
}

// TestGroupRangesPartition checks that the group ranges [2^j−1, 2^{j+1}−2]
// partition the non-negative integers (the paper's coverage claim).
func TestGroupRangesPartition(t *testing.T) {
	prevEnd := int64(-1)
	for j := 0; j < 12; j++ {
		start := int64(1)<<uint(j) - 1
		end := int64(1)<<uint(j+1) - 2
		if start != prevEnd+1 {
			t.Errorf("group %d starts at %d, want %d", j, start, prevEnd+1)
		}
		prevEnd = end
	}
}

func TestEncodedBits(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 2, 3, -6, 7, 100, -12345, 1 << 40} {
		w := bitio.NewWriter(0)
		Encode(w, d)
		if got := EncodedBits(d); got != w.Len() {
			t.Errorf("EncodedBits(%d) = %d, actual %d", d, got, w.Len())
		}
	}
}

func TestRoundTripExhaustiveSmall(t *testing.T) {
	w := bitio.NewWriter(0)
	var vals []int64
	for d := int64(-300); d <= 300; d++ {
		vals = append(vals, d)
		Encode(w, d)
	}
	r := bitio.NewReaderBits(w.Bytes(), w.Len())
	got, err := DecodeAll(r, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("round trip of %d gave %d", v, got[i])
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bits left over", r.Remaining())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(deltas []int32) bool {
		ds := make([]int64, len(deltas))
		for i, d := range deltas {
			ds[i] = int64(d)
		}
		w := bitio.NewWriter(0)
		EncodeAll(w, ds)
		r := bitio.NewReaderBits(w.Bytes(), w.Len())
		got, err := DecodeAll(r, len(ds))
		if err != nil {
			return false
		}
		for i := range ds {
			if got[i] != ds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSmallDeviationsShort verifies the motivating property: small
// deviations get short codes (the common case in Fig 4a).
func TestSmallDeviationsShort(t *testing.T) {
	if EncodedBits(0) != 1 {
		t.Error("Δ=0 should take 1 bit")
	}
	if EncodedBits(1) != 4 || EncodedBits(-1) != 4 {
		t.Error("|Δ|=1 should take 4 bits")
	}
	if EncodedBits(100) <= EncodedBits(1) {
		t.Error("large deviations should take more bits than small ones")
	}
}

func TestDecodeMalformed(t *testing.T) {
	// 70 one-bits: unary prefix longer than any legal group.
	w := bitio.NewWriter(0)
	for i := 0; i < 70; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	r := bitio.NewReaderBits(w.Bytes(), w.Len())
	if _, err := Decode(r); err != ErrMalformed {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func BenchmarkEncode(b *testing.B) {
	deltas := []int64{0, 0, 1, 0, -1, 0, 0, 3, 0, 0, -2, 0, 120, 0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(deltas) * 4)
		EncodeAll(w, deltas)
	}
}
