// Package egolomb implements the improved signed Exp-Golomb code of
// UTCQ (Section 4.4) used to compress SIAR sample-interval deviations.
//
// A deviation Δ is assigned to group j such that |Δ| ∈ [2^j − 1, 2^{j+1} − 2]
// (group 0 contains only Δ = 0).  The codeword is
//
//	<j one-bits> <0> [sign bit] [offset in j bits]
//
// where sign and offset are omitted for group 0, sign is 1 for negative Δ,
// and offset = |Δ| − (2^j − 1).  This reproduces the paper's example:
// the SIAR sequence ⟨0, 1, 0, −1, 0, 0⟩ encodes as ⟨0, 1000, 0, 1010, 0, 0⟩
// (12 bits total).
package egolomb

import (
	"errors"

	"utcq/internal/bitio"
)

// maxGroup bounds the unary prefix so corrupted streams fail fast instead of
// consuming the remaining input.  Group 62 covers |Δ| up to 2^63−2, far more
// than any sample-interval deviation.
const maxGroup = 62

// ErrMalformed is returned when a codeword's unary prefix is implausibly long.
var ErrMalformed = errors.New("egolomb: malformed codeword")

// Group returns the group index j of deviation delta, i.e. the j with
// |delta| ∈ [2^j − 1, 2^{j+1} − 2].
func Group(delta int64) int {
	m := delta
	if m < 0 {
		m = -m
	}
	// Find smallest j with m <= 2^{j+1} - 2.
	j := 0
	for int64(1)<<uint(j+1)-2 < m {
		j++
	}
	return j
}

// EncodedBits returns the codeword length in bits for delta.
func EncodedBits(delta int64) int {
	j := Group(delta)
	if j == 0 {
		return 1
	}
	return (j + 1) + 1 + j
}

// Encode appends the codeword of delta to w.
func Encode(w *bitio.Writer, delta int64) {
	j := Group(delta)
	w.WriteUnary(j)
	if j == 0 {
		return
	}
	m := delta
	neg := uint(0)
	if m < 0 {
		m = -m
		neg = 1
	}
	w.WriteBit(neg)
	offset := uint64(m - (int64(1)<<uint(j) - 1))
	w.WriteBits(offset, j)
}

// Decode reads one codeword from r.
func Decode(r *bitio.Reader) (int64, error) {
	j, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if j > maxGroup {
		return 0, ErrMalformed
	}
	if j == 0 {
		return 0, nil
	}
	neg, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	offset, err := r.ReadBits(j)
	if err != nil {
		return 0, err
	}
	m := int64(1)<<uint(j) - 1 + int64(offset)
	if neg == 1 {
		return -m, nil
	}
	return m, nil
}

// EncodeAll encodes a slice of deviations back to back.
func EncodeAll(w *bitio.Writer, deltas []int64) {
	for _, d := range deltas {
		Encode(w, d)
	}
}

// DecodeAll reads n codewords from r.
func DecodeAll(r *bitio.Reader, n int) ([]int64, error) {
	out := make([]int64, n)
	for i := range out {
		v, err := Decode(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
