package store

// Cluster-facing exports: the replication/catch-up protocol
// (internal/cluster) needs to read a durable store's artifacts over
// HTTP, parse a manifest shipped as bytes, and reuse the store's hash
// mix and geometry bounds for placement and fan-out pruning.  This file
// is that narrow surface — nothing here adds mutation paths.

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"utcq/internal/roadnet"
)

// Mix64 is the splitmix64 finalizer used for hash shard assignment,
// exported so the cluster placement ring hashes identically to the
// store's own AssignHash.
func Mix64(x uint64) uint64 { return mix64(x) }

// Dir returns the store's backing directory ("" for in-memory stores).
func (s *Store) Dir() string { return s.dirPath() }

// DataBounds returns the union of the live shards' recorded geometry
// bounds — the rectangle the stored data actually covers, as opposed to
// Bounds() (the road network's full extent).  Returns the inverted
// empty marker (MinX > MaxX) when no live shard holds geometry.  The
// cluster router uses it to skip members whose data cannot intersect a
// range query.
func (s *Store) DataBounds() roadnet.Rect {
	out := roadnet.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	first := true
	for _, e := range s.v.Load().man.entries {
		if e.dead || e.bounds.MinX > e.bounds.MaxX {
			continue
		}
		if first {
			out, first = e.bounds, false
			continue
		}
		out.MinX = min(out.MinX, e.bounds.MinX)
		out.MinY = min(out.MinY, e.bounds.MinY)
		out.MaxX = max(out.MaxX, e.bounds.MaxX)
		out.MaxY = max(out.MaxY, e.bounds.MaxY)
	}
	return out
}

// IsArtifactName reports whether name is a well-formed store artifact
// file name: the manifest, a shard archive or a StIU sidecar.  The
// replication file endpoint validates requested names with it so a
// follower can only ever read store artifacts.
func IsArtifactName(name string) bool {
	if name == ManifestName {
		return true
	}
	digits, ok := strings.CutPrefix(name, "shard-")
	if !ok {
		return false
	}
	if d, ok := strings.CutSuffix(digits, ".utcq"); ok {
		digits = d
	} else if d, ok := strings.CutSuffix(digits, ".stiu"); ok {
		digits = d
	} else {
		return false
	}
	if len(digits) < 4 {
		return false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ReadArtifact returns the raw bytes of one store artifact (manifest,
// shard archive or sidecar) from the backing directory.  Only durable
// stores have artifacts to serve.
func (s *Store) ReadArtifact(name string) ([]byte, error) {
	if !IsArtifactName(name) {
		return nil, fmt.Errorf("store: %q is not a store artifact name", name)
	}
	dir := s.dirPath()
	if dir == "" {
		return nil, errors.New("store: not durable (no backing directory)")
	}
	return s.fsys().ReadFile(filepath.Join(dir, name))
}

// ManifestInfo is the catch-up view of a manifest shipped as bytes: the
// generation/WAL position it pins and the artifact files a follower
// must fetch to materialize it.
type ManifestInfo struct {
	Generation uint64
	WALApplied uint64
	// Files lists the live artifacts (shard archives, plus sidecars
	// where recorded) — everything needed alongside the manifest bytes
	// themselves.
	Files []string
}

// ParseManifestInfo decodes manifest bytes (as served by ReadArtifact)
// without touching disk.
func ParseManifestInfo(data []byte) (ManifestInfo, error) {
	man, err := readManifest(bytes.NewReader(data))
	if err != nil {
		return ManifestInfo{}, err
	}
	info := ManifestInfo{Generation: man.generation, WALApplied: man.walApplied}
	for _, e := range man.entries {
		if e.dead {
			continue
		}
		info.Files = append(info.Files, shardFile(e.id))
		if e.sidecarCRC != 0 {
			info.Files = append(info.Files, sidecarFile(e.id))
		}
	}
	return info, nil
}
