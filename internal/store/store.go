// Package store implements a sharded multi-archive trajectory store: the
// process-level container that turns the single-archive UTCQ library
// (compressor of Section 4, StIU index of Section 5.2, query engine of
// Section 5.3) into a servable system.
//
// A store partitions the trajectories of one road network across N shards.
// Each shard is an independent compressed archive with its own StIU index
// and query.Engine, so shards build in parallel, open lazily from disk,
// and serve queries concurrently.  Because UTCQ compresses each uncertain
// trajectory independently (references are selected among the instances of
// one trajectory, never across trajectories), a trajectory's compressed
// record is byte-identical no matter which shard holds it, and a sharded
// store answers every query exactly like a single-archive engine over the
// same data — TestStoreMatchesEngine pins this equivalence on all three
// paper profiles.
//
// Single-trajectory queries (Where, When) route to the owning shard;
// Range scatters to all shards and gathers the per-shard accepted sets
// into one deterministic, globally-ordered result.
//
// On disk a store is a directory: a manifest (global→shard assignment,
// index granularity, time span; see docs/FORMAT.md) plus one archive file
// per shard in the standard container format of internal/core.
package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"utcq/internal/core"
	"utcq/internal/par"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/traj"
)

// Assignment selects how trajectories map to shards.
type Assignment uint8

const (
	// AssignHash spreads trajectories uniformly by a 64-bit mix of the
	// global trajectory id.  Best load balance; every Range query touches
	// every shard.
	AssignHash Assignment = iota
	// AssignSpatial groups trajectories by the grid cell of their first
	// instance's start vertex, giving contiguous row-major cell blocks to
	// each shard.  Range queries over small rectangles touch fewer shards
	// at the cost of balance.
	AssignSpatial
)

func (a Assignment) String() string {
	switch a {
	case AssignHash:
		return "hash"
	case AssignSpatial:
		return "spatial"
	default:
		return fmt.Sprintf("assignment(%d)", uint8(a))
	}
}

// ParseAssignment converts a flag value ("hash" or "spatial").
func ParseAssignment(s string) (Assignment, error) {
	switch s {
	case "hash":
		return AssignHash, nil
	case "spatial":
		return AssignSpatial, nil
	}
	return 0, fmt.Errorf("store: unknown assignment %q (want hash or spatial)", s)
}

// Options configure a store build.
type Options struct {
	// NumShards is the number of independent archives (values below 1
	// select 1; the count is additionally capped by the trajectory count).
	NumShards int
	// Assignment maps trajectories to shards (default AssignHash).
	Assignment Assignment
	// Core are the per-shard compression parameters.
	Core core.Options
	// Index is the per-shard StIU granularity.
	Index stiu.Options
	// Engine is the per-shard query-engine cache budget.
	Engine query.EngineOptions
	// Parallelism bounds the shard-build worker pool (<1: one worker per
	// CPU).  Shard contents are independent, so the store is identical
	// across all settings.
	Parallelism int
}

// DefaultOptions returns a 4-shard hash-assigned store with the paper's
// default compression and index parameters for sample interval ts.
func DefaultOptions(ts int64) Options {
	return Options{
		NumShards:  4,
		Assignment: AssignHash,
		Core:       core.DefaultOptions(ts),
		Index:      stiu.DefaultOptions(),
	}
}

// shard is one independently compressed + indexed partition.  eng is nil
// until the shard is opened (lazily, for stores opened from disk); it is
// an atomic pointer so residency probes (Stats, OpenShards) never block
// behind an in-flight multi-second open, which only the mutex serializes.
type shard struct {
	mu      sync.Mutex // serializes lazy opening
	eng     atomic.Pointer[query.Engine]
	globals []int32 // local trajectory index -> global id
}

// Store is a sharded collection of compressed uncertain trajectories over
// one road network.  It is safe for concurrent use.
type Store struct {
	graph  *roadnet.Graph
	opts   Options
	man    *manifest
	shards []*shard

	// localIdx[j] is trajectory j's index within its shard.
	localIdx []int32

	// dir is the backing directory for lazily opened stores ("" when the
	// store was built in memory).
	dir string
}

// Build compresses and indexes the trajectories into a sharded in-memory
// store.  Shards build on a bounded worker pool (Options.Parallelism); the
// result is identical across all parallelism settings.
func Build(g *roadnet.Graph, tus []*traj.Uncertain, opts Options) (*Store, error) {
	if opts.NumShards < 1 {
		opts.NumShards = 1
	}
	if n := len(tus); n > 0 && opts.NumShards > n {
		opts.NumShards = n
	}
	shardOf, err := assign(g, tus, opts)
	if err != nil {
		return nil, err
	}
	man := &manifest{
		assignment:  opts.Assignment,
		numShards:   opts.NumShards,
		shardOf:     shardOf,
		gridNX:      opts.Index.GridNX,
		gridNY:      opts.Index.GridNY,
		interval:    opts.Index.IntervalDur,
		graphHash:   g.Fingerprint(),
		shardBounds: make([]roadnet.Rect, opts.NumShards),
	}
	man.timeMin, man.timeMax = timeSpan(tus)

	s := &Store{graph: g, opts: opts, man: man}
	s.initShards()

	// Group each shard's trajectories in ascending global order (the order
	// localIdx was assigned in).
	groups := make([][]*traj.Uncertain, opts.NumShards)
	for j, tu := range tus {
		groups[shardOf[j]] = append(groups[shardOf[j]], tu)
	}
	// Avoid nested per-CPU pools: when the shard pool itself fans out,
	// defaulted (<1) inner parallelism runs each shard's compress and
	// index build serially instead of spawning workers² goroutines.
	// Output is identical either way.
	coreOpts, ixOpts := opts.Core, opts.Index
	if opts.NumShards > 1 && par.Workers(opts.Parallelism) > 1 {
		if coreOpts.Parallelism < 1 {
			coreOpts.Parallelism = 1
		}
		if ixOpts.Parallelism < 1 {
			ixOpts.Parallelism = 1
		}
	}
	err = par.Do(par.Workers(opts.Parallelism), opts.NumShards, func(si int) error {
		c, err := core.NewCompressor(g, coreOpts)
		if err != nil {
			return err
		}
		arch, err := c.Compress(groups[si])
		if err != nil {
			return fmt.Errorf("store: shard %d: %w", si, err)
		}
		ix, err := stiu.Build(arch, ixOpts)
		if err != nil {
			return fmt.Errorf("store: shard %d index: %w", si, err)
		}
		s.shards[si].eng.Store(query.NewEngineWithOptions(arch, ix, opts.Engine))
		man.shardBounds[si] = shardGeometryBounds(ix)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// shardGeometryBounds returns a conservative bounding rectangle of a
// shard's trajectory geometry: the union of every StIU region cell any of
// its instances touches (cells cover the full edge geometry, so no
// position of any instance lies outside the union).  An empty shard gets
// an inverted rectangle that intersects nothing.
func shardGeometryBounds(ix *stiu.Index) roadnet.Rect {
	out := roadnet.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	empty := true
	for _, iv := range ix.Intervals {
		for re := range iv.Regions {
			cr := ix.Grid.CellRect(re)
			if empty {
				out, empty = cr, false
				continue
			}
			out.MinX = math.Min(out.MinX, cr.MinX)
			out.MinY = math.Min(out.MinY, cr.MinY)
			out.MaxX = math.Max(out.MaxX, cr.MaxX)
			out.MaxY = math.Max(out.MaxY, cr.MaxY)
		}
	}
	return out
}

// initShards derives the shard slots and the global↔local maps from the
// manifest's assignment vector.
func (s *Store) initShards() {
	s.shards = make([]*shard, s.man.numShards)
	for i := range s.shards {
		s.shards[i] = &shard{}
	}
	s.localIdx = make([]int32, len(s.man.shardOf))
	for j, si := range s.man.shardOf {
		sh := s.shards[si]
		s.localIdx[j] = int32(len(sh.globals))
		sh.globals = append(sh.globals, int32(j))
	}
}

// assign computes the shard of every trajectory.
func assign(g *roadnet.Graph, tus []*traj.Uncertain, opts Options) ([]uint32, error) {
	out := make([]uint32, len(tus))
	switch opts.Assignment {
	case AssignHash:
		for j := range tus {
			out[j] = uint32(mix64(uint64(j)) % uint64(opts.NumShards))
		}
	case AssignSpatial:
		// A coarse uniform grid over the network; contiguous row-major cell
		// blocks map to the same shard so nearby trajectories co-locate.
		side := int(math.Ceil(math.Sqrt(float64(4 * opts.NumShards))))
		grid := roadnet.NewGrid(g, side, side)
		cells := side * side
		for j, tu := range tus {
			if len(tu.Instances) == 0 {
				out[j] = 0
				continue
			}
			v := g.Vertex(tu.Instances[0].SV)
			cell := int(grid.CellOf(v.X, v.Y))
			out[j] = uint32(cell * opts.NumShards / cells)
		}
	default:
		return nil, fmt.Errorf("store: unknown assignment %d", opts.Assignment)
	}
	return out, nil
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// timeSpan returns the min first and max last timestamp over the dataset.
func timeSpan(tus []*traj.Uncertain) (lo, hi int64) {
	first := true
	for _, tu := range tus {
		if len(tu.T) == 0 {
			continue
		}
		t0, tn := tu.T[0], tu.T[len(tu.T)-1]
		if first || t0 < lo {
			lo = t0
		}
		if first || tn > hi {
			hi = tn
		}
		first = false
	}
	return lo, hi
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return s.man.numShards }

// NumTrajectories returns the global trajectory count.
func (s *Store) NumTrajectories() int { return len(s.man.shardOf) }

// ShardOf returns the shard holding global trajectory j.
func (s *Store) ShardOf(j int) int { return int(s.man.shardOf[j]) }

// TimeSpan returns the dataset's [min, max] timestamp range, recorded in
// the manifest at build time (no shard needs to be opened).
func (s *Store) TimeSpan() (lo, hi int64) { return s.man.timeMin, s.man.timeMax }

// Bounds returns the road network's bounding rectangle.
func (s *Store) Bounds() roadnet.Rect { return s.graph.Bounds() }

// Graph returns the road network the store serves.
func (s *Store) Graph() *roadnet.Graph { return s.graph }

// OpenShards counts the shards currently resident in memory (diagnostics
// for lazy opening).  Non-blocking: an in-flight open counts as absent.
func (s *Store) OpenShards() int {
	n := 0
	for _, sh := range s.shards {
		if sh.eng.Load() != nil {
			n++
		}
	}
	return n
}

// engine returns shard si's query engine, opening the shard from disk on
// first use.  Concurrent callers of an unopened shard serialize on the
// shard mutex; the winner loads, everyone else observes the stored engine.
func (s *Store) engine(si int) (*query.Engine, error) {
	sh := s.shards[si]
	if eng := sh.eng.Load(); eng != nil {
		return eng, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if eng := sh.eng.Load(); eng != nil {
		return eng, nil
	}
	if s.dir == "" {
		return nil, fmt.Errorf("store: shard %d not built", si)
	}
	eng, err := s.openShard(si)
	if err != nil {
		return nil, fmt.Errorf("store: open shard %d: %w", si, err)
	}
	sh.eng.Store(eng)
	return eng, nil
}

// ErrUnknownTrajectory reports a query for a trajectory id the store does
// not hold — a caller-input error, as opposed to the I/O and corruption
// errors shard opening can surface.
var ErrUnknownTrajectory = errors.New("store: unknown trajectory")

// locate resolves a global trajectory id to its shard engine and local
// index.
func (s *Store) locate(j int) (*query.Engine, int, error) {
	if j < 0 || j >= len(s.man.shardOf) {
		return nil, 0, fmt.Errorf("%w: %d outside [0, %d)", ErrUnknownTrajectory, j, len(s.man.shardOf))
	}
	eng, err := s.engine(int(s.man.shardOf[j]))
	if err != nil {
		return nil, 0, err
	}
	return eng, int(s.localIdx[j]), nil
}

// Where answers the probabilistic where query (Definition 10) for global
// trajectory j, routing to the owning shard.
func (s *Store) Where(j int, t int64, alpha float64) ([]query.WhereResult, error) {
	eng, local, err := s.locate(j)
	if err != nil {
		return nil, err
	}
	return eng.Where(local, t, alpha)
}

// When answers the probabilistic when query (Definition 11) for global
// trajectory j, routing to the owning shard.
func (s *Store) When(j int, loc roadnet.Position, alpha float64) ([]query.WhenResult, error) {
	eng, local, err := s.locate(j)
	if err != nil {
		return nil, err
	}
	return eng.When(local, loc, alpha)
}

// Range answers the probabilistic range query (Definition 12): it scatters
// the query to the shards whose recorded geometry bounds intersect the
// rectangle (skipped shards are not even opened; the pruning applies for
// alpha > 0 — see the loop body), translates each shard's accepted local
// ids to global ids, and merges them into one ascending list — the same
// set a single-archive engine returns, deterministically ordered.  Under
// spatial assignment small rectangles touch few shards; under hash
// assignment the bounds overlap and every shard is queried.
func (s *Store) Range(re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	parts := make([][]int, len(s.shards))
	err := par.Do(par.Workers(s.opts.Parallelism), len(s.shards), func(si int) error {
		b := s.man.shardBounds[si]
		if b.MinX > b.MaxX {
			return nil // empty shard: holds no trajectories at all
		}
		// Geometry pruning is sound only for alpha > 0: at alpha <= 0 the
		// engine accepts every trajectory active at t (zero confirmed mass
		// already reaches the threshold), geometry notwithstanding.
		if alpha > 0 && !re.Intersects(b) {
			return nil // no geometry of this shard can lie inside re
		}
		eng, err := s.engine(si)
		if err != nil {
			return err
		}
		locals, err := eng.Range(re, t, alpha)
		if err != nil {
			return err
		}
		if len(locals) == 0 {
			return nil
		}
		globals := make([]int, len(locals))
		for i, l := range locals {
			globals[i] = int(s.shards[si].globals[l])
		}
		parts[si] = globals
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Ints(out)
	return out, nil
}

// Stats aggregates the engine counters of every open shard plus store-level
// shape information.
type Stats struct {
	Shards       int
	OpenShards   int
	Trajectories int
	Assignment   string
	TimeMin      int64
	TimeMax      int64

	// Engine is the sum of the open shards' engine counters; CacheBudget is
	// summed across shards (total entry budget of the store).
	Engine query.EngineStats
}

// Stats returns a point-in-time aggregate over all open shards.  Shards not
// yet opened contribute nothing (opening them just to count would defeat
// lazy opening).
func (s *Store) Stats() Stats {
	st := Stats{
		Shards:       s.man.numShards,
		Trajectories: len(s.man.shardOf),
		Assignment:   s.man.assignment.String(),
		TimeMin:      s.man.timeMin,
		TimeMax:      s.man.timeMax,
	}
	for _, sh := range s.shards {
		eng := sh.eng.Load()
		if eng == nil {
			continue
		}
		st.OpenShards++
		es := eng.Stats()
		st.Engine.PathsDecoded += es.PathsDecoded
		st.Engine.InstancesSkipped += es.InstancesSkipped
		st.Engine.TrajsPruned += es.TrajsPruned
		st.Engine.TrajsAccepted += es.TrajsAccepted
		st.Engine.CacheHits += es.CacheHits
		st.Engine.CacheMisses += es.CacheMisses
		st.Engine.CachedViews += es.CachedViews
		st.Engine.CachedPaths += es.CachedPaths
		st.Engine.CacheBudget += es.CacheBudget
	}
	return st
}
