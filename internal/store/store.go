// Package store implements a sharded multi-archive trajectory store: the
// process-level container that turns the single-archive UTCQ library
// (compressor of Section 4, StIU index of Section 5.2, query engine of
// Section 5.3) into a servable system.
//
// A store partitions the trajectories of one road network across shards.
// Each shard is an independent compressed archive with its own StIU index
// and query.Engine, so shards build in parallel, open lazily from disk,
// and serve queries concurrently.  Because UTCQ compresses each uncertain
// trajectory independently (references are selected among the instances of
// one trajectory, never across trajectories), a trajectory's compressed
// record is byte-identical no matter which shard holds it, and a sharded
// store answers every query exactly like a single-archive engine over the
// same data — TestStoreMatchesEngine pins this equivalence on all three
// paper profiles.
//
// The store is mutable: ApplyDelta appends an ingested batch as a new
// delta shard and Compact folds accumulated delta shards into one base
// shard (see internal/ingest for the WAL-backed pipeline in front of
// these).  Mutations build a new immutable view — manifest, shard
// catalogue, id maps — and swap it in atomically, so concurrent queries
// always observe a complete generation, never a torn store.  On disk the
// same property holds: shard files and the manifest are written to
// temporary names and renamed into place, manifest last.
//
// Single-trajectory queries (Where, When) route to the owning shard;
// Range scatters to all live shards and gathers the per-shard accepted
// sets into one deterministic, globally-ordered result.
//
// On disk a store is a directory: a manifest (shard catalogue with
// generation number and tombstones, global→shard assignment, index
// granularity, time span; see docs/FORMAT.md) plus one archive file per
// shard in the standard container format of internal/core.
package store

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"utcq/internal/core"
	"utcq/internal/faultfs"
	"utcq/internal/mmapio"
	"utcq/internal/par"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/traj"
)

// Assignment selects how trajectories map to shards.
type Assignment uint8

const (
	// AssignHash spreads trajectories uniformly by a 64-bit mix of the
	// global trajectory id.  Best load balance; every Range query touches
	// every shard.
	AssignHash Assignment = iota
	// AssignSpatial groups trajectories by the grid cell of their first
	// instance's start vertex, giving contiguous row-major cell blocks to
	// each shard.  Range queries over small rectangles touch fewer shards
	// at the cost of balance.
	AssignSpatial
)

func (a Assignment) String() string {
	switch a {
	case AssignHash:
		return "hash"
	case AssignSpatial:
		return "spatial"
	default:
		return fmt.Sprintf("assignment(%d)", uint8(a))
	}
}

// ParseAssignment converts a flag value ("hash" or "spatial").
func ParseAssignment(s string) (Assignment, error) {
	switch s {
	case "hash":
		return AssignHash, nil
	case "spatial":
		return AssignSpatial, nil
	}
	return 0, fmt.Errorf("store: unknown assignment %q (want hash or spatial)", s)
}

// Options configure a store build.
type Options struct {
	// NumShards is the number of independent base archives the initial
	// build partitions into (values below 1 select 1; the count is
	// additionally capped by the trajectory count).
	NumShards int
	// Assignment maps the initial trajectories to shards (default
	// AssignHash).  Ingested batches always form their own delta shard.
	Assignment Assignment
	// Core are the per-shard compression parameters.
	Core core.Options
	// Index is the per-shard StIU granularity.
	Index stiu.Options
	// Engine is the per-shard query-engine cache budget.
	Engine query.EngineOptions
	// Parallelism bounds the shard-build worker pool (<1: one worker per
	// CPU).  Shard contents are independent, so the store is identical
	// across all settings.
	Parallelism int
	// FS is the filesystem all persistence goes through (nil: the real
	// filesystem).  Fault-injection tests substitute faultfs.MemFS or an
	// Injector here.
	FS faultfs.FS
}

// DefaultOptions returns a 4-shard hash-assigned store with the paper's
// default compression and index parameters for sample interval ts.
func DefaultOptions(ts int64) Options {
	return Options{
		NumShards:  4,
		Assignment: AssignHash,
		Core:       core.DefaultOptions(ts),
		Index:      stiu.DefaultOptions(),
	}
}

// shard is one independently compressed + indexed partition.  eng is nil
// until the shard is opened (lazily, for stores opened from disk); it is
// an atomic pointer so residency probes (Stats, OpenShards) never block
// behind an in-flight multi-second open, which only the mutex serializes.
// A shard's identity and membership never change after construction:
// mutations replace shards (tombstoning the old ones), they do not edit
// them, so any number of views can share one shard.
type shard struct {
	id      uint32
	mu      sync.Mutex // serializes lazy opening
	eng     atomic.Pointer[query.Engine]
	globals []int32 // local trajectory index -> global id (ascending)

	// Quarantine state after a failed open.  A shard whose open fails
	// (I/O error, corruption) is not retried on every query — that would
	// hammer a broken disk from the hot path — but after a backoff that
	// doubles per consecutive failure.  Until the deadline passes, engine()
	// fails fast with ErrShardQuarantined without touching the disk.
	// Shard objects are shared across views, so quarantine survives
	// concurrent mutations.  All fields are atomics: the fast path reads
	// them without the shard mutex.
	openFails atomic.Int32
	retryAt   atomic.Int64 // unixnano deadline gating the next open attempt; 0 = healthy
	openErr   atomic.Pointer[string]
}

// quarantined reports whether the shard is currently failing fast (its
// backoff deadline has not passed).
func (sh *shard) quarantined() bool {
	until := sh.retryAt.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// lastOpenErr returns the stored open failure ("unknown" before any).
func (sh *shard) lastOpenErr() string {
	if p := sh.openErr.Load(); p != nil {
		return *p
	}
	return "unknown"
}

// view is one immutable generation of the store: the manifest plus the
// runtime maps derived from it.  Queries load the current view once and
// work off it; mutations construct a new view and swap the pointer.
type view struct {
	man    *manifest
	shards []*shard // parallel to man.entries; nil for tombstoned entries

	// localIdx[j] is trajectory j's index within its shard.
	localIdx []int32

	// slotByID maps a shard id to its man.entries slot (-1 when dead or
	// unknown).
	slotByID []int32
}

// newView derives the runtime maps from a manifest and its shard slots.
// Each live shard's globals must already hold exactly the globals the
// manifest assigns to it, in ascending order; localIdx is recomputed here
// so it is always consistent with the manifest.
func newView(man *manifest, shards []*shard) *view {
	v := &view{man: man, shards: shards}
	v.slotByID = make([]int32, man.nextID)
	for i := range v.slotByID {
		v.slotByID[i] = -1
	}
	for slot, e := range man.entries {
		if !e.dead {
			v.slotByID[e.id] = int32(slot)
		}
	}
	v.localIdx = make([]int32, len(man.shardOf))
	next := make([]int32, len(man.entries))
	for j, id := range man.shardOf {
		slot := v.slotByID[id]
		v.localIdx[j] = next[slot]
		next[slot]++
	}
	return v
}

// buildShards allocates one empty shard slot per live entry and fills the
// global id lists from the assignment vector (used by Build and Open; the
// engines attach later).
func buildShards(man *manifest) []*shard {
	shards := make([]*shard, len(man.entries))
	slotByID := make([]int32, man.nextID)
	for i := range slotByID {
		slotByID[i] = -1
	}
	for slot, e := range man.entries {
		if !e.dead {
			shards[slot] = &shard{id: e.id}
			slotByID[e.id] = int32(slot)
		}
	}
	for j, id := range man.shardOf {
		sh := shards[slotByID[id]]
		sh.globals = append(sh.globals, int32(j))
	}
	return shards
}

// Store is a sharded collection of compressed uncertain trajectories over
// one road network.  It is safe for concurrent use, including queries
// running while ApplyDelta and Compact mutate it.
type Store struct {
	graph *roadnet.Graph
	opts  Options

	// fs is the filesystem persistence goes through (nil: the real one).
	fs faultfs.FS
	// quarBase is the initial shard-quarantine backoff (0: 1s default).
	quarBase time.Duration

	// mu serializes mutations (ApplyDelta, Compact, Save); queries never
	// take it — they read v.
	mu sync.Mutex
	v  atomic.Pointer[view]

	// retained holds the previous generation's view (retention 1, matching
	// deferred tombstone GC) for generation-pinned reads; sig is the
	// current generation's change signal watch subscriptions block on.
	// Both are maintained by swap (snapshot.go).
	retained atomic.Pointer[[]*view]
	sig      atomic.Pointer[genSignal]

	// dir is the backing directory ("" for a purely in-memory store).
	// Mutations on a backed store persist the new shard and manifest
	// before the in-memory swap.  Atomic because lazy shard opens read it
	// on the query path while Save may bind it concurrently.
	dir atomic.Pointer[string]

	// mutation counters (monotonic, survive only the process).
	deltasApplied  atomic.Int64
	compactionsRun atomic.Int64

	// sidecar accounting: opens served from a persisted StIU sidecar vs.
	// index rebuilds from the archive (missing/stale sidecar).
	sidecarLoads    atomic.Int64
	sidecarRebuilds atomic.Int64

	// shardOpenFailures counts failed shard opens (each one quarantines
	// the shard for a backoff interval).
	shardOpenFailures atomic.Int64

	// gatherPool recycles the per-slot result buffers of Range's
	// scatter-gather across queries.
	gatherPool sync.Pool
}

// Build compresses and indexes the trajectories into a sharded in-memory
// store.  Shards build on a bounded worker pool (Options.Parallelism); the
// result is identical across all parallelism settings.
func Build(g *roadnet.Graph, tus []*traj.Uncertain, opts Options) (*Store, error) {
	if opts.NumShards < 1 {
		opts.NumShards = 1
	}
	if n := len(tus); n > 0 && opts.NumShards > n {
		opts.NumShards = n
	}
	shardOf, err := assign(g, tus, opts)
	if err != nil {
		return nil, err
	}
	man := &manifest{
		assignment: opts.Assignment,
		generation: 1,
		nextID:     uint32(opts.NumShards),
		shardOf:    shardOf,
		gridNX:     opts.Index.GridNX,
		gridNY:     opts.Index.GridNY,
		interval:   opts.Index.IntervalDur,
		graphHash:  g.Fingerprint(),
	}
	man.timeMin, man.timeMax = timeSpan(tus)
	man.entries = make([]shardEntry, opts.NumShards)
	counts := make([]uint32, opts.NumShards)
	for _, id := range shardOf {
		counts[id]++
	}
	for i := range man.entries {
		man.entries[i] = shardEntry{id: uint32(i), kind: kindBase, count: counts[i]}
	}

	s := &Store{graph: g, opts: opts, fs: opts.FS}
	shards := buildShards(man)

	// Group each shard's trajectories in ascending global order (the order
	// localIdx is assigned in).
	groups := make([][]*traj.Uncertain, opts.NumShards)
	for j, tu := range tus {
		groups[shardOf[j]] = append(groups[shardOf[j]], tu)
	}
	// Avoid nested per-CPU pools: when the shard pool itself fans out,
	// defaulted (<1) inner parallelism runs each shard's compress and
	// index build serially instead of spawning workers² goroutines.
	// Output is identical either way.
	coreOpts, ixOpts := opts.Core, opts.Index
	if opts.NumShards > 1 && par.Workers(opts.Parallelism) > 1 {
		if coreOpts.Parallelism < 1 {
			coreOpts.Parallelism = 1
		}
		if ixOpts.Parallelism < 1 {
			ixOpts.Parallelism = 1
		}
	}
	err = par.Do(par.Workers(opts.Parallelism), opts.NumShards, func(si int) error {
		eng, bounds, err := buildShardEngine(g, groups[si], coreOpts, ixOpts, opts.Engine)
		if err != nil {
			return fmt.Errorf("store: shard %d: %w", si, err)
		}
		shards[si].eng.Store(eng)
		man.entries[si].bounds = bounds
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.swap(newView(man, shards))
	return s, nil
}

// buildShardEngine compresses and indexes one shard's trajectory group.
func buildShardEngine(g *roadnet.Graph, tus []*traj.Uncertain, coreOpts core.Options, ixOpts stiu.Options, engOpts query.EngineOptions) (*query.Engine, roadnet.Rect, error) {
	c, err := core.NewCompressor(g, coreOpts)
	if err != nil {
		return nil, roadnet.Rect{}, err
	}
	arch, err := c.Compress(tus)
	if err != nil {
		return nil, roadnet.Rect{}, err
	}
	ix, err := stiu.Build(arch, ixOpts)
	if err != nil {
		return nil, roadnet.Rect{}, fmt.Errorf("index: %w", err)
	}
	return query.NewEngineWithOptions(arch, ix, engOpts), shardGeometryBounds(ix), nil
}

// shardGeometryBounds returns a conservative bounding rectangle of a
// shard's trajectory geometry: the union of every StIU region cell any of
// its instances touches (cells cover the full edge geometry, so no
// position of any instance lies outside the union).  An empty shard gets
// an inverted rectangle that intersects nothing.
func shardGeometryBounds(ix *stiu.Index) roadnet.Rect {
	out := roadnet.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	empty := true
	for _, iv := range ix.Intervals {
		for re := range iv.Regions {
			cr := ix.Grid.CellRect(re)
			if empty {
				out, empty = cr, false
				continue
			}
			out.MinX = math.Min(out.MinX, cr.MinX)
			out.MinY = math.Min(out.MinY, cr.MinY)
			out.MaxX = math.Max(out.MaxX, cr.MaxX)
			out.MaxY = math.Max(out.MaxY, cr.MaxY)
		}
	}
	return out
}

// assign computes the shard of every trajectory.
func assign(g *roadnet.Graph, tus []*traj.Uncertain, opts Options) ([]uint32, error) {
	out := make([]uint32, len(tus))
	switch opts.Assignment {
	case AssignHash:
		for j := range tus {
			out[j] = uint32(mix64(uint64(j)) % uint64(opts.NumShards))
		}
	case AssignSpatial:
		// A coarse uniform grid over the network; contiguous row-major cell
		// blocks map to the same shard so nearby trajectories co-locate.
		side := int(math.Ceil(math.Sqrt(float64(4 * opts.NumShards))))
		grid := roadnet.NewGrid(g, side, side)
		cells := side * side
		for j, tu := range tus {
			if len(tu.Instances) == 0 {
				out[j] = 0
				continue
			}
			v := g.Vertex(tu.Instances[0].SV)
			cell := int(grid.CellOf(v.X, v.Y))
			out[j] = uint32(cell * opts.NumShards / cells)
		}
	default:
		return nil, fmt.Errorf("store: unknown assignment %d", opts.Assignment)
	}
	return out, nil
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// timeSpan returns the min first and max last timestamp over the dataset.
func timeSpan(tus []*traj.Uncertain) (lo, hi int64) {
	first := true
	for _, tu := range tus {
		if len(tu.T) == 0 {
			continue
		}
		t0, tn := tu.T[0], tu.T[len(tu.T)-1]
		if first || t0 < lo {
			lo = t0
		}
		if first || tn > hi {
			hi = tn
		}
		first = false
	}
	return lo, hi
}

// NumShards returns the live shard count (base + delta, tombstones
// excluded).
func (s *Store) NumShards() int { return s.v.Load().man.liveShards() }

// DeltaShards returns the live delta shard count — the compaction debt.
func (s *Store) DeltaShards() int {
	n := 0
	for _, e := range s.v.Load().man.entries {
		if !e.dead && e.kind == kindDelta {
			n++
		}
	}
	return n
}

// Generation returns the current manifest generation (1 for a fresh
// build; +1 per applied delta batch or compaction).
func (s *Store) Generation() uint64 { return s.v.Load().man.generation }

// WALApplied returns the number of WAL records already folded into the
// store (crash recovery resumes after it; see internal/ingest).
func (s *Store) WALApplied() uint64 { return s.v.Load().man.walApplied }

// fsys returns the filesystem the store persists through (never nil).
func (s *Store) fsys() faultfs.FS { return faultfs.Resolve(s.fs) }

// dirPath returns the backing directory ("" for in-memory stores).
func (s *Store) dirPath() string {
	if p := s.dir.Load(); p != nil {
		return *p
	}
	return ""
}

// Durable reports whether the store persists mutations to a directory
// (true after Open or a successful Save).  The ingester only checkpoints
// its WAL against durable stores: an in-memory store is rebuilt from
// scratch on restart, so its WAL must retain the full history.
func (s *Store) Durable() bool { return s.dirPath() != "" }

// NumTrajectories returns the global trajectory count.
func (s *Store) NumTrajectories() int { return len(s.v.Load().man.shardOf) }

// ShardOf returns the id of the shard holding global trajectory j.
func (s *Store) ShardOf(j int) int { return int(s.v.Load().man.shardOf[j]) }

// TimeSpan returns the dataset's [min, max] timestamp range, maintained in
// the manifest across builds and ingested batches (no shard needs to be
// opened).
func (s *Store) TimeSpan() (lo, hi int64) {
	man := s.v.Load().man
	return man.timeMin, man.timeMax
}

// Bounds returns the road network's bounding rectangle.
func (s *Store) Bounds() roadnet.Rect { return s.graph.Bounds() }

// Graph returns the road network the store serves.
func (s *Store) Graph() *roadnet.Graph { return s.graph }

// OpenShards counts the live shards currently resident in memory
// (diagnostics for lazy opening).  Non-blocking: an in-flight open counts
// as absent.
func (s *Store) OpenShards() int {
	n := 0
	for _, sh := range s.v.Load().shards {
		if sh != nil && sh.eng.Load() != nil {
			n++
		}
	}
	return n
}

// ErrShardQuarantined reports a query that routed to a shard whose open
// recently failed: the shard is failing fast until its backoff deadline
// passes, so the store is serving degraded rather than hammering a broken
// file on every request.  Servers map it to 503 (retryable), never 500.
var ErrShardQuarantined = errors.New("store: shard quarantined")

// engine returns the query engine of the shard in the given slot of v,
// opening the shard from disk on first use.  Concurrent callers of an
// unopened shard serialize on the shard mutex; the winner loads, everyone
// else observes the stored engine.  A failed open quarantines the shard:
// until an exponentially backed-off deadline passes, callers fail fast
// with ErrShardQuarantined instead of retrying the disk.
func (s *Store) engine(v *view, slot int) (*query.Engine, error) {
	sh := v.shards[slot]
	if eng := sh.eng.Load(); eng != nil {
		return eng, nil
	}
	if sh.quarantined() {
		return nil, fmt.Errorf("%w: shard %d: %s", ErrShardQuarantined, sh.id, sh.lastOpenErr())
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if eng := sh.eng.Load(); eng != nil {
		return eng, nil
	}
	if sh.quarantined() {
		return nil, fmt.Errorf("%w: shard %d: %s", ErrShardQuarantined, sh.id, sh.lastOpenErr())
	}
	if s.dirPath() == "" {
		return nil, fmt.Errorf("store: shard %d not built", sh.id)
	}
	eng, err := s.openShard(sh, &v.man.entries[slot])
	if err != nil {
		s.quarantine(sh, err)
		return nil, fmt.Errorf("store: open shard %d: %w", sh.id, err)
	}
	sh.openFails.Store(0)
	sh.retryAt.Store(0)
	sh.eng.Store(eng)
	return eng, nil
}

// quarantine records a failed open on sh and arms its retry deadline:
// base backoff (1s unless OpenOptions.QuarantineBackoff overrides it)
// doubled per consecutive failure, capped at 60× base.  Called with
// sh.mu held.
func (s *Store) quarantine(sh *shard, err error) {
	s.shardOpenFailures.Add(1)
	fails := sh.openFails.Add(1)
	base := s.quarBase
	if base <= 0 {
		base = time.Second
	}
	delay := base
	for i := int32(1); i < fails && delay < 60*base; i++ {
		delay *= 2
	}
	if delay > 60*base {
		delay = 60 * base
	}
	msg := err.Error()
	sh.openErr.Store(&msg)
	sh.retryAt.Store(time.Now().Add(delay).UnixNano())
}

// QuarantinedShards returns the number of live shards currently failing
// fast behind a quarantine deadline.
func (s *Store) QuarantinedShards() int {
	n := 0
	for _, sh := range s.v.Load().shards {
		if sh != nil && sh.eng.Load() == nil && sh.quarantined() {
			n++
		}
	}
	return n
}

// ErrUnknownTrajectory reports a query for a trajectory id the store does
// not hold — a caller-input error, as opposed to the I/O and corruption
// errors shard opening can surface.
var ErrUnknownTrajectory = errors.New("store: unknown trajectory")

// locate resolves a global trajectory id to its shard engine and local
// index within the given view.
func (s *Store) locate(v *view, j int) (*query.Engine, int, error) {
	if j < 0 || j >= len(v.man.shardOf) {
		return nil, 0, fmt.Errorf("%w: %d outside [0, %d)", ErrUnknownTrajectory, j, len(v.man.shardOf))
	}
	eng, err := s.engine(v, int(v.slotByID[v.man.shardOf[j]]))
	if err != nil {
		return nil, 0, err
	}
	return eng, int(v.localIdx[j]), nil
}

// Where answers the probabilistic where query (Definition 10) for global
// trajectory j, routing to the owning shard.
func (s *Store) Where(j int, t int64, alpha float64) ([]query.WhereResult, error) {
	eng, local, err := s.locate(s.v.Load(), j)
	if err != nil {
		return nil, err
	}
	return eng.Where(local, t, alpha)
}

// When answers the probabilistic when query (Definition 11) for global
// trajectory j, routing to the owning shard.
func (s *Store) When(j int, loc roadnet.Position, alpha float64) ([]query.WhenResult, error) {
	eng, local, err := s.locate(s.v.Load(), j)
	if err != nil {
		return nil, err
	}
	return eng.When(local, loc, alpha)
}

// Range answers the probabilistic range query (Definition 12): it scatters
// the query to the live shards whose recorded geometry bounds intersect
// the rectangle (skipped shards are not even opened; the pruning applies
// for alpha > 0 — see the loop body), translates each shard's accepted
// local ids to global ids, and merges them into one ascending list — the
// same set a single-archive engine returns, deterministically ordered.
// Under spatial assignment small rectangles touch few shards; under hash
// assignment the bounds overlap and every shard is queried.
func (s *Store) Range(re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	out, _, err := s.rangeView(s.v.Load(), re, t, alpha, false, 0)
	return out, err
}

// RangeDegraded is Range with quarantined shards skipped instead of
// failing the whole query: the result covers every healthy shard and the
// second return value reports how many live shards could not be
// consulted (0 means the result is complete).  Servers use it to keep
// answering range queries — flagged degraded — while a shard is broken.
func (s *Store) RangeDegraded(re roadnet.Rect, t int64, alpha float64) ([]int, int, error) {
	return s.rangeView(s.v.Load(), re, t, alpha, true, 0)
}

// rangeView runs the scatter-gather range query against one specific view
// (the current one for Range, a pinned one for Snapshot queries).  sinceID
// restricts the scan to shards with id >= sinceID — the incremental
// re-evaluation path of watch subscriptions (Snapshot.RangeSince): shard
// ids are monotonic, so everything older than a recorded watermark is
// already in the subscriber's hands and need not be consulted again.
func (s *Store) rangeView(v *view, re roadnet.Rect, t int64, alpha float64, skipQuarantined bool, sinceID uint32) ([]int, int, error) {
	gs := s.getGather(len(v.shards))
	defer s.putGather(gs)
	var skipped atomic.Int32
	err := par.Do(par.Workers(s.opts.Parallelism), len(v.shards), func(slot int) error {
		sh := v.shards[slot]
		if sh == nil {
			return nil // tombstoned entry
		}
		if sh.id < sinceID {
			return nil // predates the subscriber's watermark: already seen
		}
		b := v.man.entries[slot].bounds
		if b.MinX > b.MaxX {
			return nil // empty shard: holds no trajectories at all
		}
		// Geometry pruning is sound only for alpha > 0: at alpha <= 0 the
		// engine accepts every trajectory active at t (zero confirmed mass
		// already reaches the threshold), geometry notwithstanding.
		if alpha > 0 && !re.Intersects(b) {
			return nil // no geometry of this shard can lie inside re
		}
		eng, err := s.engine(v, slot)
		if err != nil {
			// A failed open quarantines the shard before returning, so
			// checking quarantined() here also degrades the very query
			// that discovered the failure, not just the ones after it.
			if skipQuarantined && (errors.Is(err, ErrShardQuarantined) || sh.quarantined()) {
				skipped.Add(1)
				return nil
			}
			return err
		}
		part, err := eng.AppendRange(gs.parts[slot][:0], re, t, alpha)
		gs.parts[slot] = part // keep any grown capacity for reuse
		if err != nil {
			return err
		}
		// Translate local ids to globals in place.
		for i, l := range part {
			part[i] = int(sh.globals[l])
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for slot := range v.shards {
		total += len(gs.parts[slot])
	}
	out := make([]int, 0, total)
	for slot := range v.shards {
		out = append(out, gs.parts[slot]...)
	}
	sort.Ints(out)
	return out, int(skipped.Load()), nil
}

// gatherScratch is Range's reusable scatter-gather buffer set: one result
// slice per shard slot, recycled across queries so the merge allocates
// only the exact-size output.
type gatherScratch struct {
	parts [][]int
}

func (s *Store) getGather(slots int) *gatherScratch {
	gs, ok := s.gatherPool.Get().(*gatherScratch)
	if !ok {
		gs = &gatherScratch{}
	}
	for len(gs.parts) < slots {
		gs.parts = append(gs.parts, nil)
	}
	return gs
}

func (s *Store) putGather(gs *gatherScratch) {
	for i := range gs.parts {
		gs.parts[i] = gs.parts[i][:0]
	}
	s.gatherPool.Put(gs)
}

// coreOptions returns the compression parameters new delta shards are
// encoded with.  A built store knows them from Options; a store opened
// from disk without OpenOptions.Core derives them from the first live
// shard's archive (the container persists them), so ingested records stay
// byte-identical to a from-scratch compression of the whole population.
func (s *Store) coreOptions(v *view) (core.Options, error) {
	if s.opts.Core.Ts > 0 {
		return s.opts.Core, nil
	}
	for slot, sh := range v.shards {
		if sh == nil {
			continue
		}
		eng, err := s.engine(v, slot)
		if err != nil {
			return core.Options{}, err
		}
		opts := eng.Arch.Opts
		opts.Parallelism = s.opts.Parallelism
		s.opts.Core = opts // cache for subsequent batches (under s.mu)
		return opts, nil
	}
	return core.Options{}, errors.New("store: empty store has no compression parameters; set OpenOptions.Core")
}

// ApplyDelta appends one ingested batch as a new delta shard and advances
// the WAL high-water mark, atomically: a backed store persists the shard
// file and then the manifest (write-temp + rename) before the in-memory
// view swap, so neither in-process readers nor a concurrent Open ever see
// a torn store.  An empty batch (every record failed map matching) still
// persists the walApplied advance.  Returns the new manifest generation.
func (s *Store) ApplyDelta(tus []*traj.Uncertain, walApplied uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	if len(tus) > 0 {
		if err := checkIDBudget(cur.man); err != nil {
			return 0, err
		}
	}
	man := cur.man.clone()
	man.generation++
	if walApplied > man.walApplied {
		man.walApplied = walApplied
	}
	shards := append([]*shard(nil), cur.shards...)
	if len(tus) > 0 {
		coreOpts, err := s.coreOptions(cur)
		if err != nil {
			return 0, err
		}
		eng, bounds, err := buildShardEngine(s.graph, tus, coreOpts, s.indexOptions(), s.opts.Engine)
		if err != nil {
			return 0, fmt.Errorf("store: delta shard: %w", err)
		}
		id := man.nextID
		man.nextID++
		man.entries = append(man.entries, shardEntry{id: id, kind: kindDelta, count: uint32(len(tus)), bounds: bounds})
		base := len(man.shardOf)
		sh := &shard{id: id}
		for k := range tus {
			man.shardOf = append(man.shardOf, id)
			sh.globals = append(sh.globals, int32(base+k))
		}
		lo, hi := timeSpan(tus)
		if base == 0 {
			man.timeMin, man.timeMax = lo, hi
		} else {
			man.timeMin, man.timeMax = min(man.timeMin, lo), max(man.timeMax, hi)
		}
		sh.eng.Store(eng)
		shards = append(shards, sh)
		if dir := s.dirPath(); dir != "" {
			nbytes, crc, err := writeShardArtifacts(s.fsys(), dir, id, eng.Arch, eng.Ix)
			if err != nil {
				return 0, err
			}
			ent := &man.entries[len(man.entries)-1]
			ent.bytes, ent.sidecarCRC = nbytes, crc
		}
	}
	if dir := s.dirPath(); dir != "" {
		if err := writeManifestFile(s.fsys(), dir, man); err != nil {
			return 0, err
		}
	}
	s.swap(newView(man, shards))
	s.deltasApplied.Add(1)
	return man.generation, nil
}

// Compact folds every live delta shard into one new base shard: the delta
// records are merged in ascending global order (each record is already the
// fixpoint of re-compression — reference selection operates within a
// single uncertain trajectory, so the merged archive is byte-identical to
// compressing the merged population from scratch), the StIU index is
// rebuilt over the merged archive, and the manifest swaps in atomically
// with the old delta entries tombstoned.  Tombstoned shard files stay on
// disk so readers of an older manifest generation keep working; their ids
// are never reused.  Returns the number of delta shards folded (0 when
// there was nothing to compact).
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()

	var slots []int
	for slot, e := range cur.man.entries {
		if !e.dead && e.kind == kindDelta {
			slots = append(slots, slot)
		}
	}
	if len(slots) == 0 {
		return 0, nil
	}
	if err := checkIDBudget(cur.man); err != nil {
		return 0, err
	}

	// Gather (global, record) pairs from every delta shard; opening is
	// lazy, so compaction may fault shards in.
	type rec struct {
		global int32
		tr     *core.TrajRecord
	}
	var recs []rec
	var arch0 *core.Archive
	var stats core.CompStats
	for _, slot := range slots {
		eng, err := s.engine(cur, slot)
		if err != nil {
			return 0, err
		}
		a := eng.Arch
		if arch0 == nil {
			arch0 = a
		}
		stats.Add(a.Stats)
		for i, tr := range a.Trajs {
			recs = append(recs, rec{global: cur.shards[slot].globals[i], tr: tr})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].global < recs[j].global })

	merged := &core.Archive{
		Opts:       arch0.Opts,
		Graph:      s.graph,
		VertexBits: arch0.VertexBits,
		EdgeBits:   arch0.EdgeBits,
		DCodec:     arch0.DCodec,
		PCodec:     arch0.PCodec,
		Trajs:      make([]*core.TrajRecord, len(recs)),
		Stats:      stats,
	}
	for i, r := range recs {
		merged.Trajs[i] = r.tr
	}
	ix, err := stiu.Build(merged, s.indexOptions())
	if err != nil {
		return 0, fmt.Errorf("store: compact index: %w", err)
	}
	eng := query.NewEngineWithOptions(merged, ix, s.opts.Engine)

	man := cur.man.clone()
	man.generation++
	id := man.nextID
	man.nextID++
	for _, slot := range slots {
		man.entries[slot].dead = true
	}
	man.entries = append(man.entries, shardEntry{id: id, kind: kindBase, count: uint32(len(recs)), bounds: shardGeometryBounds(ix)})
	sh := &shard{id: id, globals: make([]int32, len(recs))}
	for i, r := range recs {
		man.shardOf[r.global] = id
		sh.globals[i] = r.global
	}
	sh.eng.Store(eng)

	shards := append([]*shard(nil), cur.shards...)
	for _, slot := range slots {
		shards[slot] = nil // release the folded engines with the old views
	}
	shards = append(shards, sh)

	// Deferred tombstone GC: entries tombstoned by an *earlier* compaction
	// are dropped from the catalogue (the manifest would otherwise grow
	// past its reader limit under continuous ingestion) and their files
	// deleted (the directory would otherwise grow without bound).
	// Deleting the files cannot fail an in-flight query holding an old
	// view: a shard is always faulted resident *before* it is tombstoned
	// (Compact loads every shard it folds, and engines are never
	// un-stored from the shard objects views share), so no view ever
	// opens a tombstoned shard from disk.  Only another *process* still
	// serving a pre-GC manifest could miss the file, and it must re-Open
	// — the standard staleness contract for a file-based store.  Entries
	// tombstoned this round stay one cycle as defense in depth.
	var gcIDs []uint32
	keepE := man.entries[:0]
	keepS := shards[:0]
	for i, e := range man.entries {
		deadBefore := i < len(cur.man.entries) && cur.man.entries[i].dead
		if e.dead && deadBefore {
			gcIDs = append(gcIDs, e.id)
			continue // tombstoned by an earlier generation: collect
		}
		keepE = append(keepE, e) // live, or freshly tombstoned this round
		keepS = append(keepS, shards[i])
	}
	man.entries, shards = keepE, keepS

	if dir := s.dirPath(); dir != "" {
		nbytes, crc, err := writeShardArtifacts(s.fsys(), dir, id, merged, ix)
		if err != nil {
			return 0, err
		}
		for i := range man.entries {
			if man.entries[i].id == id {
				man.entries[i].bytes, man.entries[i].sidecarCRC = nbytes, crc
			}
		}
		if err := writeManifestFile(s.fsys(), dir, man); err != nil {
			return 0, err
		}
		for _, gid := range gcIDs {
			// Best-effort: mapped readers of older generations keep their
			// pages (POSIX keeps unlinked mapped files readable).
			_ = s.fsys().Remove(filepath.Join(dir, shardFile(gid)))
			_ = s.fsys().Remove(filepath.Join(dir, sidecarFile(gid)))
		}
	}
	s.swap(newView(man, shards))
	s.compactionsRun.Add(1)
	return len(slots), nil
}

// checkIDBudget refuses a mutation that would allocate a shard id the
// manifest reader rejects (ids are never reused, so they only grow):
// failing the write loudly now beats persisting a manifest the store can
// never reopen.  The budget of 2^24 lifetime mutations is far beyond any
// sane ingest/compaction cadence; hitting it means the operator should
// rebuild the store (which restarts ids at 0).
func checkIDBudget(man *manifest) error {
	if man.nextID >= maxManifestIDs {
		return fmt.Errorf("store: shard id budget exhausted (%d lifetime shards); rebuild the store to reset ids", man.nextID)
	}
	return nil
}

// indexOptions returns the StIU granularity for newly built shards, with
// the manifest as the source of truth so delta shards always match the
// base shards.
func (s *Store) indexOptions() stiu.Options {
	man := s.v.Load().man
	ix := s.opts.Index
	ix.GridNX, ix.GridNY, ix.IntervalDur = man.gridNX, man.gridNY, man.interval
	return ix
}

// Stats aggregates the engine counters of every open shard plus store-level
// shape information.
type Stats struct {
	Shards       int // live shards (base + delta)
	BaseShards   int
	DeltaShards  int
	Tombstones   int
	OpenShards   int
	Trajectories int
	Assignment   string
	Generation   uint64
	WALApplied   uint64
	TimeMin      int64
	TimeMax      int64

	// DeltasApplied / Compactions count the mutations this process
	// performed (not persisted).
	DeltasApplied int64
	Compactions   int64

	// SidecarLoads / SidecarRebuilds count shard opens whose StIU index
	// came from the persisted sidecar vs. was rebuilt from the archive.
	SidecarLoads    int64
	SidecarRebuilds int64

	// QuarantinedShards is the number of live shards currently failing
	// fast after an open failure (see ErrShardQuarantined);
	// ShardOpenFailures counts every failed open this process observed.
	QuarantinedShards int
	ShardOpenFailures int64

	// MappedBytes is the process-wide total of live file mappings (shard
	// archives and sidecars); RSSBytes is the process resident set (0 when
	// the platform cannot report it).  Together they show how much of the
	// mapped data is actually paged in.
	MappedBytes int64
	RSSBytes    int64

	// Engine is the sum of the open shards' engine counters; CacheBudget is
	// summed across shards (total entry budget of the store).
	Engine query.EngineStats

	// Succinct is the sum of the open shards' StIU succinct-layer counters
	// (v2 sidecars only; zeros for v1/rebuilt indexes).
	Succinct stiu.IndexStats
}

// Stats returns a point-in-time aggregate over all open shards.  Shards not
// yet opened contribute nothing (opening them just to count would defeat
// lazy opening).
func (s *Store) Stats() Stats {
	v := s.v.Load()
	st := Stats{
		Trajectories:      len(v.man.shardOf),
		Assignment:        v.man.assignment.String(),
		Generation:        v.man.generation,
		WALApplied:        v.man.walApplied,
		TimeMin:           v.man.timeMin,
		TimeMax:           v.man.timeMax,
		DeltasApplied:     s.deltasApplied.Load(),
		Compactions:       s.compactionsRun.Load(),
		SidecarLoads:      s.sidecarLoads.Load(),
		SidecarRebuilds:   s.sidecarRebuilds.Load(),
		ShardOpenFailures: s.shardOpenFailures.Load(),
		MappedBytes:       mmapio.MappedBytes(),
		RSSBytes:          mmapio.ResidentSetBytes(),
	}
	for slot, e := range v.man.entries {
		if e.dead {
			st.Tombstones++
			continue
		}
		st.Shards++
		if e.kind == kindDelta {
			st.DeltaShards++
		} else {
			st.BaseShards++
		}
		eng := v.shards[slot].eng.Load()
		if eng == nil {
			if v.shards[slot].quarantined() {
				st.QuarantinedShards++
			}
			continue
		}
		st.OpenShards++
		es := eng.Stats()
		st.Engine.PathsDecoded += es.PathsDecoded
		st.Engine.InstancesSkipped += es.InstancesSkipped
		st.Engine.TrajsPruned += es.TrajsPruned
		st.Engine.TrajsAccepted += es.TrajsAccepted
		st.Engine.CacheHits += es.CacheHits
		st.Engine.CacheMisses += es.CacheMisses
		st.Engine.CachedViews += es.CachedViews
		st.Engine.CachedPaths += es.CachedPaths
		st.Engine.CacheBudget += es.CacheBudget
		is := eng.Ix.Stats()
		st.Succinct.RegionBlocksDecoded += is.RegionBlocksDecoded
		st.Succinct.RegionPrunedNoTouch += is.RegionPrunedNoTouch
		st.Succinct.TemporalSectionsForced += is.TemporalSectionsForced
		st.Succinct.SuccinctBytes += is.SuccinctBytes
	}
	return st
}
