package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"utcq/internal/gen"
)

// TestColdOpenTemporalLaziness pins the v2 scaling property: an eager
// open decodes zero temporal sections regardless of how many records the
// store holds (4x the trajectories, still zero), and a single query
// forces exactly the one section it touches.  This is the counter-level
// assertion behind "cold open no longer scales with temporal-entry
// count" — the open-time work is independent of temporal volume.
func TestColdOpenTemporalLaziness(t *testing.T) {
	for _, n := range []int{30, 120} {
		bc := buildReference(t, gen.CD(), n, 61)
		dir := saveStore(t, buildStore(t, bc, 3, AssignHash))
		s, err := Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
		if err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.SidecarRebuilds != 0 {
			t.Fatalf("n=%d: eager open rebuilt %d sidecars", n, st.SidecarRebuilds)
		}
		if st.Succinct.TemporalSectionsForced != 0 {
			t.Fatalf("n=%d: eager open forced %d temporal sections, want 0", n, st.Succinct.TemporalSectionsForced)
		}
		if st.Succinct.SuccinctBytes == 0 {
			t.Fatalf("n=%d: no resident succinct bytes after a v2 open", n)
		}

		// One Where touches exactly one trajectory's temporal section,
		// independent of store size.
		T := bc.ds.Trajectories[0].T
		if _, err := s.Where(0, (T[0]+T[len(T)-1])/2, 0); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().Succinct.TemporalSectionsForced; got != 1 {
			t.Fatalf("n=%d: one query forced %d temporal sections, want 1", n, got)
		}
	}
}

// TestSidecarV2CorruptionSweepRebuilds sweeps byte flips and truncations
// across a v2 sidecar file: every mutation must be caught (manifest CRC
// or section bounds), silently rebuilt from the archive, and answer the
// full query workload identically to the reference engine.
func TestSidecarV2CorruptionSweepRebuilds(t *testing.T) {
	bc := buildReference(t, gen.CD(), 24, 43)
	dir := saveStore(t, buildStore(t, bc, 2, AssignHash))
	path := filepath.Join(dir, sidecarFile(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(raw[4:]); v != 2 {
		t.Fatalf("persisted sidecar version = %d, want 2", v)
	}

	check := func(t *testing.T, mut []byte) {
		t.Helper()
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
		if err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.SidecarRebuilds != 1 {
			t.Fatalf("rebuilds = %d, want 1 (loads=%d)", st.SidecarRebuilds, st.SidecarLoads)
		}
		checkStoreMatchesEngine(t, bc, s, 47)
	}

	// Byte flips spread across the file: header, temporal directory,
	// bitvector/offset sections, bucket blobs.
	step := len(raw)/6 + 1
	for off := 0; off < len(raw); off += step {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		check(t, mut)
	}
	// Truncations, including mid-directory and mid-blob cuts.
	for _, keep := range []int{0, 10, 35 /* header boundary */, len(raw) / 3, len(raw) - 1} {
		check(t, append([]byte(nil), raw[:keep]...))
	}
}
