package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"utcq/internal/core"
	"utcq/internal/roadnet"
)

// The shard manifest is the store directory's root artifact: it records the
// shard catalogue (ids, kinds, tombstones, bounds), the global→shard
// assignment (the only state that cannot be rederived from the shard
// archives), the index granularity every shard was built with, the dataset
// time span used by load generators and /stats, and — since the store
// became writable — a generation number and the WAL high-water mark that
// make ingestion crash-recoverable.  It is framed with the same
// little-endian field codec as the archive container
// (core.LEWriter/LEReader); docs/FORMAT.md specifies the layout
// normatively.
//
// Version 3 layout (little endian):
//
//	magic "UTCS" | version u16
//	assignment u8
//	generation u64 | walApplied u64
//	gridNX u32 | gridNY u32 | intervalDur i64
//	timeMin i64 | timeMax i64
//	graphHash u64                 (roadnet.Graph.Fingerprint of the build network)
//	nextShardID u32 | numEntries u32
//	entries: numEntries × (id u32 | flags u8 | count u32 | 4 × f64 bounds
//	                       | bytes u64 | sidecarCRC u32)
//	         flags bit0 = delta shard, bit1 = tombstone
//	numTrajs u32
//	shardOf: numTrajs × u32       (global trajectory id → live shard id)
//
// Version 3 added the per-entry archive file length (openShard fails fast
// on a truncated shard file instead of decoding garbage) and the CRC-32
// (IEEE) of the shard's StIU sidecar file; a zero CRC means "no sidecar —
// rebuild the index from the archive".  Versions 1 (the read-only store of
// PR 3) and 2 (the mutable store) are still read; their entries carry
// bytes = 0 (length unknown, not validated) and sidecarCRC = 0.  Writers
// always emit version 3.
const (
	manifestMagic      = "UTCS"
	manifestVersion    = 3
	manifestVersionV2  = 2
	manifestVersionV1  = 1
	entryFlagDelta     = 1 << 0
	entryFlagTombstone = 1 << 1

	// Sanity bounds applied before any count-sized allocation, so a
	// truncated or corrupted manifest fails with a parse error instead of
	// an attempted multi-gigabyte allocation.
	maxManifestShards = 1 << 16
	maxManifestTrajs  = 1 << 28
	maxManifestIDs    = 1 << 24
)

// ManifestName is the manifest's file name inside a store directory.
const ManifestName = "MANIFEST.utcs"

// shardKind distinguishes the two shard populations of a mutable store.
type shardKind uint8

const (
	// kindBase shards come from the initial build or from compaction.
	kindBase shardKind = iota
	// kindDelta shards hold one ingested batch each; the compactor folds
	// them into a base shard.
	kindDelta
)

// shardEntry is one catalogue row of the manifest.  A tombstoned entry
// records a shard that compaction replaced: its file may still exist (old
// readers can reference it) but no trajectory maps to it.
type shardEntry struct {
	id   uint32
	kind shardKind
	dead bool

	// count is the number of trajectories the shard holds (validation
	// against the assignment vector and the shard archive).
	count uint32

	// bounds is a conservative bounding rectangle of the shard's
	// trajectory geometry (union of its StIU region cells).  Range skips
	// shards whose bounds miss the query rectangle — without opening
	// them.  An empty shard has an inverted rectangle (MinX > MaxX).
	bounds roadnet.Rect

	// bytes is the shard archive's exact file length; openShard rejects a
	// file of any other size before decoding.  0 (pre-v3 manifests) skips
	// the check.
	bytes uint64

	// sidecarCRC is the CRC-32 (IEEE) of the shard's StIU sidecar file;
	// openShard decodes the sidecar only when the checksum matches and
	// silently rebuilds the index otherwise.  0 means no sidecar.
	sidecarCRC uint32
}

// manifest is the decoded form.
type manifest struct {
	assignment Assignment

	// generation counts manifest versions: every ingested delta shard and
	// every compaction swaps in a new manifest with generation+1.
	generation uint64

	// walApplied is the number of WAL records already folded into shards;
	// crash recovery re-ingests everything past it (internal/ingest).
	walApplied uint64

	gridNX   int
	gridNY   int
	interval int64
	timeMin  int64
	timeMax  int64

	// graphHash fingerprints the road network the store was built with;
	// Open rejects a mismatching graph.
	graphHash uint64

	// nextID is the next shard id to allocate.  Ids are never reused, so
	// a tombstoned shard's file name can never be mistaken for a live one.
	nextID  uint32
	entries []shardEntry

	// shardOf maps a global trajectory id to the id of the live shard
	// holding it.
	shardOf []uint32
}

// clone returns a deep copy safe to mutate while readers hold the original.
func (m *manifest) clone() *manifest {
	c := *m
	c.entries = append([]shardEntry(nil), m.entries...)
	c.shardOf = append([]uint32(nil), m.shardOf...)
	return &c
}

// liveShards counts the catalogue entries that are not tombstoned.
func (m *manifest) liveShards() int {
	n := 0
	for _, e := range m.entries {
		if !e.dead {
			n++
		}
	}
	return n
}

// write serializes the manifest (always version 3).
func (m *manifest) write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(manifestMagic); err != nil {
		return err
	}
	lw := core.NewLEWriter(bw)
	for _, step := range []error{
		lw.U16(manifestVersion),
		lw.U8(byte(m.assignment)),
		lw.U64(m.generation),
		lw.U64(m.walApplied),
		lw.U32(uint32(m.gridNX)),
		lw.U32(uint32(m.gridNY)),
		lw.I64(m.interval),
		lw.I64(m.timeMin),
		lw.I64(m.timeMax),
		lw.U64(m.graphHash),
		lw.U32(m.nextID),
		lw.U32(uint32(len(m.entries))),
	} {
		if step != nil {
			return step
		}
	}
	for _, e := range m.entries {
		flags := byte(0)
		if e.kind == kindDelta {
			flags |= entryFlagDelta
		}
		if e.dead {
			flags |= entryFlagTombstone
		}
		if err := lw.U32(e.id); err != nil {
			return err
		}
		if err := lw.U8(flags); err != nil {
			return err
		}
		if err := lw.U32(e.count); err != nil {
			return err
		}
		for _, v := range [4]float64{e.bounds.MinX, e.bounds.MinY, e.bounds.MaxX, e.bounds.MaxY} {
			if err := lw.F64(v); err != nil {
				return err
			}
		}
		if err := lw.U64(e.bytes); err != nil {
			return err
		}
		if err := lw.U32(e.sidecarCRC); err != nil {
			return err
		}
	}
	if err := lw.U32(uint32(len(m.shardOf))); err != nil {
		return err
	}
	for _, id := range m.shardOf {
		if err := lw.U32(id); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readManifest decodes and validates a manifest (version 1 or 2).
func readManifest(r io.Reader) (*manifest, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != manifestMagic {
		return nil, errors.New("store: not a UTCQ store manifest")
	}
	lr := core.NewLEReader(br)
	version, err := lr.U16()
	if err != nil {
		return nil, err
	}
	switch version {
	case manifestVersionV1:
		return readManifestV1(lr)
	case manifestVersionV2, manifestVersion:
		return readManifestV2(lr, version)
	}
	return nil, fmt.Errorf("store: unsupported manifest version %d", version)
}

// readManifestV2 decodes the version 2 and 3 layouts (the magic and
// version are already consumed); version 3 entries carry two extra fields.
func readManifestV2(lr *core.LEReader, version uint16) (*manifest, error) {
	m := &manifest{}
	am, err := lr.U8()
	if err != nil {
		return nil, err
	}
	m.assignment = Assignment(am)
	if m.generation, err = lr.U64(); err != nil {
		return nil, err
	}
	if m.walApplied, err = lr.U64(); err != nil {
		return nil, err
	}
	nx, err := lr.U32()
	if err != nil {
		return nil, err
	}
	ny, err := lr.U32()
	if err != nil {
		return nil, err
	}
	m.gridNX, m.gridNY = int(nx), int(ny)
	if m.interval, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.timeMin, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.timeMax, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.graphHash, err = lr.U64(); err != nil {
		return nil, err
	}
	if m.nextID, err = lr.U32(); err != nil {
		return nil, err
	}
	if m.nextID > maxManifestIDs {
		return nil, fmt.Errorf("store: manifest declares next shard id %d (limit %d)", m.nextID, maxManifestIDs)
	}
	ne, err := lr.U32()
	if err != nil {
		return nil, err
	}
	if ne < 1 || ne > maxManifestShards {
		return nil, fmt.Errorf("store: manifest declares %d shard entries (limit %d)", ne, maxManifestShards)
	}
	m.entries = make([]shardEntry, ne)
	seen := make(map[uint32]bool, ne)
	for i := range m.entries {
		e := &m.entries[i]
		if e.id, err = lr.U32(); err != nil {
			return nil, err
		}
		if e.id >= m.nextID {
			return nil, fmt.Errorf("store: shard id %d not below nextShardID %d", e.id, m.nextID)
		}
		if seen[e.id] {
			return nil, fmt.Errorf("store: duplicate shard id %d", e.id)
		}
		seen[e.id] = true
		flags, err := lr.U8()
		if err != nil {
			return nil, err
		}
		if flags&entryFlagDelta != 0 {
			e.kind = kindDelta
		}
		e.dead = flags&entryFlagTombstone != 0
		if e.count, err = lr.U32(); err != nil {
			return nil, err
		}
		var vals [4]float64
		for i := range vals {
			if vals[i], err = lr.F64(); err != nil {
				return nil, err
			}
		}
		e.bounds = roadnet.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if version >= manifestVersion {
			if e.bytes, err = lr.U64(); err != nil {
				return nil, err
			}
			if e.sidecarCRC, err = lr.U32(); err != nil {
				return nil, err
			}
		}
	}
	if m.liveShards() == 0 {
		return nil, errors.New("store: manifest has no live shards")
	}
	nt, err := lr.U32()
	if err != nil {
		return nil, err
	}
	if nt > maxManifestTrajs {
		return nil, fmt.Errorf("store: manifest declares %d trajectories (limit %d)", nt, maxManifestTrajs)
	}
	m.shardOf = make([]uint32, nt)
	counts := make(map[uint32]uint32, len(m.entries))
	live := make(map[uint32]bool, len(m.entries))
	for _, e := range m.entries {
		if !e.dead {
			live[e.id] = true
		}
	}
	for j := range m.shardOf {
		id, err := lr.U32()
		if err != nil {
			return nil, err
		}
		if !live[id] {
			return nil, fmt.Errorf("store: trajectory %d assigned to unknown or tombstoned shard %d", j, id)
		}
		m.shardOf[j] = id
		counts[id]++
	}
	for _, e := range m.entries {
		if e.dead {
			continue
		}
		if got := counts[e.id]; got != e.count {
			return nil, fmt.Errorf("store: shard %d count %d does not match assignment (%d)", e.id, e.count, got)
		}
	}
	return m, nil
}

// readManifestV1 decodes the PR 3 layout into the mutable model: every
// shard becomes a live base entry with id = shard index.
func readManifestV1(lr *core.LEReader) (*manifest, error) {
	m := &manifest{generation: 1}
	am, err := lr.U8()
	if err != nil {
		return nil, err
	}
	m.assignment = Assignment(am)
	ns, err := lr.U32()
	if err != nil {
		return nil, err
	}
	if ns < 1 || ns > maxManifestShards {
		return nil, fmt.Errorf("store: manifest declares %d shards (limit %d)", ns, maxManifestShards)
	}
	nt, err := lr.U32()
	if err != nil {
		return nil, err
	}
	if nt > maxManifestTrajs {
		return nil, fmt.Errorf("store: manifest declares %d trajectories (limit %d)", nt, maxManifestTrajs)
	}
	nx, err := lr.U32()
	if err != nil {
		return nil, err
	}
	ny, err := lr.U32()
	if err != nil {
		return nil, err
	}
	m.gridNX, m.gridNY = int(nx), int(ny)
	if m.interval, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.timeMin, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.timeMax, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.graphHash, err = lr.U64(); err != nil {
		return nil, err
	}
	m.nextID = ns
	m.entries = make([]shardEntry, ns)
	for i := range m.entries {
		m.entries[i] = shardEntry{id: uint32(i), kind: kindBase}
	}
	m.shardOf = make([]uint32, nt)
	counts := make([]uint32, ns)
	for j := range m.shardOf {
		id, err := lr.U32()
		if err != nil {
			return nil, err
		}
		if id >= ns {
			return nil, fmt.Errorf("store: trajectory %d assigned to shard %d of %d", j, id, ns)
		}
		m.shardOf[j] = id
		counts[id]++
	}
	for i := range m.entries {
		var vals [4]float64
		for k := range vals {
			if vals[k], err = lr.F64(); err != nil {
				return nil, err
			}
		}
		m.entries[i].bounds = roadnet.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	}
	for i := range m.entries {
		got, err := lr.U32()
		if err != nil {
			return nil, err
		}
		if got != counts[i] {
			return nil, fmt.Errorf("store: shard %d count %d does not match assignment (%d)", i, got, counts[i])
		}
		m.entries[i].count = got
	}
	return m, nil
}
