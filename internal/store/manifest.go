package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"utcq/internal/core"
	"utcq/internal/roadnet"
)

// The shard manifest is the store directory's root artifact: it records the
// global→shard assignment (the only state that cannot be rederived from the
// shard archives), the index granularity every shard was built with, and
// the dataset time span used by load generators and /stats.  It is framed
// with the same little-endian field codec as the archive container
// (core.LEWriter/LEReader); docs/FORMAT.md specifies the layout
// normatively.
//
// Layout (little endian):
//
//	magic "UTCS" | version u16
//	assignment u8 | numShards u32 | numTrajs u32
//	gridNX u32 | gridNY u32 | intervalDur i64
//	timeMin i64 | timeMax i64
//	graphHash u64                 (roadnet.Graph.Fingerprint of the build network)
//	shardOf: numTrajs × u32
//	shardBounds: numShards × 4 × f64   (minX minY maxX maxY; minX > maxX = empty)
//	shardCount: numShards × u32   (per-shard trajectory counts, validation)
const (
	manifestMagic   = "UTCS"
	manifestVersion = 1

	// Sanity bounds applied before any count-sized allocation, so a
	// truncated or corrupted manifest fails with a parse error instead of
	// an attempted multi-gigabyte allocation.
	maxManifestShards = 1 << 16
	maxManifestTrajs  = 1 << 28
)

// ManifestName is the manifest's file name inside a store directory.
const ManifestName = "MANIFEST.utcs"

// manifest is the decoded form.
type manifest struct {
	assignment Assignment
	numShards  int
	shardOf    []uint32
	gridNX     int
	gridNY     int
	interval   int64
	timeMin    int64
	timeMax    int64

	// graphHash fingerprints the road network the store was built with;
	// Open rejects a mismatching graph.
	graphHash uint64

	// shardBounds[si] is a conservative bounding rectangle of shard si's
	// trajectory geometry (union of its StIU region cells).  Range skips
	// shards whose bounds miss the query rectangle — without opening
	// them.  An empty shard has an inverted rectangle (MinX > MaxX).
	shardBounds []roadnet.Rect
}

// write serializes the manifest.
func (m *manifest) write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(manifestMagic); err != nil {
		return err
	}
	lw := core.NewLEWriter(bw)
	if err := lw.U16(manifestVersion); err != nil {
		return err
	}
	if err := lw.U8(byte(m.assignment)); err != nil {
		return err
	}
	if err := lw.U32(uint32(m.numShards)); err != nil {
		return err
	}
	if err := lw.U32(uint32(len(m.shardOf))); err != nil {
		return err
	}
	if err := lw.U32(uint32(m.gridNX)); err != nil {
		return err
	}
	if err := lw.U32(uint32(m.gridNY)); err != nil {
		return err
	}
	if err := lw.I64(m.interval); err != nil {
		return err
	}
	if err := lw.I64(m.timeMin); err != nil {
		return err
	}
	if err := lw.I64(m.timeMax); err != nil {
		return err
	}
	if err := lw.U64(m.graphHash); err != nil {
		return err
	}
	counts := make([]uint32, m.numShards)
	for _, si := range m.shardOf {
		if err := lw.U32(si); err != nil {
			return err
		}
		counts[si]++
	}
	if len(m.shardBounds) != m.numShards {
		return fmt.Errorf("store: %d shard bounds for %d shards", len(m.shardBounds), m.numShards)
	}
	for _, b := range m.shardBounds {
		for _, v := range [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY} {
			if err := lw.F64(v); err != nil {
				return err
			}
		}
	}
	for _, c := range counts {
		if err := lw.U32(c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readManifest decodes and validates a manifest.
func readManifest(r io.Reader) (*manifest, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != manifestMagic {
		return nil, errors.New("store: not a UTCQ store manifest")
	}
	lr := core.NewLEReader(br)
	version, err := lr.U16()
	if err != nil {
		return nil, err
	}
	if version != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", version)
	}
	m := &manifest{}
	am, err := lr.U8()
	if err != nil {
		return nil, err
	}
	m.assignment = Assignment(am)
	ns, err := lr.U32()
	if err != nil {
		return nil, err
	}
	if ns < 1 || ns > maxManifestShards {
		return nil, fmt.Errorf("store: manifest declares %d shards (limit %d)", ns, maxManifestShards)
	}
	m.numShards = int(ns)
	nt, err := lr.U32()
	if err != nil {
		return nil, err
	}
	if nt > maxManifestTrajs {
		return nil, fmt.Errorf("store: manifest declares %d trajectories (limit %d)", nt, maxManifestTrajs)
	}
	nx, err := lr.U32()
	if err != nil {
		return nil, err
	}
	ny, err := lr.U32()
	if err != nil {
		return nil, err
	}
	m.gridNX, m.gridNY = int(nx), int(ny)
	if m.interval, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.timeMin, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.timeMax, err = lr.I64(); err != nil {
		return nil, err
	}
	if m.graphHash, err = lr.U64(); err != nil {
		return nil, err
	}
	m.shardOf = make([]uint32, nt)
	counts := make([]uint32, m.numShards)
	for j := range m.shardOf {
		si, err := lr.U32()
		if err != nil {
			return nil, err
		}
		if int(si) >= m.numShards {
			return nil, fmt.Errorf("store: trajectory %d assigned to shard %d of %d", j, si, m.numShards)
		}
		m.shardOf[j] = si
		counts[si]++
	}
	m.shardBounds = make([]roadnet.Rect, m.numShards)
	for si := range m.shardBounds {
		var vals [4]float64
		for i := range vals {
			if vals[i], err = lr.F64(); err != nil {
				return nil, err
			}
		}
		m.shardBounds[si] = roadnet.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	}
	for si, want := range counts {
		got, err := lr.U32()
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, fmt.Errorf("store: shard %d count %d does not match assignment (%d)", si, got, want)
		}
	}
	return m, nil
}
