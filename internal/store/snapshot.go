// Streaming read support: generation-pinned snapshots over retained
// views, and a change signal that watch subscriptions block on.
//
// Every mutation already builds a complete immutable view and swaps it in
// atomically; this file keeps the previous view alive for one generation
// (mirroring the on-disk contract, where files tombstoned in generation N
// are deleted only by generation N+1's compaction) so a reader can pin
// "the store as of generation N" while N+1 is being served — snapshot
// isolation with bounded retention.  Incremental re-evaluation for watch
// subscriptions rides on shard-id monotonicity: ids are never reused, so
// every trajectory that joined the result set after generation G lives in
// a shard with id >= the nextID watermark recorded at G, and re-scanning
// only those shards (bounds pruning included) plus a set union with what
// the subscriber already holds reproduces the full query exactly.
package store

import (
	"errors"
	"fmt"

	"utcq/internal/query"
	"utcq/internal/roadnet"
)

// viewRetention is how many previous generations stay pinnable.  It is
// deliberately exactly one, matching the deferred tombstone GC (a file
// tombstoned in generation N survives until the next compaction): the
// retained view's shards are therefore always either resident or still on
// disk, so pinned queries never chase deleted files.
const viewRetention = 1

// ErrGenerationRetired reports a pin on a generation older than the
// retention window: the view (and possibly its shard files) is gone.
// Servers map it to 410 Gone — the client must re-query at the current
// generation, not retry.
var ErrGenerationRetired = errors.New("store: generation retired")

// ErrGenerationUnknown reports a pin on a generation the store has not
// reached — a client mistake or a store rebuilt from older data.
var ErrGenerationUnknown = errors.New("store: generation unknown")

// genSignal pairs a generation number with a channel that closes when
// that generation stops being current.  Watchers load it, compare
// generations, and block on the channel only when nothing changed yet.
type genSignal struct {
	gen uint64
	ch  chan struct{}
}

// swap publishes nv as the current view: the old view retires into the
// retention ring (generation-pinned readers), and the generation signal
// rolls over, waking every blocked watcher.  Callers hold s.mu (Build and
// Open call it before the store escapes, which is just as safe).
func (s *Store) swap(nv *view) {
	if old := s.v.Load(); old != nil {
		var ring []*view
		if p := s.retained.Load(); p != nil {
			ring = *p
		}
		ring = append(append([]*view(nil), ring...), old)
		if len(ring) > viewRetention {
			ring = ring[len(ring)-viewRetention:]
		}
		s.retained.Store(&ring)
	}
	s.v.Store(nv)
	sig := &genSignal{gen: nv.man.generation, ch: make(chan struct{})}
	if old := s.sig.Swap(sig); old != nil {
		close(old.ch)
	}
}

// GenerationChanged returns the current generation and a channel that
// closes when it is superseded.  The pattern for a watcher:
//
//	gen, ch := st.GenerationChanged()
//	if gen > lastSeen { evaluate() } else { select { case <-ch: ... } }
//
// The channel close only signals "reload and re-check": by the time a
// watcher runs, more generations may have passed — which is exactly what
// incremental re-evaluation absorbs.
func (s *Store) GenerationChanged() (uint64, <-chan struct{}) {
	sig := s.sig.Load()
	return sig.gen, sig.ch
}

// Snapshot is an immutable read handle on one generation of the store.
// All its queries answer exactly as the whole store did at that
// generation, regardless of concurrent mutations.  A snapshot is a cheap
// pair of pointers — take one per request, do not hoard them (a held
// snapshot pins its view's engines in memory, though never against
// correctness).
type Snapshot struct {
	s *Store
	v *view
}

// Snapshot returns a handle on the current generation.
func (s *Store) Snapshot() Snapshot {
	return Snapshot{s: s, v: s.v.Load()}
}

// SnapshotAt returns a handle pinned to generation gen: the current
// generation, or a retained previous one.  Pins older than the retention
// window fail with ErrGenerationRetired (HTTP 410); pins beyond the
// current generation with ErrGenerationUnknown (HTTP 404).
func (s *Store) SnapshotAt(gen uint64) (Snapshot, error) {
	cur := s.v.Load()
	if gen == cur.man.generation {
		return Snapshot{s: s, v: cur}, nil
	}
	if gen > cur.man.generation {
		return Snapshot{}, fmt.Errorf("%w: %d is beyond current generation %d", ErrGenerationUnknown, gen, cur.man.generation)
	}
	if p := s.retained.Load(); p != nil {
		for i := len(*p) - 1; i >= 0; i-- {
			if v := (*p)[i]; v.man.generation == gen {
				return Snapshot{s: s, v: v}, nil
			}
		}
	}
	return Snapshot{}, fmt.Errorf("%w: generation %d is older than the %d retained (current %d)",
		ErrGenerationRetired, gen, viewRetention, cur.man.generation)
}

// Generation returns the snapshot's manifest generation.
func (sn Snapshot) Generation() uint64 { return sn.v.man.generation }

// ShardWatermark returns the snapshot's next-shard-id high-water mark.
// Shard ids are never reused, so every shard added by any LATER
// generation has an id >= this watermark — the resume cursor for
// incremental watch re-evaluation (Snapshot.RangeSince).
func (sn Snapshot) ShardWatermark() uint32 { return sn.v.man.nextID }

// NumTrajectories returns the snapshot's global trajectory count.
func (sn Snapshot) NumTrajectories() int { return len(sn.v.man.shardOf) }

// Where answers the probabilistic where query at this generation.
func (sn Snapshot) Where(j int, t int64, alpha float64) ([]query.WhereResult, error) {
	eng, local, err := sn.s.locate(sn.v, j)
	if err != nil {
		return nil, err
	}
	return eng.Where(local, t, alpha)
}

// When answers the probabilistic when query at this generation.
func (sn Snapshot) When(j int, loc roadnet.Position, alpha float64) ([]query.WhenResult, error) {
	eng, local, err := sn.s.locate(sn.v, j)
	if err != nil {
		return nil, err
	}
	return eng.When(local, loc, alpha)
}

// Range answers the probabilistic range query at this generation.
func (sn Snapshot) Range(re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	out, _, err := sn.s.rangeView(sn.v, re, t, alpha, false, 0)
	return out, err
}

// RangeDegraded is Range with quarantined shards skipped; the second
// return value counts the shards not consulted (see Store.RangeDegraded).
func (sn Snapshot) RangeDegraded(re roadnet.Rect, t int64, alpha float64) ([]int, int, error) {
	return sn.s.rangeView(sn.v, re, t, alpha, true, 0)
}

// RangeSince answers the range query consulting only shards with id >=
// since (a ShardWatermark taken at an earlier generation): the
// trajectories that could have ENTERED the result set after that
// generation.  Because accepted trajectories never change or leave —
// data is immutable; compaction only moves records into new shards with
// higher ids, whose rescan re-reports them — the union of a full Range at
// generation G and RangeSince(watermark(G)) at generation H > G equals
// the full Range at H.  TestWatchMatchesFullRequery pins this identity
// under live ingest and compaction.
func (sn Snapshot) RangeSince(since uint32, re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	out, _, err := sn.s.rangeView(sn.v, re, t, alpha, false, since)
	return out, err
}
