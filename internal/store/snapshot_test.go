package store

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"utcq/internal/gen"
)

// snapshotFixture builds a 40-trajectory dataset with 16 in the base build
// and the rest available for delta batches.
func snapshotFixture(t *testing.T) (*gen.Dataset, *Store) {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	s, err := Build(ds.Graph, ds.Trajectories[:16], opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, s
}

// TestSnapshotPinsGeneration is the snapshot-isolation property: a handle
// taken (or pinned via SnapshotAt) before a mutation keeps answering
// exactly as the store did at that generation, while the live store moves
// on — and pins outside the retention window fail with the typed errors
// the server maps to 410/404.
func TestSnapshotPinsGeneration(t *testing.T) {
	ds, s := snapshotFixture(t)
	tus := ds.Trajectories
	rng := rand.New(rand.NewSource(21))

	snap1 := s.Snapshot()
	if snap1.Generation() != 1 {
		t.Fatalf("fresh snapshot at generation %d, want 1", snap1.Generation())
	}
	// Fix a query workload and capture its answers at generation 1.
	queries := make([]func(sn Snapshot) ([]int, error), 0, 8)
	res1 := make([][]int, 0, 8)
	for i := 0; i < 8; i++ {
		re := randomRect(ds.Graph, rng)
		tq := tus[i].T[0]
		alpha := []float64{0, 0.2}[i%2]
		q := func(sn Snapshot) ([]int, error) { return sn.Range(re, tq, alpha) }
		queries = append(queries, q)
		got, err := q(snap1)
		if err != nil {
			t.Fatal(err)
		}
		res1 = append(res1, got)
	}

	if _, err := s.ApplyDelta(tus[16:28], 28); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation %d after delta, want 2", got)
	}

	// The held handle and a fresh pin both still answer at generation 1.
	pin1, err := s.SnapshotAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap1.NumTrajectories() != 16 || pin1.NumTrajectories() != 16 {
		t.Fatalf("pinned snapshots see %d/%d trajectories, want 16", snap1.NumTrajectories(), pin1.NumTrajectories())
	}
	for i, q := range queries {
		for _, sn := range []Snapshot{snap1, pin1} {
			got, err := q(sn)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 || len(res1[i]) != 0 {
				if !reflect.DeepEqual(got, res1[i]) {
					t.Fatalf("query %d at pinned gen 1: %v, want %v", i, got, res1[i])
				}
			}
		}
	}
	// Pinned single-trajectory queries reject ids born after the pin.
	if _, err := pin1.Where(20, tus[20].T[0], 0.2); !errors.Is(err, ErrUnknownTrajectory) {
		t.Fatalf("pinned Where on a later trajectory: %v, want ErrUnknownTrajectory", err)
	}
	if _, err := s.Where(20, tus[20].T[0], 0.2); err != nil {
		t.Fatalf("live Where on the same trajectory: %v", err)
	}

	// Retention bounds: beyond-current is unknown; behind-retention is
	// retired once generation 3 arrives.
	if _, err := s.SnapshotAt(99); !errors.Is(err, ErrGenerationUnknown) {
		t.Fatalf("SnapshotAt(99): %v, want ErrGenerationUnknown", err)
	}
	if _, err := s.ApplyDelta(tus[28:40], 40); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SnapshotAt(1); !errors.Is(err, ErrGenerationRetired) {
		t.Fatalf("SnapshotAt(1) at generation 3: %v, want ErrGenerationRetired", err)
	}
	pin2, err := s.SnapshotAt(2)
	if err != nil || pin2.NumTrajectories() != 28 {
		t.Fatalf("SnapshotAt(2): %v (n=%d), want 28 trajectories", err, pin2.NumTrajectories())
	}
	// The long-held gen-1 handle still works even though it is no longer
	// pinnable: retention bounds SnapshotAt, not live handles.
	if got, err := queries[0](snap1); err != nil || !reflect.DeepEqual(got, res1[0]) && (len(got) != 0 || len(res1[0]) != 0) {
		t.Fatalf("held gen-1 handle after retirement: %v, %v", got, err)
	}
}

// TestRangeSinceIncremental pins the union identity watch subscriptions
// rely on: a full Range at generation G plus RangeSince(watermark(G)) at
// every later generation reproduces the later generation's full Range —
// across delta applies AND compactions (whose rescan of moved records the
// union must absorb, not double-count).
func TestRangeSinceIncremental(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		ds, s := snapshotFixture(t)
		tus := ds.Trajectories
		rng := rand.New(rand.NewSource(33 + int64(trial)))
		re := randomRect(ds.Graph, rng)
		tq := tus[rng.Intn(16)].T[0]
		alpha := []float64{0, 0.2, 0.4}[trial%3]

		snap := s.Snapshot()
		full, err := snap.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		have := map[int]bool{}
		for _, j := range full {
			have[j] = true
		}
		cursor := snap.ShardWatermark()

		step := func(mutate func() error) {
			t.Helper()
			if err := mutate(); err != nil {
				t.Fatal(err)
			}
			snap = s.Snapshot()
			added, err := snap.RangeSince(cursor, re, tq, alpha)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range added {
				have[j] = true
			}
			cursor = snap.ShardWatermark()
			want, err := snap.Range(re, tq, alpha)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int, 0, len(have))
			for j := range have {
				got = append(got, j)
			}
			sort.Ints(got)
			if len(got) != 0 || len(want) != 0 {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d gen %d: incremental union %v != full range %v", trial, snap.Generation(), got, want)
				}
			}
		}

		step(func() error { _, err := s.ApplyDelta(tus[16:28], 28); return err })
		step(func() error { _, err := s.ApplyDelta(tus[28:40], 40); return err })
		step(func() error { _, err := s.Compact(); return err })
		step(func() error { _, err := s.Compact(); return err }) // no-op compact
	}
}

// TestGenerationChanged pins the signal contract: the channel returned
// before a mutation closes when the mutation lands, and a reload then
// observes the advanced generation.
func TestGenerationChanged(t *testing.T) {
	ds, s := snapshotFixture(t)
	gen0, ch := s.GenerationChanged()
	if gen0 != 1 {
		t.Fatalf("initial generation %d, want 1", gen0)
	}
	select {
	case <-ch:
		t.Fatal("signal fired before any mutation")
	default:
	}
	if _, err := s.ApplyDelta(ds.Trajectories[16:20], 20); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("signal did not fire after ApplyDelta")
	}
	if gen1, _ := s.GenerationChanged(); gen1 != 2 {
		t.Fatalf("generation %d after delta, want 2", gen1)
	}
}
