package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"utcq/internal/faultfs"
	"utcq/internal/faultfs/crashmatrix"
	"utcq/internal/gen"
	"utcq/internal/query"
)

// crashMatrixFullEnv opts into the exhaustive sweep (every crash point on
// every profile); the default run strides the CD/HZ matrices so the suite
// stays fast.
const crashMatrixFullEnv = "UTCQ_CRASHMATRIX_FULL"

// crashPoints returns the per-profile point cap: DK always sweeps every
// point, the other profiles stride unless the full sweep is requested.
func crashPoints(profile string) int {
	if profile == "DK" || os.Getenv(crashMatrixFullEnv) == "1" {
		return 0
	}
	return 24
}

// TestStoreCrashMatrix enumerates a crash after every mutating filesystem
// operation of a Save → ApplyDelta → Compact → ApplyDelta → Compact
// sequence and asserts, at each point, that the reopened store is one
// complete generation: the manifest opens, every referenced shard opens
// eagerly, the trajectory count matches the generation's population, and
// every trajectory answers queries — no partial generation, no panic.
func TestStoreCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a long test")
	}
	for _, p := range gen.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			p.Network.Cols, p.Network.Rows = 16, 16
			ds, err := gen.Build(p, 12, 41)
			if err != nil {
				t.Fatal(err)
			}
			g, tus := ds.Graph, ds.Trajectories
			base, batchA, batchB := tus[:4], tus[4:8], tus[8:12]

			// Expected population after each durable generation: mutations
			// commit through the manifest rename, so recovery must land on
			// exactly one of these states.
			popByGen := map[uint64]int{1: 4, 2: 8, 3: 8, 4: 12, 5: 12}

			buildOpts := DefaultOptions(p.Ts)
			buildOpts.NumShards = 2
			buildOpts.Index = testIndexOpts
			buildOpts.Parallelism = 1

			w := crashmatrix.Workload{
				Name: "store-mutate-" + p.Name,
				Setup: func(fs faultfs.FS) error {
					opts := buildOpts
					opts.FS = fs
					st, err := Build(g, base, opts)
					if err != nil {
						return err
					}
					return st.Save("store")
				},
				Run: func(fs faultfs.FS) error {
					st, err := Open("store", g, OpenOptions{FS: fs, Eager: true, Parallelism: 1})
					if err != nil {
						return err
					}
					if _, err := st.ApplyDelta(batchA, 1); err != nil {
						return err
					}
					if _, err := st.Compact(); err != nil {
						return err
					}
					if _, err := st.ApplyDelta(batchB, 2); err != nil {
						return err
					}
					_, err = st.Compact()
					return err
				},
				Verify: func(mem *faultfs.MemFS, pt crashmatrix.Point) error {
					st, err := Open("store", g, OpenOptions{FS: mem, Eager: true, Parallelism: 1})
					if err != nil {
						return fmt.Errorf("reopen (durable: %v): %w", mem.DurableNames(), err)
					}
					want, ok := popByGen[st.Generation()]
					if !ok {
						return fmt.Errorf("recovered into unknown generation %d", st.Generation())
					}
					if got := st.NumTrajectories(); got != want {
						return fmt.Errorf("generation %d holds %d trajectories, want %d", st.Generation(), got, want)
					}
					for j := 0; j < want; j++ {
						if _, err := st.Where(j, tus[j].T[0], 0.3); err != nil {
							return fmt.Errorf("where(%d) at generation %d: %w", j, st.Generation(), err)
						}
					}
					if _, err := st.Range(g.Bounds(), tus[0].T[0], 0.15); err != nil {
						return fmt.Errorf("range at generation %d: %w", st.Generation(), err)
					}
					return nil
				},
			}
			res, err := crashmatrix.Run(w, crashmatrix.Options{
				TornBytes: []int{0, 7},
				MaxPoints: crashPoints(p.Name),
				Faults:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d mutating ops, %d matrix points", p.Name, res.Ops, res.Points)
		})
	}
}

// TestSidecarPartialWriteRebuilds truncates a shard's persisted StIU
// sidecar to every possible prefix length (and corrupts single bytes) and
// requires each damaged store to open silently — the index is rebuilt
// from the archive, queries match the intact store exactly, and the
// rebuild is visible only in the stats counters.
func TestSidecarPartialWriteRebuilds(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 16, 16
	ds, err := gen.Build(p, 4, 53)
	if err != nil {
		t.Fatal(err)
	}
	g, tus := ds.Graph, ds.Trajectories

	opts := DefaultOptions(p.Ts)
	opts.NumShards = 1
	opts.Index = testIndexOpts
	st, err := Build(g, tus, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, sidecarFile(0))
	intact, err := os.ReadFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(intact) == 0 {
		t.Fatal("sidecar is empty; the test cannot exercise prefixes")
	}

	type result struct {
		where [][]query.WhereResult
	}
	query := func(t *testing.T, dir string, wantRebuild bool) result {
		t.Helper()
		s, err := Open(dir, g, OpenOptions{Eager: true})
		if err != nil {
			t.Fatalf("open with damaged sidecar must succeed: %v", err)
		}
		var res result
		for j := range tus {
			wr, err := s.Where(j, tus[j].T[0], 0.3)
			if err != nil {
				t.Fatal(err)
			}
			res.where = append(res.where, wr)
		}
		stats := s.Stats()
		if wantRebuild && stats.SidecarRebuilds == 0 {
			t.Fatalf("expected a silent sidecar rebuild, stats: loads=%d rebuilds=%d", stats.SidecarLoads, stats.SidecarRebuilds)
		}
		if !wantRebuild && stats.SidecarRebuilds != 0 {
			t.Fatalf("intact sidecar should load, not rebuild (loads=%d rebuilds=%d)", stats.SidecarLoads, stats.SidecarRebuilds)
		}
		return res
	}
	want := query(t, dir, false)

	damage := func(t *testing.T, name string, content []byte) {
		t.Helper()
		ddir := t.TempDir()
		for _, f := range []string{ManifestName, shardFile(0)} {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(ddir, f), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if content != nil {
			if err := os.WriteFile(filepath.Join(ddir, sidecarFile(0)), content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got := query(t, ddir, true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: rebuilt index answers differently", name)
		}
	}

	// Every torn prefix a crashed sidecar write could leave behind.
	for n := 0; n < len(intact); n++ {
		damage(t, fmt.Sprintf("prefix-%d", n), intact[:n])
	}
	// A missing sidecar (crash before the rename) and bit rot.
	damage(t, "missing", nil)
	for _, i := range []int{0, len(intact) / 2, len(intact) - 1} {
		flipped := append([]byte(nil), intact...)
		flipped[i] ^= 0x40
		damage(t, fmt.Sprintf("flip-%d", i), flipped)
	}
}
