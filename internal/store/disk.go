package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"utcq/internal/core"
	"utcq/internal/par"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// shardFile returns the archive file name of the shard with the given id.
// Ids are never reused, so a name can never refer to two different shard
// populations across generations.
func shardFile(id uint32) string { return fmt.Sprintf("shard-%04d.utcq", id) }

// writeFileAtomic writes a file via a temporary sibling and renames it into
// place, fsyncing the file first, so a crash mid-write can never leave a
// half-written artifact under the final name.  The directory entry is
// synced best-effort (rename durability).
func writeFileAtomic(dir, name string, write func(io.Writer) error) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some platforms cannot sync directories.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// writeShardFile persists one shard archive atomically.
func writeShardFile(dir string, id uint32, arch *core.Archive) error {
	if err := writeFileAtomic(dir, shardFile(id), arch.Save); err != nil {
		return fmt.Errorf("store: save shard %d: %w", id, err)
	}
	return nil
}

// writeManifestFile persists the manifest atomically.  Because readers
// resolve every shard through the manifest, the rename is the commit point
// of a mutation: before it they see the previous generation, after it the
// new one, never a mixture.
func writeManifestFile(dir string, man *manifest) error {
	if err := writeFileAtomic(dir, ManifestName, man.write); err != nil {
		return fmt.Errorf("store: save manifest: %w", err)
	}
	return nil
}

// Save writes the store to dir — every live shard plus the manifest, each
// through an atomic write — and binds the store to the directory: later
// ApplyDelta and Compact calls persist their mutations there.  Every live
// shard must be resident (a freshly built store always is; a lazily
// opened store round-trips only after every shard has been touched);
// residency is verified up front so a failed Save does not leave a
// partial store directory behind.
func (s *Store) Save(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.v.Load()
	type item struct {
		id  uint32
		eng *query.Engine
	}
	var items []item
	for _, sh := range v.shards {
		if sh == nil {
			continue
		}
		eng := sh.eng.Load()
		if eng == nil {
			return fmt.Errorf("store: cannot save: shard %d not resident", sh.id)
		}
		items = append(items, item{sh.id, eng})
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, it := range items {
		if err := writeShardFile(dir, it.id, it.eng.Arch); err != nil {
			return err
		}
	}
	if err := writeManifestFile(dir, v.man); err != nil {
		return err
	}
	s.dir.Store(&dir)
	return nil
}

// OpenOptions configure a store opened from disk.
type OpenOptions struct {
	// Engine is the per-shard query-engine cache budget.
	Engine query.EngineOptions
	// Core are the compression parameters for delta shards built by
	// ApplyDelta.  The zero value derives them from the first live shard's
	// archive on first use (the container persists them); only an empty
	// store needs them set explicitly before ingestion.
	Core core.Options
	// Parallelism bounds the per-shard index rebuild and the Range
	// scatter pool (<1: one worker per CPU).
	Parallelism int
	// Eager opens every shard immediately instead of on first use.
	Eager bool
}

// Open reads a store directory written by Save (or grown by ApplyDelta /
// Compact) and attaches the road network (which, as with core.Load, is not
// serialized).  Only the manifest is read up front: each shard's archive
// is loaded — and its StIU index rebuilt at the granularity the manifest
// records — on the first query that touches it, unless opts.Eager is set.
func Open(dir string, g *roadnet.Graph, opts OpenOptions) (*Store, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	man, err := readManifest(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if got := g.Fingerprint(); got != man.graphHash {
		return nil, fmt.Errorf("store: road network fingerprint %016x does not match manifest %016x: the store was built against a different network", got, man.graphHash)
	}
	// Mirror Build's nested-pool guard: when the Range scatter pool fans
	// out across shards, lazily triggered index rebuilds run serially
	// inside it instead of spawning workers² goroutines.
	ixPar := opts.Parallelism
	if man.liveShards() > 1 && par.Workers(opts.Parallelism) > 1 {
		ixPar = 1
	}
	s := &Store{
		graph: g,
		opts: Options{
			NumShards:   man.liveShards(),
			Assignment:  man.assignment,
			Core:        opts.Core,
			Index:       stiu.Options{GridNX: man.gridNX, GridNY: man.gridNY, IntervalDur: man.interval, Parallelism: ixPar},
			Engine:      opts.Engine,
			Parallelism: opts.Parallelism,
		},
	}
	s.dir.Store(&dir)
	v := newView(man, buildShards(man))
	s.v.Store(v)
	if opts.Eager {
		// Fan the cold start out across shards (each rebuild stays serial
		// inside — the same shape as Build).
		err := par.Do(par.Workers(opts.Parallelism), len(v.shards), func(slot int) error {
			if v.shards[slot] == nil {
				return nil
			}
			_, err := s.engine(v, slot)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openShard loads a shard's archive from the store directory and rebuilds
// its StIU index.  Callers hold the shard lock.
func (s *Store) openShard(sh *shard) (*query.Engine, error) {
	f, err := os.Open(filepath.Join(s.dirPath(), shardFile(sh.id)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	arch, err := core.Load(f, s.graph)
	if err != nil {
		return nil, err
	}
	if got, want := len(arch.Trajs), len(sh.globals); got != want {
		return nil, fmt.Errorf("%d trajectories on disk, manifest says %d", got, want)
	}
	ix, err := stiu.Build(arch, s.indexOptions())
	if err != nil {
		return nil, err
	}
	return query.NewEngineWithOptions(arch, ix, s.opts.Engine), nil
}
