package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"runtime"
	"time"

	"utcq/internal/core"
	"utcq/internal/faultfs"
	"utcq/internal/mmapio"
	"utcq/internal/par"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// shardFile returns the archive file name of the shard with the given id.
// Ids are never reused, so a name can never refer to two different shard
// populations across generations.
func shardFile(id uint32) string { return fmt.Sprintf("shard-%04d.utcq", id) }

// sidecarFile returns the StIU sidecar file name of a shard (FORMAT.md §5).
func sidecarFile(id uint32) string { return fmt.Sprintf("shard-%04d.stiu", id) }

// writeFileAtomic writes a file via a temporary sibling and renames it into
// place, fsyncing the file first, so a crash mid-write can never leave a
// half-written artifact under the final name.  The directory is fsynced
// after the rename and the error PROPAGATED: until the directory entry is
// durable the rename is not — a power cut after a swallowed dir-sync
// failure could reboot into the old file (or no file), orphaning a
// manifest the caller believed committed.
func writeFileAtomic(fs faultfs.FS, dir, name string, write func(io.Writer) error) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("sync %s after renaming %s: %w", dir, name, err)
	}
	return nil
}

// countingWriter tracks how many bytes passed through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeShardFile persists one shard archive atomically and returns its
// exact length, which the manifest records for open-time validation.
func writeShardFile(fs faultfs.FS, dir string, id uint32, arch *core.Archive) (int64, error) {
	var size int64
	err := writeFileAtomic(fs, dir, shardFile(id), func(w io.Writer) error {
		cw := &countingWriter{w: w}
		if err := arch.Save(cw); err != nil {
			return err
		}
		size = cw.n
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: save shard %d: %w", id, err)
	}
	return size, nil
}

// writeShardArtifacts persists a shard's archive and its StIU sidecar and
// returns the archive length plus the sidecar checksum for the manifest
// entry.  The sidecar is an optimization, never a source of truth: if the
// index cannot be encoded the shard is still durable and openers rebuild.
func writeShardArtifacts(fs faultfs.FS, dir string, id uint32, arch *core.Archive, ix *stiu.Index) (uint64, uint32, error) {
	size, err := writeShardFile(fs, dir, id, arch)
	if err != nil {
		return 0, 0, err
	}
	enc, err := ix.EncodeSidecar(size)
	if err != nil {
		return uint64(size), 0, fmt.Errorf("store: encode sidecar %d: %w", id, err)
	}
	err = writeFileAtomic(fs, dir, sidecarFile(id), func(w io.Writer) error {
		_, werr := w.Write(enc)
		return werr
	})
	if err != nil {
		return 0, 0, fmt.Errorf("store: save sidecar %d: %w", id, err)
	}
	return uint64(size), crc32.ChecksumIEEE(enc), nil
}

// writeManifestFile persists the manifest atomically.  Because readers
// resolve every shard through the manifest, the rename is the commit point
// of a mutation: before it they see the previous generation, after it the
// new one, never a mixture.
func writeManifestFile(fs faultfs.FS, dir string, man *manifest) error {
	if err := writeFileAtomic(fs, dir, ManifestName, man.write); err != nil {
		return fmt.Errorf("store: save manifest: %w", err)
	}
	return nil
}

// Save writes the store to dir — every live shard plus the manifest, each
// through an atomic write — and binds the store to the directory: later
// ApplyDelta and Compact calls persist their mutations there.  Every live
// shard must be resident (a freshly built store always is; a lazily
// opened store round-trips only after every shard has been touched);
// residency is verified up front so a failed Save does not leave a
// partial store directory behind.
func (s *Store) Save(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.v.Load()
	type item struct {
		slot int
		eng  *query.Engine
	}
	var items []item
	for slot, sh := range v.shards {
		if sh == nil {
			continue
		}
		eng := sh.eng.Load()
		if eng == nil {
			return fmt.Errorf("store: cannot save: shard %d not resident", sh.id)
		}
		items = append(items, item{slot, eng})
	}
	if err := s.fsys().MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// The written manifest records each shard's file length and sidecar
	// checksum, so the catalogue entries are filled on a copy and swapped
	// in with the directory binding.
	man := v.man.clone()
	for _, it := range items {
		id := man.entries[it.slot].id
		nbytes, crc, err := writeShardArtifacts(s.fsys(), dir, id, it.eng.Arch, it.eng.Ix)
		if err != nil {
			return err
		}
		man.entries[it.slot].bytes = nbytes
		man.entries[it.slot].sidecarCRC = crc
	}
	if err := writeManifestFile(s.fsys(), dir, man); err != nil {
		return err
	}
	s.swap(newView(man, v.shards))
	s.dir.Store(&dir)
	return nil
}

// OpenOptions configure a store opened from disk.
type OpenOptions struct {
	// Engine is the per-shard query-engine cache budget.
	Engine query.EngineOptions
	// Core are the compression parameters for delta shards built by
	// ApplyDelta.  The zero value derives them from the first live shard's
	// archive on first use (the container persists them); only an empty
	// store needs them set explicitly before ingestion.
	Core core.Options
	// Parallelism bounds the per-shard index rebuild and the Range
	// scatter pool (<1: one worker per CPU).
	Parallelism int
	// Eager opens every shard immediately instead of on first use.
	Eager bool
	// FS is the filesystem the store reads and persists through (nil:
	// the real filesystem).  Fault-injection tests substitute
	// faultfs.MemFS/Injector here.
	FS faultfs.FS
	// QuarantineBackoff overrides the initial retry delay after a shard
	// open fails (0: the 1s default).  The delay doubles per consecutive
	// failure up to 60× the base.
	QuarantineBackoff time.Duration
}

// Open reads a store directory written by Save (or grown by ApplyDelta /
// Compact) and attaches the road network (which, as with core.Load, is not
// serialized).  Only the manifest is read up front: each shard's archive
// is memory-mapped — and its StIU index decoded from the checksummed
// sidecar, or rebuilt when the sidecar is missing or stale — on the first
// query that touches it, unless opts.Eager is set.
func Open(dir string, g *roadnet.Graph, opts OpenOptions) (*Store, error) {
	fsys := faultfs.Resolve(opts.FS)
	f, err := fsys.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	man, err := readManifest(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if got := g.Fingerprint(); got != man.graphHash {
		return nil, fmt.Errorf("store: road network fingerprint %016x does not match manifest %016x: the store was built against a different network", got, man.graphHash)
	}
	// Mirror Build's nested-pool guard: when the Range scatter pool fans
	// out across shards, lazily triggered index rebuilds run serially
	// inside it instead of spawning workers² goroutines.
	ixPar := opts.Parallelism
	if man.liveShards() > 1 && par.Workers(opts.Parallelism) > 1 {
		ixPar = 1
	}
	s := &Store{
		graph: g,
		fs:    opts.FS,
		opts: Options{
			NumShards:   man.liveShards(),
			Assignment:  man.assignment,
			Core:        opts.Core,
			Index:       stiu.Options{GridNX: man.gridNX, GridNY: man.gridNY, IntervalDur: man.interval, Parallelism: ixPar},
			Engine:      opts.Engine,
			Parallelism: opts.Parallelism,
			FS:          opts.FS,
		},
		quarBase: opts.QuarantineBackoff,
	}
	s.dir.Store(&dir)
	v := newView(man, buildShards(man))
	s.swap(v)
	if opts.Eager {
		// Fan the cold start out across shards (each rebuild stays serial
		// inside — the same shape as Build).
		err := par.Do(par.Workers(opts.Parallelism), len(v.shards), func(slot int) error {
			if v.shards[slot] == nil {
				return nil
			}
			_, err := s.engine(v, slot)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// releaseMap is the shared cleanup target for mmap references owned by
// decoded objects (a named function so every cleanup reuses one closure).
func releaseMap(m *mmapio.Map) { m.Release() }

// openShard maps a shard's archive from the store directory and attaches
// its StIU index — decoded from the sidecar when the manifest checksum
// vouches for it, rebuilt from the archive otherwise.  Callers hold the
// shard lock.
//
// The archive decode is zero-copy: record bitstreams alias the mapping,
// so pages fault in when queries touch them, not at open.  Because
// Compact moves TrajRecord pointers into merged archives that outlive
// this shard's engine, the mapping's lifetime cannot follow the engine;
// instead every record retains the mapping and releases it from a GC
// cleanup, so the file is unmapped exactly when the last record (or the
// sidecar-backed index, for its own mapping) becomes unreachable.
func (s *Store) openShard(sh *shard, e *shardEntry) (*query.Engine, error) {
	m, err := mmapio.OpenIn(s.fsys(), filepath.Join(s.dirPath(), shardFile(sh.id)))
	if err != nil {
		return nil, err
	}
	data := m.Data()
	if e.bytes != 0 && uint64(len(data)) != e.bytes {
		m.Release()
		return nil, fmt.Errorf("shard file is %d bytes, manifest records %d: truncated or foreign file", len(data), e.bytes)
	}
	arch, err := core.LoadBytes(data, s.graph)
	if err != nil {
		m.Release()
		return nil, err
	}
	if got, want := len(arch.Trajs), len(sh.globals); got != want {
		m.Release()
		return nil, fmt.Errorf("%d trajectories on disk, manifest says %d", got, want)
	}
	if m.Mapped() {
		for _, tr := range arch.Trajs {
			m.Retain()
			runtime.AddCleanup(tr, releaseMap, m)
		}
	}
	ix := s.loadSidecar(sh.id, e, arch, int64(len(data)))
	if ix == nil {
		s.sidecarRebuilds.Add(1)
		if ix, err = stiu.Build(arch, s.indexOptions()); err != nil {
			m.Release()
			return nil, err
		}
	} else {
		s.sidecarLoads.Add(1)
	}
	// Drop the creator reference: for a heap read the archive's aliases
	// keep the buffer alive through the GC, for a mapping the per-record
	// references do.
	m.Release()
	return query.NewEngineWithOptions(arch, ix, s.opts.Engine), nil
}

// loadSidecar returns the shard's persisted StIU index, or nil when the
// shard has no usable sidecar — absent, checksum mismatch, or undecodable.
// A nil return is never an error: the sidecar is a cache of the index, so
// the caller silently rebuilds from the archive.
func (s *Store) loadSidecar(id uint32, e *shardEntry, arch *core.Archive, archiveSize int64) *stiu.Index {
	if e.sidecarCRC == 0 {
		return nil
	}
	m, err := mmapio.OpenIn(s.fsys(), filepath.Join(s.dirPath(), sidecarFile(id)))
	if err != nil {
		return nil
	}
	data := m.Data()
	if crc32.ChecksumIEEE(data) != e.sidecarCRC {
		m.Release()
		return nil
	}
	ix, err := stiu.DecodeSidecar(data, s.graph, len(arch.Trajs), archiveSize, s.indexOptions())
	if err != nil {
		m.Release()
		return nil
	}
	if m.Mapped() {
		m.Retain()
		runtime.AddCleanup(ix, releaseMap, m)
	}
	m.Release()
	return ix
}
