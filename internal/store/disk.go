package store

import (
	"fmt"
	"os"
	"path/filepath"

	"utcq/internal/core"
	"utcq/internal/par"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// shardFile returns shard si's archive file name.
func shardFile(si int) string { return fmt.Sprintf("shard-%04d.utcq", si) }

// Save writes the store to dir: the manifest plus one archive file per
// shard.  Every shard must be resident (a freshly built store always is; a
// lazily opened store round-trips only after every shard has been
// touched); residency is verified up front so a failed Save does not
// leave a partial store directory behind.
func (s *Store) Save(dir string) error {
	engines := make([]*query.Engine, len(s.shards))
	for si, sh := range s.shards {
		engines[si] = sh.eng.Load()
		if engines[si] == nil {
			return fmt.Errorf("store: cannot save: shard %d not resident", si)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for si, eng := range engines {
		f, err := os.Create(filepath.Join(dir, shardFile(si)))
		if err != nil {
			return err
		}
		if err := eng.Arch.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("store: save shard %d: %w", si, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return err
	}
	if err := s.man.write(f); err != nil {
		f.Close()
		return fmt.Errorf("store: save manifest: %w", err)
	}
	return f.Close()
}

// OpenOptions configure a store opened from disk.
type OpenOptions struct {
	// Engine is the per-shard query-engine cache budget.
	Engine query.EngineOptions
	// Parallelism bounds the per-shard index rebuild and the Range
	// scatter pool (<1: one worker per CPU).
	Parallelism int
	// Eager opens every shard immediately instead of on first use.
	Eager bool
}

// Open reads a store directory written by Save and attaches the road
// network (which, as with core.Load, is not serialized).  Only the
// manifest is read up front: each shard's archive is loaded — and its StIU
// index rebuilt at the granularity the manifest records — on the first
// query that touches it, unless opts.Eager is set.
func Open(dir string, g *roadnet.Graph, opts OpenOptions) (*Store, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	man, err := readManifest(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if got := g.Fingerprint(); got != man.graphHash {
		return nil, fmt.Errorf("store: road network fingerprint %016x does not match manifest %016x: the store was built against a different network", got, man.graphHash)
	}
	// Mirror Build's nested-pool guard: when the Range scatter pool fans
	// out across shards, lazily triggered index rebuilds run serially
	// inside it instead of spawning workers² goroutines.
	ixPar := opts.Parallelism
	if man.numShards > 1 && par.Workers(opts.Parallelism) > 1 {
		ixPar = 1
	}
	s := &Store{
		graph: g,
		opts: Options{
			NumShards:   man.numShards,
			Assignment:  man.assignment,
			Index:       stiu.Options{GridNX: man.gridNX, GridNY: man.gridNY, IntervalDur: man.interval, Parallelism: ixPar},
			Engine:      opts.Engine,
			Parallelism: opts.Parallelism,
		},
		man: man,
		dir: dir,
	}
	s.initShards()
	if opts.Eager {
		// Fan the cold start out across shards (each rebuild stays serial
		// inside — the same shape as Build).
		err := par.Do(par.Workers(opts.Parallelism), len(s.shards), func(si int) error {
			_, err := s.engine(si)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openShard loads shard si's archive from the store directory and rebuilds
// its StIU index.  Callers hold the shard lock.
func (s *Store) openShard(si int) (*query.Engine, error) {
	f, err := os.Open(filepath.Join(s.dir, shardFile(si)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	arch, err := core.Load(f, s.graph)
	if err != nil {
		return nil, err
	}
	if got, want := len(arch.Trajs), len(s.shards[si].globals); got != want {
		return nil, fmt.Errorf("%d trajectories on disk, manifest says %d", got, want)
	}
	ix, err := stiu.Build(arch, s.opts.Index)
	if err != nil {
		return nil, err
	}
	return query.NewEngineWithOptions(arch, ix, s.opts.Engine), nil
}
