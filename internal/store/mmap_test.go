package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/mmapio"
)

// saveStore persists a freshly built store and returns its directory.
func saveStore(t *testing.T, s *Store) string {
	t.Helper()
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStoreMmapHeapIdentical is the zero-copy correctness property: a
// store opened through the mmap path and one opened through the heap
// fallback (UTCQ_NO_MMAP=1) answer every query exactly like the
// single-archive reference engine, and both serve every shard's index
// from the persisted sidecar without a rebuild.
func TestStoreMmapHeapIdentical(t *testing.T) {
	profiles := []gen.Profile{gen.DK(), gen.CD(), gen.HZ()}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bc := buildReference(t, p, 30, 17)
			dir := saveStore(t, buildStore(t, bc, 3, AssignHash))
			for _, mode := range []string{"mmap", "heap"} {
				mode := mode
				t.Run(mode, func(t *testing.T) {
					if mode == "heap" {
						t.Setenv(mmapio.NoMmapEnv, "1")
					} else {
						// Force mapping even when the whole package runs
						// under UTCQ_NO_MMAP=1 (the CI fallback pass).
						t.Setenv(mmapio.NoMmapEnv, "")
					}
					s, err := Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
					if err != nil {
						t.Fatal(err)
					}
					st := s.Stats()
					if st.SidecarLoads != int64(s.NumShards()) || st.SidecarRebuilds != 0 {
						t.Fatalf("sidecar loads=%d rebuilds=%d, want %d/0",
							st.SidecarLoads, st.SidecarRebuilds, s.NumShards())
					}
					// MappedBytes is a process-wide gauge, so only the
					// positive direction is assertable per subtest.
					if mode == "mmap" && st.MappedBytes == 0 {
						t.Error("eagerly opened store reports no mapped bytes")
					}
					checkStoreMatchesEngine(t, bc, s, 23)
				})
			}
		})
	}
}

// TestSidecarCorruptRebuild flips one byte of a sidecar: the checksum
// mismatch must silently fall back to rebuilding that shard's index —
// identical query results, no error, no panic.
func TestSidecarCorruptRebuild(t *testing.T) {
	bc := buildReference(t, gen.CD(), 30, 19)
	dir := saveStore(t, buildStore(t, bc, 3, AssignHash))
	path := filepath.Join(dir, sidecarFile(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SidecarRebuilds != 1 || st.SidecarLoads != 2 {
		t.Fatalf("sidecar loads=%d rebuilds=%d, want 2/1", st.SidecarLoads, st.SidecarRebuilds)
	}
	checkStoreMatchesEngine(t, bc, s, 29)
}

// TestMissingSidecarRebuilds deletes a sidecar outright: the open must
// rebuild (not fail), covering stores written before sidecars existed.
func TestMissingSidecarRebuilds(t *testing.T) {
	bc := buildReference(t, gen.CD(), 20, 31)
	dir := saveStore(t, buildStore(t, bc, 2, AssignHash))
	if err := os.Remove(filepath.Join(dir, sidecarFile(0))); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SidecarRebuilds != 1 {
		t.Fatalf("sidecar rebuilds = %d, want 1", st.SidecarRebuilds)
	}
	checkStoreMatchesEngine(t, bc, s, 37)
}

// TestOpenRejectsTruncatedShard truncates a shard archive: the manifest
// records its exact length, so the open fails fast with a descriptive
// error instead of decoding garbage.
func TestOpenRejectsTruncatedShard(t *testing.T) {
	bc := buildReference(t, gen.CD(), 20, 41)
	dir := saveStore(t, buildStore(t, bc, 2, AssignHash))
	path := filepath.Join(dir, shardFile(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
	if err == nil {
		t.Fatal("open succeeded on a truncated shard file")
	}
	if !strings.Contains(err.Error(), "manifest records") {
		t.Fatalf("error does not name the manifest-recorded size: %v", err)
	}
}
