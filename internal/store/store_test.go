package store

import (
	"math/rand"
	"reflect"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// testIndexOpts keeps tests fast on the small generated networks.
var testIndexOpts = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}

// buildCase generates one dataset and the single-archive reference engine
// the store must match exactly.
type buildCase struct {
	ds  *gen.Dataset
	eng *query.Engine
}

func buildReference(t *testing.T, p gen.Profile, n int, seed int64) *buildCase {
	t.Helper()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := stiu.Build(a, testIndexOpts)
	if err != nil {
		t.Fatal(err)
	}
	return &buildCase{ds: ds, eng: query.NewEngine(a, ix)}
}

func buildStore(t *testing.T, bc *buildCase, shards int, assign Assignment) *Store {
	t.Helper()
	opts := DefaultOptions(bc.ds.Profile.Ts)
	opts.NumShards = shards
	opts.Assignment = assign
	opts.Index = testIndexOpts
	s, err := Build(bc.ds.Graph, bc.ds.Trajectories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomRect returns a rectangle covering a random fraction of the network.
func randomRect(g *roadnet.Graph, rng *rand.Rand) roadnet.Rect {
	b := g.Bounds()
	w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
	fw, fh := 0.05+rng.Float64()*0.4, 0.05+rng.Float64()*0.4
	x := b.MinX + rng.Float64()*(1-fw)*w
	y := b.MinY + rng.Float64()*(1-fh)*h
	return roadnet.Rect{MinX: x, MinY: y, MaxX: x + fw*w, MaxY: y + fh*h}
}

// checkStoreMatchesEngine drives identical where/when/range workloads
// through the store and the reference engine and requires exactly equal
// results: the same trajectories compress to the same bytes regardless of
// shard, so even the float fields must match bit for bit.
func checkStoreMatchesEngine(t *testing.T, bc *buildCase, s *Store, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	trajs := bc.ds.Trajectories
	alphas := []float64{0, 0.15, 0.3}

	for trial := 0; trial < 60; trial++ {
		j := rng.Intn(len(trajs))
		T := trajs[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		alpha := alphas[rng.Intn(len(alphas))]

		want, err := bc.eng.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("where(%d, %d, %g): store %v != engine %v", j, tq, alpha, got, want)
		}

		// When at a location the trajectory demonstrably visits.
		if len(want) > 0 {
			loc := want[rng.Intn(len(want))].Loc
			wantW, err := bc.eng.When(j, loc, alpha)
			if err != nil {
				t.Fatal(err)
			}
			gotW, err := s.When(j, loc, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotW, wantW) {
				t.Fatalf("when(%d, %v, %g): store %v != engine %v", j, loc, alpha, gotW, wantW)
			}
		}

		re := randomRect(bc.ds.Graph, rng)
		wantR, err := bc.eng.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := s.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantR) == 0 && len(gotR) == 0 {
			continue
		}
		if !reflect.DeepEqual(gotR, wantR) {
			t.Fatalf("range(%v, %d, %g): store %v != engine %v", re, tq, alpha, gotR, wantR)
		}
	}
}

// TestStoreMatchesEngine is the scatter-gather correctness property: over
// every paper profile, shard count and assignment mode, the sharded store
// answers byte-identically to a single-archive engine on the same dataset.
func TestStoreMatchesEngine(t *testing.T) {
	profiles := []gen.Profile{gen.DK(), gen.CD(), gen.HZ()}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bc := buildReference(t, p, 30, 11)
			for _, assign := range []Assignment{AssignHash, AssignSpatial} {
				for _, shards := range []int{1, 3, 7} {
					s := buildStore(t, bc, shards, assign)
					checkStoreMatchesEngine(t, bc, s, 101+int64(shards))
				}
			}
		})
	}
}

// TestStoreSaveOpen round-trips a store through disk and checks lazy shard
// opening: only the shards a query touches become resident.
func TestStoreSaveOpen(t *testing.T) {
	bc := buildReference(t, gen.CD(), 30, 13)
	s := buildStore(t, bc, 4, AssignHash)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	o, err := Open(dir, bc.ds.Graph, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.OpenShards(); got != 0 {
		t.Fatalf("freshly opened store has %d resident shards, want 0", got)
	}
	if got, want := o.NumShards(), s.NumShards(); got != want {
		t.Fatalf("NumShards = %d, want %d", got, want)
	}
	if got, want := o.NumTrajectories(), len(bc.ds.Trajectories); got != want {
		t.Fatalf("NumTrajectories = %d, want %d", got, want)
	}
	lo, hi := o.TimeSpan()
	slo, shi := s.TimeSpan()
	if lo != slo || hi != shi {
		t.Fatalf("TimeSpan = (%d, %d), want (%d, %d)", lo, hi, slo, shi)
	}

	// A range rectangle entirely outside the network prunes on the
	// manifest's shard bounds: no results, no shard opened.
	b := bc.ds.Graph.Bounds()
	far := roadnet.Rect{MinX: b.MaxX + 1e6, MinY: b.MaxY + 1e6, MaxX: b.MaxX + 2e6, MaxY: b.MaxY + 2e6}
	if hits, err := o.Range(far, (slo+shi)/2, 0.1); err != nil || len(hits) != 0 {
		t.Fatalf("far range = %v, %v", hits, err)
	}
	if got := o.OpenShards(); got != 0 {
		t.Fatalf("far range opened %d shards, want 0", got)
	}

	// A single-trajectory query opens exactly the owning shard.
	j := 0
	T := bc.ds.Trajectories[j].T
	if _, err := o.Where(j, (T[0]+T[len(T)-1])/2, 0.2); err != nil {
		t.Fatal(err)
	}
	if got := o.OpenShards(); got != 1 {
		t.Fatalf("after one where query %d shards resident, want 1", got)
	}

	// A range query scatters everywhere.
	if _, err := o.Range(bc.ds.Graph.Bounds(), T[0], 0); err != nil {
		t.Fatal(err)
	}
	if got := o.OpenShards(); got != 4 {
		t.Fatalf("after a range query %d shards resident, want 4", got)
	}

	checkStoreMatchesEngine(t, bc, o, 17)

	st := o.Stats()
	if st.Shards != 4 || st.OpenShards != 4 || st.Trajectories != len(bc.ds.Trajectories) {
		t.Fatalf("stats = %+v", st)
	}
	if st.Assignment != "hash" {
		t.Fatalf("assignment = %q, want hash", st.Assignment)
	}
}

// TestStoreEagerOpen checks OpenOptions.Eager loads every shard up front.
func TestStoreEagerOpen(t *testing.T) {
	bc := buildReference(t, gen.CD(), 20, 29)
	s := buildStore(t, bc, 3, AssignSpatial)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	o, err := Open(dir, bc.ds.Graph, OpenOptions{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.OpenShards(); got != 3 {
		t.Fatalf("eager open left %d shards resident, want 3", got)
	}
	checkStoreMatchesEngine(t, bc, o, 23)
}

// TestOpenRejectsWrongGraph checks the manifest's network fingerprint: a
// store must not open against a different road network.
func TestOpenRejectsWrongGraph(t *testing.T) {
	bc := buildReference(t, gen.CD(), 12, 41)
	s := buildStore(t, bc, 2, AssignHash)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 23, 23 // deliberately different network
	other := roadnet.Generate(p.Network)
	if _, err := Open(dir, other, OpenOptions{}); err == nil {
		t.Fatal("opened a store against a different road network")
	}
	if _, err := Open(dir, bc.ds.Graph, OpenOptions{}); err != nil {
		t.Fatalf("reopen with the build graph failed: %v", err)
	}
}

// TestManifestRejectsCorruption covers the manifest validation paths.
func TestManifestRejectsCorruption(t *testing.T) {
	bc := buildReference(t, gen.CD(), 12, 31)
	s := buildStore(t, bc, 2, AssignHash)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir(), bc.ds.Graph, OpenOptions{}); err == nil {
		t.Fatal("opening an empty directory succeeded")
	}
}

// TestAssignSpatialGroups sanity-checks that spatial assignment is total
// and stable: every trajectory maps to a valid shard and the mapping is a
// pure function of the dataset.
func TestAssignSpatialGroups(t *testing.T) {
	bc := buildReference(t, gen.DK(), 20, 37)
	a1, err := assign(bc.ds.Graph, bc.ds.Trajectories, Options{NumShards: 4, Assignment: AssignSpatial})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := assign(bc.ds.Graph, bc.ds.Trajectories, Options{NumShards: 4, Assignment: AssignSpatial})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("spatial assignment is not deterministic")
	}
	for j, si := range a1 {
		if si >= 4 {
			t.Fatalf("trajectory %d assigned to shard %d", j, si)
		}
	}
}

// TestParseAssignment covers the flag parser.
func TestParseAssignment(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Assignment
	}{{"hash", AssignHash}, {"spatial", AssignSpatial}} {
		got, err := ParseAssignment(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAssignment(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAssignment("nope"); err == nil {
		t.Fatal("ParseAssignment accepted garbage")
	}
}
