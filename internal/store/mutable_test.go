package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/query"
	"utcq/internal/stiu"
	"utcq/internal/traj"
)

// freshEngine compresses and indexes tus from scratch: the oracle every
// store generation must match exactly.
func freshEngine(t *testing.T, ds *gen.Dataset, tus []*traj.Uncertain) *query.Engine {
	t.Helper()
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(ds.Profile.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(tus)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := stiu.Build(a, testIndexOpts)
	if err != nil {
		t.Fatal(err)
	}
	return query.NewEngine(a, ix)
}

// checkGeneration drives identical where/when/range workloads through the
// store and a from-scratch engine over the same trajectory prefix and
// requires exactly equal results.
func checkGeneration(t *testing.T, ds *gen.Dataset, tus []*traj.Uncertain, s *Store, seed int64) {
	t.Helper()
	if got, want := s.NumTrajectories(), len(tus); got != want {
		t.Fatalf("store holds %d trajectories, want %d", got, want)
	}
	eng := freshEngine(t, ds, tus)
	rng := rand.New(rand.NewSource(seed))
	alphas := []float64{0, 0.15, 0.3}
	for trial := 0; trial < 25; trial++ {
		j := rng.Intn(len(tus))
		T := tus[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		alpha := alphas[rng.Intn(len(alphas))]

		want, err := eng.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("gen %d: where(%d, %d, %g): store %v != engine %v", s.Generation(), j, tq, alpha, got, want)
		}

		if len(want) > 0 {
			loc := want[rng.Intn(len(want))].Loc
			wantW, err := eng.When(j, loc, alpha)
			if err != nil {
				t.Fatal(err)
			}
			gotW, err := s.When(j, loc, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotW, wantW) {
				t.Fatalf("gen %d: when(%d, %v, %g) mismatch", s.Generation(), j, loc, alpha)
			}
		}

		re := randomRect(ds.Graph, rng)
		wantR, err := eng.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := s.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantR) != 0 || len(gotR) != 0 {
			if !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("gen %d: range(%v, %d, %g): store %v != engine %v", s.Generation(), re, tq, alpha, gotR, wantR)
			}
		}
	}
}

// TestApplyDeltaCompactMatchesRebuild is the mutable-store correctness
// property: at every manifest generation — after each ingested delta batch
// and each compaction — the store answers exactly like a single-archive
// engine freshly built over the same trajectory set.
func TestApplyDeltaCompactMatchesRebuild(t *testing.T) {
	for _, p := range []gen.Profile{gen.DK(), gen.CD(), gen.HZ()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p.Network.Cols, p.Network.Rows = 24, 24
			ds, err := gen.Build(p, 40, 7)
			if err != nil {
				t.Fatal(err)
			}
			tus := ds.Trajectories
			baseN := 16
			opts := DefaultOptions(p.Ts)
			opts.NumShards = 3
			opts.Index = testIndexOpts
			s, err := Build(ds.Graph, tus[:baseN], opts)
			if err != nil {
				t.Fatal(err)
			}
			if s.Generation() != 1 {
				t.Fatalf("fresh build at generation %d, want 1", s.Generation())
			}
			checkGeneration(t, ds, tus[:baseN], s, 100)

			// Four delta batches with a compaction in the middle and one at
			// the end, checking result-identity at every generation.
			n := baseN
			batch := (len(tus) - baseN) / 4
			for step := 0; step < 4; step++ {
				next := n + batch
				if step == 3 {
					next = len(tus)
				}
				gen0 := s.Generation()
				if _, err := s.ApplyDelta(tus[n:next], uint64(next)); err != nil {
					t.Fatal(err)
				}
				if got := s.Generation(); got != gen0+1 {
					t.Fatalf("generation %d after delta, want %d", got, gen0+1)
				}
				n = next
				checkGeneration(t, ds, tus[:n], s, 200+int64(step))

				if step == 1 {
					folded, err := s.Compact()
					if err != nil {
						t.Fatal(err)
					}
					if folded != 2 {
						t.Fatalf("compaction folded %d delta shards, want 2", folded)
					}
					if got := s.DeltaShards(); got != 0 {
						t.Fatalf("%d delta shards after compaction, want 0", got)
					}
					checkGeneration(t, ds, tus[:n], s, 300)
				}
			}
			if got := s.DeltaShards(); got != 2 {
				t.Fatalf("%d delta shards before final compaction, want 2", got)
			}
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			checkGeneration(t, ds, tus, s, 400)

			// The second compaction garbage-collects the first round's
			// tombstones (deferred one generation), so only the fresh pair
			// remains in the catalogue.
			st := s.Stats()
			if st.Tombstones != 2 || st.DeltaShards != 0 || st.BaseShards != 5 {
				t.Fatalf("stats after compactions: %+v", st)
			}
			if st.WALApplied != uint64(len(tus)) {
				t.Fatalf("walApplied = %d, want %d", st.WALApplied, len(tus))
			}

			// A compaction with no delta shards is a no-op.
			if folded, err := s.Compact(); err != nil || folded != 0 {
				t.Fatalf("empty compaction = (%d, %v), want (0, nil)", folded, err)
			}

			// An empty delta batch still advances the WAL high-water mark.
			gen0 := s.Generation()
			if _, err := s.ApplyDelta(nil, uint64(len(tus))+3); err != nil {
				t.Fatal(err)
			}
			if s.Generation() != gen0+1 || s.WALApplied() != uint64(len(tus))+3 {
				t.Fatalf("empty delta: generation %d walApplied %d", s.Generation(), s.WALApplied())
			}
		})
	}
}

// TestMutableStoreDurability checks that every mutation of a disk-backed
// store lands atomically on disk: after each ApplyDelta/Compact, a fresh
// Open of the directory sees the same generation and answers queries
// identically to a from-scratch rebuild.
func TestMutableStoreDurability(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	tus := ds.Trajectories
	opts := DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	s, err := Build(ds.Graph, tus[:12], opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	reopen := func(n int) {
		t.Helper()
		o, err := Open(dir, ds.Graph, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if o.Generation() != s.Generation() {
			t.Fatalf("reopened generation %d, in-memory %d", o.Generation(), s.Generation())
		}
		if o.WALApplied() != s.WALApplied() {
			t.Fatalf("reopened walApplied %d, in-memory %d", o.WALApplied(), s.WALApplied())
		}
		checkGeneration(t, ds, tus[:n], o, int64(1000+n))
	}

	for n := 12; n < len(tus); n += 6 {
		next := min(n+6, len(tus))
		if _, err := s.ApplyDelta(tus[n:next], uint64(next)); err != nil {
			t.Fatal(err)
		}
		reopen(next)
		n = next - 6
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	reopen(len(tus))

	// Tombstoned shard files are retained for readers of older
	// generations; the live set must not reference them.
	o, err := Open(dir, ds.Graph, OpenOptions{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Tombstones == 0 {
		t.Fatal("compacted store reopened with no tombstones recorded")
	}
	if st.DeltaShards != 0 {
		t.Fatalf("reopened store has %d delta shards, want 0", st.DeltaShards)
	}
}

// TestCompactionGarbageCollectsTombstones pins the deferred GC: a
// compaction keeps the entries it tombstones for one generation (in-flight
// readers of the pre-swap view may still resolve them), and the *next*
// compaction drops them from the catalogue and deletes their files — so
// neither the manifest nor the directory grows without bound under
// continuous ingestion.
func TestCompactionGarbageCollectsTombstones(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	tus := ds.Trajectories
	opts := DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	s, err := Build(ds.Graph, tus[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	shardFiles := func() map[string]bool {
		t.Helper()
		out := map[string]bool{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() != ManifestName {
				out[e.Name()] = true
			}
		}
		return out
	}

	// Round 1: two deltas (ids 2, 3) fold into base id 4.
	for n := 10; n < 20; n += 5 {
		if _, err := s.ApplyDelta(tus[n:n+5], uint64(n+5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	files := shardFiles()
	if !files[shardFile(2)] || !files[shardFile(3)] {
		t.Fatalf("freshly tombstoned delta files deleted too early: %v", files)
	}
	if got := s.Stats().Tombstones; got != 2 {
		t.Fatalf("tombstones after round 1 = %d, want 2", got)
	}

	// Round 2: two more deltas (ids 5, 6) fold; round 1's tombstones GC.
	for n := 20; n < 30; n += 5 {
		if _, err := s.ApplyDelta(tus[n:n+5], uint64(n+5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	files = shardFiles()
	if files[shardFile(2)] || files[shardFile(3)] {
		t.Fatalf("round-1 tombstoned files not garbage-collected: %v", files)
	}
	if !files[shardFile(5)] || !files[shardFile(6)] {
		t.Fatalf("round-2 tombstoned files deleted too early: %v", files)
	}
	st := s.Stats()
	if st.Tombstones != 2 || st.BaseShards != 4 {
		t.Fatalf("stats after round 2: %+v", st)
	}

	// The pruned store still reopens and answers like a fresh rebuild.
	o, err := Open(dir, ds.Graph, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkGeneration(t, ds, tus, o, 77)
}

// TestOpenTruncatedManifest opens stores whose manifest is cut off at every
// prefix length: each must fail with an error — never panic, never succeed
// with partial state.
func TestOpenTruncatedManifest(t *testing.T) {
	bc := buildReference(t, gen.CD(), 10, 3)
	s := buildStore(t, bc, 2, AssignHash)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	cut := t.TempDir()
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(filepath.Join(cut, ManifestName), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(cut, bc.ds.Graph, OpenOptions{}); err == nil {
			t.Fatalf("opened a manifest truncated to %d of %d bytes", n, len(full))
		}
	}
}

// TestOpenCorruptManifest flips bytes across the manifest: every corruption
// must surface as an Open error or as a store that still validates — never
// a panic or a silent partial decode with inconsistent counts.
func TestOpenCorruptManifest(t *testing.T) {
	bc := buildReference(t, gen.CD(), 10, 3)
	s := buildStore(t, bc, 2, AssignHash)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	bad := t.TempDir()
	// Corrupt shard files too, so a "successful" open cannot serve them.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), full...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		if err := os.WriteFile(filepath.Join(bad, ManifestName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		o, err := Open(bad, bc.ds.Graph, OpenOptions{})
		if err != nil {
			continue // rejected cleanly
		}
		// A flip that survives validation (e.g. inside a bounds float or
		// the time span) must still leave a consistent, queryable store.
		if got, want := o.NumTrajectories(), s.NumTrajectories(); got != want {
			t.Fatalf("trial %d: corrupt manifest opened with %d trajectories, want %d", trial, got, want)
		}
	}

	// An empty manifest and a non-manifest file must both fail.
	for _, content := range [][]byte{{}, []byte("not a manifest at all")} {
		if err := os.WriteFile(filepath.Join(bad, ManifestName), content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(bad, bc.ds.Graph, OpenOptions{}); err == nil {
			t.Fatal("opened a garbage manifest")
		}
	}
}
