package store

import (
	"math/rand"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/roadnet"
)

// benchState is built once and shared by the store benchmarks.
type benchState struct {
	bc *buildCase
	s  *Store
}

var benchCache *benchState

func benchSetup(b *testing.B) *benchState {
	if benchCache != nil {
		return benchCache
	}
	b.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 120, 9)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions(p.Ts)
	opts.NumShards = 4
	opts.Index = testIndexOpts
	s, err := Build(ds.Graph, ds.Trajectories, opts)
	if err != nil {
		b.Fatal(err)
	}
	benchCache = &benchState{bc: &buildCase{ds: ds}, s: s}
	return benchCache
}

// BenchmarkStoreBuild measures the parallel sharded compress+index build.
func BenchmarkStoreBuild(b *testing.B) {
	st := benchSetup(b)
	opts := DefaultOptions(st.bc.ds.Profile.Ts)
	opts.NumShards = 4
	opts.Index = testIndexOpts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(st.bc.ds.Graph, st.bc.ds.Trajectories, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWhere measures single-trajectory routing through the shard
// map.
func BenchmarkStoreWhere(b *testing.B) {
	st := benchSetup(b)
	trajs := st.bc.ds.Trajectories
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(trajs))
		T := trajs[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		if _, err := st.s.Where(j, tq, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRange measures the scatter-gather fan-out across shards.
func BenchmarkStoreRange(b *testing.B) {
	st := benchSetup(b)
	g := st.bc.ds.Graph
	bounds := g.Bounds()
	w, h := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY
	lo, hi := st.s.TimeSpan()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := bounds.MinX + rng.Float64()*0.75*w
		y := bounds.MinY + rng.Float64()*0.75*h
		re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + 0.25*w, MaxY: y + 0.25*h}
		tq := lo + rng.Int63n(hi-lo+1)
		if _, err := st.s.Range(re, tq, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRangeParallel drives Range from many goroutines, the
// serving shape utcqd exposes.
func BenchmarkStoreRangeParallel(b *testing.B) {
	st := benchSetup(b)
	g := st.bc.ds.Graph
	bounds := g.Bounds()
	w, h := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY
	lo, hi := st.s.TimeSpan()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(3))
		for pb.Next() {
			x := bounds.MinX + rng.Float64()*0.75*w
			y := bounds.MinY + rng.Float64()*0.75*h
			re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + 0.25*w, MaxY: y + 0.25*h}
			tq := lo + rng.Int63n(hi-lo+1)
			if _, err := st.s.Range(re, tq, 0.2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
