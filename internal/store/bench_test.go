package store

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/roadnet"
)

// benchState is built once and shared by the store benchmarks.
type benchState struct {
	bc *buildCase
	s  *Store
}

var benchCache *benchState

func benchSetup(b *testing.B) *benchState {
	if benchCache != nil {
		return benchCache
	}
	b.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 120, 9)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions(p.Ts)
	opts.NumShards = 4
	opts.Index = testIndexOpts
	s, err := Build(ds.Graph, ds.Trajectories, opts)
	if err != nil {
		b.Fatal(err)
	}
	benchCache = &benchState{bc: &buildCase{ds: ds}, s: s}
	return benchCache
}

// BenchmarkStoreBuild measures the parallel sharded compress+index build.
func BenchmarkStoreBuild(b *testing.B) {
	st := benchSetup(b)
	opts := DefaultOptions(st.bc.ds.Profile.Ts)
	opts.NumShards = 4
	opts.Index = testIndexOpts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(st.bc.ds.Graph, st.bc.ds.Trajectories, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWhere measures single-trajectory routing through the shard
// map.
func BenchmarkStoreWhere(b *testing.B) {
	st := benchSetup(b)
	trajs := st.bc.ds.Trajectories
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(trajs))
		T := trajs[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		if _, err := st.s.Where(j, tq, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRange measures the scatter-gather fan-out across shards.
func BenchmarkStoreRange(b *testing.B) {
	st := benchSetup(b)
	g := st.bc.ds.Graph
	bounds := g.Bounds()
	w, h := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY
	lo, hi := st.s.TimeSpan()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := bounds.MinX + rng.Float64()*0.75*w
		y := bounds.MinY + rng.Float64()*0.75*h
		re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + 0.25*w, MaxY: y + 0.25*h}
		tq := lo + rng.Int63n(hi-lo+1)
		if _, err := st.s.Range(re, tq, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// coldDirs lazily saves stores of two sizes for the cold-open benchmarks.
var coldDirs = map[int]string{}

func coldDir(b *testing.B, n int) (string, *gen.Dataset) {
	b.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, n, 9)
	if err != nil {
		b.Fatal(err)
	}
	dir, ok := coldDirs[n]
	if !ok {
		opts := DefaultOptions(p.Ts)
		opts.NumShards = 4
		opts.Index = testIndexOpts
		s, err := Build(ds.Graph, ds.Trajectories, opts)
		if err != nil {
			b.Fatal(err)
		}
		// Not b.TempDir(): the directory is cached across benchmarks, and
		// b.TempDir is removed when the creating benchmark returns.
		dir, err = os.MkdirTemp("", "utcq-coldopen-*")
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Save(dir); err != nil {
			b.Fatal(err)
		}
		coldDirs[n] = dir
	}
	return dir, ds
}

// BenchmarkStoreColdOpen measures Open plus full shard residency.  With
// mmap and a valid sidecar both scale with the index, not the record
// payload, so the per-trajectory cost should be far below decode cost —
// compare the trajs=120 and trajs=480 lines.
func BenchmarkStoreColdOpen(b *testing.B) {
	for _, n := range []int{120, 480} {
		b.Run(fmt.Sprintf("trajs=%d", n), func(b *testing.B) {
			dir, ds := coldDir(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, ds.Graph, OpenOptions{Eager: true})
				if err != nil {
					b.Fatal(err)
				}
				if st := s.Stats(); st.SidecarRebuilds != 0 {
					b.Fatalf("cold open rebuilt %d sidecars", st.SidecarRebuilds)
				}
			}
		})
	}
}

// BenchmarkStoreFirstQuery measures time-to-first-answer from a cold
// directory: a lazy Open plus one Where, the latency a restarted server
// pays on its first request.
func BenchmarkStoreFirstQuery(b *testing.B) {
	dir, ds := coldDir(b, 120)
	T := ds.Trajectories[0].T
	tq := (T[0] + T[len(T)-1]) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, ds.Graph, OpenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Where(0, tq, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWhenCold measures the first When on a freshly opened
// store: lazy Open, then one temporal-section-touching query.  With a v2
// sidecar the open decodes no temporal entries, so this is the pin that
// keeps the per-trajectory lazy path from regressing back to eager
// decode-at-open.
func BenchmarkStoreWhenCold(b *testing.B) {
	dir, ds := coldDir(b, 120)
	T := ds.Trajectories[0].T
	tq := (T[0] + T[len(T)-1]) / 2
	// A location trajectory 0 actually visits, from a throwaway store.
	s0, err := Open(dir, ds.Graph, OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	wr, err := s0.Where(0, tq, 0)
	if err != nil {
		b.Fatal(err)
	}
	if len(wr) == 0 {
		b.Fatal("no Where results to derive a When location from")
	}
	loc := wr[0].Loc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, ds.Graph, OpenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.When(0, loc, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRangeParallel drives Range from many goroutines, the
// serving shape utcqd exposes.
func BenchmarkStoreRangeParallel(b *testing.B) {
	st := benchSetup(b)
	g := st.bc.ds.Graph
	bounds := g.Bounds()
	w, h := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY
	lo, hi := st.s.TimeSpan()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(3))
		for pb.Next() {
			x := bounds.MinX + rng.Float64()*0.75*w
			y := bounds.MinY + rng.Float64()*0.75*h
			re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + 0.25*w, MaxY: y + 0.25*h}
			tq := lo + rng.Int63n(hi-lo+1)
			if _, err := st.s.Range(re, tq, 0.2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
