package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/mapmatch"
	"utcq/internal/stiu"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// newIngestFixture builds a store over the first raws and a server with an
// attached ingester, returning the remaining raws for submission.
func newIngestFixture(t *testing.T) (*httptest.Server, *store.Store, []traj.RawTrajectory) {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, 14, 19)
	if err != nil {
		t.Fatal(err)
	}
	m := mapmatch.New(g, eix, p.Match)
	var base []*traj.Uncertain
	for _, raw := range raws[:6] {
		if u, err := m.Match(raw); err == nil {
			base = append(base, u)
		}
	}
	sopts := store.DefaultOptions(p.Ts)
	sopts.NumShards = 2
	sopts.Index = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	st, err := store.Build(g, base, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := ingest.New(st, eix, filepath.Join(t.TempDir(), "ingest.wal"), ingest.Options{
		BatchSize: 4,
		Match:     p.Match,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv := New(st, Options{Ingester: ing})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st, raws[6:]
}

// get fetches a JSON endpoint into out.
func (f *fixture) get(t *testing.T, path string, out any) {
	t.Helper()
	resp, err := http.Get(f.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func toJSON(raws []traj.RawTrajectory) []RawTrajectoryJSON {
	out := make([]RawTrajectoryJSON, len(raws))
	for i, raw := range raws {
		pts := make([]RawPointJSON, len(raw.Points))
		for k, p := range raw.Points {
			pts[k] = RawPointJSON{X: p.X, Y: p.Y, T: p.T}
		}
		out[i] = RawTrajectoryJSON{Points: pts}
	}
	return out
}

// TestIngestEndpoint walks the live write path over HTTP: acknowledge,
// flush, observe the new generation and the grown trajectory count, then
// compact and observe the delta shards fold.
func TestIngestEndpoint(t *testing.T) {
	ts, st, raws := newIngestFixture(t)
	f := &fixture{ts: ts}
	before := st.NumTrajectories()
	gen0 := st.Generation()

	// Acknowledge without flush: durable but not yet queryable.
	var ack IngestResponse
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[:3])}, http.StatusOK, &ack)
	if ack.Accepted != 3 || ack.FirstSeq != 0 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack.Pending == 0 {
		t.Fatalf("unflushed ingest reports no pending records: %+v", ack)
	}
	if st.NumTrajectories() != before {
		t.Fatal("unflushed ingest already mutated the store")
	}

	// Flush: the batch becomes queryable and the generation advances.
	var ack2 IngestResponse
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[3:]), Flush: true}, http.StatusOK, &ack2)
	if ack2.Pending != 0 {
		t.Fatalf("flushed ingest left %d pending", ack2.Pending)
	}
	if ack2.Generation <= gen0 {
		t.Fatalf("generation %d not past %d after flush", ack2.Generation, gen0)
	}
	grown := st.NumTrajectories()
	if grown <= before {
		t.Fatalf("store did not grow: %d -> %d", before, grown)
	}

	// The ingested trajectories answer queries end to end.
	lo, hi := st.TimeSpan()
	var wr struct {
		Results []WhereResultJSON `json:"results"`
	}
	f.post(t, "/v1/where", WhereRequest{Traj: grown - 1, T: (lo + hi) / 2, Alpha: 0}, http.StatusOK, &wr)

	// Stats reflect ingestion.
	var sr StatsResponse
	f.get(t, "/v1/stats", &sr)
	if sr.Ingest == nil {
		t.Fatal("stats missing ingest section")
	}
	if sr.Ingest.Acked != uint64(len(raws)) || sr.Ingest.Applied != uint64(len(raws)) {
		t.Fatalf("ingest stats = %+v", sr.Ingest)
	}
	if sr.Generation != st.Generation() || sr.DeltaShards == 0 {
		t.Fatalf("stats = gen %d deltas %d", sr.Generation, sr.DeltaShards)
	}

	// Compaction folds every delta shard.
	var cr CompactResponse
	f.post(t, "/v1/compact", struct{}{}, http.StatusOK, &cr)
	if cr.Folded == 0 {
		t.Fatal("compaction folded nothing")
	}
	f.get(t, "/v1/stats", &sr)
	if sr.DeltaShards != 0 || sr.Tombstones == 0 {
		t.Fatalf("after compact: deltas %d tombstones %d", sr.DeltaShards, sr.Tombstones)
	}

	// Bad submissions are client errors — and atomic: a batch with one
	// invalid trajectory acknowledges nothing, even when other members
	// are valid, so a client retry cannot duplicate records.
	ackedBefore := sr.Ingest.Acked
	var errResp ErrorResponse
	f.post(t, "/v1/ingest", IngestRequest{}, http.StatusBadRequest, &errResp)
	one := IngestRequest{Trajectories: []RawTrajectoryJSON{{Points: []RawPointJSON{{X: 1, Y: 2, T: 3}}}}}
	f.post(t, "/v1/ingest", one, http.StatusBadRequest, &errResp)
	mixed := IngestRequest{Trajectories: append(toJSON(raws[:1]), RawTrajectoryJSON{Points: []RawPointJSON{
		{X: 1, Y: 2, T: 30}, {X: 2, Y: 3, T: 30}, // non-increasing timestamps
	}})}
	f.post(t, "/v1/ingest", mixed, http.StatusBadRequest, &errResp)
	f.get(t, "/v1/stats", &sr)
	if sr.Ingest.Acked != ackedBefore {
		t.Fatalf("rejected batches acknowledged records: %d -> %d", ackedBefore, sr.Ingest.Acked)
	}
}

// TestIngestDisabled checks the read-only server rejects writes with 503
// but still compacts (no-op on a store without deltas).
func TestIngestDisabled(t *testing.T) {
	f := newFixture(t)
	var errResp ErrorResponse
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON([]traj.RawTrajectory{
		{Points: []traj.RawPoint{{X: 0, Y: 0, T: 1}, {X: 1, Y: 1, T: 2}}},
	})}, http.StatusServiceUnavailable, &errResp)

	var cr CompactResponse
	f.post(t, "/v1/compact", struct{}{}, http.StatusOK, &cr)
	if cr.Folded != 0 {
		t.Fatalf("read-only store folded %d shards", cr.Folded)
	}
}
