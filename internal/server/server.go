// Package server exposes a sharded trajectory store (internal/store) over
// HTTP/JSON: the network query front-end of the UTCQ system.  It serves
// the paper's three probabilistic queries — where (Definition 10), when
// (Definition 11) and range (Definition 12) — as single-query endpoints
// and as one batched endpoint that fans a request's queries across a
// bounded worker pool, plus /healthz for liveness and /stats for the
// store's aggregated engine and cache counters.  With an ingester
// attached (Options.Ingester) the server also accepts live traffic:
// POST /v1/ingest acknowledges raw trajectories into the WAL and
// POST /v1/compact folds accumulated delta shards into a base shard.
//
// The handlers hold no per-request state beyond the decoded bodies; all
// concurrency control lives in the store and its per-shard engines, so one
// Server instance serves any number of connections.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"utcq/internal/ingest"
	"utcq/internal/par"
	"utcq/internal/roadnet"
	"utcq/internal/store"
	"utcq/internal/traj"
	"utcq/pkg/client"
)

// Options configure a Server.
type Options struct {
	// MaxBatch bounds the queries accepted in one /v1/batch request
	// (default 256).
	MaxBatch int
	// BatchParallelism bounds the workers evaluating one batch
	// (<1: one per CPU).
	BatchParallelism int
	// ReadTimeout/WriteTimeout guard slow clients (defaults 10s/30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// QueryTimeout bounds the evaluation of one query request (where /
	// when / range / batch).  A request still running at the deadline is
	// abandoned and answered 504, so one shard stuck in slow I/O cannot
	// pile up every client connection behind it (default 30s; <0
	// disables).
	QueryTimeout time.Duration
	// MaxPending bounds the ingest admission queue: while at least this
	// many acknowledged records await application, /v1/ingest answers
	// 429 with a Retry-After header instead of letting the WAL and the
	// drain backlog grow without limit (default 4096; <0 disables).
	MaxPending int
	// Ingester enables live ingestion.  Nil disables data ingress:
	// /v1/ingest answers 503.  /v1/compact remains available either way
	// (compaction is maintenance over data already in the store, useful
	// after offline bulk loads).
	Ingester *ingest.Ingester
	// Follower marks this node a replication follower: its ingester
	// only accepts records shipped from the leader, so /v1/ingest
	// answers 503 not_leader — clients must write to the leader.
	Follower bool
}

// DefaultOptions returns the server defaults.
func DefaultOptions() Options {
	return Options{
		MaxBatch:     256,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		QueryTimeout: 30 * time.Second,
		MaxPending:   4096,
	}
}

// Server is the HTTP query service over one store.
type Server struct {
	st   *store.Store
	ing  *ingest.Ingester
	opts Options
	mux  *http.ServeMux
	hs   *http.Server

	started  time.Time
	requests atomic.Int64
	failures atomic.Int64

	// Degradation counters: admission rejections (429), abandoned slow
	// queries (504) and range queries answered without their quarantined
	// shards.
	rejected atomic.Int64
	timeouts atomic.Int64
	degraded atomic.Int64

	// Streaming counters: watch subscriptions currently connected, and
	// update payloads delivered to them (initial results + increments).
	watchers      atomic.Int64
	watchNotifies atomic.Int64
}

// New returns a server over st.  Zero-valued options select defaults.
func New(st *store.Store, opts Options) *Server {
	def := DefaultOptions()
	if opts.MaxBatch < 1 {
		opts.MaxBatch = def.MaxBatch
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = def.ReadTimeout
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = def.WriteTimeout
	}
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = def.QueryTimeout
	}
	if opts.MaxPending == 0 {
		opts.MaxPending = def.MaxPending
	}
	s := &Server{st: st, ing: opts.Ingester, opts: opts, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	// Deprecated alias: /stats predates the versioned prefix.  Old
	// scrapers get a permanent redirect; new clients use /v1/stats.
	s.mux.HandleFunc("GET /stats", redirectStats)
	s.mux.HandleFunc("POST /v1/where", s.handleWhere)
	s.mux.HandleFunc("POST /v1/when", s.handleWhen)
	s.mux.HandleFunc("POST /v1/range", s.handleRange)
	s.mux.HandleFunc("GET /v1/watch/range", s.handleWatchRange)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	s.mux.HandleFunc("GET /v1/repl/wal", s.handleReplWAL)
	s.mux.HandleFunc("GET /v1/repl/manifest", s.handleReplManifest)
	s.mux.HandleFunc("GET /v1/repl/file/{name}", s.handleReplFile)
	// The http.Server exists from construction so Shutdown is effective
	// even if it races server start (a Serve call after Shutdown returns
	// ErrServerClosed immediately instead of leaking a live listener).
	s.hs = &http.Server{
		Handler:      s.mux,
		ReadTimeout:  opts.ReadTimeout,
		WriteTimeout: opts.WriteTimeout,
	}
	return s
}

// Handler returns the route table (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains in-flight requests and stops the listener (graceful
// shutdown; pass a context with a deadline to bound the drain).  Safe to
// call before, during or after Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// Wire types.  The canonical definitions live in pkg/client — the
// repo's outward-facing typed API — and the server aliases them so the
// two sides of the wire cannot drift.  The historical *JSON names stay
// as aliases for in-tree callers and tests.
type (
	PositionJSON      = client.Position
	RectJSON          = client.Rect
	WhereRequest      = client.WhereRequest
	WhereResultJSON   = client.WhereResult
	WhenRequest       = client.WhenRequest
	WhenResultJSON    = client.WhenResult
	RangeRequest      = client.RangeRequest
	RangeResult       = client.RangeResult
	BatchQuery        = client.BatchQuery
	BatchRequest      = client.BatchRequest
	BatchResult       = client.BatchResult
	RawPointJSON      = client.RawPoint
	RawTrajectoryJSON = client.RawTrajectory
	IngestRequest     = client.IngestRequest
	IngestResponse    = client.IngestResponse
	CompactResponse   = client.CompactResponse
	IngestStatsJSON   = client.IngestStats
	StatsResponse     = client.StatsResponse
	ErrorResponse     = client.ErrorResponse
	Health            = client.Health
)

// Sentinels the handlers wrap so statusFor/codeFor can classify
// failures without string matching.  errBadInput marks
// request-validation failures (400); errQueryTimeout a query abandoned
// at Options.QueryTimeout (504); errTooLarge an oversized batch (413);
// errBacklog admission shedding (429); errIngestDisabled a server
// without a WAL (503); errNotLeader a replication follower refusing a
// direct write (503).
var (
	errBadInput       = errors.New("invalid request")
	errQueryTimeout   = errors.New("query timed out")
	errTooLarge       = errors.New("request too large")
	errBacklog        = errors.New("ingest backlog full")
	errIngestDisabled = errors.New("ingestion disabled")
	errNotLeader      = errors.New("not the leader")
)

// statusFor classifies a query error: caller mistakes (unknown
// trajectory, invalid location) are 400; transient degradation — a
// quarantined shard, a read-only write path, a follower refusing a
// write — is 503 so well-behaved clients back off and retry (or
// redirect to the leader); an abandoned slow query is 504.  A
// generation pin outside the retention window is 410 Gone (permanent:
// re-query at the current generation, do not retry) and a pin the store
// never reached is 404; a replication cursor checkpointed away is also
// 410 (the follower must re-snapshot).  Everything else is a
// server-side 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBadInput) || errors.Is(err, store.ErrUnknownTrajectory) ||
		errors.Is(err, ingest.ErrRejected):
		return http.StatusBadRequest
	case errors.Is(err, errTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errBacklog):
		return http.StatusTooManyRequests
	case errors.Is(err, store.ErrShardQuarantined) || errors.Is(err, ingest.ErrReadOnly) ||
		errors.Is(err, errIngestDisabled) || errors.Is(err, errNotLeader):
		return http.StatusServiceUnavailable
	case errors.Is(err, errQueryTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, store.ErrGenerationRetired) || errors.Is(err, ingest.ErrWALTruncated):
		return http.StatusGone
	case errors.Is(err, store.ErrGenerationUnknown):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// codeFor classifies an error for the v1 envelope — the machine-readable
// twin of statusFor.  Clients switch on these codes, never on message
// text (pkg/client's APIError.Temporary encodes the retry semantics).
func codeFor(err error) string {
	switch {
	case errors.Is(err, store.ErrUnknownTrajectory):
		return client.CodeUnknownTrajectory
	case errors.Is(err, errBadInput) || errors.Is(err, ingest.ErrRejected):
		return client.CodeBadRequest
	case errors.Is(err, errTooLarge):
		return client.CodeTooLarge
	case errors.Is(err, errBacklog):
		return client.CodeBacklog
	case errors.Is(err, store.ErrShardQuarantined):
		return client.CodeShardQuarantined
	case errors.Is(err, ingest.ErrReadOnly):
		return client.CodeReadOnly
	case errors.Is(err, errIngestDisabled):
		return client.CodeIngestDisabled
	case errors.Is(err, errNotLeader):
		return client.CodeNotLeader
	case errors.Is(err, errQueryTimeout):
		return client.CodeTimeout
	case errors.Is(err, store.ErrGenerationRetired):
		return client.CodeGenRetired
	case errors.Is(err, ingest.ErrWALTruncated):
		return client.CodeWALTruncated
	case errors.Is(err, store.ErrGenerationUnknown):
		return client.CodeGenUnknown
	}
	return client.CodeInternal
}

// snapshotFor resolves the store view a query request runs against: the
// current generation, or — with ?gen=N — the retained generation N, so a
// client can re-read exactly what an earlier response (or watch update)
// was computed from.  Every helper below takes the snapshot explicitly,
// which also gives multi-query requests (/v1/batch) one consistent view.
func (s *Server) snapshotFor(r *http.Request) (store.Snapshot, error) {
	q := r.URL.Query().Get("gen")
	if q == "" {
		return s.st.Snapshot(), nil
	}
	gen, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return store.Snapshot{}, fmt.Errorf("%w: gen %q is not an unsigned integer", errBadInput, q)
	}
	return s.st.SnapshotAt(gen)
}

// timed evaluates fn under the server's query timeout.  The store's query
// path takes no context (its engines compute over mapped memory without
// cancellation points), so on expiry the evaluation goroutine is
// abandoned — it finishes against its own view of the store and its
// result is dropped — and the client gets 504 instead of a connection
// held until the write timeout kills it.
func timed[T any](s *Server, fn func() (T, error)) (T, error) {
	if s.opts.QueryTimeout <= 0 {
		return fn()
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := fn()
		ch <- outcome{v, err}
	}()
	tm := time.NewTimer(s.opts.QueryTimeout)
	defer tm.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-tm.C:
		s.timeouts.Add(1)
		var zero T
		return zero, errQueryTimeout
	}
}

func (s *Server) whereJSON(sn store.Snapshot, req WhereRequest) ([]WhereResultJSON, error) {
	rs, err := sn.Where(req.Traj, req.T, req.Alpha)
	if err != nil {
		return nil, err
	}
	g := s.st.Graph()
	out := make([]WhereResultJSON, len(rs))
	for i, r := range rs {
		x, y := g.Coords(r.Loc)
		out[i] = WhereResultJSON{
			Inst: r.Inst, P: r.P,
			Edge: int(r.Loc.Edge), NDist: r.Loc.NDist,
			X: x, Y: y,
		}
	}
	return out, nil
}

func (s *Server) whenJSON(sn store.Snapshot, req WhenRequest) ([]WhenResultJSON, error) {
	if n := s.st.Graph().NumEdges(); req.Loc.Edge < 0 || req.Loc.Edge >= n {
		return nil, fmt.Errorf("%w: edge %d outside [0, %d)", errBadInput, req.Loc.Edge, n)
	}
	loc := roadnet.Position{Edge: roadnet.EdgeID(req.Loc.Edge), NDist: req.Loc.NDist}
	rs, err := sn.When(req.Traj, loc, req.Alpha)
	if err != nil {
		return nil, err
	}
	out := make([]WhenResultJSON, len(rs))
	for i, r := range rs {
		out[i] = WhenResultJSON{Inst: r.Inst, P: r.P, T: r.T}
	}
	return out, nil
}

// rangeJSON evaluates a range query over every healthy shard.  skipped
// reports live shards that could not be consulted because they are
// quarantined after open failures: the result is then a lower bound and
// the response is flagged degraded rather than failed (a scatter query
// losing one shard still has value; a 500 would have none).
func (s *Server) rangeJSON(sn store.Snapshot, req RangeRequest) (trajs []int, skipped int, err error) {
	re := roadnet.Rect{MinX: req.Rect.MinX, MinY: req.Rect.MinY, MaxX: req.Rect.MaxX, MaxY: req.Rect.MaxY}
	trajs, skipped, err = sn.RangeDegraded(re, req.T, req.Alpha)
	if err != nil {
		return nil, 0, err
	}
	if skipped > 0 {
		s.degraded.Add(1)
	}
	if trajs == nil {
		trajs = []int{}
	}
	return trajs, skipped, nil
}

func (s *Server) handleWhere(w http.ResponseWriter, r *http.Request) {
	var req WhereRequest
	if !s.decode(w, r, &req) {
		return
	}
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	rs, err := timed(s, func() ([]WhereResultJSON, error) { return s.whereJSON(sn, req) })
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]any{"results": rs})
}

func (s *Server) handleWhen(w http.ResponseWriter, r *http.Request) {
	var req WhenRequest
	if !s.decode(w, r, &req) {
		return
	}
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	rs, err := timed(s, func() ([]WhenResultJSON, error) { return s.whenJSON(sn, req) })
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]any{"results": rs})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	type rangeOut struct {
		trajs   []int
		skipped int
	}
	out, err := timed(s, func() (rangeOut, error) {
		trajs, skipped, err := s.rangeJSON(sn, req)
		return rangeOut{trajs, skipped}, err
	})
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, RangeResult{Trajs: out.trajs, Degraded: out.skipped > 0, ShardsSkipped: out.skipped})
}

// handleBatch evaluates the request's queries on a bounded worker pool and
// returns per-query results in request order.  Individual failures are
// reported in-band so one bad query does not void the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		err := fmt.Errorf("%w: batch of %d exceeds limit %d", errTooLarge, len(req.Queries), s.opts.MaxBatch)
		s.fail(w, statusFor(err), err)
		return
	}
	// One snapshot for the whole batch: every query answers at the same
	// generation even while ingestion mutates the store mid-batch.
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	results, err := timed(s, func() ([]BatchResult, error) {
		results := make([]BatchResult, len(req.Queries))
		// Errors land in results; par.Do never sees one.
		_ = par.Do(par.Workers(s.opts.BatchParallelism), len(req.Queries), func(i int) error {
			q := req.Queries[i]
			switch {
			case q.Kind == "where" && q.Where != nil:
				rs, err := s.whereJSON(sn, *q.Where)
				if err != nil {
					results[i].Error, results[i].Code = err.Error(), codeFor(err)
					return nil
				}
				results[i].Where = rs
			case q.Kind == "when" && q.When != nil:
				rs, err := s.whenJSON(sn, *q.When)
				if err != nil {
					results[i].Error, results[i].Code = err.Error(), codeFor(err)
					return nil
				}
				results[i].When = rs
			case q.Kind == "range" && q.Range != nil:
				trajs, skipped, err := s.rangeJSON(sn, *q.Range)
				if err != nil {
					results[i].Error, results[i].Code = err.Error(), codeFor(err)
					return nil
				}
				results[i].Trajs = trajs
				results[i].Degraded = skipped > 0
			default:
				results[i].Error = fmt.Sprintf("query %d: kind %q without a matching body", i, q.Kind)
				results[i].Code = client.CodeBadRequest
			}
			return nil
		})
		return results, nil
	})
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]any{"results": results})
}

// handleIngest acknowledges raw trajectories.  The whole batch is
// validated before anything touches the WAL, then appended and fsynced
// under one group commit (SubmitBatch), so the request is atomic from the
// client's view: a 400 means nothing was acknowledged, a 200 means the
// entire batch survives a crash.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !s.decode(w, r, &req) {
		return
	}
	if s.ing == nil {
		err := fmt.Errorf("%w: utcqd started without -wal", errIngestDisabled)
		s.fail(w, statusFor(err), err)
		return
	}
	if s.opts.Follower {
		err := fmt.Errorf("%w: this node is a replication follower; submit writes to the leader", errNotLeader)
		s.fail(w, statusFor(err), err)
		return
	}
	if len(req.Trajectories) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: no trajectories", errBadInput))
		return
	}
	// Bounded admission: past the pending limit the WAL keeps growing
	// faster than the drain empties it, so shed load here — the batch was
	// not acknowledged and the client retries after backoff.
	if limit := s.opts.MaxPending; limit > 0 {
		if pending := s.ing.Pending(); pending >= limit {
			s.rejected.Add(1)
			err := fmt.Errorf("%w: %d acknowledged records pending (limit %d)", errBacklog, pending, limit)
			s.fail(w, statusFor(err), err)
			return
		}
	}
	raws := make([]traj.RawTrajectory, len(req.Trajectories))
	for i, rt := range req.Trajectories {
		pts := make([]traj.RawPoint, len(rt.Points))
		for k, p := range rt.Points {
			pts[k] = traj.RawPoint{X: p.X, Y: p.Y, T: p.T}
		}
		raws[i] = traj.RawTrajectory{Points: pts}
	}
	first, err := s.ing.SubmitBatch(raws)
	if err != nil {
		// ErrRejected is the client's mistake (400); ErrReadOnly is the
		// WAL failure latch — reads keep working, writes answer 503 until
		// the operator intervenes.
		s.fail(w, statusFor(err), err)
		return
	}
	resp := IngestResponse{Accepted: len(raws), FirstSeq: first}
	if req.Flush {
		// A synchronous flush map-matches and compresses the batch before
		// replying; lift the connection's write deadline so a large batch
		// is not cut off mid-mutation.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
		gen, err := s.ing.Flush()
		if err != nil {
			// The batch IS durably acknowledged — only the synchronous
			// application failed; it will drain later.  A plain 500 would
			// invite a resubmit and duplicate the records, so answer 202
			// with the acknowledgement and the flush failure in-band.
			s.failures.Add(1)
			resp.Generation = s.st.Generation()
			resp.Pending = uint64(s.ing.Pending())
			resp.FlushError = err.Error()
			s.replyStatus(w, http.StatusAccepted, resp)
			return
		}
		resp.Generation = gen
		// The batch has folded; report which records the matcher dropped
		// so sequence-to-id mapping callers (the cluster router) can
		// account for the ids that were never created, and the post-flush
		// trajectory count so those callers can verify their id maps
		// before committing an assignment.
		for _, seq := range s.ing.DroppedIn(first, first+uint64(len(raws))) {
			resp.Dropped = append(resp.Dropped, int(seq-first))
		}
		resp.Trajectories = s.st.NumTrajectories()
	} else {
		resp.Generation = s.st.Generation()
	}
	resp.Pending = uint64(s.ing.Pending())
	s.reply(w, resp)
}

// handleCompact drains pending ingestion and folds the live delta shards
// into a base shard.  Without an ingester the store compacts directly
// (useful after offline bulk loads).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	// Compaction duration scales with the delta population; don't let the
	// server's write timeout cut the response while the merge completes.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	var folded int
	var err error
	if s.ing != nil {
		folded, err = s.ing.Compact()
	} else {
		folded, err = s.st.Compact()
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.reply(w, CompactResponse{Folded: folded, Generation: s.st.Generation()})
}

// handleHealthz is liveness plus degradation visibility: the process is
// alive (200) as long as it can answer, but the body reports "degraded"
// with the reasons — quarantined shards, a read-only write path — so
// operators and load balancers see partial failure without scraping
// /stats.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := Health{Status: "ok"}
	if q := s.st.QuarantinedShards(); q > 0 {
		resp.Status = "degraded"
		resp.QuarantinedShards = q
	}
	if s.ing != nil && s.ing.ReadOnly() != nil {
		resp.Status = "degraded"
		resp.ReadOnly = true
	}
	s.reply(w, resp)
}

// redirectStats 301s the pre-versioning /stats alias to /v1/stats.
func redirectStats(w http.ResponseWriter, r *http.Request) {
	http.Redirect(w, r, "/v1/stats", http.StatusMovedPermanently)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.st.Stats()
	b := s.st.Bounds()
	db := s.st.DataBounds()
	resp := StatsResponse{
		Shards:            st.Shards,
		BaseShards:        st.BaseShards,
		DeltaShards:       st.DeltaShards,
		Tombstones:        st.Tombstones,
		OpenShards:        st.OpenShards,
		Trajectories:      st.Trajectories,
		Assignment:        st.Assignment,
		Generation:        st.Generation,
		Compactions:       st.Compactions,
		TimeMin:           st.TimeMin,
		TimeMax:           st.TimeMax,
		Bounds:            RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY},
		DataBounds:        RectJSON{MinX: db.MinX, MinY: db.MinY, MaxX: db.MaxX, MaxY: db.MaxY},
		Engine:            client.EngineStats(st.Engine),
		Succinct:          client.SuccinctStats(st.Succinct),
		SidecarLoads:      st.SidecarLoads,
		SidecarRebuilds:   st.SidecarRebuilds,
		MappedBytes:       st.MappedBytes,
		RSSBytes:          st.RSSBytes,
		QuarantinedShards: st.QuarantinedShards,
		ShardOpenFailures: st.ShardOpenFailures,
		Rejected:          s.rejected.Load(),
		Timeouts:          s.timeouts.Load(),
		DegradedQueries:   s.degraded.Load(),
		Watchers:          s.watchers.Load(),
		WatchNotifies:     s.watchNotifies.Load(),
		Requests:          s.requests.Load(),
		Failures:          s.failures.Load(),
		UptimeSeconds:     time.Since(s.started).Seconds(),
	}
	if s.ing != nil {
		is := s.ing.Stats()
		resp.Ingest = &IngestStatsJSON{
			Acked:        is.Acked,
			Applied:      is.Applied,
			Pending:      is.Pending,
			PendingLimit: max(s.opts.MaxPending, 0),
			Matched:      is.Matched,
			Dropped:      is.Dropped,
			Batches:      is.Batches,
			Compactions:  is.Compactions,
			WALBytes:     is.WALBytes,
			ReadOnly:     is.ReadOnly,
			SimplifyEps:  is.SimplifyEps,
			PointsIn:     is.PointsIn,
			PointsKept:   is.PointsKept,
		}
	}
	s.reply(w, resp)
}

// decode parses a JSON body, rejecting unknown fields so client typos
// surface as 400s instead of silently defaulted queries.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	s.requests.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func (s *Server) reply(w http.ResponseWriter, payload any) {
	s.replyStatus(w, http.StatusOK, payload)
}

// replyStatus writes a JSON payload under an explicit status.  An
// encode failure (the client went away mid-body, typically) counts in
// the failures gauge — nothing else can be done at that point, but it
// must not vanish from the counters.
func (s *Server) replyStatus(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		s.failures.Add(1)
	}
}

// fail answers with the v1 error envelope {code, error, retryAfter?}.
// Transient conditions carry a Retry-After header (duplicated in the
// envelope for clients that cannot reach headers) so off-the-shelf
// clients back off: admission rejections clear as soon as the drain
// catches up; quarantined shards and read-only mode take operator time.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.failWith(w, status, codeFor(err), err)
}

// failWith is fail with an explicit envelope code, for the few places
// (the replication file endpoint's not_found) where the code is not a
// sentinel classification.
func (s *Server) failWith(w http.ResponseWriter, status int, code string, err error) {
	s.failures.Add(1)
	env := ErrorResponse{Code: code, Error: err.Error()}
	switch status {
	case http.StatusTooManyRequests:
		env.RetryAfter = 1
	case http.StatusServiceUnavailable:
		env.RetryAfter = 2
	}
	w.Header().Set("Content-Type", "application/json")
	if env.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(env.RetryAfter))
	}
	w.WriteHeader(status)
	if eerr := json.NewEncoder(w).Encode(env); eerr != nil {
		// The envelope itself failed to reach the client; count it so
		// the drop is visible (this was silently ignored before).
		s.failures.Add(1)
	}
}
