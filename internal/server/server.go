// Package server exposes a sharded trajectory store (internal/store) over
// HTTP/JSON: the network query front-end of the UTCQ system.  It serves
// the paper's three probabilistic queries — where (Definition 10), when
// (Definition 11) and range (Definition 12) — as single-query endpoints
// and as one batched endpoint that fans a request's queries across a
// bounded worker pool, plus /healthz for liveness and /stats for the
// store's aggregated engine and cache counters.  With an ingester
// attached (Options.Ingester) the server also accepts live traffic:
// POST /v1/ingest acknowledges raw trajectories into the WAL and
// POST /v1/compact folds accumulated delta shards into a base shard.
//
// The handlers hold no per-request state beyond the decoded bodies; all
// concurrency control lives in the store and its per-shard engines, so one
// Server instance serves any number of connections.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"utcq/internal/ingest"
	"utcq/internal/par"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// Options configure a Server.
type Options struct {
	// MaxBatch bounds the queries accepted in one /v1/batch request
	// (default 256).
	MaxBatch int
	// BatchParallelism bounds the workers evaluating one batch
	// (<1: one per CPU).
	BatchParallelism int
	// ReadTimeout/WriteTimeout guard slow clients (defaults 10s/30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// QueryTimeout bounds the evaluation of one query request (where /
	// when / range / batch).  A request still running at the deadline is
	// abandoned and answered 504, so one shard stuck in slow I/O cannot
	// pile up every client connection behind it (default 30s; <0
	// disables).
	QueryTimeout time.Duration
	// MaxPending bounds the ingest admission queue: while at least this
	// many acknowledged records await application, /v1/ingest answers
	// 429 with a Retry-After header instead of letting the WAL and the
	// drain backlog grow without limit (default 4096; <0 disables).
	MaxPending int
	// Ingester enables live ingestion.  Nil disables data ingress:
	// /v1/ingest answers 503.  /v1/compact remains available either way
	// (compaction is maintenance over data already in the store, useful
	// after offline bulk loads).
	Ingester *ingest.Ingester
}

// DefaultOptions returns the server defaults.
func DefaultOptions() Options {
	return Options{
		MaxBatch:     256,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		QueryTimeout: 30 * time.Second,
		MaxPending:   4096,
	}
}

// Server is the HTTP query service over one store.
type Server struct {
	st   *store.Store
	ing  *ingest.Ingester
	opts Options
	mux  *http.ServeMux
	hs   *http.Server

	started  time.Time
	requests atomic.Int64
	failures atomic.Int64

	// Degradation counters: admission rejections (429), abandoned slow
	// queries (504) and range queries answered without their quarantined
	// shards.
	rejected atomic.Int64
	timeouts atomic.Int64
	degraded atomic.Int64

	// Streaming counters: watch subscriptions currently connected, and
	// update payloads delivered to them (initial results + increments).
	watchers      atomic.Int64
	watchNotifies atomic.Int64
}

// New returns a server over st.  Zero-valued options select defaults.
func New(st *store.Store, opts Options) *Server {
	def := DefaultOptions()
	if opts.MaxBatch < 1 {
		opts.MaxBatch = def.MaxBatch
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = def.ReadTimeout
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = def.WriteTimeout
	}
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = def.QueryTimeout
	}
	if opts.MaxPending == 0 {
		opts.MaxPending = def.MaxPending
	}
	s := &Server{st: st, ing: opts.Ingester, opts: opts, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/where", s.handleWhere)
	s.mux.HandleFunc("POST /v1/when", s.handleWhen)
	s.mux.HandleFunc("POST /v1/range", s.handleRange)
	s.mux.HandleFunc("GET /v1/watch/range", s.handleWatchRange)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	// The http.Server exists from construction so Shutdown is effective
	// even if it races server start (a Serve call after Shutdown returns
	// ErrServerClosed immediately instead of leaking a live listener).
	s.hs = &http.Server{
		Handler:      s.mux,
		ReadTimeout:  opts.ReadTimeout,
		WriteTimeout: opts.WriteTimeout,
	}
	return s
}

// Handler returns the route table (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains in-flight requests and stops the listener (graceful
// shutdown; pass a context with a deadline to bound the drain).  Safe to
// call before, during or after Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// Wire types.  Field names are part of the HTTP API; see the README
// "Serving" section for the endpoint reference.
type (
	// PositionJSON is a network-constrained location.
	PositionJSON struct {
		Edge  int     `json:"edge"`
		NDist float64 `json:"ndist"`
	}

	// RectJSON is an axis-aligned query rectangle.
	RectJSON struct {
		MinX float64 `json:"minX"`
		MinY float64 `json:"minY"`
		MaxX float64 `json:"maxX"`
		MaxY float64 `json:"maxY"`
	}

	// WhereRequest asks where trajectory Traj's instances with
	// probability >= Alpha were at time T.
	WhereRequest struct {
		Traj  int     `json:"traj"`
		T     int64   `json:"t"`
		Alpha float64 `json:"alpha"`
	}

	// WhereResultJSON is one instance's location, with the grid
	// coordinates resolved for convenience.
	WhereResultJSON struct {
		Inst  int     `json:"inst"`
		P     float64 `json:"p"`
		Edge  int     `json:"edge"`
		NDist float64 `json:"ndist"`
		X     float64 `json:"x"`
		Y     float64 `json:"y"`
	}

	// WhenRequest asks when trajectory Traj's instances with probability
	// >= Alpha passed Loc.
	WhenRequest struct {
		Traj  int          `json:"traj"`
		Loc   PositionJSON `json:"loc"`
		Alpha float64      `json:"alpha"`
	}

	// WhenResultJSON is one instance's passage time.
	WhenResultJSON struct {
		Inst int     `json:"inst"`
		P    float64 `json:"p"`
		T    int64   `json:"t"`
	}

	// RangeRequest asks which trajectories were inside Rect at time T
	// with total probability >= Alpha.
	RangeRequest struct {
		Rect  RectJSON `json:"rect"`
		T     int64    `json:"t"`
		Alpha float64  `json:"alpha"`
	}

	// BatchQuery is one query of a batch; exactly one of Where, When and
	// Range must be set, matching Kind ("where", "when" or "range").
	BatchQuery struct {
		Kind  string        `json:"kind"`
		Where *WhereRequest `json:"where,omitempty"`
		When  *WhenRequest  `json:"when,omitempty"`
		Range *RangeRequest `json:"range,omitempty"`
	}

	// BatchRequest carries up to Options.MaxBatch queries.
	BatchRequest struct {
		Queries []BatchQuery `json:"queries"`
	}

	// BatchResult is the outcome of one batch query, in request order.
	// On success the field matching the query kind holds the results and
	// Error is empty; a query with zero results serializes as {} (empty
	// payloads are omitted).  Error carries the failure otherwise.
	// Degraded marks a range result that skipped quarantined shards and
	// is therefore a lower bound.
	BatchResult struct {
		Where    []WhereResultJSON `json:"where,omitempty"`
		When     []WhenResultJSON  `json:"when,omitempty"`
		Trajs    []int             `json:"trajs,omitempty"`
		Degraded bool              `json:"degraded,omitempty"`
		Error    string            `json:"error,omitempty"`
	}

	// RawPointJSON is one GPS fix of an ingested trajectory.
	RawPointJSON struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
		T int64   `json:"t"`
	}

	// RawTrajectoryJSON is one raw trajectory submitted for ingestion.
	RawTrajectoryJSON struct {
		Points []RawPointJSON `json:"points"`
	}

	// IngestRequest carries raw trajectories for the WAL.  With Flush set
	// the response is only sent after the batch has been map-matched and
	// folded into the store (synchronous ingestion; otherwise the records
	// are acknowledged durable and become queryable at the next drain).
	IngestRequest struct {
		Trajectories []RawTrajectoryJSON `json:"trajectories"`
		Flush        bool                `json:"flush,omitempty"`
	}

	// IngestResponse reports the acknowledged batch.  FlushError is set
	// (with HTTP 202) when the batch was durably acknowledged but a
	// requested synchronous flush failed afterwards: the records are NOT
	// lost — they apply on a later drain or after a restart — and the
	// client MUST NOT resubmit them.
	IngestResponse struct {
		Accepted   int    `json:"accepted"`
		FirstSeq   uint64 `json:"firstSeq"`
		Pending    uint64 `json:"pending"`
		Generation uint64 `json:"generation"`
		FlushError string `json:"flushError,omitempty"`
	}

	// CompactResponse reports a compaction run.
	CompactResponse struct {
		Folded     int    `json:"folded"`
		Generation uint64 `json:"generation"`
	}

	// IngestStatsJSON mirrors ingest.Stats on /stats.  PendingLimit is
	// the server's admission bound (0 = unbounded); ReadOnly reports the
	// write path latched off after a WAL failure.
	IngestStatsJSON struct {
		Acked        uint64 `json:"acked"`
		Applied      uint64 `json:"applied"`
		Pending      uint64 `json:"pending"`
		PendingLimit int    `json:"pendingLimit"`
		Matched      int64  `json:"matched"`
		Dropped      int64  `json:"dropped"`
		Batches      int64  `json:"batches"`
		Compactions  int64  `json:"compactions"`
		WALBytes     int64  `json:"walBytes"`
		ReadOnly     bool   `json:"readOnly"`
		// Admission-time simplification: the configured SED budget (0:
		// off) and the raw points submitted vs surviving it.
		SimplifyEps float64 `json:"simplifyEps"`
		PointsIn    int64   `json:"pointsIn"`
		PointsKept  int64   `json:"pointsKept"`
	}

	// StatsResponse is the /stats payload: store shape, aggregated engine
	// counters, ingestion state, and server request totals.  Bounds and
	// the time span let load generators synthesize valid queries without
	// a side channel.
	StatsResponse struct {
		Shards       int      `json:"shards"`
		BaseShards   int      `json:"baseShards"`
		DeltaShards  int      `json:"deltaShards"`
		Tombstones   int      `json:"tombstones"`
		OpenShards   int      `json:"openShards"`
		Trajectories int      `json:"trajectories"`
		Assignment   string   `json:"assignment"`
		Generation   uint64   `json:"generation"`
		Compactions  int64    `json:"compactions"`
		TimeMin      int64    `json:"timeMin"`
		TimeMax      int64    `json:"timeMax"`
		Bounds       RectJSON `json:"bounds"`

		Engine query.EngineStats `json:"engine"`

		// Memory-serving gauges (PR6): sidecar cache effectiveness and
		// process residency, so operators can see zero-copy working.
		SidecarLoads    int64 `json:"sidecarLoads"`
		SidecarRebuilds int64 `json:"sidecarRebuilds"`
		MappedBytes     int64 `json:"mappedBytes"`
		RSSBytes        int64 `json:"rssBytes"`

		// Degradation state (PR7): shards currently served around
		// (quarantined after open failures), total open failures observed,
		// and the server's shed/abandon/degrade counters.
		QuarantinedShards int   `json:"quarantinedShards"`
		ShardOpenFailures int64 `json:"shardOpenFailures"`
		Rejected          int64 `json:"rejected"`
		Timeouts          int64 `json:"timeouts"`
		DegradedQueries   int64 `json:"degradedQueries"`

		// Streaming state (PR8): live watch subscriptions and the update
		// payloads delivered to them.
		Watchers      int64 `json:"watchers"`
		WatchNotifies int64 `json:"watchNotifies"`

		// Ingest is present only when the server was started with an
		// ingester attached.
		Ingest *IngestStatsJSON `json:"ingest,omitempty"`

		Requests      int64   `json:"requests"`
		Failures      int64   `json:"failures"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}
)

// errBadInput marks request-validation failures so handlers report them
// as 400s; errQueryTimeout marks a query abandoned at Options.QueryTimeout.
var (
	errBadInput     = errors.New("invalid request")
	errQueryTimeout = errors.New("query timed out")
)

// statusFor classifies a query error: caller mistakes (unknown
// trajectory, invalid location) are 400; transient degradation — a
// quarantined shard or a read-only write path — is 503 so well-behaved
// clients back off and retry; an abandoned slow query is 504.  A
// generation pin outside the retention window is 410 Gone (permanent:
// re-query at the current generation, do not retry) and a pin the store
// never reached is 404.  Everything else is a server-side 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBadInput) || errors.Is(err, store.ErrUnknownTrajectory):
		return http.StatusBadRequest
	case errors.Is(err, store.ErrShardQuarantined) || errors.Is(err, ingest.ErrReadOnly):
		return http.StatusServiceUnavailable
	case errors.Is(err, errQueryTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, store.ErrGenerationRetired):
		return http.StatusGone
	case errors.Is(err, store.ErrGenerationUnknown):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// snapshotFor resolves the store view a query request runs against: the
// current generation, or — with ?gen=N — the retained generation N, so a
// client can re-read exactly what an earlier response (or watch update)
// was computed from.  Every helper below takes the snapshot explicitly,
// which also gives multi-query requests (/v1/batch) one consistent view.
func (s *Server) snapshotFor(r *http.Request) (store.Snapshot, error) {
	q := r.URL.Query().Get("gen")
	if q == "" {
		return s.st.Snapshot(), nil
	}
	gen, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return store.Snapshot{}, fmt.Errorf("%w: gen %q is not an unsigned integer", errBadInput, q)
	}
	return s.st.SnapshotAt(gen)
}

// timed evaluates fn under the server's query timeout.  The store's query
// path takes no context (its engines compute over mapped memory without
// cancellation points), so on expiry the evaluation goroutine is
// abandoned — it finishes against its own view of the store and its
// result is dropped — and the client gets 504 instead of a connection
// held until the write timeout kills it.
func timed[T any](s *Server, fn func() (T, error)) (T, error) {
	if s.opts.QueryTimeout <= 0 {
		return fn()
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := fn()
		ch <- outcome{v, err}
	}()
	tm := time.NewTimer(s.opts.QueryTimeout)
	defer tm.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-tm.C:
		s.timeouts.Add(1)
		var zero T
		return zero, errQueryTimeout
	}
}

func (s *Server) whereJSON(sn store.Snapshot, req WhereRequest) ([]WhereResultJSON, error) {
	rs, err := sn.Where(req.Traj, req.T, req.Alpha)
	if err != nil {
		return nil, err
	}
	g := s.st.Graph()
	out := make([]WhereResultJSON, len(rs))
	for i, r := range rs {
		x, y := g.Coords(r.Loc)
		out[i] = WhereResultJSON{
			Inst: r.Inst, P: r.P,
			Edge: int(r.Loc.Edge), NDist: r.Loc.NDist,
			X: x, Y: y,
		}
	}
	return out, nil
}

func (s *Server) whenJSON(sn store.Snapshot, req WhenRequest) ([]WhenResultJSON, error) {
	if n := s.st.Graph().NumEdges(); req.Loc.Edge < 0 || req.Loc.Edge >= n {
		return nil, fmt.Errorf("%w: edge %d outside [0, %d)", errBadInput, req.Loc.Edge, n)
	}
	loc := roadnet.Position{Edge: roadnet.EdgeID(req.Loc.Edge), NDist: req.Loc.NDist}
	rs, err := sn.When(req.Traj, loc, req.Alpha)
	if err != nil {
		return nil, err
	}
	out := make([]WhenResultJSON, len(rs))
	for i, r := range rs {
		out[i] = WhenResultJSON{Inst: r.Inst, P: r.P, T: r.T}
	}
	return out, nil
}

// rangeJSON evaluates a range query over every healthy shard.  skipped
// reports live shards that could not be consulted because they are
// quarantined after open failures: the result is then a lower bound and
// the response is flagged degraded rather than failed (a scatter query
// losing one shard still has value; a 500 would have none).
func (s *Server) rangeJSON(sn store.Snapshot, req RangeRequest) (trajs []int, skipped int, err error) {
	re := roadnet.Rect{MinX: req.Rect.MinX, MinY: req.Rect.MinY, MaxX: req.Rect.MaxX, MaxY: req.Rect.MaxY}
	trajs, skipped, err = sn.RangeDegraded(re, req.T, req.Alpha)
	if err != nil {
		return nil, 0, err
	}
	if skipped > 0 {
		s.degraded.Add(1)
	}
	if trajs == nil {
		trajs = []int{}
	}
	return trajs, skipped, nil
}

func (s *Server) handleWhere(w http.ResponseWriter, r *http.Request) {
	var req WhereRequest
	if !s.decode(w, r, &req) {
		return
	}
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	rs, err := timed(s, func() ([]WhereResultJSON, error) { return s.whereJSON(sn, req) })
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]any{"results": rs})
}

func (s *Server) handleWhen(w http.ResponseWriter, r *http.Request) {
	var req WhenRequest
	if !s.decode(w, r, &req) {
		return
	}
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	rs, err := timed(s, func() ([]WhenResultJSON, error) { return s.whenJSON(sn, req) })
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]any{"results": rs})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	type rangeOut struct {
		trajs   []int
		skipped int
	}
	out, err := timed(s, func() (rangeOut, error) {
		trajs, skipped, err := s.rangeJSON(sn, req)
		return rangeOut{trajs, skipped}, err
	})
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	resp := map[string]any{"trajs": out.trajs}
	if out.skipped > 0 {
		resp["degraded"] = true
		resp["shardsSkipped"] = out.skipped
	}
	s.reply(w, resp)
}

// handleBatch evaluates the request's queries on a bounded worker pool and
// returns per-query results in request order.  Individual failures are
// reported in-band so one bad query does not void the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Queries), s.opts.MaxBatch))
		return
	}
	// One snapshot for the whole batch: every query answers at the same
	// generation even while ingestion mutates the store mid-batch.
	sn, err := s.snapshotFor(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	results, err := timed(s, func() ([]BatchResult, error) {
		results := make([]BatchResult, len(req.Queries))
		// Errors land in results; par.Do never sees one.
		_ = par.Do(par.Workers(s.opts.BatchParallelism), len(req.Queries), func(i int) error {
			q := req.Queries[i]
			switch {
			case q.Kind == "where" && q.Where != nil:
				rs, err := s.whereJSON(sn, *q.Where)
				if err != nil {
					results[i].Error = err.Error()
					return nil
				}
				results[i].Where = rs
			case q.Kind == "when" && q.When != nil:
				rs, err := s.whenJSON(sn, *q.When)
				if err != nil {
					results[i].Error = err.Error()
					return nil
				}
				results[i].When = rs
			case q.Kind == "range" && q.Range != nil:
				trajs, skipped, err := s.rangeJSON(sn, *q.Range)
				if err != nil {
					results[i].Error = err.Error()
					return nil
				}
				results[i].Trajs = trajs
				results[i].Degraded = skipped > 0
			default:
				results[i].Error = fmt.Sprintf("query %d: kind %q without a matching body", i, q.Kind)
			}
			return nil
		})
		return results, nil
	})
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]any{"results": results})
}

// handleIngest acknowledges raw trajectories.  The whole batch is
// validated before anything touches the WAL, then appended and fsynced
// under one group commit (SubmitBatch), so the request is atomic from the
// client's view: a 400 means nothing was acknowledged, a 200 means the
// entire batch survives a crash.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !s.decode(w, r, &req) {
		return
	}
	if s.ing == nil {
		s.fail(w, http.StatusServiceUnavailable, errors.New("ingestion disabled: utcqd started without -wal"))
		return
	}
	if len(req.Trajectories) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: no trajectories", errBadInput))
		return
	}
	// Bounded admission: past the pending limit the WAL keeps growing
	// faster than the drain empties it, so shed load here — the batch was
	// not acknowledged and the client retries after backoff.
	if limit := s.opts.MaxPending; limit > 0 {
		if pending := s.ing.Pending(); pending >= limit {
			s.rejected.Add(1)
			s.fail(w, http.StatusTooManyRequests,
				fmt.Errorf("ingest backlog full: %d acknowledged records pending (limit %d)", pending, limit))
			return
		}
	}
	raws := make([]traj.RawTrajectory, len(req.Trajectories))
	for i, rt := range req.Trajectories {
		pts := make([]traj.RawPoint, len(rt.Points))
		for k, p := range rt.Points {
			pts[k] = traj.RawPoint{X: p.X, Y: p.Y, T: p.T}
		}
		raws[i] = traj.RawTrajectory{Points: pts}
	}
	first, err := s.ing.SubmitBatch(raws)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ingest.ErrRejected):
			code = http.StatusBadRequest
		case errors.Is(err, ingest.ErrReadOnly):
			// A WAL failure latched the write path read-only; reads keep
			// working, writes answer 503 until the operator intervenes.
			code = http.StatusServiceUnavailable
		}
		s.fail(w, code, err)
		return
	}
	resp := IngestResponse{Accepted: len(raws), FirstSeq: first}
	if req.Flush {
		// A synchronous flush map-matches and compresses the batch before
		// replying; lift the connection's write deadline so a large batch
		// is not cut off mid-mutation.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
		gen, err := s.ing.Flush()
		if err != nil {
			// The batch IS durably acknowledged — only the synchronous
			// application failed; it will drain later.  A plain 500 would
			// invite a resubmit and duplicate the records, so answer 202
			// with the acknowledgement and the flush failure in-band.
			s.failures.Add(1)
			resp.Generation = s.st.Generation()
			resp.Pending = uint64(s.ing.Pending())
			resp.FlushError = err.Error()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(resp)
			return
		}
		resp.Generation = gen
	} else {
		resp.Generation = s.st.Generation()
	}
	resp.Pending = uint64(s.ing.Pending())
	s.reply(w, resp)
}

// handleCompact drains pending ingestion and folds the live delta shards
// into a base shard.  Without an ingester the store compacts directly
// (useful after offline bulk loads).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	// Compaction duration scales with the delta population; don't let the
	// server's write timeout cut the response while the merge completes.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	var folded int
	var err error
	if s.ing != nil {
		folded, err = s.ing.Compact()
	} else {
		folded, err = s.st.Compact()
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.reply(w, CompactResponse{Folded: folded, Generation: s.st.Generation()})
}

// handleHealthz is liveness plus degradation visibility: the process is
// alive (200) as long as it can answer, but the body reports "degraded"
// with the reasons — quarantined shards, a read-only write path — so
// operators and load balancers see partial failure without scraping
// /stats.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok"}
	if q := s.st.QuarantinedShards(); q > 0 {
		resp["status"] = "degraded"
		resp["quarantinedShards"] = q
	}
	if s.ing != nil && s.ing.ReadOnly() != nil {
		resp["status"] = "degraded"
		resp["readOnly"] = true
	}
	s.reply(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.st.Stats()
	b := s.st.Bounds()
	resp := StatsResponse{
		Shards:            st.Shards,
		BaseShards:        st.BaseShards,
		DeltaShards:       st.DeltaShards,
		Tombstones:        st.Tombstones,
		OpenShards:        st.OpenShards,
		Trajectories:      st.Trajectories,
		Assignment:        st.Assignment,
		Generation:        st.Generation,
		Compactions:       st.Compactions,
		TimeMin:           st.TimeMin,
		TimeMax:           st.TimeMax,
		Bounds:            RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY},
		Engine:            st.Engine,
		SidecarLoads:      st.SidecarLoads,
		SidecarRebuilds:   st.SidecarRebuilds,
		MappedBytes:       st.MappedBytes,
		RSSBytes:          st.RSSBytes,
		QuarantinedShards: st.QuarantinedShards,
		ShardOpenFailures: st.ShardOpenFailures,
		Rejected:          s.rejected.Load(),
		Timeouts:          s.timeouts.Load(),
		DegradedQueries:   s.degraded.Load(),
		Watchers:          s.watchers.Load(),
		WatchNotifies:     s.watchNotifies.Load(),
		Requests:          s.requests.Load(),
		Failures:          s.failures.Load(),
		UptimeSeconds:     time.Since(s.started).Seconds(),
	}
	if s.ing != nil {
		is := s.ing.Stats()
		resp.Ingest = &IngestStatsJSON{
			Acked:        is.Acked,
			Applied:      is.Applied,
			Pending:      is.Pending,
			PendingLimit: max(s.opts.MaxPending, 0),
			Matched:      is.Matched,
			Dropped:      is.Dropped,
			Batches:      is.Batches,
			Compactions:  is.Compactions,
			WALBytes:     is.WALBytes,
			ReadOnly:     is.ReadOnly,
			SimplifyEps:  is.SimplifyEps,
			PointsIn:     is.PointsIn,
			PointsKept:   is.PointsKept,
		}
	}
	s.reply(w, resp)
}

// decode parses a JSON body, rejecting unknown fields so client typos
// surface as 400s instead of silently defaulted queries.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	s.requests.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func (s *Server) reply(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		s.failures.Add(1)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.failures.Add(1)
	w.Header().Set("Content-Type", "application/json")
	// Transient conditions carry a Retry-After so off-the-shelf clients
	// back off: admission rejections clear as soon as the drain catches
	// up; quarantined shards and read-only mode take operator time.
	switch code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "2")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
