package server

import (
	"net/http"
	"net/url"
	"testing"
	"time"
)

// FuzzWatchRequestParse hammers the subscription parser with arbitrary
// query strings: it must never panic, and anything it accepts must be a
// sane subscription — ordered finite rectangle, alpha in [0, 1], poll
// window within the server cap.  The parser fronts a long-lived handler
// goroutine, so an accepted-but-insane request would park resources, not
// just answer wrong.
func FuzzWatchRequestParse(f *testing.F) {
	f.Add("minX=0&minY=0&maxX=100&maxY=100&t=5000&alpha=0.2")
	f.Add("minX=0&minY=0&maxX=9&maxY=9&t=5&gen=3&cursor=7&timeout=10&stream=sse")
	f.Add("minX=1e308&minY=-1e308&maxX=1e309&maxY=0&t=0")
	f.Add("minX=NaN&minY=0&maxX=9&maxY=9&t=5")
	f.Add("minX=0&minY=0&maxX=9&maxY=9&t=5&timeout=99999999")
	f.Add("stream=%00&t=")
	f.Fuzz(func(t *testing.T, rawQuery string) {
		r := &http.Request{URL: &url.URL{Path: "/v1/watch/range", RawQuery: rawQuery}}
		req, err := parseWatchRequest(r)
		if err != nil {
			return
		}
		if req.re.MinX > req.re.MaxX || req.re.MinY > req.re.MaxY {
			t.Fatalf("accepted inverted rectangle: %+v", req.re)
		}
		if req.re.MinX != req.re.MinX || req.re.MaxX != req.re.MaxX ||
			req.re.MinY != req.re.MinY || req.re.MaxY != req.re.MaxY {
			t.Fatalf("accepted NaN rectangle: %+v", req.re)
		}
		if req.alpha < 0 || req.alpha > 1 || req.alpha != req.alpha {
			t.Fatalf("accepted alpha %v", req.alpha)
		}
		if req.wait < 0 || req.wait > watchMaxWait {
			t.Fatalf("accepted poll window %v outside (0, %v]", req.wait, watchMaxWait)
		}
		if req.wait == 0 && req.wait != time.Duration(0) {
			t.Fatal("unreachable")
		}
	})
}
