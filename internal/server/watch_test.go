package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/mapmatch"
	"utcq/internal/stiu"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// newWatchFixture builds an ingest-enabled server with numRaw raws, the
// first 6 in the base store and the rest returned for live submission.
func newWatchFixture(t *testing.T, numRaw int) (*httptest.Server, *store.Store, []traj.RawTrajectory) {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, numRaw, 29)
	if err != nil {
		t.Fatal(err)
	}
	m := mapmatch.New(g, eix, p.Match)
	var base []*traj.Uncertain
	for _, raw := range raws[:6] {
		if u, err := m.Match(raw); err == nil {
			base = append(base, u)
		}
	}
	sopts := store.DefaultOptions(p.Ts)
	sopts.NumShards = 2
	sopts.Index = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	st, err := store.Build(g, base, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := ingest.New(st, eix, filepath.Join(t.TempDir(), "ingest.wal"), ingest.Options{
		BatchSize: 64,
		Match:     p.Match,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv := New(st, Options{Ingester: ing})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st, raws[6:]
}

// chooseWatchTime picks the timestamp covered by the most raws' time
// spans: trips start anywhere in the day, so an arbitrary instant hits
// almost none of them, while the argmax gives the watch query a result
// set that actually grows as batches are ingested.
func chooseWatchTime(raws []traj.RawTrajectory) int64 {
	best, bestN := int64(0), -1
	for _, cand := range raws {
		tq := cand.Points[len(cand.Points)/2].T
		n := 0
		for _, r := range raws {
			if r.Points[0].T <= tq && tq <= r.Points[len(r.Points)-1].T {
				n++
			}
		}
		if n > bestN {
			best, bestN = tq, n
		}
	}
	return best
}

// watchURL renders the subscription query string over the whole network
// (alpha 0 keeps every trajectory active at t eligible, so ingested
// batches visibly enter the result set).
func watchURL(base string, st *store.Store, t64 int64, extra string) string {
	b := st.Bounds()
	return fmt.Sprintf("%s/v1/watch/range?minX=%g&minY=%g&maxX=%g&maxY=%g&t=%d&alpha=0%s",
		base, b.MinX, b.MinY, b.MaxX, b.MaxY, t64, extra)
}

// getWatch performs one long-poll exchange.
func getWatch(t *testing.T, url string) WatchResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	var wr WatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	return wr
}

// rawRangePost posts a range request and returns status and raw body
// bytes (for byte-identity comparisons).
func rawRangePost(t *testing.T, url string, req RangeRequest) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestWatchMatchesFullRequery is the streaming headline property: a
// watcher that unions incremental /v1/watch/range updates always holds
// exactly the set a full /v1/range pinned at the update's generation
// returns — while ingestion and compaction advance the store CONCURRENTLY
// with the long-polls (run under -race in CI).  The driver paces
// mutations on watcher acks so the pinned requery never falls behind the
// one-generation retention window.
func TestWatchMatchesFullRequery(t *testing.T) {
	ts, st, raws := newWatchFixture(t, 30)
	f := &fixture{ts: ts}
	tq := chooseWatchTime(raws)
	b := st.Bounds()
	rect := RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}

	// Initial subscription: full result set.
	first := getWatch(t, watchURL(ts.URL, st, tq, ""))
	if !first.Reset {
		t.Fatalf("initial watch response not a reset: %+v", first)
	}
	have := map[int]bool{}
	for _, j := range first.Added {
		have[j] = true
	}

	acks := make(chan uint64)
	done := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		gen, cursor := first.Gen, first.Watermark
		for {
			select {
			case <-done:
				return
			default:
			}
			wr := getWatch(t, watchURL(ts.URL, st, tq,
				fmt.Sprintf("&gen=%d&cursor=%d&timeout=1", gen, cursor)))
			if wr.Gen == gen {
				continue // heartbeat: nothing changed within the poll window
			}
			for _, j := range wr.Added {
				have[j] = true
			}
			gen, cursor = wr.Gen, wr.Watermark

			// The union must equal a full requery pinned at this exact
			// generation (the metamorphic identity).
			status, body := rawRangePost(t, fmt.Sprintf("%s/v1/range?gen=%d", ts.URL, wr.Gen),
				RangeRequest{Rect: rect, T: tq, Alpha: 0})
			if status != http.StatusOK {
				errs <- fmt.Errorf("pinned requery at gen %d: status %d: %s", wr.Gen, status, body)
				return
			}
			var full struct {
				Trajs []int `json:"trajs"`
			}
			if err := json.Unmarshal(body, &full); err != nil {
				errs <- err
				return
			}
			union := make([]int, 0, len(have))
			for j := range have {
				union = append(union, j)
			}
			sort.Ints(union)
			want := full.Trajs
			if want == nil {
				want = []int{}
			}
			if !reflect.DeepEqual(union, want) {
				errs <- fmt.Errorf("gen %d: watch union %v != full range %v", wr.Gen, union, want)
				return
			}
			select {
			case acks <- wr.Gen:
			case <-done:
				return
			}
		}
	}()

	waitAck := func(gen uint64) {
		t.Helper()
		for {
			select {
			case err, ok := <-errs:
				if ok && err != nil {
					t.Fatal(err)
				}
				t.Fatal("watcher exited early")
			case got := <-acks:
				if got >= gen {
					return
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("watcher never acked generation %d", gen)
			}
		}
	}

	// Interleave ingest batches and compactions, each concurrent with the
	// watcher's in-flight long-poll.
	for i := 0; i < len(raws); i += 6 {
		end := min(i+6, len(raws))
		var ack IngestResponse
		f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[i:end]), Flush: true}, http.StatusOK, &ack)
		waitAck(ack.Generation)
		if i%12 == 0 {
			var cr CompactResponse
			f.post(t, "/v1/compact", struct{}{}, http.StatusOK, &cr)
			if cr.Folded > 0 {
				waitAck(cr.Generation)
			}
		}
	}
	close(done)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if len(have) <= len(first.Added) {
		t.Fatalf("watch never observed growth: %d -> %d trajectories", len(first.Added), len(have))
	}
}

// TestGenPinnedSnapshotIsolation pins ?gen=N reads: the byte-exact
// response captured at generation N is reproduced after a mutation when
// pinned to N, and the pin degrades to 410 Gone once N leaves the
// retention window (404 for generations never reached, 400 for garbage).
func TestGenPinnedSnapshotIsolation(t *testing.T) {
	ts, st, raws := newWatchFixture(t, 18)
	f := &fixture{ts: ts}
	tq := chooseWatchTime(raws)
	b := st.Bounds()
	req := RangeRequest{Rect: RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}, T: tq, Alpha: 0}

	gen0 := st.Generation()
	status, before := rawRangePost(t, ts.URL+"/v1/range", req)
	if status != http.StatusOK {
		t.Fatalf("baseline range: status %d", status)
	}

	// Mutate: the live answer may change, the pinned answer must not.
	var ack IngestResponse
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[:6]), Flush: true}, http.StatusOK, &ack)
	if ack.Generation != gen0+1 {
		t.Fatalf("generation %d after flush, want %d", ack.Generation, gen0+1)
	}
	status, pinned := rawRangePost(t, fmt.Sprintf("%s/v1/range?gen=%d", ts.URL, gen0), req)
	if status != http.StatusOK {
		t.Fatalf("pinned range: status %d: %s", status, pinned)
	}
	if !bytes.Equal(pinned, before) {
		t.Fatalf("pinned read at gen %d not byte-identical:\n pre-mutation: %s\n pinned:       %s", gen0, before, pinned)
	}

	// Batch requests pin the same way (one snapshot for the whole batch).
	var batch struct {
		Results []BatchResult `json:"results"`
	}
	f.post(t, fmt.Sprintf("/v1/batch?gen=%d", gen0),
		BatchRequest{Queries: []BatchQuery{{Kind: "range", Range: &req}}}, http.StatusOK, &batch)
	var liveNow struct {
		Trajs []int `json:"trajs"`
	}
	if err := json.Unmarshal(before, &liveNow); err != nil {
		t.Fatal(err)
	}
	got := batch.Results[0].Trajs
	if got == nil {
		got = []int{}
	}
	want := liveNow.Trajs
	if want == nil {
		want = []int{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned batch range %v != captured %v", got, want)
	}

	// Second mutation retires gen0 past the retention window.
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[6:12]), Flush: true}, http.StatusOK, &ack)
	status, body := rawRangePost(t, fmt.Sprintf("%s/v1/range?gen=%d", ts.URL, gen0), req)
	if status != http.StatusGone {
		t.Fatalf("retired pin: status %d (%s), want 410", status, body)
	}
	status, _ = rawRangePost(t, ts.URL+"/v1/range?gen=99999", req)
	if status != http.StatusNotFound {
		t.Fatalf("future pin: status %d, want 404", status)
	}
	status, _ = rawRangePost(t, ts.URL+"/v1/range?gen=banana", req)
	if status != http.StatusBadRequest {
		t.Fatalf("garbage pin: status %d, want 400", status)
	}
}

// TestWatchReconnectMidStream kills an SSE subscription mid-stream and
// resumes from the last delivered {gen, cursor} over long-poll: the union
// across the torn stream equals a fresh full query — the resume-cursor
// contract the chaos job exercises.
func TestWatchReconnectMidStream(t *testing.T) {
	ts, st, raws := newWatchFixture(t, 24)
	f := &fixture{ts: ts}
	tq := chooseWatchTime(raws)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		watchURL(ts.URL, st, tq, "&stream=sse"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	// readUpdate scans SSE lines until the next update event's data.
	sc := bufio.NewScanner(resp.Body)
	readUpdate := func() WatchResponse {
		t.Helper()
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue // event: lines, heartbeats, blank separators
			}
			var wr WatchResponse
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &wr); err != nil {
				t.Fatal(err)
			}
			return wr
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return WatchResponse{}
	}

	first := readUpdate()
	if !first.Reset {
		t.Fatalf("first SSE update not a reset: %+v", first)
	}
	have := map[int]bool{}
	for _, j := range first.Added {
		have[j] = true
	}

	// One mutation arrives over the stream...
	var ack IngestResponse
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[:6]), Flush: true}, http.StatusOK, &ack)
	second := readUpdate()
	for _, j := range second.Added {
		have[j] = true
	}
	if second.Gen != ack.Generation {
		t.Fatalf("stream update at gen %d, flush landed gen %d", second.Gen, ack.Generation)
	}

	// ...then the connection dies mid-stream, a mutation happens while the
	// client is gone, and the client resumes from its last cursor.
	cancel()
	f.post(t, "/v1/ingest", IngestRequest{Trajectories: toJSON(raws[6:12]), Flush: true}, http.StatusOK, &ack)
	resumed := getWatch(t, watchURL(ts.URL, st, tq,
		fmt.Sprintf("&gen=%d&cursor=%d&timeout=5", second.Gen, second.Watermark)))
	if resumed.Reset {
		t.Fatalf("resume produced a reset: %+v", resumed)
	}
	for _, j := range resumed.Added {
		have[j] = true
	}

	fresh := getWatch(t, watchURL(ts.URL, st, tq, ""))
	union := make([]int, 0, len(have))
	for j := range have {
		union = append(union, j)
	}
	sort.Ints(union)
	want := append([]int(nil), fresh.Added...)
	sort.Ints(want)
	if len(union) != 0 || len(want) != 0 {
		if !reflect.DeepEqual(union, want) {
			t.Fatalf("resumed union %v != fresh full subscription %v", union, want)
		}
	}
}

// TestWatchBadRequests pins the 400 surface of the subscription parser.
func TestWatchBadRequests(t *testing.T) {
	ts, _, _ := newWatchFixture(t, 8)
	for _, qs := range []string{
		"",                                // everything missing
		"minX=0&minY=0&maxX=9&maxY=9",     // missing t
		"minX=9&minY=0&maxX=0&maxY=9&t=5", // inverted rect
		"minX=0&minY=0&maxX=9&maxY=9&t=5&alpha=2",      // alpha out of range
		"minX=0&minY=0&maxX=9&maxY=9&t=5&stream=smoke", // bad stream mode
		"minX=NaN&minY=0&maxX=9&maxY=9&t=5",            // non-finite rect
		"minX=0&minY=0&maxX=9&maxY=9&t=5&gen=-1",       // negative gen
	} {
		resp, err := http.Get(ts.URL + "/v1/watch/range?" + qs)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", qs, resp.StatusCode)
		}
	}
}
