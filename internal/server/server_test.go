package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/query"
	"utcq/internal/stiu"
	"utcq/internal/store"
)

// fixture builds a small store, its reference single-archive engine, and a
// test server over the store.
type fixture struct {
	ds  *gen.Dataset
	eng *query.Engine
	st  *store.Store
	ts  *httptest.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	iopts := stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	ix, err := stiu.Build(a, iopts)
	if err != nil {
		t.Fatal(err)
	}
	sopts := store.DefaultOptions(p.Ts)
	sopts.NumShards = 3
	sopts.Index = iopts
	st, err := store.Build(ds.Graph, ds.Trajectories, sopts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{MaxBatch: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fixture{ds: ds, eng: query.NewEngine(a, ix), st: st, ts: ts}
}

// post round-trips a JSON request and decodes the response into out,
// requiring status code want.
func (f *fixture) post(t *testing.T, path string, body any, want int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func (f *fixture) midTime(j int) int64 {
	T := f.ds.Trajectories[j].T
	return (T[0] + T[len(T)-1]) / 2
}

func TestWhereEndpoint(t *testing.T) {
	f := newFixture(t)
	j, tq := 0, f.midTime(0)
	want, err := f.eng.Where(j, tq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Results []WhereResultJSON `json:"results"`
	}
	f.post(t, "/v1/where", WhereRequest{Traj: j, T: tq, Alpha: 0.1}, http.StatusOK, &resp)
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Inst != want[i].Inst || r.P != want[i].P ||
			r.Edge != int(want[i].Loc.Edge) || r.NDist != want[i].Loc.NDist {
			t.Fatalf("result %d = %+v, want %+v", i, r, want[i])
		}
	}

	// Out-of-range trajectory id is a client error.
	f.post(t, "/v1/where", WhereRequest{Traj: 10_000, T: tq}, http.StatusBadRequest, nil)
}

// TestWhenRejectsBadEdge checks that an out-of-range edge id is a 400,
// not a panic or a 500.
func TestWhenRejectsBadEdge(t *testing.T) {
	f := newFixture(t)
	f.post(t, "/v1/when",
		WhenRequest{Traj: 0, Loc: PositionJSON{Edge: 1 << 30, NDist: 1}, Alpha: 0.1},
		http.StatusBadRequest, nil)
	f.post(t, "/v1/when",
		WhenRequest{Traj: 0, Loc: PositionJSON{Edge: -1, NDist: 1}, Alpha: 0.1},
		http.StatusBadRequest, nil)
}

// TestShardOpenFailureIs500 checks that a server-side fault (a missing
// shard archive under a lazily opened store) surfaces as 500, unlike the
// 400s client mistakes get.
func TestShardOpenFailureIs500(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	if err := f.st.Save(dir); err != nil {
		t.Fatal(err)
	}
	o, err := store.Open(dir, f.ds.Graph, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	victim := o.ShardOf(0)
	if err := os.Remove(filepath.Join(dir, fmt.Sprintf("shard-%04d.utcq", victim))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(o, Options{}).Handler())
	defer ts.Close()
	b, _ := json.Marshal(WhereRequest{Traj: 0, T: f.midTime(0), Alpha: 0.1})
	resp, err := http.Post(ts.URL+"/v1/where", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("missing shard returned status %d, want 500", resp.StatusCode)
	}
}

func TestWhenEndpoint(t *testing.T) {
	f := newFixture(t)
	j, tq := 1, f.midTime(1)
	locs, err := f.eng.Where(j, tq, 0)
	if err != nil || len(locs) == 0 {
		t.Fatalf("need a visited location: %v (%d results)", err, len(locs))
	}
	loc := locs[0].Loc
	want, err := f.eng.When(j, loc, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Results []WhenResultJSON `json:"results"`
	}
	f.post(t, "/v1/when",
		WhenRequest{Traj: j, Loc: PositionJSON{Edge: int(loc.Edge), NDist: loc.NDist}, Alpha: 0.1},
		http.StatusOK, &resp)
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Inst != want[i].Inst || r.P != want[i].P || r.T != want[i].T {
			t.Fatalf("result %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestRangeEndpoint(t *testing.T) {
	f := newFixture(t)
	b := f.ds.Graph.Bounds()
	tq := f.midTime(0)
	want, err := f.eng.Range(b, tq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Trajs []int `json:"trajs"`
	}
	f.post(t, "/v1/range",
		RangeRequest{Rect: RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}, T: tq, Alpha: 0.1},
		http.StatusOK, &resp)
	if len(resp.Trajs) != len(want) {
		t.Fatalf("got %v, want %v", resp.Trajs, want)
	}
	for i := range want {
		if resp.Trajs[i] != want[i] {
			t.Fatalf("got %v, want %v", resp.Trajs, want)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	f := newFixture(t)
	b := f.ds.Graph.Bounds()
	tq := f.midTime(0)
	req := BatchRequest{Queries: []BatchQuery{
		{Kind: "where", Where: &WhereRequest{Traj: 0, T: tq, Alpha: 0.1}},
		{Kind: "range", Range: &RangeRequest{Rect: RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}, T: tq}},
		{Kind: "where", Where: &WhereRequest{Traj: 99_999, T: tq}}, // in-band error
		{Kind: "bogus"}, // malformed entry
	}}
	var resp struct {
		Results []BatchResult `json:"results"`
	}
	f.post(t, "/v1/batch", req, http.StatusOK, &resp)
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Where == nil {
		t.Fatalf("query 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error != "" || resp.Results[1].Trajs == nil {
		t.Fatalf("query 1: %+v", resp.Results[1])
	}
	if resp.Results[2].Error == "" || resp.Results[3].Error == "" {
		t.Fatalf("bad queries did not error: %+v", resp.Results[2:])
	}

	// Batches above the limit are rejected whole.
	big := BatchRequest{Queries: make([]BatchQuery, 9)}
	f.post(t, "/v1/batch", big, http.StatusRequestEntityTooLarge, nil)
}

func TestHealthzEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	f := newFixture(t)
	// Issue one query so counters move.
	f.post(t, "/v1/where", WhereRequest{Traj: 0, T: f.midTime(0), Alpha: 0.1}, http.StatusOK, nil)

	resp, err := http.Get(f.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Shards != 3 || sr.Trajectories != len(f.ds.Trajectories) {
		t.Fatalf("stats %+v", sr)
	}
	if sr.Requests < 1 {
		t.Fatalf("requests = %d, want >= 1", sr.Requests)
	}
	if sr.Bounds.MaxX <= sr.Bounds.MinX || sr.Bounds.MaxY <= sr.Bounds.MinY {
		t.Fatalf("degenerate bounds %+v", sr.Bounds)
	}
	if sr.TimeMin <= 0 || sr.TimeMax < sr.TimeMin {
		t.Fatalf("time span (%d, %d)", sr.TimeMin, sr.TimeMax)
	}
}

// TestStatsAliasRedirects pins the deprecated bare /stats alias to a
// permanent redirect at /v1/stats (old scrapers keep working; the
// versioned path is the API).
func TestStatsAliasRedirects(t *testing.T) {
	f := newFixture(t)
	c := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := c.Get(f.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("GET /stats = %d, want 301", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/stats" {
		t.Fatalf("Location = %q, want /v1/stats", loc)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Post(f.ts.URL+"/v1/where", "application/json",
		bytes.NewReader([]byte(`{"traj":0,"t":1,"alfa":0.2}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd field got status %d, want 400", resp.StatusCode)
	}
}

// TestGracefulShutdown serves on a real listener, issues a request, then
// shuts down and verifies the listener closed.
func TestGracefulShutdown(t *testing.T) {
	f := newFixture(t)
	srv := New(f.st, Options{})
	errc := make(chan error, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { errc <- srv.Serve(l) }()

	url := fmt.Sprintf("http://%s/healthz", l.Addr())
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
