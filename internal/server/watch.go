// Live range subscriptions: GET /v1/watch/range delivers the result set
// of one range query and keeps it current as ingestion advances the
// store's generation — as a single long-poll exchange (default) or as a
// Server-Sent-Events stream (?stream=1).
//
// The protocol is a cursor resume loop.  Every update carries the
// generation it was computed at and the store's shard-id watermark; the
// client echoes both back (?gen=N&cursor=W) and the server answers with
// only the trajectories that could have ENTERED the result set since —
// shards with id >= the watermark, pruned by the same per-shard geometry
// bounds as a full query (store.Snapshot.RangeSince).  Accepted
// trajectories never change or leave (data is immutable; compaction moves
// records into new, higher-id shards whose rescan re-reports them), so
// the client-side union of updates always equals a full /v1/range at the
// update's generation: TestWatchMatchesFullRequery pins exactly that.
// The watermark survives any number of missed generations, so a client
// that disconnects resumes with its last {gen, cursor} and loses nothing
// (TestWatchReconnectMidStream) — there is no server-side subscription
// state to lose.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"utcq/internal/roadnet"
	"utcq/internal/store"
	"utcq/pkg/client"
)

// watchDefaultWait is the long-poll hold when the client sends no
// timeout; watchMaxWait caps client-requested holds so a subscription
// cannot park a handler goroutine indefinitely.
const (
	watchDefaultWait = 25 * time.Second
	watchMaxWait     = 120 * time.Second
	sseHeartbeat     = 15 * time.Second
)

// WatchResponse is one watch update; the canonical definition is
// client.WatchUpdate (see server.go on the wire-type aliasing).
type WatchResponse = client.WatchUpdate

// watchRequest is the parsed query string of a watch subscription.
type watchRequest struct {
	re    roadnet.Rect
	t     int64
	alpha float64

	// hasGen selects incremental mode: the client has the result set as of
	// gen and wants only what entered since cursor.  Without it the first
	// response is the full set (Reset).
	hasGen bool
	gen    uint64
	cursor uint32

	stream bool
	wait   time.Duration
}

// parseWatchRequest decodes and validates the query parameters of
// /v1/watch/range.  All failures are errBadInput (400).
func parseWatchRequest(r *http.Request) (watchRequest, error) {
	q := r.URL.Query()
	var req watchRequest

	f := func(key string) (float64, error) {
		s := q.Get(key)
		if s == "" {
			return 0, fmt.Errorf("%w: missing required parameter %q", errBadInput, key)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %s=%q is not a number", errBadInput, key, s)
		}
		if v != v || v > 1e308 || v < -1e308 {
			return 0, fmt.Errorf("%w: %s=%q is not finite", errBadInput, key, s)
		}
		return v, nil
	}
	var err error
	if req.re.MinX, err = f("minX"); err != nil {
		return req, err
	}
	if req.re.MinY, err = f("minY"); err != nil {
		return req, err
	}
	if req.re.MaxX, err = f("maxX"); err != nil {
		return req, err
	}
	if req.re.MaxY, err = f("maxY"); err != nil {
		return req, err
	}
	if req.re.MinX > req.re.MaxX || req.re.MinY > req.re.MaxY {
		return req, fmt.Errorf("%w: empty rectangle [%g,%g]x[%g,%g]", errBadInput, req.re.MinX, req.re.MaxX, req.re.MinY, req.re.MaxY)
	}
	ts := q.Get("t")
	if ts == "" {
		return req, fmt.Errorf("%w: missing required parameter %q", errBadInput, "t")
	}
	if req.t, err = strconv.ParseInt(ts, 10, 64); err != nil {
		return req, fmt.Errorf("%w: t=%q is not an integer", errBadInput, ts)
	}
	if as := q.Get("alpha"); as != "" {
		if req.alpha, err = strconv.ParseFloat(as, 64); err != nil || req.alpha != req.alpha || req.alpha < 0 || req.alpha > 1 {
			return req, fmt.Errorf("%w: alpha=%q is not in [0, 1]", errBadInput, as)
		}
	}
	if gs := q.Get("gen"); gs != "" {
		if req.gen, err = strconv.ParseUint(gs, 10, 64); err != nil {
			return req, fmt.Errorf("%w: gen=%q is not an unsigned integer", errBadInput, gs)
		}
		req.hasGen = true
	}
	if cs := q.Get("cursor"); cs != "" {
		c, err := strconv.ParseUint(cs, 10, 32)
		if err != nil {
			return req, fmt.Errorf("%w: cursor=%q is not a 32-bit unsigned integer", errBadInput, cs)
		}
		req.cursor = uint32(c)
	}
	switch v := q.Get("stream"); v {
	case "", "0", "false":
	case "1", "true", "sse":
		req.stream = true
	default:
		return req, fmt.Errorf("%w: stream=%q (want 1, true or sse)", errBadInput, v)
	}
	req.wait = watchDefaultWait
	if ws := q.Get("timeout"); ws != "" {
		secs, err := strconv.ParseUint(ws, 10, 32)
		if err != nil {
			return req, fmt.Errorf("%w: timeout=%q is not a number of seconds", errBadInput, ws)
		}
		req.wait = time.Duration(secs) * time.Second
		if req.wait > watchMaxWait {
			req.wait = watchMaxWait
		}
	}
	return req, nil
}

// evaluate computes one update against sn: the full result set in
// non-incremental mode, only the shards at or past the cursor otherwise.
func (s *Server) evaluate(sn store.Snapshot, req watchRequest) (WatchResponse, error) {
	var trajs []int
	var err error
	if req.hasGen {
		trajs, err = sn.RangeSince(req.cursor, req.re, req.t, req.alpha)
	} else {
		trajs, err = sn.Range(req.re, req.t, req.alpha)
	}
	if err != nil {
		return WatchResponse{}, err
	}
	if trajs == nil {
		trajs = []int{}
	}
	return WatchResponse{
		Gen:       sn.Generation(),
		Watermark: sn.ShardWatermark(),
		Added:     trajs,
		Reset:     !req.hasGen,
	}, nil
}

// watchOnce is one long-poll exchange: answer immediately when the client
// is behind (or has no state), otherwise hold the request until the
// generation advances or the poll window closes (then answer with an
// empty delta, which the client treats as a heartbeat).
func (s *Server) watchOnce(r *http.Request, req watchRequest) (WatchResponse, error) {
	deadline := time.NewTimer(req.wait)
	defer deadline.Stop()
	for {
		// Load the signal BEFORE the snapshot: swap publishes the view
		// first, so a channel from before our snapshot is always closed by
		// any mutation the snapshot missed — no lost wakeups.
		_, ch := s.st.GenerationChanged()
		sn := s.st.Snapshot()
		if req.hasGen && req.gen > sn.Generation() {
			return WatchResponse{}, fmt.Errorf("%w: watch gen %d is beyond current generation %d",
				store.ErrGenerationUnknown, req.gen, sn.Generation())
		}
		if !req.hasGen || sn.Generation() > req.gen {
			resp, err := s.evaluate(sn, req)
			if err == nil {
				s.watchNotifies.Add(1)
			}
			return resp, err
		}
		select {
		case <-ch:
		case <-deadline.C:
			// Nothing changed inside the window: empty heartbeat delta.
			return WatchResponse{Gen: sn.Generation(), Watermark: sn.ShardWatermark(), Added: []int{}}, nil
		case <-r.Context().Done():
			return WatchResponse{}, r.Context().Err()
		}
	}
}

// handleWatchRange serves GET /v1/watch/range.
func (s *Server) handleWatchRange(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, err := parseWatchRequest(r)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.watchers.Add(1)
	defer s.watchers.Add(-1)
	// A subscription legitimately outlives the server's write timeout;
	// progress is guaranteed by the poll window / heartbeat instead.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	if req.stream {
		s.watchSSE(w, r, rc, req)
		return
	}
	resp, err := s.watchOnce(r, req)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing to answer
		}
		s.fail(w, statusFor(err), err)
		return
	}
	s.reply(w, resp)
}

// watchSSE streams updates as Server-Sent Events: one "update" event per
// generation batch, comment-line heartbeats while idle, until the client
// disconnects.  Every event carries the same WatchResponse JSON as the
// long-poll exchange, so a dropped stream resumes by reconnecting (either
// mode) with the last event's gen and watermark.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, rc *http.ResponseController, req watchRequest) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		_, ch := s.st.GenerationChanged() // before the snapshot; see watchOnce
		sn := s.st.Snapshot()
		if req.hasGen && req.gen > sn.Generation() {
			return // nothing sane to stream from the future; client must resubscribe
		}
		if !req.hasGen || sn.Generation() > req.gen {
			resp, err := s.evaluate(sn, req)
			if err != nil {
				return // stream is torn anyway; the client re-resolves on reconnect
			}
			data, _ := json.Marshal(resp)
			if _, err := fmt.Fprintf(w, "event: update\ndata: %s\n\n", data); err != nil {
				return
			}
			_ = rc.Flush()
			s.watchNotifies.Add(1)
			req.hasGen, req.gen, req.cursor = true, resp.Gen, resp.Watermark
			continue
		}
		select {
		case <-ch:
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			_ = rc.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
