package server

// Replication endpoints: a follower (internal/cluster.StartFollower)
// pulls the leader's durable WAL suffix from /v1/repl/wal, and
// bootstraps or re-snapshots from /v1/repl/manifest + /v1/repl/file.
// The stream carries raw CRC-framed records (docs/FORMAT.md §7), not
// JSON, so the follower verifies integrity with the same code that
// replays a local log; errors still use the v1 JSON envelope.

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"utcq/internal/ingest"
	"utcq/internal/store"
	"utcq/pkg/client"
)

const (
	// replPollEvery is the internal re-check cadence of a long-polled
	// /v1/repl/wal: the ingester has no append signal to subscribe to,
	// so the handler re-reads the durable log on this period until the
	// wait budget runs out.
	replPollEvery = 100 * time.Millisecond
	// replDefaultMax bounds one WAL response when the follower does not
	// say; replMaxWait caps the long-poll like the watch endpoint.
	replDefaultMax = 512
	replMaxWait    = 120 * time.Second

	// Response headers of /v1/repl/wal: the payload layout version of
	// the framed records, the absolute sequence of the first record,
	// and the record count.
	headerWALVersion = "X-UTCQ-WAL-Version"
	headerWALFrom    = "X-UTCQ-From"
	headerWALCount   = "X-UTCQ-Count"
)

// handleReplWAL serves durable WAL records from ?from=N (absolute
// sequence), at most ?max=M of them, long-polling up to ?wait=S seconds
// when the log has nothing past the cursor yet.  Only fsync-covered
// records are served — the leader's acknowledgement stays the commit
// point — so a follower can never replay a record the leader could
// still lose.  A cursor behind the log's checkpointed start answers 410
// wal_truncated: the follower must re-snapshot from the manifest.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.ing == nil {
		err := fmt.Errorf("%w: this node has no WAL to replicate", errIngestDisabled)
		s.fail(w, statusFor(err), err)
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: from %q is not an unsigned integer", errBadInput, q.Get("from")))
		return
	}
	maxRecs := replDefaultMax
	if v := q.Get("max"); v != "" {
		if maxRecs, err = strconv.Atoi(v); err != nil || maxRecs < 1 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: max %q is not a positive integer", errBadInput, v))
			return
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: wait %q is not a non-negative integer", errBadInput, v))
			return
		}
		wait = min(time.Duration(secs)*time.Second, replMaxWait)
	}

	// The long poll can outlive the connection's write deadline; lift it
	// like the watch endpoint does and let the wait budget bound us.
	if wait > 0 {
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	}
	deadline := time.Now().Add(wait)
	var batch ingest.ShipBatch
	for {
		if batch, err = s.ing.ShipFrom(from, maxRecs); err != nil {
			s.fail(w, statusFor(err), err)
			return
		}
		if len(batch.Records) > 0 || !time.Now().Before(deadline) {
			break
		}
		select {
		case <-r.Context().Done():
			// Follower went away; nothing useful left to write.
			return
		case <-time.After(replPollEvery):
		}
	}
	body := ingest.EncodeFrames(batch.Records, batch.Version)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerWALVersion, strconv.Itoa(int(batch.Version)))
	w.Header().Set(headerWALFrom, strconv.FormatUint(batch.From, 10))
	w.Header().Set(headerWALCount, strconv.Itoa(len(batch.Records)))
	if _, err := w.Write(body); err != nil {
		s.failures.Add(1)
	}
}

// handleReplManifest serves the store's current manifest bytes — the
// root of the snapshot/catch-up protocol.  The follower parses it
// (store.ParseManifestInfo) for the generation, the WAL position the
// artifacts embody, and the artifact list to fetch.
func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	data, err := s.st.ReadArtifact(store.ManifestName)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(data); err != nil {
		s.failures.Add(1)
	}
}

// handleReplFile serves one store artifact by name.  Names outside the
// artifact grammar are rejected outright (this endpoint can read store
// files, nothing else); an artifact that existed in a fetched manifest
// but is gone now was garbage-collected by a compaction — 404
// not_found tells the follower to refetch the manifest and start over.
func (s *Server) handleReplFile(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	name := r.PathValue("name")
	if !store.IsArtifactName(name) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: %q is not a store artifact name", errBadInput, name))
		return
	}
	data, err := s.st.ReadArtifact(name)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Not a shard-open failure (those stay 500 on the query
			// path): the follower asked for a file a newer manifest no
			// longer has.
			s.failWith(w, http.StatusNotFound, client.CodeNotFound, err)
			return
		}
		s.fail(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(data); err != nil {
		s.failures.Add(1)
	}
}
