package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/stiu"
	"utcq/internal/store"
)

// benchServer is built once and reused: a 4-shard store behind the HTTP
// handler, exercised through httptest's in-process round trip.
var benchSrv *httptest.Server
var benchDS *gen.Dataset

func benchServer(b *testing.B) (*httptest.Server, *gen.Dataset) {
	if benchSrv != nil {
		return benchSrv, benchDS
	}
	b.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 120, 9)
	if err != nil {
		b.Fatal(err)
	}
	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 4
	opts.Index = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	st, err := store.Build(ds.Graph, ds.Trajectories, opts)
	if err != nil {
		b.Fatal(err)
	}
	benchSrv = httptest.NewServer(New(st, Options{}).Handler())
	benchDS = ds
	return benchSrv, benchDS
}

func benchPost(b *testing.B, url string, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s: status %d", url, resp.StatusCode)
	}
}

// BenchmarkServerWhere measures one where query through the full HTTP
// stack (encode, route, shard lookup, engine, response).
func BenchmarkServerWhere(b *testing.B) {
	ts, ds := benchServer(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(ds.Trajectories))
		T := ds.Trajectories[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		benchPost(b, ts.URL+"/v1/where", WhereRequest{Traj: j, T: tq, Alpha: 0.2})
	}
}

// BenchmarkServerBatch16 measures a 16-query batch per request: the
// amortized per-query cost of the batched endpoint.
func BenchmarkServerBatch16(b *testing.B) {
	ts, ds := benchServer(b)
	rng := rand.New(rand.NewSource(2))
	bounds := ds.Graph.Bounds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req BatchRequest
		for k := 0; k < 16; k++ {
			j := rng.Intn(len(ds.Trajectories))
			T := ds.Trajectories[j].T
			tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
			if k%4 == 3 {
				req.Queries = append(req.Queries, BatchQuery{Kind: "range", Range: &RangeRequest{
					Rect: RectJSON{MinX: bounds.MinX, MinY: bounds.MinY,
						MaxX: bounds.MinX + 0.3*(bounds.MaxX-bounds.MinX),
						MaxY: bounds.MinY + 0.3*(bounds.MaxY-bounds.MinY)},
					T: tq, Alpha: 0.2,
				}})
			} else {
				req.Queries = append(req.Queries, BatchQuery{Kind: "where",
					Where: &WhereRequest{Traj: j, T: tq, Alpha: 0.2}})
			}
		}
		benchPost(b, ts.URL+"/v1/batch", req)
	}
}
