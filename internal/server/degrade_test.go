package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"utcq/internal/faultfs"
	"utcq/internal/gen"
	"utcq/internal/ingest"
	"utcq/internal/mapmatch"
	"utcq/internal/stiu"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// postRaw round-trips a JSON body against a test server and returns the
// response with its body decoded into out (which may be nil).
func postRaw(t *testing.T, ts *httptest.Server, path string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestShardQuarantineServesDegraded breaks every shard archive on disk
// and asserts the contract from the issue: point queries answer 503 (not
// a 500 per request retrying the broken open), scatter queries keep
// answering with a degraded flag, and /healthz + /v1/stats surface the
// quarantine.
func TestShardQuarantineServesDegraded(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	sopts := store.DefaultOptions(p.Ts)
	sopts.NumShards = 2
	sopts.Index = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	built, err := store.Build(ds.Graph, ds.Trajectories, sopts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the world: every shard archive disappears (FORMAT.md §2
	// names them shard-NNNN.utcq).  The manifest is intact, so the store
	// opens lazily and only discovers the damage when a query touches a
	// shard.
	archives, err := filepath.Glob(filepath.Join(dir, "shard-*.utcq"))
	if err != nil || len(archives) == 0 {
		t.Fatalf("no shard archives found: %v, %v", archives, err)
	}
	for _, a := range archives {
		if err := os.Remove(a); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(dir, ds.Graph, store.OpenOptions{})
	if err != nil {
		t.Fatalf("lazy open should not touch shards: %v", err)
	}
	srv := New(st, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	whereReq := WhereRequest{Traj: 0, T: ds.Trajectories[0].T[0], Alpha: 0.3}
	// The query that discovers the failure reports it as a server error…
	if resp := postRaw(t, ts, "/v1/where", whereReq, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first query on a broken shard: status %d, want 500", resp.StatusCode)
	}
	// …and quarantines the shard: retries fail fast with 503 and a
	// Retry-After instead of re-attempting the open on every request.
	resp := postRaw(t, ts, "/v1/where", whereReq, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined shard: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 should carry Retry-After")
	}

	// Range keeps answering, flagged degraded, even though every shard
	// holding data is now quarantined or freshly failing.
	b := built.Bounds()
	var rangeResp struct {
		Trajs         []int `json:"trajs"`
		Degraded      bool  `json:"degraded"`
		ShardsSkipped int   `json:"shardsSkipped"`
	}
	rr := RangeRequest{Rect: RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}, T: ds.Trajectories[0].T[0], Alpha: 0.3}
	if resp := postRaw(t, ts, "/v1/range", rr, &rangeResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded range: status %d, want 200", resp.StatusCode)
	}
	if !rangeResp.Degraded || rangeResp.ShardsSkipped == 0 {
		t.Fatalf("range should be flagged degraded with skipped shards, got %+v", rangeResp)
	}
	if len(rangeResp.Trajs) != 0 {
		t.Fatalf("every shard is broken; degraded result should be empty, got %v", rangeResp.Trajs)
	}

	var health struct {
		Status            string `json:"status"`
		QuarantinedShards int    `json:"quarantinedShards"`
	}
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "degraded" || health.QuarantinedShards == 0 {
		t.Fatalf("healthz should report the quarantine: %+v", health)
	}
	var stats StatsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.QuarantinedShards == 0 || stats.ShardOpenFailures == 0 {
		t.Fatalf("stats should count quarantined shards and open failures: %+v", stats)
	}
	if stats.DegradedQueries == 0 {
		t.Fatalf("stats should count degraded range answers: %+v", stats)
	}
}

// degradeIngestFixture is an ingest-enabled server with a tight admission
// limit and a fault injector wrapped around the WAL's filesystem, so the
// tests below can fill the queue and break the log deterministically.
func degradeIngestFixture(t *testing.T, opts Options) (*httptest.Server, *faultfs.Injector, []RawTrajectoryJSON) {
	t.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, 12, 17)
	if err != nil {
		t.Fatal(err)
	}
	sopts := store.DefaultOptions(p.Ts)
	sopts.NumShards = 2
	sopts.Index = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	mem := faultfs.NewMemFS()
	sopts.FS = mem
	m := mapmatch.New(g, eix, p.Match)
	var base []*traj.Uncertain
	for _, raw := range raws[:6] {
		if u, err := m.Match(raw); err == nil {
			base = append(base, u)
		}
	}
	st, err := store.Build(g, base, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("store"); err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(mem)
	// The ingester is never Start()ed: nothing drains the queue, so
	// acknowledged records stay pending and the admission limit is
	// reachable with a couple of submissions.
	ing, err := ingest.New(st, eix, "store/ingest.wal", ingest.Options{
		FS:           inj,
		Match:        p.Match,
		Parallelism:  1,
		CompactEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	opts.Ingester = ing
	srv := New(st, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, inj, toJSON(raws[6:])
}

// TestIngestAdmissionBoundedQueue pins the 429 path: with the admission
// limit reached, further ingestion is shed with Retry-After and counted,
// and nothing new is acknowledged into the WAL.
func TestIngestAdmissionBoundedQueue(t *testing.T) {
	ts, _, raws := degradeIngestFixture(t, Options{MaxPending: 1})

	var ok IngestResponse
	if resp := postRaw(t, ts, "/v1/ingest", IngestRequest{Trajectories: raws[:1]}, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest under the limit: status %d, want 200", resp.StatusCode)
	}
	// The queue now holds >= MaxPending acknowledged records and nothing
	// drains them: the next request must be shed, not acknowledged.
	resp := postRaw(t, ts, "/v1/ingest", IngestRequest{Trajectories: raws[1:2]}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit ingest: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}
	var stats StatsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", stats.Rejected)
	}
	if stats.Ingest == nil || stats.Ingest.Acked != 1 || stats.Ingest.PendingLimit != 1 {
		t.Fatalf("ingest stats after shedding: %+v", stats.Ingest)
	}
}

// TestWALFaultTripsReadOnlyOverHTTP drives the read-only latch end to
// end: an injected WAL sync failure turns later ingestion into 503s with
// Retry-After while queries keep answering, and /healthz + /v1/stats report
// the degraded write path.
func TestWALFaultTripsReadOnlyOverHTTP(t *testing.T) {
	ts, inj, raws := degradeIngestFixture(t, Options{})

	var ok IngestResponse
	if resp := postRaw(t, ts, "/v1/ingest", IngestRequest{Trajectories: raws[:1]}, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: status %d, want 200", resp.StatusCode)
	}

	// Fail the next WAL fsync: that submission is a server error (it was
	// not acknowledged) and the write path latches read-only.  FailAt
	// resets the op counter, so the next append is write(0), sync(1).
	inj.FailAt(1, faultfs.EIO)
	if resp := postRaw(t, ts, "/v1/ingest", IngestRequest{Trajectories: raws[1:2]}, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ingest over a failed sync: status %d, want 500", resp.StatusCode)
	}
	inj.Disarm()

	resp := postRaw(t, ts, "/v1/ingest", IngestRequest{Trajectories: raws[2:3]}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read-only ingest: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("read-only 503 should carry Retry-After")
	}

	var health struct {
		Status   string `json:"status"`
		ReadOnly bool   `json:"readOnly"`
	}
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "degraded" || !health.ReadOnly {
		t.Fatalf("healthz should report read-only mode: %+v", health)
	}
	var stats StatsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Ingest == nil || !stats.Ingest.ReadOnly {
		t.Fatalf("stats should report read-only mode: %+v", stats.Ingest)
	}

	// Reads survive the broken write path.
	var whereResp struct {
		Results []WhereResultJSON `json:"results"`
	}
	if resp := postRaw(t, ts, "/v1/where", WhereRequest{Traj: 0, T: stats.TimeMin, Alpha: 0.0}, &whereResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("query while read-only: status %d, want 200", resp.StatusCode)
	}
}

// TestQueryTimeoutAbandonsSlowQueries pins the timed wrapper: a query
// slower than the budget is dropped with errQueryTimeout (mapped to 504),
// counted, and a fast query is unaffected.
func TestQueryTimeoutAbandonsSlowQueries(t *testing.T) {
	s := &Server{opts: Options{QueryTimeout: 10 * time.Millisecond}}
	_, err := timed(s, func() (int, error) {
		time.Sleep(500 * time.Millisecond)
		return 1, nil
	})
	if !errors.Is(err, errQueryTimeout) {
		t.Fatalf("slow query: got %v, want errQueryTimeout", err)
	}
	if statusFor(err) != http.StatusGatewayTimeout {
		t.Fatalf("timeout status = %d, want 504", statusFor(err))
	}
	if s.timeouts.Load() != 1 {
		t.Fatalf("timeout counter = %d, want 1", s.timeouts.Load())
	}
	v, err := timed(s, func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("fast query: %v, %v", v, err)
	}
	// Disabled budget runs inline.
	s2 := &Server{opts: Options{QueryTimeout: -1}}
	if v, err := timed(s2, func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("disabled budget: %v, %v", v, err)
	}
}
