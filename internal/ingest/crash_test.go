package ingest

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"utcq/internal/faultfs"
	"utcq/internal/faultfs/crashmatrix"
	"utcq/internal/gen"
	"utcq/internal/mapmatch"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// crashMatrixFullEnv opts into the exhaustive sweep; the default run
// strides the CD/HZ matrices so the suite stays fast.
const crashMatrixFullEnv = "UTCQ_CRASHMATRIX_FULL"

func crashPoints(profile string) int {
	if profile == "DK" || os.Getenv(crashMatrixFullEnv) == "1" {
		return 0
	}
	return 24
}

// TestIngestCrashMatrix enumerates a crash after every mutating
// filesystem operation of the full live-ingestion pipeline — WAL create,
// per-record append+fsync acknowledgement, Flush into delta shards,
// Compact with WAL checkpoint — and at each point power-cuts the
// filesystem, replays recovery, and asserts the durability contract:
//
//   - the store reopens into a complete generation (manifest + shards),
//   - the WAL reopens and covers everything the manifest claims applied,
//   - every acknowledged trajectory is recovered (recovered acked count
//     >= acks observed before the crash, and recovery is a prefix of the
//     submission order),
//   - after a recovery Flush the store holds exactly the matcher-accepted
//     subset of the recovered prefix, all of it queryable,
//   - nothing panics.
func TestIngestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a long test")
	}
	for _, p := range gen.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			p.Network.Cols, p.Network.Rows = 16, 16
			g, eix, raws, err := gen.Raws(p, 11, 29)
			if err != nil {
				t.Fatal(err)
			}
			matcher := mapmatch.New(g, eix, p.Match)
			base := matchAll(matcher, raws[:4])
			if len(base) < 2 {
				t.Fatalf("profile %s: only %d of the base raws matched", p.Name, len(base))
			}
			live := raws[4:] // submitted through the WAL, one at a time

			// matchedPrefix[i] = matcher-accepted count among live[:i], and
			// the oracle population those accepts append to: recovery must
			// reproduce exactly this for whatever prefix of submissions
			// survives.
			oracle := append([]*traj.Uncertain(nil), base...)
			matchedPrefix := make([]int, len(live)+1)
			for i, raw := range live {
				matchedPrefix[i+1] = matchedPrefix[i]
				if u, err := matcher.Match(raw); err == nil {
					matchedPrefix[i+1]++
					oracle = append(oracle, u)
				}
			}

			buildOpts := store.DefaultOptions(p.Ts)
			buildOpts.NumShards = 2
			buildOpts.Index = testIndexOpts
			buildOpts.Parallelism = 1
			const walPath = "store/ingest.wal"
			ingOpts := func(fs faultfs.FS) Options {
				return Options{
					FS:           fs,
					BatchSize:    3,
					Match:        p.Match,
					Parallelism:  1,
					CompactEvery: -1, // compaction is driven explicitly below
				}
			}

			// acked is the driver's record of acknowledged submissions in
			// the current faulted run (Submit returned nil => the record is
			// durable and must survive).
			var acked int

			w := crashmatrix.Workload{
				Name: "ingest-pipeline-" + p.Name,
				Setup: func(fs faultfs.FS) error {
					opts := buildOpts
					opts.FS = fs
					st, err := store.Build(g, base, opts)
					if err != nil {
						return err
					}
					return st.Save("store")
				},
				Run: func(fs faultfs.FS) error {
					acked = 0
					st, err := store.Open("store", g, store.OpenOptions{FS: fs, Eager: true, Parallelism: 1})
					if err != nil {
						return err
					}
					ing, err := New(st, eix, walPath, ingOpts(fs))
					if err != nil {
						return err
					}
					submit := func(from, to int) error {
						for _, raw := range live[from:to] {
							if _, err := ing.Submit(raw); err != nil {
								return err
							}
							acked++
						}
						return nil
					}
					if err := submit(0, 3); err != nil {
						return err
					}
					if _, err := ing.Flush(); err != nil {
						return err
					}
					if err := submit(3, 5); err != nil {
						return err
					}
					if _, err := ing.Compact(); err != nil {
						return err
					}
					if err := submit(5, 7); err != nil {
						return err
					}
					_, err = ing.Flush()
					return err
				},
				Verify: func(mem *faultfs.MemFS, pt crashmatrix.Point) error {
					st, err := store.Open("store", g, store.OpenOptions{FS: mem, Eager: true, Parallelism: 1})
					if err != nil {
						return fmt.Errorf("reopen store (durable: %v): %w", mem.DurableNames(), err)
					}
					ing, err := New(st, eix, walPath, ingOpts(mem))
					if err != nil {
						return fmt.Errorf("reopen WAL: %w", err)
					}
					recovered := int(ing.Stats().Acked)
					if recovered < acked {
						return fmt.Errorf("%d records were acknowledged but only %d recovered", acked, recovered)
					}
					if recovered > len(live) {
						return fmt.Errorf("recovered %d records, only %d were ever submitted", recovered, len(live))
					}
					if _, err := ing.Flush(); err != nil {
						return fmt.Errorf("recovery flush: %w", err)
					}
					stats := ing.Stats()
					if stats.Applied != stats.Acked || stats.Pending != 0 {
						return fmt.Errorf("recovery left applied=%d acked=%d pending=%d", stats.Applied, stats.Acked, stats.Pending)
					}
					want := len(base) + matchedPrefix[recovered]
					if got := st.NumTrajectories(); got != want {
						return fmt.Errorf("recovered store holds %d trajectories, want %d (recovered prefix %d)", got, want, recovered)
					}
					for j := 0; j < want; j++ {
						if _, err := st.Where(j, oracle[j].T[0], 0.3); err != nil {
							return fmt.Errorf("where(%d): %w", j, err)
						}
					}
					if _, err := st.Range(g.Bounds(), oracle[0].T[0], 0.15); err != nil {
						return fmt.Errorf("range: %w", err)
					}
					return ing.Close()
				},
			}
			res, err := crashmatrix.Run(w, crashmatrix.Options{
				TornBytes: []int{0, 7},
				MaxPoints: crashPoints(p.Name),
				Faults:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d mutating ops, %d matrix points", p.Name, res.Ops, res.Points)
		})
	}
}

// TestWALSyncFaultTripsReadOnly pins the graceful-degradation contract of
// the write path: an injected WAL sync failure latches the ingester
// read-only — later submissions fail with ErrReadOnly instead of
// panicking or acknowledging non-durable records — while the store keeps
// answering queries.
func TestWALSyncFaultTripsReadOnly(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 16, 16
	g, eix, raws, err := gen.Raws(p, 8, 31)
	if err != nil {
		t.Fatal(err)
	}
	matcher := mapmatch.New(g, eix, p.Match)
	base := matchAll(matcher, raws[:4])

	mem := faultfs.NewMemFS()
	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	opts.FS = mem
	st, err := store.Build(g, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("store"); err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(mem)
	ing, err := New(st, eix, "store/ingest.wal", Options{FS: inj, Match: p.Match, Parallelism: 1, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Submit(raws[4]); err != nil {
		t.Fatal(err)
	}

	// Fail the next fsync: the submission must be rejected and the latch
	// must hold for everything after, wrapped as ErrReadOnly.
	inj.FailAt(1, faultfs.EIO) // append = write(0), sync(1)
	if _, err := ing.Submit(raws[5]); err == nil {
		t.Fatal("submit over a failed sync must not acknowledge")
	}
	inj.Disarm()
	if err := ing.ReadOnly(); err == nil {
		t.Fatal("WAL failure must latch read-only mode")
	}
	if _, err := ing.Submit(raws[6]); !isReadOnly(err) {
		t.Fatalf("post-latch submit: got %v, want ErrReadOnly", err)
	}
	if !ing.Stats().ReadOnly {
		t.Fatal("stats must report read-only mode")
	}

	// Reads keep working: the already-acknowledged world stays queryable.
	if _, err := ing.Flush(); err != nil {
		t.Fatalf("draining the pre-fault backlog should work: %v", err)
	}
	oracle := append(append([]*traj.Uncertain(nil), base...), matchAll(matcher, raws[4:5])...)
	if got, want := st.NumTrajectories(), len(oracle); got != want {
		t.Fatalf("store holds %d trajectories, want %d", got, want)
	}
	for j := range oracle {
		if _, err := st.Where(j, oracle[j].T[0], 0.3); err != nil {
			t.Fatalf("where(%d) while read-only: %v", j, err)
		}
	}
}

func isReadOnly(err error) bool { return errors.Is(err, ErrReadOnly) }
