package ingest

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/mapmatch"
	"utcq/internal/simplify"
	"utcq/internal/store"
	"utcq/internal/traj"
)

func benchStore(b *testing.B, baseN int) (*store.Store, *gen.Profile, []traj.RawTrajectory, *mapmatch.Matcher, func(walName string) *Ingester) {
	b.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, 96, 1)
	if err != nil {
		b.Fatal(err)
	}
	matcher := mapmatch.New(g, eix, p.Match)
	base := matchAll(matcher, raws[:baseN])
	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	st, err := store.Build(g, base, opts)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	mk := func(walName string) *Ingester {
		ing, err := New(st, eix, filepath.Join(dir, walName), Options{
			BatchSize:    32,
			Match:        p.Match,
			CompactEvery: 8,
			NoSync:       true, // measure the pipeline, not fsync latency
		})
		if err != nil {
			b.Fatal(err)
		}
		return ing
	}
	return st, &p, raws, matcher, mk
}

// BenchmarkIngestWALAppend measures the acknowledgement path without
// durability: framing + CRC + buffered write per raw trajectory.
func BenchmarkIngestWALAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	raws := make([]traj.RawTrajectory, 64)
	for i := range raws {
		raws[i] = randomRaw(rng)
	}
	w, _, err := OpenWAL(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(raws[i%len(raws)], 0); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			if err := w.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIngestBatch measures one full ingest drain: 16 raw
// trajectories acknowledged, map-matched, compressed into a delta shard
// and swapped into the store manifest (automatic compaction included, as
// in production).
func BenchmarkIngestBatch(b *testing.B) {
	_, _, raws, _, mk := benchStore(b, 16)
	ing := mk("bench.wal")
	defer ing.Close()
	const batch = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < batch; k++ {
			if _, err := ing.Submit(raws[16+(i*batch+k)%(len(raws)-16)]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := ing.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch), "trajs/op")
}

// BenchmarkSimplifyOnline measures the admission-time simplifier alone:
// one synthetic CD trajectory reduced per op under a GPS-scale budget.
func BenchmarkSimplifyOnline(b *testing.B) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	_, _, raws, err := gen.Raws(p, 64, 5)
	if err != nil {
		b.Fatal(err)
	}
	var keptPoints int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keptPoints += len(simplify.Trajectory(raws[i%len(raws)], 10).Points)
	}
	if keptPoints == 0 {
		b.Fatal("simplifier dropped the endpoints")
	}
}

// BenchmarkIngestBatchSimplified is BenchmarkIngestBatch with the online
// simplifier in the admission path, at ε = 0 (off, the baseline frame
// cost of the v2 WAL layout) and at GPS-scale budgets.  The reported
// wal-B/batch metric is the log volume one batch costs — the number the
// ε budget exists to cut.
func BenchmarkIngestBatchSimplified(b *testing.B) {
	for _, eps := range []float64{0, 10, 25} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			_, _, raws, _, mk := benchStore(b, 16)
			ing := mk(fmt.Sprintf("bench-eps%v.wal", eps))
			ing.opts.SimplifyEps = eps
			defer ing.Close()
			const batch = 16
			walStart := ing.Stats().WALBytes
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < batch; k++ {
					if _, err := ing.Submit(raws[16+(i*batch+k)%(len(raws)-16)]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := ing.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ing.Stats().WALBytes-walStart)/float64(b.N), "wal-B/batch")
		})
	}
}

// BenchmarkCompactDeltas measures folding 8 delta shards (8 trajectories
// each) into one base shard: record merge + StIU rebuild + manifest swap.
func BenchmarkCompactDeltas(b *testing.B) {
	st, _, raws, matcher, mk := benchStore(b, 16)
	ing := mk("bench.wal")
	defer ing.Close()
	// Pre-match the delta population once; ApplyDelta skips the matcher.
	tus := matchAll(matcher, raws[16:80])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k+8 <= len(tus); k += 8 {
			if _, err := st.ApplyDelta(tus[k:k+8], st.WALApplied()); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := st.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
