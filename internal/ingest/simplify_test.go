package ingest

import (
	"math/rand"
	"path/filepath"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/mapmatch"
	"utcq/internal/simplify"
	"utcq/internal/store"
)

// TestIngestSimplifiedMatchesOracle pins the admission-time simplifier's
// place in the pipeline: with SimplifyEps set, the ingester behaves
// exactly like one fed pre-simplified raws — the oracle is the matcher
// over simplify.Trajectory(raw, eps), in acknowledgement order — at
// every generation and across compactions.  (The WAL stores the REDUCED
// points, so recovery never re-simplifies; TestWALVersion1Compat and the
// crash matrix cover the log side.)
func TestIngestSimplifiedMatchesOracle(t *testing.T) {
	const eps = 10.0 // below the profile's SigmaGPS (15): matching stays robust
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, 24, 57)
	if err != nil {
		t.Fatal(err)
	}
	matcher := mapmatch.New(g, eix, p.Match)
	oracle := matchAll(matcher, raws[:6])
	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	st, err := store.Build(g, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	ing, err := New(st, eix, walPath, Options{
		BatchSize:    4,
		Match:        p.Match,
		CompactEvery: 3,
		SimplifyEps:  eps,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	rng := rand.New(rand.NewSource(5))
	next := 6
	for next < len(raws) {
		end := min(next+1+rng.Intn(5), len(raws))
		for _, raw := range raws[next:end] {
			if _, err := ing.Submit(raw); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ing.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, raw := range raws[next:end] {
			red := simplify.Trajectory(raw, eps)
			if u, err := matcher.Match(red); err == nil {
				oracle = append(oracle, u)
			}
		}
		next = end
		if rng.Intn(3) == 0 {
			if _, err := ing.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		checkOracle(t, g, p.Ts, oracle, st, rng)
	}

	stats := ing.Stats()
	if stats.SimplifyEps != eps {
		t.Fatalf("stats report eps %v, want %v", stats.SimplifyEps, eps)
	}
	if stats.PointsIn <= stats.PointsKept || stats.PointsKept <= 0 {
		t.Fatalf("simplification dropped nothing: in=%d kept=%d", stats.PointsIn, stats.PointsKept)
	}
}
