package ingest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"utcq/internal/faultfs"
	"utcq/internal/mapmatch"
	"utcq/internal/par"
	"utcq/internal/roadnet"
	"utcq/internal/simplify"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// Options configure an Ingester.
type Options struct {
	// BatchSize is the maximum number of WAL records drained into one
	// delta shard (default 32).  Smaller batches lower ingest latency;
	// larger ones amortize the per-shard index build.
	BatchSize int

	// FlushEvery is the background worker's drain interval for partial
	// batches (default 1s).  Full batches drain immediately.
	FlushEvery time.Duration

	// Match configures the probabilistic map matcher.  The zero value
	// selects mapmatch.DefaultConfig.
	Match mapmatch.Config

	// Parallelism bounds the map-matching worker pool of one batch
	// (<1: one worker per CPU).
	Parallelism int

	// CompactEvery triggers a compaction whenever the live delta shard
	// count reaches it (default 8; negative disables automatic
	// compaction).
	CompactEvery int

	// SimplifyEps is the SED error budget (map units) of the online
	// simplifier applied to every submission at admission — after
	// validation, before the WAL append — so the log, the matcher and the
	// store all see the reduced point set.  0 (the default) disables
	// simplification; the budget in force is recorded per record in the
	// WAL (version 2 payloads) and reported in Stats.
	SimplifyEps float64

	// NoSync skips the fsync on Submit.  Throughput for durability: an
	// unsynced record can be lost in a crash even though Submit returned.
	// Bulk loads and tests use it; live traffic should not.
	NoSync bool

	// FS is the filesystem the WAL lives on (nil: the real one).
	// Fault-injection tests substitute faultfs.MemFS or an Injector; it
	// should match the store's FS so crash simulations cover both.
	FS faultfs.FS
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.BatchSize < 1 {
		o.BatchSize = 32
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = time.Second
	}
	if o.Match.MaxInstances == 0 && o.Match.CandidateRadius == 0 {
		o.Match = mapmatch.DefaultConfig()
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 8
	}
	return o
}

// Stats is a point-in-time snapshot of the ingestion pipeline.
type Stats struct {
	// Acked is the number of trajectories durably accepted into the WAL
	// (including records recovered at startup).
	Acked uint64
	// Applied is the WAL high-water mark folded into the store.
	Applied uint64
	// Pending is Acked - Applied: acknowledged records not yet queryable.
	Pending uint64
	// Matched / Dropped split the applied records into those that
	// produced an uncertain trajectory and those the matcher rejected.
	Matched int64
	Dropped int64
	// Batches counts the delta batches applied by this process.
	Batches int64
	// Compactions counts the automatic compactions this ingester ran.
	Compactions int64
	// Generation mirrors the store's manifest generation.
	Generation uint64
	// WALBytes is the log's current size.
	WALBytes int64
	// SimplifyEps is the configured admission error budget (0: off).
	SimplifyEps float64
	// PointsIn / PointsKept count the raw points submitted to this
	// process and the points surviving admission simplification; their
	// difference is the volume the ε budget saved before the WAL.
	PointsIn   int64
	PointsKept int64
	// ReadOnly reports that the WAL failure latch is set: the write path
	// refuses new submissions (ErrReadOnly) while queries keep serving.
	ReadOnly bool
}

// Ingester is the write path of a mutable store: Submit acknowledges raw
// trajectories into the WAL; a background worker (or explicit Flush calls)
// drains them through map matching and compression into delta shards, and
// compacts deltas into base shards past a threshold.  Safe for concurrent
// use.
type Ingester struct {
	st      *store.Store
	matcher *mapmatch.Matcher
	opts    Options

	// mu guards the WAL and the pending queue.
	mu          sync.Mutex
	wal         *WAL
	pending     []traj.RawTrajectory
	pendingBase uint64 // WAL sequence of pending[0]

	// drainMu serializes batch application (background worker, Flush and
	// Compact callers), keeping WAL order = store order.
	drainMu sync.Mutex

	matched     atomic.Int64
	dropped     atomic.Int64
	batches     atomic.Int64
	compactions atomic.Int64
	pointsIn    atomic.Int64
	pointsKept  atomic.Int64

	// dropMu guards droppedSeqs: the WAL sequences of the most recent
	// records the matcher rejected at fold time.  A dropped record
	// consumed a WAL sequence but no store id, so callers that map
	// sequences to trajectory ids (the synchronous-flush ingest response,
	// and through it the cluster router's placement maps) need to know
	// exactly which ones vanished.
	dropMu      sync.Mutex
	droppedSeqs []uint64

	stop chan struct{}
	done chan struct{}
	wake chan struct{}
}

// ErrRejected marks structurally invalid submissions (client mistakes, as
// opposed to I/O faults).
var ErrRejected = errors.New("ingest: rejected")

// New opens (or creates) the WAL at walPath and attaches it to the store.
// Records already acknowledged but not yet reflected in the store manifest
// (a crash between Sync and ApplyDelta) are queued for the next drain — the
// crash-recovery path.  The edge index must be built over the store's
// road network.  Call Start for background draining, or drive Flush
// manually.
func New(st *store.Store, ix *roadnet.EdgeIndex, walPath string, opts Options) (*Ingester, error) {
	opts = opts.withDefaults()
	wal, recs, err := OpenWALIn(opts.FS, walPath)
	if err != nil {
		return nil, err
	}
	raws := make([]traj.RawTrajectory, len(recs))
	for i, rec := range recs {
		raws[i] = rec.Raw
	}
	// The log holds records [FirstSeq, Count); the store has applied
	// everything below walApplied.  The pending suffix is their
	// difference; a store outside the log's range means the wrong log
	// (or a checkpoint that outran the manifest, which the checkpoint
	// ordering makes impossible).
	applied := st.WALApplied()
	if applied < wal.FirstSeq() || applied > wal.Count() {
		wal.Close()
		return nil, fmt.Errorf("ingest: store has applied %d WAL records but %s covers [%d, %d): wrong log for this store",
			applied, walPath, wal.FirstSeq(), wal.Count())
	}
	ing := &Ingester{
		st:          st,
		matcher:     mapmatch.New(st.Graph(), ix, opts.Match),
		opts:        opts,
		wal:         wal,
		pending:     raws[applied-wal.FirstSeq():],
		pendingBase: applied,
		wake:        make(chan struct{}, 1),
	}
	return ing, nil
}

// Pending returns the acknowledged-but-unapplied record count.
func (ing *Ingester) Pending() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return len(ing.pending)
}

// ReadOnly returns the latched WAL failure, or nil while the write path
// is healthy.  Once non-nil, Submit fails with an error wrapping
// ErrReadOnly until the process restarts against a repaired log; reads
// are unaffected.
func (ing *Ingester) ReadOnly() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.wal == nil {
		return nil
	}
	return ing.wal.Failed()
}

// ValidateRaw checks the structural requirements a submission must meet
// before it can be acknowledged (wrapped in ErrRejected on failure).
func ValidateRaw(raw traj.RawTrajectory) error {
	if len(raw.Points) < 2 {
		return fmt.Errorf("%w: need >= 2 points, got %d", ErrRejected, len(raw.Points))
	}
	if len(raw.Points) > MaxPoints {
		return fmt.Errorf("%w: %d points exceed the WAL record limit (%d)", ErrRejected, len(raw.Points), MaxPoints)
	}
	for i := 1; i < len(raw.Points); i++ {
		if raw.Points[i].T <= raw.Points[i-1].T {
			return fmt.Errorf("%w: timestamps not strictly increasing at point %d", ErrRejected, i)
		}
	}
	return nil
}

// Submit validates and acknowledges one raw trajectory: it is appended to
// the WAL and (unless Options.NoSync) fsynced before Submit returns its
// sequence number.  The trajectory becomes queryable after the next drain.
func (ing *Ingester) Submit(raw traj.RawTrajectory) (uint64, error) {
	return ing.SubmitBatch([]traj.RawTrajectory{raw})
}

// SubmitBatch acknowledges a batch with one durability barrier: every
// trajectory is validated before anything is appended — a structurally
// invalid batch is rejected (ErrRejected) with nothing acknowledged — then
// all records are appended and fsynced once (group commit), so a
// 100-trajectory batch costs one fsync, not 100.  Returns the sequence
// number of the first record.
//
// With Options.SimplifyEps > 0 each validated trajectory is reduced by
// the SED-bounded online simplifier before its WAL append: what is
// acknowledged (and later matched, compressed and served) is the
// simplified point set, with the budget recorded alongside it in the log.
// Simplification keeps endpoints and a strictly-ordered subsequence, so
// it cannot invalidate a batch that passed validation.
func (ing *Ingester) SubmitBatch(raws []traj.RawTrajectory) (uint64, error) {
	if len(raws) == 0 {
		return 0, fmt.Errorf("%w: empty batch", ErrRejected)
	}
	for i, raw := range raws {
		if err := ValidateRaw(raw); err != nil {
			return 0, fmt.Errorf("trajectory %d: %w", i, err)
		}
	}
	eps := ing.opts.SimplifyEps
	var in, kept int
	if eps > 0 {
		reduced := make([]traj.RawTrajectory, len(raws))
		for i, raw := range raws {
			reduced[i] = simplify.Trajectory(raw, eps)
			in += len(raw.Points)
			kept += len(reduced[i].Points)
		}
		raws = reduced
	} else {
		eps = 0 // never record a negative budget
		for _, raw := range raws {
			in += len(raw.Points)
		}
		kept = in
	}
	ing.pointsIn.Add(int64(in))
	ing.pointsKept.Add(int64(kept))
	ing.mu.Lock()
	var first uint64
	var err error
	for i, raw := range raws {
		var seq uint64
		if seq, err = ing.wal.Append(raw, eps); err != nil {
			break
		}
		if i == 0 {
			first = seq
		}
	}
	if err == nil && !ing.opts.NoSync {
		err = ing.wal.Sync()
	}
	if err == nil {
		ing.pending = append(ing.pending, raws...)
	}
	full := len(ing.pending) >= ing.opts.BatchSize
	ing.mu.Unlock()
	if err != nil {
		// Appended-but-unsynced records were never acknowledged; the WAL's
		// failure latch keeps later submissions from misnumbering.
		return 0, err
	}
	if full {
		select {
		case ing.wake <- struct{}{}:
		default:
		}
	}
	return first, nil
}

// Flush drains every pending record into the store, one delta shard per
// batch, and returns the store generation afterwards.
func (ing *Ingester) Flush() (uint64, error) {
	for {
		n, err := ing.drainOne()
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return ing.st.Generation(), nil
		}
	}
}

// drainOne applies up to one batch of pending records and reports how many
// it consumed.
func (ing *Ingester) drainOne() (int, error) {
	ing.drainMu.Lock()
	defer ing.drainMu.Unlock()

	ing.mu.Lock()
	if ing.wal != nil && ing.opts.NoSync {
		// Unsynced submissions are not acknowledged; make the batch
		// durable before folding it into the store, or a crash could lose
		// records the manifest claims were applied.
		if err := ing.wal.Sync(); err != nil {
			ing.mu.Unlock()
			return 0, err
		}
	}
	n := len(ing.pending)
	if n > ing.opts.BatchSize {
		n = ing.opts.BatchSize
	}
	batch := append([]traj.RawTrajectory(nil), ing.pending[:n]...)
	applyTo := ing.pendingBase + uint64(n)
	ing.mu.Unlock()
	if n == 0 {
		return 0, nil
	}

	// Map-match the batch on a bounded pool; results stay in submission
	// order so the store content is a pure function of the WAL.
	us := make([]*traj.Uncertain, n)
	_ = par.Do(par.Workers(ing.opts.Parallelism), n, func(i int) error {
		u, err := ing.matcher.Match(batch[i])
		if err == nil {
			us[i] = u
		}
		return nil // match failures drop the record, they do not abort the batch
	})
	var tus []*traj.Uncertain
	var droppedNow []uint64
	for i, u := range us {
		if u != nil {
			tus = append(tus, u)
		} else {
			droppedNow = append(droppedNow, applyTo-uint64(n)+uint64(i))
		}
	}
	if len(droppedNow) > 0 {
		ing.noteDropped(droppedNow)
	}
	if _, err := ing.st.ApplyDelta(tus, applyTo); err != nil {
		return 0, err
	}
	ing.matched.Add(int64(len(tus)))
	ing.dropped.Add(int64(n - len(tus)))
	ing.batches.Add(1)

	ing.mu.Lock()
	ing.pending = ing.pending[n:]
	ing.pendingBase = applyTo
	ing.mu.Unlock()

	if ing.opts.CompactEvery > 0 && ing.st.DeltaShards() >= ing.opts.CompactEvery {
		folded, err := ing.st.Compact()
		if err != nil {
			return 0, err
		}
		if folded > 0 {
			ing.compactions.Add(1)
			ing.checkpointWAL()
		}
	}
	return n, nil
}

// maxDroppedSeqs bounds the retained drop history.  Drops are rare
// (structurally valid GPS that the matcher cannot place on the network),
// and the only caller that needs them — the synchronous-flush ingest
// response — asks immediately after its own batch folded, so a small
// recent window is always enough.
const maxDroppedSeqs = 4096

// noteDropped records fold-time drops (ascending, fold order).
func (ing *Ingester) noteDropped(seqs []uint64) {
	ing.dropMu.Lock()
	ing.droppedSeqs = append(ing.droppedSeqs, seqs...)
	if excess := len(ing.droppedSeqs) - maxDroppedSeqs; excess > 0 {
		ing.droppedSeqs = append(ing.droppedSeqs[:0], ing.droppedSeqs[excess:]...)
	}
	ing.dropMu.Unlock()
}

// DroppedIn returns the WAL sequences in [from, to) whose records were
// acknowledged but rejected by the map matcher at fold time.  Only the
// most recent maxDroppedSeqs drops are retained, so the answer is exact
// for a batch queried right after its own flush and best-effort for
// ancient history.
func (ing *Ingester) DroppedIn(from, to uint64) []uint64 {
	ing.dropMu.Lock()
	defer ing.dropMu.Unlock()
	var out []uint64
	for _, s := range ing.droppedSeqs {
		if s >= from && s < to {
			out = append(out, s)
		}
	}
	return out
}

// checkpointWAL drops the WAL prefix the manifest confirms applied, so
// the log is bounded by the unapplied backlog rather than the lifetime
// ingest volume.  Compaction cadence is the natural trigger: the dropped
// records' data just became part of a durable base shard.  In-memory
// stores are exempt — they rebuild from scratch on restart, so their WAL
// must retain the full history.  Failures are harmless (the log only
// stays longer than necessary) and will be retried at the next
// compaction.
func (ing *Ingester) checkpointWAL() {
	if !ing.st.Durable() {
		return
	}
	ing.mu.Lock()
	// Only checkpoint when every acknowledged record is applied (the
	// common state right after a compaction): the retained suffix is then
	// empty, so the rewrite is O(1) plus one sequential scan, and the
	// mutex never pins concurrent Submits behind a partial-log copy.
	// With submissions racing the compaction, the next compaction gets it.
	if applied := ing.st.WALApplied(); applied == ing.wal.Count() {
		_ = ing.wal.Checkpoint(applied)
	}
	ing.mu.Unlock()
}

// Compact drains pending records and folds all live delta shards into a
// base shard, returning the number folded.
func (ing *Ingester) Compact() (int, error) {
	if _, err := ing.Flush(); err != nil {
		return 0, err
	}
	folded, err := ing.st.Compact()
	if err == nil && folded > 0 {
		ing.compactions.Add(1)
		ing.checkpointWAL()
	}
	return folded, err
}

// Start launches the background drain worker: full batches drain on
// arrival, partial batches at Options.FlushEvery.  Stop with Close.
func (ing *Ingester) Start() {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.stop != nil {
		return
	}
	ing.stop = make(chan struct{})
	ing.done = make(chan struct{})
	go ing.loop(ing.stop, ing.done)
}

func (ing *Ingester) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(ing.opts.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ing.wake:
		case <-tick.C:
		}
		for {
			n, err := ing.drainOne()
			if err != nil || n == 0 {
				break // transient errors retry on the next tick
			}
		}
	}
}

// Close stops the background worker, drains everything pending, and closes
// the WAL.  The store stays queryable.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	stop, done := ing.stop, ing.done
	ing.stop, ing.done = nil, nil
	ing.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	_, ferr := ing.Flush()
	ing.mu.Lock()
	cerr := ing.wal.Close()
	ing.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Stats returns a point-in-time snapshot.
func (ing *Ingester) Stats() Stats {
	ing.mu.Lock()
	acked := ing.wal.Count()
	pending := uint64(len(ing.pending))
	bytes := ing.wal.Size()
	readOnly := ing.wal.Failed() != nil
	ing.mu.Unlock()
	return Stats{
		Acked:       acked,
		Applied:     ing.st.WALApplied(),
		Pending:     pending,
		Matched:     ing.matched.Load(),
		Dropped:     ing.dropped.Load(),
		Batches:     ing.batches.Load(),
		Compactions: ing.compactions.Load(),
		Generation:  ing.st.Generation(),
		WALBytes:    bytes,
		SimplifyEps: math.Max(ing.opts.SimplifyEps, 0),
		PointsIn:    ing.pointsIn.Load(),
		PointsKept:  ing.pointsKept.Load(),
		ReadOnly:    readOnly,
	}
}
