// Package ingest adds the live write path to the UTCQ system: an
// append-only write-ahead log of raw (pre-match) GPS trajectories, and a
// background worker that drains WAL batches through probabilistic map
// matching and UTCQ compression into delta shards of a mutable store
// (internal/store), compacting accumulated deltas back into base shards.
//
// Durability contract: a trajectory is acknowledged once its WAL record is
// written and synced.  The store manifest records the WAL high-water mark
// (walApplied) transactionally with every applied batch, so after a crash
// the ingester replays exactly the acknowledged-but-unapplied suffix —
// nothing is lost, nothing is applied twice.  A torn tail record (the
// append that was in flight when the process died) fails its CRC or frame
// length and is truncated away; by definition it was never acknowledged.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"utcq/internal/faultfs"
	"utcq/internal/traj"
)

// WAL record framing (docs/FORMAT.md section 4):
//
//	file   = header record*
//	header = magic "UTCW" | version u16 | firstSeq u64 (little endian)
//	record = length u32 | crc u32 | payload
//
// firstSeq is the absolute sequence number of the file's first record:
// checkpointing (dropping records already folded into the store) rewrites
// the file with a higher firstSeq, so sequence numbers — and the store's
// walApplied high-water mark — survive truncation.  length is the payload
// byte count, crc is IEEE CRC-32 over the payload.  The payload is one
// raw trajectory; version 2 prefixes it with the simplification error
// budget (SED ε, internal/simplify) the record was admitted under:
//
//	v1: numPoints u32 | numPoints × (x f64 | y f64 | t i64)
//	v2: eps f64 | numPoints u32 | numPoints × (x f64 | y f64 | t i64)
//
// The version is per file: new logs are created at version 2; a log that
// already exists keeps appending records in its own version, so a v1 log
// written by an older build replays AND extends without a rewrite (its
// records report ε = 0 — the budget metadata is simply unrecorded there).
const (
	walMagic     = "UTCW"
	walVersionV1 = 1
	walVersionV2 = 2
	walVersion   = walVersionV2 // version for newly created logs

	walHeaderSize = 14 // magic + version + firstSeq
	walFrameSize  = 8  // length + crc
	walPointSize  = 24 // x + y + t, 8 bytes each
	walEpsSize    = 8  // v2 per-record error budget (f64)

	// maxWALRecord bounds a record's payload so a corrupted length field
	// fails fast instead of driving a huge allocation: 4 bytes of count
	// plus ~2.8M points.  Append enforces the same bound on the way in —
	// an oversized record must be rejected before acknowledgement, or
	// replay would treat it (and every record after it) as a torn tail.
	maxWALRecord = 1 << 26

	// MaxPoints is the largest raw trajectory one WAL record can carry
	// (sized against the v2 payload, the larger of the two layouts).
	MaxPoints = (maxWALRecord - walEpsSize - 4) / walPointSize
)

// Record is one replayed WAL entry: the raw trajectory as acknowledged
// (post-simplification when ingest ran with ε > 0) and the SED error
// budget it was admitted under — 0 for unsimplified records and for every
// record of a version-1 log, which has no field to carry the budget.
type Record struct {
	Raw traj.RawTrajectory
	Eps float64
}

// WAL is an append-only, CRC-framed log of raw trajectories.  Append
// buffers; Sync makes everything appended so far durable — the
// acknowledgement barrier.  WAL methods are not safe for concurrent use;
// the Ingester serializes access.
type WAL struct {
	path    string
	fs      faultfs.FS // filesystem the log lives on (never nil after open)
	f       faultfs.File
	buf     []byte // pending appended bytes not yet written through
	version uint16 // payload layout this file uses (per-file, fixed at create)
	first   uint64 // absolute sequence of the file's first record
	count   uint64 // records in the file (durable + buffered)
	size    int64  // file size once buf is flushed

	// failed latches the first write/sync error: once the file and the
	// in-memory sequence may disagree, every later operation refuses
	// instead of acknowledging records that might not be durable.  The
	// latch errors wrap ErrReadOnly so callers (the Ingester, the server)
	// can recognize the condition and degrade to read-only serving.
	failed error
}

// ErrReadOnly marks the WAL-failed latch: a write or sync error left the
// on-disk log and the in-memory sequence potentially out of agreement, so
// every later mutation refuses rather than acknowledge records that might
// not be durable.  Reads are unaffected — a server seeing this keeps
// serving queries and rejects writes with a retryable status.
var ErrReadOnly = errors.New("ingest: write path is read-only after a WAL failure")

// errFailed wraps the latch for return: callers match ErrReadOnly, the
// message carries the original fault.
func (w *WAL) errFailed() error {
	return fmt.Errorf("%w: %v", ErrReadOnly, w.failed)
}

// Failed returns the latched WAL error (nil while healthy).
func (w *WAL) Failed() error { return w.failed }

// walHeader frames a header with the given version and first sequence.
func walHeader(version uint16, firstSeq uint64) [walHeaderSize]byte {
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[6:], firstSeq)
	return hdr
}

// OpenWAL opens (or creates) the log at path and replays it: every record
// with a valid frame and checksum is returned in append order; the first
// record's absolute sequence number is WAL.FirstSeq (0 for a log never
// checkpointed).  A torn or corrupt tail — the footprint of a crash
// mid-append — is truncated away so the log ends on a record boundary and
// new appends extend a valid file.
func OpenWAL(path string) (*WAL, []Record, error) {
	return OpenWALIn(nil, path)
}

// OpenWALIn is OpenWAL through an explicit filesystem (nil: the real one);
// fault-injection tests substitute faultfs.MemFS or an Injector.
func OpenWALIn(fsys faultfs.FS, path string) (*WAL, []Record, error) {
	fsys = faultfs.Resolve(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{path: path, fs: fsys, f: f}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(data) == 0 {
		w.version = walVersion
		hdr := walHeader(w.version, 0)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		// Make the log's directory entry durable before anything is
		// acknowledged against it: fsyncing a newly created file persists
		// its content, not its name — without the directory sync a power
		// cut could reboot into a directory without the log, silently
		// dropping every record acknowledged since.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.size = walHeaderSize
		return w, nil, nil
	}
	version, first, recs, good, err := decodeWALImage(data)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	if good < int64(len(data)) {
		// Torn tail: drop the partial record so appends resume cleanly.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = good
	w.first = first
	w.count = uint64(len(recs))
	w.version = version
	return w, recs, nil
}

// DecodeWAL parses a WAL image, returning the first record's absolute
// sequence number, the complete records, and the byte offset at which the
// valid prefix ends.  Truncated frames, oversized lengths and checksum
// mismatches end the scan (they mark the torn tail); only a bad header is
// an error, because then the file is not a WAL at all and truncating it
// would destroy someone else's data.
func DecodeWAL(data []byte) (uint64, []Record, int64, error) {
	_, firstSeq, recs, good, err := decodeWALImage(data)
	return firstSeq, recs, good, err
}

// decodeWALImage is DecodeWAL plus the header's payload version, which
// OpenWALIn needs so appends extend the file in its own layout.
func decodeWALImage(data []byte) (uint16, uint64, []Record, int64, error) {
	if len(data) < walHeaderSize || string(data[:4]) != walMagic {
		return 0, 0, nil, 0, errors.New("not a UTCQ write-ahead log")
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	if version != walVersionV1 && version != walVersionV2 {
		return 0, 0, nil, 0, fmt.Errorf("unsupported WAL version %d", version)
	}
	firstSeq := binary.LittleEndian.Uint64(data[6:14])
	var recs []Record
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) < walFrameSize {
			return version, firstSeq, recs, off, nil
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxWALRecord || int(length) > len(rest)-walFrameSize {
			return version, firstSeq, recs, off, nil
		}
		payload := rest[walFrameSize : walFrameSize+int(length)]
		if crc32.ChecksumIEEE(payload) != crc {
			return version, firstSeq, recs, off, nil
		}
		rec, ok := decodeRecord(payload, version)
		if !ok {
			// The checksum matched but the payload is structurally invalid:
			// this is not a torn write, it is corruption (or a foreign
			// record) that fsync promised us could not happen.  Stop here
			// and let the caller keep the valid prefix.
			return version, firstSeq, recs, off, nil
		}
		recs = append(recs, rec)
		off += walFrameSize + int64(length)
	}
}

// encodeRecord serializes one record payload in the given layout version.
// A version-1 layout has no field for the error budget; the eps is
// dropped there (the points themselves are already simplified).
func encodeRecord(rec Record, version uint16) []byte {
	pre := 0
	if version >= walVersionV2 {
		pre = walEpsSize
	}
	out := make([]byte, pre+4+walPointSize*len(rec.Raw.Points))
	if pre > 0 {
		binary.LittleEndian.PutUint64(out, math.Float64bits(rec.Eps))
	}
	binary.LittleEndian.PutUint32(out[pre:], uint32(len(rec.Raw.Points)))
	o := pre + 4
	for _, p := range rec.Raw.Points {
		binary.LittleEndian.PutUint64(out[o:], uint64(int64FromF64(p.X)))
		binary.LittleEndian.PutUint64(out[o+8:], uint64(int64FromF64(p.Y)))
		binary.LittleEndian.PutUint64(out[o+16:], uint64(p.T))
		o += walPointSize
	}
	return out
}

// decodeRecord parses one payload in the given layout version; ok is
// false on any structural mismatch.
func decodeRecord(payload []byte, version uint16) (Record, bool) {
	var rec Record
	if version >= walVersionV2 {
		if len(payload) < walEpsSize {
			return Record{}, false
		}
		rec.Eps = math.Float64frombits(binary.LittleEndian.Uint64(payload))
		payload = payload[walEpsSize:]
	}
	if len(payload) < 4 {
		return Record{}, false
	}
	n := binary.LittleEndian.Uint32(payload)
	if int(n) != (len(payload)-4)/walPointSize || len(payload) != 4+walPointSize*int(n) {
		return Record{}, false
	}
	rec.Raw = traj.RawTrajectory{Points: make([]traj.RawPoint, n)}
	o := 4
	for i := range rec.Raw.Points {
		rec.Raw.Points[i] = traj.RawPoint{
			X: f64FromInt64(int64(binary.LittleEndian.Uint64(payload[o:]))),
			Y: f64FromInt64(int64(binary.LittleEndian.Uint64(payload[o+8:]))),
			T: int64(binary.LittleEndian.Uint64(payload[o+16:])),
		}
		o += walPointSize
	}
	return rec, true
}

// Append adds one record to the log buffer and returns its sequence number
// (its zero-based index in the log).  eps is the SED error budget the
// trajectory was simplified under (0: unsimplified); version-1 logs have
// no field for it and record the points alone.  The record is
// acknowledged — and must be reported to the submitter as accepted — only
// after a Sync.
func (w *WAL) Append(raw traj.RawTrajectory, eps float64) (uint64, error) {
	if w.f == nil {
		return 0, errors.New("ingest: WAL is closed")
	}
	if w.failed != nil {
		return 0, w.errFailed()
	}
	if len(raw.Points) > MaxPoints {
		return 0, fmt.Errorf("ingest: trajectory of %d points exceeds the WAL record limit (%d)", len(raw.Points), MaxPoints)
	}
	payload := encodeRecord(Record{Raw: raw, Eps: eps}, w.version)
	var frame [walFrameSize]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, frame[:]...)
	w.buf = append(w.buf, payload...)
	seq := w.first + w.count
	w.count++
	return seq, nil
}

// Sync writes the buffered records through and fsyncs the file: the
// acknowledgement barrier.  After Sync returns, every appended record
// survives a crash.
func (w *WAL) Sync() error {
	if w.f == nil {
		return errors.New("ingest: WAL is closed")
	}
	if w.failed != nil {
		return w.errFailed()
	}
	if len(w.buf) > 0 {
		n, err := w.f.Write(w.buf)
		w.size += int64(n)
		if err != nil {
			// A short write leaves a torn tail; recovery truncates it, and
			// the unsynced records were never acknowledged.
			w.buf = w.buf[:0]
			w.failed = err
			return err
		}
		w.buf = w.buf[:0]
	}
	if err := w.f.Sync(); err != nil {
		w.failed = err
		return err
	}
	return nil
}

// Count returns the next sequence number: the total number of records
// ever acknowledged through this log, including records a checkpoint has
// since dropped and appends still buffered.
func (w *WAL) Count() uint64 { return w.first + w.count }

// FirstSeq returns the absolute sequence of the file's first record (the
// checkpoint position; records below it have been dropped).
func (w *WAL) FirstSeq() uint64 { return w.first }

// Size returns the log's byte size once buffered records are flushed.
func (w *WAL) Size() int64 { return w.size + int64(len(w.buf)) }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Version returns the file's payload layout version (1 for logs written
// by builds before the error-budget field, 2 for logs created since).
func (w *WAL) Version() uint16 { return w.version }

// Checkpoint drops every record with sequence below upTo — records the
// store manifest confirms applied (walApplied) — by atomically rewriting
// the log with firstSeq = upTo: write-temp, fsync, rename, reopen.  This
// bounds the log to the unapplied backlog instead of the lifetime ingest
// volume.  upTo values at or below FirstSeq are no-ops; values beyond
// Count are rejected (they would drop unacknowledged state).
func (w *WAL) Checkpoint(upTo uint64) error {
	if w.f == nil {
		return errors.New("ingest: WAL is closed")
	}
	if w.failed != nil {
		return w.errFailed()
	}
	if upTo <= w.first {
		return nil
	}
	if upTo > w.first+w.count {
		return fmt.Errorf("ingest: checkpoint %d beyond last acknowledged record %d", upTo, w.first+w.count)
	}
	if err := w.Sync(); err != nil {
		return err
	}
	var br io.Reader
	if upTo == w.first+w.count {
		// Full checkpoint — the retained suffix is empty (the common case:
		// the ingester only checkpoints when every record is applied).  No
		// scan of the old log is needed; the replacement is just a header.
		br = bytes.NewReader(nil)
	} else {
		// Stream the retained suffix into the replacement file — the log
		// is never loaded into memory whole, so a partial checkpoint costs
		// sequential I/O, not allocation.
		src, err := w.fs.Open(w.path)
		if err != nil {
			return err
		}
		defer src.Close()
		bsrc := bufio.NewReaderSize(src, 1<<20)
		if _, err := bsrc.Discard(walHeaderSize); err != nil {
			return err
		}
		var frame [walFrameSize]byte
		for i := uint64(0); i < upTo-w.first; i++ {
			if _, err := io.ReadFull(bsrc, frame[:]); err != nil {
				return err
			}
			if _, err := bsrc.Discard(int(binary.LittleEndian.Uint32(frame[:4]))); err != nil {
				return err
			}
		}
		br = bsrc
	}
	tmpPath := w.path + ".tmp"
	tmp, err := w.fs.Create(tmpPath)
	if err != nil {
		return err
	}
	hdr := walHeader(w.version, upTo)
	var copied int64
	if _, err = tmp.Write(hdr[:]); err == nil {
		copied, err = io.Copy(tmp, br)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		w.fs.Remove(tmpPath)
		return err
	}
	if err := w.fs.Rename(tmpPath, w.path); err != nil {
		w.fs.Remove(tmpPath)
		return err
	}
	// The rename must be durable before the dropped records are forgotten:
	// an unsynced rename can un-happen at power loss, rebooting into the
	// pre-checkpoint log — harmless — or, worse, into a directory state
	// with neither name if the metadata journal split the operation.
	if err := w.fs.SyncDir(filepath.Dir(w.path)); err != nil {
		w.failed = err
		return err
	}
	f, err := w.fs.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		// The rewritten log is valid on disk but we lost our handle; latch
		// so nothing is acknowledged against a file we cannot append to.
		w.failed = err
		return err
	}
	newSize := int64(walHeaderSize) + copied
	if _, err := f.Seek(newSize, io.SeekStart); err != nil {
		f.Close()
		w.failed = err
		return err
	}
	w.f.Close()
	w.f = f
	w.count -= upTo - w.first
	w.first = upTo
	w.size = newSize
	return nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// int64FromF64 / f64FromInt64 move float bit patterns exactly (raw
// coordinates round-trip bit-for-bit through the log).
func int64FromF64(v float64) int64 { return int64(math.Float64bits(v)) }
func f64FromInt64(v int64) float64 { return math.Float64frombits(uint64(v)) }
