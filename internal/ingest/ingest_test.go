package ingest

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/mapmatch"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/store"
	"utcq/internal/traj"
)

// testIndexOpts keeps index builds fast on the small generated networks.
var testIndexOpts = stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}

// matchAll mirrors the ingester's pipeline deterministically: the oracle's
// trajectory set is every raw the matcher accepts, in submission order.
func matchAll(m *mapmatch.Matcher, raws []traj.RawTrajectory) []*traj.Uncertain {
	var out []*traj.Uncertain
	for _, raw := range raws {
		if u, err := m.Match(raw); err == nil {
			out = append(out, u)
		}
	}
	return out
}

// oracleEngine compresses and indexes tus from scratch — the reference
// every store generation must match exactly.
func oracleEngine(t *testing.T, g *roadnet.Graph, ts int64, tus []*traj.Uncertain) *query.Engine {
	t.Helper()
	c, err := core.NewCompressor(g, core.DefaultOptions(ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(tus)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := stiu.Build(a, testIndexOpts)
	if err != nil {
		t.Fatal(err)
	}
	return query.NewEngine(a, ix)
}

// checkOracle drives identical where/when/range workloads through the
// store and the oracle engine and requires exactly equal results.
func checkOracle(t *testing.T, g *roadnet.Graph, ts int64, tus []*traj.Uncertain, s *store.Store, rng *rand.Rand) {
	t.Helper()
	if got, want := s.NumTrajectories(), len(tus); got != want {
		t.Fatalf("generation %d: store holds %d trajectories, oracle %d", s.Generation(), got, want)
	}
	eng := oracleEngine(t, g, ts, tus)
	alphas := []float64{0, 0.15, 0.3}
	b := g.Bounds()
	for trial := 0; trial < 15; trial++ {
		j := rng.Intn(len(tus))
		T := tus[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		alpha := alphas[rng.Intn(len(alphas))]

		want, err := eng.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("generation %d: where(%d, %d, %g): store %v != oracle %v", s.Generation(), j, tq, alpha, got, want)
		}

		if len(want) > 0 {
			loc := want[rng.Intn(len(want))].Loc
			wantW, err := eng.When(j, loc, alpha)
			if err != nil {
				t.Fatal(err)
			}
			gotW, err := s.When(j, loc, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotW, wantW) {
				t.Fatalf("generation %d: when(%d, %v, %g) mismatch", s.Generation(), j, loc, alpha)
			}
		}

		w, h := b.MaxX-b.MinX, b.MaxY-b.MinY
		fw, fh := 0.05+rng.Float64()*0.4, 0.05+rng.Float64()*0.4
		re := roadnet.Rect{MinX: b.MinX + rng.Float64()*(1-fw)*w, MinY: b.MinY + rng.Float64()*(1-fh)*h}
		re.MaxX, re.MaxY = re.MinX+fw*w, re.MinY+fh*h
		wantR, err := eng.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := s.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if (len(wantR) != 0 || len(gotR) != 0) && !reflect.DeepEqual(gotR, wantR) {
			t.Fatalf("generation %d: range(%v, %d, %g): store %v != oracle %v", s.Generation(), re, tq, alpha, gotR, wantR)
		}
	}
}

// TestIngestCompactQueryMatchesOracle is the live-ingestion acceptance
// property: on every dataset profile, an arbitrary interleaving of ingest
// batches, compactions and queries answers — at every manifest
// generation — exactly like a single-archive engine freshly built over
// the same trajectory set (the raws accepted by the same deterministic
// matcher, in acknowledgement order).
func TestIngestCompactQueryMatchesOracle(t *testing.T) {
	for _, p := range []gen.Profile{gen.DK(), gen.CD(), gen.HZ()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p.Network.Cols, p.Network.Rows = 24, 24
			g, eix, raws, err := gen.Raws(p, 30, 17)
			if err != nil {
				t.Fatal(err)
			}
			matcher := mapmatch.New(g, eix, p.Match)
			oracle := matchAll(matcher, raws[:6])
			opts := store.DefaultOptions(p.Ts)
			opts.NumShards = 2
			opts.Index = testIndexOpts
			st, err := store.Build(g, oracle, opts)
			if err != nil {
				t.Fatal(err)
			}
			ing, err := New(st, eix, filepath.Join(t.TempDir(), "ingest.wal"), Options{
				BatchSize:    4,
				Match:        p.Match,
				Parallelism:  2,
				CompactEvery: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ing.Close()

			rng := rand.New(rand.NewSource(p.Ts))
			next := 6
			for next < len(raws) {
				k := 1 + rng.Intn(6)
				end := min(next+k, len(raws))
				for _, raw := range raws[next:end] {
					if _, err := ing.Submit(raw); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := ing.Flush(); err != nil {
					t.Fatal(err)
				}
				oracle = append(oracle, matchAll(matcher, raws[next:end])...)
				next = end
				if rng.Intn(3) == 0 {
					if _, err := ing.Compact(); err != nil {
						t.Fatal(err)
					}
				}
				checkOracle(t, g, p.Ts, oracle, st, rng)
			}

			st1 := ing.Stats()
			if st1.Acked != uint64(len(raws)-6) || st1.Pending != 0 || st1.Applied != st1.Acked {
				t.Fatalf("final ingest stats: %+v", st1)
			}
			if int(st1.Matched)+int(st1.Dropped) != len(raws)-6 {
				t.Fatalf("matched %d + dropped %d != %d submitted", st1.Matched, st1.Dropped, len(raws)-6)
			}
		})
	}
}

// TestIngestCrashRecovery simulates the full crash story: acknowledged
// records that were never applied survive in the WAL (plus a torn tail
// from the append in flight), a fresh process replays them into the
// reopened store, and the result matches the oracle over everything ever
// acknowledged.
func TestIngestCrashRecovery(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, 16, 23)
	if err != nil {
		t.Fatal(err)
	}
	matcher := mapmatch.New(g, eix, p.Match)
	base := matchAll(matcher, raws[:4])

	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 2
	opts.Index = testIndexOpts
	st, err := store.Build(g, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	storeDir := t.TempDir()
	if err := st.Save(storeDir); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	ing, err := New(st, eix, walPath, Options{BatchSize: 3, Match: p.Match})
	if err != nil {
		t.Fatal(err)
	}
	// Applied half...
	for _, raw := range raws[4:10] {
		if _, err := ing.Submit(raw); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	// ...acknowledged-but-unapplied half: synced to the WAL, then the
	// process "crashes" (no Close, no Flush).
	for _, raw := range raws[10:16] {
		if _, err := ing.Submit(raw); err != nil {
			t.Fatal(err)
		}
	}
	// The crash interrupts an append mid-frame: a torn tail.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2c, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A fresh process: reopen the store from disk and re-attach the WAL.
	st2, err := store.Open(storeDir, g, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.WALApplied() != 6 {
		t.Fatalf("reopened store applied %d WAL records, want 6", st2.WALApplied())
	}
	ing2, err := New(st2, eix, walPath, Options{BatchSize: 3, Match: p.Match})
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	if got := ing2.Pending(); got != 6 {
		t.Fatalf("recovery queued %d records, want 6 (acknowledged but unapplied)", got)
	}
	if _, err := ing2.Flush(); err != nil {
		t.Fatal(err)
	}

	oracle := append(append([]*traj.Uncertain(nil), base...), matchAll(matcher, raws[4:16])...)
	rng := rand.New(rand.NewSource(99))
	checkOracle(t, g, p.Ts, oracle, st2, rng)

	// And the recovered store compacts cleanly; compaction against a
	// durable store checkpoints the WAL down to its header (everything is
	// applied), while the acknowledged-record count survives.
	if _, err := ing2.Compact(); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, g, p.Ts, oracle, st2, rng)
	is := ing2.Stats()
	if is.WALBytes != walHeaderSize {
		t.Fatalf("WAL not checkpointed after compaction: %d bytes, want %d", is.WALBytes, walHeaderSize)
	}
	if is.Acked != 12 || is.Applied != 12 {
		t.Fatalf("sequence accounting lost by checkpoint: %+v", is)
	}
}

// TestIngesterBackgroundDrain exercises Start/Close: submissions drain
// without explicit Flush calls.
func TestIngesterBackgroundDrain(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	g, eix, raws, err := gen.Raws(p, 10, 31)
	if err != nil {
		t.Fatal(err)
	}
	matcher := mapmatch.New(g, eix, p.Match)
	base := matchAll(matcher, raws[:2])
	opts := store.DefaultOptions(p.Ts)
	opts.NumShards = 1
	opts.Index = testIndexOpts
	st, err := store.Build(g, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := New(st, eix, filepath.Join(t.TempDir(), "ingest.wal"), Options{
		BatchSize:  2, // full batches wake the worker immediately
		FlushEvery: 50 * time.Millisecond,
		Match:      p.Match,
	})
	if err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, raw := range raws[2:] {
		if _, err := ing.Submit(raw); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for ing.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := ing.Pending(); got != 0 {
		t.Fatalf("background worker left %d records pending", got)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	oracle := append(base, matchAll(matcher, raws[2:])...)
	checkOracle(t, g, p.Ts, oracle, st, rand.New(rand.NewSource(7)))
}
