package ingest

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"utcq/internal/traj"
)

// walImage frames payloads into a syntactically valid WAL for seeding.
func walImage(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	hdr := walHeader(walVersion, 0)
	buf.Write(hdr[:])
	var frame [walFrameSize]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(p))
		buf.Write(frame[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// recordsEqual compares replayed records bit-exactly: float fields go
// through Float64bits so a fuzzer-crafted NaN payload still compares
// equal to its own re-decode (== on NaN is always false).
func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Eps) != math.Float64bits(b[i].Eps) ||
			len(a[i].Raw.Points) != len(b[i].Raw.Points) {
			return false
		}
		for k, p := range a[i].Raw.Points {
			q := b[i].Raw.Points[k]
			if math.Float64bits(p.X) != math.Float64bits(q.X) ||
				math.Float64bits(p.Y) != math.Float64bits(q.Y) || p.T != q.T {
				return false
			}
		}
	}
	return true
}

// FuzzWALReplay feeds arbitrary bytes through WAL recovery.  Whatever the
// input, replay must not panic, must return a prefix that re-decodes to
// the same records (recovery is idempotent), and after OpenWAL truncates
// the torn tail the log must accept appends and replay them.  Version-1
// and version-2 images are both seeded; replay must accept either layout.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UTCW"))
	f.Add(walImage())
	p1 := encodeRecord(Record{Raw: randomRawForFuzz(3), Eps: 12.5}, walVersion)
	p2 := encodeRecord(Record{Raw: randomRawForFuzz(7)}, walVersion)
	valid := walImage(p1, p2)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn tail
	f.Add(append(valid, 0xde, 0xad, 0xbe)) // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x40
	f.Add(corrupt)
	huge := walImage(nil)
	binary.LittleEndian.PutUint32(huge[walHeaderSize:], 1<<30) // absurd length field
	f.Add(huge)
	f.Add(walImageV1(Record{Raw: randomRawForFuzz(4)}, Record{Raw: randomRawForFuzz(2)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		first, recs, good, err := DecodeWAL(data)
		if err != nil {
			return // not a WAL at all; nothing to recover
		}
		if good < walHeaderSize || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [%d, %d]", good, walHeaderSize, len(data))
		}
		// Idempotence: decoding the valid prefix reproduces the records.
		first2, recs2, good2, err := DecodeWAL(data[:good])
		if err != nil || first2 != first || good2 != good || !recordsEqual(recs2, recs) {
			t.Fatalf("re-decode of valid prefix diverged: %d vs %d records, offset %d vs %d, %v",
				len(recs2), len(recs), good2, good, err)
		}
		// OpenWAL on the same image recovers the same records and leaves an
		// appendable log.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs3, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("OpenWAL rejected an image DecodeWAL accepted: %v", err)
		}
		if !recordsEqual(recs3, recs) {
			t.Fatalf("OpenWAL recovered %d records, DecodeWAL %d", len(recs3), len(recs))
		}
		extra := randomRawForFuzz(2)
		if _, err := w.Append(extra, 3.25); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, recs4, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		w2.Close()
		wantEps := 3.25
		if w2.Version() == walVersionV1 {
			wantEps = 0 // the v1 layout has no field for the budget
		}
		if len(recs4) != len(recs)+1 || !recordsEqual(recs4[len(recs):], []Record{{Raw: extra, Eps: wantEps}}) {
			t.Fatalf("append after recovery not replayed (%d vs %d records)", len(recs4), len(recs)+1)
		}
	})
}

// randomRawForFuzz builds a small deterministic raw trajectory.
func randomRawForFuzz(n int) traj.RawTrajectory {
	raw := traj.RawTrajectory{Points: make([]traj.RawPoint, n)}
	for i := range raw.Points {
		raw.Points[i] = traj.RawPoint{X: float64(i) * 13.5, Y: float64(i) * -7.25, T: int64(10 * (i + 1))}
	}
	return raw
}
