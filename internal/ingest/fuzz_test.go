package ingest

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"utcq/internal/traj"
)

// walImage frames payloads into a syntactically valid WAL for seeding.
func walImage(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	hdr := walHeader(0)
	buf.Write(hdr[:])
	var frame [walFrameSize]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(p))
		buf.Write(frame[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzWALReplay feeds arbitrary bytes through WAL recovery.  Whatever the
// input, replay must not panic, must return a prefix that re-decodes to
// the same records (recovery is idempotent), and after OpenWAL truncates
// the torn tail the log must accept appends and replay them.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UTCW"))
	f.Add(walImage())
	p1 := encodeRawTrajectory(randomRawForFuzz(3))
	p2 := encodeRawTrajectory(randomRawForFuzz(7))
	valid := walImage(p1, p2)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn tail
	f.Add(append(valid, 0xde, 0xad, 0xbe)) // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x40
	f.Add(corrupt)
	huge := walImage(nil)
	binary.LittleEndian.PutUint32(huge[walHeaderSize:], 1<<30) // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		first, raws, good, err := DecodeWAL(data)
		if err != nil {
			return // not a WAL at all; nothing to recover
		}
		if good < walHeaderSize || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [%d, %d]", good, walHeaderSize, len(data))
		}
		// Idempotence: decoding the valid prefix reproduces the records.
		first2, raws2, good2, err := DecodeWAL(data[:good])
		if err != nil || first2 != first || good2 != good || !reflect.DeepEqual(raws2, raws) {
			t.Fatalf("re-decode of valid prefix diverged: %d vs %d records, offset %d vs %d, %v",
				len(raws2), len(raws), good2, good, err)
		}
		// OpenWAL on the same image recovers the same records and leaves an
		// appendable log.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, raws3, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("OpenWAL rejected an image DecodeWAL accepted: %v", err)
		}
		if !reflect.DeepEqual(raws3, raws) {
			t.Fatalf("OpenWAL recovered %d records, DecodeWAL %d", len(raws3), len(raws))
		}
		extra := randomRawForFuzz(2)
		if _, err := w.Append(extra); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, raws4, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		w2.Close()
		if len(raws4) != len(raws)+1 || !reflect.DeepEqual(raws4[len(raws)], extra) {
			t.Fatalf("append after recovery not replayed (%d vs %d records)", len(raws4), len(raws)+1)
		}
	})
}

// randomRawForFuzz builds a small deterministic raw trajectory.
func randomRawForFuzz(n int) traj.RawTrajectory {
	raw := traj.RawTrajectory{Points: make([]traj.RawPoint, n)}
	for i := range raw.Points {
		raw.Points[i] = traj.RawPoint{X: float64(i) * 13.5, Y: float64(i) * -7.25, T: int64(10 * (i + 1))}
	}
	return raw
}
