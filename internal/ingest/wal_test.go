package ingest

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"utcq/internal/traj"
)

// randomRaw builds one raw trajectory with exact-representable randomness.
func randomRaw(rng *rand.Rand) traj.RawTrajectory {
	n := 2 + rng.Intn(20)
	raw := traj.RawTrajectory{Points: make([]traj.RawPoint, n)}
	t := int64(rng.Intn(10000))
	for i := range raw.Points {
		raw.Points[i] = traj.RawPoint{X: rng.NormFloat64() * 1e3, Y: rng.NormFloat64() * 1e3, T: t}
		t += 1 + int64(rng.Intn(60))
	}
	return raw
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, raws, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != 0 || w.Count() != 0 {
		t.Fatalf("fresh WAL has %d records", len(raws))
	}
	rng := rand.New(rand.NewSource(1))
	var want []traj.RawTrajectory
	for i := 0; i < 40; i++ {
		raw := randomRaw(rng)
		seq, err := w.Append(raw)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("record %d got sequence %d", i, seq)
		}
		want = append(want, raw)
		if i%7 == 0 {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay returned %d records, want %d (or contents differ)", len(got), len(want))
	}
	if w2.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d, want %d", w2.Count(), len(want))
	}
	// Appends resume with the next sequence number.
	seq, err := w2.Append(randomRaw(rng))
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)) {
		t.Fatalf("post-replay append got sequence %d, want %d", seq, len(want))
	}
}

// TestWALTornTailRecovery simulates a crash mid-append: for every possible
// truncation point inside the last record's frame, replay must recover
// every earlier record, drop the torn tail, and leave a log that accepts
// new appends.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var want []traj.RawTrajectory
	for i := 0; i < 5; i++ {
		raw := randomRaw(rng)
		if _, err := w.Append(raw); err != nil {
			t.Fatal(err)
		}
		want = append(want, raw)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// goodEnd = end of record 3 (the prefix that must survive).
	_, _, goodEnd, err := DecodeWAL(full)
	if err != nil || goodEnd != int64(len(full)) {
		t.Fatalf("full log does not decode cleanly: %d of %d, %v", goodEnd, len(full), err)
	}
	lastStart := int(goodEnd)
	for lastStart > walHeaderSize {
		_, raws, end, _ := DecodeWAL(full[:lastStart-1])
		if len(raws) == 4 {
			lastStart = int(end)
			break
		}
		lastStart--
	}

	for cut := lastStart; cut < len(full); cut++ {
		p := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tw, raws, err := OpenWAL(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(raws, want[:4]) {
			t.Fatalf("cut %d: recovered %d records, want 4", cut, len(raws))
		}
		// The torn tail is gone: a new append lands on a record boundary
		// and the log replays cleanly afterwards.
		extra := randomRaw(rng)
		if _, err := tw.Append(extra); err != nil {
			t.Fatal(err)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		_, raws2, err := OpenWAL(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(raws2) != 5 || !reflect.DeepEqual(raws2[4], extra) {
			t.Fatalf("cut %d: post-recovery append not replayed", cut)
		}
	}
}

// TestWALCorruptRecordDropped flips payload bytes of the tail record: the
// CRC must reject it and recovery must keep the prefix.
func TestWALCorruptRecordDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var want []traj.RawTrajectory
	for i := 0; i < 4; i++ {
		raw := randomRaw(rng)
		if _, err := w.Append(raw); err != nil {
			t.Fatal(err)
		}
		want = append(want, raw)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), full...)
	mut[len(mut)-3] ^= 0xff
	p := filepath.Join(dir, "corrupt.wal")
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	cw, raws, err := OpenWAL(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	if !reflect.DeepEqual(raws, want[:3]) {
		t.Fatalf("recovered %d records after corruption, want 3", len(raws))
	}
}

// TestWALCheckpoint covers log truncation: records below the checkpoint
// drop, sequence numbers survive, and the rewritten log replays cleanly.
func TestWALCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var want []traj.RawTrajectory
	for i := 0; i < 10; i++ {
		raw := randomRaw(rng)
		if _, err := w.Append(raw); err != nil {
			t.Fatal(err)
		}
		want = append(want, raw)
	}
	sizeBefore := w.Size()
	if err := w.Checkpoint(4); err != nil {
		t.Fatal(err)
	}
	if w.FirstSeq() != 4 || w.Count() != 10 {
		t.Fatalf("after checkpoint: first %d count %d, want 4 and 10", w.FirstSeq(), w.Count())
	}
	if w.Size() >= sizeBefore {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", sizeBefore, w.Size())
	}
	// No-op and out-of-range checkpoints.
	if err := w.Checkpoint(2); err != nil {
		t.Fatalf("no-op checkpoint errored: %v", err)
	}
	if err := w.Checkpoint(11); err == nil {
		t.Fatal("checkpoint beyond the last acknowledged record succeeded")
	}
	// Appends continue with preserved numbering.
	extra := randomRaw(rng)
	seq, err := w.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 {
		t.Fatalf("post-checkpoint append got sequence %d, want 10", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, raws, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.FirstSeq() != 4 || w2.Count() != 11 {
		t.Fatalf("reopened: first %d count %d, want 4 and 11", w2.FirstSeq(), w2.Count())
	}
	want = append(want[4:], extra)
	if !reflect.DeepEqual(raws, want) {
		t.Fatalf("reopened log replays %d records, want %d (suffix + new append)", len(raws), len(want))
	}
	// Checkpoint everything: only the header remains.
	if err := w2.Checkpoint(11); err != nil {
		t.Fatal(err)
	}
	if w2.Size() != walHeaderSize {
		t.Fatalf("fully checkpointed log is %d bytes, want %d", w2.Size(), walHeaderSize)
	}
}

// TestWALRejectsForeignFile refuses to truncate files that are not WALs.
func TestWALRejectsForeignFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "notawal")
	if err := os.WriteFile(p, []byte("definitely not a UTCW file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(p); err == nil {
		t.Fatal("opened a non-WAL file")
	}
	data, err := os.ReadFile(p)
	if err != nil || string(data) != "definitely not a UTCW file" {
		t.Fatalf("OpenWAL modified a foreign file: %q, %v", data, err)
	}
}
