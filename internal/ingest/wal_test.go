package ingest

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"utcq/internal/traj"
)

// randomRaw builds one raw trajectory with exact-representable randomness.
func randomRaw(rng *rand.Rand) traj.RawTrajectory {
	n := 2 + rng.Intn(20)
	raw := traj.RawTrajectory{Points: make([]traj.RawPoint, n)}
	t := int64(rng.Intn(10000))
	for i := range raw.Points {
		raw.Points[i] = traj.RawPoint{X: rng.NormFloat64() * 1e3, Y: rng.NormFloat64() * 1e3, T: t}
		t += 1 + int64(rng.Intn(60))
	}
	return raw
}

// randomRec pairs a random raw with a varying (sometimes zero) error
// budget so the v2 eps field round-trips through every test.
func randomRec(rng *rand.Rand) Record {
	rec := Record{Raw: randomRaw(rng)}
	if rng.Intn(2) == 0 {
		rec.Eps = float64(rng.Intn(100)) / 4
	}
	return rec
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || w.Count() != 0 {
		t.Fatalf("fresh WAL has %d records", len(recs))
	}
	if w.Version() != walVersion {
		t.Fatalf("fresh WAL has version %d, want %d", w.Version(), walVersion)
	}
	rng := rand.New(rand.NewSource(1))
	var want []Record
	for i := 0; i < 40; i++ {
		rec := randomRec(rng)
		seq, err := w.Append(rec.Raw, rec.Eps)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("record %d got sequence %d", i, seq)
		}
		want = append(want, rec)
		if i%7 == 0 {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay returned %d records, want %d (or contents differ)", len(got), len(want))
	}
	if w2.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d, want %d", w2.Count(), len(want))
	}
	// Appends resume with the next sequence number.
	seq, err := w2.Append(randomRaw(rng), 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)) {
		t.Fatalf("post-replay append got sequence %d, want %d", seq, len(want))
	}
}

// TestWALTornTailRecovery simulates a crash mid-append: for every possible
// truncation point inside the last record's frame, replay must recover
// every earlier record, drop the torn tail, and leave a log that accepts
// new appends.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var want []Record
	for i := 0; i < 5; i++ {
		rec := randomRec(rng)
		if _, err := w.Append(rec.Raw, rec.Eps); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// goodEnd = end of record 3 (the prefix that must survive).
	_, _, goodEnd, err := DecodeWAL(full)
	if err != nil || goodEnd != int64(len(full)) {
		t.Fatalf("full log does not decode cleanly: %d of %d, %v", goodEnd, len(full), err)
	}
	lastStart := int(goodEnd)
	for lastStart > walHeaderSize {
		_, recs, end, _ := DecodeWAL(full[:lastStart-1])
		if len(recs) == 4 {
			lastStart = int(end)
			break
		}
		lastStart--
	}

	for cut := lastStart; cut < len(full); cut++ {
		p := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tw, recs, err := OpenWAL(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(recs, want[:4]) {
			t.Fatalf("cut %d: recovered %d records, want 4", cut, len(recs))
		}
		// The torn tail is gone: a new append lands on a record boundary
		// and the log replays cleanly afterwards.
		extra := randomRec(rng)
		if _, err := tw.Append(extra.Raw, extra.Eps); err != nil {
			t.Fatal(err)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2, err := OpenWAL(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != 5 || !reflect.DeepEqual(recs2[4], extra) {
			t.Fatalf("cut %d: post-recovery append not replayed", cut)
		}
	}
}

// TestWALCorruptRecordDropped flips payload bytes of the tail record: the
// CRC must reject it and recovery must keep the prefix.
func TestWALCorruptRecordDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var want []Record
	for i := 0; i < 4; i++ {
		rec := randomRec(rng)
		if _, err := w.Append(rec.Raw, rec.Eps); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), full...)
	mut[len(mut)-3] ^= 0xff
	p := filepath.Join(dir, "corrupt.wal")
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	cw, recs, err := OpenWAL(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	if !reflect.DeepEqual(recs, want[:3]) {
		t.Fatalf("recovered %d records after corruption, want 3", len(recs))
	}
}

// TestWALCheckpoint covers log truncation: records below the checkpoint
// drop, sequence numbers survive, and the rewritten log replays cleanly.
func TestWALCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var want []Record
	for i := 0; i < 10; i++ {
		rec := randomRec(rng)
		if _, err := w.Append(rec.Raw, rec.Eps); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	sizeBefore := w.Size()
	if err := w.Checkpoint(4); err != nil {
		t.Fatal(err)
	}
	if w.FirstSeq() != 4 || w.Count() != 10 {
		t.Fatalf("after checkpoint: first %d count %d, want 4 and 10", w.FirstSeq(), w.Count())
	}
	if w.Size() >= sizeBefore {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", sizeBefore, w.Size())
	}
	// No-op and out-of-range checkpoints.
	if err := w.Checkpoint(2); err != nil {
		t.Fatalf("no-op checkpoint errored: %v", err)
	}
	if err := w.Checkpoint(11); err == nil {
		t.Fatal("checkpoint beyond the last acknowledged record succeeded")
	}
	// Appends continue with preserved numbering.
	extra := randomRec(rng)
	seq, err := w.Append(extra.Raw, extra.Eps)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 {
		t.Fatalf("post-checkpoint append got sequence %d, want 10", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.FirstSeq() != 4 || w2.Count() != 11 {
		t.Fatalf("reopened: first %d count %d, want 4 and 11", w2.FirstSeq(), w2.Count())
	}
	want = append(want[4:], extra)
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("reopened log replays %d records, want %d (suffix + new append)", len(recs), len(want))
	}
	// Checkpoint everything: only the header remains.
	if err := w2.Checkpoint(11); err != nil {
		t.Fatal(err)
	}
	if w2.Size() != walHeaderSize {
		t.Fatalf("fully checkpointed log is %d bytes, want %d", w2.Size(), walHeaderSize)
	}
}

// TestWALRejectsForeignFile refuses to truncate files that are not WALs.
func TestWALRejectsForeignFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "notawal")
	if err := os.WriteFile(p, []byte("definitely not a UTCW file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(p); err == nil {
		t.Fatal("opened a non-WAL file")
	}
	data, err := os.ReadFile(p)
	if err != nil || string(data) != "definitely not a UTCW file" {
		t.Fatalf("OpenWAL modified a foreign file: %q, %v", data, err)
	}
}

// walImageV1 frames v1 payloads (no eps field) under a version-1 header —
// the byte-for-byte footprint of a log written by a pre-eps build.
func walImageV1(recs ...Record) []byte {
	out := walHeader(walVersionV1, 0)
	img := append([]byte(nil), out[:]...)
	var frame [walFrameSize]byte
	for _, rec := range recs {
		p := encodeRecord(rec, walVersionV1)
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(p))
		img = append(img, frame[:]...)
		img = append(img, p...)
	}
	return img
}

// TestWALVersion1Compat pins backward compatibility: a version-1 log (no
// per-record error budget) replays with ε = 0 on every record, keeps
// accepting appends in its own v1 layout — no silent upgrade rewrites a
// file an older build might still roll back to — and replays them too.
func TestWALVersion1Compat(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	old := []Record{{Raw: randomRaw(rng)}, {Raw: randomRaw(rng)}, {Raw: randomRaw(rng)}}
	path := filepath.Join(t.TempDir(), "v1.wal")
	if err := os.WriteFile(path, walImageV1(old...), 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("v1 log rejected: %v", err)
	}
	if w.Version() != walVersionV1 {
		t.Fatalf("v1 log reports version %d", w.Version())
	}
	if !reflect.DeepEqual(recs, old) {
		t.Fatalf("v1 replay: %d records, want %d (all with eps 0)", len(recs), len(old))
	}
	// Appends extend the v1 file; the eps metadata has nowhere to live in
	// this layout and is documented to drop to 0 on replay.
	extra := randomRaw(rng)
	if _, err := w.Append(extra, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, recs2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Version() != walVersionV1 {
		t.Fatalf("append upgraded a v1 log to version %d", w2.Version())
	}
	if len(recs2) != 4 || !reflect.DeepEqual(recs2[3].Raw, extra) || recs2[3].Eps != 0 {
		t.Fatalf("v1 append not replayed as expected: %d records", len(recs2))
	}
}
