package ingest

// Replication hooks: the leader ships its CRC-framed WAL to followers
// over HTTP (internal/cluster), and a follower feeds the received
// records back through its own Ingester.  The leader's fsync-ack stays
// the only commit point — ShipFrom reads the durable file image, never
// the in-memory append buffer, so a record is shipped only after the
// leader could have acknowledged it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"utcq/internal/faultfs"
	"utcq/internal/traj"
)

// ErrWALTruncated marks a replication position that was checkpointed
// away on the leader (a compaction advanced the log's first sequence
// past it).  The follower cannot catch up from the log alone and must
// re-snapshot from the leader's manifest.
var ErrWALTruncated = errors.New("ingest: WAL position checkpointed away")

// ShipBatch is a contiguous run of durable WAL records starting at
// absolute sequence From, encoded for the wire in the log's own payload
// layout Version.
type ShipBatch struct {
	From    uint64
	Version uint16
	Records []Record
}

// NextSeq returns the sequence number the next appended record will
// get — a follower's pull cursor after replaying everything it has.
func (ing *Ingester) NextSeq() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.wal.Count()
}

// ShipFrom returns up to maxRecords durable records starting at
// absolute sequence from (maxRecords <= 0: no bound).  It re-reads the
// log file rather than trusting in-memory state: the file holds exactly
// the fsync-acknowledged prefix (plus at worst a torn tail, which
// decoding drops), so an appended-but-unsynced record is never shipped.
// A from before the log's first record returns ErrWALTruncated; a from
// beyond the durable end returns an empty batch at that position.
func (ing *Ingester) ShipFrom(from uint64, maxRecords int) (ShipBatch, error) {
	ing.mu.Lock()
	w := ing.wal
	if w == nil {
		ing.mu.Unlock()
		return ShipBatch{}, errors.New("ingest: WAL is closed")
	}
	fsys, path := w.fs, w.path
	ing.mu.Unlock()

	// Read outside the lock: an atomic checkpoint rename gives either
	// the old or the new image (both valid), and a concurrent append's
	// partial write is truncated away by the image decoder.
	data, err := fsys.ReadFile(path)
	if err != nil {
		return ShipBatch{}, err
	}
	version, first, recs, _, err := decodeWALImage(data)
	if err != nil {
		return ShipBatch{}, fmt.Errorf("ingest: %s: %w", path, err)
	}
	if from < first {
		return ShipBatch{}, fmt.Errorf("%w: requested %d, log starts at %d", ErrWALTruncated, from, first)
	}
	end := first + uint64(len(recs))
	if from >= end {
		return ShipBatch{From: from, Version: version}, nil
	}
	recs = recs[from-first:]
	if maxRecords > 0 && len(recs) > maxRecords {
		recs = recs[:maxRecords]
	}
	return ShipBatch{From: from, Version: version, Records: recs}, nil
}

// ReplicateBatch appends records received from the leader, starting at
// absolute sequence from, to the follower's own WAL and pending queue.
// Records the follower already has (from < its next sequence) are
// skipped — re-delivery is idempotent — while a gap (from beyond the
// next sequence) is an error, since replaying out of order would
// diverge from the leader.  The records are appended verbatim: the
// leader already simplified them at admission (rec.Eps records the
// budget), so the follower must not simplify again.  Returns the
// follower's next sequence after the append.
func (ing *Ingester) ReplicateBatch(from uint64, recs []Record) (uint64, error) {
	for i, rec := range recs {
		if err := ValidateRaw(rec.Raw); err != nil {
			return 0, fmt.Errorf("replicated record %d: %w", i, err)
		}
	}
	ing.mu.Lock()
	next := ing.wal.Count()
	if from > next {
		ing.mu.Unlock()
		return 0, fmt.Errorf("ingest: replication gap: batch starts at %d but the log ends at %d", from, next)
	}
	if skip := next - from; skip >= uint64(len(recs)) {
		ing.mu.Unlock()
		return next, nil
	} else {
		recs = recs[skip:]
	}
	var err error
	raws := make([]traj.RawTrajectory, 0, len(recs))
	for _, rec := range recs {
		if _, err = ing.wal.Append(rec.Raw, rec.Eps); err != nil {
			break
		}
		raws = append(raws, rec.Raw)
	}
	if err == nil && !ing.opts.NoSync {
		err = ing.wal.Sync()
	}
	if err == nil {
		ing.pending = append(ing.pending, raws...)
	}
	full := len(ing.pending) >= ing.opts.BatchSize
	next = ing.wal.Count()
	ing.mu.Unlock()
	if err != nil {
		return 0, err
	}
	var points int
	for _, raw := range raws {
		points += len(raw.Points)
	}
	ing.pointsIn.Add(int64(points))
	ing.pointsKept.Add(int64(points))
	if full {
		select {
		case ing.wake <- struct{}{}:
		default:
		}
	}
	return next, nil
}

// CreateWAL writes a fresh, empty log at path whose first sequence is
// firstSeq, fsynced along with its directory entry.  A follower that
// bootstrapped from a leader snapshot at walApplied=N creates its log
// with firstSeq=N so the pull cursor lines up with the leader's
// numbering.
func CreateWAL(fsys faultfs.FS, path string, firstSeq uint64) error {
	fsys = faultfs.Resolve(fsys)
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	hdr := walHeader(walVersion, firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// EncodeFrames serializes records for the replication stream in the
// WAL's own frame layout (docs/FORMAT.md §4: u32 length, u32 CRC32-IEEE
// of the payload, payload in the given version) — a follower can verify
// integrity with the same code that replays a local log.
func EncodeFrames(recs []Record, version uint16) []byte {
	var out []byte
	for _, rec := range recs {
		payload := encodeRecord(rec, version)
		var frame [walFrameSize]byte
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		out = append(out, frame[:]...)
		out = append(out, payload...)
	}
	return out
}

// DecodeFrames parses a replication stream encoded by EncodeFrames.
// Unlike WAL replay — where a torn tail is an expected crash footprint
// and is silently dropped — a short, oversized or checksum-failing
// frame here is a transport error and fails the whole batch.
func DecodeFrames(data []byte, version uint16) ([]Record, error) {
	if version != walVersionV1 && version != walVersionV2 {
		return nil, fmt.Errorf("ingest: unsupported replication stream version %d", version)
	}
	var recs []Record
	for off := 0; off < len(data); {
		rest := data[off:]
		if len(rest) < walFrameSize {
			return nil, fmt.Errorf("ingest: truncated replication frame at byte %d", off)
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxWALRecord || int(length) > len(rest)-walFrameSize {
			return nil, fmt.Errorf("ingest: oversized replication frame at byte %d", off)
		}
		payload := rest[walFrameSize : walFrameSize+int(length)]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("ingest: replication frame checksum mismatch at byte %d", off)
		}
		rec, ok := decodeRecord(payload, version)
		if !ok {
			return nil, fmt.Errorf("ingest: malformed replication record at byte %d", off)
		}
		recs = append(recs, rec)
		off += walFrameSize + int(length)
	}
	return recs, nil
}
