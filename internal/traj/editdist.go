package traj

// EditDistance computes the Levenshtein distance between two edge-number
// sequences.  The paper uses it (Fig 4b) to quantify the similarity of
// instances within an uncertain trajectory versus across trajectories.
func EditDistance(a, b []uint16) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitute
			if d := prev[j] + 1; d < m {
				m = d // delete
			}
			if d := cur[j-1] + 1; d < m {
				m = d // insert
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// RawSizeConvention documents the bit widths used when computing the size
// of uncompressed NCUTs (the numerator of every compression ratio).  The
// conventions follow Table 8 of the paper: 32-bit timestamps, 32-bit edge
// entries and start vertices, 64-bit relative distances and probabilities,
// and 1 bit per time flag.
const (
	RawTimestampBits = 32
	RawEdgeEntryBits = 32
	RawVertexBits    = 32
	RawDistanceBits  = 64
	RawProbBits      = 64
	RawTimeFlagBits  = 1
)

// ComponentBits carries per-component bit counts for size accounting.
type ComponentBits struct {
	T, E, D, TF, P int64
}

// Total sums all components.
func (c ComponentBits) Total() int64 { return c.T + c.E + c.D + c.TF + c.P }

// Add accumulates another ComponentBits.
func (c *ComponentBits) Add(o ComponentBits) {
	c.T += o.T
	c.E += o.E
	c.D += o.D
	c.TF += o.TF
	c.P += o.P
}

// RawBits returns the uncompressed size of the uncertain trajectory under
// the conventions above.
func (u *Uncertain) RawBits() ComponentBits {
	var c ComponentBits
	c.T = int64(len(u.T)) * RawTimestampBits
	for i := range u.Instances {
		ins := &u.Instances[i]
		c.E += int64(len(ins.E))*RawEdgeEntryBits + RawVertexBits
		c.D += int64(len(ins.D)) * RawDistanceBits
		c.TF += int64(len(ins.TF)) * RawTimeFlagBits
		c.P += RawProbBits
	}
	return c
}

// RawBitsAll sums RawBits over a dataset.
func RawBitsAll(tus []*Uncertain) ComponentBits {
	var c ComponentBits
	for _, u := range tus {
		c.Add(u.RawBits())
	}
	return c
}
