// Package traj defines the trajectory model of the paper: raw GPS
// trajectories, mapped locations, network-constrained trajectory instances
// in the improved TED representation (SV, E, D, T', p — Section 4.1), and
// network-constrained uncertain trajectories (Definition 5).
package traj

import (
	"errors"
	"fmt"

	"utcq/internal/roadnet"
)

// RawPoint is one time-stamped GPS fix (x, y, t).
type RawPoint struct {
	X, Y float64
	T    int64 // seconds
}

// RawTrajectory is a time-ordered series of raw points.
type RawTrajectory struct {
	Points []RawPoint
}

// MappedLocation is a network-constrained location with a timestamp
// (Definition 2).
type MappedLocation struct {
	Pos roadnet.Position
	T   int64
}

// Instance is one instance of an uncertain trajectory in the improved TED
// representation of Section 4.1:
//
//	SV — start vertex of the first traversed edge,
//	E  — outgoing edge numbers, with one extra 0 entry per additional
//	     mapped location on the same edge,
//	D  — relative distances, one per mapped location,
//	TF — the full time-flag bit-string (one bit per E entry; the
//	     compressed form drops the first and last bit, which are always 1),
//	P  — the instance probability from probabilistic map matching.
type Instance struct {
	SV roadnet.VertexID
	E  []uint16
	D  []float64
	TF []bool
	P  float64
}

// Uncertain is a network-constrained uncertain trajectory: instances that
// share one time sequence (Definition 5).
type Uncertain struct {
	T         []int64
	Instances []Instance
}

// NumPoints returns the number of mapped locations (= timestamps).
func (u *Uncertain) NumPoints() int { return len(u.T) }

// Ones counts the set bits of a time-flag bit-string.
func Ones(tf []bool) int {
	n := 0
	for _, b := range tf {
		if b {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants of an instance against the
// shared time sequence length.
func (ins *Instance) Validate(numPoints int) error {
	if len(ins.E) == 0 {
		return errors.New("traj: empty edge sequence")
	}
	if len(ins.TF) != len(ins.E) {
		return fmt.Errorf("traj: |TF|=%d but |E|=%d", len(ins.TF), len(ins.E))
	}
	if len(ins.D) != numPoints {
		return fmt.Errorf("traj: |D|=%d but %d points", len(ins.D), numPoints)
	}
	if Ones(ins.TF) != numPoints {
		return fmt.Errorf("traj: TF has %d ones but %d points", Ones(ins.TF), numPoints)
	}
	if !ins.TF[0] || !ins.TF[len(ins.TF)-1] {
		return errors.New("traj: first and last TF bits must be 1")
	}
	if ins.E[0] == 0 {
		return errors.New("traj: first E entry cannot be 0")
	}
	for i, e := range ins.E {
		if e == 0 && !ins.TF[i] {
			return fmt.Errorf("traj: zero E entry %d without a mapped location", i)
		}
	}
	for _, rd := range ins.D {
		if rd < 0 || rd >= 1 {
			return fmt.Errorf("traj: relative distance %g outside [0,1)", rd)
		}
	}
	if ins.P < 0 || ins.P > 1 {
		return fmt.Errorf("traj: probability %g outside [0,1]", ins.P)
	}
	return nil
}

// Validate checks the whole uncertain trajectory: per-instance invariants,
// distinct instances, and probabilities summing to ~1.
func (u *Uncertain) Validate() error {
	if len(u.T) < 2 {
		return errors.New("traj: need at least two timestamps")
	}
	for i := 1; i < len(u.T); i++ {
		if u.T[i] <= u.T[i-1] {
			return fmt.Errorf("traj: timestamps not strictly increasing at %d", i)
		}
	}
	if len(u.Instances) == 0 {
		return errors.New("traj: no instances")
	}
	sum := 0.0
	for i := range u.Instances {
		if err := u.Instances[i].Validate(len(u.T)); err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		sum += u.Instances[i].P
	}
	if sum < 0.99 || sum > 1.01 {
		return fmt.Errorf("traj: probabilities sum to %g", sum)
	}
	return nil
}

// NewInstance builds an Instance from a connected edge path and the mapped
// locations assigned to it.  Locations must reference path edges in path
// order (a location's edge may repeat consecutively for multiple points on
// the same edge).
func NewInstance(g *roadnet.Graph, path []roadnet.EdgeID, locs []roadnet.Position, p float64) (Instance, error) {
	if len(path) == 0 {
		return Instance{}, errors.New("traj: empty path")
	}
	if !g.IsPath(path) {
		return Instance{}, errors.New("traj: disconnected edge path")
	}
	if len(locs) == 0 {
		return Instance{}, errors.New("traj: no mapped locations")
	}
	ins := Instance{SV: g.Edge(path[0]).From, P: p}
	k := 0 // next unconsumed location
	for _, eid := range path {
		e := g.Edge(eid)
		ins.E = append(ins.E, uint16(e.OutNo))
		first := true
		for k < len(locs) && locs[k].Edge == eid {
			if !first {
				ins.E = append(ins.E, 0)
				ins.TF = append(ins.TF, true)
			} else {
				ins.TF = append(ins.TF, true)
				first = false
			}
			ins.D = append(ins.D, g.RD(locs[k]))
			k++
		}
		if first {
			ins.TF = append(ins.TF, false)
		}
	}
	if k != len(locs) {
		return Instance{}, fmt.Errorf("traj: %d locations not on the path (in order)", len(locs)-k)
	}
	if !ins.TF[0] || !ins.TF[len(ins.TF)-1] {
		return Instance{}, errors.New("traj: path extends beyond first/last mapped location")
	}
	return ins, nil
}

// NewInstanceAssigned builds an Instance when the caller knows which path
// position (occurrence) carries each location: locIdx[k] is the index into
// path of the edge occurrence carrying locs[k].  locIdx must be
// non-decreasing.  This form is loop-safe, unlike NewInstance's greedy
// assignment.
func NewInstanceAssigned(g *roadnet.Graph, path []roadnet.EdgeID, locs []roadnet.Position, locIdx []int, p float64) (Instance, error) {
	if len(path) == 0 {
		return Instance{}, errors.New("traj: empty path")
	}
	if !g.IsPath(path) {
		return Instance{}, errors.New("traj: disconnected edge path")
	}
	if len(locs) != len(locIdx) {
		return Instance{}, errors.New("traj: locs/locIdx length mismatch")
	}
	if len(locs) == 0 {
		return Instance{}, errors.New("traj: no mapped locations")
	}
	ins := Instance{SV: g.Edge(path[0]).From, P: p}
	k := 0
	for pi, eid := range path {
		e := g.Edge(eid)
		ins.E = append(ins.E, uint16(e.OutNo))
		first := true
		for k < len(locs) && locIdx[k] == pi {
			if locs[k].Edge != eid {
				return Instance{}, fmt.Errorf("traj: location %d assigned to path index %d but on edge %d != %d", k, pi, locs[k].Edge, eid)
			}
			if !first {
				ins.E = append(ins.E, 0)
				ins.TF = append(ins.TF, true)
			} else {
				ins.TF = append(ins.TF, true)
				first = false
			}
			ins.D = append(ins.D, g.RD(locs[k]))
			k++
		}
		if first {
			ins.TF = append(ins.TF, false)
		}
	}
	if k != len(locs) {
		return Instance{}, fmt.Errorf("traj: %d locations not assigned", len(locs)-k)
	}
	if !ins.TF[0] || !ins.TF[len(ins.TF)-1] {
		return Instance{}, errors.New("traj: path extends beyond first/last mapped location")
	}
	return ins, nil
}

// PathEdges decodes the instance's edge path by walking outgoing edge
// numbers from SV.
func (ins *Instance) PathEdges(g *roadnet.Graph) ([]roadnet.EdgeID, error) {
	var path []roadnet.EdgeID
	cur := ins.SV
	for i, no := range ins.E {
		if no == 0 {
			if i == 0 {
				return nil, errors.New("traj: leading zero entry")
			}
			continue
		}
		e, ok := g.OutEdge(cur, int(no))
		if !ok {
			return nil, fmt.Errorf("traj: no outgoing edge %d at vertex %d (entry %d)", no, cur, i)
		}
		path = append(path, e)
		cur = g.Edge(e).To
	}
	return path, nil
}

// Locations reconstructs the mapped locations of the instance, attaching
// the shared timestamps.
func (ins *Instance) Locations(g *roadnet.Graph, T []int64) ([]MappedLocation, error) {
	var out []MappedLocation
	var cur roadnet.EdgeID = roadnet.NoEdge
	v := ins.SV
	k := 0
	for i, no := range ins.E {
		if no != 0 {
			e, ok := g.OutEdge(v, int(no))
			if !ok {
				return nil, fmt.Errorf("traj: no outgoing edge %d at vertex %d", no, v)
			}
			cur = e
			v = g.Edge(e).To
		}
		if ins.TF[i] {
			if k >= len(ins.D) || k >= len(T) {
				return nil, errors.New("traj: more TF ones than points")
			}
			out = append(out, MappedLocation{
				Pos: g.PositionAtRD(cur, ins.D[k]),
				T:   T[k],
			})
			k++
		}
	}
	if k != len(T) {
		return nil, fmt.Errorf("traj: reconstructed %d of %d points", k, len(T))
	}
	return out, nil
}

// EqualE reports whether two instances have identical SV and E.
func EqualE(a, b *Instance) bool {
	if a.SV != b.SV || len(a.E) != len(b.E) {
		return false
	}
	for i := range a.E {
		if a.E[i] != b.E[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two instances are identical in everything except
// probability (used for de-duplication by the map matcher).
func Equal(a, b *Instance) bool {
	if !EqualE(a, b) || len(a.D) != len(b.D) || len(a.TF) != len(b.TF) {
		return false
	}
	for i := range a.D {
		if a.D[i] != b.D[i] {
			return false
		}
	}
	for i := range a.TF {
		if a.TF[i] != b.TF[i] {
			return false
		}
	}
	return true
}

// EdgeCount returns the number of edges the instance traverses (the E
// entries that are not zero-padding).
func (ins *Instance) EdgeCount() int {
	n := 0
	for _, e := range ins.E {
		if e != 0 {
			n++
		}
	}
	return n
}
