package traj

import (
	"reflect"
	"testing"

	"utcq/internal/roadnet"
)

// fig2 builds the paper's Fig 2 network and returns the graph plus the
// vertex map.  Outgoing edge numbers are arranged so that the running
// example's E sequences come out exactly as in Tables 2 and 3.
func fig2(t testing.TB) (*roadnet.Graph, map[string]roadnet.VertexID) {
	t.Helper()
	b := roadnet.NewBuilder()
	ids := make(map[string]roadnet.VertexID)
	coords := map[string][2]float64{
		"v1": {0, 0}, "v2": {800, 0}, "v3": {1600, 0}, "v4": {2400, 0},
		"v5": {3200, 0}, "v6": {4000, 0}, "v7": {5600, 0}, "v8": {6400, 0},
		"v9": {6400, -800}, "v10": {1600, 800},
	}
	for _, n := range []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10"} {
		c := coords[n]
		ids[n] = b.AddVertex(c[0], c[1])
	}
	// Outgoing edge numbers per the example:
	// v1: (v1->v2) is no 1.
	b.AddEdge(ids["v1"], ids["v2"])
	// v2: no 1 = (v2->v10) [used by Tu12 as "1"], no 2 = (v2->v3) [used as "2"].
	b.AddEdge(ids["v2"], ids["v10"])
	b.AddEdge(ids["v2"], ids["v3"])
	// v3: no 1 = (v3->v4).
	b.AddEdge(ids["v3"], ids["v4"])
	// v4: no 1 filler, no 2 = (v4->v5).
	b.AddEdge(ids["v4"], ids["v3"])
	b.AddEdge(ids["v4"], ids["v5"])
	// v5: no 1 filler, no 2 = (v5->v6).
	b.AddEdge(ids["v5"], ids["v4"])
	b.AddEdge(ids["v5"], ids["v6"])
	// v6: nos 1-3 fillers, no 4 = (v6->v7).
	b.AddEdge(ids["v6"], ids["v5"])
	b.AddEdge(ids["v6"], ids["v10"])
	b.AddEdge(ids["v6"], ids["v9"])
	b.AddEdge(ids["v6"], ids["v7"])
	// v7: no 1 = (v7->v8).
	b.AddEdge(ids["v7"], ids["v8"])
	// v8: no 1 filler, no 2 = (v8->v9).
	b.AddEdge(ids["v8"], ids["v7"])
	b.AddEdge(ids["v8"], ids["v9"])
	// v10: no 1 = (v10->v4).
	b.AddEdge(ids["v10"], ids["v4"])
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, ids
}

// paperT is the running example's shared time sequence in seconds of day.
func paperT() []int64 {
	return []int64{
		5*3600 + 3*60 + 25, 5*3600 + 7*60 + 25, 5*3600 + 11*60 + 26,
		5*3600 + 15*60 + 26, 5*3600 + 19*60 + 25, 5*3600 + 23*60 + 25,
		5*3600 + 27*60 + 25,
	}
}

// tu1 assembles the uncertain trajectory Tu1 of Table 3, instance by
// instance, from paths and mapped locations.
func tu1(t testing.TB, g *roadnet.Graph, ids map[string]roadnet.VertexID) *Uncertain {
	t.Helper()
	edge := func(a, b string) roadnet.EdgeID {
		e, ok := g.EdgeBetween(ids[a], ids[b])
		if !ok {
			t.Fatalf("edge %s->%s missing", a, b)
		}
		return e
	}
	at := func(a, b string, rd float64) roadnet.Position {
		return g.PositionAtRD(edge(a, b), rd)
	}
	path1 := []roadnet.EdgeID{
		edge("v1", "v2"), edge("v2", "v3"), edge("v3", "v4"), edge("v4", "v5"),
		edge("v5", "v6"), edge("v6", "v7"), edge("v7", "v8"),
	}
	locs1 := []roadnet.Position{
		at("v1", "v2", 0.875), at("v3", "v4", 0.25), at("v5", "v6", 0.5),
		at("v5", "v6", 0.875), at("v6", "v7", 0.5), at("v7", "v8", 0),
		at("v7", "v8", 0.875),
	}
	ins1, err := NewInstance(g, path1, locs1, 0.75)
	if err != nil {
		t.Fatal(err)
	}

	path2 := []roadnet.EdgeID{
		edge("v1", "v2"), edge("v2", "v10"), edge("v10", "v4"), edge("v4", "v5"),
		edge("v5", "v6"), edge("v6", "v7"), edge("v7", "v8"),
	}
	locs2 := []roadnet.Position{
		at("v1", "v2", 0.875), at("v2", "v10", 0.25), at("v5", "v6", 0.5),
		at("v5", "v6", 0.875), at("v6", "v7", 0.5), at("v7", "v8", 0),
		at("v7", "v8", 0.875),
	}
	ins2, err := NewInstance(g, path2, locs2, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	path3 := []roadnet.EdgeID{
		edge("v1", "v2"), edge("v2", "v3"), edge("v3", "v4"), edge("v4", "v5"),
		edge("v5", "v6"), edge("v6", "v7"), edge("v7", "v8"), edge("v8", "v9"),
	}
	locs3 := []roadnet.Position{
		at("v1", "v2", 0.875), at("v3", "v4", 0.25), at("v5", "v6", 0.5),
		at("v5", "v6", 0.875), at("v6", "v7", 0.5), at("v7", "v8", 0),
		at("v8", "v9", 0.5),
	}
	ins3, err := NewInstance(g, path3, locs3, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	u := &Uncertain{T: paperT(), Instances: []Instance{ins1, ins2, ins3}}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	return u
}

// TestTable3Representation checks that NewInstance reproduces the improved
// TED representation of Table 3 exactly.
func TestTable3Representation(t *testing.T) {
	g, ids := fig2(t)
	u := tu1(t, g, ids)

	wantE := [][]uint16{
		{1, 2, 1, 2, 2, 0, 4, 1, 0},
		{1, 1, 1, 2, 2, 0, 4, 1, 0},
		{1, 2, 1, 2, 2, 0, 4, 1, 2},
	}
	wantTF := [][]bool{
		{true, false, true, false, true, true, true, true, true},
		{true, true, false, false, true, true, true, true, true},
		{true, false, true, false, true, true, true, true, true},
	}
	wantD := [][]float64{
		{0.875, 0.25, 0.5, 0.875, 0.5, 0, 0.875},
		{0.875, 0.25, 0.5, 0.875, 0.5, 0, 0.875},
		{0.875, 0.25, 0.5, 0.875, 0.5, 0, 0.5},
	}
	for i := range u.Instances {
		ins := &u.Instances[i]
		if ins.SV != ids["v1"] {
			t.Errorf("instance %d: SV = %d, want v1", i, ins.SV)
		}
		if !reflect.DeepEqual(ins.E, wantE[i]) {
			t.Errorf("instance %d: E = %v, want %v", i, ins.E, wantE[i])
		}
		if !reflect.DeepEqual(ins.TF, wantTF[i]) {
			t.Errorf("instance %d: TF = %v, want %v", i, ins.TF, wantTF[i])
		}
		if !reflect.DeepEqual(ins.D, wantD[i]) {
			t.Errorf("instance %d: D = %v, want %v", i, ins.D, wantD[i])
		}
	}
	// Table 2 notes: full TF of Tu11 is ⟨1,0,1,0,1,1,1,1,1⟩ with the first
	// and last bits (always 1) retained in the in-memory form.
	if Ones(u.Instances[0].TF) != 7 {
		t.Errorf("Tu11 TF ones = %d, want 7", Ones(u.Instances[0].TF))
	}
}

// TestRoundTripLocations verifies Instance -> Locations reproduces the
// construction inputs.
func TestRoundTripLocations(t *testing.T) {
	g, ids := fig2(t)
	u := tu1(t, g, ids)
	for i := range u.Instances {
		ins := &u.Instances[i]
		locs, err := ins.Locations(g, u.T)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if len(locs) != len(u.T) {
			t.Fatalf("instance %d: %d locations", i, len(locs))
		}
		for k, l := range locs {
			if l.T != u.T[k] {
				t.Errorf("instance %d point %d: t = %d, want %d", i, k, l.T, u.T[k])
			}
			if got := g.RD(l.Pos); got != ins.D[k] {
				t.Errorf("instance %d point %d: rd = %g, want %g", i, k, got, ins.D[k])
			}
		}
	}
}

func TestPathEdgesRoundTrip(t *testing.T) {
	g, ids := fig2(t)
	u := tu1(t, g, ids)
	for i := range u.Instances {
		ins := &u.Instances[i]
		path, err := ins.PathEdges(g)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsPath(path) {
			t.Errorf("instance %d: decoded path disconnected", i)
		}
		if got := ins.EdgeCount(); got != len(path) {
			t.Errorf("instance %d: EdgeCount=%d, path len %d", i, got, len(path))
		}
		if g.Edge(path[0]).From != ins.SV {
			t.Errorf("instance %d: path does not start at SV", i)
		}
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	g, ids := fig2(t)
	u := tu1(t, g, ids)
	good := u.Instances[0]

	bad := good
	bad.E = append([]uint16{0}, good.E[1:]...)
	if err := bad.Validate(len(u.T)); err == nil {
		t.Error("leading zero E entry accepted")
	}

	bad = good
	bad.TF = append([]bool{}, good.TF...)
	bad.TF[0] = false
	if err := bad.Validate(len(u.T)); err == nil {
		t.Error("first TF bit 0 accepted")
	}

	bad = good
	bad.D = append([]float64{}, good.D...)
	bad.D[0] = 1.5
	if err := bad.Validate(len(u.T)); err == nil {
		t.Error("rd >= 1 accepted")
	}

	bad = good
	bad.D = good.D[:len(good.D)-1]
	if err := bad.Validate(len(u.T)); err == nil {
		t.Error("short D accepted")
	}
}

func TestNewInstanceRejectsUnorderedLocations(t *testing.T) {
	g, ids := fig2(t)
	e12, _ := g.EdgeBetween(ids["v1"], ids["v2"])
	e23, _ := g.EdgeBetween(ids["v2"], ids["v3"])
	// Locations out of path order.
	_, err := NewInstance(g, []roadnet.EdgeID{e12, e23},
		[]roadnet.Position{{Edge: e23, NDist: 1}, {Edge: e12, NDist: 1}}, 1)
	if err == nil {
		t.Error("out-of-order locations accepted")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []uint16
		want int
	}{
		{nil, nil, 0},
		{[]uint16{1, 2, 3}, []uint16{1, 2, 3}, 0},
		{[]uint16{1, 2, 3}, []uint16{1, 3}, 1},
		{[]uint16{1, 2, 1, 2, 2, 0, 4, 1, 0}, []uint16{1, 1, 1, 2, 2, 0, 4, 1, 0}, 1},
		{[]uint16{1, 2, 1, 2, 2, 0, 4, 1, 0}, []uint16{1, 2, 1, 2, 2, 0, 4, 1, 2}, 1},
		{[]uint16{}, []uint16{5, 6}, 2},
		{[]uint16{7}, []uint16{8}, 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := EditDistance(c.b, c.a); got != c.want {
			t.Errorf("EditDistance symmetric (%v, %v) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestRawBits(t *testing.T) {
	g, ids := fig2(t)
	u := tu1(t, g, ids)
	c := u.RawBits()
	if c.T != 7*32 {
		t.Errorf("T raw = %d, want %d", c.T, 7*32)
	}
	// Instances have 9, 9, 9 E entries.
	if c.E != int64(27*32+3*32) {
		t.Errorf("E raw = %d, want %d", c.E, 27*32+3*32)
	}
	if c.D != int64(21*64) {
		t.Errorf("D raw = %d", c.D)
	}
	if c.TF != 27 {
		t.Errorf("TF raw = %d", c.TF)
	}
	if c.P != 3*64 {
		t.Errorf("P raw = %d", c.P)
	}
	if c.Total() != c.T+c.E+c.D+c.TF+c.P {
		t.Error("Total mismatch")
	}
}

func TestEqualAndEqualE(t *testing.T) {
	g, ids := fig2(t)
	u := tu1(t, g, ids)
	a, b := u.Instances[0], u.Instances[0]
	if !Equal(&a, &b) {
		t.Error("identical instances not Equal")
	}
	b.P = 0.1
	if !Equal(&a, &b) {
		t.Error("Equal must ignore probability")
	}
	c := u.Instances[1]
	if EqualE(&a, &c) {
		t.Error("different E reported equal")
	}
}
