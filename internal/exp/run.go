package exp

import (
	"fmt"
	"io"
)

// Experiments lists the runnable experiment names.
var Experiments = []string{
	"table5", "table6", "fig4a", "fig4b", "table8",
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
}

// Run executes one named experiment (or "all") and prints its rows.
func Run(w io.Writer, name string, cfg Config) error {
	if name == "all" {
		for _, n := range Experiments {
			if err := Run(w, n, cfg); err != nil {
				return err
			}
			fprintf(w, "\n")
		}
		return nil
	}
	needBundles := name != "fig6" && name != "fig7"
	var bundles []*Bundle
	var err error
	if needBundles {
		bundles, err = Datasets(cfg)
		if err != nil {
			return err
		}
	}
	switch name {
	case "table5":
		Table5(w, bundles)
	case "table6":
		Table6(w, bundles)
	case "fig4a":
		Fig4a(w, bundles)
	case "fig4b":
		Fig4b(w, bundles)
	case "table8":
		Table8(w, bundles)
	case "fig6":
		_, err = Fig6(w, cfg)
	case "fig7":
		_, err = Fig7(w, cfg)
	case "fig8":
		Fig8(w, bundles)
	case "fig9":
		_, _, err = Fig9(w, bundles, cfg)
	case "fig10":
		_, err = Fig10(w, bundles, cfg)
	case "fig11":
		_, _, err = Fig11(w, bundles, cfg)
	case "fig12":
		Fig12Compression(w, bundles)
		_, err = Fig12Query(w, bundles, cfg)
	default:
		return fmt.Errorf("exp: unknown experiment %q (want one of %v or all)", name, Experiments)
	}
	return err
}
