package exp

import (
	"io"
	"math"
	"math/rand"
	"time"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/query"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/ted"
	"utcq/internal/traj"
)

// queryHarness bundles both systems' archives, indexes and engines plus
// the oracle over one dataset.
type queryHarness struct {
	bundle *Bundle
	ua     *core.Archive
	ta     *ted.Archive
	ix     *stiu.Index
	tix    *query.TEDIndex
	eng    *query.Engine
	tedEng *query.TEDEngine
	oracle *query.Oracle
}

func newQueryHarness(b *Bundle, sopts stiu.Options) (*queryHarness, error) {
	h := &queryHarness{bundle: b}
	c, err := core.NewCompressor(b.DS.Graph, b.Opts)
	if err != nil {
		return nil, err
	}
	if h.ua, err = c.Compress(b.DS.Trajectories); err != nil {
		return nil, err
	}
	if h.ix, err = stiu.Build(h.ua, sopts); err != nil {
		return nil, err
	}
	tc, err := ted.NewCompressor(b.DS.Graph, TEDOptionsFor(b.Profile, b.Opts))
	if err != nil {
		return nil, err
	}
	if h.ta, err = tc.Compress(b.DS.Trajectories); err != nil {
		return nil, err
	}
	if h.tix, err = query.BuildTEDIndex(h.ta, sopts); err != nil {
		return nil, err
	}
	h.eng = query.NewEngine(h.ua, h.ix)
	h.tedEng = query.NewTEDEngine(h.ta, h.tix)
	// Experiments charge every query its own decompression, as the paper's
	// measurements do.
	h.eng.DisableCache = true
	h.tedEng.DisableCache = true
	h.oracle = query.NewOracle(b.DS.Graph, b.DS.Trajectories)
	return h, nil
}

// Workloads -----------------------------------------------------------------

type whereQuery struct {
	j     int
	t     int64
	alpha float64
}

type whenQuery struct {
	j     int
	loc   roadnet.Position
	alpha float64
}

type rangeQuery struct {
	re    roadnet.Rect
	t     int64
	alpha float64
}

func whereWorkload(tus []*traj.Uncertain, n int, seed int64) []whereQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]whereQuery, n)
	for i := range out {
		j := rng.Intn(len(tus))
		T := tus[j].T
		out[i] = whereQuery{
			j:     j,
			t:     T[0] + rng.Int63n(T[len(T)-1]-T[0]+1),
			alpha: 0.25,
		}
	}
	return out
}

func whenWorkload(g *roadnet.Graph, tus []*traj.Uncertain, n int, seed int64) []whenQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]whenQuery, n)
	for i := range out {
		j := rng.Intn(len(tus))
		u := tus[j]
		ins := &u.Instances[rng.Intn(len(u.Instances))]
		path, err := ins.PathEdges(g)
		if err != nil || len(path) == 0 {
			i--
			continue
		}
		out[i] = whenQuery{
			j:     j,
			loc:   g.PositionAtRD(path[rng.Intn(len(path))], rng.Float64()),
			alpha: 0.25,
		}
	}
	return out
}

func rangeWorkload(g *roadnet.Graph, tus []*traj.Uncertain, n int, seed int64) []rangeQuery {
	rng := rand.New(rand.NewSource(seed))
	bounds := g.Bounds()
	out := make([]rangeQuery, n)
	for i := range out {
		j := rng.Intn(len(tus))
		T := tus[j].T
		w := (bounds.MaxX - bounds.MinX) * 0.08
		h := (bounds.MaxY - bounds.MinY) * 0.08
		// Center the rectangle near a live trajectory's area half the time
		// so queries exercise both hits and prunes.
		var cx, cy float64
		if rng.Intn(2) == 0 {
			ins := &tus[j].Instances[0]
			path, err := ins.PathEdges(g)
			if err == nil && len(path) > 0 {
				e := g.Edge(path[len(path)/2])
				v := g.Vertex(e.From)
				cx, cy = v.X, v.Y
			}
		} else {
			cx = bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX)
			cy = bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY)
		}
		out[i] = rangeQuery{
			re:    roadnet.Rect{MinX: cx - w/2, MinY: cy - h/2, MaxX: cx + w/2, MaxY: cy + h/2},
			t:     T[0] + rng.Int63n(T[len(T)-1]-T[0]+1),
			alpha: 0.5,
		}
	}
	return out
}

// Fig 9 ----------------------------------------------------------------------

// Fig9Point is one granularity setting's index sizes and range-query time.
type Fig9Point struct {
	X        int // grid side or partition minutes
	UTSizeMB float64
	USSizeMB float64
	TSizeMB  float64
	UTime    time.Duration // total over the workload
	TTime    time.Duration
}

// Fig9 sweeps the spatial and temporal partition granularity and measures
// index sizes and range-query time for UTCQ and TED.
func Fig9(w io.Writer, bundles []*Bundle, cfg Config) (grid map[string][]Fig9Point, dur map[string][]Fig9Point, err error) {
	grid = make(map[string][]Fig9Point)
	dur = make(map[string][]Fig9Point)
	fprintf(w, "Fig 9: Effect of partition granularity on probabilistic range queries\n")
	for _, b := range bundles {
		queries := rangeWorkload(b.DS.Graph, b.DS.Trajectories, 120, cfg.Seed+9)
		for _, side := range []int{8, 16, 32, 64, 128} {
			pt, err := fig9Point(b, stiu.Options{GridNX: side, GridNY: side, IntervalDur: 1800}, queries, side)
			if err != nil {
				return nil, nil, err
			}
			grid[b.Profile.Name] = append(grid[b.Profile.Name], pt)
			fprintf(w, "%-4s grid=%3dx%-3d  UTCQ s-size=%6.2fMB t-size=%6.2fMB time=%9s | TED size=%6.2fMB time=%9s\n",
				b.Profile.Name, side, side, pt.USSizeMB, pt.UTSizeMB, pt.UTime.Round(10*time.Microsecond),
				pt.TSizeMB, pt.TTime.Round(10*time.Microsecond))
		}
		for _, mins := range []int{10, 20, 30, 40, 50, 60} {
			pt, err := fig9Point(b, stiu.Options{GridNX: 64, GridNY: 64, IntervalDur: int64(mins) * 60}, queries, mins)
			if err != nil {
				return nil, nil, err
			}
			dur[b.Profile.Name] = append(dur[b.Profile.Name], pt)
			fprintf(w, "%-4s partition=%2dmin  UTCQ t-size=%6.2fMB time=%9s | TED time=%9s\n",
				b.Profile.Name, mins, pt.UTSizeMB, pt.UTime.Round(10*time.Microsecond), pt.TTime.Round(10*time.Microsecond))
		}
	}
	return grid, dur, nil
}

func fig9Point(b *Bundle, sopts stiu.Options, queries []rangeQuery, x int) (Fig9Point, error) {
	h, err := newQueryHarness(b, sopts)
	if err != nil {
		return Fig9Point{}, err
	}
	pt := Fig9Point{
		X:        x,
		UTSizeMB: mb(h.ix.TemporalSizeBits()),
		USSizeMB: mb(h.ix.SpatialSizeBits(h.ua.VertexBits)),
		TSizeMB:  mb(h.tix.SizeBits(h.ta.VertexBits)),
	}
	start := time.Now()
	for _, q := range queries {
		if _, err := h.eng.Range(q.re, q.t, q.alpha); err != nil {
			return pt, err
		}
	}
	pt.UTime = time.Since(start)
	start = time.Now()
	for _, q := range queries {
		if _, err := h.tedEng.Range(q.re, q.t, q.alpha); err != nil {
			return pt, err
		}
	}
	pt.TTime = time.Since(start)
	return pt, nil
}

// Fig 10 ---------------------------------------------------------------------

// Fig10Row is one dataset's where/when workload times.
type Fig10Row struct {
	Name           string
	UWhere, TWhere time.Duration
	UWhen, TWhen   time.Duration
}

// Fig10 measures probabilistic where and when query time, UTCQ vs TED.
func Fig10(w io.Writer, bundles []*Bundle, cfg Config) ([]Fig10Row, error) {
	fprintf(w, "Fig 10: Probabilistic where/when query performance (workload totals)\n")
	var rows []Fig10Row
	for _, b := range bundles {
		h, err := newQueryHarness(b, stiu.DefaultOptions())
		if err != nil {
			return nil, err
		}
		wheres := whereWorkload(b.DS.Trajectories, 400, cfg.Seed+10)
		whens := whenWorkload(b.DS.Graph, b.DS.Trajectories, 400, cfg.Seed+11)
		row := Fig10Row{Name: b.Profile.Name}

		start := time.Now()
		for _, q := range wheres {
			if _, err := h.eng.Where(q.j, q.t, q.alpha); err != nil {
				return nil, err
			}
		}
		row.UWhere = time.Since(start)
		start = time.Now()
		for _, q := range wheres {
			if _, err := h.tedEng.Where(q.j, q.t, q.alpha); err != nil {
				return nil, err
			}
		}
		row.TWhere = time.Since(start)

		start = time.Now()
		for _, q := range whens {
			if _, err := h.eng.When(q.j, q.loc, q.alpha); err != nil {
				return nil, err
			}
		}
		row.UWhen = time.Since(start)
		start = time.Now()
		for _, q := range whens {
			if _, err := h.tedEng.When(q.j, q.loc, q.alpha); err != nil {
				return nil, err
			}
		}
		row.TWhen = time.Since(start)

		rows = append(rows, row)
		fprintf(w, "%-4s where: UTCQ=%9s TED=%9s | when: UTCQ=%9s TED=%9s\n",
			row.Name, row.UWhere.Round(10*time.Microsecond), row.TWhere.Round(10*time.Microsecond),
			row.UWhen.Round(10*time.Microsecond), row.TWhen.Round(10*time.Microsecond))
	}
	return rows, nil
}

// Fig 11 ---------------------------------------------------------------------

// Fig11Point is one error-bound accuracy measurement.
type Fig11Point struct {
	Eta       float64
	WhereDiff float64 // meters
	WhenDiff  float64 // seconds
	WhereF1   float64
	WhenF1    float64
}

// Fig11 sweeps the error bounds: ηD drives the average difference of
// where/when results; ηp drives the F1 score of result membership.
func Fig11(w io.Writer, bundles []*Bundle, cfg Config) (dSweep, pSweep map[string][]Fig11Point, err error) {
	dSweep = make(map[string][]Fig11Point)
	pSweep = make(map[string][]Fig11Point)
	fprintf(w, "Fig 11: Effect of error bounds on query accuracy\n")
	for _, b := range bundles {
		if b.Profile.Name == "DK" {
			continue // the paper reports CD and HZ
		}
		wheres := whereWorkload(b.DS.Trajectories, 250, cfg.Seed+12)
		whens := whenWorkload(b.DS.Graph, b.DS.Trajectories, 250, cfg.Seed+13)
		for _, etaD := range []float64{1.0 / 128, 1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8} {
			opts := b.Opts
			opts.EtaD = etaD
			pt, err := fig11Point(b, opts, wheres, whens)
			if err != nil {
				return nil, nil, err
			}
			pt.Eta = etaD
			dSweep[b.Profile.Name] = append(dSweep[b.Profile.Name], pt)
			fprintf(w, "%-4s etaD=1/%-5.0f where diff=%6.2fm  when diff=%6.2fs\n",
				b.Profile.Name, 1/etaD, pt.WhereDiff, pt.WhenDiff)
		}
		for _, etaP := range []float64{1.0 / 2048, 1.0 / 1024, 1.0 / 512, 1.0 / 256, 1.0 / 128} {
			opts := b.Opts
			opts.EtaP = etaP
			pt, err := fig11Point(b, opts, wheres, whens)
			if err != nil {
				return nil, nil, err
			}
			pt.Eta = etaP
			pSweep[b.Profile.Name] = append(pSweep[b.Profile.Name], pt)
			fprintf(w, "%-4s etaP=1/%-5.0f where F1=%6.4f  when F1=%6.4f\n",
				b.Profile.Name, 1/etaP, pt.WhereF1, pt.WhenF1)
		}
	}
	return dSweep, pSweep, nil
}

func fig11Point(b *Bundle, opts core.Options, wheres []whereQuery, whens []whenQuery) (Fig11Point, error) {
	var pt Fig11Point
	c, err := core.NewCompressor(b.DS.Graph, opts)
	if err != nil {
		return pt, err
	}
	ua, err := c.Compress(b.DS.Trajectories)
	if err != nil {
		return pt, err
	}
	ix, err := stiu.Build(ua, stiu.DefaultOptions())
	if err != nil {
		return pt, err
	}
	eng := query.NewEngine(ua, ix)
	oracle := query.NewOracle(b.DS.Graph, b.DS.Trajectories)
	g := b.DS.Graph

	var whereDiff float64
	whereMatched := 0
	var tp, fp, fn int
	for _, q := range wheres {
		got, err := eng.Where(q.j, q.t, q.alpha)
		if err != nil {
			return pt, err
		}
		want, err := oracle.Where(q.j, q.t, q.alpha)
		if err != nil {
			return pt, err
		}
		gotBy := map[int]query.WhereResult{}
		for _, r := range got {
			gotBy[r.Inst] = r
		}
		for _, o := range want {
			if r, ok := gotBy[o.Inst]; ok {
				tp++
				gx, gy := g.Coords(r.Loc)
				ox, oy := g.Coords(o.Loc)
				whereDiff += math.Hypot(gx-ox, gy-oy)
				whereMatched++
				delete(gotBy, o.Inst)
			} else {
				fn++
			}
		}
		fp += len(gotBy)
	}
	if whereMatched > 0 {
		pt.WhereDiff = whereDiff / float64(whereMatched)
	}
	pt.WhereF1 = f1(tp, fp, fn)

	var whenDiff float64
	whenMatched := 0
	tp, fp, fn = 0, 0, 0
	for _, q := range whens {
		got, err := eng.When(q.j, q.loc, q.alpha)
		if err != nil {
			return pt, err
		}
		want, err := oracle.When(q.j, q.loc, q.alpha)
		if err != nil {
			return pt, err
		}
		gotBy := map[int][]query.WhenResult{}
		for _, r := range got {
			gotBy[r.Inst] = append(gotBy[r.Inst], r)
		}
		for _, o := range want {
			rs := gotBy[o.Inst]
			if len(rs) > 0 {
				tp++
				whenDiff += math.Abs(float64(rs[0].T - o.T))
				whenMatched++
				gotBy[o.Inst] = rs[1:]
			} else {
				fn++
			}
		}
		for _, rs := range gotBy {
			fp += len(rs)
		}
	}
	if whenMatched > 0 {
		pt.WhenDiff = whenDiff / float64(whenMatched)
	}
	pt.WhenF1 = f1(tp, fp, fn)
	return pt, nil
}

func f1(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	return 2 * precision * recall / (precision + recall)
}

// Fig 12 (query side) ---------------------------------------------------------

// Fig12QueryPoint is one data-size query-time measurement.
type Fig12QueryPoint struct {
	X     float64
	UTime time.Duration
	TTime time.Duration
}

// Fig12Query varies data size and measures range-query time.
func Fig12Query(w io.Writer, bundles []*Bundle, cfg Config) (map[string][]Fig12QueryPoint, error) {
	fprintf(w, "Fig 12c/d: Scalability of query processing (data size 20%%..100%%)\n")
	out := make(map[string][]Fig12QueryPoint)
	for _, b := range bundles {
		if b.Profile.Name == "DK" {
			continue
		}
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			n := int(float64(len(b.DS.Trajectories)) * frac)
			if n < 2 {
				n = 2
			}
			sub := &Bundle{Profile: b.Profile, Opts: b.Opts, DS: &gen.Dataset{
				Profile: b.DS.Profile, Graph: b.DS.Graph, EdgeIndex: b.DS.EdgeIndex,
				Trajectories: b.DS.Trajectories[:n],
			}}
			h, err := newQueryHarness(sub, stiu.DefaultOptions())
			if err != nil {
				return nil, err
			}
			queries := rangeWorkload(b.DS.Graph, sub.DS.Trajectories, 120, cfg.Seed+14)
			pt := Fig12QueryPoint{X: frac * 100}
			start := time.Now()
			for _, q := range queries {
				if _, err := h.eng.Range(q.re, q.t, q.alpha); err != nil {
					return nil, err
				}
			}
			pt.UTime = time.Since(start)
			start = time.Now()
			for _, q := range queries {
				if _, err := h.tedEng.Range(q.re, q.t, q.alpha); err != nil {
					return nil, err
				}
			}
			pt.TTime = time.Since(start)
			out[b.Profile.Name] = append(out[b.Profile.Name], pt)
			fprintf(w, "%-4s datasize=%3.0f%%  UTCQ=%9s  TED=%9s\n",
				b.Profile.Name, pt.X, pt.UTime.Round(10*time.Microsecond), pt.TTime.Round(10*time.Microsecond))
		}
	}
	return out, nil
}
