package exp

import "io"

// Table5Row is one dataset-statistics row.
type Table5Row struct {
	Name      string
	StorageMB float64
	NumTrajs  int
	InstAvg   float64
	InstMin   int
	InstMax   int
	EdgesAvg  float64
	EdgesMin  int
	EdgesMax  int
	Ts        int64
}

// Table5 regenerates the trajectory dataset statistics.
func Table5(w io.Writer, bundles []*Bundle) []Table5Row {
	fprintf(w, "Table 5: Trajectory datasets\n")
	fprintf(w, "%-8s %10s %8s %22s %22s %8s\n", "Dataset", "NCUT MB", "#trajs", "#instances (min-max)", "#edges/traj (min-max)", "Ts")
	var rows []Table5Row
	for _, b := range bundles {
		s := b.DS.Stats()
		row := Table5Row{
			Name: s.Name, StorageMB: mb(s.RawBits.Total()), NumTrajs: s.NumTrajectories,
			InstAvg: s.InstAvg, InstMin: s.InstMin, InstMax: s.InstMax,
			EdgesAvg: s.EdgesAvg, EdgesMin: s.EdgesMin, EdgesMax: s.EdgesMax, Ts: s.Ts,
		}
		rows = append(rows, row)
		fprintf(w, "%-8s %10.2f %8d %11.1f (%d-%d) %13.1f (%d-%d) %6ds\n",
			row.Name, row.StorageMB, row.NumTrajs,
			row.InstAvg, row.InstMin, row.InstMax,
			row.EdgesAvg, row.EdgesMin, row.EdgesMax, row.Ts)
	}
	return rows
}

// Table6Row is one road-network row.
type Table6Row struct {
	Name         string
	Segments     int
	Vertices     int
	AvgOutDegree float64
}

// Table6 regenerates the road-network statistics.
func Table6(w io.Writer, bundles []*Bundle) []Table6Row {
	fprintf(w, "Table 6: Road networks\n")
	fprintf(w, "%-8s %10s %10s %12s\n", "Network", "#edges", "#vertices", "out degree")
	var rows []Table6Row
	for _, b := range bundles {
		n := b.DS.NetStats()
		row := Table6Row{Name: n.Name, Segments: n.Segments, Vertices: n.Vertices, AvgOutDegree: n.AvgOutDegree}
		rows = append(rows, row)
		fprintf(w, "%-8s %10d %10d %12.3f\n", row.Name, row.Segments, row.Vertices, row.AvgOutDegree)
	}
	return rows
}

// Fig4aRow is one sample-interval histogram.
type Fig4aRow struct {
	Name string
	Frac [5]float64 // |dev| in {0, 1, (1,50], (50,100], >100} seconds
	Runs float64    // samples between interval changes
}

// Fig4a regenerates the sample-interval deviation statistics.
func Fig4a(w io.Writer, bundles []*Bundle) []Fig4aRow {
	fprintf(w, "Fig 4a: Sample-interval deviations (fractions)\n")
	fprintf(w, "%-8s %6s %6s %8s %9s %6s %10s\n", "Dataset", "0", "1", "(1,50]", "(50,100]", ">100", "change-run")
	var rows []Fig4aRow
	for _, b := range bundles {
		h := b.DS.IntervalDeviationHistogram()
		row := Fig4aRow{Name: b.Profile.Name, Frac: h, Runs: b.DS.IntervalChangeRate()}
		rows = append(rows, row)
		fprintf(w, "%-8s %6.2f %6.2f %8.2f %9.2f %6.2f %10.2f\n",
			row.Name, h[0], h[1], h[2], h[3], h[4], row.Runs)
	}
	return rows
}

// Fig4bRow is one similarity distribution pair.
type Fig4bRow struct {
	Name    string
	Within  [4]float64 // edit distance in [0,2], [3,5], [6,8], >=9
	Between [4]float64
}

// Fig4b regenerates the instance-similarity statistics.
func Fig4b(w io.Writer, bundles []*Bundle) []Fig4bRow {
	fprintf(w, "Fig 4b: Edit distance within / between uncertain trajectories (fractions)\n")
	fprintf(w, "%-8s %28s %28s\n", "Dataset", "within [0,2] [3,5] [6,8] >=9", "between [0,2] [3,5] [6,8] >=9")
	var rows []Fig4bRow
	for _, b := range bundles {
		within, between := b.DS.SimilarityStats(1, 20000)
		row := Fig4bRow{Name: b.Profile.Name}
		copy(row.Within[:], within[:])
		copy(row.Between[:], between[:])
		rows = append(rows, row)
		fprintf(w, "%-8s   %6.2f %5.2f %5.2f %5.2f     %6.2f %5.2f %5.2f %5.2f\n",
			row.Name, within[0], within[1], within[2], within[3],
			between[0], between[1], between[2], between[3])
	}
	return rows
}
