package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/ted"
	"utcq/internal/traj"
)

// Table8Row compares UTCQ and TED on one dataset.
type Table8Row struct {
	Name         string
	U            core.CompStats
	T            core.CompStats
	UTime, TTime Measured
}

// Table8 regenerates the headline comparison: per-component compression
// ratios and compression time on all three datasets.
func Table8(w io.Writer, bundles []*Bundle) []Table8Row {
	fprintf(w, "Table 8: Comparison on three datasets (compression ratios and time)\n")
	fprintf(w, "%-4s %-5s %7s %7s %7s %7s %7s %7s %10s %9s\n",
		"Set", "Algo", "Total", "T", "E", "D", "T'", "p", "time", "peak MB")
	var rows []Table8Row
	for _, b := range bundles {
		row := Table8Row{Name: b.Profile.Name}
		c, err := core.NewCompressor(b.DS.Graph, b.Opts)
		if err != nil {
			panic(err)
		}
		var ua *core.Archive
		row.UTime = measure(func() {
			ua, err = c.Compress(b.DS.Trajectories)
		})
		if err != nil {
			panic(err)
		}
		row.U = ua.Stats

		tc, err := ted.NewCompressor(b.DS.Graph, TEDOptionsFor(b.Profile, b.Opts))
		if err != nil {
			panic(err)
		}
		var ta *ted.Archive
		row.TTime = measure(func() {
			ta, err = tc.Compress(b.DS.Trajectories)
		})
		if err != nil {
			panic(err)
		}
		row.T = ta.Stats
		rows = append(rows, row)
		printCompRow(w, row.Name, "UTCQ", row.U, row.UTime)
		printCompRow(w, row.Name, "TED", row.T, row.TTime)
	}
	return rows
}

func printCompRow(w io.Writer, name, algo string, s core.CompStats, m Measured) {
	fprintf(w, "%-4s %-5s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %10s %9.1f\n",
		name, algo, s.TotalRatio(), s.RatioT(), s.RatioE(), s.RatioD(), s.RatioTF(), s.RatioP(),
		m.Elapsed.Round(100*time.Microsecond), float64(m.PeakMem)/1e6)
}

// SweepPoint is one x-position of a parameter sweep.
type SweepPoint struct {
	X      float64
	URatio float64
	TRatio float64
	UTime  Measured
	TTime  Measured
}

// Fig6 varies the number of instances (60%..100%) over trajectories with
// at least 20 instances.
func Fig6(w io.Writer, cfg Config) (map[string][]SweepPoint, error) {
	fprintf(w, "Fig 6: Effect of the number of instances (trajectories with >= 20 instances)\n")
	out := make(map[string][]SweepPoint)
	for _, p := range gen.Profiles() {
		// Boost instance ambiguity so enough trajectories clear 20.
		bp := p
		bp.AvgInstances = 26
		bp.MaxInstances = 48
		bp.Match.MinProb = 0.0002
		n := int(float64(p.DefaultTrajectories) * cfg.Scale / 3)
		if n < 10 {
			n = 10
		}
		ds, err := gen.Build(bp, n, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		var big []*traj.Uncertain
		for _, u := range ds.Trajectories {
			if len(u.Instances) >= 20 {
				big = append(big, u)
			}
		}
		if len(big) == 0 {
			return nil, fmt.Errorf("exp: no >=20-instance trajectories for %s", p.Name)
		}
		opts := CoreOptionsFor(p)
		for _, frac := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
			trimmed := make([]*traj.Uncertain, len(big))
			for i, u := range big {
				trimmed[i] = trimInstances(u, frac)
			}
			pt, err := comparePoint(ds, opts, p, trimmed, frac*100)
			if err != nil {
				return nil, err
			}
			out[p.Name] = append(out[p.Name], pt)
			printSweepRow(w, p.Name, "instances%", pt)
		}
	}
	return out, nil
}

// Fig7 varies trajectory length (20%..100%) over long trajectories.
func Fig7(w io.Writer, cfg Config) (map[string][]SweepPoint, error) {
	fprintf(w, "Fig 7: Effect of the trajectory length (trajectories with >= 20 edges)\n")
	out := make(map[string][]SweepPoint)
	for _, p := range gen.Profiles() {
		bp := p
		bp.AvgEdges = 40
		bp.MaxPoints = p.MaxPoints * 3
		n := int(float64(p.DefaultTrajectories) * cfg.Scale / 4)
		if n < 10 {
			n = 10
		}
		ds, err := gen.Build(bp, n, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		var long []*traj.Uncertain
		for _, u := range ds.Trajectories {
			minEdges := math.MaxInt32
			for i := range u.Instances {
				if ec := u.Instances[i].EdgeCount(); ec < minEdges {
					minEdges = ec
				}
			}
			if minEdges >= 20 {
				long = append(long, u)
			}
		}
		if len(long) == 0 {
			return nil, fmt.Errorf("exp: no >=20-edge trajectories for %s", p.Name)
		}
		opts := CoreOptionsFor(p)
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			trimmed := make([]*traj.Uncertain, len(long))
			for i, u := range long {
				trimmed[i] = trimLength(u, frac)
			}
			pt, err := comparePoint(ds, opts, p, trimmed, frac*100)
			if err != nil {
				return nil, err
			}
			out[p.Name] = append(out[p.Name], pt)
			printSweepRow(w, p.Name, "length%", pt)
		}
	}
	return out, nil
}

// Fig8Point is one pivot-count measurement.
type Fig8Point struct {
	Pivots int
	Ratio  float64
	Time   Measured
}

// Fig8 varies the number of pivots (1..5).
func Fig8(w io.Writer, bundles []*Bundle) map[string][]Fig8Point {
	fprintf(w, "Fig 8: Effect of the number of pivots\n")
	out := make(map[string][]Fig8Point)
	for _, b := range bundles {
		for np := 1; np <= 5; np++ {
			opts := b.Opts
			opts.NumPivots = np
			c, err := core.NewCompressor(b.DS.Graph, opts)
			if err != nil {
				panic(err)
			}
			var a *core.Archive
			m := measure(func() {
				a, err = c.Compress(b.DS.Trajectories)
			})
			if err != nil {
				panic(err)
			}
			pt := Fig8Point{Pivots: np, Ratio: a.Stats.TotalRatio(), Time: m}
			out[b.Profile.Name] = append(out[b.Profile.Name], pt)
			fprintf(w, "%-4s pivots=%d  CR=%7.3f  time=%10s  peak=%6.1fMB\n",
				b.Profile.Name, np, pt.Ratio, pt.Time.Elapsed.Round(100*time.Microsecond), float64(pt.Time.PeakMem)/1e6)
		}
	}
	return out
}

// Fig12Compression varies the data size (20%..100%): compression ratio and
// time for UTCQ and TED.
func Fig12Compression(w io.Writer, bundles []*Bundle) map[string][]SweepPoint {
	fprintf(w, "Fig 12a/b: Scalability of compression (data size 20%%..100%%)\n")
	out := make(map[string][]SweepPoint)
	for _, b := range bundles {
		if b.Profile.Name == "DK" {
			continue // the paper shows CD and HZ
		}
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			n := int(float64(len(b.DS.Trajectories)) * frac)
			if n < 1 {
				n = 1
			}
			subset := copyTrajs(b.DS.Trajectories[:n])
			pt, err := comparePoint(b.DS, b.Opts, b.Profile, subset, frac*100)
			if err != nil {
				panic(err)
			}
			out[b.Profile.Name] = append(out[b.Profile.Name], pt)
			printSweepRow(w, b.Profile.Name, "datasize%", pt)
		}
	}
	return out
}

// comparePoint compresses one trajectory set with both systems.
func comparePoint(ds *gen.Dataset, opts core.Options, p gen.Profile, tus []*traj.Uncertain, x float64) (SweepPoint, error) {
	pt := SweepPoint{X: x}
	c, err := core.NewCompressor(ds.Graph, opts)
	if err != nil {
		return pt, err
	}
	var ua *core.Archive
	pt.UTime = measure(func() { ua, err = c.Compress(tus) })
	if err != nil {
		return pt, err
	}
	pt.URatio = ua.Stats.TotalRatio()

	tc, err := ted.NewCompressor(ds.Graph, TEDOptionsFor(p, opts))
	if err != nil {
		return pt, err
	}
	var ta *ted.Archive
	pt.TTime = measure(func() { ta, err = tc.Compress(tus) })
	if err != nil {
		return pt, err
	}
	pt.TRatio = ta.Stats.TotalRatio()
	return pt, nil
}

func printSweepRow(w io.Writer, name, xlabel string, pt SweepPoint) {
	fprintf(w, "%-4s %s=%5.0f  UTCQ CR=%7.3f time=%10s peak=%6.1fMB | TED CR=%7.3f time=%10s peak=%6.1fMB\n",
		name, xlabel, pt.X, pt.URatio, pt.UTime.Elapsed.Round(100*time.Microsecond), float64(pt.UTime.PeakMem)/1e6,
		pt.TRatio, pt.TTime.Elapsed.Round(100*time.Microsecond), float64(pt.TTime.PeakMem)/1e6)
}

// trimInstances keeps the first frac of instances and renormalizes.
func trimInstances(u *traj.Uncertain, frac float64) *traj.Uncertain {
	k := int(math.Ceil(float64(len(u.Instances)) * frac))
	if k < 2 {
		k = 2
	}
	if k > len(u.Instances) {
		k = len(u.Instances)
	}
	out := &traj.Uncertain{T: u.T, Instances: make([]traj.Instance, k)}
	copy(out.Instances, u.Instances[:k])
	total := 0.0
	for i := range out.Instances {
		total += out.Instances[i].P
	}
	for i := range out.Instances {
		out.Instances[i].P /= total
	}
	return out
}

// trimLength keeps the first frac of each trajectory's points (and the
// matching E/TF/D prefixes), preserving the shared time sequence.
func trimLength(u *traj.Uncertain, frac float64) *traj.Uncertain {
	k := int(math.Ceil(float64(len(u.T)) * frac))
	if k < 2 {
		k = 2
	}
	if k > len(u.T) {
		k = len(u.T)
	}
	out := &traj.Uncertain{T: u.T[:k], Instances: make([]traj.Instance, len(u.Instances))}
	for i := range u.Instances {
		ins := &u.Instances[i]
		// Position of point k-1 in the bit-string.
		seen := 0
		cut := len(ins.E) - 1
		for g, b := range ins.TF {
			if b {
				seen++
				if seen == k {
					cut = g
					break
				}
			}
		}
		out.Instances[i] = traj.Instance{
			SV: ins.SV,
			E:  ins.E[:cut+1],
			TF: ins.TF[:cut+1],
			D:  ins.D[:k],
			P:  ins.P,
		}
	}
	return out
}
