// Package exp is the benchmark harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) on the synthetic DK/CD/HZ
// datasets.  Each experiment prints paper-style rows and returns its
// numbers for tests and benches.  See DESIGN.md for the experiment index.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/ted"
	"utcq/internal/traj"
)

// Config selects the dataset scale for a harness run.
type Config struct {
	// Scale multiplies the per-profile default trajectory counts.
	Scale float64
	// Seed drives all dataset generation and workloads.
	Seed int64
	// Parallelism bounds the compression worker pools (0 = one worker
	// per CPU, 1 = the paper's serial measurement model).
	Parallelism int
}

// DefaultConfig is laptop-scale, pinned to the paper's serial
// measurement model (Parallelism 1) so time and peak-memory numbers stay
// comparable to the published Fig 6 memory shape.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42, Parallelism: 1} }

// Bundle is one profile's dataset plus its paper-default parameters.
type Bundle struct {
	Profile gen.Profile
	DS      *gen.Dataset
	Opts    core.Options
}

// CoreOptionsFor returns the paper's per-dataset defaults: 2 pivots for DK
// (Fig 8 discussion), 1 otherwise; ηp = 1/2048 for HZ, 1/512 otherwise;
// ηD = 1/128 everywhere.
func CoreOptionsFor(p gen.Profile) core.Options {
	o := core.DefaultOptions(p.Ts)
	switch p.Name {
	case "DK":
		o.NumPivots = 2
	case "HZ":
		o.EtaP = 1.0 / 2048
	}
	return o
}

// TEDOptionsFor mirrors CoreOptionsFor for the baseline.
func TEDOptionsFor(p gen.Profile, o core.Options) ted.Options {
	return ted.Options{EtaD: o.EtaD, EtaP: o.EtaP, Ts: p.Ts}
}

var (
	cacheMu sync.Mutex
	cache   = map[string][]*Bundle{}
)

// Datasets builds (and caches per process) the three profile datasets.
func Datasets(cfg Config) ([]*Bundle, error) {
	key := fmt.Sprintf("%g/%d/%d", cfg.Scale, cfg.Seed, cfg.Parallelism)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if b, ok := cache[key]; ok {
		return b, nil
	}
	var bundles []*Bundle
	for _, p := range gen.Profiles() {
		n := int(float64(p.DefaultTrajectories) * cfg.Scale)
		if n < 10 {
			n = 10
		}
		ds, err := gen.Build(p, n, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("exp: build %s: %w", p.Name, err)
		}
		opts := CoreOptionsFor(p)
		opts.Parallelism = cfg.Parallelism
		bundles = append(bundles, &Bundle{Profile: p, DS: ds, Opts: opts})
	}
	cache[key] = bundles
	return bundles, nil
}

// Measured couples a duration with the peak heap growth during the run.
type Measured struct {
	Elapsed time.Duration
	PeakMem uint64 // bytes of heap growth at peak
}

// measure runs f while sampling heap usage.
func measure(f func()) Measured {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	peak := base.HeapAlloc
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	f()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(stop)
	<-done
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	growth := uint64(0)
	if peak > base.HeapAlloc {
		growth = peak - base.HeapAlloc
	}
	return Measured{Elapsed: elapsed, PeakMem: growth}
}

// copyTrajs clones trajectory slices so experiments can mutate them.
func copyTrajs(tus []*traj.Uncertain) []*traj.Uncertain {
	out := make([]*traj.Uncertain, len(tus))
	copy(out, tus)
	return out
}

// mb formats bits as megabytes.
func mb(bits int64) float64 { return float64(bits) / 8 / 1e6 }

func fprintf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
