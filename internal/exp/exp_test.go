package exp

import (
	"io"
	"strings"
	"testing"
)

// tinyCfg keeps harness tests fast.
var tinyCfg = Config{Scale: 0.05, Seed: 3}

func TestDatasetsCached(t *testing.T) {
	a, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("got %d bundles", len(a))
	}
	b, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("datasets not cached per config")
		}
	}
	names := []string{"DK", "CD", "HZ"}
	for i, bundle := range a {
		if bundle.Profile.Name != names[i] {
			t.Errorf("bundle %d is %s", i, bundle.Profile.Name)
		}
	}
}

func TestCoreOptionsFor(t *testing.T) {
	bundles, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bundles {
		switch b.Profile.Name {
		case "DK":
			if b.Opts.NumPivots != 2 {
				t.Errorf("DK pivots = %d, want 2", b.Opts.NumPivots)
			}
		case "HZ":
			if b.Opts.EtaP != 1.0/2048 {
				t.Errorf("HZ etaP = %g, want 1/2048", b.Opts.EtaP)
			}
		default:
			if b.Opts.NumPivots != 1 || b.Opts.EtaP != 1.0/512 {
				t.Errorf("%s options %+v", b.Profile.Name, b.Opts)
			}
		}
	}
}

func TestTable8Shape(t *testing.T) {
	bundles, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := Table8(io.Discard, bundles)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The headline claims: UTCQ compresses better and faster than TED.
		if r.U.TotalRatio() <= r.T.TotalRatio() {
			t.Errorf("%s: UTCQ ratio %.2f <= TED %.2f", r.Name, r.U.TotalRatio(), r.T.TotalRatio())
		}
		if r.UTime.Elapsed >= r.TTime.Elapsed {
			t.Errorf("%s: UTCQ time %v >= TED %v", r.Name, r.UTime.Elapsed, r.TTime.Elapsed)
		}
		if r.T.RatioTF() < 0.999 || r.T.RatioTF() > 1.001 {
			t.Errorf("%s: TED T' ratio %.3f != 1", r.Name, r.T.RatioTF())
		}
	}
}

func TestStatsExperiments(t *testing.T) {
	bundles, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows := Table5(io.Discard, bundles); len(rows) != 3 {
		t.Error("table5 rows")
	}
	if rows := Table6(io.Discard, bundles); len(rows) != 3 {
		t.Error("table6 rows")
	}
	f4a := Fig4a(io.Discard, bundles)
	if len(f4a) != 3 {
		t.Fatal("fig4a rows")
	}
	// DK must have the most stable intervals.
	if f4a[0].Frac[0]+f4a[0].Frac[1] <= f4a[2].Frac[0]+f4a[2].Frac[1] {
		t.Error("DK not more stable than HZ")
	}
	f4b := Fig4b(io.Discard, bundles)
	for _, r := range f4b {
		if r.Within[0]+r.Within[1] <= r.Between[0]+r.Between[1] {
			t.Errorf("%s: within similarity not higher than between", r.Name)
		}
	}
}

func TestFig9And10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	bundles, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, dur, err := Fig9(io.Discard, bundles[:1], tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid["DK"]) != 5 || len(dur["DK"]) != 6 {
		t.Errorf("fig9 points: %d grid, %d duration", len(grid["DK"]), len(dur["DK"]))
	}
	rows, err := Fig10(io.Discard, bundles[:1], tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].UWhere <= 0 {
		t.Errorf("fig10 rows: %+v", rows)
	}
}

func TestRunDispatch(t *testing.T) {
	var sb strings.Builder
	if err := Run(&sb, "table6", tinyCfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Road networks") {
		t.Error("table6 output missing header")
	}
	if err := Run(io.Discard, "nope", tinyCfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTrimHelpers(t *testing.T) {
	bundles, err := Datasets(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range bundles[1].DS.Trajectories[:5] {
		for _, frac := range []float64{0.3, 0.6, 1.0} {
			tr := trimInstances(u, frac)
			if len(tr.Instances) < 2 || len(tr.Instances) > len(u.Instances) {
				t.Fatalf("trimInstances(%g): %d instances", frac, len(tr.Instances))
			}
			sum := 0.0
			for i := range tr.Instances {
				sum += tr.Instances[i].P
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("trimInstances: probabilities sum to %g", sum)
			}

			tl := trimLength(u, frac)
			if err := tl.Validate(); err != nil {
				t.Fatalf("trimLength(%g): %v", frac, err)
			}
			if len(tl.T) > len(u.T) {
				t.Error("trimLength grew the trajectory")
			}
		}
	}
}
