package roadnet

import "math"

// Rect is an axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether (x, y) lies inside r (inclusive bounds).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// RegionID identifies a grid cell; IDs are dense in [0, NumRegions).
type RegionID int32

// NoRegion is the invalid region sentinel.
const NoRegion RegionID = -1

// Grid partitions a road network's bounding box into nx × ny equal cells,
// each a region re of the StIU spatial index (Section 5.2).
type Grid struct {
	bounds Rect
	nx, ny int
	cw, ch float64
}

// NewGrid builds an nx × ny grid over the graph's bounding box.
func NewGrid(g *Graph, nx, ny int) *Grid {
	return NewGridOver(g.Bounds(), nx, ny)
}

// NewGridOver builds an nx × ny grid over an explicit bounding box.
func NewGridOver(bounds Rect, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	return &Grid{bounds: bounds, nx: nx, ny: ny, cw: w / float64(nx), ch: h / float64(ny)}
}

// NumRegions returns nx*ny.
func (gr *Grid) NumRegions() int { return gr.nx * gr.ny }

// Dims returns (nx, ny).
func (gr *Grid) Dims() (int, int) { return gr.nx, gr.ny }

// CellOf returns the region containing (x, y); coordinates outside the
// bounds are clamped to the border cells.
func (gr *Grid) CellOf(x, y float64) RegionID {
	cx := int((x - gr.bounds.MinX) / gr.cw)
	cy := int((y - gr.bounds.MinY) / gr.ch)
	cx = clamp(cx, 0, gr.nx-1)
	cy = clamp(cy, 0, gr.ny-1)
	return RegionID(cy*gr.nx + cx)
}

// CellRect returns the rectangle of a region.
func (gr *Grid) CellRect(id RegionID) Rect {
	cx := int(id) % gr.nx
	cy := int(id) / gr.nx
	return Rect{
		MinX: gr.bounds.MinX + float64(cx)*gr.cw,
		MinY: gr.bounds.MinY + float64(cy)*gr.ch,
		MaxX: gr.bounds.MinX + float64(cx+1)*gr.cw,
		MaxY: gr.bounds.MinY + float64(cy+1)*gr.ch,
	}
}

// CellsInRect returns the regions whose cells intersect rect.
func (gr *Grid) CellsInRect(rect Rect) []RegionID {
	return gr.AppendCellsInRect(nil, rect)
}

// AppendCellsInRect appends the regions whose cells intersect rect to dst,
// letting hot query paths reuse a scratch slice.
func (gr *Grid) AppendCellsInRect(dst []RegionID, rect Rect) []RegionID {
	x0 := clamp(int((rect.MinX-gr.bounds.MinX)/gr.cw), 0, gr.nx-1)
	x1 := clamp(int((rect.MaxX-gr.bounds.MinX)/gr.cw), 0, gr.nx-1)
	y0 := clamp(int((rect.MinY-gr.bounds.MinY)/gr.ch), 0, gr.ny-1)
	y1 := clamp(int((rect.MaxY-gr.bounds.MinY)/gr.ch), 0, gr.ny-1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			dst = append(dst, RegionID(cy*gr.nx+cx))
		}
	}
	return dst
}

// CellsOfEdge returns the ordered distinct regions an edge passes through,
// from the edge's start towards its end.
func (gr *Grid) CellsOfEdge(g *Graph, e EdgeID) []RegionID {
	edge := g.Edge(e)
	a, b := g.Vertex(edge.From), g.Vertex(edge.To)
	return gr.CellsOfSegment(a.X, a.Y, b.X, b.Y)
}

// CellsOfSegment returns the ordered distinct regions crossed by the
// segment from (ax, ay) to (bx, by).  The traversal is exact: it advances
// through every grid-line crossing, so no clipped cell is missed (the
// spatial index must never under-report which regions an edge touches).
func (gr *Grid) CellsOfSegment(ax, ay, bx, by float64) []RegionID {
	cx := int((ax - gr.bounds.MinX) / gr.cw)
	cy := int((ay - gr.bounds.MinY) / gr.ch)
	ex := int((bx - gr.bounds.MinX) / gr.cw)
	ey := int((by - gr.bounds.MinY) / gr.ch)
	cx, cy = clamp(cx, 0, gr.nx-1), clamp(cy, 0, gr.ny-1)
	ex, ey = clamp(ex, 0, gr.nx-1), clamp(ey, 0, gr.ny-1)

	out := []RegionID{RegionID(cy*gr.nx + cx)}
	if cx == ex && cy == ey {
		return out
	}
	dx, dy := bx-ax, by-ay
	stepX, stepY := sign(dx), sign(dy)
	// Parameter t of the next vertical / horizontal grid-line crossing.
	nextT := func(c int, step int, origin, d, min, cell float64) float64 {
		if step == 0 || d == 0 {
			return math.Inf(1)
		}
		var boundary float64
		if step > 0 {
			boundary = min + float64(c+1)*cell
		} else {
			boundary = min + float64(c)*cell
		}
		return (boundary - origin) / d
	}
	for steps := 0; steps < gr.nx+gr.ny+4; steps++ {
		if cx == ex && cy == ey {
			break
		}
		tx := nextT(cx, stepX, ax, dx, gr.bounds.MinX, gr.cw)
		ty := nextT(cy, stepY, ay, dy, gr.bounds.MinY, gr.ch)
		if tx <= ty {
			cx = clamp(cx+stepX, 0, gr.nx-1)
		} else {
			cy = clamp(cy+stepY, 0, gr.ny-1)
		}
		id := RegionID(cy*gr.nx + cx)
		if out[len(out)-1] != id {
			out = append(out, id)
		}
	}
	return out
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// RegionOfPosition returns the region containing a network position.
func (gr *Grid) RegionOfPosition(g *Graph, p Position) RegionID {
	x, y := g.Coords(p)
	return gr.CellOf(x, y)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IntersectsSegment reports whether the segment (x1,y1)-(x2,y2) intersects
// the rectangle (used by the range-query Lemma 2 tests).
func (r Rect) IntersectsSegment(x1, y1, x2, y2 float64) bool {
	if r.Contains(x1, y1) || r.Contains(x2, y2) {
		return true
	}
	// Liang-Barsky clipping: the segment intersects iff a parameter range
	// survives clipping against all four half-planes.
	t0, t1 := 0.0, 1.0
	dx, dy := x2-x1, y2-y1
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	return clip(-dx, x1-r.MinX) && clip(dx, r.MaxX-x1) &&
		clip(-dy, y1-r.MinY) && clip(dy, r.MaxY-y1)
}
