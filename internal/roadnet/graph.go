// Package roadnet models directed road networks (Definition 1 of the paper):
// vertices with planar coordinates, directed edges with lengths, and
// per-vertex ordered outgoing edges so that every edge is addressable as
// (start vertex, outgoing edge number) — the addressing scheme that the TED
// and UTCQ edge-sequence representations rely on (Definition 6).
//
// The package also provides network positions, bounded shortest paths, a
// uniform grid partition (the spatial regions of the StIU index), an edge
// spatial index used by map matching, and a synthetic network generator
// whose outputs match the degree statistics of the paper's road networks.
package roadnet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// VertexID identifies a vertex; IDs are dense in [0, NumVertices).
type VertexID int32

// EdgeID identifies a directed edge; IDs are dense in [0, NumEdges).
type EdgeID int32

// NoVertex is the invalid vertex sentinel.
const NoVertex VertexID = -1

// NoEdge is the invalid edge sentinel.
const NoEdge EdgeID = -1

// Vertex is an intersection or end point with planar coordinates in meters.
type Vertex struct {
	ID   VertexID
	X, Y float64
}

// Edge is a directed road segment.  OutNo is its 1-based outgoing edge
// number with respect to From (Definition 6).
type Edge struct {
	ID     EdgeID
	From   VertexID
	To     VertexID
	Length float64
	OutNo  int
}

// Graph is an immutable directed road network.
type Graph struct {
	vertices []Vertex
	edges    []Edge
	out      [][]EdgeID // out[v] ordered: OutNo of out[v][i] is i+1
	maxOut   int
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// Fingerprint returns a 64-bit FNV-1a hash over the graph's structure
// (vertex coordinates, edge endpoints and lengths).  Artifacts that are
// only meaningful against the network they were built with — archives,
// store manifests — record it so reopening against a different network
// fails loudly instead of decoding garbage.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	mix := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	mix(uint64(len(g.vertices)))
	mix(uint64(len(g.edges)))
	for _, v := range g.vertices {
		mix(math.Float64bits(v.X))
		mix(math.Float64bits(v.Y))
	}
	for _, e := range g.edges {
		mix(uint64(e.From))
		mix(uint64(e.To))
		mix(math.Float64bits(e.Length))
	}
	return h.Sum64()
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) Vertex { return g.vertices[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// OutEdges returns the ordered outgoing edges of v.  The result must not be
// modified.
func (g *Graph) OutEdges(v VertexID) []EdgeID { return g.out[v] }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// OutEdge resolves (v, no) to an edge; no is the 1-based outgoing edge
// number.  It reports false when no such edge exists.
func (g *Graph) OutEdge(v VertexID, no int) (EdgeID, bool) {
	if v < 0 || int(v) >= len(g.out) || no < 1 || no > len(g.out[v]) {
		return NoEdge, false
	}
	return g.out[v][no-1], true
}

// EdgeBetween returns the directed edge from one vertex to another, if any.
func (g *Graph) EdgeBetween(from, to VertexID) (EdgeID, bool) {
	for _, e := range g.out[from] {
		if g.edges[e].To == to {
			return e, true
		}
	}
	return NoEdge, false
}

// MaxOutDegree returns o, the maximum number of outgoing edges over all
// vertices; ⌈log2(o+1)⌉ bits encode any outgoing edge number (including the
// 0 used for repeated mapped locations).
func (g *Graph) MaxOutDegree() int { return g.maxOut }

// AvgOutDegree returns the average out-degree.
func (g *Graph) AvgOutDegree() float64 {
	if len(g.vertices) == 0 {
		return 0
	}
	return float64(len(g.edges)) / float64(len(g.vertices))
}

// UndirectedEdgeCount counts road segments, treating an edge pair
// (u→v, v→u) as one segment; this matches the edge counts of Table 6.
func (g *Graph) UndirectedEdgeCount() int {
	n := 0
	for _, e := range g.edges {
		if rev, ok := g.EdgeBetween(e.To, e.From); ok && rev < e.ID {
			continue // counted when we saw the reverse
		}
		n++
	}
	return n
}

// Bounds returns the bounding rectangle of all vertices.
func (g *Graph) Bounds() Rect {
	if len(g.vertices) == 0 {
		return Rect{}
	}
	r := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, v := range g.vertices {
		r.MinX = math.Min(r.MinX, v.X)
		r.MinY = math.Min(r.MinY, v.Y)
		r.MaxX = math.Max(r.MaxX, v.X)
		r.MaxY = math.Max(r.MaxY, v.Y)
	}
	return r
}

// Position is a network-constrained location: a point on an edge at network
// distance NDist from the edge's start vertex (Definition 2, without time).
type Position struct {
	Edge  EdgeID
	NDist float64
}

// RD returns the relative distance of p (Definition 7): NDist divided by
// the edge length.
func (g *Graph) RD(p Position) float64 {
	e := g.edges[p.Edge]
	if e.Length == 0 {
		return 0
	}
	rd := p.NDist / e.Length
	if rd < 0 {
		return 0
	}
	if rd >= 1 {
		return math.Nextafter(1, 0)
	}
	return rd
}

// PositionAtRD converts a relative distance back to a Position.
func (g *Graph) PositionAtRD(e EdgeID, rd float64) Position {
	return Position{Edge: e, NDist: rd * g.edges[e].Length}
}

// Coords returns the planar coordinates of p by linear interpolation along
// its edge.
func (g *Graph) Coords(p Position) (x, y float64) {
	e := g.edges[p.Edge]
	a, b := g.vertices[e.From], g.vertices[e.To]
	t := 0.0
	if e.Length > 0 {
		t = p.NDist / e.Length
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t
}

// EuclideanDist returns the straight-line distance between two positions.
func (g *Graph) EuclideanDist(a, b Position) float64 {
	ax, ay := g.Coords(a)
	bx, by := g.Coords(b)
	return math.Hypot(ax-bx, ay-by)
}

// Validate checks structural invariants; it is used by tests and the
// generator.
func (g *Graph) Validate() error {
	for v, outs := range g.out {
		for i, e := range outs {
			edge := g.edges[e]
			if edge.From != VertexID(v) {
				return fmt.Errorf("roadnet: edge %d listed under vertex %d but starts at %d", e, v, edge.From)
			}
			if edge.OutNo != i+1 {
				return fmt.Errorf("roadnet: edge %d has OutNo %d, position says %d", e, edge.OutNo, i+1)
			}
			if edge.Length < 0 {
				return fmt.Errorf("roadnet: edge %d has negative length", e)
			}
		}
	}
	return nil
}

// Builder accumulates vertices and edges and produces an immutable Graph.
type Builder struct {
	vertices []Vertex
	edges    []Edge
	out      [][]EdgeID
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddVertex adds a vertex at (x, y) and returns its ID.
func (b *Builder) AddVertex(x, y float64) VertexID {
	id := VertexID(len(b.vertices))
	b.vertices = append(b.vertices, Vertex{ID: id, X: x, Y: y})
	b.out = append(b.out, nil)
	return id
}

// AddEdge adds a directed edge from one vertex to another with Euclidean
// length, returning its ID.  Edges are numbered per vertex in insertion
// order.
func (b *Builder) AddEdge(from, to VertexID) EdgeID {
	a, c := b.vertices[from], b.vertices[to]
	return b.AddEdgeLen(from, to, math.Hypot(a.X-c.X, a.Y-c.Y))
}

// AddEdgeLen adds a directed edge with an explicit length.
func (b *Builder) AddEdgeLen(from, to VertexID, length float64) EdgeID {
	id := EdgeID(len(b.edges))
	no := len(b.out[from]) + 1
	b.edges = append(b.edges, Edge{ID: id, From: from, To: to, Length: length, OutNo: no})
	b.out[from] = append(b.out[from], id)
	return id
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.vertices) }

// HasEdge reports whether a directed edge from one vertex to another exists.
func (b *Builder) HasEdge(from, to VertexID) bool {
	for _, e := range b.out[from] {
		if b.edges[e].To == to {
			return true
		}
	}
	return false
}

// Build finalizes the graph.
func (b *Builder) Build() *Graph {
	maxOut := 0
	for _, outs := range b.out {
		if len(outs) > maxOut {
			maxOut = len(outs)
		}
	}
	return &Graph{vertices: b.vertices, edges: b.edges, out: b.out, maxOut: maxOut}
}
