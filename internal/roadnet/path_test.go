package roadnet

import (
	"math"
	"testing"
)

func TestShortestPathsMultiTarget(t *testing.T) {
	g, ids := buildFig2Like()
	e12, _ := g.EdgeBetween(ids["v1"], ids["v2"])
	e23, _ := g.EdgeBetween(ids["v2"], ids["v3"])
	e45, _ := g.EdgeBetween(ids["v4"], ids["v5"])
	src := Position{e12, 50}
	targets := []Position{
		{e12, 80}, // same edge, forward
		{e23, 50}, // next edge
		{e45, 25}, // further along
		{e12, 10}, // same edge, backward: must route around or fail
	}
	res := g.ShortestPaths(src, targets, 2000)
	if !res[0].OK || res[0].Dist != 30 {
		t.Errorf("same-edge forward: %+v", res[0])
	}
	if !res[1].OK || math.Abs(res[1].Dist-100) > 1e-9 {
		t.Errorf("next edge: %+v", res[1])
	}
	if !res[2].OK || math.Abs(res[2].Dist-275) > 1e-9 {
		t.Errorf("distant: %+v", res[2])
	}
	// The corridor has no return edges from v2, so backward should fail.
	if res[3].OK {
		t.Errorf("backward on one-way corridor should fail, got %+v", res[3])
	}
	// Results must agree with the single-target API.
	for i, tg := range targets {
		d, ok := g.NetworkDistance(src, tg, 2000)
		if ok != res[i].OK || (ok && math.Abs(d-res[i].Dist) > 1e-9) {
			t.Errorf("target %d: single=%g/%v multi=%g/%v", i, d, ok, res[i].Dist, res[i].OK)
		}
	}
	// Paths must be connected and start/end correctly.
	for i, r := range res {
		if !r.OK {
			continue
		}
		if !g.IsPath(r.Path) {
			t.Errorf("target %d: disconnected path", i)
		}
		if r.Path[0] != src.Edge || r.Path[len(r.Path)-1] != targets[i].Edge {
			t.Errorf("target %d: endpoints wrong", i)
		}
	}
}

func TestShortestPathsBackwardWithLoop(t *testing.T) {
	// A bidirectional two-vertex network: going backward on an edge must
	// route around via the reverse edge.
	b := NewBuilder()
	u := b.AddVertex(0, 0)
	v := b.AddVertex(100, 0)
	uv := b.AddEdge(u, v)
	b.AddEdge(v, u)
	g := b.Build()
	res := g.ShortestPaths(Position{uv, 80}, []Position{{uv, 20}}, 1000)
	if !res[0].OK {
		t.Fatal("no loop path found")
	}
	// 20 to v, 100 back to u, 20 forward again = 140.
	if math.Abs(res[0].Dist-140) > 1e-9 {
		t.Errorf("loop dist = %g, want 140", res[0].Dist)
	}
	if len(res[0].Path) != 3 || res[0].Path[0] != uv || res[0].Path[2] != uv {
		t.Errorf("loop path = %v", res[0].Path)
	}
}
