package roadnet

import "container/heap"

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	vertex VertexID
	dist   float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// vertexDist runs a bounded Dijkstra from src and returns the distance to
// dst, or ok=false when dst is farther than maxDist (or unreachable).
// prev, when non-nil, receives the predecessor edges for path recovery.
func (g *Graph) vertexDist(src, dst VertexID, maxDist float64, prev map[VertexID]EdgeID) (float64, bool) {
	if src == dst {
		return 0, true
	}
	dist := map[VertexID]float64{src: 0}
	q := pq{{src, 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.vertex] {
			continue // stale entry
		}
		if it.vertex == dst {
			return it.dist, true
		}
		for _, eid := range g.out[it.vertex] {
			e := g.edges[eid]
			nd := it.dist + e.Length
			if nd > maxDist {
				continue
			}
			if cur, seen := dist[e.To]; !seen || nd < cur {
				dist[e.To] = nd
				if prev != nil {
					prev[e.To] = eid
				}
				heap.Push(&q, pqItem{e.To, nd})
			}
		}
	}
	return 0, false
}

// NetworkDistance returns the shortest network distance from position a to
// position b, travelling in edge direction only, bounded by maxDist.
func (g *Graph) NetworkDistance(a, b Position, maxDist float64) (float64, bool) {
	d, _, ok := g.shortestPath(a, b, maxDist, false)
	return d, ok
}

// ShortestPath returns the edge sequence from a to b (inclusive of both
// endpoint edges) along with the network distance, bounded by maxDist.
func (g *Graph) ShortestPath(a, b Position, maxDist float64) ([]EdgeID, float64, bool) {
	d, path, ok := g.shortestPath(a, b, maxDist, true)
	return path, d, ok
}

func (g *Graph) shortestPath(a, b Position, maxDist float64, wantPath bool) (float64, []EdgeID, bool) {
	if a.Edge == b.Edge && b.NDist >= a.NDist {
		d := b.NDist - a.NDist
		if d > maxDist {
			return 0, nil, false
		}
		if wantPath {
			return d, []EdgeID{a.Edge}, true
		}
		return d, nil, true
	}
	ea, eb := g.edges[a.Edge], g.edges[b.Edge]
	head := ea.Length - a.NDist // to reach ea.To
	if head > maxDist {
		return 0, nil, false
	}
	var prev map[VertexID]EdgeID
	if wantPath {
		prev = make(map[VertexID]EdgeID)
	}
	mid, ok := g.vertexDist(ea.To, eb.From, maxDist-head-b.NDist, prev)
	if !ok {
		return 0, nil, false
	}
	total := head + mid + b.NDist
	if total > maxDist {
		return 0, nil, false
	}
	if !wantPath {
		return total, nil, true
	}
	// Recover vertex path ea.To .. eb.From, then assemble edges.
	var midEdges []EdgeID
	for v := eb.From; v != ea.To; {
		e := prev[v]
		midEdges = append(midEdges, e)
		v = g.edges[e].From
	}
	path := make([]EdgeID, 0, len(midEdges)+2)
	path = append(path, a.Edge)
	for i := len(midEdges) - 1; i >= 0; i-- {
		path = append(path, midEdges[i])
	}
	path = append(path, b.Edge)
	return total, path, true
}

// PathResult is the outcome of one source-to-target shortest-path search.
type PathResult struct {
	Dist float64
	Path []EdgeID
	OK   bool
}

// ShortestPaths computes shortest paths from a to every target in bs with a
// single bounded Dijkstra (used by map matching, where all transitions out
// of one candidate share their source).
func (g *Graph) ShortestPaths(a Position, bs []Position, maxDist float64) []PathResult {
	out := make([]PathResult, len(bs))
	ea := g.edges[a.Edge]
	head := ea.Length - a.NDist
	pending := 0
	// Resolve same-edge targets immediately; collect goal vertices for the rest.
	goals := make(map[VertexID][]int)
	for i, b := range bs {
		if b.Edge == a.Edge && b.NDist >= a.NDist {
			d := b.NDist - a.NDist
			if d <= maxDist {
				out[i] = PathResult{Dist: d, Path: []EdgeID{a.Edge}, OK: true}
				continue
			}
		}
		goals[g.edges[b.Edge].From] = append(goals[g.edges[b.Edge].From], i)
		pending++
	}
	if pending == 0 || head > maxDist {
		return out
	}
	dist := map[VertexID]float64{ea.To: 0}
	prev := make(map[VertexID]EdgeID)
	q := pq{{ea.To, 0}}
	remaining := len(goals)
	done := make(map[VertexID]bool)
	for len(q) > 0 && remaining > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.vertex] {
			continue
		}
		if idxs, isGoal := goals[it.vertex]; isGoal && !done[it.vertex] {
			done[it.vertex] = true
			remaining--
			for _, i := range idxs {
				b := bs[i]
				total := head + it.dist + b.NDist
				if total > maxDist {
					continue
				}
				var midEdges []EdgeID
				for v := it.vertex; v != ea.To; {
					e := prev[v]
					midEdges = append(midEdges, e)
					v = g.edges[e].From
				}
				path := make([]EdgeID, 0, len(midEdges)+2)
				path = append(path, a.Edge)
				for k := len(midEdges) - 1; k >= 0; k-- {
					path = append(path, midEdges[k])
				}
				path = append(path, b.Edge)
				out[i] = PathResult{Dist: total, Path: path, OK: true}
			}
		}
		for _, eid := range g.out[it.vertex] {
			e := g.edges[eid]
			nd := it.dist + e.Length
			if head+nd > maxDist {
				continue
			}
			if cur, seen := dist[e.To]; !seen || nd < cur {
				dist[e.To] = nd
				prev[e.To] = eid
				heap.Push(&q, pqItem{e.To, nd})
			}
		}
	}
	return out
}

// PathLength sums the lengths of the edges in path.
func (g *Graph) PathLength(path []EdgeID) float64 {
	var s float64
	for _, e := range path {
		s += g.edges[e].Length
	}
	return s
}

// IsPath reports whether consecutive edges in path are connected
// (Definition 4).
func (g *Graph) IsPath(path []EdgeID) bool {
	for i := 1; i < len(path); i++ {
		if g.edges[path[i-1]].To != g.edges[path[i]].From {
			return false
		}
	}
	return true
}
