package roadnet

import (
	"math"
	"testing"
)

// buildFig2Like builds a small network resembling Fig 2 of the paper:
// a corridor v1..v8 with a detour v2->v10->v4 and a branch v8->v9.
func buildFig2Like() (*Graph, map[string]VertexID) {
	b := NewBuilder()
	names := []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10"}
	coords := map[string][2]float64{
		"v1": {0, 0}, "v2": {100, 0}, "v3": {200, 0}, "v4": {300, 0},
		"v5": {400, 0}, "v6": {500, 0}, "v7": {700, 0}, "v8": {800, 0},
		"v9": {800, -100}, "v10": {200, 100},
	}
	ids := make(map[string]VertexID)
	for _, n := range names {
		c := coords[n]
		ids[n] = b.AddVertex(c[0], c[1])
	}
	// Main corridor.
	for i := 0; i < 7; i++ {
		b.AddEdge(ids[names[i]], ids[names[i+1]])
	}
	// Detour and branch.
	b.AddEdge(ids["v2"], ids["v10"])
	b.AddEdge(ids["v10"], ids["v4"])
	b.AddEdge(ids["v8"], ids["v9"])
	return b.Build(), ids
}

func TestOutEdgeNumbers(t *testing.T) {
	g, ids := buildFig2Like()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// v2 has two out-edges: (v2->v3) added first (OutNo 1), (v2->v10) second.
	e1, ok := g.OutEdge(ids["v2"], 1)
	if !ok || g.Edge(e1).To != ids["v3"] {
		t.Errorf("OutEdge(v2, 1) -> %v, want edge to v3", g.Edge(e1).To)
	}
	e2, ok := g.OutEdge(ids["v2"], 2)
	if !ok || g.Edge(e2).To != ids["v10"] {
		t.Errorf("OutEdge(v2, 2) -> %v, want edge to v10", g.Edge(e2).To)
	}
	if _, ok := g.OutEdge(ids["v2"], 3); ok {
		t.Error("OutEdge(v2, 3) should not exist")
	}
	if _, ok := g.OutEdge(ids["v2"], 0); ok {
		t.Error("OutEdge(v2, 0) should not exist: numbers are 1-based")
	}
}

func TestEdgeBetween(t *testing.T) {
	g, ids := buildFig2Like()
	if e, ok := g.EdgeBetween(ids["v1"], ids["v2"]); !ok || g.Edge(e).From != ids["v1"] {
		t.Error("EdgeBetween(v1, v2) not found")
	}
	if _, ok := g.EdgeBetween(ids["v2"], ids["v1"]); ok {
		t.Error("EdgeBetween(v2, v1) should not exist (directed)")
	}
}

func TestPositionsAndRD(t *testing.T) {
	g, ids := buildFig2Like()
	e, _ := g.EdgeBetween(ids["v1"], ids["v2"]) // length 100
	p := Position{Edge: e, NDist: 25}
	if rd := g.RD(p); rd != 0.25 {
		t.Errorf("RD = %g, want 0.25", rd)
	}
	x, y := g.Coords(p)
	if x != 25 || y != 0 {
		t.Errorf("Coords = (%g, %g), want (25, 0)", x, y)
	}
	back := g.PositionAtRD(e, 0.25)
	if back.NDist != 25 {
		t.Errorf("PositionAtRD = %g, want 25", back.NDist)
	}
}

func TestShortestPathSameEdge(t *testing.T) {
	g, ids := buildFig2Like()
	e, _ := g.EdgeBetween(ids["v1"], ids["v2"])
	path, d, ok := g.ShortestPath(Position{e, 10}, Position{e, 90}, 1e9)
	if !ok || d != 80 || len(path) != 1 {
		t.Fatalf("same-edge path: d=%g ok=%v len=%d", d, ok, len(path))
	}
}

func TestShortestPathCorridor(t *testing.T) {
	g, ids := buildFig2Like()
	e12, _ := g.EdgeBetween(ids["v1"], ids["v2"])
	e45, _ := g.EdgeBetween(ids["v4"], ids["v5"])
	a := Position{e12, 50}
	bp := Position{e45, 50}
	path, d, ok := g.ShortestPath(a, bp, 1e9)
	if !ok {
		t.Fatal("no path found")
	}
	// 50 to v2, 100 v2->v3, 100 v3->v4, 50 into v4->v5 = 300.
	if math.Abs(d-300) > 1e-9 {
		t.Errorf("distance = %g, want 300", d)
	}
	if !g.IsPath(path) {
		t.Error("returned edge sequence is not connected")
	}
	if path[0] != e12 || path[len(path)-1] != e45 {
		t.Error("path endpoints wrong")
	}
}

func TestShortestPathBound(t *testing.T) {
	g, ids := buildFig2Like()
	e12, _ := g.EdgeBetween(ids["v1"], ids["v2"])
	e78, _ := g.EdgeBetween(ids["v7"], ids["v8"])
	if _, ok := g.NetworkDistance(Position{e12, 0}, Position{e78, 0}, 100); ok {
		t.Error("bounded search should fail for a distant target")
	}
	d, ok := g.NetworkDistance(Position{e12, 0}, Position{e78, 0}, 1e9)
	if !ok || d != 700 {
		t.Errorf("distance = %g ok=%v, want 700", d, ok)
	}
}

func TestUndirectedEdgeCount(t *testing.T) {
	b := NewBuilder()
	u := b.AddVertex(0, 0)
	v := b.AddVertex(100, 0)
	w := b.AddVertex(200, 0)
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	b.AddEdge(v, w) // one-way
	g := b.Build()
	if got := g.UndirectedEdgeCount(); got != 2 {
		t.Errorf("UndirectedEdgeCount = %d, want 2", got)
	}
}

func TestGridCells(t *testing.T) {
	g, _ := buildFig2Like()
	grid := NewGrid(g, 4, 4)
	if grid.NumRegions() != 16 {
		t.Fatalf("NumRegions = %d", grid.NumRegions())
	}
	bounds := g.Bounds()
	// Every vertex must land in a valid cell whose rect contains it.
	for i := 0; i < g.NumVertices(); i++ {
		v := g.Vertex(VertexID(i))
		id := grid.CellOf(v.X, v.Y)
		if id < 0 || int(id) >= grid.NumRegions() {
			t.Fatalf("vertex %d: invalid region %d", i, id)
		}
		r := grid.CellRect(id)
		if !r.Contains(v.X, v.Y) {
			t.Errorf("vertex %d at (%g,%g) not inside cell rect %+v", i, v.X, v.Y, r)
		}
	}
	// CellsInRect over the whole bounds covers everything.
	if got := len(grid.CellsInRect(bounds)); got != 16 {
		t.Errorf("CellsInRect(bounds) = %d cells, want 16", got)
	}
}

func TestCellsOfSegmentOrdered(t *testing.T) {
	g, _ := buildFig2Like()
	grid := NewGrid(g, 8, 8)
	cells := grid.CellsOfSegment(0, 0, 800, 0)
	if len(cells) < 2 {
		t.Fatalf("expected multiple cells, got %d", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] == cells[i-1] {
			t.Error("consecutive duplicate cells")
		}
	}
}

func TestEdgeIndexNearest(t *testing.T) {
	g, ids := buildFig2Like()
	ix := NewEdgeIndex(g, 150)
	// A point 10m above the v3->v4 edge midpoint.
	cands := ix.NearestEdges(250, 10, 60, 4)
	if len(cands) == 0 {
		t.Fatal("no candidates found")
	}
	e34, _ := g.EdgeBetween(ids["v3"], ids["v4"])
	if cands[0].Edge != e34 {
		t.Errorf("nearest edge = %d, want v3->v4 (%d)", cands[0].Edge, e34)
	}
	if math.Abs(cands[0].NDist-50) > 1e-9 {
		t.Errorf("projected ndist = %g, want 50", cands[0].NDist)
	}
}

func TestProjectClampsToSegment(t *testing.T) {
	g, ids := buildFig2Like()
	e, _ := g.EdgeBetween(ids["v1"], ids["v2"])
	nd, d := g.Project(e, -50, 30) // before the segment start
	if nd != 0 {
		t.Errorf("ndist = %g, want 0 (clamped)", nd)
	}
	if math.Abs(d-math.Hypot(50, 30)) > 1e-9 {
		t.Errorf("dist = %g", d)
	}
}

func TestGenerateStats(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Cols, cfg.Rows = 20, 20
	cfg.SegmentsPerVertex = 1.3
	g := Generate(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	segs := g.UndirectedEdgeCount()
	ratio := float64(segs) / float64(g.NumVertices())
	if ratio < 1.0 || ratio > 1.45 {
		t.Errorf("segments per vertex = %g, want near 1.3", ratio)
	}
	avg := g.AvgOutDegree()
	if avg < 2.0 || avg > 2.9 {
		t.Errorf("avg out degree = %g, want in [2.0, 2.9]", avg)
	}
	if g.MaxOutDegree() < 3 || g.MaxOutDegree() > 8 {
		t.Errorf("max out degree = %d", g.MaxOutDegree())
	}
}

func TestGenerateStronglyConnectedCore(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Cols, cfg.Rows = 12, 12
	g := Generate(cfg)
	// Every vertex must be reachable from vertex 0 and reach vertex 0
	// (the spanning tree is bidirectional).
	n := g.NumVertices()
	reach := func(from VertexID) int {
		seen := make([]bool, n)
		stack := []VertexID{from}
		seen[from] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.OutEdges(v) {
				to := g.Edge(e).To
				if !seen[to] {
					seen[to] = true
					count++
					stack = append(stack, to)
				}
			}
		}
		return count
	}
	if got := reach(0); got != n {
		t.Errorf("only %d of %d vertices reachable from v0", got, n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	g1 := Generate(cfg)
	g2 := Generate(cfg)
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		a, b := g1.Edge(EdgeID(i)), g2.Edge(EdgeID(i))
		if a != b {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func BenchmarkShortestPath(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.Cols, cfg.Rows = 40, 40
	g := Generate(cfg)
	src := Position{Edge: 0, NDist: 0}
	dst := Position{Edge: EdgeID(g.NumEdges() - 1), NDist: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(src, dst, 1e12)
	}
}
