package roadnet

import "math/rand"

// GenConfig controls synthetic road-network generation.  Networks are
// jittered lattices: a random spanning tree is always kept bidirectional
// (guaranteeing strong connectivity), and further lattice/diagonal links
// are added until the undirected segment count reaches
// SegmentsPerVertex × vertices, matching the density statistics of Table 6.
type GenConfig struct {
	Seed    int64
	Cols    int
	Rows    int
	Spacing float64 // mean vertex spacing in meters
	Jitter  float64 // vertex position jitter as a fraction of Spacing

	// SegmentsPerVertex is the target number of undirected road segments
	// per vertex (Table 6: DK 1.22, CD 1.42, HZ 1.40).  Average out-degree
	// is roughly twice this value.
	SegmentsPerVertex float64

	// OneWayProb is the probability that a non-tree link is one-way.
	OneWayProb float64

	// DiagProb is the probability that a candidate link is a diagonal.
	DiagProb float64
}

// DefaultGenConfig returns a small, well-formed configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed: 1, Cols: 32, Rows: 32, Spacing: 200, Jitter: 0.25,
		SegmentsPerVertex: 1.3, OneWayProb: 0.15, DiagProb: 0.15,
	}
}

// Generate builds a synthetic road network.
func Generate(cfg GenConfig) *Graph {
	if cfg.Cols < 2 {
		cfg.Cols = 2
	}
	if cfg.Rows < 2 {
		cfg.Rows = 2
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	// Vertices on a jittered lattice.
	idAt := make([]VertexID, cfg.Cols*cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			x := float64(c)*cfg.Spacing + rng.NormFloat64()*cfg.Jitter*cfg.Spacing
			y := float64(r)*cfg.Spacing + rng.NormFloat64()*cfg.Jitter*cfg.Spacing
			idAt[r*cfg.Cols+c] = b.AddVertex(x, y)
		}
	}
	at := func(c, r int) VertexID { return idAt[r*cfg.Cols+c] }

	// Candidate undirected links: lattice neighbours plus some diagonals.
	type link struct{ u, v VertexID }
	var candidates []link
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				candidates = append(candidates, link{at(c, r), at(c+1, r)})
			}
			if r+1 < cfg.Rows {
				candidates = append(candidates, link{at(c, r), at(c, r+1)})
			}
			if c+1 < cfg.Cols && r+1 < cfg.Rows && rng.Float64() < cfg.DiagProb {
				if rng.Float64() < 0.5 {
					candidates = append(candidates, link{at(c, r), at(c+1, r+1)})
				} else {
					candidates = append(candidates, link{at(c+1, r), at(c, r+1)})
				}
			}
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})

	// Kruskal-style random spanning tree, always bidirectional.
	parent := make([]int, b.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	segments := 0
	target := int(cfg.SegmentsPerVertex * float64(b.NumVertices()))
	var extras []link
	for _, l := range candidates {
		ru, rv := find(int(l.u)), find(int(l.v))
		if ru != rv {
			parent[ru] = rv
			b.AddEdge(l.u, l.v)
			b.AddEdge(l.v, l.u)
			segments++
		} else {
			extras = append(extras, l)
		}
	}
	for _, l := range extras {
		if segments >= target {
			break
		}
		if b.HasEdge(l.u, l.v) || b.HasEdge(l.v, l.u) {
			continue
		}
		if rng.Float64() < cfg.OneWayProb {
			if rng.Float64() < 0.5 {
				b.AddEdge(l.u, l.v)
			} else {
				b.AddEdge(l.v, l.u)
			}
		} else {
			b.AddEdge(l.u, l.v)
			b.AddEdge(l.v, l.u)
		}
		segments++
	}
	return b.Build()
}
