package roadnet

import "math"

// EdgeIndex is a uniform-grid spatial index over edges, used by map
// matching to find candidate edges near a raw GPS point.
type EdgeIndex struct {
	g       *Graph
	grid    *Grid
	buckets [][]EdgeID
}

// NewEdgeIndex builds an index whose buckets are roughly cell meters wide.
func NewEdgeIndex(g *Graph, cell float64) *EdgeIndex {
	b := g.Bounds()
	nx := int((b.MaxX-b.MinX)/cell) + 1
	ny := int((b.MaxY-b.MinY)/cell) + 1
	grid := NewGridOver(b, nx, ny)
	ix := &EdgeIndex{g: g, grid: grid, buckets: make([][]EdgeID, grid.NumRegions())}
	for id := EdgeID(0); int(id) < g.NumEdges(); id++ {
		for _, r := range grid.CellsOfEdge(g, id) {
			ix.buckets[r] = append(ix.buckets[r], id)
		}
	}
	return ix
}

// Nearby returns edges whose buckets intersect the disk of the given radius
// around (x, y).  Callers filter by exact projection distance.
func (ix *EdgeIndex) Nearby(x, y, radius float64) []EdgeID {
	rect := Rect{MinX: x - radius, MinY: y - radius, MaxX: x + radius, MaxY: y + radius}
	var out []EdgeID
	seen := make(map[EdgeID]struct{})
	for _, r := range ix.grid.CellsInRect(rect) {
		for _, e := range ix.buckets[r] {
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			out = append(out, e)
		}
	}
	return out
}

// Project returns the point on edge e closest to (x, y): its network
// distance from the edge start and the Euclidean distance from (x, y) to it.
func (g *Graph) Project(e EdgeID, x, y float64) (ndist, dist float64) {
	edge := g.edges[e]
	a, b := g.vertices[edge.From], g.vertices[edge.To]
	dx, dy := b.X-a.X, b.Y-a.Y
	den := dx*dx + dy*dy
	t := 0.0
	if den > 0 {
		t = ((x-a.X)*dx + (y-a.Y)*dy) / den
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	px, py := a.X+dx*t, a.Y+dy*t
	return t * edge.Length, math.Hypot(x-px, y-py)
}

// NearestEdges returns up to k edges closest to (x, y) within radius,
// ordered by projection distance.
func (ix *EdgeIndex) NearestEdges(x, y, radius float64, k int) []Position {
	type cand struct {
		pos  Position
		dist float64
	}
	var cands []cand
	for _, e := range ix.Nearby(x, y, radius) {
		nd, d := ix.g.Project(e, x, y)
		if d <= radius {
			cands = append(cands, cand{Position{Edge: e, NDist: nd}, d})
		}
	}
	// Insertion sort: candidate lists are tiny.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Position, len(cands))
	for i, c := range cands {
		out[i] = c.pos
	}
	return out
}
