package pddp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"utcq/internal/bitio"
)

func TestNewCodecBounds(t *testing.T) {
	for _, eta := range []float64{0, -1, 0.6, 1} {
		if _, err := NewCodec(eta); err == nil {
			t.Errorf("NewCodec(%g) accepted invalid bound", eta)
		}
	}
	c := MustCodec(1.0 / 128)
	if c.MaxLen() != 7 {
		t.Errorf("Imax for 1/128 = %d, want 7", c.MaxLen())
	}
	c = MustCodec(1.0 / 2048)
	if c.MaxLen() != 11 {
		t.Errorf("Imax for 1/2048 = %d, want 11", c.MaxLen())
	}
}

// TestExactValuesShortCodes verifies dyadic rationals encode exactly and
// with their natural lengths (the paper's running example uses 0.875, 0.5,
// 0.25, 0: all exact).
func TestExactValuesShortCodes(t *testing.T) {
	c := MustCodec(1.0 / 128)
	cases := []struct {
		v      float64
		length int
	}{
		{0, 0},
		{0.5, 1},
		{0.25, 2},
		{0.75, 2},
		{0.875, 3},
	}
	for _, tc := range cases {
		bits, length := c.code(tc.v)
		if length != tc.length {
			t.Errorf("code(%g) length = %d, want %d", tc.v, length, tc.length)
		}
		got := float64(bits) * math.Pow(2, -float64(length))
		if got != tc.v {
			t.Errorf("code(%g) decodes to %g", tc.v, got)
		}
	}
}

func TestErrorBound(t *testing.T) {
	for _, eta := range []float64{1.0 / 8, 1.0 / 32, 1.0 / 128, 1.0 / 2048} {
		c := MustCodec(eta)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			v := rng.Float64()
			q := c.Quantize(v)
			if diff := v - q; diff < 0 || diff > eta {
				t.Fatalf("eta=%g: |%g - %g| = %g out of bound", eta, v, q, diff)
			}
		}
		// Boundary values.
		for _, v := range []float64{0, 1, 0.999999, eta, 1 - eta} {
			q := c.Quantize(v)
			if math.Abs(v-q) > eta {
				t.Errorf("eta=%g: quantize(%g) = %g exceeds bound", eta, v, q)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := MustCodec(1.0 / 512)
	vals := []float64{0, 0.875, 0.3, 0.5, 0.1234, 0.9999, 1.0}
	w := bitio.NewWriter(0)
	for _, v := range vals {
		c.Encode(w, v)
	}
	r := bitio.NewReaderBits(w.Bytes(), w.Len())
	for _, v := range vals {
		got, err := c.Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if want := c.Quantize(v); got != want {
			t.Errorf("decode(%g) = %g, want quantized %g", v, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bits left over", r.Remaining())
	}
}

func TestBitsForMatchesEncode(t *testing.T) {
	c := MustCodec(1.0 / 128)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := rng.Float64()
		w := bitio.NewWriter(0)
		c.Encode(w, v)
		if got := c.BitsFor(v); got != w.Len() {
			t.Fatalf("BitsFor(%g) = %d, encoded %d", v, got, w.Len())
		}
	}
}

func TestQuickDecodeMatchesQuantize(t *testing.T) {
	c := MustCodec(1.0 / 1024)
	f := func(u uint32) bool {
		v := float64(u) / float64(math.MaxUint32)
		w := bitio.NewWriter(0)
		c.Encode(w, v)
		r := bitio.NewReaderBits(w.Bytes(), w.Len())
		got, err := c.Decode(r)
		return err == nil && got == c.Quantize(v) && v-got >= 0 && v-got <= c.Eta()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMinimality checks the paper's rule: I is the SMALLEST number of bits
// within the bound, so halving the bound can only lengthen codes.
func TestMinimality(t *testing.T) {
	loose := MustCodec(1.0 / 16)
	tight := MustCodec(1.0 / 256)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := rng.Float64()
		_, ll := loose.code(v)
		_, lt := tight.code(v)
		if ll > lt {
			t.Fatalf("loose code longer than tight for %g: %d > %d", v, ll, lt)
		}
	}
}

func TestTree(t *testing.T) {
	c := MustCodec(1.0 / 128)
	tree := NewTree()
	// The running example's distances: many repeats -> few distinct codes.
	for _, v := range []float64{0.875, 0.25, 0.5, 0.875, 0.5, 0, 0.875, 0.5, 0.25} {
		tree.InsertValue(c, v)
	}
	if tree.Inserted() != 9 {
		t.Errorf("Inserted = %d, want 9", tree.Inserted())
	}
	if got := tree.DistinctCodes(); got != 4 {
		t.Errorf("DistinctCodes = %d, want 4 (0.875, 0.25, 0.5, 0)", got)
	}
	// 0.875=111, 0.25=01, 0.5=1, 0=ε share prefixes: nodes for 1,11,111,0,01.
	if got := tree.Nodes(); got != 5 {
		t.Errorf("Nodes = %d, want 5", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	c := MustCodec(1.0 / 128)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(vals) * 10)
		for _, v := range vals {
			c.Encode(w, v)
		}
	}
}
