// Package pddp implements the error-bounded encoding of relative distances
// and probabilities that UTCQ inherits from TED (the "PDDP-tree", the only
// lossy component of the framework).
//
// A value v ∈ [0,1) is encoded as the shortest binary fraction
// C(v) = Σ_{i=1..I} b_i · 2^{-i} with v − C(v) ≤ η, where η is the
// pre-set error bound (ηD for relative distances, ηp for probabilities).
// The wire format is a ⌈log2(Imax+1)⌉-bit length prefix followed by the I
// fraction bits; Tree provides the prefix-sharing structure used for
// distinct-code accounting (see DESIGN.md for the substitution note).
package pddp

import (
	"fmt"
	"math"

	"utcq/internal/bitio"
)

// Codec encodes values of [0,1] with a fixed error bound.
type Codec struct {
	eta     float64
	imax    int // maximum fraction length; 2^-imax <= eta
	lenBits int // width of the length prefix

	// Precomputed 2^-i for i in [0, imax] and 2^imax, filled with the same
	// math.Pow calls the hot loops used to make: the products are
	// bit-identical, only the per-value Pow cost is gone.
	pow2neg []float64
	scale   float64
}

// NewCodec returns a codec with error bound eta ∈ (0, 0.5].
func NewCodec(eta float64) (*Codec, error) {
	if !(eta > 0 && eta <= 0.5) {
		return nil, fmt.Errorf("pddp: error bound %g outside (0, 0.5]", eta)
	}
	imax := 1
	for math.Pow(2, -float64(imax)) > eta {
		imax++
		if imax > 52 {
			return nil, fmt.Errorf("pddp: error bound %g too small", eta)
		}
	}
	c := &Codec{eta: eta, imax: imax, lenBits: bitio.WidthFor(imax)}
	c.pow2neg = make([]float64, imax+1)
	for i := 0; i <= imax; i++ {
		c.pow2neg[i] = math.Pow(2, -float64(i))
	}
	c.scale = math.Pow(2, float64(imax))
	return c, nil
}

// MustCodec is NewCodec that panics on error; for tests and constants.
func MustCodec(eta float64) *Codec {
	c, err := NewCodec(eta)
	if err != nil {
		panic(err)
	}
	return c
}

// Eta returns the codec's error bound.
func (c *Codec) Eta() float64 { return c.eta }

// MaxLen returns the maximum fraction length Imax.
func (c *Codec) MaxLen() int { return c.imax }

// code returns the fraction bits and length for v: the shortest truncated
// binary fraction C with 0 <= v - C <= eta.
func (c *Codec) code(v float64) (bits uint64, length int) {
	if v < 0 {
		v = 0
	}
	if v >= 1 {
		// All-ones code of maximal length: 1 - 2^-Imax, within eta of 1.
		return (1 << uint(c.imax)) - 1, c.imax
	}
	full := uint64(v * c.scale) // floor(v * 2^Imax)
	for length := 0; length < c.imax; length++ {
		cand := full >> uint(c.imax-length)
		cv := float64(cand) * c.pow2neg[length]
		if v-cv <= c.eta {
			return cand, length
		}
	}
	return full, c.imax
}

// BitsFor returns the total encoded size of v in bits (prefix + fraction).
func (c *Codec) BitsFor(v float64) int {
	_, length := c.code(v)
	return c.lenBits + length
}

// Encode appends the code of v to w.
func (c *Codec) Encode(w *bitio.Writer, v float64) {
	bits, length := c.code(v)
	w.WriteBits(uint64(length), c.lenBits)
	w.WriteBits(bits, length)
}

// Decode reads one code from r.
func (c *Codec) Decode(r *bitio.Reader) (float64, error) {
	length, err := r.ReadBits(c.lenBits)
	if err != nil {
		return 0, err
	}
	if int(length) > c.imax {
		return 0, fmt.Errorf("pddp: code length %d exceeds Imax %d", length, c.imax)
	}
	bits, err := r.ReadBits(int(length))
	if err != nil {
		return 0, err
	}
	return float64(bits) * c.pow2neg[length], nil
}

// Quantize returns the value a round trip through the codec produces.
func (c *Codec) Quantize(v float64) float64 {
	bits, length := c.code(v)
	return float64(bits) * c.pow2neg[length]
}

// Tree is the prefix-sharing structure over emitted codes (the "PDDP-tree").
// Each distinct code is a root-to-node path; shared prefixes share nodes.
type Tree struct {
	root     *treeNode
	inserted int
}

type treeNode struct {
	child [2]*treeNode
	leaf  bool
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{root: &treeNode{}} }

// Insert records one code of the given bit length.
func (t *Tree) Insert(code uint64, length int) {
	n := t.root
	for i := length - 1; i >= 0; i-- {
		b := (code >> uint(i)) & 1
		if n.child[b] == nil {
			n.child[b] = &treeNode{}
		}
		n = n.child[b]
	}
	n.leaf = true
	t.inserted++
}

// InsertValue quantizes v with codec c and records its code.
func (t *Tree) InsertValue(c *Codec, v float64) {
	bits, length := c.code(v)
	t.Insert(bits, length)
}

// Inserted returns the total number of Insert calls.
func (t *Tree) Inserted() int { return t.inserted }

// DistinctCodes returns the number of distinct codes inserted.
func (t *Tree) DistinctCodes() int { return countLeaves(t.root) }

// Nodes returns the number of trie nodes (excluding the root), a measure of
// the prefix sharing achieved.
func (t *Tree) Nodes() int { return countNodes(t.root) - 1 }

func countLeaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.leaf {
		c = 1
	}
	return c + countLeaves(n.child[0]) + countLeaves(n.child[1])
}

func countNodes(n *treeNode) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.child[0]) + countNodes(n.child[1])
}
