package ted

import (
	"math"
	"reflect"
	"testing"

	"utcq/internal/bitio"
	"utcq/internal/gen"
	"utcq/internal/paperfix"
	"utcq/internal/traj"
)

// TestTimeBreakpointsPaper reproduces Section 2.2: the running example's
// time sequence is stored as pairs at indices 0,1,2,3,4,6.
func TestTimeBreakpointsPaper(t *testing.T) {
	fx := paperfix.MustNew()
	got := timeBreakpoints(fx.Tu1.T)
	want := []int{0, 1, 2, 3, 4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("breakpoints = %v, want %v", got, want)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	cases := [][]int64{
		{100},
		{100, 110},
		{100, 110, 120, 130},                    // one run
		{100, 110, 121, 130, 140},               // changes
		{0, 1, 2, 4, 8, 16, 17, 18},             // growing gaps
		{500, 740, 981, 1221, 1460, 1700, 1940}, // the paper's shape
	}
	for _, T := range cases {
		w := bitio.NewWriter(0)
		if _, err := encodeTime(w, T); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReaderBits(w.Bytes(), w.Len())
		got, err := decodeTime(r, len(T))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, T) {
			t.Errorf("round trip of %v gave %v", T, got)
		}
	}
}

// TestTimeSchemeDegradesWithJitter verifies the paper's motivation: TED
// stores nearly one pair per point when intervals change constantly.
func TestTimeSchemeDegradesWithJitter(t *testing.T) {
	stable := make([]int64, 50)
	jittery := make([]int64, 50)
	for i := range stable {
		stable[i] = int64(i) * 10
		jittery[i] = int64(i)*10 + int64(i%2) // alternating 11,9,11,9 intervals
	}
	if n := len(timeBreakpoints(stable)); n != 2 {
		t.Errorf("stable sequence stored %d pairs, want 2", n)
	}
	if n := len(timeBreakpoints(jittery)); n < 40 {
		t.Errorf("jittery sequence stored only %d pairs", n)
	}
}

func TestPairRandomAccess(t *testing.T) {
	fx := paperfix.MustNew()
	c, err := NewCompressor(fx.Graph, DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	rec := a.Trajs[0]
	if rec.NumPairs != 6 {
		t.Fatalf("NumPairs = %d, want 6", rec.NumPairs)
	}
	wantNos := []int{0, 1, 2, 3, 4, 6}
	for k, wantNo := range wantNos {
		no, pt, err := rec.PairAt(k)
		if err != nil {
			t.Fatal(err)
		}
		if no != wantNo || pt != fx.Tu1.T[wantNo] {
			t.Errorf("pair %d = (%d, %d), want (%d, %d)", k, no, pt, wantNo, fx.Tu1.T[wantNo])
		}
	}
	// Binary search: 5:21:25 falls between pairs (4, ...) and (6, ...).
	_, no, pt, ok := rec.FindPairLE(5*3600 + 21*60 + 25)
	if !ok || no != 4 || pt != fx.Tu1.T[4] {
		t.Errorf("FindPairLE = (%d, %d, %v)", no, pt, ok)
	}
	if _, _, _, ok := rec.FindPairLE(0); ok {
		t.Error("FindPairLE before start should fail")
	}
}

func TestCompressDecodePaperExample(t *testing.T) {
	fx := paperfix.MustNew()
	c, err := NewCompressor(fx.Graph, DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	u := got[0]
	if !reflect.DeepEqual(u.T, fx.Tu1.T) {
		t.Errorf("T = %v", u.T)
	}
	for i := range fx.Tu1.Instances {
		want, gi := &fx.Tu1.Instances[i], &u.Instances[i]
		if gi.SV != want.SV || !reflect.DeepEqual(gi.E, want.E) || !reflect.DeepEqual(gi.TF, want.TF) {
			t.Errorf("instance %d: lossless parts differ: E=%v TF=%v", i, gi.E, gi.TF)
		}
		for k := range want.D {
			if d := want.D[k] - gi.D[k]; d < 0 || d > a.Opts.EtaD {
				t.Errorf("instance %d point %d: D error %g", i, k, d)
			}
		}
		if d := math.Abs(want.P - gi.P); d > a.Opts.EtaP {
			t.Errorf("instance %d: P error %g", i, d)
		}
	}
}

func TestCompressGeneratedDataset(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompressor(ds.Graph, DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for j, u := range got {
		want := ds.Trajectories[j]
		if !reflect.DeepEqual(u.T, want.T) {
			t.Fatalf("traj %d: T differs", j)
		}
		for i := range want.Instances {
			w, g := &want.Instances[i], &u.Instances[i]
			if w.SV != g.SV || !reflect.DeepEqual(w.E, g.E) || !reflect.DeepEqual(w.TF, g.TF) {
				t.Fatalf("traj %d inst %d: lossless parts differ", j, i)
			}
		}
	}
	// T' must be stored verbatim: compression ratio exactly 1 (Table 8).
	if r := a.Stats.RatioTF(); math.Abs(r-1) > 1e-9 {
		t.Errorf("TED T' ratio = %g, want 1", r)
	}
	if a.Stats.TotalRatio() <= 1 {
		t.Errorf("TED total ratio = %g", a.Stats.TotalRatio())
	}
}

// TestMatrixCompressionHelps: grouped similar rows must encode smaller
// than raw fixed-width codes.
func TestMatrixCompressionHelps(t *testing.T) {
	g := &EGroup{B: 24}
	base := []byte{0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0}
	for i := 0; i < 40; i++ {
		row := make([]byte, 24)
		copy(row, base)
		row[i%24] ^= 1 // one flipped bit per row
		g.Rows = append(g.Rows, row)
	}
	g.compress()
	w := bitio.NewWriter(0)
	g.write(w)
	raw := 40 * 24
	if w.Len() >= raw {
		t.Errorf("matrix encoding %d bits >= raw %d", w.Len(), raw)
	}
	// And it must round trip.
	r := bitio.NewReaderBits(w.Bytes(), w.Len())
	b, rows, err := readGroup(r)
	if err != nil {
		t.Fatal(err)
	}
	if b != 24 || len(rows) != 40 {
		t.Fatalf("decoded group %dx%d", len(rows), b)
	}
	for i := 0; i < 40; i++ {
		row := make([]byte, 24)
		copy(row, base)
		row[i%24] ^= 1
		if !reflect.DeepEqual(rows[i], row) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}
