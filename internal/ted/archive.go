package ted

import (
	"fmt"

	"utcq/internal/bitio"
	"utcq/internal/core"
	"utcq/internal/pddp"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// Options are TED's compression parameters (the same error bounds as UTCQ;
// TED has no pivots).
type Options struct {
	EtaD float64
	EtaP float64
	Ts   int64
}

// DefaultOptions mirrors the paper's defaults.
func DefaultOptions(ts int64) Options {
	return Options{EtaD: 1.0 / 128, EtaP: 1.0 / 512, Ts: ts}
}

// InstMeta is the per-instance directory entry.
type InstMeta struct {
	Start    int // bit offset of the instance record in the trajectory stream
	GroupIdx int // E matrix group
	RowIdx   int // row within the group
	ECount   int
	P        float64
	SV       roadnet.VertexID
}

// TrajRecord is one compressed trajectory: the time section plus one
// record per instance (T', D, p); edge sequences live in the global
// matrix groups.
type TrajRecord struct {
	Bits      []byte
	BitLen    int
	NumPoints int
	NumPairs  int
	PairStart int // bit offset of the first fixed-width (no, t) pair
	Insts     []InstMeta
}

// Reader returns a bit reader positioned at pos.
func (tr *TrajRecord) Reader(pos int) (*bitio.Reader, error) {
	r := bitio.NewReaderBits(tr.Bits, tr.BitLen)
	if err := r.Seek(pos); err != nil {
		return nil, err
	}
	return r, nil
}

// PairAt random-accesses the k-th stored time pair (fixed-width layout).
func (tr *TrajRecord) PairAt(k int) (no int, t int64, err error) {
	if k < 0 || k >= tr.NumPairs {
		return 0, 0, fmt.Errorf("ted: pair %d outside %d", k, tr.NumPairs)
	}
	r, err := tr.Reader(tr.PairStart + k*PairBits)
	if err != nil {
		return 0, 0, err
	}
	nov, err := r.ReadBits(pairNoBits)
	if err != nil {
		return 0, 0, err
	}
	tv, err := r.ReadBits(pairTBits)
	if err != nil {
		return 0, 0, err
	}
	return int(nov), int64(tv), nil
}

// FindPairLE binary searches the stored pairs for the last one with
// timestamp <= t; ok is false when t precedes the trajectory.
func (tr *TrajRecord) FindPairLE(t int64) (k, no int, pt int64, ok bool) {
	lo, hi := 0, tr.NumPairs-1
	found := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		_, mt, err := tr.PairAt(mid)
		if err != nil {
			return 0, 0, 0, false
		}
		if mt <= t {
			found = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if found < 0 {
		return 0, 0, 0, false
	}
	no, pt, err := func() (int, int64, error) {
		n, p, e := tr.PairAt(found)
		return n, p, e
	}()
	if err != nil {
		return 0, 0, 0, false
	}
	return found, no, pt, true
}

// Archive is a TED-compressed dataset.
type Archive struct {
	Opts       Options
	Graph      *roadnet.Graph
	VertexBits int
	EdgeBits   int
	DCodec     *pddp.Codec
	PCodec     *pddp.Codec

	// EBits holds the serialized matrix groups.
	EBits   []byte
	EBitLen int

	Trajs []*TrajRecord
	Stats core.CompStats

	// groupPos holds each group's bit offset in EBits; groupRows caches
	// decoded matrix rows per group.
	groupPos  []int
	groupRows [][][]byte
}

// Compressor carries per-network encoding state.
type Compressor struct {
	g          *roadnet.Graph
	opts       Options
	vertexBits int
	edgeBits   int
	dCodec     *pddp.Codec
	pCodec     *pddp.Codec
}

// NewCompressor validates the options.
func NewCompressor(g *roadnet.Graph, opts Options) (*Compressor, error) {
	if opts.Ts < 1 {
		return nil, fmt.Errorf("ted: default sample interval %d < 1", opts.Ts)
	}
	dc, err := pddp.NewCodec(opts.EtaD)
	if err != nil {
		return nil, fmt.Errorf("ted: EtaD: %w", err)
	}
	pc, err := pddp.NewCodec(opts.EtaP)
	if err != nil {
		return nil, fmt.Errorf("ted: EtaP: %w", err)
	}
	return &Compressor{
		g:          g,
		opts:       opts,
		vertexBits: bitio.WidthFor(g.NumVertices() - 1),
		edgeBits:   bitio.WidthFor(g.MaxOutDegree()),
		dCodec:     dc,
		pCodec:     pc,
	}, nil
}

// Compress encodes a dataset.  Unlike UTCQ's one-trajectory-at-a-time
// pipeline, TED first materializes the edge codes of every instance into
// length groups (the memory cost the paper reports), then optimizes each
// group's bases (the time cost).
func (c *Compressor) Compress(tus []*traj.Uncertain) (*Archive, error) {
	a := &Archive{
		Opts:       c.opts,
		Graph:      c.g,
		VertexBits: c.vertexBits,
		EdgeBits:   c.edgeBits,
		DCodec:     c.dCodec,
		PCodec:     c.pCodec,
	}
	groupByLen := make(map[int]int) // code length -> group index
	var groups []*EGroup

	for _, u := range tus {
		rec, err := c.compressTraj(a, u, &groups, groupByLen)
		if err != nil {
			return nil, err
		}
		a.Trajs = append(a.Trajs, rec)
	}

	// Phase 2: matrix compression per group.
	ew := bitio.NewWriter(1 << 16)
	ew.WriteCount(len(groups))
	for _, g := range groups {
		g.compress()
		g.write(ew)
		g.Rows = nil // rows now live in the encoded form
	}
	a.EBits = ew.Bytes()
	a.EBitLen = ew.Len()
	a.Stats.Comp.E += int64(ew.Len())
	return a, nil
}

func (c *Compressor) compressTraj(a *Archive, u *traj.Uncertain, groups *[]*EGroup, groupByLen map[int]int) (*TrajRecord, error) {
	stats := &a.Stats
	stats.Raw.Add(u.RawBits())
	stats.NumTrajectories++
	stats.NumInstances += len(u.Instances)
	stats.NumReferences += len(u.Instances) // every instance stands alone

	w := bitio.NewWriter(256)
	rec := &TrajRecord{NumPoints: len(u.T), Insts: make([]InstMeta, len(u.Instances))}

	mark := w.Len()
	np, err := encodeTime(w, u.T)
	if err != nil {
		return nil, err
	}
	rec.NumPairs = np
	rec.PairStart = w.Len() - np*PairBits
	stats.Comp.T += int64(w.Len() - mark)

	for i := range u.Instances {
		ins := &u.Instances[i]
		meta := &rec.Insts[i]
		meta.Start = w.Len()
		meta.ECount = len(ins.E)
		meta.SV = ins.SV
		meta.P = c.pCodec.Quantize(ins.P)

		mark = w.Len()
		c.pCodec.Encode(w, ins.P)
		stats.Comp.P += int64(w.Len() - mark)

		mark = w.Len()
		w.WriteBits(uint64(ins.SV), c.vertexBits)
		w.WriteCount(len(ins.E))
		stats.Comp.E += int64(w.Len() - mark)

		mark = w.Len()
		for _, b := range ins.TF {
			w.WriteBool(b)
		}
		stats.Comp.TF += int64(w.Len() - mark)

		mark = w.Len()
		for _, rd := range ins.D {
			c.dCodec.Encode(w, rd)
		}
		stats.Comp.D += int64(w.Len() - mark)

		// Edge numbers into the length-grouped matrices.
		codeLen := len(ins.E) * c.edgeBits
		gi, ok := groupByLen[codeLen]
		if !ok {
			gi = len(*groups)
			groupByLen[codeLen] = gi
			*groups = append(*groups, &EGroup{B: codeLen})
		}
		g := (*groups)[gi]
		row := make([]byte, codeLen)
		for k, no := range ins.E {
			for b := 0; b < c.edgeBits; b++ {
				if no>>(uint(c.edgeBits-1-b))&1 == 1 {
					row[k*c.edgeBits+b] = 1
				}
			}
		}
		meta.GroupIdx = gi
		meta.RowIdx = len(g.Rows)
		g.Rows = append(g.Rows, row)
	}

	rec.Bits = w.Bytes()
	rec.BitLen = w.Len()
	return rec, nil
}
