package ted

import (
	"fmt"

	"utcq/internal/bitio"
)

// EGroup is one length group of TED's edge-sequence compression: all edge
// sequences whose binary code has the same length B, stacked into an A×B
// bit matrix and compressed against a set of base vectors.
type EGroup struct {
	B     int      // code length in bits
	Rows  [][]byte // unpacked bit matrix (one byte per bit), freed after Compress
	Bases [][]byte
	// Encoded rows: base index + differing bit positions.
	RowBase  []int
	RowDiffs [][]int
}

// clusterIters is the number of refinement iterations per candidate count.
const clusterIters = 30

// clusterRestarts is the number of seedings tried per candidate count.
const clusterRestarts = 3

// baseCandidates returns the base counts tried for a group of a rows:
// every count up to a cap that grows with the matrix (larger matrices
// warrant more bases).  The resulting exhaustive optimizer cost grows
// superlinearly in the dataset size — the compression-time behaviour the
// paper reports for TED (Fig 12b).
func baseCandidates(a int) []int {
	cap := a / 24
	if cap < 6 {
		cap = 6
	}
	if cap > 48 {
		cap = 48
	}
	out := make([]int, cap)
	for k := 1; k <= cap; k++ {
		out[k-1] = k
	}
	return out
}

// compress searches for the base set minimizing the encoded size: for each
// candidate base count it runs majority-vector refinement (assign rows to
// the nearest base, recompute each base as the per-column majority of its
// rows) and keeps the cheapest outcome.  This search over the full matrix
// is TED's dominant compression cost.
func (g *EGroup) compress() {
	a := len(g.Rows)
	if a == 0 {
		return
	}
	bestBits := int64(-1)
	for _, k := range baseCandidates(a) {
		if k > a {
			k = a
		}
		for restart := 0; restart < clusterRestarts; restart++ {
			bases, rowBase, rowDiffs := clusterRows(g.Rows, g.B, k, restart)
			bits := g.encodedBits(bases, rowDiffs)
			if bestBits < 0 || bits < bestBits {
				bestBits = bits
				g.Bases, g.RowBase, g.RowDiffs = bases, rowBase, rowDiffs
			}
		}
		if k == a {
			break
		}
	}
}

// clusterRows is one k-majority clustering run; restart offsets the seeds.
func clusterRows(rows [][]byte, b, k, restart int) (bases [][]byte, rowBase []int, rowDiffs [][]int) {
	a := len(rows)
	bases = make([][]byte, 0, k)
	// Seed bases with evenly spaced rows (shifted per restart).
	for i := 0; i < k; i++ {
		seed := rows[(i*a/k+restart*a/(2*k+1))%a]
		base := make([]byte, b)
		copy(base, seed)
		bases = append(bases, base)
	}
	rowBase = make([]int, a)
	for iter := 0; iter < clusterIters; iter++ {
		changed := false
		// Assignment step: nearest base by Hamming distance (full scan —
		// the matrix operation the paper attributes TED's cost to).
		for i, row := range rows {
			best, bestDist := 0, b+1
			for bi, base := range bases {
				d := 0
				for c := 0; c < b; c++ {
					if row[c] != base[c] {
						d++
					}
				}
				if d < bestDist {
					best, bestDist = bi, d
				}
			}
			if rowBase[i] != best {
				rowBase[i] = best
				changed = true
			}
		}
		// Update step: per-column majority of each cluster.
		counts := make([][]int, len(bases))
		sizes := make([]int, len(bases))
		for bi := range bases {
			counts[bi] = make([]int, b)
		}
		for i, row := range rows {
			bi := rowBase[i]
			sizes[bi]++
			for c := 0; c < b; c++ {
				if row[c] == 1 {
					counts[bi][c]++
				}
			}
		}
		for bi := range bases {
			if sizes[bi] == 0 {
				continue
			}
			for c := 0; c < b; c++ {
				if counts[bi][c]*2 >= sizes[bi] {
					bases[bi][c] = 1
				} else {
					bases[bi][c] = 0
				}
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Final diffs.
	rowDiffs = make([][]int, a)
	for i, row := range rows {
		base := bases[rowBase[i]]
		var diffs []int
		for c := 0; c < b; c++ {
			if row[c] != base[c] {
				diffs = append(diffs, c)
			}
		}
		rowDiffs[i] = diffs
	}
	return bases, rowBase, rowDiffs
}

// encodedBits estimates the group's encoded size for a candidate solution.
func (g *EGroup) encodedBits(bases [][]byte, rowDiffs [][]int) int64 {
	posBits := bitio.WidthFor(g.B - 1)
	baseBits := bitio.WidthFor(len(bases) - 1)
	total := int64(len(bases) * g.B)
	for _, diffs := range rowDiffs {
		total += int64(baseBits) + int64(gammaBits(len(diffs))) + int64(len(diffs)*posBits)
	}
	return total
}

// gammaBits is the Elias-gamma length of v+1.
func gammaBits(v int) int {
	n := 0
	for x := uint64(v) + 1; x > 0; x >>= 1 {
		n++
	}
	return 2*n - 1
}

// write serializes the group: header (B, A, base count, bases) then rows.
func (g *EGroup) write(w *bitio.Writer) {
	w.WriteCount(g.B)
	w.WriteCount(len(g.RowBase))
	w.WriteCount(len(g.Bases))
	for _, base := range g.Bases {
		for _, bit := range base {
			w.WriteBit(uint(bit))
		}
	}
	posBits := bitio.WidthFor(g.B - 1)
	baseBits := bitio.WidthFor(len(g.Bases) - 1)
	for i := range g.RowBase {
		w.WriteBits(uint64(g.RowBase[i]), baseBits)
		w.WriteCount(len(g.RowDiffs[i]))
		for _, pos := range g.RowDiffs[i] {
			w.WriteBits(uint64(pos), posBits)
		}
	}
}

// readGroup deserializes a group into decoded row bits.
func readGroup(r *bitio.Reader) (b int, rows [][]byte, err error) {
	b, err = r.ReadCount()
	if err != nil {
		return 0, nil, err
	}
	a, err := r.ReadCount()
	if err != nil {
		return 0, nil, err
	}
	nb, err := r.ReadCount()
	if err != nil {
		return 0, nil, err
	}
	bases := make([][]byte, nb)
	for i := range bases {
		bases[i] = make([]byte, b)
		for c := 0; c < b; c++ {
			bit, err := r.ReadBit()
			if err != nil {
				return 0, nil, err
			}
			bases[i][c] = byte(bit)
		}
	}
	posBits := bitio.WidthFor(b - 1)
	baseBits := bitio.WidthFor(nb - 1)
	rows = make([][]byte, a)
	for i := 0; i < a; i++ {
		bi, err := r.ReadBits(baseBits)
		if err != nil {
			return 0, nil, err
		}
		if int(bi) >= nb {
			return 0, nil, fmt.Errorf("ted: base index %d out of range", bi)
		}
		row := make([]byte, b)
		copy(row, bases[bi])
		nd, err := r.ReadCount()
		if err != nil {
			return 0, nil, err
		}
		for d := 0; d < nd; d++ {
			pos, err := r.ReadBits(posBits)
			if err != nil {
				return 0, nil, err
			}
			if int(pos) >= b {
				return 0, nil, fmt.Errorf("ted: diff position %d out of range", pos)
			}
			row[pos] ^= 1
		}
		rows[i] = row
	}
	return b, rows, nil
}
