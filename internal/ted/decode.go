package ted

import (
	"fmt"

	"utcq/internal/bitio"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// scanGroups locates every group's bit offset in EBits.
func (a *Archive) scanGroups() error {
	if a.groupPos != nil {
		return nil
	}
	r := bitio.NewReaderBits(a.EBits, a.EBitLen)
	ng, err := r.ReadCount()
	if err != nil {
		return err
	}
	a.groupPos = make([]int, ng)
	a.groupRows = make([][][]byte, ng)
	for g := 0; g < ng; g++ {
		a.groupPos[g] = r.Pos()
		if _, _, err := readGroup(r); err != nil {
			return fmt.Errorf("ted: group %d: %w", g, err)
		}
	}
	return nil
}

// decodeGroup decodes the rows of one matrix group.  With cache enabled the
// rows are kept; otherwise every call re-decodes them — the cost of reading
// a single instance out of TED's jointly compressed matrices.
func (a *Archive) decodeGroup(gi int, cache bool) ([][]byte, error) {
	if err := a.scanGroups(); err != nil {
		return nil, err
	}
	if gi < 0 || gi >= len(a.groupPos) {
		return nil, fmt.Errorf("ted: group %d out of range", gi)
	}
	if rows := a.groupRows[gi]; rows != nil {
		return rows, nil
	}
	r := bitio.NewReaderBits(a.EBits, a.EBitLen)
	if err := r.Seek(a.groupPos[gi]); err != nil {
		return nil, err
	}
	_, rows, err := readGroup(r)
	if err != nil {
		return nil, err
	}
	if cache {
		a.groupRows[gi] = rows
	}
	return rows, nil
}

// InstanceE reconstructs the edge-number sequence of an instance from its
// matrix row.
func (a *Archive) InstanceE(meta InstMeta) ([]uint16, error) {
	return a.instanceE(meta, true)
}

// InstanceENoCache re-decodes the instance's group every call.
func (a *Archive) InstanceENoCache(meta InstMeta) ([]uint16, error) {
	return a.instanceE(meta, false)
}

func (a *Archive) instanceE(meta InstMeta, cache bool) ([]uint16, error) {
	rows, err := a.decodeGroup(meta.GroupIdx, cache)
	if err != nil {
		return nil, err
	}
	if meta.RowIdx >= len(rows) {
		return nil, fmt.Errorf("ted: row (%d, %d) out of range", meta.GroupIdx, meta.RowIdx)
	}
	row := rows[meta.RowIdx]
	out := make([]uint16, meta.ECount)
	for k := range out {
		var v uint16
		for b := 0; b < a.EdgeBits; b++ {
			v = v<<1 | uint16(row[k*a.EdgeBits+b])
		}
		out[k] = v
	}
	return out, nil
}

// DecodeInstance fully decompresses one instance of one trajectory.
func (a *Archive) DecodeInstance(j, i int) (*traj.Instance, error) {
	ins, err := a.decodeInstanceParts(j, i)
	if err != nil {
		return nil, err
	}
	ins.E, err = a.InstanceE(a.Trajs[j].Insts[i])
	return ins, err
}

// decodeInstanceParts decodes everything except the edge sequence.
func (a *Archive) decodeInstanceParts(j, i int) (*traj.Instance, error) {
	rec := a.Trajs[j]
	meta := rec.Insts[i]
	r, err := rec.Reader(meta.Start)
	if err != nil {
		return nil, err
	}
	p, err := a.PCodec.Decode(r)
	if err != nil {
		return nil, err
	}
	sv, err := r.ReadBits(a.VertexBits)
	if err != nil {
		return nil, err
	}
	eCount, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	ins := &traj.Instance{SV: roadnet.VertexID(sv), P: p}
	ins.TF = make([]bool, eCount)
	for k := range ins.TF {
		b, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		ins.TF[k] = b
	}
	ins.D = make([]float64, rec.NumPoints)
	for k := range ins.D {
		d, err := a.DCodec.Decode(r)
		if err != nil {
			return nil, err
		}
		ins.D[k] = d
	}
	return ins, nil
}

// DecodeInstanceNoCache decodes one instance, re-reading its matrix group
// (per-query decompression cost).
func (a *Archive) DecodeInstanceNoCache(j, i int) (*traj.Instance, error) {
	ins, err := a.decodeInstanceParts(j, i)
	if err != nil {
		return nil, err
	}
	ins.E, err = a.InstanceENoCache(a.Trajs[j].Insts[i])
	return ins, err
}

// DecodeTime fully decodes one trajectory's time sequence.
func (a *Archive) DecodeTime(j int) ([]int64, error) {
	rec := a.Trajs[j]
	r, err := rec.Reader(0)
	if err != nil {
		return nil, err
	}
	return decodeTime(r, rec.NumPoints)
}

// DecodeTrajectory fully decompresses one trajectory.
func (a *Archive) DecodeTrajectory(j int) (*traj.Uncertain, error) {
	T, err := a.DecodeTime(j)
	if err != nil {
		return nil, err
	}
	rec := a.Trajs[j]
	u := &traj.Uncertain{T: T, Instances: make([]traj.Instance, len(rec.Insts))}
	for i := range rec.Insts {
		ins, err := a.DecodeInstance(j, i)
		if err != nil {
			return nil, err
		}
		u.Instances[i] = *ins
	}
	return u, nil
}

// DecodeAll fully decompresses the archive.
func (a *Archive) DecodeAll() ([]*traj.Uncertain, error) {
	out := make([]*traj.Uncertain, len(a.Trajs))
	for j := range a.Trajs {
		u, err := a.DecodeTrajectory(j)
		if err != nil {
			return nil, fmt.Errorf("ted: trajectory %d: %w", j, err)
		}
		out[j] = u
	}
	return out, nil
}
