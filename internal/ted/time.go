// Package ted implements the TED baseline (Yang et al., TKDE 2017) adapted
// to uncertain trajectories exactly as the paper's evaluation does: every
// trajectory instance is compressed independently; probabilities use the
// same PDDP encoding as UTCQ.  TED's pieces:
//
//   - time sequences as (no, t) pairs at sample-interval breakpoints, with
//     arithmetic runs elided (Section 2.2),
//   - edge sequences as fixed-width outgoing-edge-number codes, grouped by
//     code length into A×B bit matrices and compressed with multiple
//     bases (Section 2.3),
//   - time-flag bit-strings stored verbatim (the bitmap-compression step is
//     omitted by the paper's comparison, giving TED's T' ratio of 1),
//   - relative distances and probabilities through the PDDP codec.
//
// The implementation deliberately materializes every edge-code row before
// matrix compression — TED's documented memory and compression-time
// behaviour (Figs 6-8, Table 8) comes from exactly this global grouping.
package ted

import (
	"fmt"

	"utcq/internal/bitio"
)

// Time pairs are stored with a fixed layout so queries can binary search
// directly in the compressed stream: 12-bit index (the paper assumes at
// most 2^12 timestamps per trajectory) and 17-bit seconds-of-day.
const (
	pairNoBits = 12
	pairTBits  = 17
	// PairBits is the stored size of one (no, t) pair.
	PairBits = pairNoBits + pairTBits
)

// timeBreakpoints returns the indices stored by TED's scheme: the first and
// last timestamp plus every index where the sample interval changes.
func timeBreakpoints(T []int64) []int {
	if len(T) <= 2 {
		out := make([]int, len(T))
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	for i := 1; i < len(T)-1; i++ {
		if T[i+1]-T[i] != T[i]-T[i-1] {
			out = append(out, i)
		}
	}
	return append(out, len(T)-1)
}

// encodeTime writes the pair count followed by fixed-width pairs and
// returns the number of pairs.
func encodeTime(w *bitio.Writer, T []int64) (int, error) {
	bps := timeBreakpoints(T)
	if len(T) >= 1<<pairNoBits {
		return 0, fmt.Errorf("ted: %d timestamps exceed the 12-bit pair index", len(T))
	}
	w.WriteCount(len(bps))
	for _, i := range bps {
		w.WriteBits(uint64(i), pairNoBits)
		if T[i] < 0 || T[i] >= 1<<pairTBits {
			return 0, fmt.Errorf("ted: timestamp %d outside seconds-of-day range", T[i])
		}
		w.WriteBits(uint64(T[i]), pairTBits)
	}
	return len(bps), nil
}

// decodeTime reconstructs the full time sequence by arithmetic
// interpolation between stored pairs.
func decodeTime(r *bitio.Reader, numPoints int) ([]int64, error) {
	np, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	type pair struct {
		no int
		t  int64
	}
	pairs := make([]pair, np)
	for i := range pairs {
		no, err := r.ReadBits(pairNoBits)
		if err != nil {
			return nil, err
		}
		t, err := r.ReadBits(pairTBits)
		if err != nil {
			return nil, err
		}
		pairs[i] = pair{int(no), int64(t)}
	}
	if np == 0 {
		return nil, fmt.Errorf("ted: empty time section")
	}
	T := make([]int64, numPoints)
	for k := 1; k < np; k++ {
		a, b := pairs[k-1], pairs[k]
		span := b.no - a.no
		if span <= 0 || b.no >= numPoints {
			return nil, fmt.Errorf("ted: malformed pair sequence")
		}
		for i := a.no; i <= b.no; i++ {
			T[i] = a.t + (b.t-a.t)*int64(i-a.no)/int64(span)
		}
	}
	if np == 1 {
		T[pairs[0].no] = pairs[0].t
	}
	return T, nil
}
