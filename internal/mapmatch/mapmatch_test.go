package mapmatch

import (
	"math"
	"math/rand"
	"testing"

	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// corridorNet builds a corridor v0..v5 with a parallel detour between v1 and
// v3, so points near the detour are ambiguous and k-best matching produces
// several instances.
func corridorNet(t testing.TB) (*roadnet.Graph, *roadnet.EdgeIndex) {
	t.Helper()
	b := roadnet.NewBuilder()
	var main []roadnet.VertexID
	for i := 0; i <= 5; i++ {
		main = append(main, b.AddVertex(float64(i)*200, 0))
	}
	det1 := b.AddVertex(300, 60) // parallel route v1 -> det1 -> v3
	for i := 0; i < 5; i++ {
		b.AddEdge(main[i], main[i+1])
		b.AddEdge(main[i+1], main[i])
	}
	b.AddEdge(main[1], det1)
	b.AddEdge(det1, main[3])
	b.AddEdge(main[3], det1)
	b.AddEdge(det1, main[1])
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, roadnet.NewEdgeIndex(g, 150)
}

func TestMatchCleanTrace(t *testing.T) {
	g, ix := corridorNet(t)
	m := New(g, ix, DefaultConfig())
	// Points exactly on the main corridor, 10 s apart.
	raw := traj.RawTrajectory{Points: []traj.RawPoint{
		{X: 50, Y: 0, T: 0},
		{X: 250, Y: 0, T: 10},
		{X: 450, Y: 0, T: 20},
		{X: 650, Y: 0, T: 30},
	}}
	u, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(u.T) != 4 {
		t.Fatalf("T len = %d", len(u.T))
	}
	// Best instance must follow the main corridor.
	best := u.Instances[0]
	for i := range u.Instances {
		if u.Instances[i].P > best.P {
			best = u.Instances[i]
		}
	}
	path, err := best.PathEdges(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Errorf("best path has %d edges, want 4 (v0..v4)", len(path))
	}
	locs, err := best.Locations(g, u.T)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range locs {
		x, y := g.Coords(l.Pos)
		wx := float64(50 + 200*i)
		if math.Abs(x-wx) > 1 || math.Abs(y) > 1 {
			t.Errorf("point %d matched to (%g, %g), want (%g, 0)", i, x, y, wx)
		}
	}
}

func TestMatchAmbiguousProducesInstances(t *testing.T) {
	g, ix := corridorNet(t)
	cfg := DefaultConfig()
	cfg.MaxInstances = 6
	m := New(g, ix, cfg)
	// The middle point sits between the corridor (y=0) and the detour
	// (y=60), so both routes are plausible.
	raw := traj.RawTrajectory{Points: []traj.RawPoint{
		{X: 150, Y: 5, T: 0},
		{X: 300, Y: 28, T: 10},
		{X: 620, Y: 5, T: 20},
	}}
	u, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Instances) < 2 {
		t.Fatalf("expected multiple instances for ambiguous trace, got %d", len(u.Instances))
	}
	sum := 0.0
	for i := range u.Instances {
		sum += u.Instances[i].P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	// Probabilities must be sorted by construction quality: no instance may
	// exceed the first one's probability.
	for i := 1; i < len(u.Instances); i++ {
		if u.Instances[i].P > u.Instances[0].P+1e-12 {
			t.Errorf("instance %d has higher probability than the first", i)
		}
	}
	// All instances distinct.
	for i := range u.Instances {
		for j := i + 1; j < len(u.Instances); j++ {
			if traj.Equal(&u.Instances[i], &u.Instances[j]) {
				t.Errorf("instances %d and %d identical", i, j)
			}
		}
	}
}

func TestMatchErrors(t *testing.T) {
	g, ix := corridorNet(t)
	m := New(g, ix, DefaultConfig())
	if _, err := m.Match(traj.RawTrajectory{Points: []traj.RawPoint{{X: 0, Y: 0, T: 0}}}); err == nil {
		t.Error("single-point trajectory accepted")
	}
	// A point very far from any edge.
	raw := traj.RawTrajectory{Points: []traj.RawPoint{
		{X: 0, Y: 0, T: 0},
		{X: 0, Y: 99999, T: 10},
	}}
	if _, err := m.Match(raw); err == nil {
		t.Error("unmatched point accepted")
	}
}

func TestMatchOnGeneratedNetwork(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 16, 16
	g := roadnet.Generate(cfg)
	ix := roadnet.NewEdgeIndex(g, 300)
	m := New(g, ix, DefaultConfig())
	rng := rand.New(rand.NewSource(42))

	// Walk a random route and sample noisy points along it.
	matched := 0
	for trial := 0; trial < 20; trial++ {
		pts := syntheticWalk(g, rng, 10)
		if pts == nil {
			continue
		}
		u, err := m.Match(traj.RawTrajectory{Points: pts})
		if err != nil {
			continue
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("trial %d: invalid output: %v", trial, err)
		}
		matched++
	}
	if matched < 10 {
		t.Errorf("only %d/20 synthetic walks matched", matched)
	}
}

// syntheticWalk walks ~steps edges from a random vertex and returns noisy
// GPS points sampled at edge midpoints.
func syntheticWalk(g *roadnet.Graph, rng *rand.Rand, steps int) []traj.RawPoint {
	v := roadnet.VertexID(rng.Intn(g.NumVertices()))
	var pts []traj.RawPoint
	tsec := int64(0)
	var prev roadnet.EdgeID = roadnet.NoEdge
	for i := 0; i < steps; i++ {
		outs := g.OutEdges(v)
		if len(outs) == 0 {
			break
		}
		e := outs[rng.Intn(len(outs))]
		// Avoid immediate u-turns to keep walks realistic.
		if prev != roadnet.NoEdge && g.Edge(e).To == g.Edge(prev).From && len(outs) > 1 {
			e = outs[(rng.Intn(len(outs)-1)+1)%len(outs)]
		}
		mid := roadnet.Position{Edge: e, NDist: g.Edge(e).Length / 2}
		x, y := g.Coords(mid)
		pts = append(pts, traj.RawPoint{
			X: x + rng.NormFloat64()*10,
			Y: y + rng.NormFloat64()*10,
			T: tsec,
		})
		tsec += 10
		v = g.Edge(e).To
		prev = e
	}
	if len(pts) < 2 {
		return nil
	}
	return pts
}
