// Package mapmatch implements probabilistic map matching: it transforms a
// raw GPS trajectory into a network-constrained uncertain trajectory — a
// set of trajectory instances with probabilities (Definition 5).
//
// The matcher is an HMM in the style of the probabilistic map-matching
// literature the paper builds on: candidate mapped locations per raw point
// (emission likelihood decays with GPS distance), transitions scored by the
// agreement between network and straight-line distance, and a k-best
// Viterbi pass that yields the top-k joint assignments.  Their normalized
// scores become the instance probabilities.
package mapmatch

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// Config controls the matcher.
type Config struct {
	// CandidateRadius is the search radius (meters) for candidate edges.
	CandidateRadius float64
	// MaxCandidates bounds candidates per raw point.
	MaxCandidates int
	// SigmaGPS is the emission standard deviation (meters).
	SigmaGPS float64
	// Beta is the transition scale: log p = -|networkDist - euclidDist| / Beta.
	Beta float64
	// MaxInstances is k: the maximum number of instances produced.
	MaxInstances int
	// MaxDetour bounds the Dijkstra search: maxDist = MaxDetour*euclid + Slack.
	MaxDetour float64
	// Slack is the additive Dijkstra bound (meters).
	Slack float64
	// MinProb drops instances whose normalized probability is below it.
	MinProb float64
}

// DefaultConfig returns sensible laptop-scale parameters.
func DefaultConfig() Config {
	return Config{
		CandidateRadius: 60,
		MaxCandidates:   3,
		SigmaGPS:        15,
		Beta:            40,
		MaxInstances:    8,
		MaxDetour:       3,
		Slack:           400,
		MinProb:         0.01,
	}
}

// Matcher matches raw trajectories against one road network.
type Matcher struct {
	g   *roadnet.Graph
	ix  *roadnet.EdgeIndex
	cfg Config
}

// New returns a Matcher.  The edge index must be built over g.
func New(g *roadnet.Graph, ix *roadnet.EdgeIndex, cfg Config) *Matcher {
	return &Matcher{g: g, ix: ix, cfg: cfg}
}

// hypothesis is one partial joint assignment ending in a given candidate.
type hypothesis struct {
	logp      float64
	prevCand  int // candidate index at previous point
	prevHyp   int // hypothesis index within that candidate
	transPath []roadnet.EdgeID
}

// ErrNoMatch is returned when no joint assignment survives.
var ErrNoMatch = errors.New("mapmatch: no feasible matching")

// Match converts a raw trajectory into an uncertain trajectory.
func (m *Matcher) Match(raw traj.RawTrajectory) (*traj.Uncertain, error) {
	n := len(raw.Points)
	if n < 2 {
		return nil, fmt.Errorf("mapmatch: need >= 2 points, got %d", n)
	}
	cands := make([][]roadnet.Position, n)
	for i, p := range raw.Points {
		k := m.cfg.MaxCandidates
		if i == 0 {
			// Anchor the start: the first fix maps to its single best
			// candidate, so all instances share the start vertex — the
			// property Definition 5's datasets exhibit and reference
			// selection exploits (SF pairs same-SV instances only).
			k = 1
		}
		cs := m.ix.NearestEdges(p.X, p.Y, m.cfg.CandidateRadius, k)
		if len(cs) == 0 {
			cs = m.ix.NearestEdges(p.X, p.Y, 2*m.cfg.CandidateRadius, k)
		}
		if len(cs) == 0 {
			return nil, fmt.Errorf("mapmatch: point %d has no candidates", i)
		}
		cands[i] = cs
	}

	k := m.cfg.MaxInstances
	if k < 1 {
		k = 1
	}
	// hyps[i][c] holds up to k best hypotheses ending at candidate c of point i.
	hyps := make([][][]hypothesis, n)
	hyps[0] = make([][]hypothesis, len(cands[0]))
	for c, pos := range cands[0] {
		hyps[0][c] = []hypothesis{{logp: m.emission(raw.Points[0], pos), prevCand: -1, prevHyp: -1}}
	}

	for i := 1; i < n; i++ {
		hyps[i] = make([][]hypothesis, len(cands[i]))
		euclid := math.Hypot(raw.Points[i].X-raw.Points[i-1].X, raw.Points[i].Y-raw.Points[i-1].Y)
		bound := m.cfg.MaxDetour*euclid + m.cfg.Slack
		for pc := range cands[i-1] {
			if len(hyps[i-1][pc]) == 0 {
				continue
			}
			results := m.g.ShortestPaths(cands[i-1][pc], cands[i], bound)
			for c := range cands[i] {
				res := results[c]
				if !res.OK {
					continue
				}
				trans := -math.Abs(res.Dist-euclid) / m.cfg.Beta
				emit := m.emission(raw.Points[i], cands[i][c])
				for ph, h := range hyps[i-1][pc] {
					hyps[i][c] = insertTopK(hyps[i][c], hypothesis{
						logp:      h.logp + trans + emit,
						prevCand:  pc,
						prevHyp:   ph,
						transPath: res.Path,
					}, k)
				}
			}
		}
		alive := false
		for c := range hyps[i] {
			if len(hyps[i][c]) > 0 {
				alive = true
				break
			}
		}
		if !alive {
			return nil, ErrNoMatch
		}
	}

	// Collect the global top-k complete hypotheses.
	type final struct {
		cand, hyp int
		logp      float64
	}
	var finals []final
	for c := range hyps[n-1] {
		for h, hy := range hyps[n-1][c] {
			finals = append(finals, final{c, h, hy.logp})
		}
	}
	sort.Slice(finals, func(a, b int) bool { return finals[a].logp > finals[b].logp })
	if len(finals) > k {
		finals = finals[:k]
	}
	if len(finals) == 0 {
		return nil, ErrNoMatch
	}

	u := &traj.Uncertain{T: make([]int64, n)}
	for i, p := range raw.Points {
		u.T[i] = p.T
	}
	maxLogp := finals[0].logp
	type built struct {
		ins  traj.Instance
		logp float64
	}
	var builtInstances []built
	for _, f := range finals {
		ins, err := m.assemble(cands, hyps, n, f.cand, f.hyp)
		if err != nil {
			continue // infeasible assembly (e.g. single-edge degenerate path)
		}
		builtInstances = append(builtInstances, built{ins, f.logp})
	}
	if len(builtInstances) == 0 {
		return nil, ErrNoMatch
	}
	// De-duplicate identical instances, keeping the best score.
	var dedup []built
	for _, b := range builtInstances {
		found := false
		for i := range dedup {
			if traj.Equal(&dedup[i].ins, &b.ins) {
				found = true
				break
			}
		}
		if !found {
			dedup = append(dedup, b)
		}
	}
	// Normalize scores into probabilities.
	sum := 0.0
	for _, b := range dedup {
		sum += math.Exp(b.logp - maxLogp)
	}
	for _, b := range dedup {
		p := math.Exp(b.logp-maxLogp) / sum
		if p < m.cfg.MinProb && len(u.Instances) > 0 {
			continue
		}
		b.ins.P = p
		u.Instances = append(u.Instances, b.ins)
	}
	// Renormalize after MinProb filtering.
	total := 0.0
	for i := range u.Instances {
		total += u.Instances[i].P
	}
	for i := range u.Instances {
		u.Instances[i].P /= total
	}
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("mapmatch: produced invalid trajectory: %w", err)
	}
	return u, nil
}

// assemble backtracks one complete hypothesis into an Instance.
func (m *Matcher) assemble(cands [][]roadnet.Position, hyps [][][]hypothesis, n, lastCand, lastHyp int) (traj.Instance, error) {
	locs := make([]roadnet.Position, n)
	paths := make([][]roadnet.EdgeID, n-1)
	c, h := lastCand, lastHyp
	for i := n - 1; i >= 0; i-- {
		hy := hyps[i][c][h]
		locs[i] = cands[i][c]
		if i > 0 {
			paths[i-1] = hy.transPath
		}
		c, h = hy.prevCand, hy.prevHyp
	}
	// Concatenate transition paths; each starts with the edge that ends the
	// previous one.
	var path []roadnet.EdgeID
	locIdx := make([]int, n)
	locIdx[0] = 0
	path = append(path, paths[0]...)
	locIdx[1] = len(path) - 1
	for i := 1; i < n-1; i++ {
		seg := paths[i]
		if len(seg) == 0 {
			return traj.Instance{}, errors.New("mapmatch: empty transition path")
		}
		if len(path) > 0 && seg[0] == path[len(path)-1] {
			path = append(path, seg[1:]...)
		} else {
			path = append(path, seg...)
		}
		locIdx[i+1] = len(path) - 1
	}
	return traj.NewInstanceAssigned(m.g, path, locs, locIdx, 0)
}

func (m *Matcher) emission(p traj.RawPoint, pos roadnet.Position) float64 {
	x, y := m.g.Coords(pos)
	d := math.Hypot(p.X-x, p.Y-y)
	return -d * d / (2 * m.cfg.SigmaGPS * m.cfg.SigmaGPS)
}

// insertTopK inserts h into list (descending by logp), keeping at most k.
func insertTopK(list []hypothesis, h hypothesis, k int) []hypothesis {
	pos := len(list)
	for pos > 0 && list[pos-1].logp < h.logp {
		pos--
	}
	if pos >= k {
		return list
	}
	list = append(list, hypothesis{})
	copy(list[pos+1:], list[pos:])
	list[pos] = h
	if len(list) > k {
		list = list[:k]
	}
	return list
}
