package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicHitMiss(t *testing.T) {
	c := New[int, string](4, 1)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Add(1, "a")
	v, ok := c.Get(1)
	if !ok || v != "a" {
		t.Fatalf("got (%q, %v)", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int, int](3, 1)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3)
	c.Get(1) // 1 becomes MRU; LRU is now 2
	c.Add(4, 4)
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%d should still be cached", k)
		}
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[int, int](2, 1)
	c.Add(1, 10)
	c.Add(1, 11)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get(1); v != 11 {
		t.Errorf("value = %d, want 11", v)
	}
}

// TestCapacityIsHardBound: across shard counts, the total entry count can
// never exceed the configured budget, and shard capacities sum to it.
func TestCapacityIsHardBound(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16, 100} {
		for _, capacity := range []int{1, 5, 16, 33} {
			c := New[int, int](capacity, shards)
			sum := 0
			for i := range c.shards {
				if c.shards[i].cap < 1 {
					t.Fatalf("cap=%d shards=%d: shard %d has zero capacity", capacity, shards, i)
				}
				sum += c.shards[i].cap
			}
			if sum != capacity {
				t.Fatalf("cap=%d shards=%d: shard caps sum to %d", capacity, shards, sum)
			}
			for i := 0; i < 10*capacity; i++ {
				c.Add(i, i)
				if got := c.Len(); got > capacity {
					t.Fatalf("cap=%d shards=%d: len %d exceeds budget", capacity, shards, got)
				}
			}
		}
	}
}

func TestNilCache(t *testing.T) {
	c := New[int, int](0, 4)
	if c != nil {
		t.Fatal("capacity 0 should return the nil cache")
	}
	c.Add(1, 1)
	if _, ok := c.Get(1); ok {
		t.Error("nil cache hit")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Error("nil cache has size")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("nil cache has stats")
	}
}

// TestCounterConsistency: hits+misses equals the number of Get calls.
func TestCounterConsistency(t *testing.T) {
	c := New[int, int](8, 4)
	gets := 0
	for i := 0; i < 100; i++ {
		c.Add(i%16, i)
		c.Get(i % 20)
		gets++
	}
	hits, misses := c.Stats()
	if int(hits+misses) != gets {
		t.Errorf("hits+misses = %d, want %d", hits+misses, gets)
	}
}

// TestConcurrent hammers one cache from many goroutines (run with -race)
// and checks the bound and counter consistency afterwards.
func TestConcurrent(t *testing.T) {
	const (
		budget     = 64
		goroutines = 8
		opsPerG    = 2000
	)
	c := New[string, int](budget, 8)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%200)
				if _, ok := c.Get(k); !ok {
					c.Add(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > budget {
		t.Errorf("len %d exceeds budget %d", got, budget)
	}
	hits, misses := c.Stats()
	if hits+misses != goroutines*opsPerG {
		t.Errorf("hits+misses = %d, want %d", hits+misses, goroutines*opsPerG)
	}
}

// TestConcurrentWriterEviction drives the eviction path itself from many
// concurrent writers: every Add on a full shard evicts, keys far outnumber
// the budget, and a sampler goroutine asserts the hard bound holds *while*
// the writers race, not only after they join.  Values are checked for
// integrity (a key must only ever map to a value some writer actually
// stored under it), so a torn eviction can not surface another key's
// entry.
func TestConcurrentWriterEviction(t *testing.T) {
	const (
		budget   = 32
		writers  = 8
		opsPerG  = 5000
		keySpace = 1024 // 32x the budget: almost every Add evicts
	)
	c := New[int, int64](budget, 4)
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := c.Len(); got > budget {
				t.Errorf("mid-run len %d exceeds budget %d", got, budget)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				k := (g*137 + i*31) % keySpace
				c.Add(k, int64(k)<<20|int64(g))
				if v, ok := c.Get(k); ok && int(v>>20) != k {
					t.Errorf("key %d returned foreign value %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	if got := c.Len(); got > budget {
		t.Fatalf("final len %d exceeds budget %d", got, budget)
	}
	// The budget is also tight: concurrent eviction must not deflate the
	// cache below a full shard's worth of survivors.
	if got := c.Len(); got != budget {
		t.Fatalf("cache holds %d entries after saturation, want the full budget %d", got, budget)
	}
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
