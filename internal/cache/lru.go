// Package cache provides a concurrency-safe sharded LRU keyed by any
// comparable type.  The query engine uses it to keep decoded reference
// views and partially decompressed paths under a fixed entry budget while
// many goroutines query one archive.
//
// The capacity is a hard bound: the per-shard capacities sum to exactly
// the configured budget, so the total entry count never exceeds it.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// LRU is a sharded least-recently-used cache.  All methods are safe for
// concurrent use.  A nil *LRU behaves as an always-miss cache that stores
// nothing, so callers can disable caching by constructing with capacity 0.
type LRU[K comparable, V any] struct {
	shards []lruShard[K, V]
	seed   maphash.Seed
	hits   atomic.Int64
	misses atomic.Int64
	cap    int
}

type lruShard[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU holding at most capacity entries spread over the
// given number of shards.  Shard counts below 1 (or above the capacity)
// are clamped so every shard can hold at least one entry.  A capacity
// below 1 returns nil: the no-op cache.
func New[K comparable, V any](capacity, shards int) *LRU[K, V] {
	if capacity < 1 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &LRU[K, V]{
		shards: make([]lruShard[K, V], shards),
		seed:   maphash.MakeSeed(),
		cap:    capacity,
	}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = base
		if i < extra {
			s.cap++
		}
		s.order = list.New()
		s.items = make(map[K]*list.Element)
	}
	return c
}

func (c *LRU[K, V]) shard(k K) *lruShard[K, V] {
	return &c.shards[maphash.Comparable(c.seed, k)%uint64(len(c.shards))]
}

// Get returns the cached value and marks it most recently used.  Every
// call counts as exactly one hit or one miss.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.items[k]
	var v V
	if ok {
		s.order.MoveToFront(el)
		v = el.Value.(*lruEntry[K, V]).val // read under the lock: Add may refresh val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return zero, false
	}
	c.hits.Add(1)
	return v, true
}

// Add inserts (or refreshes) a value, evicting the shard's least recently
// used entry when the shard is full.
func (c *LRU[K, V]) Add(k K, v V) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.cap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.items, back.Value.(*lruEntry[K, V]).key)
	}
	s.items[k] = s.order.PushFront(&lruEntry[K, V]{key: k, val: v})
}

// Len returns the current total entry count.
func (c *LRU[K, V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Cap returns the configured entry budget (0 for the nil cache).
func (c *LRU[K, V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Stats returns the cumulative hit and miss counts.  hits+misses equals
// the number of Get calls performed so far.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
