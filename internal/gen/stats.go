package gen

import (
	"math/rand"

	"utcq/internal/traj"
)

// DatasetStats mirrors Table 5: size, trajectory counts, instance counts,
// edge counts and the default sample interval.
type DatasetStats struct {
	Name            string
	RawBits         traj.ComponentBits
	NumTrajectories int
	InstAvg         float64
	InstMin         int
	InstMax         int
	EdgesAvg        float64
	EdgesMin        int
	EdgesMax        int
	PointsAvg       float64
	Ts              int64
}

// NetworkStats mirrors Table 6: edge/vertex counts and average out-degree.
type NetworkStats struct {
	Name         string
	Segments     int // undirected road segments, as counted by the paper
	Vertices     int
	AvgOutDegree float64
	MaxOutDegree int
}

// Stats computes the Table 5 statistics of the dataset.
func (d *Dataset) Stats() DatasetStats {
	s := DatasetStats{
		Name:            d.Profile.Name,
		NumTrajectories: len(d.Trajectories),
		InstMin:         1 << 30,
		EdgesMin:        1 << 30,
		Ts:              d.Profile.Ts,
	}
	totalInst, totalEdges, totalPoints, instTraj := 0, 0, 0, 0
	for _, u := range d.Trajectories {
		s.RawBits.Add(u.RawBits())
		ni := len(u.Instances)
		totalInst += ni
		instTraj++
		if ni < s.InstMin {
			s.InstMin = ni
		}
		if ni > s.InstMax {
			s.InstMax = ni
		}
		totalPoints += len(u.T)
		for i := range u.Instances {
			ne := u.Instances[i].EdgeCount()
			totalEdges += ne
			if ne < s.EdgesMin {
				s.EdgesMin = ne
			}
			if ne > s.EdgesMax {
				s.EdgesMax = ne
			}
		}
	}
	if instTraj > 0 {
		s.InstAvg = float64(totalInst) / float64(instTraj)
		s.PointsAvg = float64(totalPoints) / float64(instTraj)
	}
	if totalInst > 0 {
		s.EdgesAvg = float64(totalEdges) / float64(totalInst)
	}
	return s
}

// NetStats computes the Table 6 statistics of the dataset's road network.
func (d *Dataset) NetStats() NetworkStats {
	return NetworkStats{
		Name:         d.Profile.Name,
		Segments:     d.Graph.UndirectedEdgeCount(),
		Vertices:     d.Graph.NumVertices(),
		AvgOutDegree: d.Graph.AvgOutDegree(),
		MaxOutDegree: d.Graph.MaxOutDegree(),
	}
}

// IntervalDeviationHistogram buckets |actual interval − Ts| into the Fig 4a
// classes {0, 1, (1,50], (50,100], >100} and returns fractions.
func (d *Dataset) IntervalDeviationHistogram() [5]float64 {
	var counts [5]int
	total := 0
	for _, u := range d.Trajectories {
		for i := 1; i < len(u.T); i++ {
			dev := u.T[i] - u.T[i-1] - d.Profile.Ts
			if dev < 0 {
				dev = -dev
			}
			switch {
			case dev == 0:
				counts[0]++
			case dev == 1:
				counts[1]++
			case dev <= 50:
				counts[2]++
			case dev <= 100:
				counts[3]++
			default:
				counts[4]++
			}
			total++
		}
	}
	var out [5]float64
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// IntervalChangeRate returns the average run length between sample-interval
// changes (the paper reports 6.80 / 2.32 / 1.97 for DK / CD / HZ); TED's
// time scheme degrades as this number shrinks.
func (d *Dataset) IntervalChangeRate() float64 {
	changes, intervals := 0, 0
	for _, u := range d.Trajectories {
		if len(u.T) < 3 {
			continue
		}
		prev := u.T[1] - u.T[0]
		for i := 2; i < len(u.T); i++ {
			iv := u.T[i] - u.T[i-1]
			intervals++
			if iv != prev {
				changes++
			}
			prev = iv
		}
	}
	if changes == 0 {
		return float64(intervals)
	}
	return float64(intervals) / float64(changes)
}

// SimilarityBuckets holds Fig 4b fractions for edit-distance classes
// [0,2], [3,5], [6,8], >=9.
type SimilarityBuckets [4]float64

func bucketOf(d int) int {
	switch {
	case d <= 2:
		return 0
	case d <= 5:
		return 1
	case d <= 8:
		return 2
	default:
		return 3
	}
}

// SimilarityStats computes Fig 4b: the edit-distance distribution between
// instances of the same uncertain trajectory (within) and between instances
// of different trajectories (between, sampled with maxSamples pairs).
func (d *Dataset) SimilarityStats(seed int64, maxSamples int) (within, between SimilarityBuckets) {
	rng := rand.New(rand.NewSource(seed))
	var wc, bc [4]int
	wn, bn := 0, 0
	for _, u := range d.Trajectories {
		for i := 0; i < len(u.Instances) && wn < maxSamples; i++ {
			for j := i + 1; j < len(u.Instances) && wn < maxSamples; j++ {
				dist := traj.EditDistance(u.Instances[i].E, u.Instances[j].E)
				wc[bucketOf(dist)]++
				wn++
			}
		}
	}
	n := len(d.Trajectories)
	for bn < maxSamples && n > 1 {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		ua, ub := d.Trajectories[a], d.Trajectories[b]
		ia, ib := rng.Intn(len(ua.Instances)), rng.Intn(len(ub.Instances))
		dist := traj.EditDistance(ua.Instances[ia].E, ub.Instances[ib].E)
		bc[bucketOf(dist)]++
		bn++
	}
	for i := 0; i < 4; i++ {
		if wn > 0 {
			within[i] = float64(wc[i]) / float64(wn)
		}
		if bn > 0 {
			between[i] = float64(bc[i]) / float64(bn)
		}
	}
	return within, between
}
