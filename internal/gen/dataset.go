package gen

import (
	"fmt"
	"math"
	"math/rand"

	"utcq/internal/mapmatch"
	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// Dataset is a generated collection of uncertain trajectories over one road
// network — the input Tu of the UTCQ framework.
type Dataset struct {
	Profile      Profile
	Graph        *roadnet.Graph
	EdgeIndex    *roadnet.EdgeIndex
	Trajectories []*traj.Uncertain

	// SkippedTrajectories counts raw trajectories the matcher rejected.
	SkippedTrajectories int
}

// Build generates a dataset with numTraj uncertain trajectories (0 means
// the profile default), deterministically from the seed.
func Build(p Profile, numTraj int, seed int64) (*Dataset, error) {
	if numTraj <= 0 {
		numTraj = p.DefaultTrajectories
	}
	g := roadnet.Generate(p.Network)
	ix := roadnet.NewEdgeIndex(g, 4*p.Network.Spacing)
	ds := &Dataset{Profile: p, Graph: g, EdgeIndex: ix}
	rng := rand.New(rand.NewSource(seed))

	attempts := 0
	for len(ds.Trajectories) < numTraj {
		attempts++
		if attempts > numTraj*10 {
			return nil, fmt.Errorf("gen: too many failed attempts (%d trajectories built)", len(ds.Trajectories))
		}
		raw := synthesizeRaw(p, g, rng)
		if raw == nil {
			continue
		}
		cfg := p.Match
		cfg.MaxInstances = sampleInstanceTarget(p, rng)
		m := mapmatch.New(g, ix, cfg)
		u, err := m.Match(*raw)
		if err != nil || len(u.Instances) < 2 {
			// Table 5's instance ranges start at 2: unambiguous matches do
			// not form uncertain trajectories.
			ds.SkippedTrajectories++
			continue
		}
		ds.Trajectories = append(ds.Trajectories, u)
	}
	return ds, nil
}

// Raws synthesizes numRaw raw (pre-matching) GPS trajectories over the
// profile's deterministic road network, together with the network and its
// edge index.  This is the live-ingestion input shape: the WAL-backed
// pipeline (internal/ingest) map-matches raw trajectories itself, so tests
// and load generators need the synthetic fleet without the matching step
// Build performs.
func Raws(p Profile, numRaw int, seed int64) (*roadnet.Graph, *roadnet.EdgeIndex, []traj.RawTrajectory, error) {
	g := roadnet.Generate(p.Network)
	ix := roadnet.NewEdgeIndex(g, 4*p.Network.Spacing)
	rng := rand.New(rand.NewSource(seed))
	raws := make([]traj.RawTrajectory, 0, numRaw)
	attempts := 0
	for len(raws) < numRaw {
		attempts++
		if attempts > numRaw*10+100 {
			return nil, nil, nil, fmt.Errorf("gen: too many failed attempts (%d raws built)", len(raws))
		}
		raw := synthesizeRaw(p, g, rng)
		if raw == nil {
			continue
		}
		raws = append(raws, *raw)
	}
	return g, ix, raws, nil
}

// sampleInstanceTarget draws the per-trajectory k around the profile's
// average instance count (clamped to [2, MaxInstances]).
func sampleInstanceTarget(p Profile, rng *rand.Rand) int {
	k := int(math.Round(float64(p.AvgInstances) * math.Exp(rng.NormFloat64()*0.45)))
	if k < 2 {
		k = 2
	}
	if k > p.MaxInstances {
		k = p.MaxInstances
	}
	return k
}

// synthesizeRaw simulates one vehicle trip: a route on the network, motion
// along it, and noisy GPS fixes with the profile's interval jitter.
func synthesizeRaw(p Profile, g *roadnet.Graph, rng *rand.Rand) *traj.RawTrajectory {
	route := randomRoute(g, rng, sampleRouteLen(p, rng))
	if len(route) < p.MinEdges {
		return nil
	}
	routeLen := g.PathLength(route)
	speed := p.SpeedMean + rng.NormFloat64()*p.SpeedStd
	if speed < 3 {
		speed = 3
	}

	// Start somewhere in the first half of the day so trips end before
	// midnight (the encoder stores t0 as seconds of day).
	t := int64(1800 + rng.Intn(60000))
	dist := 0.0
	var pts []traj.RawPoint
	prevJitter := int64(0)
	havePrev := false
	for dist < routeLen && len(pts) < p.MaxPoints {
		pos, ok := positionAt(g, route, dist)
		if !ok {
			break
		}
		x, y := g.Coords(pos)
		pts = append(pts, traj.RawPoint{
			X: x + rng.NormFloat64()*p.GPSNoise,
			Y: y + rng.NormFloat64()*p.GPSNoise,
			T: t,
		})
		// Sticky jitter: repeating the previous deviation keeps the
		// marginal Fig 4a distribution but lengthens interval runs.
		var j int64
		if havePrev && rng.Float64() < p.JitterSticky {
			j = prevJitter
		} else {
			j = sampleJitter(p, rng)
		}
		prevJitter, havePrev = j, true
		iv := p.Ts + j
		if iv < 1 {
			iv = 1
		}
		t += iv
		dist += speed * float64(iv)
	}
	if len(pts) < 2 {
		return nil
	}
	return &traj.RawTrajectory{Points: pts}
}

// sampleJitter draws a sample-interval deviation according to the profile's
// Fig 4a distribution.  Deviations below -(Ts-1) are clamped so intervals
// stay positive.
func sampleJitter(p Profile, rng *rand.Rand) int64 {
	u := rng.Float64()
	var mag int64
	switch {
	case u < p.JitterFracs[0]:
		return 0
	case u < p.JitterFracs[0]+p.JitterFracs[1]:
		mag = 1
	case u < p.JitterFracs[0]+p.JitterFracs[1]+p.JitterFracs[2]:
		mag = 2 + int64(rng.Intn(49)) // (1, 50]
	case u < p.JitterFracs[0]+p.JitterFracs[1]+p.JitterFracs[2]+p.JitterFracs[3]:
		mag = 51 + int64(rng.Intn(50)) // (50, 100]
	default:
		mag = 101 + int64(rng.Intn(200)) // > 100
	}
	if rng.Intn(2) == 0 && mag < p.Ts {
		return -mag
	}
	return mag
}

func sampleRouteLen(p Profile, rng *rand.Rand) int {
	n := int(math.Round(float64(p.AvgEdges) * math.Exp(rng.NormFloat64()*0.5)))
	if n < p.MinEdges {
		n = p.MinEdges
	}
	if n > p.MaxEdges {
		n = p.MaxEdges
	}
	return n
}

// randomRoute walks up to n edges from a random vertex, avoiding immediate
// u-turns when possible.
func randomRoute(g *roadnet.Graph, rng *rand.Rand, n int) []roadnet.EdgeID {
	v := roadnet.VertexID(rng.Intn(g.NumVertices()))
	var route []roadnet.EdgeID
	var prevFrom roadnet.VertexID = roadnet.NoVertex
	for len(route) < n {
		outs := g.OutEdges(v)
		if len(outs) == 0 {
			break
		}
		// Collect non-u-turn options.
		var opts []roadnet.EdgeID
		for _, e := range outs {
			if g.Edge(e).To != prevFrom {
				opts = append(opts, e)
			}
		}
		if len(opts) == 0 {
			opts = outs
		}
		e := opts[rng.Intn(len(opts))]
		route = append(route, e)
		prevFrom = v
		v = g.Edge(e).To
	}
	return route
}

// positionAt returns the network position dist meters along the route.
func positionAt(g *roadnet.Graph, route []roadnet.EdgeID, dist float64) (roadnet.Position, bool) {
	for _, e := range route {
		l := g.Edge(e).Length
		if dist < l {
			return roadnet.Position{Edge: e, NDist: dist}, true
		}
		dist -= l
	}
	return roadnet.Position{}, false
}
