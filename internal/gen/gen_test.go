package gen

import (
	"testing"
)

// smallProfile shrinks a profile for fast tests.
func smallProfile(p Profile) Profile {
	p.Network.Cols, p.Network.Rows = 24, 24
	p.DefaultTrajectories = 40
	return p
}

func TestBuildDatasets(t *testing.T) {
	for _, base := range Profiles() {
		p := smallProfile(base)
		t.Run(p.Name, func(t *testing.T) {
			ds, err := Build(p, 40, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds.Trajectories) != 40 {
				t.Fatalf("built %d trajectories", len(ds.Trajectories))
			}
			for i, u := range ds.Trajectories {
				if err := u.Validate(); err != nil {
					t.Fatalf("trajectory %d invalid: %v", i, err)
				}
				// Instances must decode against the network.
				for j := range u.Instances {
					if _, err := u.Instances[j].Locations(ds.Graph, u.T); err != nil {
						t.Fatalf("trajectory %d instance %d: %v", i, j, err)
					}
				}
			}
		})
	}
}

func TestDatasetDeterministic(t *testing.T) {
	p := smallProfile(DK())
	a, err := Build(p, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trajectories) != len(b.Trajectories) {
		t.Fatal("different sizes for same seed")
	}
	for i := range a.Trajectories {
		ua, ub := a.Trajectories[i], b.Trajectories[i]
		if len(ua.T) != len(ub.T) || len(ua.Instances) != len(ub.Instances) {
			t.Fatalf("trajectory %d differs", i)
		}
		for k := range ua.T {
			if ua.T[k] != ub.T[k] {
				t.Fatalf("trajectory %d timestamp %d differs", i, k)
			}
		}
	}
}

func TestIntervalDeviationHistogram(t *testing.T) {
	p := smallProfile(DK())
	ds, err := Build(p, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := ds.IntervalDeviationHistogram()
	sum := 0.0
	for _, f := range h {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram sums to %g", sum)
	}
	// DK: most intervals deviate at most 1 s (paper: 93%).
	if h[0]+h[1] < 0.75 {
		t.Errorf("DK small-deviation fraction = %g, want > 0.75", h[0]+h[1])
	}
}

func TestProfileJitterOrdering(t *testing.T) {
	// DK must have the most stable intervals, HZ the least (Fig 4a).
	build := func(p Profile) float64 {
		ds, err := Build(smallProfile(p), 50, 5)
		if err != nil {
			t.Fatal(err)
		}
		h := ds.IntervalDeviationHistogram()
		return h[0] + h[1]
	}
	dk, cd, hz := build(DK()), build(CD()), build(HZ())
	if !(dk > cd && cd > hz) {
		t.Errorf("small-deviation fractions: DK=%.2f CD=%.2f HZ=%.2f, want DK > CD > HZ", dk, cd, hz)
	}
}

func TestSimilarityStats(t *testing.T) {
	ds, err := Build(smallProfile(HZ()), 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	within, between := ds.SimilarityStats(1, 2000)
	wSum, bSum := 0.0, 0.0
	for i := 0; i < 4; i++ {
		wSum += within[i]
		bSum += between[i]
	}
	if wSum < 0.999 || wSum > 1.001 || bSum < 0.999 || bSum > 1.001 {
		t.Fatalf("bucket sums: within=%g between=%g", wSum, bSum)
	}
	// The paper's key observation: instances of one uncertain trajectory
	// are much more similar than instances across trajectories.
	if within[0]+within[1] < 0.6 {
		t.Errorf("within-trajectory similar fraction = %g, want > 0.6", within[0]+within[1])
	}
	if between[3] < within[3] {
		t.Errorf("across-trajectory distances should skew larger: between>=9 %g, within>=9 %g",
			between[3], within[3])
	}
}

func TestStatsShape(t *testing.T) {
	ds, err := Build(smallProfile(CD()), 50, 17)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Stats()
	if s.NumTrajectories != 50 {
		t.Errorf("NumTrajectories = %d", s.NumTrajectories)
	}
	if s.InstAvg < 2 || s.InstAvg > 8 {
		t.Errorf("CD instance average = %g, want near 3", s.InstAvg)
	}
	if s.EdgesAvg < 3 || s.EdgesAvg > 40 {
		t.Errorf("edges average = %g", s.EdgesAvg)
	}
	if s.RawBits.Total() == 0 {
		t.Error("raw size is zero")
	}
	ns := ds.NetStats()
	if ns.Vertices != 24*24 {
		t.Errorf("vertices = %d", ns.Vertices)
	}
	if ns.AvgOutDegree < 2 || ns.AvgOutDegree > 3.2 {
		t.Errorf("avg out degree = %g", ns.AvgOutDegree)
	}
}

func TestProfileByName(t *testing.T) {
	for _, n := range []string{"DK", "CD", "HZ"} {
		p, err := ProfileByName(n)
		if err != nil || p.Name != n {
			t.Errorf("ProfileByName(%s) = %v, %v", n, p.Name, err)
		}
	}
	if _, err := ProfileByName("XX"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestIntervalChangeRate(t *testing.T) {
	dk, err := Build(smallProfile(DK()), 40, 23)
	if err != nil {
		t.Fatal(err)
	}
	hz, err := Build(smallProfile(HZ()), 40, 23)
	if err != nil {
		t.Fatal(err)
	}
	// DK intervals are stable: longer runs between changes than HZ
	// (paper: 6.80 vs 1.97).
	if dk.IntervalChangeRate() <= hz.IntervalChangeRate() {
		t.Errorf("change run length DK=%g should exceed HZ=%g",
			dk.IntervalChangeRate(), hz.IntervalChangeRate())
	}
}
