// Package gen synthesizes datasets whose statistics mirror the paper's
// three real-life datasets (Denmark, Chengdu, Hangzhou; Tables 5-6, Fig 4):
// road networks with matching degree statistics, routes with matching edge
// counts, GPS sampling with matching default intervals and interval-jitter
// distributions, and probabilistic map matching producing instance counts
// in the reported ranges.  See DESIGN.md for the substitution rationale.
package gen

import (
	"fmt"

	"utcq/internal/mapmatch"
	"utcq/internal/roadnet"
)

// Profile describes one synthetic dataset family.
type Profile struct {
	Name string

	// Network generation.
	Network roadnet.GenConfig

	// Ts is the default sample interval in seconds (Table 5).
	Ts int64

	// JitterFracs gives the probability that a sample interval deviates
	// from Ts by 0, 1, (1,50], (50,100], and >100 seconds (Fig 4a).
	JitterFracs [5]float64

	// JitterSticky is the probability that an interval repeats the previous
	// deviation verbatim; it controls the run length between interval
	// changes (paper: 6.80 / 2.32 / 1.97 samples for DK / CD / HZ) without
	// altering the marginal deviation distribution.
	JitterSticky float64

	// Route geometry.
	AvgEdges           int     // mean route length in edges
	MinEdges, MaxEdges int     // clamp for route length
	SpeedMean          float64 // m/s
	SpeedStd           float64
	GPSNoise           float64 // meters (std dev)
	MaxPoints          int     // cap on points per trajectory

	// Instance counts: MaxInstances is sampled per trajectory around
	// AvgInstances (Table 5: DK 9, CD 3, HZ 13).
	AvgInstances int
	MaxInstances int

	Match mapmatch.Config

	// DefaultTrajectories is the laptop-scale default dataset size.
	DefaultTrajectories int
}

// DK returns the Denmark-like profile: 1 s sampling, very stable intervals
// (93% deviate at most 1 s), ~9 instances per trajectory.
func DK() Profile {
	m := mapmatch.DefaultConfig()
	m.Slack = 250
	m.MinProb = 0.001
	return Profile{
		Name: "DK",
		Network: roadnet.GenConfig{
			Seed: 101, Cols: 96, Rows: 96, Spacing: 130, Jitter: 0.22,
			SegmentsPerVertex: 1.22, OneWayProb: 0.12, DiagProb: 0.10,
		},
		Ts:           1,
		JitterFracs:  [5]float64{0.72, 0.21, 0.05, 0.013, 0.007},
		JitterSticky: 0.57,
		AvgEdges:     14, MinEdges: 2, MaxEdges: 139,
		SpeedMean: 20, SpeedStd: 4, GPSNoise: 9, MaxPoints: 70,
		AvgInstances: 9, MaxInstances: 30,
		Match:               m,
		DefaultTrajectories: 900,
	}
}

// CD returns the Chengdu-like profile: 10 s sampling, moderately stable
// intervals (62% within 1 s), ~3 instances per trajectory.
func CD() Profile {
	m := mapmatch.DefaultConfig()
	m.Slack = 400
	m.MinProb = 0.002
	return Profile{
		Name: "CD",
		Network: roadnet.GenConfig{
			Seed: 202, Cols: 72, Rows: 72, Spacing: 190, Jitter: 0.25,
			SegmentsPerVertex: 1.42, OneWayProb: 0.15, DiagProb: 0.22,
		},
		Ts:           10,
		JitterFracs:  [5]float64{0.30, 0.24, 0.34, 0.07, 0.05},
		JitterSticky: 0.45,
		AvgEdges:     11, MinEdges: 2, MaxEdges: 148,
		SpeedMean: 12, SpeedStd: 3, GPSNoise: 13, MaxPoints: 40,
		AvgInstances: 3, MaxInstances: 12,
		Match:               m,
		DefaultTrajectories: 1600,
	}
}

// HZ returns the Hangzhou-like profile: 20 s sampling, the least stable
// intervals (54% within 1 s), ~13 instances per trajectory.
func HZ() Profile {
	m := mapmatch.DefaultConfig()
	m.Slack = 500
	m.MinProb = 0.0005
	return Profile{
		Name: "HZ",
		Network: roadnet.GenConfig{
			Seed: 303, Cols: 64, Rows: 64, Spacing: 180, Jitter: 0.25,
			SegmentsPerVertex: 1.40, OneWayProb: 0.15, DiagProb: 0.20,
		},
		Ts:           20,
		JitterFracs:  [5]float64{0.26, 0.22, 0.36, 0.09, 0.07},
		JitterSticky: 0.38,
		AvgEdges:     13, MinEdges: 2, MaxEdges: 189,
		SpeedMean: 10, SpeedStd: 2.5, GPSNoise: 14, MaxPoints: 32,
		AvgInstances: 16, MaxInstances: 40,
		Match:               m,
		DefaultTrajectories: 1200,
	}
}

// Profiles returns the three paper profiles in presentation order.
func Profiles() []Profile { return []Profile{DK(), CD(), HZ()} }

// ProfileByName resolves "DK", "CD" or "HZ".
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: unknown profile %q (want DK, CD or HZ)", name)
}
