package query

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"utcq/internal/cache"
	"utcq/internal/core"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// Engine answers probabilistic queries over a UTCQ archive via the StIU
// index.  Decoded references and paths are kept in sharded LRU caches
// bounded by a configurable entry budget; partial decompression and
// Lemmas 1-4 avoid touching instances that cannot contribute.
//
// An Engine is safe for concurrent use: one instance serves any number of
// goroutines calling Where, When and Range simultaneously, with memory
// bounded by the cache budget.  The configuration fields (DisablePruning,
// DisableCache) must be set before the engine is shared; they are plain
// fields precisely so single-threaded measurement runs can toggle them
// between workloads, and are not synchronized.
type Engine struct {
	Arch *core.Archive
	Ix   *stiu.Index

	// DisablePruning turns off Lemmas 1-4 (ablation benchmarks).
	// Set before sharing the engine across goroutines.
	DisablePruning bool

	// DisableCache makes every query pay its own decompression cost (the
	// paper's measurement model); by default decoded views are reused.
	// Set before sharing the engine across goroutines.
	DisableCache bool

	refViews *cache.LRU[[2]int, *core.RefView]
	paths    *cache.LRU[[2]int, *lazyPath]

	// Per-trajectory query-plan state, precomputed at construction so the
	// range hot path neither sorts nor allocates per query:
	// probOrder[j] lists instance origs in descending probability,
	// probSum[j] is the total instance probability, and instOffset[j] maps
	// (j, orig) to a flat index for the Lemma-4 scratch.
	probOrder  [][]int32
	probSum    []float64
	instOffset []int
	numInsts   int

	// tempHint[j] caches the last temporal-entry index served for
	// trajectory j; queries hitting the same interval skip the binary
	// search (the hint is verified before use, so stale values only cost
	// the fallback search).
	tempHint []atomic.Int32

	// scratchPool recycles the flat Lemma-4 bound buffers across queries
	// and goroutines; whenPool does the same for the when-query plan.
	scratchPool sync.Pool
	whenPool    sync.Pool

	// Work counters, maintained atomically (see Stats).
	pathsDecoded     atomic.Int64
	instancesSkipped atomic.Int64
	trajsPruned      atomic.Int64
	trajsAccepted    atomic.Int64
}

// rangeScratch is the per-query working set of Range: flat, epoch-stamped
// accumulators replacing the historical map[int]map[int]float64, so a query
// touches O(candidates) memory with zero steady-state allocations.
type rangeScratch struct {
	epoch   uint64
	group   []float64 // per flat instance index: summed ptotal
	gstamp  []uint64
	bound   []float64 // per trajectory: Lemma-4 probability bound
	bstamp  []uint64
	touched []touchedGroup
	cells   []roadnet.RegionID
}

type touchedGroup struct {
	traj int32
	gi   int32 // flat instance index of the group's reference
}

func (e *Engine) getScratch() *rangeScratch {
	if sc, ok := e.scratchPool.Get().(*rangeScratch); ok {
		return sc
	}
	return &rangeScratch{
		group:  make([]float64, e.numInsts),
		gstamp: make([]uint64, e.numInsts),
		bound:  make([]float64, len(e.Arch.Trajs)),
		bstamp: make([]uint64, len(e.Arch.Trajs)),
	}
}

func (e *Engine) putScratch(sc *rangeScratch) {
	sc.touched = sc.touched[:0]
	e.scratchPool.Put(sc)
}

// whenScratch is the per-query working set of When: a flat epoch-stamped
// group plan (replacing the historical map[int]*groupPlan) and a reusable
// passage buffer, so a when query performs zero steady-state allocations.
type whenScratch struct {
	epoch    uint64
	plan     []uint8 // per flat instance index: planRef/planNonRefs bits
	pstamp   []uint64
	passages []passage
}

// Group-plan bits: Lemma 1 decides, per reference group, whether the
// reference itself and whether its non-references need processing.
const (
	planRef     = uint8(1 << 0)
	planNonRefs = uint8(1 << 1)
)

func (e *Engine) getWhenScratch() *whenScratch {
	if sc, ok := e.whenPool.Get().(*whenScratch); ok {
		return sc
	}
	return &whenScratch{
		plan:   make([]uint8, e.numInsts),
		pstamp: make([]uint64, e.numInsts),
	}
}

func (e *Engine) putWhenScratch(sc *whenScratch) {
	sc.passages = sc.passages[:0]
	e.whenPool.Put(sc)
}

// EngineStats is a point-in-time snapshot of the work the engine
// performed, demonstrating the pruning lemmas and the cache behavior.
type EngineStats struct {
	PathsDecoded     int64
	InstancesSkipped int64
	TrajsPruned      int64 // range queries: Lemma 4 rejections
	TrajsAccepted    int64 // range queries: Lemma 3 early accepts

	// Cache accounting, summed over the reference-view and path caches.
	// CacheHits+CacheMisses equals the number of cache lookups performed.
	CacheHits   int64
	CacheMisses int64
	CachedViews int // current reference-view cache entries
	CachedPaths int // current path cache entries
	CacheBudget int // configured per-cache entry bound
}

// Stats returns a consistent-enough snapshot of the engine's counters.
// Safe to call concurrently with queries.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		PathsDecoded:     e.pathsDecoded.Load(),
		InstancesSkipped: e.instancesSkipped.Load(),
		TrajsPruned:      e.trajsPruned.Load(),
		TrajsAccepted:    e.trajsAccepted.Load(),
		CachedViews:      e.refViews.Len(),
		CachedPaths:      e.paths.Len(),
		CacheBudget:      e.refViews.Cap(),
	}
	rh, rm := e.refViews.Stats()
	ph, pm := e.paths.Stats()
	s.CacheHits, s.CacheMisses = rh+ph, rm+pm
	return s
}

// EngineOptions configure the engine's bounded caches.
type EngineOptions struct {
	// CacheEntries bounds each of the two caches (decoded reference views
	// and partially decompressed paths) to at most this many entries,
	// evicting least-recently-used ones.  Values below 1 select the
	// default budget.
	CacheEntries int
	// CacheShards splits each cache into independently locked shards to
	// reduce contention.  Values below 1 select the default.
	CacheShards int
}

// DefaultEngineOptions returns the default cache budget (4096 entries per
// cache, 16 shards).
func DefaultEngineOptions() EngineOptions {
	return EngineOptions{CacheEntries: 4096, CacheShards: 16}
}

// NewEngine returns an engine over an archive and its index with the
// default cache budget.  The returned engine is safe for concurrent use
// once its configuration fields are set (see Engine).
func NewEngine(a *core.Archive, ix *stiu.Index) *Engine {
	return NewEngineWithOptions(a, ix, DefaultEngineOptions())
}

// NewEngineWithOptions returns an engine with an explicit cache budget.
// The returned engine is safe for concurrent use once its configuration
// fields are set (see Engine).
func NewEngineWithOptions(a *core.Archive, ix *stiu.Index, o EngineOptions) *Engine {
	def := DefaultEngineOptions()
	if o.CacheEntries < 1 {
		o.CacheEntries = def.CacheEntries
	}
	if o.CacheShards < 1 {
		o.CacheShards = def.CacheShards
	}
	e := &Engine{
		Arch:     a,
		Ix:       ix,
		refViews: cache.New[[2]int, *core.RefView](o.CacheEntries, o.CacheShards),
		paths:    cache.New[[2]int, *lazyPath](o.CacheEntries, o.CacheShards),
	}
	e.probOrder = make([][]int32, len(a.Trajs))
	e.probSum = make([]float64, len(a.Trajs))
	e.instOffset = make([]int, len(a.Trajs))
	e.tempHint = make([]atomic.Int32, len(a.Trajs))
	for j, tr := range a.Trajs {
		e.instOffset[j] = e.numInsts
		e.numInsts += len(tr.Insts)
		ord := make([]int32, len(tr.Insts))
		sum := 0.0
		for o := range ord {
			ord[o] = int32(o)
			sum += tr.Insts[o].P
		}
		insts := tr.Insts
		slices.SortFunc(ord, func(a, b int32) int {
			switch {
			case insts[a].P > insts[b].P:
				return -1
			case insts[a].P < insts[b].P:
				return 1
			default:
				return int(a) - int(b)
			}
		})
		e.probOrder[j] = ord
		e.probSum[j] = sum
	}
	return e
}

// findTemporal is Ix.FindTemporal with a per-trajectory hint: repeated
// queries in the same interval verify the cached entry in O(1) instead of
// re-running the binary search.  The hint is advisory — a failed
// verification falls back to the search — so concurrent updates are safe.
func (e *Engine) findTemporal(j int, t int64) (stiu.TemporalEntry, bool) {
	entries, err := e.Ix.TemporalEntries(j)
	if err != nil || len(entries) == 0 {
		return stiu.TemporalEntry{}, false
	}
	h := int(e.tempHint[j].Load())
	if h >= 0 && h < len(entries) && entries[h].Start <= t &&
		(h+1 >= len(entries) || entries[h+1].Start > t) {
		return entries[h], true
	}
	lo := sort.Search(len(entries), func(i int) bool { return entries[i].Start > t })
	if lo == 0 {
		return stiu.TemporalEntry{}, false
	}
	e.tempHint[j].Store(int32(lo - 1))
	return entries[lo-1], true
}

func (e *Engine) refView(j, orig int) (*core.RefView, error) {
	k := [2]int{j, orig}
	if !e.DisableCache {
		if v, ok := e.refViews.Get(k); ok {
			return v, nil
		}
	}
	v, err := e.Arch.RefView(j, orig)
	if err != nil {
		return nil, err
	}
	if !e.DisableCache {
		e.refViews.Add(k, v)
	}
	return v, nil
}

// path builds (and caches) the partially decompressed traversal of
// instance orig of trajectory j: the edge skeleton is materialized,
// relative distances stay compressed until a point is touched.  Under
// concurrency two goroutines may race to build the same path; both builds
// are counted and the cache keeps the last one — duplicated work, never
// incorrect results.
func (e *Engine) path(j, orig int) (*lazyPath, error) {
	k := [2]int{j, orig}
	if !e.DisableCache {
		if p, ok := e.paths.Get(k); ok {
			return p, nil
		}
	}
	meta := e.Arch.Trajs[j].Insts[orig]
	numPoints := e.Arch.Trajs[j].NumPoints
	var pi *lazyPath
	if meta.IsRef {
		rv, err := e.refView(j, orig)
		if err != nil {
			return nil, err
		}
		pi, err = newLazyPath(e.Arch.Graph, rv.SV, rv.E, rv.FullTF(), numPoints, meta.P, rv.DecodeD)
		if err != nil {
			return nil, err
		}
	} else {
		rv, err := e.refView(j, meta.RefOrig)
		if err != nil {
			return nil, err
		}
		nv, err := e.Arch.NonRefView(j, orig, rv)
		if err != nil {
			return nil, err
		}
		eSeq, err := nv.ExpandE(rv)
		if err != nil {
			return nil, err
		}
		tf, err := nv.FullTF(rv)
		if err != nil {
			return nil, err
		}
		dFetch := func(k int) (float64, error) {
			for _, f := range nv.DFactors {
				if f.Pos == k {
					return f.RD, nil
				}
			}
			return rv.DecodeD(k)
		}
		pi, err = newLazyPath(e.Arch.Graph, rv.SV, eSeq, tf, numPoints, meta.P, dFetch)
		if err != nil {
			return nil, err
		}
	}
	e.pathsDecoded.Add(1)
	if !e.DisableCache {
		e.paths.Add(k, pi)
	}
	return pi, nil
}

// bracket finds i with T[i] <= t <= T[i+1] using the temporal index and a
// partial decode from t.pos; ok is false when t is outside the trajectory.
func (e *Engine) bracket(j int, t int64) (i int, ti, ti1 int64, ok bool) {
	entry, found := e.findTemporal(j, t)
	if !found {
		return 0, 0, 0, false
	}
	rec := e.Arch.Trajs[j]
	if entry.Pos < 0 {
		// The entry is the final timestamp.
		if entry.Start == t {
			return int(entry.No), t, t, true
		}
		return 0, 0, 0, false
	}
	var cur core.TimeCursor
	if err := rec.ResetTimeCursor(&cur, e.Arch.Opts.Ts, int(entry.Pos), entry.Start, int(entry.No)); err != nil {
		return 0, 0, 0, false
	}
	prevT := cur.T()
	prevI := cur.Index()
	for cur.Next() {
		if cur.T() >= t {
			return prevI, prevT, cur.T(), true
		}
		prevT = cur.T()
		prevI = cur.Index()
	}
	if prevT == t {
		return prevI, prevT, prevT, true
	}
	return 0, 0, 0, false
}

// timeAt partially decodes T[k] (and T[k+1] when wantNext) by resuming at
// the nearest temporal entry.
func (e *Engine) timeAt(j, k int, wantNext bool) (tk, tk1 int64, err error) {
	entry, found := e.Ix.FindTemporalByNo(j, k)
	if !found {
		return 0, 0, fmt.Errorf("query: no temporal entry for point %d", k)
	}
	rec := e.Arch.Trajs[j]
	if int(entry.No) == k && !wantNext {
		return entry.Start, 0, nil
	}
	if entry.Pos < 0 {
		if int(entry.No) == k {
			return entry.Start, entry.Start, nil
		}
		return 0, 0, fmt.Errorf("query: point %d beyond time stream", k)
	}
	var cur core.TimeCursor
	if err := rec.ResetTimeCursor(&cur, e.Arch.Opts.Ts, int(entry.Pos), entry.Start, int(entry.No)); err != nil {
		return 0, 0, err
	}
	for cur.Index() < k {
		if !cur.Next() {
			return 0, 0, fmt.Errorf("query: point %d beyond time stream", k)
		}
	}
	tk = cur.T()
	tk1 = tk
	if wantNext && cur.Next() {
		tk1 = cur.T()
	}
	return tk, tk1, nil
}

// Where implements the probabilistic where query (Definition 10): the
// locations at time t of the instances with probability >= alpha.
func (e *Engine) Where(j int, t int64, alpha float64) ([]WhereResult, error) {
	i, ti, ti1, ok := e.bracket(j, t)
	if !ok {
		return nil, nil
	}
	rec := e.Arch.Trajs[j]
	var out []WhereResult
	for orig := range rec.Insts {
		p := rec.Insts[orig].P
		if p < alpha {
			e.instancesSkipped.Add(1)
			continue
		}
		pi, err := e.path(j, orig)
		if err != nil {
			return nil, err
		}
		loc, err := pi.locationAt(i, ti, ti1, t)
		if err != nil {
			return nil, err
		}
		out = append(out, WhereResult{Inst: orig, P: p, Loc: loc})
	}
	return out, nil
}

// When implements the probabilistic when query (Definition 11): the times
// at which instances with probability >= alpha passed the location.
func (e *Engine) When(j int, loc roadnet.Position, alpha float64) ([]WhenResult, error) {
	return e.AppendWhen(nil, j, loc, alpha)
}

// AppendWhen appends the when-query results to dst and returns the
// extended slice.  Callers that recycle dst across queries pay zero
// steady-state allocations; the appended window is sorted by (Inst, T),
// entries before it are untouched.
func (e *Engine) AppendWhen(dst []WhenResult, j int, loc roadnet.Position, alpha float64) ([]WhenResult, error) {
	g := e.Arch.Graph
	x, y := g.Coords(loc)
	re := e.Ix.Grid.CellOf(x, y)
	bucket, err := e.Ix.TrajRegion(j, re)
	if err != nil {
		return dst, err
	}
	if bucket == nil && !e.DisablePruning {
		return dst, nil // no instance of this trajectory enters the region
	}
	rec := e.Arch.Trajs[j]

	// Group-level filtering: Lemma 1 skips reconstructing a reference's
	// non-references when every tuple's pmax < alpha.  Plans live in flat
	// epoch-stamped scratch indexed by the group's reference orig.
	sc := e.getWhenScratch()
	defer e.putWhenScratch(sc)
	sc.epoch++
	off := e.instOffset[j]
	if e.DisablePruning {
		for orig := range rec.Insts {
			gk := orig
			if meta := &rec.Insts[orig]; !meta.IsRef {
				gk = meta.RefOrig
			}
			sc.pstamp[off+gk] = sc.epoch
			sc.plan[off+gk] = planRef | planNonRefs
		}
	} else {
		for i := range bucket.Refs {
			rt := &bucket.Refs[i]
			gi := off + int(rt.Orig)
			if sc.pstamp[gi] != sc.epoch {
				sc.pstamp[gi] = sc.epoch
				sc.plan[gi] = 0
			}
			if rt.FV != roadnet.NoVertex && rec.Insts[rt.Orig].P >= alpha {
				sc.plan[gi] |= planRef
			}
			if float64(rt.PMax) >= alpha {
				sc.plan[gi] |= planNonRefs // Lemma 1 does not apply
			}
		}
	}

	// Group keys are always reference origs, so a single ascending pass
	// over the instances visits every stamped plan deterministically.
	n0 := len(dst)
	for gk := range rec.Insts {
		gi := off + gk
		if sc.pstamp[gi] != sc.epoch {
			continue
		}
		pl := sc.plan[gi]
		if pl&planRef != 0 || e.DisablePruning {
			if dst, err = e.appendWhenInst(dst, sc, j, gk, loc, alpha); err != nil {
				return dst, err
			}
		}
		if pl&planNonRefs != 0 {
			for orig := range rec.Insts {
				if meta := &rec.Insts[orig]; !meta.IsRef && meta.RefOrig == gk {
					if dst, err = e.appendWhenInst(dst, sc, j, orig, loc, alpha); err != nil {
						return dst, err
					}
				}
			}
		} else {
			e.instancesSkipped.Add(1) // Lemma 1 skipped the group's non-refs
		}
	}
	win := dst[n0:]
	slices.SortFunc(win, func(a, b WhenResult) int {
		if a.Inst != b.Inst {
			return a.Inst - b.Inst
		}
		switch {
		case a.T < b.T:
			return -1
		case a.T > b.T:
			return 1
		}
		return 0
	})
	return dst, nil
}

// appendWhenInst appends the passages of one instance through loc.
func (e *Engine) appendWhenInst(dst []WhenResult, sc *whenScratch, j, orig int, loc roadnet.Position, alpha float64) ([]WhenResult, error) {
	p := e.Arch.Trajs[j].Insts[orig].P
	if p < alpha {
		e.instancesSkipped.Add(1)
		return dst, nil
	}
	pi, err := e.path(j, orig)
	if err != nil {
		return dst, err
	}
	sc.passages, err = pi.appendPassagesAt(sc.passages[:0], loc)
	if err != nil {
		return dst, err
	}
	for _, pas := range sc.passages {
		tk, tk1, err := e.timeAt(j, pas.i, true)
		if err != nil {
			return dst, err
		}
		dst = append(dst, WhenResult{
			Inst: orig,
			P:    p,
			T:    tk + int64(pas.frac*float64(tk1-tk)+0.5),
		})
	}
	return dst, nil
}

// Range implements the probabilistic range query (Definition 12): the
// trajectories whose instances inside RE at time t carry total probability
// >= alpha.
func (e *Engine) Range(re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	return e.AppendRange(nil, re, t, alpha)
}

// AppendRange appends the range-query results to dst and returns the
// extended slice; recycling dst across queries avoids the per-query
// result allocation.
func (e *Engine) AppendRange(dst []int, re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	interval := e.Ix.IntervalOf(t)

	// Lemma 4 preparation: one pass over the covering cells' buckets
	// upper-bounds each trajectory's probability mass inside them.  The
	// accumulators are flat epoch-stamped slices from the scratch pool —
	// no per-query maps.
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.epoch++
	sc.touched = sc.touched[:0]
	cells := e.Ix.Grid.AppendCellsInRect(sc.cells[:0], re)
	sc.cells = cells
	if !e.DisablePruning {
		for _, cell := range cells {
			b, err := e.Ix.Buckets(interval, cell)
			if err != nil {
				return dst, err
			}
			if b == nil {
				continue
			}
			for i := range b.Refs {
				rt := &b.Refs[i]
				gi := e.instOffset[rt.Traj] + int(rt.Orig)
				if sc.gstamp[gi] != sc.epoch {
					sc.gstamp[gi] = sc.epoch
					sc.group[gi] = 0
					sc.touched = append(sc.touched, touchedGroup{traj: rt.Traj, gi: int32(gi)})
				}
				sc.group[gi] += float64(rt.PTotal)
			}
		}
		// Fold group sums (each capped at 1) into per-trajectory bounds.
		for _, tg := range sc.touched {
			v := sc.group[tg.gi]
			if v > 1 {
				v = 1
			}
			if sc.bstamp[tg.traj] != sc.epoch {
				sc.bstamp[tg.traj] = sc.epoch
				sc.bound[tg.traj] = 0
			}
			sc.bound[tg.traj] += v
		}
	}

	cands, err := e.Ix.Candidates(interval)
	if err != nil {
		return dst, err
	}
	for _, j32 := range cands {
		j := int(j32)
		rec := e.Arch.Trajs[j]

		if !e.DisablePruning {
			// Lemma 4: prune when the bound cannot reach alpha.
			bound := 0.0
			if sc.bstamp[j] == sc.epoch {
				bound = sc.bound[j]
			}
			if bound < alpha {
				e.trajsPruned.Add(1)
				continue
			}
		}

		i, ti, ti1, ok := e.bracket(j, t)
		if !ok {
			continue
		}

		// Instances in descending probability for early acceptance,
		// precomputed at engine construction.
		confirmed := 0.0
		remaining := e.probSum[j]
		accepted := false
		for _, o32 := range e.probOrder[j] {
			orig := int(o32)
			p := rec.Insts[orig].P
			remaining -= p
			inside, err := e.instanceInside(j, orig, re, i, ti, ti1, t)
			if err != nil {
				return dst, err
			}
			if inside {
				confirmed += p
				if confirmed >= alpha { // Lemma 3
					accepted = true
					if !e.DisablePruning {
						e.trajsAccepted.Add(1)
					}
					break
				}
			}
			if !e.DisablePruning && confirmed+remaining < alpha {
				break // cannot reach alpha anymore
			}
		}
		if !accepted && confirmed >= alpha {
			accepted = true
		}
		if accepted {
			dst = append(dst, j)
		}
	}
	return dst, nil
}

// instanceInside tests whether the instance overlaps RE at time t, using
// Lemma 2 on the subpath between the bracketing points before falling back
// to exact interpolation.
func (e *Engine) instanceInside(j, orig int, re roadnet.Rect, i int, ti, ti1, t int64) (bool, error) {
	g := e.Arch.Graph
	pi, err := e.path(j, orig)
	if err != nil {
		return false, err
	}
	if i >= len(pi.PointEdge) {
		return false, nil
	}
	k0 := pi.PointEdge[i]
	k1 := k0
	if i+1 < len(pi.PointEdge) {
		k1 = pi.PointEdge[i+1]
	}
	if !e.DisablePruning {
		allIn, anyTouch := true, false
		for k := k0; k <= k1; k++ {
			edge := g.Edge(pi.Edges[k])
			a, b := g.Vertex(edge.From), g.Vertex(edge.To)
			in := re.Contains(a.X, a.Y) && re.Contains(b.X, b.Y)
			touch := re.IntersectsSegment(a.X, a.Y, b.X, b.Y)
			allIn = allIn && in
			anyTouch = anyTouch || touch
		}
		if allIn {
			return true, nil // Lemma 2(i): sp ⊆ RE
		}
		if !anyTouch {
			return false, nil // Lemma 2(ii): sp ∩ RE = ∅
		}
	}
	loc, err := pi.locationAt(i, ti, ti1, t)
	if err != nil {
		return false, err
	}
	x, y := g.Coords(loc)
	return re.Contains(x, y), nil
}
