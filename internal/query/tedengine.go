package query

import (
	"sort"

	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/ted"
	"utcq/internal/traj"
)

// TEDIndex is the spatio-temporal index for the adapted TED baseline: the
// same partitioning as StIU, but with one tuple per instance and region
// (no reference grouping, no ptotal/pmax summaries), so queries must
// decompress every candidate instance.
type TEDIndex struct {
	Opts stiu.Options
	Grid *roadnet.Grid

	// Temporal[j]: (t.start, t.no, pairIdx) per interval; pairIdx points at
	// the time pair to resume from.
	Temporal [][]stiu.TemporalEntry

	// Per interval: active trajectories.
	Intervals map[int][]int32

	// byTrajRegion[j][re]: instances of trajectory j passing region re.
	byTrajRegion []map[roadnet.RegionID][]int32
}

// BuildTEDIndex constructs the baseline index.
func BuildTEDIndex(a *ted.Archive, opts stiu.Options) (*TEDIndex, error) {
	ix := &TEDIndex{
		Opts:         opts,
		Grid:         roadnet.NewGrid(a.Graph, opts.GridNX, opts.GridNY),
		Temporal:     make([][]stiu.TemporalEntry, len(a.Trajs)),
		Intervals:    make(map[int][]int32),
		byTrajRegion: make([]map[roadnet.RegionID][]int32, len(a.Trajs)),
	}
	for j := range a.Trajs {
		T, err := a.DecodeTime(j)
		if err != nil {
			return nil, err
		}
		lastInterval := -1
		for i, t := range T {
			iv := int(t / opts.IntervalDur)
			if iv != lastInterval {
				// Resume position: the last pair with no <= i.
				pairIdx := 0
				for k := 0; k < a.Trajs[j].NumPairs; k++ {
					no, _, err := a.Trajs[j].PairAt(k)
					if err != nil {
						return nil, err
					}
					if no <= i {
						pairIdx = k
					} else {
						break
					}
				}
				ix.Temporal[j] = append(ix.Temporal[j], stiu.TemporalEntry{
					Start: t, No: int32(i), Pos: int32(pairIdx),
				})
				lastInterval = iv
			}
		}
		for iv := int(T[0] / opts.IntervalDur); iv <= int(T[len(T)-1]/opts.IntervalDur); iv++ {
			ix.Intervals[iv] = append(ix.Intervals[iv], int32(j))
		}

		ix.byTrajRegion[j] = make(map[roadnet.RegionID][]int32)
		for i := range a.Trajs[j].Insts {
			ins, err := a.DecodeInstance(j, i)
			if err != nil {
				return nil, err
			}
			pi, err := buildPathFromInstance(a.Graph, ins)
			if err != nil {
				return nil, err
			}
			seen := make(map[roadnet.RegionID]bool)
			for _, e := range pi.Edges {
				for _, re := range ix.Grid.CellsOfEdge(a.Graph, e) {
					if !seen[re] {
						seen[re] = true
						ix.byTrajRegion[j][re] = append(ix.byTrajRegion[j][re], int32(i))
					}
				}
			}
		}
	}
	for iv := range ix.Intervals {
		sort.Slice(ix.Intervals[iv], func(a, b int) bool { return ix.Intervals[iv][a] < ix.Intervals[iv][b] })
	}
	return ix, nil
}

// SizeBits returns the index size under the same accounting as StIU: one
// (fv.id, fv.no, d.pos)-style tuple per (instance, region) plus temporal
// entries.
func (ix *TEDIndex) SizeBits(vertexBits int) int64 {
	n := int64(0)
	for _, entries := range ix.Temporal {
		n += int64(len(entries)) * (17 + 12 + 32)
	}
	for _, regions := range ix.byTrajRegion {
		for _, insts := range regions {
			n += int64(len(insts)) * int64(vertexBits+12+32)
		}
	}
	return n
}

// TEDEngine answers the same probabilistic queries over the TED baseline.
// TED has no uncertainty-aware pruning: every candidate instance with
// p >= alpha is fully decompressed.
type TEDEngine struct {
	Arch *ted.Archive
	Ix   *TEDIndex

	// DisableCache makes every query pay its own decompression cost,
	// including re-decoding the instance's matrix group.
	DisableCache bool

	paths map[[2]int]*pathInfo
}

// NewTEDEngine returns an engine over a TED archive and index.
func NewTEDEngine(a *ted.Archive, ix *TEDIndex) *TEDEngine {
	return &TEDEngine{Arch: a, Ix: ix, paths: make(map[[2]int]*pathInfo)}
}

func (e *TEDEngine) path(j, i int) (*pathInfo, error) {
	k := [2]int{j, i}
	if p, ok := e.paths[k]; ok {
		return p, nil
	}
	// Full per-instance decompression; without caching this includes
	// re-decoding the jointly compressed matrix group.
	var ins *traj.Instance
	var err error
	if e.DisableCache {
		ins, err = e.Arch.DecodeInstanceNoCache(j, i)
	} else {
		ins, err = e.Arch.DecodeInstance(j, i)
	}
	if err != nil {
		return nil, err
	}
	pi, err := buildPathFromInstance(e.Arch.Graph, ins)
	if err != nil {
		return nil, err
	}
	if !e.DisableCache {
		e.paths[k] = pi
	}
	return pi, nil
}

// timeAt returns T[k] and T[k+1] by interpolating between stored pairs
// (TED's native partial time access).
func (e *TEDEngine) timeAt(j, k int) (tk, tk1 int64, ok bool) {
	rec := e.Arch.Trajs[j]
	at := func(idx int) (int64, bool) {
		// Binary search the last pair with no <= idx.
		lo, hi, found := 0, rec.NumPairs-1, -1
		var fNo int
		var fT int64
		for lo <= hi {
			mid := (lo + hi) / 2
			no, t, err := rec.PairAt(mid)
			if err != nil {
				return 0, false
			}
			if no <= idx {
				found, fNo, fT = mid, no, t
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if found < 0 {
			return 0, false
		}
		if fNo == idx {
			return fT, true
		}
		if found+1 >= rec.NumPairs {
			return 0, false
		}
		nNo, nT, err := rec.PairAt(found + 1)
		if err != nil || nNo <= fNo {
			return 0, false
		}
		return fT + (nT-fT)*int64(idx-fNo)/int64(nNo-fNo), true
	}
	tk, ok1 := at(k)
	if !ok1 {
		return 0, 0, false
	}
	if k+1 >= rec.NumPoints {
		return tk, tk, true
	}
	tk1, ok2 := at(k + 1)
	if !ok2 {
		return tk, tk, true
	}
	return tk, tk1, true
}

// bracket finds i with T[i] <= t <= T[i+1] via the pair stream.
func (e *TEDEngine) bracket(j int, t int64) (i int, ti, ti1 int64, ok bool) {
	rec := e.Arch.Trajs[j]
	k, no, pt, found := rec.FindPairLE(t)
	if !found {
		return 0, 0, 0, false
	}
	if k == rec.NumPairs-1 {
		if pt == t {
			return no, t, t, true
		}
		return 0, 0, 0, false
	}
	nNo, nT, err := rec.PairAt(k + 1)
	if err != nil || nNo <= no {
		return 0, 0, 0, false
	}
	// The run between the pairs is arithmetic.
	d := (nT - pt) / int64(nNo-no)
	if d <= 0 {
		return 0, 0, 0, false
	}
	off := (t - pt) / d
	i = no + int(off)
	ti = pt + off*d
	if i >= nNo {
		i, ti = nNo-1, nT-d
	}
	return i, ti, ti + d, true
}

// Where is the probabilistic where query over the TED baseline.
func (e *TEDEngine) Where(j int, t int64, alpha float64) ([]WhereResult, error) {
	i, ti, ti1, ok := e.bracket(j, t)
	if !ok {
		return nil, nil
	}
	rec := e.Arch.Trajs[j]
	var out []WhereResult
	for inst := range rec.Insts {
		p := rec.Insts[inst].P
		if p < alpha {
			continue
		}
		pi, err := e.path(j, inst)
		if err != nil {
			return nil, err
		}
		out = append(out, WhereResult{Inst: inst, P: p, Loc: pi.locationAt(e.Arch.Graph, i, ti, ti1, t)})
	}
	return out, nil
}

// When is the probabilistic when query over the TED baseline.
func (e *TEDEngine) When(j int, loc roadnet.Position, alpha float64) ([]WhenResult, error) {
	g := e.Arch.Graph
	x, y := g.Coords(loc)
	re := e.Ix.Grid.CellOf(x, y)
	insts := e.Ix.byTrajRegion[j][re]
	rec := e.Arch.Trajs[j]
	var out []WhenResult
	for _, i32 := range insts {
		inst := int(i32)
		p := rec.Insts[inst].P
		if p < alpha {
			continue
		}
		pi, err := e.path(j, inst)
		if err != nil {
			return nil, err
		}
		for _, pas := range pi.passagesAt(g, loc) {
			tk, tk1, ok := e.timeAt(j, pas.i)
			if !ok {
				continue
			}
			out = append(out, WhenResult{Inst: inst, P: p, T: tk + int64(pas.frac*float64(tk1-tk)+0.5)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Inst != out[b].Inst {
			return out[a].Inst < out[b].Inst
		}
		return out[a].T < out[b].T
	})
	return out, nil
}

// Range is the probabilistic range query over the TED baseline: no
// Lemma 2-4 filtering, every candidate instance is tested exactly.
func (e *TEDEngine) Range(re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	g := e.Arch.Graph
	interval := int(t / e.Ix.Opts.IntervalDur)
	var out []int
	for _, j32 := range e.Ix.Intervals[interval] {
		j := int(j32)
		i, ti, ti1, ok := e.bracket(j, t)
		if !ok {
			continue
		}
		total := 0.0
		for inst := range e.Arch.Trajs[j].Insts {
			pi, err := e.path(j, inst)
			if err != nil {
				return nil, err
			}
			loc := pi.locationAt(g, i, ti, ti1, t)
			x, y := g.Coords(loc)
			if re.Contains(x, y) {
				total += e.Arch.Trajs[j].Insts[inst].P
			}
		}
		if total >= alpha {
			out = append(out, j)
		}
	}
	return out, nil
}
