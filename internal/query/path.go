// Package query implements the probabilistic where, when and range queries
// of Section 5.3 over compressed uncertain trajectories: the UTCQ engine
// (StIU index, partial decompression, filtering Lemmas 1-4), the adapted
// TED engine used as the paper's comparison, and an uncompressed oracle
// used for correctness tests and the accuracy experiments of Fig 11.
//
// Concurrency: Engine is safe for concurrent use — one shared instance
// serves any number of goroutines, holding decoded state in sharded LRU
// caches bounded by a configurable entry budget and maintaining its work
// counters atomically.  Configuration fields (DisablePruning,
// DisableCache) must be set before the engine is shared.  TEDEngine and
// Oracle remain single-goroutine measurement harnesses.
package query

import (
	"fmt"
	"sort"

	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// pathInfo is a decoded instance traversal prepared for interpolation: the
// distinct edges in order, cumulative lengths, and each mapped location as
// a linear coordinate along the path.
type pathInfo struct {
	P          float64
	Edges      []roadnet.EdgeID
	EdgeCum    []float64 // EdgeCum[k]: path length before Edges[k]
	PointEdge  []int     // index into Edges per point
	PointCoord []float64 // linear path coordinate per point
}

// buildPath decodes (SV, E, TF, D) into a pathInfo.
func buildPath(g *roadnet.Graph, sv roadnet.VertexID, E []uint16, tf []bool, D []float64, p float64) (*pathInfo, error) {
	pi := &pathInfo{P: p}
	cur := sv
	cum := 0.0
	k := 0
	for i, no := range E {
		if no != 0 {
			e, ok := g.OutEdge(cur, int(no))
			if !ok {
				return nil, fmt.Errorf("query: no outgoing edge %d at vertex %d", no, cur)
			}
			pi.Edges = append(pi.Edges, e)
			pi.EdgeCum = append(pi.EdgeCum, cum)
			cum += g.Edge(e).Length
			cur = g.Edge(e).To
		}
		if i < len(tf) && tf[i] {
			if len(pi.Edges) == 0 {
				return nil, fmt.Errorf("query: point before first edge")
			}
			ei := len(pi.Edges) - 1
			coord := pi.EdgeCum[ei] + D[k]*g.Edge(pi.Edges[ei]).Length
			// Quantized distances may perturb ordering slightly; clamp to
			// keep coordinates monotone for interpolation.
			if n := len(pi.PointCoord); n > 0 && coord < pi.PointCoord[n-1] {
				coord = pi.PointCoord[n-1]
			}
			pi.PointEdge = append(pi.PointEdge, ei)
			pi.PointCoord = append(pi.PointCoord, coord)
			k++
		}
	}
	if k != len(D) {
		return nil, fmt.Errorf("query: placed %d of %d points", k, len(D))
	}
	return pi, nil
}

// buildPathFromInstance is the oracle's entry point.
func buildPathFromInstance(g *roadnet.Graph, ins *traj.Instance) (*pathInfo, error) {
	return buildPath(g, ins.SV, ins.E, ins.TF, ins.D, ins.P)
}

// totalLen returns the path's total length.
func (pi *pathInfo) totalLen(g *roadnet.Graph) float64 {
	last := len(pi.Edges) - 1
	return pi.EdgeCum[last] + g.Edge(pi.Edges[last]).Length
}

// positionAtCoord converts a linear coordinate back to a network position.
func (pi *pathInfo) positionAtCoord(g *roadnet.Graph, coord float64) roadnet.Position {
	k := sort.Search(len(pi.EdgeCum), func(i int) bool { return pi.EdgeCum[i] > coord })
	if k > 0 {
		k--
	}
	nd := coord - pi.EdgeCum[k]
	length := g.Edge(pi.Edges[k]).Length
	if nd > length {
		nd = length
	}
	if nd < 0 {
		nd = 0
	}
	return roadnet.Position{Edge: pi.Edges[k], NDist: nd}
}

// locationAt interpolates the position at time t between points i and i+1
// (constant speed along the path, as in Example 3).
func (pi *pathInfo) locationAt(g *roadnet.Graph, i int, ti, ti1, t int64) roadnet.Position {
	c0 := pi.PointCoord[i]
	if ti1 <= ti || i+1 >= len(pi.PointCoord) {
		return pi.positionAtCoord(g, c0)
	}
	c1 := pi.PointCoord[i+1]
	frac := float64(t-ti) / float64(ti1-ti)
	return pi.positionAtCoord(g, c0+(c1-c0)*frac)
}

// occurrences returns the path-edge indices where edge appears.
func (pi *pathInfo) occurrences(edge roadnet.EdgeID) []int {
	var out []int
	for k, e := range pi.Edges {
		if e == edge {
			out = append(out, k)
		}
	}
	return out
}

// timesAt returns, for a query location, the bracketing point index and
// interpolation fraction for every traversal of that location strictly
// inside the sampled part of the path.
type passage struct {
	i    int     // bracketing point index (between point i and i+1)
	frac float64 // position of the passage between T[i] and T[i+1]
}

func (pi *pathInfo) passagesAt(g *roadnet.Graph, loc roadnet.Position) []passage {
	var out []passage
	for _, k := range pi.occurrences(loc.Edge) {
		qcoord := pi.EdgeCum[k] + loc.NDist
		n := len(pi.PointCoord)
		if n == 0 || qcoord < pi.PointCoord[0] || qcoord > pi.PointCoord[n-1] {
			continue
		}
		// Find i with PointCoord[i] <= qcoord <= PointCoord[i+1].
		i := sort.Search(n, func(x int) bool { return pi.PointCoord[x] > qcoord })
		if i > 0 {
			i--
		}
		if i == n-1 {
			if n < 2 {
				out = append(out, passage{i: 0, frac: 0})
			} else {
				out = append(out, passage{i: i - 1, frac: 1})
			}
			continue
		}
		c0, c1 := pi.PointCoord[i], pi.PointCoord[i+1]
		frac := 0.0
		if c1 > c0 {
			frac = (qcoord - c0) / (c1 - c0)
		}
		out = append(out, passage{i: i, frac: frac})
	}
	return out
}

// WhereResult is one instance's location at the query time.
type WhereResult struct {
	Inst int
	P    float64
	Loc  roadnet.Position
}

// WhenResult is one instance's passage time at the query location.
type WhenResult struct {
	Inst int
	P    float64
	T    int64
}
