package query

import (
	"math"
	"math/rand"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/ted"
)

// harness bundles all three query paths over one generated dataset.
type harness struct {
	ds     *gen.Dataset
	eng    *Engine
	tedEng *TEDEngine
	oracle *Oracle
}

func buildHarness(t *testing.T, p gen.Profile, n int, seed int64) *harness {
	t.Helper()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(p.Ts)
	c, err := core.NewCompressor(ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	sopts := stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	ix, err := stiu.Build(a, sopts)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := ted.NewCompressor(ds.Graph, ted.Options{EtaD: opts.EtaD, EtaP: opts.EtaP, Ts: p.Ts})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := tc.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	tix, err := BuildTEDIndex(ta, sopts)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		ds:     ds,
		eng:    NewEngine(a, ix),
		tedEng: NewTEDEngine(ta, tix),
		oracle: NewOracle(ds.Graph, ds.Trajectories),
	}
}

// pNearAlpha reports whether an instance's probability is too close to the
// threshold to compare result membership across the lossy encodings.
func pNearAlpha(h *harness, j, inst int, alpha float64) bool {
	return math.Abs(h.ds.Trajectories[j].Instances[inst].P-alpha) <= h.eng.Arch.Opts.EtaP+1e-9
}

func TestWhereEquivalence(t *testing.T) {
	h := buildHarness(t, gen.CD(), 40, 21)
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		j := rng.Intn(len(h.ds.Trajectories))
		T := h.ds.Trajectories[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		alpha := []float64{0, 0.1, 0.3}[rng.Intn(3)]

		want, err := h.oracle.Where(j, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, impl := range []struct {
			name string
			run  func() ([]WhereResult, error)
		}{
			{"utcq", func() ([]WhereResult, error) { return h.eng.Where(j, tq, alpha) }},
			{"ted", func() ([]WhereResult, error) { return h.tedEng.Where(j, tq, alpha) }},
		} {
			got, err := impl.run()
			if err != nil {
				t.Fatalf("%s: %v", impl.name, err)
			}
			gotBy := map[int]WhereResult{}
			for _, r := range got {
				gotBy[r.Inst] = r
			}
			for _, w := range want {
				g, ok := gotBy[w.Inst]
				if !ok {
					if pNearAlpha(h, j, w.Inst, alpha) {
						continue
					}
					t.Fatalf("%s traj %d t=%d a=%g: missing instance %d", impl.name, j, tq, alpha, w.Inst)
				}
				gx, gy := h.ds.Graph.Coords(g.Loc)
				wx, wy := h.ds.Graph.Coords(w.Loc)
				if d := math.Hypot(gx-wx, gy-wy); d > 25 {
					t.Errorf("%s traj %d t=%d inst %d: off by %.1fm", impl.name, j, tq, w.Inst, d)
				}
			}
			for inst := range gotBy {
				found := false
				for _, w := range want {
					if w.Inst == inst {
						found = true
					}
				}
				if !found && !pNearAlpha(h, j, inst, alpha) {
					t.Fatalf("%s traj %d: spurious instance %d", impl.name, j, inst)
				}
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d checks ran", checked)
	}
}

func TestWhenEquivalence(t *testing.T) {
	h := buildHarness(t, gen.HZ(), 30, 33)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		j := rng.Intn(len(h.ds.Trajectories))
		u := h.ds.Trajectories[j]
		// Query a location on a random instance's path.
		inst := rng.Intn(len(u.Instances))
		pi, err := h.oracle.path(j, inst)
		if err != nil {
			t.Fatal(err)
		}
		edge := pi.Edges[rng.Intn(len(pi.Edges))]
		loc := h.ds.Graph.PositionAtRD(edge, rng.Float64())
		alpha := []float64{0, 0.05, 0.2}[rng.Intn(3)]

		want, err := h.oracle.When(j, loc, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.eng.When(j, loc, alpha)
		if err != nil {
			t.Fatal(err)
		}
		// Compare per-instance passage counts and times.
		wantBy := map[int][]int64{}
		for _, w := range want {
			wantBy[w.Inst] = append(wantBy[w.Inst], w.T)
		}
		gotBy := map[int][]int64{}
		for _, g := range got {
			gotBy[g.Inst] = append(gotBy[g.Inst], g.T)
		}
		for inst, wts := range wantBy {
			gts, ok := gotBy[inst]
			if !ok {
				if pNearAlpha(h, j, inst, alpha) {
					continue
				}
				t.Fatalf("traj %d inst %d: no passages found (want %v)", j, inst, wts)
			}
			if len(gts) != len(wts) {
				t.Fatalf("traj %d inst %d: %d passages, want %d", j, inst, len(gts), len(wts))
			}
			for k := range wts {
				// Time differences stem from quantized distances shifting
				// the interpolation; they are bounded by the sample
				// interval at these error bounds.
				if d := math.Abs(float64(gts[k] - wts[k])); d > float64(h.ds.Profile.Ts)+30 {
					t.Errorf("traj %d inst %d passage %d: t off by %.0fs", j, inst, k, d)
				}
			}
		}
		for inst := range gotBy {
			if _, ok := wantBy[inst]; !ok && !pNearAlpha(h, j, inst, alpha) {
				t.Fatalf("traj %d: spurious passages for instance %d", j, inst)
			}
		}
	}
}

func TestRangeEquivalence(t *testing.T) {
	h := buildHarness(t, gen.CD(), 40, 44)
	rng := rand.New(rand.NewSource(9))
	bounds := h.ds.Graph.Bounds()
	mismatches := 0
	for trial := 0; trial < 120; trial++ {
		j := rng.Intn(len(h.ds.Trajectories))
		T := h.ds.Trajectories[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		w := (bounds.MaxX - bounds.MinX) * (0.05 + rng.Float64()*0.2)
		hgt := (bounds.MaxY - bounds.MinY) * (0.05 + rng.Float64()*0.2)
		x := bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX-w)
		y := bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY-hgt)
		re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + hgt}
		alpha := []float64{0.2, 0.5, 0.8}[rng.Intn(3)]

		want, err := h.oracle.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.eng.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := map[int]bool{}
		for _, j := range want {
			wantSet[j] = true
		}
		gotSet := map[int]bool{}
		for _, j := range got {
			gotSet[j] = true
		}
		for _, j := range want {
			if !gotSet[j] {
				mismatches++ // borderline: quantized locations/probabilities
			}
		}
		for _, j := range got {
			if !wantSet[j] {
				mismatches++
			}
		}
	}
	// Quantization can flip borderline trajectories; systematic errors
	// would flip far more than a handful.
	if mismatches > 12 {
		t.Errorf("%d membership mismatches across 120 random range queries", mismatches)
	}
}

// TestRangePruningConsistency: pruning on and off must agree exactly.
func TestRangePruningConsistency(t *testing.T) {
	h := buildHarness(t, gen.CD(), 30, 55)
	rng := rand.New(rand.NewSource(11))
	bounds := h.ds.Graph.Bounds()
	unpruned := NewEngine(h.eng.Arch, h.eng.Ix)
	unpruned.DisablePruning = true
	for trial := 0; trial < 100; trial++ {
		j := rng.Intn(len(h.ds.Trajectories))
		T := h.ds.Trajectories[j].T
		tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
		w := (bounds.MaxX - bounds.MinX) * 0.15
		x := bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX-w)
		y := bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY-w)
		re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
		alpha := rng.Float64()

		a, err := h.eng.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		b, err := unpruned.Range(re, tq, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("pruned %v vs unpruned %v (re=%+v t=%d a=%g)", a, b, re, tq, alpha)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("pruned %v vs unpruned %v", a, b)
			}
		}
	}
	if h.eng.Stats().TrajsPruned == 0 {
		t.Error("Lemma 4 never fired across 100 queries")
	}
}

// TestWhenPruningConsistency: Lemma 1 on and off must agree exactly.
func TestWhenPruningConsistency(t *testing.T) {
	h := buildHarness(t, gen.HZ(), 25, 66)
	rng := rand.New(rand.NewSource(13))
	unpruned := NewEngine(h.eng.Arch, h.eng.Ix)
	unpruned.DisablePruning = true
	for trial := 0; trial < 150; trial++ {
		j := rng.Intn(len(h.ds.Trajectories))
		u := h.ds.Trajectories[j]
		inst := rng.Intn(len(u.Instances))
		pi, err := h.oracle.path(j, inst)
		if err != nil {
			t.Fatal(err)
		}
		edge := pi.Edges[rng.Intn(len(pi.Edges))]
		loc := h.ds.Graph.PositionAtRD(edge, rng.Float64())
		alpha := rng.Float64() * 0.5

		a, err := h.eng.When(j, loc, alpha)
		if err != nil {
			t.Fatal(err)
		}
		b, err := unpruned.When(j, loc, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("pruned %+v vs unpruned %+v", a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("pruned %+v vs unpruned %+v", a, b)
			}
		}
	}
}
