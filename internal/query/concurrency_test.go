package query

import (
	"math/rand"
	"sync"
	"testing"

	"utcq/internal/gen"
	"utcq/internal/roadnet"
)

// concurrencyWorkload precomputes a deterministic mixed workload so the
// concurrent run and the serial baseline execute exactly the same queries.
type mixedQuery struct {
	kind  int // 0 = where, 1 = when, 2 = range
	j     int
	t     int64
	loc   roadnet.Position
	re    roadnet.Rect
	alpha float64
}

func mixedWorkload(t *testing.T, h *harness, n int, seed int64) []mixedQuery {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bounds := h.ds.Graph.Bounds()
	out := make([]mixedQuery, 0, n)
	for len(out) < n {
		j := rng.Intn(len(h.ds.Trajectories))
		u := h.ds.Trajectories[j]
		q := mixedQuery{kind: rng.Intn(3), j: j, alpha: rng.Float64() * 0.6}
		switch q.kind {
		case 0:
			q.t = u.T[0] + rng.Int63n(u.T[len(u.T)-1]-u.T[0]+1)
		case 1:
			ins := &u.Instances[rng.Intn(len(u.Instances))]
			path, err := ins.PathEdges(h.ds.Graph)
			if err != nil || len(path) == 0 {
				continue
			}
			q.loc = h.ds.Graph.PositionAtRD(path[rng.Intn(len(path))], rng.Float64())
		case 2:
			q.t = u.T[0] + rng.Int63n(u.T[len(u.T)-1]-u.T[0]+1)
			w := (bounds.MaxX - bounds.MinX) * 0.1
			x := bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX-w)
			y := bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY-w)
			q.re = roadnet.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
		}
		out = append(out, q)
	}
	return out
}

func runMixed(t *testing.T, e *Engine, q mixedQuery) interface{} {
	t.Helper()
	switch q.kind {
	case 0:
		r, err := e.Where(q.j, q.t, q.alpha)
		if err != nil {
			t.Error(err)
		}
		return r
	case 1:
		r, err := e.When(q.j, q.loc, q.alpha)
		if err != nil {
			t.Error(err)
		}
		return r
	default:
		r, err := e.Range(q.re, q.t, q.alpha)
		if err != nil {
			t.Error(err)
		}
		return r
	}
}

// TestEngineConcurrentStress hammers one shared Engine from many
// goroutines mixing Where/When/Range (run with -race), then re-runs the
// same workload serially on a fresh engine and requires identical results.
func TestEngineConcurrentStress(t *testing.T) {
	h := buildHarness(t, gen.CD(), 30, 77)
	const goroutines = 8
	const perG = 60
	queries := mixedWorkload(t, h, goroutines*perG, 99)

	results := make([]interface{}, len(queries))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * perG; i < (g+1)*perG; i++ {
				results[i] = runMixed(t, h.eng, queries[i])
			}
		}(g)
	}
	wg.Wait()

	// Serial baseline on a fresh engine over the same archive and index.
	baseline := NewEngine(h.eng.Arch, h.eng.Ix)
	for i, q := range queries {
		want := runMixed(t, baseline, q)
		if !resultsEqual(results[i], want) {
			t.Fatalf("query %d (kind %d): concurrent result %v != serial %v", i, q.kind, results[i], want)
		}
	}

	s := h.eng.Stats()
	if s.PathsDecoded == 0 {
		t.Error("stress run decoded no paths")
	}
	if s.CacheHits+s.CacheMisses == 0 {
		t.Error("stress run never touched the caches")
	}
}

func resultsEqual(a, b interface{}) bool {
	switch x := a.(type) {
	case []WhereResult:
		y, ok := b.([]WhereResult)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []WhenResult:
		y, ok := b.([]WhenResult)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []int:
		y, ok := b.([]int)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return a == nil && b == nil
}

// TestEngineCacheBounded: under a query storm from several goroutines the
// caches never exceed their configured entry budget, and the hit/miss
// counters stay consistent with the lookups performed.
func TestEngineCacheBounded(t *testing.T) {
	h := buildHarness(t, gen.CD(), 30, 78)
	const budget = 16
	e := NewEngineWithOptions(h.eng.Arch, h.eng.Ix, EngineOptions{CacheEntries: budget, CacheShards: 4})
	queries := mixedWorkload(t, h, 400, 101)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations sync.Map
	wg.Add(1)
	go func() { // watchdog: the bound must hold mid-storm, not just after
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := e.Stats()
			if s.CachedViews > budget {
				violations.Store("views", s.CachedViews)
			}
			if s.CachedPaths > budget {
				violations.Store("paths", s.CachedPaths)
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := g * 100; i < (g+1)*100; i++ {
				runMixed(t, e, queries[i])
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	wg.Wait()

	violations.Range(func(k, v interface{}) bool {
		t.Errorf("%s cache exceeded budget %d: reached %v", k, budget, v)
		return true
	})

	s := e.Stats()
	if s.CachedViews > budget || s.CachedPaths > budget {
		t.Errorf("final cache sizes (%d views, %d paths) exceed budget %d", s.CachedViews, s.CachedPaths, budget)
	}
	if s.CacheBudget != budget {
		t.Errorf("CacheBudget = %d, want %d", s.CacheBudget, budget)
	}
	if s.CacheHits+s.CacheMisses == 0 {
		t.Error("no cache lookups recorded")
	}
	if s.CacheMisses < int64(s.CachedViews+s.CachedPaths) {
		t.Errorf("misses (%d) below resident entries (%d): counters inconsistent",
			s.CacheMisses, s.CachedViews+s.CachedPaths)
	}

	// A warm single-threaded replay of one query must be all hits: the
	// miss counter stays put while the hit counter advances.  A mid-span
	// where query with alpha 0 always decodes paths, so it must populate
	// and then reuse cache entries.
	u := h.ds.Trajectories[0]
	q := mixedQuery{kind: 0, j: 0, t: (u.T[0] + u.T[len(u.T)-1]) / 2, alpha: 0}
	runMixed(t, e, q)
	before := e.Stats()
	runMixed(t, e, q)
	after := e.Stats()
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("warm replay missed: %d -> %d", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("warm replay recorded no hits: %d -> %d", before.CacheHits, after.CacheHits)
	}
}

// TestDisableCacheKeepsMeasurementModel: with DisableCache set, nothing is
// retained and every query pays its own decompression, as the paper's
// measurement model requires.
func TestDisableCacheKeepsMeasurementModel(t *testing.T) {
	h := buildHarness(t, gen.CD(), 10, 79)
	e := NewEngine(h.eng.Arch, h.eng.Ix)
	e.DisableCache = true
	u := h.ds.Trajectories[0]
	tq := (u.T[0] + u.T[len(u.T)-1]) / 2
	if _, err := e.Where(0, tq, 0.1); err != nil {
		t.Fatal(err)
	}
	first := e.Stats()
	if first.CachedViews != 0 || first.CachedPaths != 0 {
		t.Errorf("DisableCache retained %d views, %d paths", first.CachedViews, first.CachedPaths)
	}
	if first.CacheHits+first.CacheMisses != 0 {
		t.Errorf("DisableCache touched the caches (%d lookups)", first.CacheHits+first.CacheMisses)
	}
	if _, err := e.Where(0, tq, 0.1); err != nil {
		t.Fatal(err)
	}
	second := e.Stats()
	if second.PathsDecoded <= first.PathsDecoded {
		t.Error("second query did not pay its own decompression")
	}
}
