package query

import (
	"math/rand"
	"reflect"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// succinctVariants builds three engines over the same archive whose StIU
// indexes differ only in provenance: built in memory (no sidecar), decoded
// from a v1 sidecar (eager temporal, monolithic lazy blocks), and decoded
// from a v2 sidecar (rank/select + lazy temporal sections).
func succinctVariants(t *testing.T, p gen.Profile, n int, seed int64) (*gen.Dataset, []struct {
	name string
	eng  *Engine
}) {
	t.Helper()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	sopts := stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800}
	built, err := stiu.Build(a, sopts)
	if err != nil {
		t.Fatal(err)
	}
	encV1, err := built.EncodeSidecarV1(1)
	if err != nil {
		t.Fatal(err)
	}
	encV2, err := built.EncodeSidecar(1)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := stiu.DecodeSidecar(encV1, a.Graph, len(a.Trajs), 1, sopts)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := stiu.DecodeSidecar(encV2, a.Graph, len(a.Trajs), 1, sopts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, []struct {
		name string
		eng  *Engine
	}{
		{"built", NewEngine(a, built)},
		{"v1", NewEngine(a, v1)},
		{"v2", NewEngine(a, v2)},
	}
}

// TestSuccinctPruningEquivalence pins succinct pruning ≡ materialized
// pruning on all three synthetic road networks: the same query workload
// must return identical results from a built index, a v1-sidecar index
// and a v2-sidecar index — and take identical pruning decisions, observed
// through the TrajsPruned / InstancesSkipped counters.
func TestSuccinctPruningEquivalence(t *testing.T) {
	profiles := []struct {
		name string
		p    gen.Profile
		seed int64
	}{
		{"DK", gen.DK(), 31},
		{"CD", gen.CD(), 32},
		{"HZ", gen.HZ(), 33},
	}
	for _, pr := range profiles {
		t.Run(pr.name, func(t *testing.T) {
			ds, variants := succinctVariants(t, pr.p, 25, pr.seed)
			oracle := NewOracle(ds.Graph, ds.Trajectories)
			rng := rand.New(rand.NewSource(pr.seed * 7))
			bounds := ds.Graph.Bounds()

			for trial := 0; trial < 80; trial++ {
				j := rng.Intn(len(ds.Trajectories))
				T := ds.Trajectories[j].T
				tq := T[0] + rng.Int63n(T[len(T)-1]-T[0]+1)
				alpha := rng.Float64() * 0.6

				// Where: identical instance sets and positions.
				base, err := variants[0].eng.Where(j, tq, alpha)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range variants[1:] {
					got, err := v.eng.Where(j, tq, alpha)
					if err != nil {
						t.Fatalf("%s Where: %v", v.name, err)
					}
					if !reflect.DeepEqual(base, got) {
						t.Fatalf("%s Where(%d, %d, %g) diverged", v.name, j, tq, alpha)
					}
				}

				// When: a location the trajectory actually visits.
				inst := rng.Intn(len(ds.Trajectories[j].Instances))
				pi, err := oracle.path(j, inst)
				if err != nil {
					t.Fatal(err)
				}
				edge := pi.Edges[rng.Intn(len(pi.Edges))]
				loc := ds.Graph.PositionAtRD(edge, rng.Float64())
				baseWhen, err := variants[0].eng.When(j, loc, alpha)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range variants[1:] {
					got, err := v.eng.When(j, loc, alpha)
					if err != nil {
						t.Fatalf("%s When: %v", v.name, err)
					}
					if !reflect.DeepEqual(baseWhen, got) {
						t.Fatalf("%s When(%d, %g) diverged", v.name, j, alpha)
					}
				}

				// Range: random window, shared across variants.
				w := (bounds.MaxX - bounds.MinX) * 0.15
				x := bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX-w)
				y := bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY-w)
				re := roadnet.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
				baseRange, err := variants[0].eng.Range(re, tq, alpha)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range variants[1:] {
					got, err := v.eng.Range(re, tq, alpha)
					if err != nil {
						t.Fatalf("%s Range: %v", v.name, err)
					}
					if !reflect.DeepEqual(baseRange, got) {
						t.Fatalf("%s Range(%+v, %d, %g) diverged", v.name, re, tq, alpha)
					}
				}
			}

			// Identical answers must come from identical pruning decisions,
			// not compensating errors.
			base := variants[0].eng.Stats()
			if base.TrajsPruned == 0 {
				t.Error("pruning never fired across the workload")
			}
			for _, v := range variants[1:] {
				st := v.eng.Stats()
				if st.TrajsPruned != base.TrajsPruned || st.InstancesSkipped != base.InstancesSkipped {
					t.Fatalf("%s pruning counters (pruned=%d skipped=%d) != built (pruned=%d skipped=%d)",
						v.name, st.TrajsPruned, st.InstancesSkipped, base.TrajsPruned, base.InstancesSkipped)
				}
			}
		})
	}
}
