package query

import (
	"fmt"
	"sort"
	"sync"

	"utcq/internal/roadnet"
)

// lazyPath is the UTCQ engine's partially decompressed traversal: the edge
// skeleton (from E and T', both cheap) is materialized, but relative
// distances are fetched per point on demand — a query touching two points
// decodes two D codes instead of the whole sequence.
//
// A lazyPath is safe for concurrent use: the skeleton is immutable after
// construction and the per-point memoization is guarded by mu, so cached
// paths can be shared by many query goroutines.
type lazyPath struct {
	P         float64
	Edges     []roadnet.EdgeID
	EdgeCum   []float64
	PointEdge []int

	g      *roadnet.Graph
	dFetch func(k int) (float64, error)

	mu     sync.Mutex
	coords []float64
	known  []bool

	// DDecodes counts on-demand distance decodes (partial decompression
	// accounting); guarded by mu.
	DDecodes int
}

// newLazyPath builds the skeleton from (SV, E, TF) and a distance fetcher.
func newLazyPath(g *roadnet.Graph, sv roadnet.VertexID, E []uint16, tf []bool, numPoints int, p float64, dFetch func(int) (float64, error)) (*lazyPath, error) {
	pi := &lazyPath{P: p, g: g, dFetch: dFetch,
		coords: make([]float64, numPoints), known: make([]bool, numPoints)}
	cur := sv
	cum := 0.0
	k := 0
	for i, no := range E {
		if no != 0 {
			e, ok := g.OutEdge(cur, int(no))
			if !ok {
				return nil, fmt.Errorf("query: no outgoing edge %d at vertex %d", no, cur)
			}
			pi.Edges = append(pi.Edges, e)
			pi.EdgeCum = append(pi.EdgeCum, cum)
			cum += g.Edge(e).Length
			cur = g.Edge(e).To
		}
		if i < len(tf) && tf[i] {
			if len(pi.Edges) == 0 {
				return nil, fmt.Errorf("query: point before first edge")
			}
			if k >= numPoints {
				return nil, fmt.Errorf("query: more set flags than points")
			}
			pi.PointEdge = append(pi.PointEdge, len(pi.Edges)-1)
			k++
		}
	}
	if k != numPoints {
		return nil, fmt.Errorf("query: placed %d of %d points", k, numPoints)
	}
	return pi, nil
}

// coord fetches (and memoizes) the linear path coordinate of point k.
func (pi *lazyPath) coord(k int) (float64, error) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if pi.known[k] {
		return pi.coords[k], nil
	}
	d, err := pi.dFetch(k)
	if err != nil {
		return 0, err
	}
	pi.DDecodes++
	ei := pi.PointEdge[k]
	c := pi.EdgeCum[ei] + d*pi.g.Edge(pi.Edges[ei]).Length
	pi.coords[k] = c
	pi.known[k] = true
	return c, nil
}

// orderedCoords returns monotone coordinates for two adjacent points
// (quantization can perturb same-edge ordering slightly).
func (pi *lazyPath) orderedCoords(i, j int) (float64, float64, error) {
	c0, err := pi.coord(i)
	if err != nil {
		return 0, 0, err
	}
	c1, err := pi.coord(j)
	if err != nil {
		return 0, 0, err
	}
	if c1 < c0 {
		c1 = c0
	}
	return c0, c1, nil
}

// positionAtCoord converts a linear coordinate back to a network position.
func (pi *lazyPath) positionAtCoord(coord float64) roadnet.Position {
	k := sort.Search(len(pi.EdgeCum), func(i int) bool { return pi.EdgeCum[i] > coord })
	if k > 0 {
		k--
	}
	nd := coord - pi.EdgeCum[k]
	length := pi.g.Edge(pi.Edges[k]).Length
	if nd > length {
		nd = length
	}
	if nd < 0 {
		nd = 0
	}
	return roadnet.Position{Edge: pi.Edges[k], NDist: nd}
}

// locationAt interpolates the position at time t between points i and i+1,
// decoding exactly the two distances it needs.
func (pi *lazyPath) locationAt(i int, ti, ti1, t int64) (roadnet.Position, error) {
	if ti1 <= ti || i+1 >= len(pi.PointEdge) {
		c, err := pi.coord(i)
		if err != nil {
			return roadnet.Position{}, err
		}
		return pi.positionAtCoord(c), nil
	}
	c0, c1, err := pi.orderedCoords(i, i+1)
	if err != nil {
		return roadnet.Position{}, err
	}
	frac := float64(t-ti) / float64(ti1-ti)
	return pi.positionAtCoord(c0 + (c1-c0)*frac), nil
}

// passagesAt finds the bracketing point and fraction of every traversal of
// loc.  Point comparisons on other edges are resolved from the skeleton;
// only same-edge comparisons decode distances.
func (pi *lazyPath) passagesAt(loc roadnet.Position) ([]passage, error) {
	return pi.appendPassagesAt(nil, loc)
}

// appendPassagesAt is passagesAt appending into a caller-owned buffer, so
// a recycled buffer makes the lookup allocation-free.
func (pi *lazyPath) appendPassagesAt(out []passage, loc roadnet.Position) ([]passage, error) {
	n := len(pi.PointEdge)
	if n == 0 {
		return out, nil
	}
	var ferr error
	after := func(x int, qcoord float64, k int) bool {
		// Reports whether point x lies strictly after qcoord on the path.
		pe := pi.PointEdge[x]
		if pe < k {
			return false
		}
		if pe > k {
			return true
		}
		c, err := pi.coord(x)
		if err != nil {
			ferr = err
			return false
		}
		return c > qcoord
	}
	for k, e := range pi.Edges {
		if e != loc.Edge {
			continue
		}
		qcoord := pi.EdgeCum[k] + loc.NDist
		idx := sort.Search(n, func(x int) bool { return after(x, qcoord, k) })
		if ferr != nil {
			return out, ferr
		}
		i := idx - 1
		if i < 0 {
			continue // before the first sampled point
		}
		ci, err := pi.coord(i)
		if err != nil {
			return out, err
		}
		if ci > qcoord {
			continue
		}
		if i == n-1 {
			if qcoord <= ci {
				out = append(out, passage{i: maxI(i-1, 0), frac: 1})
			}
			continue // beyond the last sampled point
		}
		_, c1, err := pi.orderedCoords(i, i+1)
		if err != nil {
			return out, err
		}
		if qcoord > c1 {
			continue
		}
		frac := 0.0
		if c1 > ci {
			frac = (qcoord - ci) / (c1 - ci)
		}
		out = append(out, passage{i: i, frac: frac})
	}
	return out, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
