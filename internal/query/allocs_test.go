package query

import (
	"math/rand"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
)

// whenWorkload is a fixed set of when queries that hit populated buckets,
// shared by the allocation assertion and the benchmark.
type whenWorkload struct {
	eng  *Engine
	js   []int
	locs []roadnet.Position
}

// succinct selects an index decoded from a v2 sidecar instead of the
// built one, so the assertion also covers the rank/select read path.
func buildWhenWorkload(tb testing.TB, succinct bool) *whenWorkload {
	tb.Helper()
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 24, 24
	ds, err := gen.Build(p, 60, 7)
	if err != nil {
		tb.Fatal(err)
	}
	opts := core.DefaultOptions(p.Ts)
	c, err := core.NewCompressor(ds.Graph, opts)
	if err != nil {
		tb.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		tb.Fatal(err)
	}
	ix, err := stiu.Build(a, stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800})
	if err != nil {
		tb.Fatal(err)
	}
	if succinct {
		enc, err := ix.EncodeSidecar(1)
		if err != nil {
			tb.Fatal(err)
		}
		ix, err = stiu.DecodeSidecar(enc, a.Graph, len(a.Trajs), 1, stiu.Options{GridNX: 16, GridNY: 16, IntervalDur: 1800})
		if err != nil {
			tb.Fatal(err)
		}
	}
	w := &whenWorkload{eng: NewEngine(a, ix)}
	oracle := NewOracle(ds.Graph, ds.Trajectories)
	rng := rand.New(rand.NewSource(3))
	for len(w.js) < 32 {
		j := rng.Intn(len(ds.Trajectories))
		pi, err := oracle.path(j, rng.Intn(len(ds.Trajectories[j].Instances)))
		if err != nil {
			tb.Fatal(err)
		}
		edge := pi.Edges[rng.Intn(len(pi.Edges))]
		w.js = append(w.js, j)
		w.locs = append(w.locs, ds.Graph.PositionAtRD(edge, rng.Float64()))
	}
	return w
}

func (w *whenWorkload) run(dst []WhenResult) ([]WhenResult, error) {
	var err error
	for i, j := range w.js {
		dst, err = w.eng.AppendWhen(dst[:0], j, w.locs[i], 0.05)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// TestAppendWhenAllocationFree asserts the ISSUE's when-path target: with
// a recycled result buffer and warm caches, AppendWhen performs zero
// allocations per query, matching Where.
func TestAppendWhenAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, tc := range []struct {
		name     string
		succinct bool
	}{
		{"built", false},
		{"v2sidecar", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := buildWhenWorkload(t, tc.succinct)
			buf, err := w.run(nil) // warm path/ref caches and the scratch pool
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				var err error
				buf, err = w.run(buf)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("AppendWhen allocates %.1f times per %d queries, want 0", allocs, len(w.js))
			}
		})
	}
}

func BenchmarkQueryWhen(b *testing.B) {
	w := buildWhenWorkload(b, false)
	buf, err := w.run(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = w.run(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
