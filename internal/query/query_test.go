package query

import (
	"math"
	"testing"

	"utcq/internal/core"
	"utcq/internal/paperfix"
	"utcq/internal/roadnet"
	"utcq/internal/stiu"
	"utcq/internal/traj"
)

func fixtureEngine(t *testing.T) (*paperfix.Fixture, *Engine) {
	t.Helper()
	fx := paperfix.MustNew()
	c, err := core.NewCompressor(fx.Graph, core.DefaultOptions(paperfix.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress([]*traj.Uncertain{fx.Tu1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := stiu.Build(a, stiu.Options{GridNX: 8, GridNY: 8, IntervalDur: 900})
	if err != nil {
		t.Fatal(err)
	}
	return fx, NewEngine(a, ix)
}

// TestExample3Where reproduces Example 3: where(Tu1, 5:21:25, 0.25)
// returns the location on (v6 → v7) three quarters along the edge
// (the paper's ⟨228477→228478, 150⟩ with a 200 m edge; our fixture edge is
// 1600 m, so ndist = 1200).
func TestExample3Where(t *testing.T) {
	fx, e := fixtureEngine(t)
	res, err := e.Where(0, 5*3600+21*60+25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v, want exactly Tu11", res)
	}
	if res[0].Inst != 0 {
		t.Errorf("instance = %d, want 0", res[0].Inst)
	}
	e67 := fx.Edge("v6", "v7")
	if res[0].Loc.Edge != e67 {
		t.Errorf("edge = %d, want v6->v7", res[0].Loc.Edge)
	}
	if math.Abs(res[0].Loc.NDist-1200) > 15 {
		t.Errorf("ndist = %g, want ~1200", res[0].Loc.NDist)
	}
}

// TestExample3When reproduces the second half of Example 3:
// when(Tu1, ⟨v6→v7, rd=0.75⟩, 0.25) returns 5:21:25.
func TestExample3When(t *testing.T) {
	fx, e := fixtureEngine(t)
	loc := fx.Graph.PositionAtRD(fx.Edge("v6", "v7"), 0.75)
	res, err := e.When(0, loc, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v, want one passage of Tu11", res)
	}
	want := int64(5*3600 + 21*60 + 25)
	if math.Abs(float64(res[0].T-want)) > 8 {
		t.Errorf("t = %d, want ~%d", res[0].T, want)
	}
}

// TestExample5Lemma1 reproduces Example 5: for a location on (v2 → v3)
// and alpha = 0.5, the non-references need not be reconstructed because
// pmax < alpha; only Tu11's passage is returned.
func TestExample5Lemma1(t *testing.T) {
	fx, e := fixtureEngine(t)
	loc := fx.Graph.PositionAtRD(fx.Edge("v2", "v3"), 0.25)
	res, err := e.When(0, loc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Inst != 0 {
		t.Fatalf("results = %+v, want only Tu11", res)
	}
	// Lemma 1 must have skipped the group's non-references entirely.
	if e.Stats().PathsDecoded != 1 {
		t.Errorf("decoded %d paths, want 1 (Lemma 1 skips non-references)", e.Stats().PathsDecoded)
	}
}

// TestWhenOnDetour: the detour edge (v2 → v10) is only used by Tu12
// (p = 0.2): a query there with alpha 0.1 finds it, with alpha 0.3 nothing.
func TestWhenOnDetour(t *testing.T) {
	fx, e := fixtureEngine(t)
	loc := fx.Graph.PositionAtRD(fx.Edge("v2", "v10"), 0.25)
	res, err := e.When(0, loc, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Inst != 1 {
		t.Fatalf("results = %+v, want only Tu12", res)
	}
	// l1' sits exactly at that location, so t must be ~t1.
	if math.Abs(float64(res[0].T-fx.Tu1.T[1])) > 3 {
		t.Errorf("t = %d, want ~%d", res[0].T, fx.Tu1.T[1])
	}
	res, err = e.When(0, loc, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("alpha=0.3 results = %+v, want empty", res)
	}
}

// TestRangeExamples mirrors Examples 4 and 6: a region covering the early
// corridor at 5:05:25 returns Tu1 for alpha 0.5; a far-away region returns
// nothing and is pruned without decompression.
func TestRangeExamples(t *testing.T) {
	_, e := fixtureEngine(t)
	tq := int64(5*3600 + 5*60 + 25)
	// At 5:05:25 all instances sit between l0 (x=700) and their second
	// point; every path stays within x ∈ [0, 2400], y ∈ [-100, 900].
	re := roadnet.Rect{MinX: -100, MinY: -200, MaxX: 2500, MaxY: 900}
	got, err := e.Range(re, tq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("range = %v, want [0]", got)
	}
	// A distant region: Lemma 4 prunes the trajectory outright.
	before := e.Stats().TrajsPruned
	far := roadnet.Rect{MinX: 50000, MinY: 50000, MaxX: 60000, MaxY: 60000}
	got, err = e.Range(far, tq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("far range = %v, want empty", got)
	}
	if e.Stats().TrajsPruned != before+1 {
		t.Errorf("Lemma 4 did not prune (pruned=%d)", e.Stats().TrajsPruned)
	}
}

// TestWhereOutsideTimeSpan: queries before the first or after the last
// timestamp return nothing.
func TestWhereOutsideTimeSpan(t *testing.T) {
	_, e := fixtureEngine(t)
	if res, _ := e.Where(0, 100, 0); len(res) != 0 {
		t.Errorf("before start: %+v", res)
	}
	if res, _ := e.Where(0, 23*3600, 0); len(res) != 0 {
		t.Errorf("after end: %+v", res)
	}
	// Exactly the last timestamp: every instance sits at its final point.
	fx := paperfix.MustNew()
	res, err := e.Where(0, fx.Tu1.T[len(fx.Tu1.T)-1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("at last timestamp: %d results, want 3", len(res))
	}
}

// TestWhereMatchesOracle compares the engine against the uncompressed
// oracle on the fixture at many query times.
func TestWhereMatchesOracle(t *testing.T) {
	fx, e := fixtureEngine(t)
	o := NewOracle(fx.Graph, []*traj.Uncertain{fx.Tu1})
	for tq := fx.Tu1.T[0]; tq <= fx.Tu1.T[len(fx.Tu1.T)-1]; tq += 37 {
		got, err := e.Where(0, tq, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		want, err := o.Where(0, tq, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("t=%d: %d results, oracle %d", tq, len(got), len(want))
		}
		for k := range got {
			if got[k].Inst != want[k].Inst {
				t.Fatalf("t=%d: instance order differs", tq)
			}
			gx, gy := fx.Graph.Coords(got[k].Loc)
			wx, wy := fx.Graph.Coords(want[k].Loc)
			if d := math.Hypot(gx-wx, gy-wy); d > 30 {
				t.Errorf("t=%d inst %d: location off by %.1f m", tq, got[k].Inst, d)
			}
		}
	}
}
