package query

import (
	"sort"

	"utcq/internal/roadnet"
	"utcq/internal/traj"
)

// Oracle answers the same probabilistic queries directly on uncompressed
// uncertain trajectories.  It is the ground truth for correctness tests
// and for the accuracy metrics of Fig 11 (average difference, F1).
type Oracle struct {
	G     *roadnet.Graph
	Trajs []*traj.Uncertain

	paths map[[2]int]*pathInfo
}

// NewOracle returns an oracle over uncompressed data.
func NewOracle(g *roadnet.Graph, tus []*traj.Uncertain) *Oracle {
	return &Oracle{G: g, Trajs: tus, paths: make(map[[2]int]*pathInfo)}
}

func (o *Oracle) path(j, i int) (*pathInfo, error) {
	k := [2]int{j, i}
	if p, ok := o.paths[k]; ok {
		return p, nil
	}
	pi, err := buildPathFromInstance(o.G, &o.Trajs[j].Instances[i])
	if err != nil {
		return nil, err
	}
	o.paths[k] = pi
	return pi, nil
}

// bracket finds i with T[i] <= t <= T[i+1].
func (o *Oracle) bracket(j int, t int64) (int, int64, int64, bool) {
	T := o.Trajs[j].T
	if t < T[0] || t > T[len(T)-1] {
		return 0, 0, 0, false
	}
	i := sort.Search(len(T), func(x int) bool { return T[x] > t })
	if i > 0 {
		i--
	}
	if i == len(T)-1 {
		return i, T[i], T[i], true
	}
	return i, T[i], T[i+1], true
}

// Where answers the where query on uncompressed data.
func (o *Oracle) Where(j int, t int64, alpha float64) ([]WhereResult, error) {
	i, ti, ti1, ok := o.bracket(j, t)
	if !ok {
		return nil, nil
	}
	var out []WhereResult
	for inst := range o.Trajs[j].Instances {
		p := o.Trajs[j].Instances[inst].P
		if p < alpha {
			continue
		}
		pi, err := o.path(j, inst)
		if err != nil {
			return nil, err
		}
		out = append(out, WhereResult{Inst: inst, P: p, Loc: pi.locationAt(o.G, i, ti, ti1, t)})
	}
	return out, nil
}

// When answers the when query on uncompressed data.
func (o *Oracle) When(j int, loc roadnet.Position, alpha float64) ([]WhenResult, error) {
	T := o.Trajs[j].T
	var out []WhenResult
	for inst := range o.Trajs[j].Instances {
		p := o.Trajs[j].Instances[inst].P
		if p < alpha {
			continue
		}
		pi, err := o.path(j, inst)
		if err != nil {
			return nil, err
		}
		for _, pas := range pi.passagesAt(o.G, loc) {
			tk := T[pas.i]
			tk1 := tk
			if pas.i+1 < len(T) {
				tk1 = T[pas.i+1]
			}
			out = append(out, WhenResult{Inst: inst, P: p, T: tk + int64(pas.frac*float64(tk1-tk)+0.5)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Inst != out[b].Inst {
			return out[a].Inst < out[b].Inst
		}
		return out[a].T < out[b].T
	})
	return out, nil
}

// Range answers the range query on uncompressed data.
func (o *Oracle) Range(re roadnet.Rect, t int64, alpha float64) ([]int, error) {
	var out []int
	for j := range o.Trajs {
		i, ti, ti1, ok := o.bracket(j, t)
		if !ok {
			continue
		}
		total := 0.0
		for inst := range o.Trajs[j].Instances {
			pi, err := o.path(j, inst)
			if err != nil {
				return nil, err
			}
			loc := pi.locationAt(o.G, i, ti, ti1, t)
			x, y := o.G.Coords(loc)
			if re.Contains(x, y) {
				total += o.Trajs[j].Instances[inst].P
			}
		}
		if total >= alpha {
			out = append(out, j)
		}
	}
	return out, nil
}
