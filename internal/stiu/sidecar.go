// Sidecar persistence for the StIU index ("UTCI" format, FORMAT.md §5).
//
// A sidecar freezes a built index so that opening a shard never replays
// the O(archive) Build walk.  The temporal index and the per-interval
// candidate sets decode eagerly (they are small and every query's pruning
// touches them); the per-(interval,region) and per-trajectory region
// buckets stay as encoded blocks inside the sidecar buffer and
// materialize on first touch, so Lemma-1/2 pruning over cold intervals
// costs nothing.  When the buffer is a memory mapping, untouched blocks
// never even page in.
//
// The encoding is deterministic: intervals and regions are emitted in
// ascending id order and tuple slices keep their build order, so
// re-encoding a freshly built index is byte-stable.  An index decoded
// from a sidecar keeps the original buffer and returns it verbatim from
// EncodeSidecar.
package stiu

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"utcq/internal/bitio"
	"utcq/internal/roadnet"
)

const (
	sidecarMagic     = "UTCI"
	sidecarVersion   = 2
	sidecarVersionV1 = 1
	sidecarHdrLen    = 35
)

// ErrSidecarMismatch reports a sidecar that is well-formed but was written
// for a different archive or index geometry.
var ErrSidecarMismatch = fmt.Errorf("stiu: sidecar does not match archive")

// EncodeSidecar serializes the index for an archive of archiveSize bytes
// in the current (v2) layout.  An index decoded from a sidecar — v1 or
// v2 — for the same archive size returns its original buffer unchanged.
func (ix *Index) EncodeSidecar(archiveSize int64) ([]byte, error) {
	if ix.raw != nil {
		if sz, ok := sidecarArchiveSize(ix.raw); ok && sz == archiveSize {
			return ix.raw, nil
		}
	}
	if err := ix.Materialize(); err != nil {
		return nil, err
	}
	return ix.encodeSidecarV2(archiveSize)
}

// appendSidecarHeader emits the 35-byte header shared by both versions.
func (ix *Index) appendSidecarHeader(buf []byte, version uint16, archiveSize int64) []byte {
	buf = append(buf, sidecarMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = append(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.Opts.GridNX))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.Opts.GridNY))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ix.Opts.IntervalDur))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ix.Temporal)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(archiveSize))
	return buf
}

// appendTemporalEntries emits one trajectory's temporal section: a
// uvarint count, then (delta-coded start, no, pos) per entry.
func appendTemporalEntries(buf []byte, entries []TemporalEntry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	prev := int64(0)
	for i, e := range entries {
		if i == 0 {
			buf = binary.AppendVarint(buf, e.Start)
		} else {
			buf = binary.AppendUvarint(buf, uint64(e.Start-prev))
		}
		prev = e.Start
		buf = binary.AppendVarint(buf, int64(e.No))
		buf = binary.AppendVarint(buf, int64(e.Pos))
	}
	return buf
}

// sortedIntervalIDs returns the interval ids in ascending order, the
// deterministic emission order of both encoders.
func (ix *Index) sortedIntervalIDs() []int {
	ids := make([]int, 0, len(ix.Intervals))
	for id := range ix.Intervals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// EncodeSidecarV1 serializes the index in the legacy v1 layout (eager
// temporal section, per-interval monolithic region blocks).  Kept so the
// compatibility tests can mint v1 sidecars; the write path uses v2.
func (ix *Index) EncodeSidecarV1(archiveSize int64) ([]byte, error) {
	if err := ix.Materialize(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 1<<16)
	buf = ix.appendSidecarHeader(buf, sidecarVersionV1, archiveSize)

	// Temporal section.
	for _, entries := range ix.Temporal {
		buf = appendTemporalEntries(buf, entries)
	}

	// Interval section, ascending id order.
	ids := ix.sortedIntervalIDs()
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prevID := 0
	for i, id := range ids {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(id-prevID))
		}
		prevID = id
		iv := ix.Intervals[id]
		buf = appendEFSet(buf, iv.Trajs)
		block := encodeRegionBlock(iv.Regions)
		buf = binary.AppendUvarint(buf, uint64(len(block)))
		buf = append(buf, block...)
	}

	// Trajectory-region section.
	for _, m := range ix.byTrajRegion {
		block := encodeRegionBlock(m)
		buf = binary.AppendUvarint(buf, uint64(len(block)))
		buf = append(buf, block...)
	}
	return buf, nil
}

// sidecarArchiveSize reads the bound archive size from a sidecar header.
func sidecarArchiveSize(data []byte) (int64, bool) {
	if len(data) < sidecarHdrLen || string(data[:4]) != sidecarMagic {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(data[27:35])), true
}

// DecodeSidecar rebuilds an index from sidecar bytes (v1 or v2).  The
// buffer may be a read-only memory mapping; decoded structures alias it,
// so it must stay valid for the index's lifetime.  Any mismatch with the
// expected geometry or archive returns an error — callers fall back to
// Build.
func DecodeSidecar(data []byte, g *roadnet.Graph, numTrajs int, archiveSize int64, opts Options) (*Index, error) {
	if len(data) < sidecarHdrLen {
		return nil, fmt.Errorf("stiu: sidecar too short (%d bytes)", len(data))
	}
	if string(data[:4]) != sidecarMagic {
		return nil, fmt.Errorf("stiu: bad sidecar magic %q", data[:4])
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	if version != sidecarVersionV1 && version != sidecarVersion {
		return nil, fmt.Errorf("stiu: unsupported sidecar version %d", version)
	}
	if data[6] != 0 {
		return nil, fmt.Errorf("stiu: unsupported sidecar flags %#x", data[6])
	}
	nx := int(binary.LittleEndian.Uint32(data[7:11]))
	ny := int(binary.LittleEndian.Uint32(data[11:15]))
	dur := int64(binary.LittleEndian.Uint64(data[15:23]))
	nt := int(binary.LittleEndian.Uint32(data[23:27]))
	sz := int64(binary.LittleEndian.Uint64(data[27:35]))
	if nx != opts.GridNX || ny != opts.GridNY || dur != opts.IntervalDur ||
		nt != numTrajs || sz != archiveSize {
		return nil, fmt.Errorf("%w: header (%dx%d dur=%d trajs=%d size=%d), want (%dx%d dur=%d trajs=%d size=%d)",
			ErrSidecarMismatch, nx, ny, dur, nt, sz,
			opts.GridNX, opts.GridNY, opts.IntervalDur, numTrajs, archiveSize)
	}

	ix := &Index{
		Opts:         opts,
		Grid:         roadnet.NewGrid(g, opts.GridNX, opts.GridNY),
		Temporal:     make([][]TemporalEntry, numTrajs),
		Intervals:    make(map[int]*Interval),
		byTrajRegion: make([]map[roadnet.RegionID]*RegionBucket, numTrajs),
		raw:          data,
	}
	r := &sidecarReader{data: data, off: sidecarHdrLen}
	if version == sidecarVersionV1 {
		return decodeSidecarV1(r, ix, numTrajs)
	}
	return decodeSidecarV2(r, ix, numTrajs)
}

// decodeTemporalEntries reads one trajectory's temporal section (count +
// delta-coded entries), the format shared by v1 and v2.
func decodeTemporalEntries(r *sidecarReader) ([]TemporalEntry, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("count %d overflows buffer", n)
	}
	entries := make([]TemporalEntry, n)
	prev := int64(0)
	for i := range entries {
		var start int64
		if i == 0 {
			start, err = r.varint()
		} else {
			var d uint64
			d, err = r.uvarint()
			start = prev + int64(d)
		}
		if err == nil {
			prev = start
			var no, pos int64
			no, err = r.varint()
			if err == nil {
				pos, err = r.varint()
			}
			entries[i] = TemporalEntry{Start: start, No: int32(no), Pos: int32(pos)}
		}
		if err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// intervalCount reads the interval-section count with an overflow guard.
func (r *sidecarReader) intervalCount() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()) {
		return 0, fmt.Errorf("count %d overflows buffer", n)
	}
	return int(n), nil
}

// intervalID decodes the next id of the interleaved ascending interval-id
// stream: a varint for the first interval, uvarint deltas after.
func (r *sidecarReader) intervalID(first bool, prev *int64) (int, error) {
	var id int64
	var err error
	if first {
		id, err = r.varint()
	} else {
		var d uint64
		d, err = r.uvarint()
		id = *prev + int64(d)
	}
	if err != nil {
		return 0, err
	}
	*prev = id
	return int(id), nil
}

// decodeSidecarV1 parses the legacy layout: eager temporal entries and
// per-interval EF candidate sets, monolithic lazy region blocks.
func decodeSidecarV1(r *sidecarReader, ix *Index, numTrajs int) (*Index, error) {
	ix.lazyTR = make([]lazyBlock, numTrajs)

	// Temporal section.
	for j := 0; j < numTrajs; j++ {
		entries, err := decodeTemporalEntries(r)
		if err != nil {
			return nil, fmt.Errorf("stiu: sidecar temporal[%d]: %w", j, err)
		}
		ix.Temporal[j] = entries
	}

	// Interval section.
	nIv, err := r.intervalCount()
	if err != nil {
		return nil, fmt.Errorf("stiu: sidecar intervals: %w", err)
	}
	prevID := int64(0)
	for i := 0; i < nIv; i++ {
		id, err := r.intervalID(i == 0, &prevID)
		if err != nil {
			return nil, fmt.Errorf("stiu: sidecar intervals: %w", err)
		}
		trajs, err := r.efSet(numTrajs)
		if err != nil {
			return nil, fmt.Errorf("stiu: sidecar interval %d trajs: %w", id, err)
		}
		block, err := r.lenPrefixed()
		if err != nil {
			return nil, fmt.Errorf("stiu: sidecar interval %d regions: %w", id, err)
		}
		iv := &Interval{Trajs: trajs}
		iv.lazy.data = block
		ix.Intervals[id] = iv
	}

	// Trajectory-region section.
	for j := 0; j < numTrajs; j++ {
		block, err := r.lenPrefixed()
		if err != nil {
			return nil, fmt.Errorf("stiu: sidecar trajRegion[%d]: %w", j, err)
		}
		ix.lazyTR[j].data = block
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("stiu: sidecar has %d trailing bytes", r.remaining())
	}
	return ix, nil
}

// Materialize decodes every lazy block and temporal section.  Built
// indexes are no-ops.
func (ix *Index) Materialize() error {
	for j := range ix.Temporal {
		if _, err := ix.TemporalEntries(j); err != nil {
			return err
		}
	}
	if ix.succinct {
		return ix.materializeV2()
	}
	for id, iv := range ix.Intervals {
		if err := iv.force(); err != nil {
			return fmt.Errorf("stiu: interval %d: %w", id, err)
		}
	}
	for j := range ix.lazyTR {
		if err := ix.forceTR(j); err != nil {
			return fmt.Errorf("stiu: trajRegion[%d]: %w", j, err)
		}
	}
	return nil
}

// --- region block codec ---

func encodeRegionBlock(m map[roadnet.RegionID]*RegionBucket) []byte {
	ids := make([]roadnet.RegionID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	prev := int64(0)
	for i, id := range ids {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(int64(id)-prev))
		}
		prev = int64(id)
		buf = appendBucket(buf, m[id])
	}
	return buf
}

// appendBucket emits one region bucket (refs then non-refs), the unit the
// v2 layout addresses individually through its offset tables.
func appendBucket(buf []byte, b *RegionBucket) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b.Refs)))
	for _, rt := range b.Refs {
		buf = binary.AppendVarint(buf, int64(rt.Traj))
		buf = binary.AppendVarint(buf, int64(rt.Orig))
		buf = binary.AppendVarint(buf, int64(rt.FV))
		buf = binary.AppendVarint(buf, int64(rt.FVNo))
		buf = binary.AppendVarint(buf, int64(rt.DPos))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(rt.PTotal))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(rt.PMax))
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.NonRefs)))
	for _, nt := range b.NonRefs {
		buf = binary.AppendVarint(buf, int64(nt.Traj))
		buf = binary.AppendVarint(buf, int64(nt.Orig))
		buf = binary.AppendVarint(buf, int64(nt.RefOrig))
		buf = binary.AppendVarint(buf, int64(nt.RV))
		buf = binary.AppendVarint(buf, int64(nt.RVNo))
		buf = binary.AppendVarint(buf, int64(nt.MaPos))
	}
	return buf
}

// decodeBucket decodes one region bucket from exactly data.
func decodeBucket(data []byte) (*RegionBucket, error) {
	r := &sidecarReader{data: data}
	b, err := r.bucket()
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("bucket has %d trailing bytes", r.remaining())
	}
	return b, nil
}

func decodeRegionBlock(data []byte) (map[roadnet.RegionID]*RegionBucket, error) {
	r := &sidecarReader{data: data}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining())+1 {
		return nil, fmt.Errorf("region count %d overflows block", n)
	}
	m := make(map[roadnet.RegionID]*RegionBucket, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		var id int64
		if i == 0 {
			id, err = r.varint()
		} else {
			var d uint64
			d, err = r.uvarint()
			id = prev + int64(d)
		}
		if err != nil {
			return nil, err
		}
		prev = id
		b, err := r.bucket()
		if err != nil {
			return nil, err
		}
		m[roadnet.RegionID(id)] = b
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("region block has %d trailing bytes", r.remaining())
	}
	return m, nil
}

// bucket decodes one region bucket at the reader's position.
func (r *sidecarReader) bucket() (*RegionBucket, error) {
	b := &RegionBucket{}
	nr, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nr > uint64(r.remaining()) {
		return nil, fmt.Errorf("ref count %d overflows block", nr)
	}
	if nr > 0 {
		b.Refs = make([]RefTuple, nr)
	}
	for k := range b.Refs {
		var traj, orig, fv, fvNo, dPos int64
		var pt, pm uint32
		if traj, err = r.varint(); err == nil {
			if orig, err = r.varint(); err == nil {
				if fv, err = r.varint(); err == nil {
					if fvNo, err = r.varint(); err == nil {
						if dPos, err = r.varint(); err == nil {
							if pt, err = r.u32(); err == nil {
								pm, err = r.u32()
							}
						}
					}
				}
			}
		}
		if err != nil {
			return nil, err
		}
		b.Refs[k] = RefTuple{
			Traj: int32(traj), Orig: int32(orig),
			FV: roadnet.VertexID(fv), FVNo: int32(fvNo), DPos: int32(dPos),
			PTotal: math.Float32frombits(pt), PMax: math.Float32frombits(pm),
		}
	}
	nn, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nn > uint64(r.remaining()) {
		return nil, fmt.Errorf("nonref count %d overflows block", nn)
	}
	if nn > 0 {
		b.NonRefs = make([]NonRefTuple, nn)
	}
	for k := range b.NonRefs {
		var traj, orig, refOrig, rv, rvNo, maPos int64
		if traj, err = r.varint(); err == nil {
			if orig, err = r.varint(); err == nil {
				if refOrig, err = r.varint(); err == nil {
					if rv, err = r.varint(); err == nil {
						if rvNo, err = r.varint(); err == nil {
							maPos, err = r.varint()
						}
					}
				}
			}
		}
		if err != nil {
			return nil, err
		}
		b.NonRefs[k] = NonRefTuple{
			Traj: int32(traj), Orig: int32(orig), RefOrig: int32(refOrig),
			RV: roadnet.VertexID(rv), RVNo: int32(rvNo), MaPos: int32(maPos),
		}
	}
	return b, nil
}

// --- Elias–Fano sorted-set codec ---

// efLowBits picks the low-bit width for n values over universe u, the
// standard ⌊log₂(u/n)⌋ split that bounds the encoding near 2+log₂(u/n)
// bits per value.
func efLowBits(u, n uint64) int {
	if n == 0 || u/n == 0 {
		return 0
	}
	return bits.Len64(u/n) - 1
}

// appendEFSet encodes a sorted slice of distinct non-negative int32s.
// Layout: uvarint n; if n>0: uvarint max, uvarint blobLen, blob.  The blob
// interleaves, per value, the unary-coded delta of its high bits with its
// fixed-width low bits.
func appendEFSet(buf []byte, vals []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	if len(vals) == 0 {
		return buf
	}
	u := uint64(vals[len(vals)-1])
	buf = binary.AppendUvarint(buf, u)
	l := efLowBits(u, uint64(len(vals)))
	w := bitio.NewWriter(len(vals) * (l + 2))
	prevHigh := uint64(0)
	for _, v := range vals {
		high := uint64(v) >> l
		w.WriteUnary(int(high - prevHigh))
		prevHigh = high
		if l > 0 {
			w.WriteBits(uint64(v)&((1<<l)-1), l)
		}
	}
	blob := w.Bytes()
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	return append(buf, blob...)
}

func (r *sidecarReader) efSet(maxCount int) ([]int32, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(maxCount) {
		return nil, fmt.Errorf("set of %d values exceeds trajectory count %d", n, maxCount)
	}
	u, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	blob, err := r.lenPrefixed()
	if err != nil {
		return nil, err
	}
	l := efLowBits(u, n)
	br := bitio.NewReader(blob)
	out := make([]int32, n)
	prevHigh := uint64(0)
	for i := range out {
		d, err := br.ReadUnary()
		if err != nil {
			return nil, err
		}
		prevHigh += uint64(d)
		low := uint64(0)
		if l > 0 {
			low, err = br.ReadBits(l)
			if err != nil {
				return nil, err
			}
		}
		v := prevHigh<<l | low
		if v > u {
			return nil, fmt.Errorf("set value %d exceeds declared max %d", v, u)
		}
		out[i] = int32(v)
	}
	return out, nil
}

// --- bounds-checked byte reader ---

type sidecarReader struct {
	data []byte
	off  int
}

func (r *sidecarReader) remaining() int { return len(r.data) - r.off }

func (r *sidecarReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *sidecarReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *sidecarReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("truncated u32 at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

// take returns the next n bytes as a capacity-clamped subslice.
func (r *sidecarReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("block of %d bytes overflows buffer at offset %d", n, r.off)
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

// efSlice returns the raw bytes of one Elias–Fano set without decoding
// it, so a v2 candidate set can stay on the mapping until first touch.
func (r *sidecarReader) efSlice() ([]byte, error) {
	start := r.off
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if _, err := r.uvarint(); err != nil { // max value
			return nil, err
		}
		if _, err := r.lenPrefixed(); err != nil { // unary/low-bit blob
			return nil, err
		}
	}
	return r.data[start:r.off:r.off], nil
}

// lenPrefixed returns a subslice for a uvarint-length-prefixed block.
func (r *sidecarReader) lenPrefixed() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("block of %d bytes overflows buffer at offset %d", n, r.off)
	}
	b := r.data[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b, nil
}
