package stiu

import (
	"reflect"
	"testing"

	"utcq/internal/core"
	"utcq/internal/gen"
)

// TestBuildParallelDeterministic: the index built with any worker count
// must be deeply equal to the serial (Parallelism: 1) build — temporal
// entries, interval trajectory lists, every cell's tuple order, and the
// per-trajectory region buckets.
func TestBuildParallelDeterministic(t *testing.T) {
	p := gen.CD()
	p.Network.Cols, p.Network.Rows = 20, 20
	ds, err := gen.Build(p, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(ds.Graph, core.DefaultOptions(p.Ts))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}

	build := func(parallelism int) *Index {
		ix, err := Build(a, Options{GridNX: 16, GridNY: 16, IntervalDur: 1800, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}

	want := build(1)
	for _, workers := range []int{0, 2, 4, 7} {
		got := build(workers)
		if !reflect.DeepEqual(got.Temporal, want.Temporal) {
			t.Errorf("Parallelism=%d: temporal index differs from serial", workers)
		}
		if !reflect.DeepEqual(got.Intervals, want.Intervals) {
			t.Errorf("Parallelism=%d: interval map differs from serial", workers)
		}
		if !reflect.DeepEqual(got.byTrajRegion, want.byTrajRegion) {
			t.Errorf("Parallelism=%d: trajectory-region buckets differ from serial", workers)
		}
	}

	// Serial rebuild is also self-identical (no map-order leaks anywhere).
	if again := build(1); !reflect.DeepEqual(again.Intervals, want.Intervals) {
		t.Error("two serial builds differ: nondeterministic tuple order")
	}
}
