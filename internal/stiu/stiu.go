// Package stiu implements the Spatio-temporal Information based Uncertain
// Trajectory Index of Section 5.2.
//
// The temporal part partitions the day into equal intervals and stores, per
// trajectory and interval, a tuple (t.start, t.no, t.pos): the earliest
// timestamp falling in the interval, its ordinal in T, and the bit position
// in T̂ where decoding can resume (partial decompression).
//
// The spatial part partitions the road network with a uniform grid and
// stores, per interval and region, reference tuples
// (fv.id, fv.no, d.pos, ptotal, pmax) and non-reference tuples
// (rv.id, rv.no, ma.pos), exactly the fields Definition 9 and Section 5.2
// prescribe.  ptotal and pmax drive the filtering Lemmas 1-4.
package stiu

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"utcq/internal/core"
	"utcq/internal/par"
	"utcq/internal/roadnet"
)

// Options control the index granularity (Table 7 defaults: a 64×64 grid
// and 30-minute intervals).
type Options struct {
	GridNX, GridNY int
	IntervalDur    int64 // seconds

	// Parallelism bounds the worker pool used by Build: 1 builds strictly
	// serially, N uses N workers, values below 1 use one worker per CPU.
	// The built index is identical across all settings.
	Parallelism int
}

// DefaultOptions returns the paper's default granularity.
func DefaultOptions() Options {
	return Options{GridNX: 64, GridNY: 64, IntervalDur: 1800}
}

// TemporalEntry is one (t.start, t.no, t.pos) tuple.
type TemporalEntry struct {
	Start int64
	No    int32
	Pos   int32 // bit position of the code of timestamp No+1; -1 at the end
}

// RefTuple is the spatial tuple of a reference w.r.t. one region.
type RefTuple struct {
	Traj int32
	Orig int32
	// FV is the final vertex; NoVertex encodes the paper's fv.id = ∞ case
	// (the reference itself never enters the region).
	FV     roadnet.VertexID
	FVNo   int32 // position of the region-entering edge in E(Ref)
	DPos   int32 // bit position of the d.no-th relative distance code
	PTotal float32
	PMax   float32
}

// NonRefTuple is the spatial tuple of a non-reference w.r.t. one region.
type NonRefTuple struct {
	Traj    int32
	Orig    int32
	RefOrig int32
	RV      roadnet.VertexID
	RVNo    int32 // position of RV's edge in E(Nref)
	MaPos   int32 // bit position of the covering factor in ComE
}

// RegionBucket groups the tuples of one (interval, region) pair.
type RegionBucket struct {
	Refs    []RefTuple
	NonRefs []NonRefTuple
}

// Interval is one time partition.  For a built index Regions is populated
// eagerly; for an index decoded from a sidecar (DecodeSidecar) the region
// buckets stay as an encoded block inside the sidecar buffer until the
// first query touches the interval — Lemma-1/2 pruning over untouched
// intervals never materializes their tuples.
type Interval struct {
	Trajs   []int32 // trajectories whose time span intersects the interval
	Regions map[roadnet.RegionID]*RegionBucket

	lazy lazyBlock
}

// lazyBlock defers decoding of one sidecar block.  data is nil for built
// indexes (nothing to decode).  The done flag is the lock-free fast path:
// its release store happens after the decoded map is written under mu, so
// an acquire load observing true also observes the map.
type lazyBlock struct {
	done atomic.Bool
	mu   sync.Mutex
	data []byte
	err  error
}

// Index is the StIU index over one archive.
type Index struct {
	Opts Options
	Grid *roadnet.Grid

	// Temporal[j] is trajectory j's interval entries, sorted by Start.
	Temporal [][]TemporalEntry

	Intervals map[int]*Interval

	// byTrajRegion[j][re] aggregates, across intervals, the tuple presence
	// used by the when-query and Lemma 1.  nil entries of lazyTR (sidecar
	// decode) materialize into it on first touch.
	byTrajRegion []map[roadnet.RegionID]*RegionBucket
	lazyTR       []lazyBlock // parallel to byTrajRegion; empty for built indexes

	// raw retains the sidecar buffer an index was decoded from: the lazy
	// blocks alias it, and EncodeSidecar can return it verbatim instead of
	// re-encoding a partially materialized index.
	raw []byte
}

// IntervalOf returns the time-partition id of t.
func (ix *Index) IntervalOf(t int64) int { return int(t / ix.Opts.IntervalDur) }

// FindTemporal returns trajectory j's entry with the greatest Start <= t
// (the binary search of Example 3).
func (ix *Index) FindTemporal(j int, t int64) (TemporalEntry, bool) {
	entries := ix.Temporal[j]
	lo := sort.Search(len(entries), func(i int) bool { return entries[i].Start > t })
	if lo == 0 {
		return TemporalEntry{}, false
	}
	return entries[lo-1], true
}

// Buckets returns the bucket of (interval, region), or nil.  The only
// error source is a corrupt lazily-decoded sidecar block; built indexes
// never fail.
func (ix *Index) Buckets(interval int, re roadnet.RegionID) (*RegionBucket, error) {
	iv := ix.Intervals[interval]
	if iv == nil {
		return nil, nil
	}
	if iv.lazy.data != nil && !iv.lazy.done.Load() {
		if err := iv.force(); err != nil {
			return nil, err
		}
	}
	return iv.Regions[re], nil
}

// force materializes the interval's region map from its sidecar block.
func (iv *Interval) force() error {
	if iv.lazy.data == nil || iv.lazy.done.Load() {
		return iv.lazy.err
	}
	iv.lazy.mu.Lock()
	if !iv.lazy.done.Load() {
		iv.Regions, iv.lazy.err = decodeRegionBlock(iv.lazy.data)
		iv.lazy.done.Store(true)
	}
	iv.lazy.mu.Unlock()
	return iv.lazy.err
}

// TrajRegion returns the aggregated bucket of trajectory j and region re.
func (ix *Index) TrajRegion(j int, re roadnet.RegionID) (*RegionBucket, error) {
	if len(ix.lazyTR) > 0 {
		lz := &ix.lazyTR[j]
		if lz.data != nil && !lz.done.Load() {
			if err := ix.forceTR(j); err != nil {
				return nil, err
			}
		} else if lz.err != nil {
			return nil, lz.err
		}
	}
	return ix.byTrajRegion[j][re], nil
}

// forceTR materializes trajectory j's region map from its sidecar block.
func (ix *Index) forceTR(j int) error {
	lz := &ix.lazyTR[j]
	if lz.data == nil || lz.done.Load() {
		return lz.err
	}
	lz.mu.Lock()
	if !lz.done.Load() {
		ix.byTrajRegion[j], lz.err = decodeRegionBlock(lz.data)
		lz.done.Store(true)
	}
	lz.mu.Unlock()
	return lz.err
}

// CandidateTrajs returns the trajectories active in the interval.
func (ix *Index) CandidateTrajs(interval int) []int32 {
	iv := ix.Intervals[interval]
	if iv == nil {
		return nil
	}
	return iv.Trajs
}

// Tuple bit widths used for index size accounting (Fig 9): temporal
// entries store a 17-bit seconds-of-day start, a 12-bit ordinal and a
// 32-bit stream position; spatial tuples store vertex ids, 12-bit
// ordinals, 32-bit positions and 16-bit probability summaries.
const (
	startBits = 17
	noBits    = 12
	posBits   = 32
	probBits  = 16
)

// TemporalSizeBits returns the temporal index size.
func (ix *Index) TemporalSizeBits() int64 {
	n := int64(0)
	for _, entries := range ix.Temporal {
		n += int64(len(entries)) * (startBits + noBits + posBits)
	}
	return n
}

// SpatialSizeBits returns the spatial index size, given the vertex id
// width of the archive.  Sidecar-backed indexes are fully materialized
// first so the accounting covers untouched intervals.
func (ix *Index) SpatialSizeBits(vertexBits int) int64 {
	if err := ix.Materialize(); err != nil {
		return 0
	}
	n := int64(0)
	for _, iv := range ix.Intervals {
		for _, b := range iv.Regions {
			n += int64(len(b.Refs)) * int64(vertexBits+1+noBits+posBits+2*probBits)
			n += int64(len(b.NonRefs)) * int64(vertexBits+noBits+posBits)
		}
	}
	return n
}

// Build constructs the index from a compressed archive.  Building happens
// at compression time (the paper builds StIU "during compression"), so it
// may decode records freely.
//
// Construction has two phases.  The walk phase decodes each trajectory's
// instance traversals and produces a per-trajectory tuple batch; walks are
// independent, so they run on a bounded worker pool (Options.Parallelism).
// The merge phase folds the batches into the grid/interval cells, sharded
// by interval id so shards never touch the same cell.  Both phases apply
// batches in trajectory order, so the index is identical to a serial build.
func Build(a *core.Archive, opts Options) (*Index, error) {
	if opts.GridNX < 1 || opts.GridNY < 1 || opts.IntervalDur < 1 {
		return nil, fmt.Errorf("stiu: invalid options %+v", opts)
	}
	ix := &Index{
		Opts:         opts,
		Grid:         roadnet.NewGrid(a.Graph, opts.GridNX, opts.GridNY),
		Temporal:     make([][]TemporalEntry, len(a.Trajs)),
		Intervals:    make(map[int]*Interval),
		byTrajRegion: make([]map[roadnet.RegionID]*RegionBucket, len(a.Trajs)),
	}
	workers := par.Workers(opts.Parallelism)

	// Walk phase: per-trajectory batches, plus the per-trajectory index
	// parts (temporal entries, trajectory-region buckets) that no other
	// worker touches.
	batches := make([]*trajBatch, len(a.Trajs))
	err := par.Do(workers, len(a.Trajs), func(j int) error {
		b, err := ix.walkTrajectory(a, j)
		if err != nil {
			return fmt.Errorf("stiu: trajectory %d: %w", j, err)
		}
		batches[j] = b
		ix.Temporal[j] = b.temporal
		ix.byTrajRegion[j] = b.trajRegion
		return nil
	})
	if err != nil {
		return nil, err
	}

	ix.mergeBatches(batches, workers)

	// Sort interval trajectory lists and deduplicate.
	for _, iv := range ix.Intervals {
		sort.Slice(iv.Trajs, func(x, y int) bool { return iv.Trajs[x] < iv.Trajs[y] })
		iv.Trajs = dedupInt32(iv.Trajs)
	}
	return ix, nil
}

// mergeBatches folds the walk batches into the interval map.  Each shard
// owns the intervals with id ≡ shard (mod shards) and applies every batch
// in trajectory order, so no two shards write the same cell and the tuple
// order within each cell matches a serial build exactly.
func (ix *Index) mergeBatches(batches []*trajBatch, shards int) {
	if shards < 1 {
		shards = 1
	}
	mod := func(iv int) int { return ((iv % shards) + shards) % shards }
	parts := make([]map[int]*Interval, shards)
	// Shard counts are small; par.Do with error-free work never fails.
	_ = par.Do(shards, shards, func(s int) error {
		m := make(map[int]*Interval)
		get := func(id int) *Interval {
			iv := m[id]
			if iv == nil {
				iv = &Interval{Regions: make(map[roadnet.RegionID]*RegionBucket)}
				m[id] = iv
			}
			return iv
		}
		for j, b := range batches {
			for iv := b.firstIv; iv <= b.lastIv; iv++ {
				if mod(iv) != s {
					continue
				}
				in := get(iv)
				in.Trajs = append(in.Trajs, int32(j))
			}
			for _, e := range b.emits {
				if mod(e.interval) != s {
					continue
				}
				bk := get(e.interval).bucket(e.re)
				if e.isRef {
					bk.Refs = append(bk.Refs, e.ref)
				} else {
					bk.NonRefs = append(bk.NonRefs, e.nonRef)
				}
			}
		}
		parts[s] = m
		return nil
	})
	for _, m := range parts {
		for id, iv := range m {
			ix.Intervals[id] = iv
		}
	}
}

func (iv *Interval) bucket(re roadnet.RegionID) *RegionBucket {
	b := iv.Regions[re]
	if b == nil {
		b = &RegionBucket{}
		iv.Regions[re] = b
	}
	return b
}

func dedupInt32(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// FindTemporalByNo returns trajectory j's entry with the greatest No <= k,
// used to resume timestamp decoding near point index k.
func (ix *Index) FindTemporalByNo(j, k int) (TemporalEntry, bool) {
	entries := ix.Temporal[j]
	lo := sort.Search(len(entries), func(i int) bool { return int(entries[i].No) > k })
	if lo == 0 {
		return TemporalEntry{}, false
	}
	return entries[lo-1], true
}
